// moldyn: molecular-dynamics time stepping, including the *adaptive*
// regime the paper targets as future work — molecules drift, the
// neighbour list is rebuilt, and the LightInspector re-runs locally
// (optionally incrementally) without any communication.
//
// Run:   ./examples/moldyn_md [--procs=16] [--epochs=4] [--period=10]
#include <cstdio>
#include <iostream>

#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/adaptive_moldyn.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs", 16));
  const auto epochs = static_cast<std::uint32_t>(opt.get_int("epochs", 4));
  const auto period = static_cast<std::uint32_t>(opt.get_int("period", 10));

  // --- static run first: validate the force computation -----------------
  const mesh::Mesh m = mesh::make_moldyn_lattice({6, 6000, 0.04, 3});
  const kernels::MoldynKernel kernel(m);
  std::printf("moldyn: %u molecules, %llu interactions, P=%u\n",
              m.num_nodes, static_cast<unsigned long long>(m.num_edges()),
              procs);

  core::SequentialOptions sopt;
  sopt.sweeps = 5;
  const core::RunResult seq = core::run_sequential_kernel(kernel, sopt);

  core::RotationOptions ropt;
  ropt.num_procs = procs;
  ropt.k = 2;
  ropt.sweeps = 5;
  const core::RunResult par = core::run_rotation_engine(kernel, ropt);

  double max_err = 0.0;
  for (std::size_t a = 0; a < seq.node_read.size(); ++a)
    for (std::size_t i = 0; i < seq.node_read[a].size(); ++i)
      max_err = std::max(
          max_err, std::abs(par.node_read[a][i] - seq.node_read[a][i]));
  std::printf("static 5-step run: speedup %.2f, max position error vs "
              "sequential %.2e\n",
              static_cast<double>(seq.total_cycles) /
                  static_cast<double>(par.total_cycles),
              max_err);
  if (max_err > 1e-6) return 1;

  // --- adaptive runs -----------------------------------------------------
  kernels::AdaptiveOptions aopt;
  aopt.dataset = mesh::MoldynParams{6, 6000, 0.04, 3};
  aopt.epochs = epochs;
  aopt.sweeps_per_epoch = period;

  core::ClassicOptions copt;
  copt.num_procs = procs;
  const auto classic = kernels::run_adaptive_moldyn_classic(aopt, copt);
  const auto light = kernels::run_adaptive_moldyn_rotation(aopt, ropt, false);
  const auto incr = kernels::run_adaptive_moldyn_rotation(aopt, ropt, true);

  Table t("adaptive: " + std::to_string(epochs) + " neighbour-list "
          "rebuilds, " + std::to_string(period) + " steps apart");
  t.set_header({"scheme", "total cycles", "preprocessing cycles"});
  t.add_row({"classic inspector/executor",
             fmt_group(static_cast<long long>(classic.total_cycles)),
             fmt_group(static_cast<long long>(classic.inspector_cycles))});
  t.add_row({"rotation + LightInspector",
             fmt_group(static_cast<long long>(light.total_cycles)),
             fmt_group(static_cast<long long>(light.inspector_cycles))});
  t.add_row({"rotation + incremental LightInspector",
             fmt_group(static_cast<long long>(incr.total_cycles)),
             fmt_group(static_cast<long long>(incr.inspector_cycles))});
  t.print(std::cout);
  std::printf("%s interactions changed across rebuilds — the incremental "
              "inspector's work is proportional to that, the classic "
              "inspector repeats its full communicating analysis.\n",
              fmt_group(static_cast<long long>(incr.changed_interactions))
                  .c_str());
  return 0;
}
