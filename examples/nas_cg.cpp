// NAS CG end-to-end: the benchmark the paper's mvm kernel was extracted
// from, solved on the simulated EARTH machine with the rotation strategy
// doing every A*p product.
//
// Run:   ./examples/nas_cg [--class=s|w] [--procs=8] [--k=2] [--iters=25]
#include <cstdio>

#include "core/cg.hpp"
#include "sparse/nas_cg.hpp"
#include "support/options.hpp"
#include "support/str.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs", 8));
  const auto k = static_cast<std::uint32_t>(opt.get_int("k", 2));
  const auto iters = static_cast<std::uint32_t>(opt.get_int("iters", 25));

  const sparse::NasCgParams params =
      opt.get("class", "s") == "w" ? sparse::nas_class_w()
                                   : sparse::nas_class_s();
  const sparse::CsrMatrix A = sparse::make_nas_cg_matrix(params);
  const std::vector<double> x(A.nrows(), 1.0);
  std::printf("NAS CG class %s: %s rows, %s nonzeros, %u CG iterations\n",
              opt.get("class", "s").c_str(), fmt_group(A.nrows()).c_str(),
              fmt_group(static_cast<long long>(A.nnz())).c_str(), iters);

  const core::CgResult ref =
      core::reference_cg(A, x, params.shift, iters);

  core::CgOptions copt;
  copt.num_procs = procs;
  copt.k = k;
  copt.cg_iterations = iters;
  const core::CgResult sim = core::run_cg(A, x, params.shift, copt);

  std::printf("zeta      : %.10f (reference %.10f)\n", sim.zeta, ref.zeta);
  std::printf("residual  : %.3e\n", sim.rnorm);
  std::printf("cycles    : %s total = %s mvm (%.1f%%) + %s vector ops\n",
              fmt_group(static_cast<long long>(sim.total_cycles)).c_str(),
              fmt_group(static_cast<long long>(sim.mvm_cycles)).c_str(),
              100.0 * static_cast<double>(sim.mvm_cycles) /
                  static_cast<double>(sim.total_cycles),
              fmt_group(static_cast<long long>(sim.vector_cycles)).c_str());

  core::CgOptions one = copt;
  one.num_procs = 1;
  const core::CgResult seq = core::run_cg(A, x, params.shift, one);
  std::printf("speedup   : %.2f on %u simulated processors (k=%u)\n",
              static_cast<double>(seq.total_cycles) /
                  static_cast<double>(sim.total_cycles),
              procs, k);
  const double err = std::abs(sim.zeta - ref.zeta);
  std::printf("validation: |zeta - reference| = %.2e (expect < 1e-8)\n",
              err);
  return err < 1e-8 ? 0 : 1;
}
