// CFD-flavoured flux loop: two reference groups -> loop fission.
param num_nodes, num_edges;
array real flux[num_nodes];
array real diag[num_nodes];
array real pressure[num_nodes];
array int  left[num_edges];
array int  right[num_edges];
array real coef[num_edges];

forall (e : 0 .. num_edges) {
  f = coef[e] * (pressure[left[e]] - pressure[right[e]]);
  flux[left[e]]  += f;
  flux[right[e]] -= f;
  diag[left[e]]  += f * f;
}
