// Pair-force accumulation with three reduction arrays, one group.
param num_molecules, num_interactions;
array real fx[num_molecules];
array real fy[num_molecules];
array real fz[num_molecules];
array int  m1[num_interactions];
array int  m2[num_interactions];
array real gx[num_interactions];
array real gy[num_interactions];
array real gz[num_interactions];

forall (i : 0 .. num_interactions) {
  fx[m1[i]] += gx[i];
  fx[m2[i]] -= gx[i];
  fy[m1[i]] += gy[i];
  fy[m2[i]] -= gy[i];
  fz[m1[i]] += gz[i];
  fz[m2[i]] -= gz[i];
}
