// The paper's Figure 1: the canonical irregular reduction.
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA1[num_edges];
array int  IA2[num_edges];
array real Y[num_edges];

forall (i : 0 .. num_edges) {
  X[IA1[i]] += Y[i] * 2.0;
  X[IA2[i]] += Y[i] * 2.0;
}
