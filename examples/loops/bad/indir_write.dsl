// Illegal: IA steers the reduction in the first statement but is itself
// accumulated into by the second — the inspector's precomputed schedule
// would go stale mid-loop.
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA[num_edges];
array int  JA[num_edges];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  X[IA[e]]  += Y[e];
  IA[JA[e]] += 1.0;
}
