// Illegal: the indirection array is sized by num_nodes but indexed by a
// loop running to num_edges.
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA[num_nodes];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  X[IA[e]] += Y[e];
}
