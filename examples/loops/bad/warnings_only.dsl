// Legal but smelly: `unused` is never read and `f` is defined twice per
// iteration. Warnings, not errors — the loop still compiles.
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA[num_edges];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  f = Y[e] * 2.0;
  f = f + 1.0;
  unused = Y[e];
  X[IA[e]] += f;
}
