// Legal but wasteful: the same (array, indirection) pair is scattered to
// twice per iteration. Fusing the two statements would halve the scatter
// traffic every lowering strategy pays for (W-STRATEGY-DUP-SCATTER).
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA[num_edges];
array real Y[num_edges];
array real Z[num_edges];

forall (e : 0 .. num_edges) {
  X[IA[e]] += Y[e];
  X[IA[e]] += Z[e];
}
