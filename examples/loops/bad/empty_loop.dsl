// Legal but empty: no reduction statement, so the loop compiles to
// nothing.
param num_nodes, num_edges;
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  t = Y[e] * 2.0;
}
