// Illegal: `t` is read before its definition in the same iteration — a
// loop-carried scalar dependence, outside the irregular-reduction model.
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA[num_edges];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  X[IA[e]] += t * Y[e];
  t = Y[e] * 2.0;
}
