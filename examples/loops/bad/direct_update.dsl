// Illegal here: a direct iteration-aligned update (no indirection) is a
// regular reduction, outside this compiler's irregular model.
param num_nodes, num_edges;
array real X[num_edges];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  X[e] += Y[e] * 0.5;
}
