// Illegal for strategy lowering: two reduction arrays with different
// extents are scattered through the same indirection set, so no single
// ownership map can partition both element spaces (E-STRATEGY-EXTENT-MIX).
param num_nodes, num_cells, num_edges;
array real X[num_nodes];
array real C[num_cells];
array int  IA[num_edges];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  X[IA[e]] += Y[e];
  C[IA[e]] += Y[e];
}
