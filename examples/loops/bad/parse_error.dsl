// Ill-formed: missing semicolon after the accumulate statement.
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA[num_edges];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  X[IA[e]] += Y[e]
}
