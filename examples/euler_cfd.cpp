// euler: unstructured-mesh CFD time stepping under the rotation strategy.
//
// Reproduces, at example scale, the workflow behind Figure 6: build the
// paper's 2,800-node mesh, time-step the edge-flux kernel for a number of
// sweeps, and compare strategies (k, block vs cyclic) side by side,
// including the per-phase load balance that explains why cyclic wins on
// larger machines.
//
// Run:   ./examples/euler_cfd [--procs=16] [--sweeps=25]
#include <cstdio>
#include <iostream>

#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/euler.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs", 16));
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 25));

  const mesh::Mesh mesh = mesh::euler_mesh_small();
  const kernels::EulerKernel kernel(mesh);
  std::printf("euler: %u nodes, %llu edges, %u time steps, P=%u\n",
              mesh.num_nodes,
              static_cast<unsigned long long>(mesh.num_edges()), sweeps,
              procs);

  core::SequentialOptions sopt;
  sopt.sweeps = sweeps;
  const core::RunResult seq = core::run_sequential_kernel(kernel, sopt);

  Table t("euler strategies at P=" + std::to_string(procs));
  t.set_header({"strategy", "cycles", "speedup", "phase-balance CoV"});
  struct S {
    const char* name;
    std::uint32_t k;
    inspector::Distribution dist;
  };
  for (const S s : {S{"1c", 1, inspector::Distribution::Cyclic},
                    S{"2c", 2, inspector::Distribution::Cyclic},
                    S{"4c", 4, inspector::Distribution::Cyclic},
                    S{"2b", 2, inspector::Distribution::Block}}) {
    core::RotationOptions ropt;
    ropt.num_procs = procs;
    ropt.k = s.k;
    ropt.distribution = s.dist;
    ropt.sweeps = sweeps;
    const core::RunResult r = core::run_rotation_engine(kernel, ropt);

    // Check physics state against the sequential run.
    double max_err = 0.0;
    for (std::size_t a = 0; a < seq.node_read.size(); ++a)
      for (std::size_t i = 0; i < seq.node_read[a].size(); ++i)
        max_err = std::max(max_err, std::abs(r.node_read[a][i] -
                                             seq.node_read[a][i]));
    if (max_err > 1e-6) {
      std::fprintf(stderr, "validation failed for %s: err %g\n", s.name,
                   max_err);
      return 1;
    }
    t.add_row({s.name, fmt_group(static_cast<long long>(r.total_cycles)),
               fmt_f(static_cast<double>(seq.total_cycles) /
                         static_cast<double>(r.total_cycles),
                     2),
               fmt_f(coefficient_of_variation(r.phase_iterations), 3)});
  }
  t.print(std::cout);
  std::printf("(all strategies validated against the sequential state "
              "within 1e-6)\n");
  return 0;
}
