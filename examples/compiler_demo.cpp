// Compiler demo: the full Sec. 4 pipeline on a two-reference-group loop.
//
// Shows: extracted reduction/indirection array sections (triplet
// notation), reference grouping (Definition 1), loop fission, the
// generated Threaded-C-style code with the inserted LIGHTINSPECTOR call,
// and finally execution of the compiled loops on the simulated machine
// with validation against direct interpretation.
//
// Run:   ./examples/compiler_demo [--procs=4]
#include <cstdio>

#include "compiler/codegen.hpp"
#include "compiler/compiler.hpp"
#include "core/reduction_engine.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs", 4));

  const char* source = R"(
    // A CFD-flavoured loop updating two node arrays through two
    // indirections, plus a diagnostic array updated through one.
    param num_nodes, num_edges;
    array real flux[num_nodes];
    array real diag[num_nodes];
    array real pressure[num_nodes];
    array int  left[num_edges];
    array int  right[num_edges];
    array real coef[num_edges];

    forall (e : 0 .. num_edges) {
      f = coef[e] * (pressure[left[e]] - pressure[right[e]]);
      flux[left[e]]  += f;
      flux[right[e]] -= f;
      diag[left[e]]  += f * f;
    }
  )";

  std::printf("=== source ===\n%s\n", source);
  const compiler::CompileResult result = compiler::compile(source);

  const compiler::LoopAnalysis& la = result.analysis.loops[0];
  std::printf("=== analysis ===\n");
  std::printf("reduction array sections:\n");
  for (const auto& s : la.reduction_sections)
    std::printf("  %s\n", s.triplet().c_str());
  std::printf("indirection array sections:\n");
  for (const auto& s : la.indirection_sections)
    std::printf("  %s\n", s.triplet().c_str());
  std::printf("reference groups (Definition 1): %zu -> %s\n",
              la.groups.size(),
              la.needs_fission() ? "loop fission required"
                                 : "single loop");
  for (const auto& g : la.groups) {
    std::printf("  {");
    for (const auto& r : g.reduction_arrays) std::printf(" %s", r.c_str());
    std::printf(" } via {");
    for (const auto& i : g.indirection_arrays)
      std::printf(" %s", i.c_str());
    std::printf(" }\n");
  }

  std::printf("\n=== fissioned loops ===\n");
  for (std::size_t i = 0; i < result.analysis.fissioned.size(); ++i) {
    std::printf("-- loop %zu --\n", i);
    for (const auto& s : result.analysis.fissioned[i].loop.body)
      std::printf("  %s\n", compiler::stmt_to_string(s).c_str());
  }

  std::printf("\n=== generated Threaded-C-style code (loop 0) ===\n%s\n",
              result.threaded_c[0].c_str());

  // Bind data and execute each fissioned loop on the simulated machine.
  const std::uint32_t nodes = 500;
  const std::uint32_t edges = 3000;
  Xoshiro256 rng(17);
  compiler::DataEnv env;
  env.params["num_nodes"] = nodes;
  env.params["num_edges"] = edges;
  std::vector<std::uint32_t> l, r;
  std::vector<double> coef, pressure;
  for (std::uint32_t e = 0; e < edges; ++e) {
    l.push_back(static_cast<std::uint32_t>(rng.below(nodes)));
    r.push_back(static_cast<std::uint32_t>(rng.below(nodes)));
    coef.push_back(rng.uniform(0.1, 1.0));
  }
  for (std::uint32_t v = 0; v < nodes; ++v)
    pressure.push_back(rng.uniform(0.5, 2.0));
  env.int_arrays["left"] = std::move(l);
  env.int_arrays["right"] = std::move(r);
  env.real_arrays["coef"] = std::move(coef);
  env.real_arrays["pressure"] = std::move(pressure);

  std::printf("=== execution on %u simulated processors ===\n", procs);
  for (std::size_t i = 0; i < result.analysis.fissioned.size(); ++i) {
    const auto kernel = compiler::bind(result, i, env);
    const auto want = kernel->interpret_reference();

    core::RotationOptions ropt;
    ropt.num_procs = procs;
    ropt.k = 2;
    const core::RunResult run = core::run_rotation_engine(*kernel, ropt);

    double max_err = 0.0;
    for (std::size_t a = 0; a < kernel->reduction_names().size(); ++a) {
      const auto& ref = want.at(kernel->reduction_names()[a]);
      for (std::size_t v = 0; v < ref.size(); ++v)
        max_err = std::max(max_err,
                           std::abs(run.reduction[a][v] - ref[v]));
    }
    std::printf("loop %zu: %llu cycles, max error vs interpreter %.2e\n", i,
                static_cast<unsigned long long>(run.total_cycles), max_err);
    if (max_err > 1e-9) return 1;
  }
  std::printf("all compiled loops validated.\n");
  return 0;
}
