// Quickstart: run the paper's Figure 1 loop under the rotation execution
// strategy on a simulated 8-node EARTH machine, validate the result
// against the sequential reference, and print what the strategy did.
//
//   X(IA(i,1)) += Y(i) * C
//   X(IA(i,2)) += Y(i) * C
//
// Build & run:   ./examples/quickstart [--procs=8] [--k=2] [--sweeps=4]
#include <cstdio>

#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/fig1.hpp"
#include "mesh/generators.hpp"
#include "support/options.hpp"
#include "support/str.hpp"

int main(int argc, char** argv) {
  using namespace earthred;
  const Options opt(argc, argv);
  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs", 8));
  const auto k = static_cast<std::uint32_t>(opt.get_int("k", 2));
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 4));

  // 1. A small irregular mesh: 1,000 nodes, 5,000 edges.
  mesh::Mesh mesh = mesh::make_geometric_mesh({1000, 5000, 42});
  std::printf("mesh: %u nodes, %llu edges\n", mesh.num_nodes,
              static_cast<unsigned long long>(mesh.num_edges()));

  // 2. The Figure 1 kernel with integer-valued Y (so the parallel result
  //    must match the sequential one bitwise).
  const auto kernel = kernels::Fig1Kernel::with_integer_values(std::move(mesh));

  // 3. Sequential reference on one simulated processor.
  core::SequentialOptions sopt;
  sopt.sweeps = sweeps;
  const core::RunResult seq = core::run_sequential_kernel(kernel, sopt);

  // 4. The rotation strategy: iterations distributed cyclically, the
  //    reduction array rotating through k*P phases per sweep, and the
  //    LightInspector assigning iterations to phases — no partitioner, no
  //    communicating inspector.
  core::RotationOptions ropt;
  ropt.num_procs = procs;
  ropt.k = k;
  ropt.sweeps = sweeps;
  ropt.machine.trace = opt.get_bool("gantt", false);
  const core::RunResult par = core::run_rotation_engine(kernel, ropt);

  // 5. Validate.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
    if (par.reduction[0][i] != seq.reduction[0][i]) ++mismatches;

  std::printf("P=%u k=%u sweeps=%u\n", procs, k, sweeps);
  std::printf("sequential: %s cycles\n",
              fmt_group(static_cast<long long>(seq.total_cycles)).c_str());
  std::printf("rotation  : %s cycles (inspector %s), speedup %.2f\n",
              fmt_group(static_cast<long long>(par.total_cycles)).c_str(),
              fmt_group(static_cast<long long>(par.inspector_cycles)).c_str(),
              static_cast<double>(seq.total_cycles) /
                  static_cast<double>(par.total_cycles));
  std::printf("messages  : %llu (%s bytes) — volume independent of the "
              "indirection contents\n",
              static_cast<unsigned long long>(par.machine.total_msgs()),
              fmt_group(static_cast<long long>(par.machine.total_bytes()))
                  .c_str());
  std::printf("validation: %zu mismatching elements (expect 0)\n",
              mismatches);
  if (!par.gantt.empty())
    std::printf("\n%s", par.gantt.c_str());  // --gantt: EU timelines
  return mismatches == 0 ? 0 : 1;
}
