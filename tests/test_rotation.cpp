// Tests for the rotation schedule (Sec. 2.2) and iteration distributions
// (Sec. 5.4.1), including exhaustive property checks of the ownership
// algebra the execution strategy depends on.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "inspector/distribution.hpp"
#include "inspector/rotation.hpp"
#include "support/check.hpp"

namespace earthred::inspector {
namespace {

TEST(Distribution, ParseAndName) {
  EXPECT_EQ(parse_distribution("block"), Distribution::Block);
  EXPECT_EQ(parse_distribution("c"), Distribution::Cyclic);
  EXPECT_THROW(parse_distribution("diag"), check_error);
  EXPECT_STREQ(to_string(Distribution::Cyclic), "cyclic");
}

TEST(Distribution, BlockIsContiguousAndBalanced) {
  const auto owned = distribute_iterations(10, 3, Distribution::Block);
  ASSERT_EQ(owned.size(), 3u);
  EXPECT_EQ(owned[0].size(), 4u);  // remainder goes to the first procs
  EXPECT_EQ(owned[1].size(), 3u);
  EXPECT_EQ(owned[2].size(), 3u);
  EXPECT_EQ(owned[0].front(), 0u);
  EXPECT_EQ(owned[0].back(), 3u);
  EXPECT_EQ(owned[2].back(), 9u);
}

TEST(Distribution, CyclicRoundRobins) {
  const auto owned = distribute_iterations(7, 3, Distribution::Cyclic);
  EXPECT_EQ(owned[0], (std::vector<std::uint32_t>{0, 3, 6}));
  EXPECT_EQ(owned[1], (std::vector<std::uint32_t>{1, 4}));
  EXPECT_EQ(owned[2], (std::vector<std::uint32_t>{2, 5}));
}

TEST(Distribution, EveryIterationOwnedExactlyOnce) {
  for (const auto d : {Distribution::Block, Distribution::Cyclic}) {
    const auto owned = distribute_iterations(1000, 7, d);
    std::vector<int> count(1000, 0);
    for (const auto& v : owned)
      for (auto i : v) ++count[i];
    for (int c : count) EXPECT_EQ(c, 1);
  }
}

TEST(Rotation, PaperFigure3Geometry) {
  // The worked example of Sec. 3.1: 8 nodes, 2 processors, k = 2 ->
  // 4 phases per processor, 2 nodes per portion, remote buffer at 8.
  const RotationSchedule s(8, 2, 2);
  EXPECT_EQ(s.num_portions(), 4u);
  EXPECT_EQ(s.phases_per_sweep(), 4u);
  for (std::uint32_t pid = 0; pid < 4; ++pid)
    EXPECT_EQ(s.portion_size(pid), 2u);
  EXPECT_EQ(s.portion_of(7), 3u);
  EXPECT_EQ(s.portion_of(4), 2u);
  // P0 owns portion ph during phase ph; node 4 is owned by P0 in phase 2
  // (as the example narrates).
  EXPECT_EQ(s.owning_phase(0, s.portion_of(4)), 2u);
  // P1 starts at portion 2: (k*1 + 0) mod 4.
  EXPECT_EQ(s.owned_portion(1, 0), 2u);
}

TEST(Rotation, OwnedPortionFollowsPaperFormula) {
  const RotationSchedule s(64, 4, 2);
  for (std::uint32_t p = 0; p < 4; ++p)
    for (std::uint32_t ph = 0; ph < 8; ++ph)
      EXPECT_EQ(s.owned_portion(p, ph), (2 * p + ph) % 8);
}

TEST(Rotation, OwningPhaseInvertsOwnedPortion) {
  const RotationSchedule s(120, 5, 3);
  for (std::uint32_t p = 0; p < 5; ++p)
    for (std::uint32_t ph = 0; ph < s.phases_per_sweep(); ++ph)
      EXPECT_EQ(s.owning_phase(p, s.owned_portion(p, ph)), ph);
}

TEST(Rotation, NoPortionOwnedTwiceInOnePhase) {
  // In any phase, the P owned portions are distinct (and for k > 1 not all
  // portions are owned — the in-flight window).
  const RotationSchedule s(96, 4, 2);
  for (std::uint32_t ph = 0; ph < s.phases_per_sweep(); ++ph) {
    std::set<std::uint32_t> owned;
    for (std::uint32_t p = 0; p < 4; ++p)
      owned.insert(s.owned_portion(p, ph));
    EXPECT_EQ(owned.size(), 4u);
  }
}

TEST(Rotation, EveryPortionVisitsEveryProcessorOncePerSweep) {
  const RotationSchedule s(96, 4, 2);
  for (std::uint32_t pid = 0; pid < s.num_portions(); ++pid) {
    std::set<std::uint32_t> phases;
    for (std::uint32_t p = 0; p < 4; ++p)
      phases.insert(s.owning_phase(p, pid));
    EXPECT_EQ(phases.size(), 4u) << "portion " << pid;
  }
}

TEST(Rotation, ForwardingReachesNextOwnerKPhasesLater) {
  // After proc p finishes phase ph owning pid, next_owner(p) owns pid at
  // phase ph + k (mod kP) — the k-phase in-flight window.
  for (const std::uint32_t k : {1u, 2u, 4u}) {
    const RotationSchedule s(240, 6, k);
    for (std::uint32_t p = 0; p < 6; ++p) {
      for (std::uint32_t ph = 0; ph < s.phases_per_sweep(); ++ph) {
        const std::uint32_t pid = s.owned_portion(p, ph);
        const std::uint32_t q = s.next_owner(p);
        EXPECT_EQ(s.owning_phase(q, pid),
                  (ph + k) % s.phases_per_sweep());
      }
    }
  }
}

TEST(Rotation, LastOwningPhaseIsInFinalKPhases) {
  const RotationSchedule s(240, 6, 4);
  const std::uint32_t kp = s.phases_per_sweep();
  for (std::uint32_t pid = 0; pid < s.num_portions(); ++pid) {
    const std::uint32_t last = s.last_owning_phase(pid);
    EXPECT_GE(last, kp - 4);
    EXPECT_LT(last, kp);
    // No processor owns pid at any later phase.
    for (std::uint32_t p = 0; p < 6; ++p)
      EXPECT_LE(s.owning_phase(p, pid), last);
    // final_owner really owns it then.
    EXPECT_EQ(s.owned_portion(s.final_owner(pid), last), pid);
  }
}

TEST(Rotation, PortionBoundsPartitionElements) {
  const RotationSchedule s(103, 4, 2);  // deliberately non-divisible
  std::uint32_t covered = 0;
  for (std::uint32_t pid = 0; pid < s.num_portions(); ++pid) {
    EXPECT_EQ(s.portion_begin(pid), covered);
    covered += s.portion_size(pid);
    EXPECT_EQ(s.portion_end(pid), covered);
  }
  EXPECT_EQ(covered, 103u);
  for (std::uint32_t e = 0; e < 103; ++e) {
    const std::uint32_t pid = s.portion_of(e);
    EXPECT_GE(e, s.portion_begin(pid));
    EXPECT_LT(e, s.portion_end(pid));
  }
  EXPECT_EQ(s.max_portion_size(), 13u);
}

TEST(Rotation, InitialPortionsAreTheFirstKOwned) {
  const RotationSchedule s(64, 4, 2);
  for (std::uint32_t p = 0; p < 4; ++p)
    for (std::uint32_t j = 0; j < 2; ++j)
      EXPECT_EQ(s.initial_portion(p, j), s.owned_portion(p, j));
}

TEST(Rotation, RejectsDegenerateShapes) {
  EXPECT_THROW(RotationSchedule(3, 2, 2), precondition_error);  // n < kP
  EXPECT_THROW(RotationSchedule(8, 0, 2), precondition_error);
  EXPECT_THROW(RotationSchedule(8, 2, 0), precondition_error);
}

TEST(Rotation, SingleProcessorDegeneratesGracefully) {
  const RotationSchedule s(10, 1, 1);
  EXPECT_EQ(s.num_portions(), 1u);
  EXPECT_EQ(s.owned_portion(0, 0), 0u);
  EXPECT_EQ(s.next_owner(0), 0u);
  EXPECT_EQ(s.last_owning_phase(0), 0u);
}

TEST(Rotation, BoundaryOneElementPortions) {
  // n == kP: every portion is exactly one element, remainder zero.
  const RotationSchedule s(12, 3, 4);
  EXPECT_EQ(s.num_portions(), 12u);
  EXPECT_EQ(s.max_portion_size(), 1u);
  for (std::uint32_t pid = 0; pid < 12; ++pid) {
    EXPECT_EQ(s.portion_size(pid), 1u);
    EXPECT_EQ(s.portion_begin(pid), pid);
    EXPECT_EQ(s.portion_end(pid), pid + 1);
    EXPECT_EQ(s.portion_of(pid), pid);
  }
  // One element below the boundary is rejected, not silently truncated.
  EXPECT_THROW(RotationSchedule(11, 3, 4), precondition_error);
}

TEST(Rotation, SingleProcessorWithOverlapKeepsAllPortionsLocal) {
  // P == 1 with k > 1: the ring degenerates to self-forwarding, but the
  // phase algebra must still cycle through all k portions.
  const RotationSchedule s(10, 1, 4);
  EXPECT_EQ(s.num_portions(), 4u);
  EXPECT_EQ(s.next_owner(0), 0u);
  EXPECT_EQ(s.ring_sender(0), 0u);
  std::set<std::uint32_t> seen;
  for (std::uint32_t ph = 0; ph < 4; ++ph)
    seen.insert(s.owned_portion(0, ph));
  EXPECT_EQ(seen.size(), 4u);
  for (std::uint32_t pid = 0; pid < 4; ++pid) {
    EXPECT_EQ(s.final_owner(pid), 0u);
    EXPECT_EQ(s.last_owning_phase(pid), pid);
  }
}

TEST(Rotation, RingSenderInvertsNextOwner) {
  for (const std::uint32_t P : {1u, 2u, 3u, 5u, 8u}) {
    const RotationSchedule s(64, P, 2);
    for (std::uint32_t p = 0; p < P; ++p) {
      EXPECT_EQ(s.ring_sender(s.next_owner(p)), p);
      EXPECT_EQ(s.next_owner(s.ring_sender(p)), p);
    }
  }
}

TEST(Rotation, PhaseTransfersMatchesForwardGuard) {
  // Count forwards the engine actually issues (guarded by tsweep <
  // sweeps) and compare with the closed form.
  for (const std::uint32_t P : {1u, 2u, 4u}) {
    for (const std::uint32_t k : {1u, 2u, 3u}) {
      for (const std::uint64_t sweeps : {1ull, 2ull, 5ull}) {
        const RotationSchedule s(60, P, k);
        const std::uint32_t kp = s.num_portions();
        std::vector<std::uint64_t> arrivals(kp, 0);
        for (std::uint64_t sweep = 0; sweep < sweeps; ++sweep) {
          for (std::uint32_t ph = 0; ph < kp; ++ph) {
            std::uint32_t tph = ph + k;
            const std::uint64_t tsweep = sweep + (tph >= kp ? 1 : 0);
            tph %= kp;
            if (tsweep < sweeps) ++arrivals[tph];
          }
        }
        for (std::uint32_t ph = 0; ph < kp; ++ph)
          EXPECT_EQ(arrivals[ph], s.phase_transfers(ph, sweeps))
              << "P=" << P << " k=" << k << " sweeps=" << sweeps
              << " ph=" << ph;
      }
    }
  }
}


TEST(Distribution, BlockCyclicChunks) {
  const auto owned = distribute_iterations(20, 2, Distribution::BlockCyclic, 4);
  // Chunks of 4 round-robin: P0 gets 0-3, 8-11, 16-19; P1 gets 4-7, 12-15.
  EXPECT_EQ(owned[0], (std::vector<std::uint32_t>{0, 1, 2, 3, 8, 9, 10, 11,
                                                  16, 17, 18, 19}));
  EXPECT_EQ(owned[1], (std::vector<std::uint32_t>{4, 5, 6, 7, 12, 13, 14,
                                                  15}));
}

TEST(Distribution, BlockCyclicExtremesMatchBlockAndCyclic) {
  // bc_block = 1 is exactly cyclic.
  const auto bc1 = distribute_iterations(33, 4, Distribution::BlockCyclic, 1);
  const auto cyc = distribute_iterations(33, 4, Distribution::Cyclic);
  EXPECT_EQ(bc1, cyc);
  // Every iteration owned exactly once for arbitrary block sizes.
  for (const std::uint32_t b : {3u, 7u, 100u}) {
    const auto owned = distribute_iterations(50, 3,
                                             Distribution::BlockCyclic, b);
    std::vector<int> count(50, 0);
    for (const auto& v : owned)
      for (const auto i : v) ++count[i];
    for (const int c : count) EXPECT_EQ(c, 1);
  }
}

TEST(Distribution, ParseBlockCyclic) {
  EXPECT_EQ(parse_distribution("bc"), Distribution::BlockCyclic);
  EXPECT_EQ(parse_distribution("block-cyclic"), Distribution::BlockCyclic);
  EXPECT_STREQ(to_string(Distribution::BlockCyclic), "block-cyclic");
}

}  // namespace
}  // namespace earthred::inspector
