// Coverage for the remaining small surfaces: logging, table rules,
// machine-stats helpers, strformat, and compiled kernels on the native
// thread engine.
#include <gtest/gtest.h>

#include "compiler/compiler.hpp"
#include "core/native_engine.hpp"
#include "earth/stats.hpp"
#include "support/log.hpp"
#include "support/str.hpp"
#include "support/table.hpp"
#include "support/prng.hpp"

namespace earthred {
namespace {

TEST(Log, LevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
  set_log_level(LogLevel::Off);
  EXPECT_EQ(log_level(), LogLevel::Off);
  // Emitting below the threshold must be a no-op (and not crash).
  ER_LOG(Info) << "suppressed " << 42;
  set_log_level(before);
}

TEST(Log, StreamsArbitraryTypes) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::Error);
  ER_LOG(Error) << "value=" << 3.5 << " name=" << std::string("x");
  set_log_level(before);
}

TEST(Table, RuleSeparatesGroups) {
  Table t;
  t.set_header({"a"});
  t.add_row({"1"});
  t.add_rule();
  t.add_row({"2"});
  const std::string out = t.to_string();
  // header rule + group rule + top/bottom: at least 4 dashes lines.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("---"); pos != std::string::npos;
       pos = out.find("---", pos + 1))
    ++rules;
  EXPECT_GE(rules, 4u);
  EXPECT_EQ(t.rows(), 3u);  // 2 data rows + 1 rule
}

TEST(Table, LeftAlignmentOption) {
  Table t;
  t.set_header({"name", "val"}, {Align::Left, Align::Left});
  t.add_row({"x", "1"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("| x    |"), std::string::npos);
}

TEST(Str, StrformatHandlesTypes) {
  EXPECT_EQ(strformat("%d-%s-%.1f", 7, "ab", 2.5), "7-ab-2.5");
  EXPECT_EQ(strformat("%s", ""), "");
}

TEST(MachineStats, AggregateHelpers) {
  earth::MachineStats s;
  s.makespan = 1000;
  s.node.resize(2);
  s.node[0].msgs_sent = 3;
  s.node[0].bytes_sent = 100;
  s.node[0].eu_busy = 600;
  s.node[0].cache_hits = 90;
  s.node[0].cache_misses = 10;
  s.node[1].msgs_sent = 2;
  s.node[1].bytes_sent = 50;
  s.node[1].eu_busy = 400;
  EXPECT_EQ(s.total_msgs(), 5u);
  EXPECT_EQ(s.total_bytes(), 150u);
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.1);
  EXPECT_DOUBLE_EQ(s.eu_utilization(), 0.5);

  earth::MachineStats empty;
  EXPECT_DOUBLE_EQ(empty.cache_miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.eu_utilization(), 0.0);
}

TEST(CompiledKernel, RunsOnNativeThreadEngine) {
  const char* src = R"(
    param n, m;
    array real X[n];
    array int IA1[m]; array int IA2[m];
    array real Y[m];
    forall (i : 0 .. m) {
      X[IA1[i]] += Y[i] * 2.0;
      X[IA2[i]] -= Y[i];
    }
  )";
  compiler::DataEnv env;
  env.params["n"] = 48;
  env.params["m"] = 240;
  Xoshiro256 rng(12);
  std::vector<std::uint32_t> ia1, ia2;
  std::vector<double> y;
  for (int i = 0; i < 240; ++i) {
    ia1.push_back(static_cast<std::uint32_t>(rng.below(48)));
    ia2.push_back(static_cast<std::uint32_t>(rng.below(48)));
    y.push_back(static_cast<double>(rng.range(-4, 4)));
  }
  env.int_arrays["IA1"] = std::move(ia1);
  env.int_arrays["IA2"] = std::move(ia2);
  env.real_arrays["Y"] = std::move(y);

  const auto compiled = compiler::compile(src, {.optimize = true});
  const auto kernel = compiler::bind(compiled, 0, env);
  const auto want = kernel->interpret_reference();

  core::NativeOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 2;
  const core::NativeResult r = core::run_native_engine(*kernel, opt);
  const auto& x = want.at("X");
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(r.reduction[0][i], x[i]) << "element " << i;
}

}  // namespace
}  // namespace earthred
