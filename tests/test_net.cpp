// The fault-tolerant network front end: wire-protocol round trips, the
// committed malformed-frame corpus, serve/submit/ping over localhost
// (including bit-identity of remote results against in-process runs),
// overload shedding, graceful drain, the client's retry/backoff and
// circuit-breaker machinery, and the seeded chaos suite that drives every
// byte-fault class through real sockets.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/stream.hpp"
#include "net/wire.hpp"
#include "service/job_builder.hpp"
#include "service/job_scheduler.hpp"
#include "service/serve_loop.hpp"

namespace earthred {
namespace {

using service::JobBuild;
using service::JobBuilder;
using service::JobLimits;
using service::JobOutcome;
using service::JobScheduler;
using service::JobState;
using service::ServeConfig;
using service::ServeLoop;
using service::ServeStats;

constexpr const char* kSmallJob =
    "kernel=fig1 nodes=80 edges=400 procs=4 k=2 sweeps=2 name=wire";

JobScheduler::Config sched_config(std::uint32_t workers = 2) {
  JobScheduler::Config cfg;
  cfg.workers = workers;
  cfg.queue_capacity = 64;
  cfg.default_deadline = 30.0;
  return cfg;
}

/// A scheduler + ServeLoop pair wired the way the CLI wires them:
/// JobBuilder with file IO disabled (remote peers must not name server
/// paths) on an ephemeral localhost port.
struct TestServer {
  JobScheduler sched;
  std::shared_ptr<JobBuilder> builder;
  std::unique_ptr<ServeLoop> loop;

  explicit TestServer(ServeConfig scfg = {},
                      JobScheduler::Config cfg = sched_config())
      : sched(cfg) {
    JobLimits limits;
    limits.allow_file_io = false;
    builder = std::make_shared<JobBuilder>(limits);
    loop = std::make_unique<ServeLoop>(
        sched,
        [b = builder](std::string_view line) { return b->build(line, 0); },
        scfg);
  }

  bool start() {
    std::string error;
    const bool ok = loop->start(&error);
    EXPECT_TRUE(ok) << error;
    return ok;
  }
  std::uint16_t port() const { return loop->port(); }
  void drain() {
    loop->request_drain();
    loop->wait();
    sched.drain();
  }
};

net::ClientConfig client_config(std::uint16_t port) {
  net::ClientConfig cfg;
  cfg.port = port;
  cfg.connect_timeout_ms = 2000;
  cfg.request_timeout_ms = 30000;
  cfg.max_attempts = 3;
  cfg.backoff_base_ms = 5;
  cfg.backoff_cap_ms = 40;
  return cfg;
}

// ---- wire protocol ------------------------------------------------------

TEST(Wire, FrameRoundTripAndHeaderFields) {
  std::vector<std::byte> payload;
  for (int i = 0; i < 100; ++i)
    payload.push_back(static_cast<std::byte>(i));
  const auto frame = net::encode_frame(net::FrameType::Submit, 7, payload);
  ASSERT_EQ(frame.size(), net::kHeaderBytes + payload.size());

  std::string detail;
  EXPECT_EQ(net::classify_frame_bytes(frame, net::kDefaultMaxPayload,
                                      &detail),
            "")
      << detail;

  const net::HeaderParse h =
      net::parse_header(frame, net::kDefaultMaxPayload);
  ASSERT_TRUE(h.ok()) << h.code;
  EXPECT_EQ(h.type, net::FrameType::Submit);
  EXPECT_EQ(h.seq, 7u);
  EXPECT_EQ(h.payload_len, payload.size());
}

TEST(Wire, TypedBodiesRoundTrip) {
  net::RejectBody rej{"E-NET-BUSY", "inflight limit reached"};
  net::RejectBody rej2;
  ASSERT_TRUE(net::decode_reject(net::encode_reject(rej), &rej2));
  EXPECT_EQ(rej2.code, rej.code);
  EXPECT_EQ(rej2.detail, rej.detail);

  net::ResultBody res;
  res.state = static_cast<std::uint32_t>(JobState::Done);
  res.cache_hit = 1;
  res.plan_source = 3;
  res.exec_seconds = 0.25;
  res.digest = 0xabcdef0123456789ull;
  res.name = "job-a";
  net::ResultBody res2;
  ASSERT_TRUE(net::decode_result(net::encode_result(res), &res2));
  EXPECT_EQ(res2.state, res.state);
  EXPECT_EQ(res2.digest, res.digest);
  EXPECT_EQ(res2.name, res.name);
  EXPECT_EQ(res2.exec_seconds, res.exec_seconds);

  net::PongBody pong;
  pong.queue_depth = 3;
  pong.in_flight = 2;
  pong.completed = 11;
  pong.draining = 1;
  net::PongBody pong2;
  ASSERT_TRUE(net::decode_pong(net::encode_pong(pong), &pong2));
  EXPECT_EQ(pong2.queue_depth, pong.queue_depth);
  EXPECT_EQ(pong2.draining, pong.draining);
  EXPECT_EQ(pong2.version, net::kVersion);
}

TEST(Wire, DecodersRejectGarbageWithoutThrowing) {
  std::vector<std::byte> junk(13, std::byte{0xee});
  net::RejectBody rej;
  EXPECT_FALSE(net::decode_reject(junk, &rej));
  net::ResultBody res;
  EXPECT_FALSE(net::decode_result(junk, &res));
  net::PongBody pong;
  EXPECT_FALSE(net::decode_pong(junk, &pong));
}

// The committed corpus: every file's rejection code is declared by its
// name (`<code>-*.frame` -> E-NET-<CODE>), exactly like the plan-store
// corruption corpus. A framing regression cannot regenerate the corpus
// into passing — the bytes are in the tree.
TEST(Wire, CommittedMalformedFrameCorpusIsRejected) {
  const std::filesystem::path dir =
      std::filesystem::path(EARTHRED_SOURCE_DIR) / "examples" / "frames" /
      "bad";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".frame") continue;
    const std::string stem = entry.path().stem().string();
    std::string prefix = stem.substr(0, stem.find('-'));
    for (char& c : prefix) c = static_cast<char>(std::toupper(c));
    const std::string expected = "E-NET-" + prefix;

    std::ifstream is(entry.path(), std::ios::binary);
    ASSERT_TRUE(is.good()) << entry.path();
    std::vector<char> raw((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
    std::string detail;
    const std::string code = net::classify_frame_bytes(
        std::as_bytes(std::span(raw)), net::kDefaultMaxPayload, &detail);
    EXPECT_EQ(code, expected) << entry.path() << ": " << detail;
    ++checked;
  }
  EXPECT_GE(checked, 8u) << "corpus went missing";
}

// ---- the hardened job-line parser (shared by every front end) ----------

TEST(JobLineHardening, EveryLimitRejectsWithItsCode) {
  JobLimits limits;
  limits.allow_file_io = false;
  JobBuilder builder(limits);

  const auto code = [&](const std::string& line) {
    return builder.build(line, 1).code;
  };

  EXPECT_EQ(code(std::string(5000, 'a')), "E-JOB-LINELEN");
  {
    std::string many;
    for (int i = 0; i < 40; ++i) many += "sweeps=1 ";
    EXPECT_EQ(code(many), "E-JOB-KEYCOUNT");
  }
  EXPECT_EQ(code("wat=1"), "E-JOB-KEY");
  EXPECT_EQ(code("kernel=fig1 nodes=80 edges=400 procs=banana"),
            "E-JOB-VALUE");
  EXPECT_EQ(code("kernel=fig1 nodes=80 edges=400 deadline=-1"),
            "E-JOB-RANGE");
  EXPECT_EQ(code("kernel=fig1 nodes=80 edges=400 mutate=99999999"),
            "E-JOB-MUTATE");
  EXPECT_EQ(code("mesh=/etc/passwd procs=4"), "E-JOB-FILEIO");
  EXPECT_EQ(code("dsl=loop.dsl"), "E-JOB-FILEIO");
  EXPECT_EQ(code("   # just a comment"), "E-JOB-EMPTY");
  EXPECT_EQ(code(""), "E-JOB-EMPTY");

  const JobBuild ok = builder.build(kSmallJob, 1);
  EXPECT_TRUE(ok.ok()) << ok.code << ": " << ok.detail;
  ASSERT_EQ(ok.requests.size(), 1u);
}

// ---- serve / submit / ping over localhost ------------------------------

TEST(ServeLoop, SubmitPingAndRemoteDigestMatchesInProcessRun) {
  TestServer server;
  ASSERT_TRUE(server.start());

  net::Client client(client_config(server.port()));
  const net::Client::PingReply ping = client.ping();
  ASSERT_TRUE(ping.ok()) << ping.code << ": " << ping.detail;
  EXPECT_EQ(ping.pong.version, net::kVersion);
  EXPECT_EQ(ping.pong.draining, 0u);

  const net::Client::Reply r = client.submit(kSmallJob);
  ASSERT_TRUE(r.ok()) << r.code << ": " << r.detail;
  EXPECT_EQ(static_cast<JobState>(r.result.state), JobState::Done);
  EXPECT_EQ(r.result.name, "wire");
  EXPECT_NE(r.result.digest, 0u);

  // Acceptance: the networked path is bit-identical to an in-process
  // batch run of the same job line, proven by the result digest.
  JobBuilder local;
  JobBuild b = local.build(kSmallJob, 1);
  ASSERT_TRUE(b.ok()) << b.code;
  JobScheduler local_sched(sched_config());
  const service::JobHandle h =
      local_sched.submit(std::move(b.requests[0]));
  const JobOutcome& o = h.wait();
  ASSERT_EQ(o.state, JobState::Done) << o.error;
  EXPECT_EQ(r.result.digest, service::result_digest(o.native));

  // A malformed job line is a coded reply, not a dropped connection.
  const net::Client::Reply bad = client.submit("mesh=/etc/passwd");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code, "E-JOB-FILEIO");

  server.drain();
  const ServeStats stats = server.loop->stats();
  EXPECT_EQ(stats.open_connections(), 0u);
  EXPECT_EQ(stats.submits, 2u);
  EXPECT_EQ(stats.results_sent, 1u);
  EXPECT_EQ(stats.parse_rejects, 1u);
}

TEST(ServeLoop, InflightLimitShedsWithBusy) {
  ServeConfig scfg;
  scfg.max_inflight = 0;  // every submission is over the limit
  TestServer server(scfg);
  ASSERT_TRUE(server.start());

  net::ClientConfig cfg = client_config(server.port());
  cfg.max_attempts = 2;  // E-NET-BUSY is retryable; prove it retried
  net::Client client(cfg);
  const net::Client::Reply r = client.submit(kSmallJob);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code, "E-NET-BUSY");
  EXPECT_EQ(r.attempts, 2u);

  server.drain();
  EXPECT_GE(server.loop->stats().shed_busy, 2u);
}

TEST(ServeLoop, ConnectionLimitShedsWithMaxconn) {
  ServeConfig scfg;
  scfg.max_connections = 1;
  TestServer server(scfg);
  ASSERT_TRUE(server.start());

  std::string error;
  const auto first =
      net::TcpStream::connect("127.0.0.1", server.port(), 1000, &error);
  ASSERT_NE(first, nullptr) << error;
  // `first` holds the only slot; the next connection must be shed.
  net::ClientConfig cfg = client_config(server.port());
  cfg.max_attempts = 1;
  net::Client shed(cfg);
  const net::Client::PingReply r = shed.ping();
  ASSERT_FALSE(r.ok());
  // The reject frame races the close; both surface as a coded refusal.
  EXPECT_TRUE(r.code == "E-NET-MAXCONN" || r.code == "E-NET-CONN" ||
              r.code == "E-NET-TRUNCATED")
      << r.code;

  server.drain();
  EXPECT_GE(server.loop->stats().shed_maxconn, 1u);
}

TEST(ServeLoop, OversizedFrameRejectedFromHeaderAlone) {
  TestServer server;
  ASSERT_TRUE(server.start());

  std::string error;
  auto s = net::TcpStream::connect("127.0.0.1", server.port(), 1000,
                                   &error);
  ASSERT_NE(s, nullptr) << error;
  // A header promising 15 MB: the server must reject without waiting for
  // (or allocating) any payload.
  auto frame = net::encode_frame(net::FrameType::Submit, 9, {});
  const std::uint32_t huge = 15u << 20;
  std::memcpy(frame.data() + 24, &huge, sizeof(huge));
  ASSERT_TRUE(s->write_all(frame.data(), net::kHeaderBytes, 1000).ok());

  const net::FrameRead reply =
      net::read_frame(*s, net::kDefaultMaxPayload, 2000);
  ASSERT_TRUE(reply.ok()) << reply.code;
  ASSERT_EQ(reply.type, net::FrameType::Reject);
  net::RejectBody body;
  ASSERT_TRUE(net::decode_reject(reply.payload, &body));
  EXPECT_EQ(body.code, "E-NET-OVERSIZE");

  server.drain();
  EXPECT_GE(server.loop->stats().bad_frames, 1u);
}

TEST(ServeLoop, DrainRejectsNewWorkThenExits) {
  JobScheduler::Config cfg = sched_config(1);
  TestServer server(ServeConfig{}, cfg);
  ASSERT_TRUE(server.start());

  // A genuinely slow job holds the drain window open.
  std::thread slow_submitter([&] {
    net::Client slow(client_config(server.port()));
    (void)slow.submit(
        "kernel=euler nodes=400000 edges=2400000 procs=8 k=2 sweeps=4 "
        "deadline=60 name=slow");
  });
  // Wait until the slow job is actually inside the scheduler. The window
  // is generous: synthesizing the 2.4M-edge mesh happens before the
  // submission and can take seconds on a loaded test machine.
  for (int i = 0; i < 3000 && server.sched.stats().pending() == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_GT(server.sched.stats().pending(), 0u);

  // The late client's connection is established (and a request served on
  // it) *before* the drain begins: a draining server keeps live
  // connections open so their in-flight results can be collected, and
  // sheds their new submissions with a reasoned refusal. New
  // *connections* are refused outright (the listen socket closes).
  net::ClientConfig ccfg = client_config(server.port());
  ccfg.max_attempts = 3;
  net::Client late(ccfg);
  ASSERT_TRUE(late.ping().ok());

  server.loop->request_drain();
  EXPECT_TRUE(server.loop->draining());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  const net::Client::Reply r = late.submit(kSmallJob);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code, "E-NET-DRAINING");
  EXPECT_EQ(r.attempts, 1u) << "drain refusals must not be retried";

  slow_submitter.join();
  server.loop->wait();
  EXPECT_FALSE(server.loop->running());
  server.sched.drain();

  const ServeStats stats = server.loop->stats();
  EXPECT_EQ(stats.open_connections(), 0u);
  EXPECT_GE(stats.shed_draining, 1u);
}

// ---- the retry / breaker client ----------------------------------------

TEST(Client, CircuitBreakerTripsFastFailsAndRecovers) {
  // Reserve a port that is free right now, then release it: connecting
  // fails until a real server binds it below.
  std::string error;
  const int probe_fd = net::tcp_listen("127.0.0.1", 0, 4, &error);
  ASSERT_GE(probe_fd, 0) << error;
  const std::uint16_t port = net::tcp_local_port(probe_fd);
  ::close(probe_fd);

  net::ClientConfig cfg = client_config(port);
  cfg.max_attempts = 1;
  cfg.connect_timeout_ms = 200;
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown_ms = 100;
  net::Client client(cfg);

  EXPECT_EQ(client.ping().code, "E-NET-CONN");
  // The second consecutive failure reaches the threshold; the client
  // surfaces the tripped breaker so the caller knows further calls will
  // fail fast.
  EXPECT_EQ(client.ping().code, "E-NET-CIRCUIT");
  EXPECT_EQ(client.breaker_state(), net::BreakerState::Open);
  EXPECT_EQ(client.stats().breaker_trips, 1u);
  // Open breaker: fail fast, no connection attempt at all.
  const net::Client::PingReply fast = client.ping();
  EXPECT_EQ(fast.code, "E-NET-CIRCUIT");
  EXPECT_GE(client.stats().breaker_fast_fails, 1u);

  // A server appears on the reserved port; after the cooldown the
  // half-open probe closes the breaker again.
  ServeConfig scfg;
  scfg.port = port;
  TestServer server(scfg);
  ASSERT_TRUE(server.start());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const net::Client::PingReply recovered = client.ping();
  EXPECT_TRUE(recovered.ok()) << recovered.code << ": " << recovered.detail;
  EXPECT_EQ(client.breaker_state(), net::BreakerState::Closed);

  server.drain();
}

// ---- chaos: every byte-fault class through real sockets ----------------

struct ChaosCase {
  const char* label;
  net::ByteFaultConfig faults;
};

std::vector<ChaosCase> chaos_cases() {
  std::vector<ChaosCase> cases;
  {
    net::ByteFaultConfig f;
    f.seed = 0xd209;
    f.drop = 0.25;
    cases.push_back({"drop", f});
  }
  {
    net::ByteFaultConfig f;
    f.seed = 0xc0221;
    f.corrupt = 0.25;
    cases.push_back({"corrupt", f});
  }
  {
    net::ByteFaultConfig f;
    f.seed = 0xd112;
    f.duplicate = 0.25;
    cases.push_back({"duplicate", f});
  }
  {
    net::ByteFaultConfig f;
    f.seed = 0xde1a;
    f.delay = 0.5;
    f.delay_ms = 10;
    cases.push_back({"delay", f});
  }
  {
    net::ByteFaultConfig f;
    f.seed = 0x5024;
    f.short_read = 0.6;
    cases.push_back({"short-read", f});
  }
  {
    net::ByteFaultConfig f;
    f.seed = 0xdead;
    f.die_after_bytes = 300;
    cases.push_back({"peer-death", f});
  }
  return cases;
}

TEST(Chaos, EveryFaultClassTerminatesAndServerSurvives) {
  ServeConfig scfg;
  scfg.read_timeout_ms = 300;
  scfg.write_timeout_ms = 500;
  scfg.idle_timeout_ms = 5000;
  TestServer server(scfg);
  ASSERT_TRUE(server.start());

  for (const ChaosCase& c : chaos_cases()) {
    net::ClientConfig cfg = client_config(server.port());
    cfg.request_timeout_ms = 1500;
    cfg.max_attempts = 3;
    cfg.breaker_threshold = 1000;  // never trip: we want the retries
    cfg.wrap_stream = [&c](std::unique_ptr<net::Stream> inner) {
      return std::unique_ptr<net::Stream>(
          new net::FaultyStream(std::move(inner), c.faults));
    };
    net::Client client(cfg);

    std::uint64_t ok = 0, coded = 0;
    for (int i = 0; i < 6; ++i) {
      // Every call must terminate with either a result or an E-* code —
      // never hang, never throw, never crash the server.
      const net::Client::Reply r = client.submit(kSmallJob);
      if (r.ok()) {
        ++ok;
        EXPECT_EQ(static_cast<JobState>(r.result.state), JobState::Done)
            << c.label;
      } else {
        ++coded;
        EXPECT_EQ(r.code.rfind("E-", 0), 0u)
            << c.label << " gave uncoded failure '" << r.code << "'";
      }
    }
    EXPECT_EQ(ok + coded, 6u) << c.label;

    // The server is still healthy after this fault class: a clean client
    // gets a pong.
    net::Client healthy(client_config(server.port()));
    const net::Client::PingReply ping = healthy.ping();
    EXPECT_TRUE(ping.ok())
        << c.label << " wedged the server: " << ping.code;
  }

  server.drain();
  const ServeStats stats = server.loop->stats();
  // No leaked connections, no unexplained silence: every accept was
  // matched by a close, and whatever was shed was shed with a reason.
  EXPECT_EQ(stats.open_connections(), 0u);
  EXPECT_EQ(server.sched.stats().pending(), 0u);
}

}  // namespace
}  // namespace earthred
