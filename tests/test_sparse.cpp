// Tests for the sparse-matrix substrate and the NAS-CG generator.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "sparse/csr.hpp"
#include "sparse/nas_cg.hpp"
#include "support/check.hpp"

namespace earthred::sparse {
namespace {

TEST(Csr, FromTripletsSortsAndSumsDuplicates) {
  std::vector<Triplet> ts{
      {1, 2, 3.0}, {0, 1, 1.0}, {1, 2, 4.0}, {1, 0, 2.0}};
  const CsrMatrix m = CsrMatrix::from_triplets(2, 3, ts);
  m.validate();
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.row_nnz(0), 1u);
  EXPECT_EQ(m.row_nnz(1), 2u);
  // Row 1: (0, 2.0), (2, 7.0) in column order.
  EXPECT_EQ(m.col_idx()[1], 0u);
  EXPECT_DOUBLE_EQ(m.values()[2], 7.0);
}

TEST(Csr, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               precondition_error);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, 2, 1.0}}),
               precondition_error);
}

TEST(Csr, SpmvMatchesDense) {
  // [1 0 2; 0 3 0; 4 0 5] * [1 2 3]^T = [7, 6, 19]
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, 3, {{0, 0, 1}, {0, 2, 2}, {1, 1, 3}, {2, 0, 4}, {2, 2, 5}});
  std::vector<double> x{1, 2, 3}, y(3);
  m.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 19.0);
}

TEST(Csr, SpmvSizeMismatchThrows) {
  const CsrMatrix m = CsrMatrix::from_triplets(2, 3, {{0, 0, 1}});
  std::vector<double> x(2), y(2);
  EXPECT_THROW(m.spmv(x, y), precondition_error);
}

TEST(Csr, TransposeRoundTrips) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      2, 3, {{0, 2, 5}, {1, 0, -1}, {1, 1, 2}});
  const CsrMatrix tt = m.transpose().transpose();
  EXPECT_EQ(tt.nrows(), m.nrows());
  EXPECT_TRUE(std::equal(m.values().begin(), m.values().end(),
                         tt.values().begin()));
  EXPECT_TRUE(std::equal(m.col_idx().begin(), m.col_idx().end(),
                         tt.col_idx().begin()));
}

TEST(Csr, SymmetryDetection) {
  const CsrMatrix sym = CsrMatrix::from_triplets(
      2, 2, {{0, 1, 3}, {1, 0, 3}, {0, 0, 1}});
  EXPECT_TRUE(sym.is_symmetric());
  const CsrMatrix asym =
      CsrMatrix::from_triplets(2, 2, {{0, 1, 3}, {1, 0, 2}});
  EXPECT_FALSE(asym.is_symmetric());
}

TEST(NasCg, ClassSShapeAndStructure) {
  const NasCgParams p = nas_class_s();
  const CsrMatrix m = make_nas_cg_matrix(p);
  EXPECT_EQ(m.nrows(), 1400u);
  EXPECT_EQ(m.ncols(), 1400u);
  // NPB class S reports ~78148 nonzeros for this construction; allow a
  // band since our sprnvc consumes randlc draws in a fixed but not
  // bit-identical order.
  EXPECT_GT(m.nnz(), 50000u);
  EXPECT_LT(m.nnz(), 110000u);
  // Outer products of v with itself are symmetric; diagonal shifted.
  EXPECT_TRUE(m.is_symmetric(1e-9));
}

TEST(NasCg, DiagonalIsNegativeDominated) {
  // a(i,i) includes rcond - shift = 0.1 - 10 < 0 for class S, plus the
  // accumulated 0.25-ish outer-product diagonal: expect well below zero.
  const CsrMatrix m = make_nas_cg_matrix(nas_class_s());
  for (std::uint32_t r = 0; r < m.nrows(); ++r) {
    bool found = false;
    for (std::uint64_t j = m.row_ptr()[r]; j < m.row_ptr()[r + 1]; ++j) {
      if (m.col_idx()[j] == r) {
        found = true;
        EXPECT_LT(m.values()[j], 0.0);
      }
    }
    ASSERT_TRUE(found) << "missing diagonal in row " << r;
  }
}

TEST(NasCg, DeterministicForSeed) {
  const CsrMatrix a = make_nas_cg_matrix(nas_class_s());
  const CsrMatrix b = make_nas_cg_matrix(nas_class_s());
  EXPECT_EQ(a.nnz(), b.nnz());
  EXPECT_TRUE(std::equal(a.values().begin(), a.values().end(),
                         b.values().begin()));
}

TEST(NasCg, EveryRowNonEmpty) {
  const CsrMatrix m = make_nas_cg_matrix(nas_class_s());
  for (std::uint32_t r = 0; r < m.nrows(); ++r)
    EXPECT_GE(m.row_nnz(r), 1u);
}

TEST(NasCg, PaperClassParamsMatch) {
  EXPECT_EQ(nas_class_w().n, 7000u);
  EXPECT_EQ(nas_class_a().n, 14000u);
  EXPECT_EQ(nas_class_b().n, 75000u);
  EXPECT_EQ(nas_class_b_scaled(5).n, 15000u);
}

TEST(NasCg, RejectsBadParams) {
  NasCgParams p = nas_class_s();
  p.rcond = 1.5;
  EXPECT_THROW(make_nas_cg_matrix(p), precondition_error);
}

}  // namespace
}  // namespace earthred::sparse
