// Tests for machine execution tracing and the text Gantt renderer.
#include <gtest/gtest.h>

#include <sstream>

#include "earth/machine.hpp"
#include "earth/trace.hpp"

namespace earthred::earth {
namespace {

TEST(Trace, DisabledByDefault) {
  MachineConfig cfg;
  EarthMachine m(cfg);
  FiberId f = m.add_fiber(0, 1, [](FiberContext& ctx) { ctx.charge(10); });
  m.credit(f);
  m.run();
  EXPECT_EQ(m.trace().size(), 0u);
}

TEST(Trace, RecordsFiberDispatchWithTimesAndNames) {
  MachineConfig cfg;
  cfg.trace = true;
  EarthMachine m(cfg);
  FiberId f = m.add_fiber(
      0, 1, [](FiberContext& ctx) { ctx.charge(100); }, "worker");
  m.credit(f);
  m.run();
  ASSERT_GE(m.trace().size(), 1u);
  const TraceRecord& r = m.trace().records()[0];
  EXPECT_EQ(r.kind, TraceRecord::Kind::Fiber);
  EXPECT_EQ(r.label, "worker");
  EXPECT_EQ(r.node, 0u);
  EXPECT_EQ(r.end - r.start, 100 + cfg.cost.fiber_switch);
}

TEST(Trace, RecordsSuEvents) {
  MachineConfig cfg;
  cfg.trace = true;
  cfg.num_nodes = 2;
  EarthMachine m(cfg);
  FiberId sink = m.add_fiber(1, 1, [](FiberContext&) {});
  FiberId src = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.sync(sink);
  });
  m.credit(src);
  m.run();
  int su = 0;
  for (const TraceRecord& r : m.trace().records())
    su += (r.kind == TraceRecord::Kind::SuEvent);
  EXPECT_GE(su, 1);
}

TEST(Trace, CsvDumpWellFormed) {
  MachineConfig cfg;
  cfg.trace = true;
  EarthMachine m(cfg);
  FiberId f = m.add_fiber(
      0, 1, [](FiberContext& ctx) { ctx.charge(5); }, "csvfiber");
  m.credit(f);
  m.run();
  std::ostringstream os;
  m.trace().dump_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("start,end,node,kind,label"), std::string::npos);
  EXPECT_NE(out.find("csvfiber"), std::string::npos);
  EXPECT_NE(out.find("fiber"), std::string::npos);
}

TEST(Trace, GanttShowsBusyNodes) {
  MachineConfig cfg;
  cfg.trace = true;
  cfg.num_nodes = 2;
  EarthMachine m(cfg);
  // Node 0 busy the whole horizon; node 1 idle.
  FiberId f = m.add_fiber(0, 1, [](FiberContext& ctx) { ctx.charge(5000); });
  m.credit(f);
  m.run();
  const std::string g = m.trace().render_gantt(2, 40);
  // Two node rows plus a header.
  EXPECT_NE(g.find("  0 |"), std::string::npos);
  EXPECT_NE(g.find("  1 |"), std::string::npos);
  // Node 0's row saturated, node 1's row blank.
  const auto row0 = g.find("  0 |");
  const auto row1 = g.find("  1 |");
  const std::string cells0 = g.substr(row0 + 5, 40);
  const std::string cells1 = g.substr(row1 + 5, 40);
  EXPECT_NE(cells0.find('#'), std::string::npos);
  EXPECT_EQ(cells1.find('#'), std::string::npos);
}

TEST(Trace, GanttOverlapVisualizesBuckets) {
  Trace t;
  t.record({0, 500, 0, TraceRecord::Kind::Fiber, "a"});
  t.record({500, 1000, 0, TraceRecord::Kind::Fiber, "b"});
  const std::string g = t.render_gantt(1, 10);
  // Fully busy node: all buckets '#'.
  const auto row = g.find("  0 |");
  ASSERT_NE(row, std::string::npos);
  const std::string cells = g.substr(row + 5, 10);
  for (char c : cells) EXPECT_EQ(c, '#');
}

}  // namespace
}  // namespace earthred::earth
