// Tests for the mesh substrate: structure, generators at the paper's
// dataset sizes, RCM renumbering, and adaptive rebuild utilities.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::mesh {
namespace {

Mesh tiny_path() {
  // 0-1-2-3 path.
  Mesh m;
  m.num_nodes = 4;
  m.edges = {{0, 1}, {1, 2}, {2, 3}};
  return m;
}

TEST(Mesh, ValidateCatchesBadEdges) {
  Mesh m;
  m.num_nodes = 3;
  m.edges = {{0, 3}};
  EXPECT_THROW(m.validate(), check_error);
  m.edges = {{1, 1}};
  EXPECT_THROW(m.validate(), check_error);
  m.edges = {{0, 1}};
  m.coords.resize(2);
  EXPECT_THROW(m.validate(), check_error);
}

TEST(Mesh, DegreesAndBandwidth) {
  const Mesh m = tiny_path();
  const auto deg = node_degrees(m);
  EXPECT_EQ(deg[0], 1u);
  EXPECT_EQ(deg[1], 2u);
  EXPECT_EQ(mesh_bandwidth(m), 1u);
  Mesh far;
  far.num_nodes = 10;
  far.edges = {{0, 9}};
  EXPECT_EQ(mesh_bandwidth(far), 9u);
}

TEST(Mesh, AdjacencyListsBothDirections) {
  const Adjacency adj = build_adjacency(tiny_path());
  ASSERT_EQ(adj.offsets.size(), 5u);
  EXPECT_EQ(adj.neighbors.size(), 6u);  // 3 edges * 2
  // Node 1's neighbors are 0 and 2, sorted.
  EXPECT_EQ(adj.neighbors[adj.offsets[1]], 0u);
  EXPECT_EQ(adj.neighbors[adj.offsets[1] + 1], 2u);
}

TEST(Mesh, RcmPermutationIsABijection) {
  const Mesh m = euler_mesh_small();
  const auto perm = rcm_permutation(m);
  std::vector<bool> seen(m.num_nodes, false);
  for (auto v : perm) {
    ASSERT_LT(v, m.num_nodes);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Mesh, RcmCoversDisconnectedComponentsAndIsolatedNodes) {
  // Components whose min-degree node sits *behind* the scan position used
  // to be skipped forever (the ensure at the end of rcm_permutation
  // fired). Node 0-1 form one component, 2 is isolated, 3-5 a triangle —
  // the isolated node is the global degree minimum, so a forward-only
  // scan starting past it never seeds the first component.
  Mesh m;
  m.num_nodes = 6;
  m.edges = {{0, 1}, {3, 4}, {4, 5}, {3, 5}};
  const auto perm = rcm_permutation(m);
  ASSERT_EQ(perm.size(), m.num_nodes);
  std::vector<bool> seen(m.num_nodes, false);
  for (auto v : perm) {
    ASSERT_LT(v, m.num_nodes);
    ASSERT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(Mesh, RcmReducesBandwidthOnShuffledMesh) {
  // Scramble a mesh's numbering, then check RCM restores locality.
  Mesh m = euler_mesh_small();
  Xoshiro256 rng(99);
  std::vector<std::uint32_t> shuffle(m.num_nodes);
  for (std::uint32_t i = 0; i < m.num_nodes; ++i) shuffle[i] = i;
  for (std::uint32_t i = m.num_nodes - 1; i > 0; --i)
    std::swap(shuffle[i], shuffle[rng.below(i + 1)]);
  const Mesh scrambled = renumber(m, shuffle);
  const auto perm = rcm_permutation(scrambled);
  const Mesh restored = renumber(scrambled, perm);
  EXPECT_LT(mesh_bandwidth(restored), mesh_bandwidth(scrambled) / 2);
}

TEST(Mesh, RenumberPreservesStructure) {
  const Mesh m = tiny_path();
  const std::vector<std::uint32_t> perm{3, 2, 1, 0};
  const Mesh r = renumber(m, perm);
  EXPECT_EQ(r.num_edges(), 3u);
  EXPECT_EQ(r.edges[0].a, 3u);
  EXPECT_EQ(r.edges[0].b, 2u);
}

TEST(Generators, GeometricMeshExactCounts) {
  const Mesh m = make_geometric_mesh({500, 2500, 42});
  m.validate();
  EXPECT_EQ(m.num_nodes, 500u);
  EXPECT_EQ(m.num_edges(), 2500u);
  EXPECT_EQ(m.coords.size(), 500u);
}

TEST(Generators, GeometricMeshDeterministic) {
  const Mesh a = make_geometric_mesh({300, 1500, 7});
  const Mesh b = make_geometric_mesh({300, 1500, 7});
  EXPECT_TRUE(std::equal(a.edges.begin(), a.edges.end(), b.edges.begin()));
}

TEST(Generators, GeometricMeshRejectsOverdenseRequest) {
  EXPECT_THROW(make_geometric_mesh({4, 100, 1}), check_error);
}

TEST(Generators, EulerDatasetsMatchPaperSizes) {
  const Mesh small = euler_mesh_small();
  EXPECT_EQ(small.num_nodes, 2800u);
  EXPECT_EQ(small.num_edges(), 17377u);
  const Mesh large = euler_mesh_large();
  EXPECT_EQ(large.num_nodes, 9428u);
  EXPECT_EQ(large.num_edges(), 59863u);
}

TEST(Generators, EulerMeshNumberingIsSpatiallyCoherent) {
  // Mesh-generator-style numbering: bandwidth far below random (~n).
  const Mesh m = euler_mesh_small();
  EXPECT_LT(mesh_bandwidth(m), m.num_nodes / 4);
}

TEST(Generators, MoldynDatasetsMatchPaperSizes) {
  const Mesh small = moldyn_small();
  EXPECT_EQ(small.num_nodes, 2916u);
  EXPECT_EQ(small.num_edges(), 26244u);
  const Mesh large = moldyn_large();
  EXPECT_EQ(large.num_nodes, 10976u);
  EXPECT_EQ(large.num_edges(), 65856u);
}

TEST(Generators, MoldynInteractionsAreShortRange) {
  // Cutoff-style pairs: every kept interaction should span well under two
  // lattice cells.
  const Mesh m = make_moldyn_lattice({4, 1000, 0.02, 5});
  for (const Edge& e : m.edges) {
    const auto& a = m.coords[e.a];
    const auto& b = m.coords[e.b];
    double d2 = 0;
    for (int d = 0; d < 3; ++d) d2 += (a[d] - b[d]) * (a[d] - b[d]);
    EXPECT_LT(d2, 2.0 * 2.0);
  }
}

TEST(Generators, NoDuplicateEdges) {
  const Mesh m = make_geometric_mesh({200, 900, 3});
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
  for (const Edge& e : m.edges) {
    const auto key = std::minmax(e.a, e.b);
    EXPECT_TRUE(seen.emplace(key.first, key.second).second);
  }
}

TEST(Adaptive, JitterMovesCoords) {
  Mesh m = make_moldyn_lattice({3, 200, 0.02, 5});
  const auto before = m.coords;
  Xoshiro256 rng(1);
  jitter_coords(m, 0.05, rng);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    if (before[i] != m.coords[i]) ++moved;
  EXPECT_EQ(moved, before.size());
}

TEST(Adaptive, RebuildChangesNeighborListAfterBigJitter) {
  Mesh m = make_moldyn_lattice({4, 1500, 0.02, 5});
  const auto before = m.edges;
  Xoshiro256 rng(2);
  jitter_coords(m, 0.3, rng);
  rebuild_interactions(m, 1500);
  EXPECT_EQ(m.num_edges(), 1500u);
  std::uint64_t common = 0;
  std::set<std::pair<std::uint32_t, std::uint32_t>> old_set;
  for (const Edge& e : before) {
    const auto k = std::minmax(e.a, e.b);
    old_set.emplace(k.first, k.second);
  }
  for (const Edge& e : m.edges) {
    const auto k = std::minmax(e.a, e.b);
    common += old_set.count({k.first, k.second});
  }
  EXPECT_LT(common, before.size());  // some pairs changed
  EXPECT_GT(common, 0u);             // but not a completely new graph
}

TEST(Adaptive, SmallJitterKeepsMostInteractions) {
  Mesh m = make_moldyn_lattice({4, 1500, 0.02, 5});
  const auto before = m.edges;
  Xoshiro256 rng(3);
  jitter_coords(m, 0.02, rng);
  rebuild_interactions(m, 1500);
  std::set<std::pair<std::uint32_t, std::uint32_t>> old_set;
  for (const Edge& e : before) {
    const auto k = std::minmax(e.a, e.b);
    old_set.emplace(k.first, k.second);
  }
  std::uint64_t common = 0;
  for (const Edge& e : m.edges) {
    const auto k = std::minmax(e.a, e.b);
    common += old_set.count({k.first, k.second});
  }
  EXPECT_GT(common, before.size() * 8 / 10);
}

}  // namespace
}  // namespace earthred::mesh
