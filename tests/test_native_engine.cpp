// Tests for the native (real std::thread) execution of the rotation
// strategy: correctness under true asynchrony across kernels, processor
// counts, k values and distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/native_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "support/check.hpp"

namespace earthred::core {
namespace {

TEST(NativeEngine, Fig1ExactMatchManyConfigs) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({96, 500, 21}));
  SequentialOptions sopt;
  sopt.sweeps = 4;
  const RunResult seq = run_sequential_kernel(kernel, sopt);

  for (const std::uint32_t procs : {1u, 2u, 3u, 4u, 8u}) {
    for (const std::uint32_t k : {1u, 2u, 3u}) {
      for (const auto dist : {inspector::Distribution::Block,
                              inspector::Distribution::Cyclic}) {
        NativeOptions opt;
        opt.num_procs = procs;
        opt.k = k;
        opt.distribution = dist;
        opt.sweeps = 4;
        const NativeResult r = run_native_engine(kernel, opt);
        for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
          ASSERT_EQ(r.reduction[0][i], seq.reduction[0][i])
              << "P=" << procs << " k=" << k;
      }
    }
  }
}

TEST(NativeEngine, EulerStateMatchesSequential) {
  const kernels::EulerKernel kernel(
      mesh::make_geometric_mesh({160, 700, 8}));
  SequentialOptions sopt;
  sopt.sweeps = 5;
  const RunResult seq = run_sequential_kernel(kernel, sopt);

  NativeOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 5;
  const NativeResult r = run_native_engine(kernel, opt);
  for (std::size_t a = 0; a < seq.node_read.size(); ++a)
    for (std::size_t i = 0; i < seq.node_read[a].size(); ++i)
      ASSERT_NEAR(r.node_read[a][i], seq.node_read[a][i], 1e-9);
}

TEST(NativeEngine, MoldynStateMatchesSequential) {
  const kernels::MoldynKernel kernel(
      mesh::make_moldyn_lattice({3, 300, 0.03, 2}));
  SequentialOptions sopt;
  sopt.sweeps = 3;
  const RunResult seq = run_sequential_kernel(kernel, sopt);

  NativeOptions opt;
  opt.num_procs = 6;
  opt.k = 2;
  opt.sweeps = 3;
  const NativeResult r = run_native_engine(kernel, opt);
  for (std::size_t a = 0; a < seq.node_read.size(); ++a)
    for (std::size_t i = 0; i < seq.node_read[a].size(); ++i)
      ASSERT_NEAR(r.node_read[a][i], seq.node_read[a][i], 1e-9);
}

TEST(NativeEngine, RepeatedRunsAreDeterministic) {
  // The schedule fixes summation order regardless of thread timing, so
  // even floating-point results are bit-reproducible run to run.
  const kernels::EulerKernel kernel(
      mesh::make_geometric_mesh({128, 600, 13}));
  NativeOptions opt;
  opt.num_procs = 5;
  opt.k = 2;
  opt.sweeps = 4;
  // Bit-reproducibility is a phased/privatized contract; pin phased so
  // the CI strategy-matrix env cannot route this onto the atomic scatter,
  // which is tolerance-reproducible only.
  opt.strategy = StrategyKind::Phased;
  const NativeResult a = run_native_engine(kernel, opt);
  const NativeResult b = run_native_engine(kernel, opt);
  for (std::size_t arr = 0; arr < a.node_read.size(); ++arr)
    for (std::size_t i = 0; i < a.node_read[arr].size(); ++i)
      ASSERT_EQ(a.node_read[arr][i], b.node_read[arr][i]);
}

TEST(NativeEngine, SingleSweepNoBroadcastPath) {
  const kernels::EulerKernel kernel(
      mesh::make_geometric_mesh({64, 300, 14}));
  NativeOptions opt;
  opt.num_procs = 4;
  opt.k = 1;
  opt.sweeps = 1;
  const NativeResult r = run_native_engine(kernel, opt);
  SequentialOptions sopt;
  const RunResult seq = run_sequential_kernel(kernel, sopt);
  for (std::size_t a = 0; a < seq.reduction.size(); ++a)
    for (std::size_t i = 0; i < seq.reduction[a].size(); ++i)
      ASSERT_NEAR(r.reduction[a][i], seq.reduction[a][i], 1e-9);
}

TEST(NativeEngine, DetachedContextForbidsEarthOps) {
  auto ctx = earth::FiberContext::detached();
  EXPECT_FALSE(ctx.attached());
  ctx.charge_flops(3);
  EXPECT_GE(ctx.charged(), 3u);
  EXPECT_THROW(ctx.sync(earth::FiberId{}), precondition_error);
  EXPECT_THROW(ctx.send(earth::FiberId{}, 8), precondition_error);
}

TEST(NativeEngine, RejectsDegenerateShapes) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({8, 20, 6}));
  NativeOptions opt;
  opt.num_procs = 8;
  opt.k = 2;
  EXPECT_THROW(run_native_engine(kernel, opt), precondition_error);
}

TEST(NativeEngine, LostForwardTripsStallWatchdog) {
  // Swallow the very first ring forward (proc 0, phase 0, sweep 0): the
  // next owner then waits forever for that portion, and the watchdog must
  // convert the hang into a check_error naming the starved step.
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({96, 500, 21}));
  NativeOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 3;
  opt.stall_timeout = 0.5;
  // The faulted ring forward only exists in the phased executor; pin the
  // strategy so auto cannot route around the fault.
  opt.strategy = StrategyKind::Phased;
  opt.lose_forward = {true, 0, 0, 0};
  try {
    run_native_engine(kernel, opt);
    FAIL() << "expected the stall watchdog to fire";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stalled"), std::string::npos) << what;
    EXPECT_NE(what.find("stuck"), std::string::npos) << what;
  }
}

TEST(NativeEngine, ZeroStallTimeoutStillRunsCleanSchedules) {
  // stall_timeout = 0 restores the unbounded-wait behavior; a healthy
  // run must complete and stay correct.
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({96, 500, 21}));
  SequentialOptions sopt;
  sopt.sweeps = 3;
  const RunResult seq = run_sequential_kernel(kernel, sopt);
  NativeOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 3;
  opt.stall_timeout = 0.0;
  const NativeResult r = run_native_engine(kernel, opt);
  for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
    ASSERT_EQ(r.reduction[0][i], seq.reduction[0][i]);
}

}  // namespace
}  // namespace earthred::core
