// Incremental re-planning (core::patch_execution_plan and the sparse
// inspector update behind it): the contract is bit-identical output — a
// patched plan must be indistinguishable from a fresh build of the
// mutated kernel, across every kernel x distribution x k configuration,
// and must pass the exhaustive plan verifier. Also pins down
// locate_iteration, the O(1) inverse of distribute_iterations the patch
// path relies on to avoid materializing the full distribution.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/native_engine.hpp"
#include "core/plan_io.hpp"
#include "inspector/distribution.hpp"
#include "inspector/light_inspector.hpp"
#include "inspector/plan_verifier.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "support/check.hpp"

namespace earthred {
namespace {

using inspector::Distribution;

std::unique_ptr<const core::PhasedKernel> kernel_for(const std::string& name,
                                                     mesh::Mesh m) {
  if (name == "fig1")
    return std::make_unique<kernels::Fig1Kernel>(
        kernels::Fig1Kernel::with_integer_values(std::move(m)));
  if (name == "euler")
    return std::make_unique<kernels::EulerKernel>(std::move(m));
  return std::make_unique<kernels::MoldynKernel>(std::move(m));
}

mesh::Mesh mesh_for(const std::string& name) {
  if (name == "fig1") return mesh::make_geometric_mesh({300, 1800, 5});
  if (name == "euler") return mesh::make_geometric_mesh({260, 1500, 7});
  return mesh::make_geometric_mesh({320, 2100, 9});
}

void expect_exhaustive_clean(const core::ExecutionPlan& plan) {
  inspector::PlanVerifyOptions vopt;
  vopt.exhaustive = true;
  const auto report =
      inspector::verify_plan(plan.sched, plan.insp, plan.shape.num_edges,
                             plan.shape.num_refs, vopt);
  EXPECT_TRUE(report.ok()) << report.render();
}

TEST(LocateIteration, AgreesWithDistributeIterations) {
  for (const Distribution d :
       {Distribution::Block, Distribution::Cyclic,
        Distribution::BlockCyclic}) {
    for (const std::uint64_t n : {1ull, 7ull, 64ull, 97ull, 1000ull}) {
      for (const std::uint32_t P : {1u, 2u, 3u, 4u, 7u, 16u}) {
        for (const std::uint32_t bc : {1u, 3u, 16u}) {
          const auto owned =
              inspector::distribute_iterations(n, P, d, bc);
          for (std::uint32_t p = 0; p < P; ++p)
            for (std::size_t l = 0; l < owned[p].size(); ++l) {
              const auto home =
                  inspector::locate_iteration(n, P, d, bc, owned[p][l]);
              EXPECT_EQ(home.proc, p)
                  << to_string(d) << " n=" << n << " P=" << P
                  << " bc=" << bc << " g=" << owned[p][l];
              EXPECT_EQ(home.local, l)
                  << to_string(d) << " n=" << n << " P=" << P
                  << " bc=" << bc << " g=" << owned[p][l];
            }
          if (d != Distribution::BlockCyclic) break;  // bc is ignored
        }
      }
    }
  }
}

TEST(LocateIteration, RejectsOutOfRange) {
  EXPECT_THROW(
      inspector::locate_iteration(10, 4, Distribution::Block, 16, 10),
      precondition_error);
  EXPECT_THROW(
      inspector::locate_iteration(10, 0, Distribution::Cyclic, 16, 0),
      precondition_error);
}

// The tentpole property: for every kernel x distribution x k, a plan
// patched for a small mutation is bit-identical to a from-scratch build
// of the mutated kernel, and exhaustive-verifier clean.
TEST(PlanPatch, BitIdenticalToRebuildAcrossConfigurations) {
  for (const std::string name : {"fig1", "euler", "moldyn"}) {
    const mesh::Mesh base_mesh = mesh_for(name);
    const auto kernel = kernel_for(name, base_mesh);

    mesh::Mesh mutated_mesh = base_mesh;
    const std::vector<std::uint32_t> changed =
        mesh::rewire_edges(mutated_mesh, 9, /*seed=*/41);
    const auto mutated = kernel_for(name, std::move(mutated_mesh));

    for (const Distribution d :
         {Distribution::Block, Distribution::Cyclic,
          Distribution::BlockCyclic}) {
      for (const std::uint32_t k : {1u, 2u, 4u}) {
        core::PlanOptions opt;
        opt.num_procs = 4;
        opt.k = k;
        opt.distribution = d;
        opt.block_cyclic_size = 8;

        const core::ExecutionPlan base =
            core::build_execution_plan(*kernel, opt);
        const core::ExecutionPlan rebuilt =
            core::build_execution_plan(*mutated, opt);
        const core::ExecutionPlan patched =
            core::patch_execution_plan(*mutated, base, changed);

        EXPECT_TRUE(core::plans_bit_identical(patched, rebuilt))
            << name << " " << to_string(d) << " k=" << k;
        expect_exhaustive_clean(patched);
      }
    }
  }
}

TEST(PlanPatch, EmptyChangeSetReproducesTheBasePlan) {
  const auto kernel = kernel_for("fig1", mesh_for("fig1"));
  core::PlanOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  const core::ExecutionPlan base = core::build_execution_plan(*kernel, opt);
  const core::ExecutionPlan patched =
      core::patch_execution_plan(*kernel, base, {});
  EXPECT_TRUE(core::plans_bit_identical(patched, base));
}

TEST(PlanPatch, RepeatedPatchingStaysCanonical) {
  // Patch output must be a valid *base* for the next patch (free_slots
  // drained, slot ids canonical) — the adaptive loop re-plans every
  // rebuild interval, not once.
  const std::string name = "moldyn";
  mesh::Mesh m = mesh_for(name);
  auto kernel = kernel_for(name, m);
  core::PlanOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  core::ExecutionPlan plan = core::build_execution_plan(*kernel, opt);

  for (std::uint64_t step = 0; step < 4; ++step) {
    mesh::Mesh next = m;
    const std::vector<std::uint32_t> changed =
        mesh::rewire_edges(next, 6, /*seed=*/100 + step);
    m = next;
    auto next_kernel = kernel_for(name, std::move(next));
    const core::ExecutionPlan rebuilt =
        core::build_execution_plan(*next_kernel, opt);
    core::ExecutionPlan patched =
        core::patch_execution_plan(*next_kernel, plan, changed);
    ASSERT_TRUE(core::plans_bit_identical(patched, rebuilt)) << step;
    for (const auto& insp : patched.insp)
      EXPECT_TRUE(insp.free_slots.empty()) << step;
    plan = std::move(patched);
    kernel = std::move(next_kernel);
  }
}

TEST(PlanPatch, SparseUpdateMatchesFullTableOverload) {
  // The convenience overload (full IterationRefs table + changed local
  // list) must agree with a fresh inspector run — it forwards to the
  // sparse core, so this also pins the sparse path against the
  // from-scratch reference on a single processor.
  const mesh::Mesh base_mesh = mesh::make_geometric_mesh({120, 700, 3});
  mesh::Mesh mut_mesh = base_mesh;
  const std::vector<std::uint32_t> changed_edges =
      mesh::rewire_edges(mut_mesh, 7, /*seed=*/11);

  const auto base_kernel = kernel_for("fig1", base_mesh);
  const auto mut_kernel = kernel_for("fig1", mut_mesh);

  const inspector::RotationSchedule sched(
      base_kernel->shape().num_nodes, /*num_procs=*/3, /*k=*/2);
  const auto owned = inspector::distribute_iterations(
      base_kernel->shape().num_edges, 3, Distribution::Cyclic, 16);

  for (std::uint32_t p = 0; p < 3; ++p) {
    inspector::IterationRefs base_iters, mut_iters;
    base_iters.global_iter = owned[p];
    mut_iters.global_iter = owned[p];
    const std::uint32_t R = base_kernel->shape().num_refs;
    base_iters.refs.resize(R);
    mut_iters.refs.resize(R);
    std::vector<std::uint32_t> changed_local;
    for (std::size_t l = 0; l < owned[p].size(); ++l) {
      const std::uint32_t g = owned[p][l];
      bool differs = false;
      for (std::uint32_t r = 0; r < R; ++r) {
        base_iters.refs[r].push_back(base_kernel->ref(r, g));
        mut_iters.refs[r].push_back(mut_kernel->ref(r, g));
        differs |= base_iters.refs[r].back() != mut_iters.refs[r].back();
      }
      if (differs)
        changed_local.push_back(static_cast<std::uint32_t>(l));
    }

    const inspector::InspectorResult base_res =
        inspector::run_light_inspector(sched, p, base_iters);
    const inspector::InspectorResult fresh =
        inspector::run_light_inspector(sched, p, mut_iters);
    const inspector::InspectorResult updated =
        inspector::update_light_inspector(sched, p, mut_iters, base_res,
                                          changed_local, {});

    EXPECT_EQ(updated.num_buffer_slots, fresh.num_buffer_slots) << p;
    EXPECT_TRUE(updated.slot_elem == fresh.slot_elem) << p;
    EXPECT_TRUE(updated.free_slots.empty()) << p;
    ASSERT_EQ(updated.phases.size(), fresh.phases.size()) << p;
    for (std::size_t ph = 0; ph < fresh.phases.size(); ++ph) {
      EXPECT_TRUE(updated.phases[ph].iter_global ==
                  fresh.phases[ph].iter_global);
      EXPECT_TRUE(updated.phases[ph].iter_local ==
                  fresh.phases[ph].iter_local);
      EXPECT_TRUE(updated.phases[ph].indir_flat ==
                  fresh.phases[ph].indir_flat);
      EXPECT_TRUE(updated.phases[ph].copy_dst == fresh.phases[ph].copy_dst);
      EXPECT_TRUE(updated.phases[ph].copy_src == fresh.phases[ph].copy_src);
    }
  }
}

TEST(PlanPatch, RejectsMismatchedChangeSets) {
  const auto kernel = kernel_for("fig1", mesh_for("fig1"));
  core::PlanOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  const core::ExecutionPlan base = core::build_execution_plan(*kernel, opt);

  // Out-of-range global iteration id.
  const std::vector<std::uint32_t> oob = {
      static_cast<std::uint32_t>(kernel->shape().num_edges)};
  EXPECT_THROW((void)core::patch_execution_plan(*kernel, base, oob),
               precondition_error);
}

}  // namespace
}  // namespace earthred
