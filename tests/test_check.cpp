// Static analysis end to end: golden diagnostics for the DSL
// reduction-legality checker (`earthred check`), AST-level checks the
// grammar cannot spell, the ExecutionPlan invariant verifier against a
// seeded-defect corpus of mutated plans, and the service's
// reject-with-diagnostic admission paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "compiler/check.hpp"
#include "compiler/compiler.hpp"
#include "core/native_engine.hpp"
#include "inspector/plan_verifier.hpp"
#include "inspector/plan_walk.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "service/job_scheduler.hpp"
#include "support/check.hpp"

namespace earthred {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream is(p);
  EXPECT_TRUE(is.good()) << "cannot open " << p;
  std::stringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

// --- golden diagnostics over the shipped DSL corpus ---------------------

/// Renders a CheckReport the way the goldens are stored: one header()
/// line per diagnostic.
std::string headers(const compiler::CheckReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += d.header();
    out += '\n';
  }
  return out;
}

std::vector<fs::path> dsl_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const fs::directory_entry& e : fs::directory_iterator(dir))
    if (e.path().extension() == ".dsl") files.push_back(e.path());
  std::sort(files.begin(), files.end());
  return files;
}

TEST(GoldenDiagnostics, ShippedExamplesAreCleanAndGoldensMatch) {
  // Every shipped example must check clean (zero diagnostics), and every
  // .dsl in the directory must carry a checked-in .expect — a new example
  // without a golden fails here rather than silently going untested.
  const fs::path dir = fs::path(EARTHRED_SOURCE_DIR) / "examples/loops";
  const std::vector<fs::path> files = dsl_files(dir);
  ASSERT_FALSE(files.empty());
  for (const fs::path& f : files) {
    fs::path expect = f;
    expect.replace_extension(".expect");
    ASSERT_TRUE(fs::exists(expect)) << "missing golden for " << f;
    const compiler::CheckReport report = compiler::check_source(slurp(f));
    EXPECT_EQ(headers(report), slurp(expect)) << "golden mismatch for " << f;
    EXPECT_FALSE(report.has_errors()) << f;
    EXPECT_EQ(report.diagnostics.size(), 0u)
        << f << " must check completely clean";
  }
}

TEST(GoldenDiagnostics, SeededDefectCorpusMatchesGoldens) {
  const fs::path dir = fs::path(EARTHRED_SOURCE_DIR) / "examples/loops/bad";
  const std::vector<fs::path> files = dsl_files(dir);
  ASSERT_FALSE(files.empty());
  for (const fs::path& f : files) {
    fs::path expect = f;
    expect.replace_extension(".expect");
    ASSERT_TRUE(fs::exists(expect)) << "missing golden for " << f;
    const compiler::CheckReport report = compiler::check_source(slurp(f));
    EXPECT_EQ(headers(report), slurp(expect)) << "golden mismatch for " << f;
  }
}

TEST(GoldenDiagnostics, EveryErrorFileIsRejectedWithItsCode) {
  // The acceptance contract in one assertion: each intentionally broken
  // file is rejected (has_errors), and its first golden line names the
  // code that identifies the defect class.
  const fs::path dir = fs::path(EARTHRED_SOURCE_DIR) / "examples/loops/bad";
  for (const fs::path& f : dsl_files(dir)) {
    const compiler::CheckReport report = compiler::check_source(slurp(f));
    const std::string golden = slurp(fs::path(f).replace_extension(".expect"));
    if (golden.find("error[") != std::string::npos) {
      EXPECT_TRUE(report.has_errors()) << f;
      EXPECT_FALSE(report.first_error().empty()) << f;
    } else {
      EXPECT_FALSE(report.has_errors()) << f;
      EXPECT_GT(report.warning_count(), 0u) << f;
    }
  }
}

TEST(CheckSource, WarningsFlowThroughCompileWithoutThrowing) {
  const char* source = R"(
    param num_nodes, num_edges;
    array real X[num_nodes];
    array int  IA[num_edges];
    array real Y[num_edges];
    forall (e : 0 .. num_edges) {
      unused = Y[e];
      X[IA[e]] += Y[e];
    }
  )";
  const compiler::CompileResult result = compiler::compile(source);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  EXPECT_EQ(result.diagnostics[0].severity, Severity::Warning);
  EXPECT_EQ(result.diagnostics[0].code, "W-UNUSED-SCALAR");
  EXPECT_FALSE(result.threaded_c.empty());  // still compiled
}

TEST(CheckSource, SnippetAndCaretRenderFromAttachedSource) {
  const compiler::CheckReport report =
      compiler::check_source("param n;\narray real X[n;\n");
  ASSERT_TRUE(report.has_errors());
  const std::string rendered = report.render();
  EXPECT_NE(rendered.find("array real X[n;"), std::string::npos);
  EXPECT_NE(rendered.find('^'), std::string::npos);
}

// --- AST-level legality checks the grammar cannot spell -----------------

compiler::Stmt accumulate(const std::string& target,
                          const std::string& indirection) {
  compiler::Stmt s;
  s.kind = compiler::StmtKind::Accumulate;
  s.target = target;
  s.index.indirection = indirection;
  s.index.inner_var = "i";
  s.line = 4;
  s.column = 3;
  auto v = std::make_unique<compiler::Expr>();
  v->kind = compiler::ExprKind::Number;
  v->number = 1.0;
  s.value = std::move(v);
  return s;
}

compiler::Program nonred_program() {
  compiler::Program prog;
  prog.params = {"n", "m"};
  compiler::ArrayDecl x;
  x.name = "X";
  x.type = compiler::ElemType::Real;
  x.size_param = "n";
  prog.arrays.push_back(x);
  compiler::Loop loop;
  loop.var = "i";
  loop.hi_param = "m";
  // X = 1.0;  -- an array written with plain assignment, which the
  // parser's grammar cannot produce but a transformation could.
  compiler::Stmt s;
  s.kind = compiler::StmtKind::ScalarAssign;
  s.target = "X";
  s.line = 3;
  s.column = 3;
  auto v = std::make_unique<compiler::Expr>();
  v->kind = compiler::ExprKind::Number;
  v->number = 1.0;
  s.value = std::move(v);
  loop.body.push_back(std::move(s));
  loop.body.push_back(accumulate("X", "IA"));
  prog.loops.push_back(std::move(loop));
  return prog;
}

TEST(LegalityWalk, NonReductionArrayWriteIsRejected) {
  const compiler::Program prog = nonred_program();
  compiler::DiagnosticSink sink;
  const auto verdicts = compiler::check_reduction_legality(prog, {}, sink);
  ASSERT_EQ(verdicts.size(), 1u);
  EXPECT_FALSE(verdicts[0].legal);
  bool found = false;
  for (const Diagnostic& d : sink.diagnostics())
    if (d.code == "E-NONRED-WRITE") found = true;
  EXPECT_TRUE(found);
}

TEST(LegalityWalk, BrokenFissionPartitionIsRejected) {
  // A reference-group table claiming X belongs to two groups, with the
  // accumulate statement covered twice — fission would duplicate updates.
  compiler::Program prog;
  prog.params = {"n", "m"};
  compiler::ArrayDecl x;
  x.name = "X";
  x.type = compiler::ElemType::Real;
  x.size_param = "n";
  prog.arrays.push_back(x);
  compiler::Loop loop;
  loop.var = "i";
  loop.hi_param = "m";
  loop.body.push_back(accumulate("X", "IA"));
  prog.loops.push_back(std::move(loop));

  compiler::AnalysisResult analysis;
  analysis.loops.resize(1);
  compiler::ReferenceGroup g1, g2;
  g1.reduction_arrays = {"X"};
  g1.statement_indices = {0};
  g2.reduction_arrays = {"X"};
  g2.statement_indices = {0};
  analysis.loops[0].groups = {g1, g2};

  compiler::DiagnosticSink sink;
  compiler::check_reduction_legality(prog, analysis, sink);
  std::size_t fission_errors = 0;
  for (const Diagnostic& d : sink.diagnostics())
    if (d.code == "E-FISSION-GROUP") ++fission_errors;
  EXPECT_GE(fission_errors, 2u);  // duplicated array + double-covered stmt
}

// --- plan verifier: clean plans -----------------------------------------

bool has_code(const inspector::PlanVerifyReport& r, const std::string& code) {
  for (const Diagnostic& d : r.diagnostics)
    if (d.code == code) return true;
  return false;
}

core::PlanOptions plan_opts(std::uint32_t P, std::uint32_t k,
                            inspector::Distribution dist) {
  core::PlanOptions opt;
  opt.num_procs = P;
  opt.k = k;
  opt.distribution = dist;
  opt.verify = false;  // tests call the verifier explicitly
  return opt;
}

TEST(PlanVerifier, AllKernelsAndConfigsVerifyClean) {
  const mesh::Mesh m = mesh::make_geometric_mesh({180, 900, 11});
  const kernels::Fig1Kernel fig1 =
      kernels::Fig1Kernel::with_integer_values(mesh::Mesh(m));
  const kernels::EulerKernel euler{mesh::Mesh(m)};
  const kernels::MoldynKernel moldyn{mesh::Mesh(m)};
  const core::PhasedKernel* all[] = {&fig1, &euler, &moldyn};
  for (const core::PhasedKernel* kernel : all) {
    for (const std::uint32_t P : {1u, 3u, 4u}) {
      for (const std::uint32_t k : {1u, 2u, 3u}) {
        for (const auto dist : {inspector::Distribution::Block,
                                inspector::Distribution::Cyclic}) {
          const core::ExecutionPlan plan =
              core::build_execution_plan(*kernel, plan_opts(P, k, dist));
          const inspector::PlanVerifyReport report =
              core::verify_execution_plan(plan, kernel);
          EXPECT_TRUE(report.ok())
              << "P=" << P << " k=" << k << ": " << report.render();
          EXPECT_EQ(report.checked_iterations, plan.shape.num_edges);
          EXPECT_EQ(report.checked_refs,
                    plan.shape.num_edges * plan.shape.num_refs);
        }
      }
    }
  }
}

TEST(PlanVerifier, DedupBuffersAlsoVerifyClean) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({150, 700, 13}));
  core::PlanOptions opt = plan_opts(4, 2, inspector::Distribution::Cyclic);
  opt.inspector.dedup_buffers = true;
  const core::ExecutionPlan plan = core::build_execution_plan(kernel, opt);
  const inspector::PlanVerifyReport report =
      core::verify_execution_plan(plan, &kernel);
  EXPECT_TRUE(report.ok()) << report.render();
}

TEST(PlanVerifier, IncrementalUpdateOutputVerifiesClean) {
  // The incremental inspector's output claims equivalence to a full
  // re-run; the verifier must agree, including its recycled-slot state.
  const inspector::RotationSchedule sched(60, 3, 2);
  inspector::IterationRefs refs;
  for (std::uint32_t i = 0; i < 40; ++i)
    refs.global_iter.push_back(i * 3);
  refs.refs.resize(2);
  for (std::uint32_t i = 0; i < 40; ++i) {
    refs.refs[0].push_back((i * 7) % 60);
    refs.refs[1].push_back((i * 13 + 5) % 60);
  }
  const inspector::InspectorResult base =
      inspector::run_light_inspector(sched, 1, refs);
  inspector::IterationRefs changed = refs;
  changed.refs[0][4] = 59;
  changed.refs[1][9] = 0;
  const std::uint32_t touched[] = {4, 9};
  const inspector::InspectorResult updated = inspector::update_light_inspector(
      sched, 1, changed, base, touched);
  const inspector::InspectorResult insp[] = {updated};
  // One processor's view only: iterations of procs 0 and 2 are absent by
  // construction, so assert no violation besides the expected LOST-ITER
  // coverage gap... which we avoid by passing only this proc's count.
  inspector::PlanVerifyReport report =
      inspector::verify_plan(sched, std::span<const inspector::InspectorResult>{},
                             0, 2);
  EXPECT_FALSE(report.ok());  // proc-count mismatch is itself a defect
  // Full check through a 1-proc schedule instead.
  const inspector::RotationSchedule solo(60, 1, 6);
  inspector::IterationRefs dense;
  for (std::uint32_t i = 0; i < 40; ++i) dense.global_iter.push_back(i);
  dense.refs = refs.refs;
  const inspector::InspectorResult full =
      inspector::run_light_inspector(solo, 0, dense);
  inspector::IterationRefs dense2 = dense;
  dense2.refs[0][7] = 59;
  const std::uint32_t touched2[] = {7};
  const inspector::InspectorResult upd2 = inspector::update_light_inspector(
      solo, 0, dense2, full, touched2);
  const inspector::InspectorResult arr[] = {upd2};
  report = inspector::verify_plan(solo, arr, 40, 2);
  EXPECT_TRUE(report.ok()) << report.render();
}

// --- plan verifier: seeded-defect corpus --------------------------------

struct MutablePlan {
  std::unique_ptr<kernels::Fig1Kernel> kernel;
  core::ExecutionPlan plan;

  inspector::PlanVerifyReport verify() const {
    return inspector::verify_plan(plan.sched, plan.insp,
                                  plan.shape.num_edges,
                                  plan.shape.num_refs);
  }
};

MutablePlan make_plan(std::uint32_t P = 4, std::uint32_t k = 2) {
  auto kernel = std::make_unique<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({160, 800, 21})));
  core::ExecutionPlan plan = core::build_execution_plan(
      *kernel, plan_opts(P, k, inspector::Distribution::Cyclic));
  return {std::move(kernel), std::move(plan)};
}

/// First (proc, phase, ref, j) whose entry satisfies `direct`.
struct RefPos {
  std::uint32_t p = 0, ph = 0;
  std::size_t r = 0, j = 0;
  bool found = false;
};

RefPos find_ref(const core::ExecutionPlan& plan, bool want_direct) {
  const std::uint32_t n = plan.sched.num_elements();
  for (std::uint32_t p = 0; p < plan.insp.size(); ++p)
    for (std::uint32_t ph = 0; ph < plan.insp[p].phases.size(); ++ph) {
      const auto& phase = plan.insp[p].phases[ph];
      for (std::size_t r = 0; r < phase.indir.size(); ++r)
        for (std::size_t j = 0; j < phase.indir[r].size(); ++j)
          if ((phase.indir[r][j] < n) == want_direct)
            return {p, ph, r, j, true};
    }
  return {};
}

TEST(PlanMutation, WrongPhaseOwnerIsCaught) {
  MutablePlan mp = make_plan();
  const RefPos pos = find_ref(mp.plan, /*want_direct=*/true);
  ASSERT_TRUE(pos.found);
  auto& phase = mp.plan.insp[pos.p].phases[pos.ph];
  // Move the direct reference to an element of a *different* portion —
  // not owned by this processor in this phase.
  const std::uint32_t elem = phase.indir[pos.r][pos.j];
  const std::uint32_t portion = mp.plan.sched.portion_of(elem);
  const std::uint32_t other =
      mp.plan.sched.portion_begin((portion + 1) % mp.plan.sched.num_portions());
  phase.indir[pos.r][pos.j] = other;
  phase.flatten_indir();  // keep indir_flat consistent: isolate the owner check
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-PHASE-OWNER")) << report.render();
}

TEST(PlanMutation, DanglingRemoteSlotIsCaught) {
  MutablePlan mp = make_plan();
  const RefPos pos = find_ref(mp.plan, /*want_direct=*/false);
  ASSERT_TRUE(pos.found);
  auto& insp = mp.plan.insp[pos.p];
  auto& phase = insp.phases[pos.ph];
  phase.indir[pos.r][pos.j] =
      mp.plan.sched.num_elements() + insp.num_buffer_slots + 7;
  phase.flatten_indir();
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-SLOT-RANGE")) << report.render();
}

TEST(PlanMutation, FreedSlotStillReferencedIsCaught) {
  MutablePlan mp = make_plan();
  const RefPos pos = find_ref(mp.plan, /*want_direct=*/false);
  ASSERT_TRUE(pos.found);
  auto& insp = mp.plan.insp[pos.p];
  const std::uint32_t slot =
      insp.phases[pos.ph].indir[pos.r][pos.j] - mp.plan.sched.num_elements();
  insp.free_slots.push_back(slot);
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-SLOT-FREED")) << report.render();
}

TEST(PlanMutation, DroppedIterationIsCaught) {
  MutablePlan mp = make_plan();
  const RefPos pos = find_ref(mp.plan, /*want_direct=*/true);
  ASSERT_TRUE(pos.found);
  auto& phase = mp.plan.insp[pos.p].phases[pos.ph];
  ASSERT_FALSE(phase.iter_global.empty());
  phase.iter_global.pop_back();
  phase.iter_local.pop_back();
  for (auto& row : phase.indir) row.pop_back();
  phase.flatten_indir();
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-LOST-ITER")) << report.render();
}

TEST(PlanMutation, DuplicatedIterationIsCaught) {
  MutablePlan mp = make_plan();
  const RefPos pos = find_ref(mp.plan, /*want_direct=*/true);
  ASSERT_TRUE(pos.found);
  auto& phase = mp.plan.insp[pos.p].phases[pos.ph];
  phase.iter_global.push_back(phase.iter_global.front());
  phase.iter_local.push_back(phase.iter_local.front());
  for (auto& row : phase.indir) row.push_back(row.front());
  phase.flatten_indir();
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-DUP-ITER")) << report.render();
}

TEST(PlanMutation, CorruptFlattenedIndirectionIsCaught) {
  MutablePlan mp = make_plan();
  const RefPos pos = find_ref(mp.plan, /*want_direct=*/true);
  ASSERT_TRUE(pos.found);
  auto& phase = mp.plan.insp[pos.p].phases[pos.ph];
  ASSERT_FALSE(phase.indir_flat.empty());
  phase.indir_flat[0] ^= 1u;  // rows untouched: only the SoA copy is stale
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-FLAT")) << report.render();
}

TEST(PlanMutation, DroppedFoldBackIsCaught) {
  MutablePlan mp = make_plan();
  bool mutated = false;
  for (auto& insp : mp.plan.insp) {
    for (auto& phase : insp.phases) {
      if (!phase.copy_dst.empty()) {
        phase.copy_dst.pop_back();
        phase.copy_src.pop_back();
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated) << "plan has no deferred references to drop";
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-NO-FOLD")) << report.render();
}

TEST(PlanMutation, DuplicatedFoldBackIsCaught) {
  MutablePlan mp = make_plan();
  bool mutated = false;
  for (auto& insp : mp.plan.insp) {
    for (auto& phase : insp.phases) {
      if (!phase.copy_dst.empty()) {
        phase.copy_dst.push_back(phase.copy_dst.front());
        phase.copy_src.push_back(phase.copy_src.front());
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated);
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-DUP-FOLD")) << report.render();
}

TEST(PlanMutation, FoldIntoWrongElementIsCaught) {
  MutablePlan mp = make_plan();
  bool mutated = false;
  for (auto& insp : mp.plan.insp) {
    for (auto& phase : insp.phases) {
      if (!phase.copy_dst.empty()) {
        // Redirect the fold to a different element; whichever portion it
        // lands in, slot_elem no longer matches.
        phase.copy_dst[0] = (phase.copy_dst[0] + 1) %
                            mp.plan.sched.num_elements();
        mutated = true;
        break;
      }
    }
    if (mutated) break;
  }
  ASSERT_TRUE(mutated);
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-FOLD-MISMATCH")) << report.render();
}

TEST(PlanMutation, EarlyOwnedBufferedElementIsCaught) {
  MutablePlan mp = make_plan();
  const RefPos pos = find_ref(mp.plan, /*want_direct=*/false);
  ASSERT_TRUE(pos.found);
  auto& insp = mp.plan.insp[pos.p];
  const std::uint32_t slot =
      insp.phases[pos.ph].indir[pos.r][pos.j] - mp.plan.sched.num_elements();
  // Rebind the slot to an element owned in phase <= pos.ph: the portion
  // this proc owns during the deferring phase itself qualifies.
  const std::uint32_t early_portion =
      mp.plan.sched.owned_portion(pos.p, pos.ph);
  insp.slot_elem[slot] = mp.plan.sched.portion_begin(early_portion);
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-EARLY-REF")) << report.render();
}

TEST(PlanMutation, CorruptPhaseAssignmentIsCaught) {
  MutablePlan mp = make_plan();
  const RefPos pos = find_ref(mp.plan, /*want_direct=*/true);
  ASSERT_TRUE(pos.found);
  auto& insp = mp.plan.insp[pos.p];
  const std::uint32_t local = insp.phases[pos.ph].iter_local[pos.j];
  insp.assigned_phase[local] =
      (insp.assigned_phase[local] + 1) % mp.plan.sched.phases_per_sweep();
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-PHASE-ASSIGN")) << report.render();
}

TEST(PlanMutation, WrongPhaseCountIsCaught) {
  MutablePlan mp = make_plan();
  mp.plan.insp[0].phases.pop_back();
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-SHAPE")) << report.render();
}

TEST(PlanMutation, ViolationCountingContinuesPastTheRecordingCap) {
  MutablePlan mp = make_plan();
  // Corrupt every direct reference of one processor: far more violations
  // than the default diagnostic cap.
  auto& insp = mp.plan.insp[0];
  const std::uint32_t n = mp.plan.sched.num_elements();
  for (auto& phase : insp.phases) {
    for (auto& row : phase.indir)
      for (std::size_t j = 0; j < row.size(); ++j)
        if (row[j] < n)
          row[j] = (row[j] + mp.plan.sched.portion_size(0)) % n;
    phase.flatten_indir();
  }
  const inspector::PlanVerifyReport report = mp.verify();
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.diagnostics.size(), 16u);
  EXPECT_GT(report.violations, report.diagnostics.size());
  EXPECT_NE(report.render().find("not shown"), std::string::npos);
}

// --- kernel cross-check and build-time verification ---------------------

/// Delegates to Fig1 but permutes ref(): the plan built from the honest
/// kernel no longer describes this one.
class EvilRefKernel final : public core::PhasedKernel {
 public:
  explicit EvilRefKernel(std::shared_ptr<const core::PhasedKernel> inner)
      : inner_(std::move(inner)) {}

  bool evil = false;

  core::KernelShape shape() const override { return inner_->shape(); }
  std::uint32_t ref(std::uint32_t r, std::uint64_t edge) const override {
    const std::uint32_t v = inner_->ref(r, edge);
    if (!evil) return v;
    return (v + 1) % shape().num_nodes;
  }
  void init_node_arrays(
      std::vector<std::vector<double>>& arrays) const override {
    inner_->init_node_arrays(arrays);
  }
  void compute_edge(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint64_t edge_global, std::uint64_t edge_slot,
                    std::span<const std::uint32_t> redirected,
                    core::ProcArrays& arrays) const override {
    inner_->compute_edge(ctx, tags, edge_global, edge_slot, redirected,
                         arrays);
  }
  void update_nodes(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint32_t begin, std::uint32_t end,
                    std::uint32_t base,
                    core::ProcArrays& arrays) const override {
    inner_->update_nodes(ctx, tags, begin, end, base, arrays);
  }

 private:
  std::shared_ptr<const core::PhasedKernel> inner_;
};

TEST(PlanVerifier, KernelCrossCheckCatchesForeignPlans) {
  const auto honest = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({140, 700, 31})));
  const core::ExecutionPlan plan = core::build_execution_plan(
      *honest, plan_opts(4, 2, inspector::Distribution::Cyclic));

  EvilRefKernel twin(honest);
  EXPECT_TRUE(core::verify_execution_plan(plan, &twin).ok());
  twin.evil = true;
  const inspector::PlanVerifyReport report =
      core::verify_execution_plan(plan, &twin);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_code(report, "E-PLAN-REF-MISMATCH")) << report.render();
}

TEST(BuildPlan, VerifyOptionAcceptsSoundPlansAndIsKeyNeutral) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({120, 600, 41}));
  core::PlanOptions opt = plan_opts(3, 2, inspector::Distribution::Cyclic);
  opt.verify = true;
  const core::ExecutionPlan plan =
      core::build_execution_plan(kernel, opt);  // must not throw
  EXPECT_GT(plan.byte_size(), 0u);

  // verify must not split cache keys: on/off map to the same PlanKey.
  core::PlanOptions off = opt;
  off.verify = false;
  EXPECT_EQ(service::make_plan_key(kernel, opt),
            service::make_plan_key(kernel, off));
  static_assert(std::is_base_of_v<check_error, verify_error>);
}

// --- shared plan walk ---------------------------------------------------

TEST(PlanWalk, StatsAgreeWithInspectorBookkeeping) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({150, 750, 51}));
  const core::ExecutionPlan plan = core::build_execution_plan(
      kernel, plan_opts(4, 2, inspector::Distribution::Cyclic));
  std::uint64_t iters = 0, refs = 0, folds = 0, bytes = 0;
  for (const inspector::InspectorResult& insp : plan.insp) {
    const inspector::PlanWalkStats s =
        inspector::walk_inspector(insp, plan.sched.num_elements());
    iters += s.iterations;
    refs += s.direct_refs + s.deferred_refs;
    folds += s.fold_entries;
    bytes += s.bytes;
    EXPECT_EQ(s.fold_entries, insp.total_deferred());
    EXPECT_EQ(s.bytes, inspector::inspector_byte_size(insp));
  }
  EXPECT_EQ(iters, plan.shape.num_edges);
  EXPECT_EQ(refs, plan.shape.num_edges * plan.shape.num_refs);
  EXPECT_GT(folds, 0u);
  // byte_size == struct headers + the shared walk's per-proc bytes.
  EXPECT_EQ(plan.byte_size(),
            sizeof(core::ExecutionPlan) +
                plan.insp.capacity() * sizeof(inspector::InspectorResult) +
                bytes);
}

// --- service admission --------------------------------------------------

TEST(ServiceAdmission, IllegalDslIsRejectedWithDiagnosticAndCounted) {
  service::JobScheduler sched({1, 8, 5.0, {}});
  service::JobRequest req;
  req.name = "bad-dsl";
  req.dsl_source = R"(
    param num_nodes, num_edges;
    array real X[num_nodes];
    array int  IA[num_edges];
    array real Y[num_edges];
    forall (e : 0 .. num_edges) {
      X[IA[e]] += Y[e] + X[IA[e]];
    }
  )";
  const service::JobHandle h = sched.submit(std::move(req));
  const service::JobOutcome& out = h.wait();
  EXPECT_EQ(out.state, service::JobState::Rejected);
  EXPECT_NE(out.error.find("E-RED-READ"), std::string::npos) << out.error;
  EXPECT_NE(out.error.find("DSL rejected"), std::string::npos);
  const service::ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.rejected_dsl, 1u);
  EXPECT_EQ(stats.rejected_plan, 0u);
}

TEST(ServiceAdmission, LegalDslJobRunsToCompletion) {
  service::JobScheduler sched({2, 8, 10.0, {}});
  const char* source = R"(
    param num_nodes, num_edges;
    array real X[num_nodes];
    array int  IA[num_edges];
    array real Y[num_edges];
    forall (e : 0 .. num_edges) {
      X[IA[e]] += Y[e] * 2.0;
    }
  )";
  const compiler::CompileResult compiled = compiler::compile(source);
  compiler::DataEnv env;
  env.params["num_nodes"] = 50;
  env.params["num_edges"] = 200;
  std::vector<std::uint32_t> ia;
  std::vector<double> y;
  for (std::uint32_t e = 0; e < 200; ++e) {
    ia.push_back((e * 7) % 50);
    y.push_back(1.0 + 0.5 * static_cast<double>(e % 4));
  }
  env.int_arrays["IA"] = std::move(ia);
  env.real_arrays["Y"] = std::move(y);

  service::JobRequest req;
  req.name = "good-dsl";
  req.dsl_source = source;
  req.kernel = std::shared_ptr<const core::PhasedKernel>(
      compiler::bind(compiled, 0, std::move(env)));
  req.plan.num_procs = 2;
  req.plan.k = 2;
  req.plan.verify = true;
  const service::JobHandle h = sched.submit(std::move(req));
  EXPECT_EQ(h.wait().state, service::JobState::Done) << h.wait().error;
  EXPECT_EQ(sched.stats().rejected, 0u);
}

TEST(ServiceAdmission, PlanVerifierRejectsMismatchedCachedPlan) {
  // Job 1 (honest refs) builds and caches the plan. The kernel's ref()
  // then turns evil; job 2 reuses the cached plan via the precomputed
  // fingerprint, and the admission-time cross-check must reject it.
  service::JobScheduler sched({1, 8, 10.0, {}});
  const auto honest = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({130, 650, 61})));
  const auto twin = std::make_shared<EvilRefKernel>(honest);
  const std::uint64_t fp = service::kernel_fingerprint(*twin);

  service::JobRequest req;
  req.name = "honest";
  req.kernel = twin;
  req.plan.num_procs = 3;
  req.plan.k = 2;
  req.plan.verify = true;
  req.fingerprint = fp;
  service::JobRequest req2 = req;
  req2.name = "evil";

  const service::JobHandle h1 = sched.submit(std::move(req));
  EXPECT_EQ(h1.wait().state, service::JobState::Done) << h1.wait().error;

  twin->evil = true;
  const service::JobHandle h2 = sched.submit(std::move(req2));
  const service::JobOutcome& out = h2.wait();
  EXPECT_EQ(out.state, service::JobState::Rejected);
  EXPECT_NE(out.error.find("E-PLAN-REF-MISMATCH"), std::string::npos)
      << out.error;
  EXPECT_TRUE(out.cache_hit);  // the stale plan came from the cache
  const service::ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.rejected_plan, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST(ServiceAdmission, VerifyOffSkipsTheCrossCheck) {
  // Same setup as above with verify=off: the stale plan is trusted and
  // the job runs (wrong results are the caller's bargain — this pins the
  // knob's off position).
  service::JobScheduler sched({1, 8, 10.0, {}});
  const auto honest = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({130, 650, 71})));
  const auto twin = std::make_shared<EvilRefKernel>(honest);
  const std::uint64_t fp = service::kernel_fingerprint(*twin);

  service::JobRequest req;
  req.kernel = twin;
  req.plan.num_procs = 3;
  req.plan.k = 2;
  req.plan.verify = false;
  req.fingerprint = fp;
  service::JobRequest req2 = req;

  const service::JobHandle h1 = sched.submit(std::move(req));
  EXPECT_EQ(h1.wait().state, service::JobState::Done);
  twin->evil = true;
  const service::JobHandle h2 = sched.submit(std::move(req2));
  EXPECT_EQ(h2.wait().state, service::JobState::Done);
  EXPECT_EQ(sched.stats().rejected_plan, 0u);
}

}  // namespace
}  // namespace earthred
