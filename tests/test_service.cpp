// The reduction service: shared-plan execution correctness, the job
// scheduler's worker pool, admission control, deadlines, batch
// submission, and the stats snapshot.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/native_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "service/job_scheduler.hpp"
#include "support/check.hpp"

namespace earthred::service {
namespace {

core::PlanOptions plan_opts(std::uint32_t P, std::uint32_t k) {
  core::PlanOptions opt;
  opt.num_procs = P;
  opt.k = k;
  return opt;
}

// --- satellite: cached schedules are genuinely shareable ----------------

TEST(SharedPlan, ReusedScheduleIsBitIdenticalToColdRuns) {
  // Two sweeps reusing one cached schedule must produce bit-identical
  // results to two cold runs (build + run each time).
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({150, 900, 5}));

  core::NativeOptions cold;
  cold.num_procs = 4;
  cold.k = 2;
  cold.sweeps = 3;
  const core::NativeResult cold1 = run_native_engine(kernel, cold);
  const core::NativeResult cold2 = run_native_engine(kernel, cold);

  const core::ExecutionPlan plan =
      core::build_execution_plan(kernel, cold.plan());
  const core::NativeResult warm1 =
      core::run_native_plan(kernel, plan, cold.sweep());
  const core::NativeResult warm2 =
      core::run_native_plan(kernel, plan, cold.sweep());

  ASSERT_EQ(warm1.reduction.size(), cold1.reduction.size());
  for (std::size_t a = 0; a < cold1.reduction.size(); ++a)
    for (std::size_t i = 0; i < cold1.reduction[a].size(); ++i) {
      ASSERT_EQ(warm1.reduction[a][i], cold1.reduction[a][i]);
      ASSERT_EQ(warm2.reduction[a][i], cold2.reduction[a][i]);
      ASSERT_EQ(warm1.reduction[a][i], warm2.reduction[a][i]);
    }
}

TEST(SharedPlan, EulerFloatingPointAlsoBitIdentical) {
  // The schedule fixes the summation order, so even non-exact arithmetic
  // reproduces bitwise across plan reuse.
  const kernels::EulerKernel kernel(
      mesh::make_geometric_mesh({120, 600, 6}));
  core::NativeOptions opt;
  opt.num_procs = 3;
  opt.k = 2;
  opt.sweeps = 4;
  const core::NativeResult cold = run_native_engine(kernel, opt);
  const core::ExecutionPlan plan =
      core::build_execution_plan(kernel, opt.plan());
  const core::NativeResult warm =
      core::run_native_plan(kernel, plan, opt.sweep());
  for (std::size_t a = 0; a < cold.node_read.size(); ++a)
    for (std::size_t i = 0; i < cold.node_read[a].size(); ++i)
      ASSERT_EQ(warm.node_read[a][i], cold.node_read[a][i]);
}

TEST(SharedPlan, OnePlanServesConcurrentExecutors) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({150, 900, 7}));
  const core::ExecutionPlan plan =
      core::build_execution_plan(kernel, plan_opts(4, 2));
  core::SweepOptions sopt;
  sopt.sweeps = 2;

  core::SequentialOptions seq_opt;
  seq_opt.sweeps = 2;
  const core::RunResult seq = run_sequential_kernel(kernel, seq_opt);

  constexpr int kRunners = 6;
  std::vector<core::NativeResult> results(kRunners);
  std::vector<std::thread> threads;
  threads.reserve(kRunners);
  for (int t = 0; t < kRunners; ++t)
    threads.emplace_back([&, t] {
      results[t] = core::run_native_plan(kernel, plan, sopt);
    });
  for (std::thread& t : threads) t.join();

  for (const core::NativeResult& r : results)
    for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
      ASSERT_EQ(r.reduction[0][i], seq.reduction[0][i]);
}

TEST(SharedPlan, RejectsMismatchedKernelShape) {
  const auto small = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({100, 500, 8}));
  const auto big = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({200, 900, 8}));
  const core::ExecutionPlan plan =
      core::build_execution_plan(small, plan_opts(2, 2));
  EXPECT_THROW((void)core::run_native_plan(big, plan, {}), check_error);
}

// --- the scheduler ------------------------------------------------------

TEST(JobScheduler, ConcurrentSubmissionMixedMeshesCorrectResults) {
  // Acceptance scenario: >= 8 submitting threads, mixed meshes, every
  // handle resolves, accepted jobs produce per-kernel-correct results,
  // rejected jobs carry a reason (none silently dropped).
  struct Workload {
    std::shared_ptr<const core::PhasedKernel> kernel;
    std::vector<double> expected;  // sequential reduction[0]
    core::PlanOptions plan;
    std::uint32_t sweeps;
  };
  std::vector<Workload> workloads;
  const auto add = [&](std::uint64_t seed, std::uint32_t P, std::uint32_t k,
                       std::uint32_t sweeps) {
    Workload w;
    w.kernel = std::make_shared<kernels::Fig1Kernel>(
        kernels::Fig1Kernel::with_integer_values(
            mesh::make_geometric_mesh(
                {static_cast<std::uint32_t>(120 + 10 * (seed % 3)), 700,
                 seed})));
    w.plan = plan_opts(P, k);
    w.sweeps = sweeps;
    core::SequentialOptions sopt;
    sopt.sweeps = sweeps;
    w.expected = run_sequential_kernel(*w.kernel, sopt).reduction[0];
    workloads.push_back(std::move(w));
  };
  add(40, 4, 2, 2);
  add(41, 3, 1, 3);
  add(42, 2, 2, 1);
  add(43, 5, 2, 2);

  JobScheduler::Config cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 16;
  JobScheduler sched(cfg);

  constexpr int kSubmitters = 8;
  constexpr int kJobsPerThread = 6;
  std::vector<std::vector<JobHandle>> handles(kSubmitters);
  std::atomic<int> ready{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kSubmitters) std::this_thread::yield();
      for (int j = 0; j < kJobsPerThread; ++j) {
        const Workload& w = workloads[(t + j) % workloads.size()];
        JobRequest req;
        req.kernel = w.kernel;
        req.name = "t" + std::to_string(t) + "j" + std::to_string(j);
        req.plan = w.plan;
        req.sweeps = w.sweeps;
        handles[t].push_back(sched.submit(std::move(req)));
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  std::uint64_t done = 0, rejected = 0;
  for (int t = 0; t < kSubmitters; ++t) {
    for (int j = 0; j < kJobsPerThread; ++j) {
      const JobOutcome& o = handles[t][j].wait();
      const Workload& w = workloads[(t + j) % workloads.size()];
      if (o.state == JobState::Done) {
        ++done;
        ASSERT_EQ(o.native.reduction[0].size(), w.expected.size());
        for (std::size_t i = 0; i < w.expected.size(); ++i)
          ASSERT_EQ(o.native.reduction[0][i], w.expected[i]) << o.name;
      } else {
        ASSERT_EQ(o.state, JobState::Rejected) << o.error;
        ASSERT_FALSE(o.error.empty()) << "rejection must carry a reason";
        ++rejected;
      }
    }
  }
  EXPECT_EQ(done + rejected,
            static_cast<std::uint64_t>(kSubmitters) * kJobsPerThread);
  EXPECT_GT(done, 0u);

  const ServiceStats s = sched.stats();
  EXPECT_EQ(s.submitted, done + rejected);
  EXPECT_EQ(s.completed, done);
  EXPECT_EQ(s.rejected, rejected);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.pending(), 0u);
  // Single-flight: each of the 4 plan keys was built at most... exactly once.
  EXPECT_EQ(s.cache.misses, workloads.size());
}

TEST(JobScheduler, QueueFullRejectsWithReason) {
  JobScheduler::Config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  JobScheduler sched(cfg);

  const auto kernel = std::make_shared<kernels::EulerKernel>(
      mesh::make_geometric_mesh({400, 2400, 9}));
  std::vector<JobHandle> handles;
  for (int j = 0; j < 5; ++j) {
    JobRequest req;
    req.kernel = kernel;
    req.name = "job" + std::to_string(j);
    req.plan = plan_opts(4, 2);
    req.sweeps = 40;
    handles.push_back(sched.submit(std::move(req)));
  }
  std::uint64_t done = 0, rejected = 0;
  for (const JobHandle& h : handles) {
    const JobOutcome& o = h.wait();
    if (o.state == JobState::Done) {
      ++done;
    } else {
      ASSERT_EQ(o.state, JobState::Rejected);
      EXPECT_NE(o.error.find("queue full"), std::string::npos) << o.error;
      ++rejected;
    }
  }
  EXPECT_EQ(done + rejected, 5u);
  EXPECT_GE(done, 1u);  // at least the first job ran
  EXPECT_GE(rejected, 2u);
  EXPECT_EQ(sched.stats().rejected, rejected);
}

TEST(JobScheduler, NullKernelRejectedNotCrashed) {
  JobScheduler sched;
  const JobHandle handle = sched.submit(JobRequest{});
  const JobOutcome& o = handle.wait();
  EXPECT_EQ(o.state, JobState::Rejected);
  EXPECT_NE(o.error.find("null kernel"), std::string::npos) << o.error;
}

TEST(JobScheduler, ShutdownRejectsLateSubmissions) {
  JobScheduler sched;
  sched.shutdown();
  JobRequest req;
  req.kernel = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({50, 200, 10})));
  const JobHandle handle = sched.submit(std::move(req));
  const JobOutcome& o = handle.wait();
  EXPECT_EQ(o.state, JobState::Rejected);
  EXPECT_NE(o.error.find("shut down"), std::string::npos) << o.error;
}

TEST(JobScheduler, DeadlineStallSurfacesAsFailedJob) {
  // A lost ring forward (PR 1's fault hook) must trip the per-job
  // deadline and resolve the handle as Failed with the watchdog's
  // diagnostic — not wedge the worker.
  JobScheduler::Config cfg;
  cfg.workers = 1;
  JobScheduler sched(cfg);

  JobRequest req;
  req.kernel = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({100, 600, 11})));
  req.name = "stalling";
  req.plan = plan_opts(4, 2);
  // The lost-forward hook faults the rotation ring, which only exists in
  // the phased executor — pin it so auto cannot route around the fault.
  req.plan.strategy = core::StrategyKind::Phased;
  req.sweeps = 3;
  req.deadline_seconds = 0.3;
  req.lose_forward = {true, 0, 0, 0};
  const JobHandle handle = sched.submit(std::move(req));
  const JobOutcome& o = handle.wait();
  EXPECT_EQ(o.state, JobState::Failed);
  EXPECT_NE(o.error.find("stalled"), std::string::npos) << o.error;
  EXPECT_EQ(sched.stats().failed, 1u);

  // The worker survived: a healthy job still completes.
  JobRequest ok;
  ok.kernel = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({100, 600, 11})));
  ok.plan = plan_opts(2, 1);
  ok.sweeps = 1;
  const JobHandle ok_handle = sched.submit(std::move(ok));
  EXPECT_EQ(ok_handle.wait().state, JobState::Done);
}

TEST(JobScheduler, BatchSharesOnePlanAcrossJobs) {
  JobScheduler::Config cfg;
  cfg.workers = 4;
  cfg.queue_capacity = 32;
  JobScheduler sched(cfg);

  const auto kernel = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({150, 900, 12})));
  const std::uint64_t fp = kernel_fingerprint(*kernel);
  std::vector<JobRequest> reqs;
  for (int j = 0; j < 10; ++j) {
    JobRequest req;
    req.kernel = kernel;
    req.name = "batch" + std::to_string(j);
    req.plan = plan_opts(4, 2);
    req.sweeps = 2;
    req.fingerprint = fp;
    reqs.push_back(std::move(req));
  }
  const std::vector<JobHandle> handles = sched.submit_batch(std::move(reqs));
  ASSERT_EQ(handles.size(), 10u);
  for (const JobHandle& h : handles)
    EXPECT_EQ(h.wait().state, JobState::Done) << h.wait().error;

  const ServiceStats s = sched.stats();
  EXPECT_EQ(s.completed, 10u);
  EXPECT_EQ(s.cache.misses, 1u) << "ten jobs, one plan build";
  EXPECT_EQ(s.cold_setups, 1u);
  EXPECT_EQ(s.warm_setups, 9u);
  EXPECT_LE(s.p50_latency, s.p95_latency);
}

TEST(JobScheduler, SimulatedJobRunsOnEarthMachine) {
  JobScheduler sched;
  const auto kernel = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({100, 500, 13})));
  core::SequentialOptions sopt;
  sopt.sweeps = 2;
  const core::RunResult seq = run_sequential_kernel(*kernel, sopt);

  JobRequest req;
  req.kernel = kernel;
  req.name = "sim";
  req.plan = plan_opts(4, 2);
  req.sweeps = 2;
  req.simulated = true;
  const JobHandle handle = sched.submit(std::move(req));
  const JobOutcome& o = handle.wait();
  ASSERT_EQ(o.state, JobState::Done) << o.error;
  EXPECT_TRUE(o.simulated);
  EXPECT_GT(o.simulated_run.total_cycles, 0u);
  ASSERT_EQ(o.simulated_run.reduction[0].size(), seq.reduction[0].size());
  for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
    ASSERT_EQ(o.simulated_run.reduction[0][i], seq.reduction[0][i]);
  // Simulated jobs bypass the plan cache.
  EXPECT_EQ(sched.stats().cache.misses, 0u);
}

TEST(JobScheduler, DestructorDrainsQueuedJobs) {
  std::vector<JobHandle> handles;
  {
    JobScheduler::Config cfg;
    cfg.workers = 2;
    cfg.queue_capacity = 16;
    JobScheduler sched(cfg);
    const auto kernel = std::make_shared<kernels::Fig1Kernel>(
        kernels::Fig1Kernel::with_integer_values(
            mesh::make_geometric_mesh({100, 500, 14})));
    for (int j = 0; j < 8; ++j) {
      JobRequest req;
      req.kernel = kernel;
      req.name = "drain" + std::to_string(j);
      req.plan = plan_opts(2, 2);
      req.sweeps = 1;
      handles.push_back(sched.submit(std::move(req)));
    }
  }  // ~JobScheduler drains
  for (const JobHandle& h : handles)
    EXPECT_EQ(h.wait().state, JobState::Done) << h.wait().error;
}

// --- graceful drain: deadline interaction and stats reconciliation ------

TEST(JobSchedulerDrain, ExpiredQueuedJobsRejectAtPickupDuringDrain) {
  JobScheduler::Config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 16;
  JobScheduler sched(cfg);

  // One long blocker occupies the single worker...
  const auto big = std::make_shared<kernels::EulerKernel>(
      mesh::make_geometric_mesh({2000, 12000, 8}));
  JobRequest blocker;
  blocker.kernel = big;
  blocker.name = "blocker";
  blocker.plan = plan_opts(4, 2);
  blocker.sweeps = 4000;
  blocker.deadline_seconds = 60.0;
  const JobHandle blocker_handle = sched.submit(std::move(blocker));
  // ...and is definitely running before anything else is queued.
  for (int i = 0; i < 500 && sched.stats().in_flight == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_EQ(sched.stats().in_flight, 1u);

  // Tight-deadline jobs queue behind it; by the time the drain lets the
  // worker pick them up their deadline has long expired.
  const auto small = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({100, 500, 14})));
  std::vector<JobHandle> expired;
  for (int j = 0; j < 3; ++j) {
    JobRequest req;
    req.kernel = small;
    req.name = "expired" + std::to_string(j);
    req.plan = plan_opts(2, 2);
    req.sweeps = 1;
    req.deadline_seconds = 0.001;
    expired.push_back(sched.submit(std::move(req)));
  }
  sched.begin_drain();
  EXPECT_TRUE(sched.draining());

  EXPECT_EQ(blocker_handle.wait().state, JobState::Done)
      << blocker_handle.wait().error;
  for (const JobHandle& h : expired) {
    const JobOutcome& o = h.wait();
    EXPECT_EQ(o.state, JobState::Rejected) << o.name;
    EXPECT_NE(o.error.find("deadline"), std::string::npos) << o.error;
  }

  // Reconciliation: every submitted job is accounted for exactly once
  // and nothing is left queued or running after the drain.
  const ServiceStats s = sched.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.completed + s.failed + s.rejected, s.submitted);
  EXPECT_EQ(s.rejected_deadline, 3u);
  EXPECT_EQ(s.queue_depth, 0u);
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(JobSchedulerDrain, SubmitAfterDrainIsRejectedWithCode) {
  JobScheduler sched(JobScheduler::Config{});
  sched.begin_drain();

  const auto kernel = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({100, 500, 14})));
  JobRequest req;
  req.kernel = kernel;
  req.name = "late";
  req.plan = plan_opts(2, 2);
  const JobHandle late = sched.submit(std::move(req));
  const JobOutcome& o = late.wait();
  EXPECT_EQ(o.state, JobState::Rejected);
  EXPECT_NE(o.error.find("E-SVC-DRAINING"), std::string::npos) << o.error;

  const ServiceStats s = sched.stats();
  EXPECT_EQ(s.submitted, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(JobSchedulerDrain, AbortQueuedResolvesEveryHandleWithReason) {
  JobScheduler::Config cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 32;
  JobScheduler sched(cfg);

  const auto big = std::make_shared<kernels::EulerKernel>(
      mesh::make_geometric_mesh({2000, 12000, 8}));
  JobRequest blocker;
  blocker.kernel = big;
  blocker.name = "blocker";
  blocker.plan = plan_opts(4, 2);
  blocker.sweeps = 4000;
  blocker.deadline_seconds = 60.0;
  const JobHandle blocker_handle = sched.submit(std::move(blocker));
  for (int i = 0; i < 500 && sched.stats().in_flight == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));

  const auto small = std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({100, 500, 14})));
  std::vector<JobHandle> queued;
  for (int j = 0; j < 5; ++j) {
    JobRequest req;
    req.kernel = small;
    req.name = "queued" + std::to_string(j);
    req.plan = plan_opts(2, 2);
    queued.push_back(sched.submit(std::move(req)));
  }

  sched.abort_queued("forced shutdown (test)");
  for (const JobHandle& h : queued) {
    const JobOutcome& o = h.wait();
    EXPECT_EQ(o.state, JobState::Rejected) << o.name;
    EXPECT_NE(o.error.find("forced shutdown"), std::string::npos)
        << o.error;
  }
  // The in-flight blocker is never killed mid-run: abort empties the
  // queue, it does not corrupt running work.
  EXPECT_EQ(blocker_handle.wait().state, JobState::Done)
      << blocker_handle.wait().error;
  EXPECT_EQ(sched.stats().pending(), 0u);
}

}  // namespace
}  // namespace earthred::service
