// Randomized stress of the EARTH machine: arbitrary mixes of sync, send,
// spawn, and get operations wired into random dependency structures must
// always drain, stay deterministic, and deliver every message exactly
// once. Seeded, so failures reproduce.
#include <gtest/gtest.h>

#include <vector>

#include "earth/machine.hpp"
#include "support/prng.hpp"

namespace earthred::earth {
namespace {

struct FuzzOutcome {
  Cycles makespan = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t spawn_runs = 0;
  std::uint64_t get_applies = 0;
};

FuzzOutcome run_fuzz(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  MachineConfig cfg;
  cfg.num_nodes = static_cast<std::uint32_t>(rng.range(1, 6));
  cfg.net.latency = static_cast<Cycles>(rng.range(0, 2000));
  cfg.net.bytes_per_cycle = rng.uniform(0.25, 4.0);
  cfg.max_events = 20'000'000;
  EarthMachine m(cfg);

  FuzzOutcome out;
  constexpr int kRoots = 12;
  std::vector<FiberId> sinks;
  // A pool of sink fibers with random sync counts; roots will satisfy
  // exactly that many signals.
  std::vector<std::uint32_t> needed;
  for (int i = 0; i < kRoots; ++i) {
    const auto node = static_cast<NodeId>(rng.below(cfg.num_nodes));
    const auto sync = static_cast<std::uint32_t>(rng.range(1, 4));
    needed.push_back(sync);
    sinks.push_back(m.add_fiber(node, sync, [&out](FiberContext& ctx) {
      ++out.deliveries;
      ctx.charge(25);
    }));
  }

  // Roots: each fires once and issues a random mix of operations; each
  // sink receives exactly `needed` signals in total across all roots.
  std::vector<std::pair<std::size_t, std::uint32_t>> todo;  // sink, count
  for (std::size_t s = 0; s < sinks.size(); ++s)
    todo.emplace_back(s, needed[s]);

  const auto root_node = static_cast<NodeId>(rng.below(cfg.num_nodes));
  const auto do_spawn = rng.chance(0.7);
  const auto do_get = rng.chance(0.7) && cfg.num_nodes > 1;
  FiberId root = m.add_fiber(root_node, 1, [&, do_spawn,
                                            do_get](FiberContext& ctx) {
    for (auto& [s, count] : todo) {
      for (std::uint32_t c = 0; c < count; ++c) {
        // Mix operation kinds; all end in one signal to the sink.
        const double pick = static_cast<double>((s + c) % 3);
        if (pick == 0) {
          ctx.sync(sinks[s]);
        } else if (pick == 1) {
          ctx.send(sinks[s], 64, {});
        } else if (do_get) {
          const auto from =
              static_cast<NodeId>((ctx.node() + 1) % cfg.num_nodes);
          ctx.get(from, 8,
                  [&out] { return [&out] { ++out.get_applies; }; },
                  sinks[s]);
        } else {
          ctx.sync(sinks[s]);
        }
      }
    }
    if (do_spawn) {
      for (int i = 0; i < 5; ++i) {
        ctx.spawn(kAnyNode, 0, [&out](FiberContext& inner) {
          ++out.spawn_runs;
          inner.charge(10);
        });
      }
    }
  });
  m.credit(root);
  out.makespan = m.run();
  return out;
}

TEST(MachineFuzz, AlwaysDrainsAndFiresEverySink) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const FuzzOutcome out = run_fuzz(seed);
    EXPECT_EQ(out.deliveries, 12u) << "seed " << seed;
    EXPECT_GT(out.makespan, 0u) << "seed " << seed;
  }
}

TEST(MachineFuzz, DeterministicAcrossIdenticalRuns) {
  for (std::uint64_t seed = 50; seed <= 60; ++seed) {
    const FuzzOutcome a = run_fuzz(seed);
    const FuzzOutcome b = run_fuzz(seed);
    EXPECT_EQ(a.makespan, b.makespan) << "seed " << seed;
    EXPECT_EQ(a.spawn_runs, b.spawn_runs);
    EXPECT_EQ(a.get_applies, b.get_applies);
  }
}

}  // namespace
}  // namespace earthred::earth
