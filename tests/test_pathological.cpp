// Pathological-workload tests: degenerate and adversarial meshes through
// every engine, checked against the sequential reference. These are the
// inputs where scheduling bugs (empty phases, all-deferred references,
// single hot node) would surface.
#include <gtest/gtest.h>

#include <vector>

#include "core/classic_engine.hpp"
#include "core/native_engine.hpp"
#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/fig1.hpp"
#include "support/check.hpp"

namespace earthred {
namespace {

mesh::Mesh star_mesh(std::uint32_t leaves) {
  // Node 0 is the hub of every edge: maximal reduction contention and,
  // for every processor not owning node 0's portion this phase, a
  // deferred reference per iteration.
  mesh::Mesh m;
  m.num_nodes = leaves + 1;
  for (std::uint32_t v = 1; v <= leaves; ++v) m.edges.push_back({0, v});
  return m;
}

mesh::Mesh chain_mesh(std::uint32_t n) {
  mesh::Mesh m;
  m.num_nodes = n;
  for (std::uint32_t v = 0; v + 1 < n; ++v) m.edges.push_back({v, v + 1});
  return m;
}

mesh::Mesh parallel_edges_mesh(std::uint32_t copies) {
  // The same pair repeated: every iteration collides on two elements.
  mesh::Mesh m;
  m.num_nodes = 8;
  for (std::uint32_t i = 0; i < copies; ++i) m.edges.push_back({1, 6});
  return m;
}

mesh::Mesh skew_phase_mesh(std::uint32_t n, std::uint32_t edges) {
  // All edges inside the last portion: with a block distribution every
  // processor's iterations pile into one phase.
  mesh::Mesh m;
  m.num_nodes = n;
  for (std::uint32_t i = 0; i < edges; ++i)
    m.edges.push_back({n - 2, n - 1});
  return m;
}

void check_all_engines(const mesh::Mesh& mesh, std::uint32_t procs,
                       std::uint32_t k) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(mesh);
  core::SequentialOptions sopt;
  sopt.sweeps = 2;
  sopt.machine.max_events = 50'000'000;
  const core::RunResult seq = core::run_sequential_kernel(kernel, sopt);

  core::RotationOptions ropt;
  ropt.num_procs = procs;
  ropt.k = k;
  ropt.sweeps = 2;
  ropt.machine.max_events = 50'000'000;
  const core::RunResult rot = core::run_rotation_engine(kernel, ropt);

  core::ClassicOptions copt;
  copt.num_procs = procs;
  copt.sweeps = 2;
  copt.machine.max_events = 50'000'000;
  const core::RunResult cls = core::run_classic_engine(kernel, copt);

  core::NativeOptions nopt;
  nopt.num_procs = procs;
  nopt.k = k;
  nopt.sweeps = 2;
  const core::NativeResult nat = core::run_native_engine(kernel, nopt);

  for (std::size_t i = 0; i < seq.reduction[0].size(); ++i) {
    ASSERT_EQ(rot.reduction[0][i], seq.reduction[0][i]) << "rotation " << i;
    ASSERT_EQ(cls.reduction[0][i], seq.reduction[0][i]) << "classic " << i;
    ASSERT_EQ(nat.reduction[0][i], seq.reduction[0][i]) << "native " << i;
  }
}

TEST(Pathological, StarHubAllEnginesAgree) {
  check_all_engines(star_mesh(63), 4, 2);
  check_all_engines(star_mesh(63), 8, 1);
}

TEST(Pathological, StarHubDefersHeavily) {
  // On processors not owning the hub's portion during an iteration's
  // phase, the hub reference is deferred — verify buffers are exercised.
  const auto kernel =
      kernels::Fig1Kernel::with_integer_values(star_mesh(63));
  const inspector::RotationSchedule sched(64, 4, 2);
  inspector::IterationRefs refs;
  refs.refs.resize(2);
  for (std::uint32_t e = 0; e < 63; ++e) {
    refs.global_iter.push_back(e);
    refs.refs[0].push_back(kernel.ref(0, e));
    refs.refs[1].push_back(kernel.ref(1, e));
  }
  const auto res = inspector::run_light_inspector(sched, 2, refs);
  EXPECT_GT(res.total_deferred(), 0u);
}

TEST(Pathological, ChainAllEnginesAgree) {
  check_all_engines(chain_mesh(97), 3, 2);
}

TEST(Pathological, ParallelEdgesAllEnginesAgree) {
  check_all_engines(parallel_edges_mesh(200), 4, 2);
}

TEST(Pathological, SkewedPhasesAllEnginesAgree) {
  // One phase carries everything; the rest are empty — exercises empty
  // phase fibers and imbalance handling.
  check_all_engines(skew_phase_mesh(64, 300), 4, 2);
}

TEST(Pathological, EmptyEdgeListRuns) {
  mesh::Mesh m;
  m.num_nodes = 32;
  const auto kernel = kernels::Fig1Kernel::with_integer_values(m);
  core::RotationOptions ropt;
  ropt.num_procs = 4;
  ropt.k = 2;
  ropt.machine.max_events = 1'000'000;
  const core::RunResult r = core::run_rotation_engine(kernel, ropt);
  for (const double v : r.reduction[0]) ASSERT_EQ(v, 0.0);
}

TEST(Pathological, SingleEdgeManyProcs) {
  mesh::Mesh m;
  m.num_nodes = 64;
  m.edges = {{3, 60}};
  check_all_engines(m, 8, 2);
}

TEST(Pathological, MoreProcsThanIterationsStillCorrect) {
  check_all_engines(chain_mesh(33), 8, 2);  // 32 edges over 8 procs
}

}  // namespace
}  // namespace earthred
