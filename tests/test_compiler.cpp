// Tests for the DSL compiler: lexing, parsing, semantic checks, the
// Sec. 4 analysis (sections, reference groups, loop fission), Threaded-C
// emission, and end-to-end execution of compiled kernels on the engines.
#include <gtest/gtest.h>

#include <string>

#include "compiler/compiler.hpp"
#include "compiler/lexer.hpp"
#include "compiler/parser.hpp"
#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::compiler {
namespace {

constexpr const char* kFig1Source = R"(
  // Figure 1 of the paper.
  param num_nodes, num_edges;
  array real X[num_nodes];
  array int  IA1[num_edges];
  array int  IA2[num_edges];
  array real Y[num_edges];

  forall (i : 0 .. num_edges) {
    X[IA1[i]] += Y[i] * 2.0;
    X[IA2[i]] += Y[i] * 2.0;
  }
)";

constexpr const char* kTwoGroupSource = R"(
  param num_nodes, num_edges;
  array real X[num_nodes];
  array real W[num_nodes];
  array int  IA1[num_edges];
  array int  IA2[num_edges];
  array real Y[num_edges];

  forall (i : 0 .. num_edges) {
    t = Y[i] * 3.0;
    X[IA1[i]] += t;
    X[IA2[i]] -= t;
    W[IA1[i]] += t * t;
  }
)";

// ------------------------------------------------------------- lexer

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  DiagnosticSink sink;
  const auto toks = lex("x += 3.5e2 .. // comment\n [i]", sink);
  EXPECT_FALSE(sink.has_errors());
  ASSERT_GE(toks.size(), 7u);
  EXPECT_EQ(toks[0].kind, TokenKind::Identifier);
  EXPECT_EQ(toks[1].kind, TokenKind::PlusAssign);
  EXPECT_EQ(toks[2].kind, TokenKind::RealLiteral);
  EXPECT_DOUBLE_EQ(toks[2].number, 350.0);
  EXPECT_EQ(toks[3].kind, TokenKind::DotDot);
  EXPECT_EQ(toks[4].kind, TokenKind::LBracket);
}

TEST(Lexer, TracksPositions) {
  DiagnosticSink sink;
  const auto toks = lex("param\n  forall", sink);
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[1].line, 2u);
  EXPECT_EQ(toks[1].column, 3u);
}

TEST(Lexer, ReportsBadCharacters) {
  DiagnosticSink sink;
  lex("x @ y", sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Lexer, BlockCommentsAndUnterminated) {
  DiagnosticSink sink;
  const auto toks = lex("a /* hi \n there */ b", sink);
  EXPECT_FALSE(sink.has_errors());
  EXPECT_EQ(toks.size(), 3u);  // a, b, EOF
  DiagnosticSink sink2;
  lex("a /* never closed", sink2);
  EXPECT_TRUE(sink2.has_errors());
}

// ------------------------------------------------------------- parser

TEST(Parser, ParsesFig1) {
  DiagnosticSink sink;
  const Program p = parse(kFig1Source, sink);
  ASSERT_FALSE(sink.has_errors()) << sink.summary();
  EXPECT_EQ(p.params.size(), 2u);
  EXPECT_EQ(p.arrays.size(), 4u);
  ASSERT_EQ(p.loops.size(), 1u);
  EXPECT_EQ(p.loops[0].var, "i");
  EXPECT_EQ(p.loops[0].hi_param, "num_edges");
  ASSERT_EQ(p.loops[0].body.size(), 2u);
  EXPECT_EQ(p.loops[0].body[0].kind, StmtKind::Accumulate);
  EXPECT_EQ(p.loops[0].body[0].index.indirection, "IA1");
  EXPECT_EQ(p.loops[0].body[0].index.inner_var, "i");
}

TEST(Parser, RejectsPlainAssignToArray) {
  DiagnosticSink sink;
  parse("param n, m; array real X[n]; array int IA[m];"
        "forall (i : 0 .. m) { X[IA[i]] = 1.0; }",
        sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Parser, RejectsDoubleIndirection) {
  DiagnosticSink sink;
  parse("param n, m; array real X[n]; array int A[m]; array int B[m];"
        "forall (i : 0 .. m) { X[A[B[i]]] += 1.0; }",
        sink);
  EXPECT_TRUE(sink.has_errors());
}

TEST(Parser, RecoversAndReportsMultipleErrors) {
  DiagnosticSink sink;
  parse("param n; array real X[n]; forall (i : 0 .. n) { = ; X = ; }",
        sink);
  EXPECT_GE(sink.diagnostics().size(), 2u);
}

// ------------------------------------------------------------- sema

TEST(Sema, UndeclaredArrayReported) {
  EXPECT_THROW(compile("param n, m; forall (i : 0 .. m) "
                       "{ X[IA[i]] += 1.0; }"),
               compile_error);
}

TEST(Sema, IndirectionMustBeInt) {
  try {
    compile("param n, m; array real X[n]; array real F[m];"
            "forall (i : 0 .. m) { X[F[i]] += 1.0; }");
    FAIL();
  } catch (const compile_error& e) {
    EXPECT_NE(std::string(e.what()).find("must be 'int'"),
              std::string::npos);
  }
}

TEST(Sema, ReductionArrayReadIsLoopCarried) {
  try {
    compile("param n, m; array real X[n]; array int IA[m]; array int IB[m];"
            "forall (i : 0 .. m) { X[IA[i]] += X[IB[i]]; }");
    FAIL();
  } catch (const compile_error& e) {
    EXPECT_NE(std::string(e.what()).find("loop-carried"),
              std::string::npos);
  }
}

TEST(Sema, ScalarUseBeforeDefinition) {
  EXPECT_THROW(compile("param n, m; array real X[n]; array int IA[m];"
                       "forall (i : 0 .. m) { X[IA[i]] += t; t = 1.0; }"),
               compile_error);
}

TEST(Sema, WrongExtentReported) {
  EXPECT_THROW(compile("param n, m; array real X[n]; array int IA[n];"
                       "forall (i : 0 .. m) { X[IA[i]] += 1.0; }"),
               compile_error);
}

TEST(Sema, IndexMustUseLoopVariable) {
  EXPECT_THROW(compile("param n, m; array real X[n]; array int IA[m];"
                       "forall (i : 0 .. m) { X[IA[j]] += 1.0; }"),
               compile_error);
}

TEST(Sema, DirectAccumulateRejected) {
  EXPECT_THROW(compile("param n, m; array real Y[m]; "
                       "forall (i : 0 .. m) { Y[i] += 1.0; }"),
               compile_error);
}

// ----------------------------------------------------------- analysis

TEST(Analysis, Fig1SingleGroupNoFission) {
  const CompileResult r = compile(kFig1Source);
  ASSERT_EQ(r.analysis.loops.size(), 1u);
  const LoopAnalysis& la = r.analysis.loops[0];
  EXPECT_EQ(la.reduction_sections.size(), 2u);  // X via IA1, X via IA2
  EXPECT_EQ(la.indirection_sections.size(), 2u);
  ASSERT_EQ(la.groups.size(), 1u);
  EXPECT_FALSE(la.needs_fission());
  EXPECT_EQ(la.groups[0].reduction_arrays,
            (std::vector<std::string>{"X"}));
  EXPECT_EQ(la.groups[0].indirection_arrays,
            (std::vector<std::string>{"IA1", "IA2"}));
  EXPECT_EQ(r.analysis.fissioned.size(), 1u);
}

TEST(Analysis, SectionTripletNotation) {
  const CompileResult r = compile(kFig1Source);
  EXPECT_EQ(r.analysis.loops[0].reduction_sections[0].triplet(),
            "X(0:num_nodes:1)");
  EXPECT_EQ(r.analysis.loops[0].indirection_sections[0].triplet(),
            "IA1(0:num_edges:1)");
}

TEST(Analysis, TwoGroupsForceFission) {
  const CompileResult r = compile(kTwoGroupSource);
  const LoopAnalysis& la = r.analysis.loops[0];
  ASSERT_EQ(la.groups.size(), 2u);
  EXPECT_TRUE(la.needs_fission());
  ASSERT_EQ(r.analysis.fissioned.size(), 2u);
  // W is accessed via {IA1} only; X via {IA1, IA2}.
  const auto& g0 = r.analysis.fissioned[0].group;
  const auto& g1 = r.analysis.fissioned[1].group;
  const bool w_first = g0.reduction_arrays == std::vector<std::string>{"W"};
  const auto& wg = w_first ? g0 : g1;
  const auto& xg = w_first ? g1 : g0;
  EXPECT_EQ(wg.indirection_arrays, (std::vector<std::string>{"IA1"}));
  EXPECT_EQ(xg.indirection_arrays, (std::vector<std::string>{"IA1", "IA2"}));
}

TEST(Analysis, FissionReplicatesScalarChain) {
  const CompileResult r = compile(kTwoGroupSource);
  // Both fissioned loops must carry the `t = Y[i] * 3.0;` definition.
  for (const FissionedLoop& f : r.analysis.fissioned) {
    bool has_t = false;
    for (const Stmt& s : f.loop.body)
      if (s.kind == StmtKind::ScalarAssign && s.target == "t") has_t = true;
    EXPECT_TRUE(has_t);
  }
}

TEST(Analysis, ThreadedCEmissionMentionsKeyConstructs) {
  const CompileResult r = compile(kFig1Source);
  ASSERT_EQ(r.threaded_c.size(), 1u);
  const std::string& code = r.threaded_c[0];
  EXPECT_NE(code.find("LIGHTINSPECTOR"), std::string::npos);
  EXPECT_NE(code.find("second loop"), std::string::npos);
  EXPECT_NE(code.find("BLKMOV_SYNC"), std::string::npos);
  EXPECT_NE(code.find("IA1_out"), std::string::npos);
}

// ----------------------------------------------------- compiled kernel

DataEnv fig1_env(std::uint32_t nodes, std::uint32_t edges,
                 std::uint64_t seed) {
  DataEnv env;
  env.params["num_nodes"] = nodes;
  env.params["num_edges"] = edges;
  Xoshiro256 rng(seed);
  std::vector<std::uint32_t> ia1, ia2;
  std::vector<double> y;
  for (std::uint32_t e = 0; e < edges; ++e) {
    ia1.push_back(static_cast<std::uint32_t>(rng.below(nodes)));
    ia2.push_back(static_cast<std::uint32_t>(rng.below(nodes)));
    y.push_back(static_cast<double>(rng.range(1, 9)));  // integer: exact
  }
  env.int_arrays["IA1"] = std::move(ia1);
  env.int_arrays["IA2"] = std::move(ia2);
  env.real_arrays["Y"] = std::move(y);
  return env;
}

TEST(CompiledKernel, ShapeAndRefs) {
  const CompileResult r = compile(kFig1Source);
  const auto kernel = bind(r, 0, fig1_env(40, 100, 3));
  const core::KernelShape s = kernel->shape();
  EXPECT_EQ(s.num_nodes, 40u);
  EXPECT_EQ(s.num_edges, 100u);
  EXPECT_EQ(s.num_refs, 2u);
  EXPECT_EQ(s.num_reduction_arrays, 1u);
  EXPECT_EQ(s.num_node_read_arrays, 0u);
  for (std::uint32_t r2 = 0; r2 < 2; ++r2)
    for (std::uint64_t e = 0; e < 100; ++e)
      EXPECT_LT(kernel->ref(r2, e), 40u);
}

TEST(CompiledKernel, BindingValidatesShapes) {
  const CompileResult r = compile(kFig1Source);
  DataEnv env = fig1_env(40, 100, 3);
  env.real_arrays["Y"].pop_back();
  EXPECT_THROW(bind(r, 0, std::move(env)), check_error);

  DataEnv env2 = fig1_env(40, 100, 3);
  env2.int_arrays["IA1"][5] = 40;  // out of node range
  EXPECT_THROW(bind(r, 0, std::move(env2)), check_error);

  DataEnv env3 = fig1_env(40, 100, 3);
  env3.params.erase("num_nodes");
  EXPECT_THROW(bind(r, 0, std::move(env3)), check_error);
}

TEST(CompiledKernel, EngineMatchesInterpreterExactly) {
  const CompileResult r = compile(kFig1Source);
  const auto kernel = bind(r, 0, fig1_env(48, 300, 7));
  const auto want = kernel->interpret_reference();

  core::RotationOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 1;
  opt.machine.max_events = 10'000'000;
  const core::RunResult run = core::run_rotation_engine(*kernel, opt);
  ASSERT_EQ(run.reduction.size(), 1u);
  const auto& x = want.at("X");
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_EQ(run.reduction[0][i], x[i]) << "element " << i;
}

TEST(CompiledKernel, FissionedProgramMatchesInterpreter) {
  const CompileResult r = compile(kTwoGroupSource);
  ASSERT_EQ(r.analysis.fissioned.size(), 2u);
  for (std::size_t li = 0; li < 2; ++li) {
    const auto kernel = bind(r, li, fig1_env(32, 200, 11));
    const auto want = kernel->interpret_reference();
    core::SequentialOptions opt;
    opt.machine.max_events = 10'000'000;
    const core::RunResult run = core::run_sequential_kernel(*kernel, opt);
    ASSERT_EQ(run.reduction.size(), kernel->reduction_names().size());
    for (std::size_t a = 0; a < run.reduction.size(); ++a) {
      const auto& ref = want.at(kernel->reduction_names()[a]);
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(run.reduction[a][i], ref[i], 1e-12);
    }
  }
}

TEST(CompiledKernel, GatherReadsWork) {
  // A loop reading a node array through an indirection that is not used
  // for any update (a pure gather).
  const char* src = R"(
    param n, m;
    array real X[n];
    array real P[n];
    array int  IA1[m];
    array int  IA2[m];
    forall (i : 0 .. m) {
      X[IA1[i]] += P[IA2[i]] * 0.5;
    }
  )";
  const CompileResult r = compile(src);
  ASSERT_EQ(r.analysis.fissioned.size(), 1u);
  // Only IA1 parameterizes the inspector (single-reference easy case).
  EXPECT_EQ(r.analysis.fissioned[0].group.indirection_arrays,
            (std::vector<std::string>{"IA1"}));
  EXPECT_EQ(r.analysis.fissioned[0].gather_arrays,
            (std::vector<std::string>{"P"}));

  DataEnv env;
  env.params["n"] = 24;
  env.params["m"] = 120;
  Xoshiro256 rng(5);
  std::vector<std::uint32_t> ia1, ia2;
  std::vector<double> pv;
  for (int i = 0; i < 120; ++i) {
    ia1.push_back(static_cast<std::uint32_t>(rng.below(24)));
    ia2.push_back(static_cast<std::uint32_t>(rng.below(24)));
  }
  for (int i = 0; i < 24; ++i) pv.push_back(static_cast<double>(i * 2));
  env.int_arrays["IA1"] = std::move(ia1);
  env.int_arrays["IA2"] = std::move(ia2);
  env.real_arrays["P"] = std::move(pv);
  const auto kernel = bind(r, 0, std::move(env));
  EXPECT_EQ(kernel->shape().num_refs, 1u);
  EXPECT_EQ(kernel->shape().num_node_read_arrays, 1u);

  const auto want = kernel->interpret_reference();
  core::RotationOptions opt;
  opt.num_procs = 3;
  opt.k = 2;
  opt.machine.max_events = 10'000'000;
  const core::RunResult run = core::run_rotation_engine(*kernel, opt);
  const auto& x = want.at("X");
  for (std::size_t i = 0; i < x.size(); ++i)
    ASSERT_NEAR(run.reduction[0][i], x[i], 1e-12);
}

TEST(CompiledKernel, DivisionAndUnaryMinus) {
  const char* src = R"(
    param n, m;
    array real X[n];
    array int IA[m];
    array real Y[m];
    forall (i : 0 .. m) {
      X[IA[i]] += -Y[i] / 4.0;
    }
  )";
  const CompileResult r = compile(src);
  DataEnv env;
  env.params["n"] = 8;
  env.params["m"] = 4;
  env.int_arrays["IA"] = {0, 1, 0, 7};
  env.real_arrays["Y"] = {4.0, 8.0, 12.0, 16.0};
  const auto kernel = bind(r, 0, std::move(env));
  const auto want = kernel->interpret_reference();
  EXPECT_DOUBLE_EQ(want.at("X")[0], -4.0);  // -(4+12)/4
  EXPECT_DOUBLE_EQ(want.at("X")[1], -2.0);
  EXPECT_DOUBLE_EQ(want.at("X")[7], -4.0);
}

TEST(CompiledKernel, BytecodeDisassembles) {
  const CompileResult r = compile(kFig1Source);
  const auto kernel = bind(r, 0, fig1_env(16, 20, 1));
  (void)kernel;
  // Smoke: disassembly of a simple bytecode contains the load op.
  Bytecode bc;
  bc.code.push_back({Op::LoadEdge, 0, 0, 0.0});
  bc.code.push_back({Op::PushConst, 0, 0, 2.0});
  bc.code.push_back({Op::Mul, 0, 0, 0.0});
  const std::string dis = bc.disassemble();
  EXPECT_NE(dis.find("lde 0"), std::string::npos);
  EXPECT_NE(dis.find("mul"), std::string::npos);
}


TEST(CompiledKernel, RunProgramExecutesAllFissionedLoops) {
  const CompileResult r = compile(kTwoGroupSource);
  const DataEnv env = fig1_env(32, 200, 19);
  core::RotationOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.machine.max_events = 50'000'000;
  const ProgramRunResult run = run_program(r, env, opt);
  EXPECT_GT(run.total_cycles, 0u);
  // Both groups' arrays present, matching the interpreters.
  ASSERT_TRUE(run.reduction.count("X"));
  ASSERT_TRUE(run.reduction.count("W"));
  for (std::size_t li = 0; li < 2; ++li) {
    const auto kernel = bind(r, li, env);
    const auto want = kernel->interpret_reference();
    for (const auto& name : kernel->reduction_names()) {
      const auto& got = run.reduction.at(name);
      const auto& ref = want.at(name);
      for (std::size_t i = 0; i < ref.size(); ++i)
        ASSERT_NEAR(got[i], ref[i], 1e-12) << name << " elem " << i;
    }
  }
}

}  // namespace
}  // namespace earthred::compiler
