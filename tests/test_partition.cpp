// Tests for the RCB partitioner and partition-major renumbering.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mesh/generators.hpp"
#include "mesh/partition.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::mesh {
namespace {

TEST(Rcb, BalancedSizes) {
  const Mesh m = euler_mesh_small();
  for (const std::uint32_t parts : {2u, 3u, 7u, 16u}) {
    const auto part = rcb_partition(m, parts);
    std::vector<std::uint32_t> count(parts, 0);
    for (const auto p : part) {
      ASSERT_LT(p, parts);
      ++count[p];
    }
    std::uint32_t lo = m.num_nodes, hi = 0;
    for (const auto c : count) {
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
    // Proportional splitting keeps parts within a few nodes of each other.
    EXPECT_LE(hi - lo, parts) << parts << " parts";
  }
}

TEST(Rcb, CutFarBelowRandomAssignment) {
  const Mesh m = euler_mesh_small();
  const std::uint32_t parts = 8;
  const auto part = rcb_partition(m, parts);
  const std::uint64_t cut = edge_cut(m, part);

  Xoshiro256 rng(3);
  std::vector<std::uint32_t> random_part(m.num_nodes);
  for (auto& p : random_part)
    p = static_cast<std::uint32_t>(rng.below(parts));
  const std::uint64_t random_cut = edge_cut(m, random_part);
  // Random assignment cuts ~ (1 - 1/parts) of edges; geometric bisection
  // should cut several times fewer.
  EXPECT_LT(cut * 3, random_cut);
}

TEST(Rcb, SinglePartIsTrivial) {
  const Mesh m = make_geometric_mesh({50, 180, 4});
  const auto part = rcb_partition(m, 1);
  for (const auto p : part) EXPECT_EQ(p, 0u);
  EXPECT_EQ(edge_cut(m, part), 0u);
}

TEST(Rcb, RequiresCoordinates) {
  Mesh m;
  m.num_nodes = 4;
  m.edges = {{0, 1}};
  EXPECT_THROW(rcb_partition(m, 2), precondition_error);
}

TEST(PartitionOrder, GroupsNodesContiguously) {
  const Mesh m = make_geometric_mesh({200, 800, 5});
  const std::uint32_t parts = 4;
  const auto part = rcb_partition(m, parts);
  const auto perm = partition_order(part, parts);

  // perm is a bijection.
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), m.num_nodes);

  // New ids are partition-major: ids of part p form a contiguous range
  // that precedes part p+1's.
  std::vector<std::uint32_t> label_at_new(m.num_nodes);
  for (std::uint32_t v = 0; v < m.num_nodes; ++v)
    label_at_new[perm[v]] = part[v];
  for (std::uint32_t i = 1; i < m.num_nodes; ++i)
    EXPECT_LE(label_at_new[i - 1], label_at_new[i]);
}

TEST(PartitionOrder, RenumberPreservesCut) {
  const Mesh m = make_geometric_mesh({150, 600, 6});
  const auto part = rcb_partition(m, 4);
  const auto perm = partition_order(part, 4);
  const Mesh r = renumber(m, perm);
  // Relabel partitions to the new ids and verify cut invariant.
  std::vector<std::uint32_t> new_part(m.num_nodes);
  for (std::uint32_t v = 0; v < m.num_nodes; ++v)
    new_part[perm[v]] = part[v];
  EXPECT_EQ(edge_cut(r, new_part), edge_cut(m, part));
}

}  // namespace
}  // namespace earthred::mesh
