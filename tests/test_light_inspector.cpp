// Tests for the LightInspector (Sec. 3), including a Figure-3-style worked
// example, the single-reference special case, property tests of the
// schedule invariants, and equivalence of the incremental update.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "inspector/light_inspector.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::inspector {
namespace {

/// Builds two-reference iteration input from an edge list.
IterationRefs refs_from_edges(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges) {
  IterationRefs r;
  r.refs.resize(2);
  for (std::uint32_t i = 0; i < edges.size(); ++i) {
    r.global_iter.push_back(i);
    r.refs[0].push_back(edges[i].first);
    r.refs[1].push_back(edges[i].second);
  }
  return r;
}

/// Checks every structural invariant of an InspectorResult against its
/// inputs; used by unit and property tests alike.
void check_invariants(const RotationSchedule& sched, std::uint32_t proc,
                      const IterationRefs& iters,
                      const InspectorResult& result) {
  ASSERT_EQ(result.phases.size(), sched.phases_per_sweep());
  const std::uint32_t n = sched.num_elements();

  // Every local iteration appears in exactly one phase.
  std::map<std::uint32_t, int> seen;  // global iter -> count
  for (std::uint32_t ph = 0; ph < result.phases.size(); ++ph) {
    const PhaseSchedule& phase = result.phases[ph];
    ASSERT_EQ(phase.iter_global.size(), phase.iter_local.size());
    for (const auto& row : phase.indir)
      ASSERT_EQ(row.size(), phase.iter_global.size());
    for (std::size_t j = 0; j < phase.iter_global.size(); ++j) {
      ++seen[phase.iter_global[j]];
      const std::uint32_t local = phase.iter_local[j];
      ASSERT_LT(local, iters.num_iterations());
      EXPECT_EQ(result.assigned_phase[local], ph);
      // The assigned phase is the min owning phase over references.
      std::uint32_t min_ph = sched.phases_per_sweep();
      for (std::size_t r = 0; r < iters.num_refs(); ++r) {
        const std::uint32_t elem = iters.refs[r][local];
        min_ph = std::min(min_ph,
                          sched.owning_phase(proc, sched.portion_of(elem)));
      }
      EXPECT_EQ(min_ph, ph);
      // Each reference is either direct (and owned this phase) or a
      // redirect to an in-range buffer slot whose element matches.
      for (std::size_t r = 0; r < iters.num_refs(); ++r) {
        const std::uint32_t elem = iters.refs[r][local];
        const std::uint32_t redirected = phase.indir[r][j];
        if (redirected < n) {
          EXPECT_EQ(redirected, elem);
          EXPECT_EQ(sched.owned_portion(proc, ph), sched.portion_of(elem));
        } else {
          const std::uint32_t slot = redirected - n;
          ASSERT_LT(slot, result.num_buffer_slots);
          EXPECT_EQ(result.slot_elem[slot], elem);
          // Deferred means owned strictly later.
          EXPECT_GT(sched.owning_phase(proc, sched.portion_of(elem)), ph);
        }
      }
    }
  }
  for (std::uint32_t i = 0; i < iters.num_iterations(); ++i)
    EXPECT_EQ(seen[iters.global_iter[i]], 1) << "iteration " << i;

  // Second-loop entries: every *active* slot is folded exactly once, in
  // the phase during which its destination element is owned.
  std::set<std::uint32_t> freed(result.free_slots.begin(),
                                result.free_slots.end());
  std::map<std::uint32_t, int> folds;  // slot -> count
  for (std::uint32_t ph = 0; ph < result.phases.size(); ++ph) {
    const PhaseSchedule& phase = result.phases[ph];
    ASSERT_EQ(phase.copy_dst.size(), phase.copy_src.size());
    for (std::size_t j = 0; j < phase.copy_dst.size(); ++j) {
      const std::uint32_t dst = phase.copy_dst[j];
      const std::uint32_t src = phase.copy_src[j];
      ASSERT_GE(src, n);
      const std::uint32_t slot = src - n;
      ASSERT_LT(slot, result.num_buffer_slots);
      EXPECT_EQ(result.slot_elem[slot], dst);
      EXPECT_EQ(sched.owning_phase(proc, sched.portion_of(dst)), ph);
      EXPECT_FALSE(freed.count(slot)) << "fold of freed slot";
      ++folds[slot];
    }
  }
  for (const auto& [slot, count] : folds) EXPECT_EQ(count, 1);

  // Every slot referenced from indir has a fold (or is freed).
  std::set<std::uint32_t> referenced;
  for (const PhaseSchedule& phase : result.phases)
    for (const auto& row : phase.indir)
      for (std::uint32_t v : row)
        if (v >= n) referenced.insert(v - n);
  for (std::uint32_t slot : referenced) {
    EXPECT_FALSE(freed.count(slot));
    EXPECT_TRUE(folds.count(slot)) << "referenced slot never folded";
  }
  EXPECT_EQ(result.local_array_size,
            static_cast<std::uint64_t>(n) + result.num_buffer_slots);
}

TEST(LightInspector, WorkedExampleEightNodesTwoProcs) {
  // The setting of the paper's Figure 3: 8 nodes, 2 processors, k = 2,
  // processor 0 holding 10 edges. (The paper's exact edge list is not
  // recoverable from the text; we fix one and hand-check the pivotal
  // facts the narration gives: 4 phases, 2-node portions, remote buffer
  // starting at location 8, and an edge whose second endpoint is owned in
  // phase 2 being redirected into the buffer.)
  const RotationSchedule sched(8, 2, 2);
  const auto iters = refs_from_edges({{0, 1},
                                      {2, 3},
                                      {0, 2},
                                      {4, 5},
                                      {6, 7},
                                      {1, 6},
                                      {3, 5},
                                      {7, 4},
                                      {2, 6},
                                      {0, 7}});
  const InspectorResult res = run_light_inspector(sched, 0, iters);
  check_invariants(sched, 0, iters, res);

  // Portions on P0 are owned phase == portion id: {0,1}@0, {2,3}@1,
  // {4,5}@2, {6,7}@3.
  // Edge 0 (0,1): both in phase 0 -> phase 0, both direct.
  EXPECT_EQ(res.assigned_phase[0], 0u);
  // Edge 7 (7,4): node 7 -> phase 3, node 4 -> phase 2; assigned to the
  // earlier phase 2 with node 7 deferred to a buffer location >= 8.
  EXPECT_EQ(res.assigned_phase[7], 2u);
  {
    const PhaseSchedule& ph2 = res.phases[2];
    const auto it = std::find(ph2.iter_global.begin(), ph2.iter_global.end(),
                              7u);
    ASSERT_NE(it, ph2.iter_global.end());
    const auto j = static_cast<std::size_t>(it - ph2.iter_global.begin());
    EXPECT_EQ(ph2.indir[1][j], 4u);   // owned endpoint stays direct
    EXPECT_GE(ph2.indir[0][j], 8u);   // deferred endpoint -> buffer
  }
  // The buffer extends the array: first slot is location 8 (paper: "the
  // remote buffer starts at location 8").
  EXPECT_GT(res.num_buffer_slots, 0u);
  EXPECT_EQ(res.local_array_size, 8u + res.num_buffer_slots);
}

TEST(LightInspector, SingleReferenceNeedsNoBuffers) {
  // Sec. 3: with a single distinct indirection reference, all updates
  // happen when the element is owned — no buffer, no second loop.
  const RotationSchedule sched(16, 2, 2);
  IterationRefs iters;
  iters.refs.resize(1);
  Xoshiro256 rng(4);
  for (std::uint32_t i = 0; i < 40; ++i) {
    iters.global_iter.push_back(i);
    iters.refs[0].push_back(static_cast<std::uint32_t>(rng.below(16)));
  }
  const InspectorResult res = run_light_inspector(sched, 1, iters);
  check_invariants(sched, 1, iters, res);
  EXPECT_EQ(res.num_buffer_slots, 0u);
  EXPECT_EQ(res.total_deferred(), 0u);
}

TEST(LightInspector, BothEndpointsSamePortionAreDirect) {
  const RotationSchedule sched(8, 2, 2);
  const auto iters = refs_from_edges({{4, 5}});
  const InspectorResult res = run_light_inspector(sched, 0, iters);
  EXPECT_EQ(res.num_buffer_slots, 0u);
  EXPECT_EQ(res.assigned_phase[0], 2u);
}

TEST(LightInspector, ThreeReferencesSupported) {
  // The paper: "the algorithm can be trivially extended" beyond two
  // references — verify a 3-reference loop partitions correctly.
  const RotationSchedule sched(24, 2, 2);
  IterationRefs iters;
  iters.refs.resize(3);
  Xoshiro256 rng(5);
  for (std::uint32_t i = 0; i < 60; ++i) {
    iters.global_iter.push_back(i);
    for (auto& row : iters.refs)
      row.push_back(static_cast<std::uint32_t>(rng.below(24)));
  }
  const InspectorResult res = run_light_inspector(sched, 0, iters);
  check_invariants(sched, 0, iters, res);
  EXPECT_GT(res.total_deferred(), 0u);
}

TEST(LightInspector, DedupSharesSlotsAcrossIterations) {
  const RotationSchedule sched(8, 2, 2);
  // Three edges all deferring node 6 (owned last on P0).
  const auto iters = refs_from_edges({{0, 6}, {1, 6}, {2, 6}});
  const InspectorResult plain = run_light_inspector(sched, 0, iters, {});
  const InspectorResult dedup =
      run_light_inspector(sched, 0, iters, {.dedup_buffers = true});
  check_invariants(sched, 0, iters, plain);
  check_invariants(sched, 0, iters, dedup);
  EXPECT_EQ(plain.num_buffer_slots, 3u);
  EXPECT_EQ(dedup.num_buffer_slots, 1u);
  EXPECT_EQ(plain.total_deferred(), 3u);
  EXPECT_EQ(dedup.total_deferred(), 1u);
}

TEST(LightInspector, RejectsBadInput) {
  const RotationSchedule sched(8, 2, 2);
  IterationRefs ragged;
  ragged.global_iter = {0, 1};
  ragged.refs = {{0, 1}, {2}};
  EXPECT_THROW(run_light_inspector(sched, 0, ragged), precondition_error);

  IterationRefs oob;
  oob.global_iter = {0};
  oob.refs = {{8}, {0}};
  EXPECT_THROW(run_light_inspector(sched, 0, oob), precondition_error);

  IterationRefs ok = refs_from_edges({{0, 1}});
  EXPECT_THROW(run_light_inspector(sched, 2, ok), precondition_error);
}

TEST(LightInspector, PropertyInvariantsOnRandomInputs) {
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const auto procs = static_cast<std::uint32_t>(rng.range(1, 6));
    const auto k = static_cast<std::uint32_t>(rng.range(1, 4));
    const auto n = static_cast<std::uint32_t>(
        rng.range(procs * k, procs * k * 10));
    const auto nrefs = static_cast<std::size_t>(rng.range(1, 3));
    const auto niter = static_cast<std::uint32_t>(rng.range(0, 200));
    const RotationSchedule sched(n, procs, k);
    const auto proc = static_cast<std::uint32_t>(rng.below(procs));

    IterationRefs iters;
    iters.refs.resize(nrefs);
    for (std::uint32_t i = 0; i < niter; ++i) {
      iters.global_iter.push_back(i * 3 + 1);  // arbitrary global ids
      for (auto& row : iters.refs)
        row.push_back(static_cast<std::uint32_t>(rng.below(n)));
    }
    const bool dedup = rng.chance(0.5);
    const InspectorResult res =
        run_light_inspector(sched, proc, iters, {.dedup_buffers = dedup});
    check_invariants(sched, proc, iters, res);
  }
}

// ------------------------------------------------------- incremental

/// Applies the schedule semantically: replays a sweep of X[a]+=v, X[b]+=v
/// reductions restricted to this processor and checks the result equals
/// the direct computation. This is the ground truth for incremental
/// equivalence.
std::vector<double> execute_schedule(const RotationSchedule& sched,
                                     const IterationRefs& iters,
                                     const InspectorResult& res,
                                     const std::vector<double>& edge_val) {
  std::vector<double> x(res.local_array_size, 0.0);
  for (const PhaseSchedule& phase : res.phases) {
    for (std::size_t j = 0; j < phase.iter_global.size(); ++j) {
      const std::uint32_t local = phase.iter_local[j];
      for (std::size_t r = 0; r < res.phases[0].indir.size(); ++r)
        x[phase.indir[r][j]] += edge_val[local] * (r + 1);
    }
    for (std::size_t j = 0; j < phase.copy_dst.size(); ++j) {
      x[phase.copy_dst[j]] += x[phase.copy_src[j]];
      x[phase.copy_src[j]] = 0.0;
    }
  }
  x.resize(sched.num_elements());
  (void)iters;
  return x;
}

std::vector<double> execute_reference(const RotationSchedule& sched,
                                      const IterationRefs& iters,
                                      const std::vector<double>& edge_val) {
  std::vector<double> x(sched.num_elements(), 0.0);
  for (std::uint32_t i = 0; i < iters.num_iterations(); ++i)
    for (std::size_t r = 0; r < iters.num_refs(); ++r)
      x[iters.refs[r][i]] += edge_val[i] * (r + 1);
  return x;
}

TEST(LightInspector, ScheduleExecutionMatchesReference) {
  Xoshiro256 rng(123);
  const RotationSchedule sched(32, 4, 2);
  IterationRefs iters;
  iters.refs.resize(2);
  std::vector<double> vals;
  for (std::uint32_t i = 0; i < 100; ++i) {
    iters.global_iter.push_back(i);
    iters.refs[0].push_back(static_cast<std::uint32_t>(rng.below(32)));
    iters.refs[1].push_back(static_cast<std::uint32_t>(rng.below(32)));
    vals.push_back(rng.uniform(-1, 1));
  }
  const InspectorResult res = run_light_inspector(sched, 1, iters);
  const auto got = execute_schedule(sched, iters, res, vals);
  const auto want = execute_reference(sched, iters, vals);
  for (std::size_t e = 0; e < want.size(); ++e)
    EXPECT_NEAR(got[e], want[e], 1e-12) << "element " << e;
}

TEST(LightInspector, IncrementalUpdateMatchesFullRerun) {
  Xoshiro256 rng(321);
  for (int trial = 0; trial < 20; ++trial) {
    const auto procs = static_cast<std::uint32_t>(rng.range(1, 5));
    const auto k = static_cast<std::uint32_t>(rng.range(1, 3));
    const auto n = static_cast<std::uint32_t>(
        rng.range(procs * k * 2, procs * k * 12));
    const RotationSchedule sched(n, procs, k);
    const auto proc = static_cast<std::uint32_t>(rng.below(procs));
    const auto niter = static_cast<std::uint32_t>(rng.range(5, 120));

    IterationRefs iters;
    iters.refs.resize(2);
    std::vector<double> vals;
    for (std::uint32_t i = 0; i < niter; ++i) {
      iters.global_iter.push_back(i);
      iters.refs[0].push_back(static_cast<std::uint32_t>(rng.below(n)));
      iters.refs[1].push_back(static_cast<std::uint32_t>(rng.below(n)));
      vals.push_back(rng.uniform(-1, 1));
    }
    const InspectorResult base = run_light_inspector(sched, proc, iters);

    // Mutate a random subset of iterations' references.
    std::vector<std::uint32_t> changed;
    for (std::uint32_t i = 0; i < niter; ++i) {
      if (rng.chance(0.3)) {
        iters.refs[0][i] = static_cast<std::uint32_t>(rng.below(n));
        iters.refs[1][i] = static_cast<std::uint32_t>(rng.below(n));
        changed.push_back(i);
      }
    }
    const InspectorResult incr =
        update_light_inspector(sched, proc, iters, base, changed);
    check_invariants(sched, proc, iters, incr);

    // Semantically identical to a from-scratch run.
    const InspectorResult full = run_light_inspector(sched, proc, iters);
    const auto got = execute_schedule(sched, iters, incr, vals);
    const auto want = execute_schedule(sched, iters, full, vals);
    for (std::size_t e = 0; e < want.size(); ++e)
      ASSERT_NEAR(got[e], want[e], 1e-12)
          << "trial " << trial << " element " << e;
    EXPECT_EQ(incr.phase_sizes(), full.phase_sizes());
  }
}

TEST(LightInspector, IncrementalRejectsDedupAndBadIndices) {
  const RotationSchedule sched(8, 2, 2);
  auto iters = refs_from_edges({{0, 7}, {1, 6}});
  const InspectorResult base = run_light_inspector(sched, 0, iters);
  const std::vector<std::uint32_t> changed{0};
  EXPECT_THROW(update_light_inspector(sched, 0, iters, base, changed,
                                      {.dedup_buffers = true}),
               precondition_error);
  const std::vector<std::uint32_t> oob{9};
  EXPECT_THROW(update_light_inspector(sched, 0, iters, base, oob),
               precondition_error);
}

TEST(LightInspector, IncrementalReusesFreedSlots) {
  const RotationSchedule sched(8, 2, 2);
  auto iters = refs_from_edges({{0, 7}, {1, 6}});
  const InspectorResult base = run_light_inspector(sched, 0, iters);
  EXPECT_EQ(base.num_buffer_slots, 2u);
  // Change both edges; slots should be recycled, not grown.
  iters.refs[0] = {2, 3};
  iters.refs[1] = {7, 6};
  const InspectorResult incr = update_light_inspector(
      sched, 0, iters, base, std::vector<std::uint32_t>{0, 1});
  EXPECT_EQ(incr.num_buffer_slots, 2u);
}

}  // namespace
}  // namespace earthred::inspector
