// PlanCache: keying, single-flight build deduplication under concurrent
// hammering, LRU eviction order, byte budgets, and failure retry.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "kernels/fig1.hpp"
#include "mesh/generators.hpp"
#include "service/plan_cache.hpp"
#include "support/check.hpp"

namespace earthred::service {
namespace {

using kernels::Fig1Kernel;

Fig1Kernel make_kernel(std::uint64_t seed) {
  return Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({200, 1200, seed}));
}

core::PlanOptions plan_opts(std::uint32_t P = 4, std::uint32_t k = 2) {
  core::PlanOptions opt;
  opt.num_procs = P;
  opt.k = k;
  return opt;
}

TEST(PlanCache, KeyDistinguishesEveryPlanParameter) {
  const Fig1Kernel a = make_kernel(1);
  const Fig1Kernel b = make_kernel(2);
  const PlanKey base = make_plan_key(a, plan_opts());

  EXPECT_EQ(base, make_plan_key(a, plan_opts()));
  EXPECT_NE(base, make_plan_key(b, plan_opts()));  // different mesh content
  EXPECT_NE(base, make_plan_key(a, plan_opts(8, 2)));
  EXPECT_NE(base, make_plan_key(a, plan_opts(4, 1)));

  core::PlanOptions block = plan_opts();
  block.distribution = inspector::Distribution::Block;
  EXPECT_NE(base, make_plan_key(a, block));

  core::PlanOptions dedup = plan_opts();
  dedup.inspector.dedup_buffers = true;
  EXPECT_NE(base, make_plan_key(a, dedup));

  // A precomputed fingerprint short-circuits hashing but yields the key.
  EXPECT_EQ(base, make_plan_key(a, plan_opts(), kernel_fingerprint(a)));
}

TEST(PlanCache, HitReturnsSamePlanAndCounts) {
  const Fig1Kernel kernel = make_kernel(3);
  PlanCache cache;
  PlanCache::Outcome o1{}, o2{};
  const PlanPtr p1 = cache.lookup_or_build(kernel, plan_opts(), {}, &o1);
  const PlanPtr p2 = cache.lookup_or_build(kernel, plan_opts(), {}, &o2);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_EQ(o1, PlanCache::Outcome::Built);
  EXPECT_EQ(o2, PlanCache::Outcome::Hit);
  const PlanCache::Counters c = cache.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.bytes, p1->byte_size());
}

TEST(PlanCache, SingleFlightBuildsOncePerKeyUnderConcurrency) {
  const Fig1Kernel kernel = make_kernel(4);
  PlanCache cache;
  constexpr int kThreads = 16;

  std::atomic<int> ready{0};
  std::vector<PlanPtr> plans(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      plans[t] = cache.lookup_or_build(kernel, plan_opts());
    });
  }
  for (std::thread& t : threads) t.join();

  const PlanCache::Counters c = cache.counters();
  EXPECT_EQ(c.misses, 1u) << "key must be built exactly once";
  EXPECT_EQ(c.hits + c.coalesced, static_cast<std::uint64_t>(kThreads - 1));
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(plans[t].get(), plans[0].get());
}

TEST(PlanCache, HammeringOverlappingKeysBuildsEachExactlyOnce) {
  // The satellite scenario: N threads x many iterations over overlapping
  // keys. Every key must be built exactly once (single-flight); all other
  // requests are hits or coalesced joins.
  std::vector<std::unique_ptr<Fig1Kernel>> kernels;
  for (std::uint64_t s = 0; s < 4; ++s)
    kernels.push_back(std::make_unique<Fig1Kernel>(make_kernel(10 + s)));
  PlanCache cache;
  constexpr int kThreads = 8;
  constexpr int kIters = 25;

  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kIters; ++i) {
        // Different threads walk the key set in different orders.
        const auto& kernel = *kernels[(t + i) % kernels.size()];
        const PlanPtr p = cache.lookup_or_build(kernel, plan_opts());
        ASSERT_NE(p, nullptr);
        ASSERT_EQ(p->options.num_procs, 4u);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const PlanCache::Counters c = cache.counters();
  EXPECT_EQ(c.misses, kernels.size());
  EXPECT_EQ(c.hits + c.coalesced + c.misses,
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.entries, kernels.size());
}

TEST(PlanCache, LruEvictionDropsLeastRecentlyUsedFirst) {
  const Fig1Kernel a = make_kernel(21), b = make_kernel(22),
                   c = make_kernel(23), d = make_kernel(24);
  // Budget for ~3 plans of this size (all four meshes are shaped alike).
  const std::uint64_t one =
      core::build_execution_plan(a, plan_opts()).byte_size();
  PlanCache::Config cfg;
  cfg.byte_budget = one * 7 / 2;
  PlanCache cache(cfg);

  (void)cache.lookup_or_build(a, plan_opts());
  (void)cache.lookup_or_build(b, plan_opts());
  (void)cache.lookup_or_build(c, plan_opts());
  EXPECT_EQ(cache.counters().entries, 3u);

  // Touch a: LRU order is now b < c < a.
  (void)cache.lookup_or_build(a, plan_opts());
  // Insert d: b (least recently used) must go, not a.
  (void)cache.lookup_or_build(d, plan_opts());

  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_TRUE(cache.contains(make_plan_key(a, plan_opts())));
  EXPECT_FALSE(cache.contains(make_plan_key(b, plan_opts())));
  EXPECT_TRUE(cache.contains(make_plan_key(c, plan_opts())));
  EXPECT_TRUE(cache.contains(make_plan_key(d, plan_opts())));

  // Next victim is c.
  (void)cache.lookup_or_build(b, plan_opts());
  EXPECT_FALSE(cache.contains(make_plan_key(c, plan_opts())));
  EXPECT_TRUE(cache.contains(make_plan_key(a, plan_opts())));
}

TEST(PlanCache, ZeroBudgetDisablesRetentionButStillBuilds) {
  const Fig1Kernel kernel = make_kernel(30);
  PlanCache::Config cfg;
  cfg.byte_budget = 0;
  PlanCache cache(cfg);
  const PlanPtr p1 = cache.lookup_or_build(kernel, plan_opts());
  const PlanPtr p2 = cache.lookup_or_build(kernel, plan_opts());
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);  // caller-held plans survive eviction
  const PlanCache::Counters c = cache.counters();
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.evictions, 2u);
  EXPECT_EQ(c.entries, 0u);
  EXPECT_EQ(c.bytes, 0u);
}

TEST(PlanCache, BuildFailurePropagatesAndForgetsTheKey) {
  const Fig1Kernel kernel = make_kernel(31);
  PlanCache cache;
  // 200 nodes cannot be split into 64*8 portions: the build throws.
  EXPECT_THROW(
      (void)cache.lookup_or_build(kernel, plan_opts(64, 8)),
      precondition_error);
  EXPECT_EQ(cache.counters().build_failures, 1u);
  EXPECT_EQ(cache.counters().entries, 0u);
  // The failed key was forgotten; a valid request still works.
  EXPECT_NE(cache.lookup_or_build(kernel, plan_opts()), nullptr);
  // And retrying the bad key fails again rather than wedging.
  EXPECT_THROW(
      (void)cache.lookup_or_build(kernel, plan_opts(64, 8)),
      precondition_error);
}

}  // namespace
}  // namespace earthred::service
