// Round-trip and error-handling tests for mesh and matrix serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "sparse/io.hpp"
#include "sparse/nas_cg.hpp"
#include "support/check.hpp"

namespace earthred {
namespace {

TEST(MeshIo, RoundTripWithCoords) {
  const mesh::Mesh m = mesh::make_geometric_mesh({120, 500, 9});
  std::stringstream ss;
  mesh::write_mesh(ss, m);
  const mesh::Mesh r = mesh::read_mesh(ss);
  EXPECT_EQ(r.num_nodes, m.num_nodes);
  ASSERT_EQ(r.edges.size(), m.edges.size());
  for (std::size_t i = 0; i < m.edges.size(); ++i)
    EXPECT_EQ(r.edges[i], m.edges[i]);
  ASSERT_EQ(r.coords.size(), m.coords.size());
  for (std::size_t i = 0; i < m.coords.size(); ++i)
    for (int d = 0; d < 3; ++d)
      EXPECT_DOUBLE_EQ(r.coords[i][d], m.coords[i][d]);
}

TEST(MeshIo, RoundTripWithoutCoords) {
  mesh::Mesh m;
  m.num_nodes = 4;
  m.edges = {{0, 1}, {2, 3}};
  std::stringstream ss;
  mesh::write_mesh(ss, m);
  const mesh::Mesh r = mesh::read_mesh(ss);
  EXPECT_TRUE(r.coords.empty());
  EXPECT_EQ(r.num_edges(), 2u);
}

TEST(MeshIo, RejectsGarbage) {
  std::stringstream ss("hello world");
  EXPECT_THROW(mesh::read_mesh(ss), check_error);
  std::stringstream ss2("mesh 4 2 0\ne 0 1\n");  // truncated
  EXPECT_THROW(mesh::read_mesh(ss2), check_error);
  std::stringstream ss3("mesh 2 1 0\ne 0 5\n");  // out of range
  EXPECT_THROW(mesh::read_mesh(ss3), check_error);
}

TEST(MeshIo, RejectsNegativeCountsAndIndices) {
  // A negative count read into an unsigned would wrap to ~2^64 and turn
  // the header into a gigantic allocation; it must be a parse error.
  std::stringstream neg_edges("mesh 4 -5 0\n");
  EXPECT_THROW(mesh::read_mesh(neg_edges), check_error);
  std::stringstream neg_nodes("mesh -4 1 0\ne 0 1\n");
  EXPECT_THROW(mesh::read_mesh(neg_nodes), check_error);
  std::stringstream neg_endpoint("mesh 4 1 0\ne -1 2\n");
  EXPECT_THROW(mesh::read_mesh(neg_endpoint), check_error);
  std::stringstream bad_flag("mesh 4 0 7\n");
  EXPECT_THROW(mesh::read_mesh(bad_flag), check_error);
}

TEST(MeshIo, RejectsOverflowingCounts) {
  // Node count beyond 32 bits and an absurd edge count with no edges
  // behind it must both fail cleanly (no OOM, no wrap).
  std::stringstream huge_nodes("mesh 99999999999 0 0\n");
  EXPECT_THROW(mesh::read_mesh(huge_nodes), check_error);
  std::stringstream lying_edges("mesh 4 99999999999 0\ne 0 1\n");
  EXPECT_THROW(mesh::read_mesh(lying_edges), check_error);
}

TEST(MeshIo, RejectsTruncatedCoordinates) {
  std::stringstream ss("mesh 2 1 1\ne 0 1\nc 0.0 0.0 0.0\n");  // 1 of 2
  EXPECT_THROW(mesh::read_mesh(ss), check_error);
}

TEST(MeshIo, FileRoundTrip) {
  const mesh::Mesh m = mesh::make_geometric_mesh({50, 180, 4});
  const std::string path = "/tmp/earthred_test_mesh.txt";
  mesh::save_mesh(path, m);
  const mesh::Mesh r = mesh::load_mesh(path);
  EXPECT_EQ(r.num_edges(), m.num_edges());
  EXPECT_THROW(mesh::load_mesh("/nonexistent/nope.txt"), check_error);
}

TEST(SparseIo, MatrixMarketRoundTrip) {
  const sparse::CsrMatrix m =
      sparse::make_nas_cg_matrix({100, 3, 0.1, 10.0, 314159265.0});
  std::stringstream ss;
  sparse::write_matrix_market(ss, m);
  const sparse::CsrMatrix r = sparse::read_matrix_market(ss);
  EXPECT_EQ(r.nrows(), m.nrows());
  EXPECT_EQ(r.nnz(), m.nnz());
  for (std::size_t j = 0; j < m.values().size(); ++j) {
    EXPECT_EQ(r.col_idx()[j], m.col_idx()[j]);
    EXPECT_DOUBLE_EQ(r.values()[j], m.values()[j]);
  }
}

TEST(SparseIo, SymmetricExpansion) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2.0\n"
      "2 1 5.0\n"
      "3 3 1.0\n");
  const sparse::CsrMatrix m = sparse::read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 4u);  // (1,1), (2,1)+(1,2), (3,3)
  EXPECT_TRUE(m.is_symmetric());
}

TEST(SparseIo, RejectsUnsupportedVariants) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate complex general\n3 3 1\n1 1 2 0\n");
  EXPECT_THROW(sparse::read_matrix_market(ss), check_error);
  std::stringstream ss2("not a matrix\n");
  EXPECT_THROW(sparse::read_matrix_market(ss2), check_error);
  std::stringstream ss3(
      "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 2.0\n");
  EXPECT_THROW(sparse::read_matrix_market(ss3), check_error);  // truncated
  std::stringstream ss4(
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 2.0\n");
  EXPECT_THROW(sparse::read_matrix_market(ss4), check_error);  // range
}

TEST(SparseIo, RejectsNegativeAndOverflowingSizeLine) {
  const std::string hdr = "%%MatrixMarket matrix coordinate real general\n";
  std::stringstream neg_rows(hdr + "-3 3 1\n1 1 2.0\n");
  EXPECT_THROW(sparse::read_matrix_market(neg_rows), check_error);
  std::stringstream neg_nnz(hdr + "3 3 -1\n");
  EXPECT_THROW(sparse::read_matrix_market(neg_nnz), check_error);
  std::stringstream huge_dims(hdr + "99999999999 3 1\n1 1 2.0\n");
  EXPECT_THROW(sparse::read_matrix_market(huge_dims), check_error);
  // Huge declared nnz with only one real entry: must fail as truncated,
  // not attempt a matching allocation first.
  std::stringstream lying_nnz(hdr + "3 3 99999999999\n1 1 2.0\n");
  EXPECT_THROW(sparse::read_matrix_market(lying_nnz), check_error);
}

TEST(SparseIo, RejectsNegativeIndices) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 1\n"
      "-1 2 4.5\n");
  EXPECT_THROW(sparse::read_matrix_market(ss), check_error);
  std::stringstream zero_based(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 1\n"
      "0 1 4.5\n");  // MatrixMarket is 1-based
  EXPECT_THROW(sparse::read_matrix_market(zero_based), check_error);
}

TEST(SparseIo, CommentsSkipped) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "% another\n"
      "2 2 1\n"
      "2 2 7.5\n");
  const sparse::CsrMatrix m = sparse::read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.values()[0], 7.5);
}

}  // namespace
}  // namespace earthred
