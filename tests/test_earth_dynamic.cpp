// Tests for dynamic EARTH operations: threaded-procedure spawning (with
// load-balanced token placement) and split-phase remote reads (GET_SYNC).
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "earth/machine.hpp"
#include "support/check.hpp"

namespace earthred::earth {
namespace {

MachineConfig cfg(std::uint32_t nodes) {
  MachineConfig c;
  c.num_nodes = nodes;
  c.max_events = 10'000'000;
  return c;
}

TEST(Spawn, RunsOnRequestedNode) {
  EarthMachine m(cfg(3));
  NodeId ran_on = 99;
  FiberId root = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.spawn(2, 0, [&](FiberContext& inner) { ran_on = inner.node(); });
  });
  m.credit(root);
  m.run();
  EXPECT_EQ(ran_on, 2u);
}

TEST(Spawn, TokenTravelTakesNetworkTime) {
  MachineConfig c = cfg(2);
  c.net.latency = 2000;
  EarthMachine m(c);
  Cycles child_start = 0;
  FiberId root = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.spawn(1, 0,
              [&](FiberContext& inner) { child_start = inner.now(); });
  });
  m.credit(root);
  m.run();
  EXPECT_GE(child_start, 2000u);

  // Local spawn: no network charge.
  EarthMachine m2(c);
  Cycles local_start = 0;
  FiberId root2 = m2.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.spawn(0, 0,
              [&](FiberContext& inner) { local_start = inner.now(); });
  });
  m2.credit(root2);
  m2.run();
  EXPECT_LT(local_start, 2000u);
}

TEST(Spawn, SpawnedFiberWithSyncCountWaitsForSignals) {
  EarthMachine m(cfg(1));
  std::vector<int> order;
  FiberId root = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    const FiberId waiter = ctx.spawn(0, 2, [&](FiberContext&) {
      order.push_back(2);
    });
    const FiberId signaler = ctx.spawn(0, 0, [&, waiter](FiberContext& c2) {
      order.push_back(1);
      c2.sync(waiter);
      c2.sync(waiter);
    });
    (void)signaler;
    order.push_back(0);
  });
  m.credit(root);
  m.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(order[2], 2);
}

TEST(Spawn, LeastLoadedBalancesAcrossNodes) {
  MachineConfig c = cfg(4);
  c.spawn_policy = SpawnPolicy::LeastLoaded;
  EarthMachine m(c);
  std::vector<int> per_node(4, 0);
  FiberId root = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    for (int i = 0; i < 64; ++i) {
      ctx.spawn(kAnyNode, 0, [&](FiberContext& inner) {
        ++per_node[inner.node()];
        inner.charge(500);
      });
    }
  });
  m.credit(root);
  m.run();
  int total = 0;
  for (int n : per_node) {
    EXPECT_GT(n, 0);
    total += n;
  }
  EXPECT_EQ(total, 64);
}

TEST(Spawn, RoundRobinDistributesEvenly) {
  MachineConfig c = cfg(4);
  c.spawn_policy = SpawnPolicy::RoundRobin;
  EarthMachine m(c);
  std::vector<int> per_node(4, 0);
  FiberId root = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    for (int i = 0; i < 16; ++i)
      ctx.spawn(kAnyNode, 0,
                [&](FiberContext& inner) { ++per_node[inner.node()]; });
  });
  m.credit(root);
  m.run();
  for (int n : per_node) EXPECT_EQ(n, 4);
}

TEST(Spawn, DivideAndConquerTreeSum) {
  // The classic EARTH demonstration: a binary tree of threaded
  // procedures, each leaf contributing 1, sums propagating back through
  // sync'd sends. 2^7 leaves across 4 nodes.
  EarthMachine m(cfg(4));
  long long total = 0;

  struct TreeSpawner {
    EarthMachine& m;
    long long* accumulator;

    void spawn_tree(FiberContext& ctx, int depth) const {
      if (depth == 0) {
        *accumulator += 1;  // leaf
        return;
      }
      for (int child = 0; child < 2; ++child) {
        ctx.spawn(kAnyNode, 0, [this, depth](FiberContext& inner) {
          spawn_tree(inner, depth - 1);
        });
      }
    }
  };
  TreeSpawner spawner{m, &total};

  FiberId root = m.add_fiber(
      0, 1, [&](FiberContext& ctx) { spawner.spawn_tree(ctx, 7); });
  m.credit(root);
  m.run();
  EXPECT_EQ(total, 128);
  // Work actually spread: several nodes ran fibers.
  int busy_nodes = 0;
  for (std::uint32_t n = 0; n < 4; ++n)
    busy_nodes += m.node_stats(n).fibers_run > 0;
  EXPECT_GE(busy_nodes, 2);
}

TEST(Get, RemoteReadSamplesAtRemoteTime) {
  // Node 1 sets `value = 2` in a fiber that becomes ready at t~1000 (it
  // is sync'd by a predecessor that charges 1000 cycles). A get request
  // from node 0 samples `value` when the request reaches node 1: with a
  // 10-cycle link it arrives before the write fiber runs (sees 1); with
  // a 5000-cycle link it arrives after (sees 2). This pins down *when*
  // the fetch closure executes in simulated time.
  for (const Cycles latency : {Cycles{10}, Cycles{5000}}) {
    MachineConfig c = cfg(2);
    c.net.latency = latency;
    EarthMachine m(c);
    int value = 1;
    int observed = -1;

    std::vector<FiberId> writer(1);
    writer[0] = m.add_fiber(1, 1, [&](FiberContext&) { value = 2; });
    FiberId delayer = m.add_fiber(1, 0, [&](FiberContext& ctx) {
      ctx.charge(1000);
      ctx.sync(writer[0]);
    });
    m.credit(delayer);

    FiberId receiver = m.add_fiber(0, 1, [&](FiberContext&) {});
    FiberId requester = m.add_fiber(0, 1, [&](FiberContext& ctx) {
      ctx.get(1, 8, [&] {
        const int sampled = value;
        return [&observed, sampled] { observed = sampled; };
      },
              receiver);
    });
    m.credit(requester);
    m.run();
    if (latency == 10) {
      EXPECT_EQ(observed, 1) << "request should beat the write";
    } else {
      EXPECT_EQ(observed, 2) << "request should arrive after the write";
    }
  }
}

TEST(Get, LocalGetWorks) {
  EarthMachine m(cfg(1));
  double store = 7.5;
  double got = 0;
  FiberId receiver = m.add_fiber(0, 1, [&](FiberContext&) {});
  FiberId root = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.get(0, 8, [&] { return [&got, &store] { got = store; }; },
            receiver);
  });
  m.credit(root);
  m.run();
  EXPECT_DOUBLE_EQ(got, 7.5);
}

TEST(Get, ResponsePaysBothDirections) {
  MachineConfig c = cfg(2);
  c.net.latency = 3000;
  EarthMachine m(c);
  Cycles done_at = 0;
  FiberId receiver = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    done_at = ctx.now();
  });
  FiberId root = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.get(1, 64, [] { return [] {}; }, receiver);
  });
  m.credit(root);
  m.run();
  EXPECT_GE(done_at, 6000u);  // two traversals
  EXPECT_EQ(m.stats().total_msgs(), 2u);
}

TEST(Get, RejectsBadArguments) {
  EarthMachine m(cfg(2));
  FiberId receiver = m.add_fiber(0, 1, [](FiberContext&) {});
  FiberId root = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    EXPECT_THROW(ctx.get(5, 8, [] { return [] {}; }, receiver),
                 precondition_error);
    EXPECT_THROW(ctx.get(1, 8, {}, receiver), precondition_error);
  });
  m.credit(root);
  m.run();
}

TEST(Spawn, InvalidTargetRejected) {
  EarthMachine m(cfg(2));
  FiberId root = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    EXPECT_THROW(ctx.spawn(7, 0, [](FiberContext&) {}),
                 precondition_error);
  });
  m.credit(root);
  m.run();
}

}  // namespace
}  // namespace earthred::earth
