// Tests for the NAS-CG driver built on the mvm rotation engine.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cg.hpp"
#include "sparse/nas_cg.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::core {
namespace {

sparse::CsrMatrix small_spd() {
  return sparse::make_nas_cg_matrix({300, 4, 0.1, 10.0, 314159265.0});
}

std::vector<double> ones(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

TEST(Cg, ReferenceReducesResidual) {
  const auto A = small_spd();
  const auto x = ones(A.nrows());
  const CgResult r5 = reference_cg(A, x, 10.0, 5);
  const CgResult r25 = reference_cg(A, x, 10.0, 25);
  const double x_norm = std::sqrt(static_cast<double>(x.size()));
  EXPECT_LT(r25.rnorm, r5.rnorm);
  EXPECT_LT(r25.rnorm, 0.5 * x_norm);
}

TEST(Cg, ReferenceSolvesSystem) {
  // After convergence, A z ~ x.
  const auto A = small_spd();
  const auto x = ones(A.nrows());
  const CgResult r = reference_cg(A, x, 10.0, 60);
  std::vector<double> az(A.nrows());
  A.spmv(r.z, az);
  double err = 0;
  for (std::size_t i = 0; i < az.size(); ++i)
    err = std::max(err, std::abs(az[i] - x[i]));
  EXPECT_LT(err, 1e-6);
}

TEST(Cg, SimulatedMatchesReference) {
  const auto A = small_spd();
  const auto x = ones(A.nrows());
  const CgResult want = reference_cg(A, x, 10.0, 25);
  for (const std::uint32_t P : {1u, 2u, 4u, 8u}) {
    CgOptions opt;
    opt.num_procs = P;
    opt.k = 2;
    opt.machine.max_events = 100'000'000;
    const CgResult got = run_cg(A, x, 10.0, opt);
    EXPECT_NEAR(got.zeta, want.zeta, 1e-8) << "P=" << P;
    EXPECT_NEAR(got.rnorm, want.rnorm, 1e-8 * (1.0 + want.rnorm));
    for (std::size_t i = 0; i < want.z.size(); ++i)
      ASSERT_NEAR(got.z[i], want.z[i], 1e-8 * (1.0 + std::abs(want.z[i])));
  }
}

TEST(Cg, CyclesScaleDownWithProcessors) {
  const auto A = small_spd();
  const auto x = ones(A.nrows());
  earth::Cycles prev = ~0ULL;
  for (const std::uint32_t P : {1u, 2u, 4u}) {
    CgOptions opt;
    opt.num_procs = P;
    opt.cg_iterations = 10;
    opt.machine.max_events = 100'000'000;
    const CgResult r = run_cg(A, x, 10.0, opt);
    EXPECT_LT(r.total_cycles, prev) << "P=" << P;
    prev = r.total_cycles;
    EXPECT_GT(r.mvm_cycles, r.vector_cycles);  // mvm dominates NPB CG
  }
}

TEST(Cg, ZetaApproachesShiftedEigenvalue) {
  // NPB's verification idea: zeta converges as iterations grow; check it
  // stabilizes (successive estimates close).
  const auto A = small_spd();
  const auto x = ones(A.nrows());
  const CgResult a = reference_cg(A, x, 10.0, 25);
  const CgResult b = reference_cg(A, x, 10.0, 50);
  EXPECT_NEAR(a.zeta, b.zeta, 1e-3 * std::abs(b.zeta));
}

TEST(Cg, RejectsBadShapes) {
  const auto A = small_spd();
  std::vector<double> short_x(10, 1.0);
  CgOptions opt;
  EXPECT_THROW(run_cg(A, short_x, 10.0, opt), precondition_error);
  const sparse::CsrMatrix rect =
      sparse::CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  std::vector<double> x3(3, 1.0);
  EXPECT_THROW(run_cg(rect, x3, 10.0, opt), precondition_error);
}

}  // namespace
}  // namespace earthred::core
