// Unit tests for the kernels themselves: shapes, reference exposure, and
// the physical invariants their equal-and-opposite accumulation implies
// (conservation of summed residual / total force), checked both on the
// kernel math and through the full parallel engines.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "support/check.hpp"

namespace earthred::kernels {
namespace {

TEST(EulerKernel, ShapeAndRefsMatchMesh) {
  const mesh::Mesh m = mesh::make_geometric_mesh({100, 400, 1});
  const EulerKernel k(m);
  const core::KernelShape s = k.shape();
  EXPECT_EQ(s.num_nodes, 100u);
  EXPECT_EQ(s.num_edges, 400u);
  EXPECT_EQ(s.num_refs, 2u);
  EXPECT_EQ(s.num_reduction_arrays, 2u);
  EXPECT_EQ(s.num_node_read_arrays, 2u);
  for (std::uint64_t e = 0; e < 400; ++e) {
    EXPECT_EQ(k.ref(0, e), m.edges[e].a);
    EXPECT_EQ(k.ref(1, e), m.edges[e].b);
  }
  EXPECT_THROW(k.ref(2, 0), precondition_error);
  EXPECT_THROW(k.ref(0, 400), precondition_error);
}

TEST(EulerKernel, RequiresCoordinates) {
  mesh::Mesh m;
  m.num_nodes = 4;
  m.edges = {{0, 1}};
  EXPECT_THROW(EulerKernel k(m), precondition_error);
}

TEST(EulerKernel, VelocityResidualConserved) {
  // Each edge adds +vflux to one node and -vflux to the other, so the
  // summed velocity residual over all nodes is exactly zero every sweep.
  const EulerKernel kernel(mesh::make_geometric_mesh({120, 500, 2}));
  core::SequentialOptions opt;
  opt.sweeps = 1;
  const core::RunResult r = core::run_sequential_kernel(kernel, opt);
  const double total =
      std::accumulate(r.reduction[0].begin(), r.reduction[0].end(), 0.0);
  EXPECT_NEAR(total, 0.0, 1e-9);
}

TEST(EulerKernel, ConservationSurvivesParallelExecution) {
  const EulerKernel kernel(mesh::make_geometric_mesh({120, 500, 2}));
  core::RotationOptions opt;
  opt.num_procs = 6;
  opt.k = 2;
  opt.machine.max_events = 50'000'000;
  const core::RunResult r = core::run_rotation_engine(kernel, opt);
  const double total =
      std::accumulate(r.reduction[0].begin(), r.reduction[0].end(), 0.0);
  EXPECT_NEAR(total, 0.0, 1e-9);
}

TEST(EulerKernel, StateStaysBoundedOver100Sweeps) {
  // The flux has an advective term, so pressure variance need not decay
  // monotonically — but the relaxation must stay bounded over the
  // paper's 100 time steps (no blow-up).
  const EulerKernel kernel(mesh::make_geometric_mesh({200, 1200, 3}), 5e-3);
  core::SequentialOptions opt;
  opt.sweeps = 100;
  const core::RunResult r = core::run_sequential_kernel(kernel, opt);
  for (const double p : r.node_read[1]) {
    ASSERT_TRUE(std::isfinite(p));
    ASSERT_GT(p, 0.0);
    ASSERT_LT(p, 4.0);
  }
  for (const double v : r.node_read[0]) ASSERT_LT(std::abs(v), 4.0);
}

TEST(MoldynKernel, TotalForceIsZero) {
  // Newton's third law in the accumulation: pair forces are equal and
  // opposite, so each force component sums to zero over all molecules.
  const MoldynKernel kernel(mesh::make_moldyn_lattice({4, 2000, 0.04, 4}));
  core::SequentialOptions opt;
  opt.sweeps = 1;
  const core::RunResult r = core::run_sequential_kernel(kernel, opt);
  for (int a = 0; a < 3; ++a) {
    const double total = std::accumulate(
        r.reduction[static_cast<std::size_t>(a)].begin(),
        r.reduction[static_cast<std::size_t>(a)].end(), 0.0);
    EXPECT_NEAR(total, 0.0, 1e-8) << "axis " << a;
  }
}

TEST(MoldynKernel, TotalForceZeroSurvivesParallelExecution) {
  const MoldynKernel kernel(mesh::make_moldyn_lattice({4, 2000, 0.04, 4}));
  core::RotationOptions opt;
  opt.num_procs = 8;
  opt.k = 2;
  opt.machine.max_events = 50'000'000;
  const core::RunResult r = core::run_rotation_engine(kernel, opt);
  for (int a = 0; a < 3; ++a) {
    const double total = std::accumulate(
        r.reduction[static_cast<std::size_t>(a)].begin(),
        r.reduction[static_cast<std::size_t>(a)].end(), 0.0);
    EXPECT_NEAR(total, 0.0, 1e-8);
  }
}

TEST(MoldynKernel, ForcesBoundedByClamp) {
  // The softened/clamped magnitude keeps per-pair contributions finite
  // even for coincident molecules.
  mesh::Mesh m;
  m.num_nodes = 4;
  m.coords = {{0, 0, 0}, {0, 0, 0}, {1, 1, 1}, {5, 5, 5}};
  m.edges = {{0, 1}, {1, 2}, {2, 3}};
  const MoldynKernel kernel(m);
  core::SequentialOptions opt;
  const core::RunResult r = core::run_sequential_kernel(kernel, opt);
  for (const auto& axis : r.reduction)
    for (const double f : axis) {
      ASSERT_TRUE(std::isfinite(f));
      ASSERT_LE(std::abs(f), 64.0);
    }
}

TEST(MoldynKernel, PositionsStayFiniteOver100Sweeps) {
  const MoldynKernel kernel(mesh::make_moldyn_lattice({3, 600, 0.04, 6}));
  core::SequentialOptions opt;
  opt.sweeps = 100;  // the paper's time-step count
  const core::RunResult r = core::run_sequential_kernel(kernel, opt);
  for (const auto& axis : r.node_read)
    for (const double x : axis) ASSERT_TRUE(std::isfinite(x));
}

TEST(Fig1Kernel, IntegerValuesAreSmallIntegers) {
  const auto kernel = Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({50, 200, 7}));
  core::SequentialOptions opt;
  const core::RunResult r = core::run_sequential_kernel(kernel, opt);
  for (const double v : r.reduction[0]) {
    ASSERT_EQ(v, std::floor(v));  // exactly representable integers
    ASSERT_EQ(static_cast<long long>(v) % 2, 0);  // every term is 2*y
  }
}

TEST(Fig1Kernel, RejectsMismatchedY) {
  mesh::Mesh m;
  m.num_nodes = 4;
  m.edges = {{0, 1}, {2, 3}};
  EXPECT_THROW(Fig1Kernel(m, std::vector<double>{1.0}),
               precondition_error);
}

}  // namespace
}  // namespace earthred::kernels
