// Compute-backend selection and CPU feature detection (PR 8).
//
// The backend layer promises three things: (1) feature detection is
// internally consistent (a SIMD tier is only reported usable when the OS
// saves the register state it needs), (2) resolution is total for `auto`
// — it always lands on a supported tier, so auto-mode jobs can never be
// rejected for backend reasons — and (3) an explicit request for a tier
// the host lacks is refused at admission with a coded diagnostic
// ("E-BACKEND-UNSUPPORTED"), never a fault inside a worker.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>

#include "core/backend.hpp"
#include "kernels/euler.hpp"
#include "mesh/generators.hpp"
#include "service/job_scheduler.hpp"
#include "support/check.hpp"
#include "support/cpu_features.hpp"

namespace earthred {
namespace {

using core::BackendKind;

// Restores real CPU detection and a clean environment on scope exit so a
// failing assertion cannot poison later tests.
struct ScopedHostState {
  ~ScopedHostState() {
    support::set_cpu_features_for_test(nullptr);
    ::unsetenv("EARTHRED_FORCE_BACKEND");
  }
};

support::CpuFeatures no_simd() { return support::CpuFeatures{}; }

support::CpuFeatures avx2_only() {
  support::CpuFeatures f;
  f.osxsave = f.os_ymm = f.avx2 = true;
  return f;
}

TEST(CpuFeatures, DetectedFlagsAreInternallyConsistent) {
  const support::CpuFeatures& f = support::host_cpu_features();
  // A usable SIMD tier implies the OS enabled the register state.
  if (f.avx2) {
    EXPECT_TRUE(f.osxsave);
    EXPECT_TRUE(f.os_ymm);
  }
  if (f.avx512f) {
    EXPECT_TRUE(f.osxsave);
    EXPECT_TRUE(f.os_ymm);
    EXPECT_TRUE(f.os_zmm);
  }
  // ZMM state without YMM state is not a thing XCR0 can express sanely.
  if (f.os_zmm) EXPECT_TRUE(f.os_ymm);
  EXPECT_FALSE(support::to_string(f).empty());
}

TEST(CpuFeatures, TestOverrideControlsDetection) {
  ScopedHostState guard;
  const support::CpuFeatures forced = avx2_only();
  support::set_cpu_features_for_test(&forced);
  EXPECT_TRUE(support::host_cpu_features().avx2);
  EXPECT_FALSE(support::host_cpu_features().avx512f);
  EXPECT_EQ(support::to_string(support::host_cpu_features()), "avx2");

  support::set_cpu_features_for_test(nullptr);
  const support::CpuFeatures none = no_simd();
  support::set_cpu_features_for_test(&none);
  EXPECT_EQ(support::to_string(support::host_cpu_features()),
            "none (scalar only)");
}

TEST(CpuFeatures, HardwareThreadsIsPositive) {
  EXPECT_GE(support::hardware_threads(), 1u);
}

TEST(Backend, NameRoundTripsAndRejectsUnknownSpellings) {
  for (const BackendKind kind :
       {BackendKind::Auto, BackendKind::Scalar, BackendKind::Avx2,
        BackendKind::Avx512}) {
    EXPECT_EQ(core::parse_backend(core::to_string(kind)), kind);
  }
  EXPECT_EQ(core::parse_backend("avx512f"), BackendKind::Avx512);
  try {
    (void)core::parse_backend("sse9");
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("E-BACKEND-NAME"),
              std::string::npos);
  }
}

TEST(Backend, ScalarAndAutoAreAlwaysSupported) {
  ScopedHostState guard;
  const support::CpuFeatures none = no_simd();
  support::set_cpu_features_for_test(&none);
  EXPECT_TRUE(core::backend_supported(BackendKind::Auto));
  EXPECT_TRUE(core::backend_supported(BackendKind::Scalar));
  EXPECT_FALSE(core::backend_supported(BackendKind::Avx512));
  // Auto resolves — to scalar here — and never throws.
  EXPECT_EQ(core::resolve_backend(BackendKind::Auto), BackendKind::Scalar);
}

TEST(Backend, AutoPicksTheWidestSupportedTier) {
  ScopedHostState guard;
  const support::CpuFeatures f = avx2_only();
  support::set_cpu_features_for_test(&f);
#if EARTHRED_HAS_X86_BACKENDS
  EXPECT_EQ(core::resolve_backend(BackendKind::Auto), BackendKind::Avx2);
#else
  EXPECT_EQ(core::resolve_backend(BackendKind::Auto), BackendKind::Scalar);
#endif
}

TEST(Backend, ExplicitUnsupportedTierIsACodedError) {
  ScopedHostState guard;
  const support::CpuFeatures f = avx2_only();
  support::set_cpu_features_for_test(&f);
  try {
    (void)core::resolve_backend(BackendKind::Avx512);
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("E-BACKEND-UNSUPPORTED"),
              std::string::npos);
  }
}

TEST(Backend, ForceEnvAppliesOnlyToAutoRequests) {
  ScopedHostState guard;
  ::setenv("EARTHRED_FORCE_BACKEND", "scalar", 1);
  EXPECT_EQ(core::effective_backend(BackendKind::Auto), BackendKind::Scalar);
  // An explicit request always wins over the environment.
  EXPECT_EQ(core::effective_backend(BackendKind::Avx2), BackendKind::Avx2);
  EXPECT_EQ(core::resolve_backend(BackendKind::Auto), BackendKind::Scalar);

  // Forcing a tier the host lacks turns auto into the same coded error an
  // explicit request would get (the CI backend matrix relies on this to
  // exercise tiers, so a typo there must fail loudly, not fall back).
  const support::CpuFeatures none = no_simd();
  support::set_cpu_features_for_test(&none);
  ::setenv("EARTHRED_FORCE_BACKEND", "avx512", 1);
  EXPECT_THROW((void)core::resolve_backend(BackendKind::Auto), check_error);
  ::unsetenv("EARTHRED_FORCE_BACKEND");
}

TEST(Backend, CompiledBackendsAlwaysIncludeScalar) {
  const auto& tiers = core::compiled_backends();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), BackendKind::Scalar);
}

// ---- Admission behavior through the scheduler ------------------------

service::JobRequest small_job(BackendKind backend) {
  service::JobRequest req;
  req.name = "backend-admission";
  req.kernel = std::make_shared<kernels::EulerKernel>(
      mesh::make_geometric_mesh({96, 400, 5}));
  req.plan.num_procs = 2;
  req.plan.k = 2;
  // These tests count which SIMD tier served the job; pin the phased
  // strategy so the CI strategy-matrix env cannot route the job onto the
  // atomic scatter, whose per-edge path always reports Scalar.
  req.plan.strategy = core::StrategyKind::Phased;
  req.sweeps = 1;
  req.backend = backend;
  return req;
}

TEST(BackendAdmission, UnsupportedBackendIsRejectedAtAdmission) {
  ScopedHostState guard;
  const support::CpuFeatures f = avx2_only();
  support::set_cpu_features_for_test(&f);

  service::JobScheduler::Config cfg;
  cfg.workers = 1;
  service::JobScheduler sched(cfg);

  const service::JobHandle h = sched.submit(small_job(BackendKind::Avx512));
  const service::JobOutcome& out = h.wait();
  EXPECT_EQ(out.state, service::JobState::Rejected);
  EXPECT_NE(out.error.find("E-BACKEND-UNSUPPORTED"), std::string::npos);

  const service::ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.rejected_backend, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(BackendAdmission, AutoNeverRejectsEvenWithoutSimd) {
  ScopedHostState guard;
  const support::CpuFeatures none = no_simd();
  support::set_cpu_features_for_test(&none);

  service::JobScheduler::Config cfg;
  cfg.workers = 1;
  service::JobScheduler sched(cfg);

  const service::JobHandle h = sched.submit(small_job(BackendKind::Auto));
  const service::JobOutcome& out = h.wait();
  EXPECT_EQ(out.state, service::JobState::Done);
  EXPECT_EQ(out.backend, BackendKind::Scalar);

  const service::ServiceStats stats = sched.stats();
  EXPECT_EQ(stats.rejected_backend, 0u);
  EXPECT_EQ(stats.served_scalar, 1u);
}

TEST(BackendAdmission, SupportedExplicitBackendRunsAndIsCounted) {
  // Run with whatever the host actually supports so this passes on any
  // machine: the widest real tier is requested explicitly.
  const BackendKind widest = core::resolve_backend(BackendKind::Auto);

  service::JobScheduler::Config cfg;
  cfg.workers = 1;
  service::JobScheduler sched(cfg);
  const service::JobHandle h = sched.submit(small_job(widest));
  const service::JobOutcome& out = h.wait();
  ASSERT_EQ(out.state, service::JobState::Done);
  EXPECT_EQ(out.backend, widest);

  const service::ServiceStats stats = sched.stats();
  switch (widest) {
    case BackendKind::Avx512:
      EXPECT_EQ(stats.served_avx512, 1u);
      break;
    case BackendKind::Avx2:
      EXPECT_EQ(stats.served_avx2, 1u);
      break;
    default:
      EXPECT_EQ(stats.served_scalar, 1u);
      break;
  }
}

}  // namespace
}  // namespace earthred
