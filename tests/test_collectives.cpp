// Tests for the fiber-graph collectives (ring dot, axpy, all-gather).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/collectives.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::core {
namespace {

CollectiveOptions opts(std::uint32_t P) {
  CollectiveOptions o;
  o.num_procs = P;
  o.machine.max_events = 10'000'000;
  return o;
}

TEST(Collectives, DotMatchesHostAcrossProcCounts) {
  Xoshiro256 rng(7);
  std::vector<double> a(500), b(500);
  for (auto& v : a) v = rng.uniform(-2, 2);
  for (auto& v : b) v = rng.uniform(-2, 2);
  double host = 0;
  for (std::size_t i = 0; i < a.size(); ++i) host += a[i] * b[i];

  for (const std::uint32_t P : {1u, 2u, 3u, 8u}) {
    double got = 0;
    const auto cycles = simulate_dot(a, b, &got, opts(P));
    EXPECT_GT(cycles, 0u);
    EXPECT_NEAR(got, host, 1e-9 * (1.0 + std::abs(host))) << "P=" << P;
  }
}

TEST(Collectives, DotScalesWithProcessors) {
  std::vector<double> a(20000, 1.0), b(20000, 2.0);
  double out = 0;
  const auto t1 = simulate_dot(a, b, &out, opts(1));
  const auto t8 = simulate_dot(a, b, &out, opts(8));
  EXPECT_LT(t8, t1);  // local work dominates at this size
}

TEST(Collectives, DotRingCostGrowsWithProcsOnTinyVectors) {
  std::vector<double> a(64, 1.0), b(64, 1.0);
  double out = 0;
  const auto t2 = simulate_dot(a, b, &out, opts(2));
  const auto t16 = simulate_dot(a, b, &out, opts(16));
  EXPECT_GT(t16, t2);  // ring latency dominates when blocks are tiny
}

TEST(Collectives, AxpyComputesAndCharges) {
  std::vector<double> x(100), y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 1.0;
  }
  const auto cycles = simulate_axpy(2.0, x, y, opts(4));
  EXPECT_GT(cycles, 0u);
  for (std::size_t i = 0; i < 100; ++i)
    ASSERT_DOUBLE_EQ(y[i], 1.0 + 2.0 * static_cast<double>(i));
}

TEST(Collectives, AxpbyScalesY) {
  std::vector<double> x(10, 1.0), y(10, 10.0);
  simulate_axpy(1.0, x, y, opts(2), 0.5);  // y = x + 0.5 y
  for (const double v : y) ASSERT_DOUBLE_EQ(v, 6.0);
}

TEST(Collectives, AllGatherCostsRingSteps) {
  const auto t2 = simulate_allgather(8000, opts(2));
  const auto t8 = simulate_allgather(8000, opts(8));
  EXPECT_GT(t2, 0u);
  EXPECT_GT(t8, 0u);
  EXPECT_EQ(simulate_allgather(8000, opts(1)), 0u);
  // 8 procs move smaller blocks per step but take 7 pipelined steps; for
  // a fixed n the total stays within a small factor.
  EXPECT_LT(t8, 4 * t2);
}

TEST(Collectives, SizeMismatchRejected) {
  std::vector<double> a(5, 1.0), b(6, 1.0);
  EXPECT_THROW(simulate_dot(a, b, nullptr, opts(2)), precondition_error);
  std::vector<double> y(4, 0.0);
  EXPECT_THROW(simulate_axpy(1.0, a, y, opts(2)), precondition_error);
}

}  // namespace
}  // namespace earthred::core
