// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// systematic grids over machine shape, strategy parameters, and cache
// geometry, each asserting the module's invariants at every point.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/classic_engine.hpp"
#include "core/mvm_engine.hpp"
#include "core/native_engine.hpp"
#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "earth/cache.hpp"
#include "inspector/light_inspector.hpp"
#include "inspector/rotation.hpp"
#include "kernels/fig1.hpp"
#include "mesh/generators.hpp"
#include "sparse/nas_cg.hpp"
#include "support/prng.hpp"

namespace earthred {
namespace {

// ------------------------------------------------ rotation schedule grid

using ScheduleParam = std::tuple<std::uint32_t /*n*/, std::uint32_t /*P*/,
                                 std::uint32_t /*k*/>;

class RotationScheduleSweep
    : public ::testing::TestWithParam<ScheduleParam> {};

TEST_P(RotationScheduleSweep, OwnershipAlgebraInvariants) {
  const auto [n, P, k] = GetParam();
  const inspector::RotationSchedule s(n, P, k);
  const std::uint32_t kp = s.phases_per_sweep();
  ASSERT_EQ(kp, P * k);

  // Portions tile the element space.
  std::uint32_t covered = 0;
  for (std::uint32_t pid = 0; pid < kp; ++pid) {
    ASSERT_EQ(s.portion_begin(pid), covered);
    covered += s.portion_size(pid);
  }
  ASSERT_EQ(covered, n);

  for (std::uint32_t p = 0; p < P; ++p) {
    // owned_portion over a sweep visits kp distinct portions... one per
    // phase, and owning_phase inverts it.
    std::set<std::uint32_t> seen;
    for (std::uint32_t ph = 0; ph < kp; ++ph) {
      const std::uint32_t pid = s.owned_portion(p, ph);
      EXPECT_TRUE(seen.insert(pid).second);
      EXPECT_EQ(s.owning_phase(p, pid), ph);
      // Forwarding invariant: the next owner owns it k phases later.
      EXPECT_EQ(s.owning_phase(s.next_owner(p), pid), (ph + k) % kp);
    }
  }
  // Completion: last owning phase lies in the final k phases and the
  // final owner owns it then.
  for (std::uint32_t pid = 0; pid < kp; ++pid) {
    const std::uint32_t last = s.last_owning_phase(pid);
    EXPECT_GE(last, kp - k);
    EXPECT_EQ(s.owned_portion(s.final_owner(pid), last), pid);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RotationScheduleSweep,
    ::testing::Combine(::testing::Values(64u, 97u, 1000u),
                       ::testing::Values(1u, 2u, 3u, 8u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const ::testing::TestParamInfo<ScheduleParam>& param_info) {
      return "n" + std::to_string(std::get<0>(param_info.param)) + "_P" +
             std::to_string(std::get<1>(param_info.param)) + "_k" +
             std::to_string(std::get<2>(param_info.param));
    });

// ------------------------------------------------------ engine grid

using EngineParam =
    std::tuple<std::uint32_t /*P*/, std::uint32_t /*k*/,
               inspector::Distribution, bool /*dedup*/>;

class RotationEngineSweep : public ::testing::TestWithParam<EngineParam> {
 protected:
  static const kernels::Fig1Kernel& kernel() {
    static const kernels::Fig1Kernel k =
        kernels::Fig1Kernel::with_integer_values(
            mesh::make_geometric_mesh({120, 600, 33}));
    return k;
  }
  static const core::RunResult& sequential() {
    static const core::RunResult seq = [] {
      core::SequentialOptions sopt;
      sopt.sweeps = 3;
      sopt.machine.max_events = 50'000'000;
      return core::run_sequential_kernel(kernel(), sopt);
    }();
    return seq;
  }
};

TEST_P(RotationEngineSweep, ExactlyMatchesSequential) {
  const auto [P, k, dist, dedup] = GetParam();
  core::RotationOptions opt;
  opt.num_procs = P;
  opt.k = k;
  opt.distribution = dist;
  opt.inspector.dedup_buffers = dedup;
  opt.sweeps = 3;
  opt.machine.max_events = 50'000'000;
  const core::RunResult par = core::run_rotation_engine(kernel(), opt);
  const core::RunResult& seq = sequential();
  for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
    ASSERT_EQ(par.reduction[0][i], seq.reduction[0][i]) << "element " << i;
  // Conservation: total of the reduction equals 2*C*sum(Y) per sweep —
  // compare totals as a second, independent check.
  double total_par = 0, total_seq = 0;
  for (std::size_t i = 0; i < seq.reduction[0].size(); ++i) {
    total_par += par.reduction[0][i];
    total_seq += seq.reduction[0][i];
  }
  EXPECT_DOUBLE_EQ(total_par, total_seq);
}

TEST_P(RotationEngineSweep, NativeThreadsMatchSequential) {
  const auto [P, k, dist, dedup] = GetParam();
  core::NativeOptions opt;
  opt.num_procs = P;
  opt.k = k;
  opt.distribution = dist;
  opt.inspector.dedup_buffers = dedup;
  opt.sweeps = 3;
  const core::NativeResult par = core::run_native_engine(kernel(), opt);
  const core::RunResult& seq = sequential();
  for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
    ASSERT_EQ(par.reduction[0][i], seq.reduction[0][i]) << "element " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RotationEngineSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 7u, 8u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(inspector::Distribution::Block,
                                         inspector::Distribution::Cyclic),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<EngineParam>& param_info) {
      return "P" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param)) +
             (std::get<2>(param_info.param) == inspector::Distribution::Block
                  ? "_block"
                  : "_cyclic") +
             (std::get<3>(param_info.param) ? "_dedup" : "_perref");
    });

// ---------------------------------------------------------- mvm grid

using MvmParam = std::tuple<std::uint32_t /*P*/, std::uint32_t /*k*/,
                            std::uint32_t /*sweeps*/>;

class MvmEngineSweep : public ::testing::TestWithParam<MvmParam> {};

TEST_P(MvmEngineSweep, MatchesCsrReference) {
  const auto [P, k, sweeps] = GetParam();
  static const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix({256, 4, 0.1, 10.0, 314159265.0});
  static const std::vector<double> x = [] {
    Xoshiro256 rng(5);
    std::vector<double> v(256);
    for (auto& e : v) e = rng.uniform(-1, 1);
    return v;
  }();
  static const std::vector<double> want = [] {
    std::vector<double> y(256);
    A.spmv(x, y);
    return y;
  }();

  core::MvmOptions opt;
  opt.num_procs = P;
  opt.k = k;
  opt.sweeps = sweeps;
  opt.machine.max_events = 50'000'000;
  const core::RunResult r = core::run_mvm_engine(A, x, opt);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_NEAR(r.reduction[0][i], want[i],
                1e-9 * std::max(1.0, std::abs(want[i])));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MvmEngineSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 3u)),
    [](const ::testing::TestParamInfo<MvmParam>& param_info) {
      return "P" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param)) + "_s" +
             std::to_string(std::get<2>(param_info.param));
    });

// ------------------------------------------------------ cache geometry

using CacheParam = std::tuple<std::uint32_t /*size*/, std::uint32_t /*line*/,
                              std::uint32_t /*ways*/>;

class CacheGeometrySweep : public ::testing::TestWithParam<CacheParam> {};

TEST_P(CacheGeometrySweep, HitRateBoundsAndDeterminism) {
  const auto [size, line, ways] = GetParam();
  earth::CacheConfig cc;
  cc.size_bytes = size;
  cc.line_bytes = line;
  cc.ways = ways;
  earth::CacheModel a(cc), b(cc);

  Xoshiro256 rng(99);
  const std::uint32_t working_set = size / 2;  // fits: expect high hits
  std::uint64_t agree = 0;
  constexpr int kAccesses = 20000;
  for (int i = 0; i < kAccesses; ++i) {
    const std::uint64_t addr = rng.below(working_set);
    const bool ha = a.access(addr);
    const bool hb = b.access(addr);
    agree += (ha == hb);
  }
  EXPECT_EQ(agree, static_cast<std::uint64_t>(kAccesses));  // deterministic
  EXPECT_EQ(a.hits() + a.misses(), static_cast<std::uint64_t>(kAccesses));
  // Working set fits in half the cache: compulsory misses only-ish.
  EXPECT_LT(static_cast<double>(a.misses()),
            0.25 * static_cast<double>(kAccesses));
  // Cold misses at least one per touched line.
  EXPECT_GE(a.misses(), static_cast<std::uint64_t>(1));
}

TEST_P(CacheGeometrySweep, ThrashingWorkingSetMisses) {
  const auto [size, line, ways] = GetParam();
  earth::CacheConfig cc;
  cc.size_bytes = size;
  cc.line_bytes = line;
  cc.ways = ways;
  earth::CacheModel c(cc);
  // Cyclic sweep over 8x the cache: LRU guarantees a miss every access
  // after warmup.
  const std::uint64_t span = 8ULL * size;
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t addr = 0; addr < span; addr += line) c.access(addr);
  const double miss_rate =
      static_cast<double>(c.misses()) /
      static_cast<double>(c.hits() + c.misses());
  EXPECT_GT(miss_rate, 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(CacheParam{4096, 32, 1}, CacheParam{4096, 32, 4},
                      CacheParam{16384, 32, 4}, CacheParam{16384, 64, 2},
                      CacheParam{65536, 128, 8}, CacheParam{1024, 16, 2}),
    [](const ::testing::TestParamInfo<CacheParam>& param_info) {
      return "s" + std::to_string(std::get<0>(param_info.param)) + "_l" +
             std::to_string(std::get<1>(param_info.param)) + "_w" +
             std::to_string(std::get<2>(param_info.param));
    });

// ----------------------------------------------- inspector sweep

using InspectorParam = std::tuple<std::uint32_t /*P*/, std::uint32_t /*k*/,
                                  std::uint32_t /*refs*/>;

class LightInspectorSweep
    : public ::testing::TestWithParam<InspectorParam> {};

TEST_P(LightInspectorSweep, EveryIterationPlacedOnceEveryDeferralFolded) {
  const auto [P, k, nrefs] = GetParam();
  const std::uint32_t n = 40 * P * k;
  const inspector::RotationSchedule sched(n, P, k);
  Xoshiro256 rng(1234 + P * 100 + k * 10 + nrefs);
  inspector::IterationRefs iters;
  iters.refs.resize(nrefs);
  const std::uint32_t niter = 300;
  for (std::uint32_t i = 0; i < niter; ++i) {
    iters.global_iter.push_back(i);
    for (auto& row : iters.refs)
      row.push_back(static_cast<std::uint32_t>(rng.below(n)));
  }
  for (std::uint32_t proc = 0; proc < P; ++proc) {
    const inspector::InspectorResult res =
        inspector::run_light_inspector(sched, proc, iters);
    std::uint64_t placed = 0, redirects = 0, folds = 0;
    for (const auto& phase : res.phases) {
      placed += phase.iter_global.size();
      folds += phase.copy_dst.size();
      for (const auto& row : phase.indir)
        for (const std::uint32_t v : row) redirects += (v >= n);
    }
    EXPECT_EQ(placed, niter);
    EXPECT_EQ(redirects, folds);  // one fold per deferred reference
    EXPECT_EQ(res.num_buffer_slots, folds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LightInspectorSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 6u),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const ::testing::TestParamInfo<InspectorParam>& param_info) {
      return "P" + std::to_string(std::get<0>(param_info.param)) + "_k" +
             std::to_string(std::get<1>(param_info.param)) + "_r" +
             std::to_string(std::get<2>(param_info.param));
    });

}  // namespace
}  // namespace earthred
