// Tests for the classic (CHAOS-style) inspector/executor baseline.
#include <gtest/gtest.h>

#include <vector>

#include "inspector/classic_inspector.hpp"
#include "inspector/distribution.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::inspector {
namespace {

std::vector<IterationRefs> random_input(std::uint32_t num_elements,
                                        std::uint32_t procs,
                                        std::uint32_t iters_per_proc,
                                        std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<IterationRefs> per_proc(procs);
  std::uint32_t g = 0;
  for (auto& ir : per_proc) {
    ir.refs.resize(2);
    for (std::uint32_t i = 0; i < iters_per_proc; ++i) {
      ir.global_iter.push_back(g++);
      ir.refs[0].push_back(static_cast<std::uint32_t>(rng.below(num_elements)));
      ir.refs[1].push_back(static_cast<std::uint32_t>(rng.below(num_elements)));
    }
  }
  return per_proc;
}

TEST(ClassicOwner, BlockPartition) {
  // 10 elements over 3 procs: sizes 4,3,3.
  EXPECT_EQ(classic_owner(10, 3, 0), 0u);
  EXPECT_EQ(classic_owner(10, 3, 3), 0u);
  EXPECT_EQ(classic_owner(10, 3, 4), 1u);
  EXPECT_EQ(classic_owner(10, 3, 6), 1u);
  EXPECT_EQ(classic_owner(10, 3, 7), 2u);
  EXPECT_EQ(classic_owner(10, 3, 9), 2u);
  EXPECT_THROW(classic_owner(10, 3, 10), precondition_error);
}

TEST(Classic, OwnedRangesTileTheArray) {
  const auto input = random_input(100, 4, 20, 1);
  const ClassicSchedule s = build_classic_schedule(100, 4, input);
  std::uint32_t covered = 0;
  for (const auto& p : s.proc) {
    EXPECT_EQ(p.owned_begin, covered);
    covered = p.owned_end;
  }
  EXPECT_EQ(covered, 100u);
}

TEST(Classic, RedirectionsAreConsistent) {
  const std::uint32_t n = 64, procs = 4;
  const auto input = random_input(n, procs, 50, 2);
  const ClassicSchedule s = build_classic_schedule(n, procs, input);
  for (std::uint32_t p = 0; p < procs; ++p) {
    const auto& ps = s.proc[p];
    const auto& in = input[p];
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t i = 0; i < in.num_iterations(); ++i) {
        const std::uint32_t elem = in.refs[r][i];
        const std::uint32_t redirected = ps.indir[r][i];
        if (elem >= ps.owned_begin && elem < ps.owned_end) {
          EXPECT_EQ(redirected, elem - ps.owned_begin);
        } else {
          EXPECT_GE(redirected, ps.owned_size());
          EXPECT_LT(redirected, ps.local_array_size());
        }
      }
    }
  }
}

TEST(Classic, GhostsDedupAcrossReferences) {
  // Two iterations referencing the same off-proc element share one ghost.
  std::vector<IterationRefs> input(2);
  input[0].global_iter = {0, 1};
  input[0].refs = {{0, 9}, {9, 1}};  // element 9 off-proc for P0, used 3x
  input[1].global_iter = {2};
  input[1].refs = {{5}, {6}};
  const ClassicSchedule s = build_classic_schedule(10, 2, input);
  EXPECT_EQ(s.proc[0].num_ghosts, 1u);
  EXPECT_EQ(s.proc[0].total_sent(), 1u);
  EXPECT_EQ(s.proc[1].num_ghosts, 0u);
}

TEST(Classic, SendSchedulesTargetTheOwner) {
  const std::uint32_t n = 40, procs = 4;
  const auto input = random_input(n, procs, 30, 3);
  const ClassicSchedule s = build_classic_schedule(n, procs, input);
  for (std::uint32_t p = 0; p < procs; ++p) {
    const auto& ps = s.proc[p];
    for (std::uint32_t dest = 0; dest < procs; ++dest) {
      ASSERT_EQ(ps.send_ghost_slot[dest].size(),
                ps.send_dest_offset[dest].size());
      if (dest == p) {
        EXPECT_TRUE(ps.send_ghost_slot[dest].empty());
      }
      for (std::uint32_t off : ps.send_dest_offset[dest])
        EXPECT_LT(off, s.proc[dest].owned_size());
      for (std::uint32_t slot : ps.send_ghost_slot[dest])
        EXPECT_LT(slot, ps.num_ghosts);
    }
  }
}

TEST(Classic, ExecutorSemanticsMatchReference) {
  // Replay the classic executor by hand: accumulate locally, ship ghosts,
  // owners fold — final owned blocks must equal the sequential reduction.
  const std::uint32_t n = 30, procs = 3;
  const auto input = random_input(n, procs, 40, 4);
  const ClassicSchedule s = build_classic_schedule(n, procs, input);

  Xoshiro256 rng(5);
  std::vector<std::vector<double>> vals(procs);
  std::vector<double> reference(n, 0.0);
  for (std::uint32_t p = 0; p < procs; ++p) {
    for (std::size_t i = 0; i < input[p].num_iterations(); ++i) {
      const double v = rng.uniform(-1, 1);
      vals[p].push_back(v);
      reference[input[p].refs[0][i]] += v;
      reference[input[p].refs[1][i]] += 2 * v;
    }
  }

  std::vector<std::vector<double>> local(procs);
  for (std::uint32_t p = 0; p < procs; ++p) {
    local[p].assign(s.proc[p].local_array_size(), 0.0);
    for (std::size_t i = 0; i < input[p].num_iterations(); ++i) {
      local[p][s.proc[p].indir[0][i]] += vals[p][i];
      local[p][s.proc[p].indir[1][i]] += 2 * vals[p][i];
    }
  }
  for (std::uint32_t p = 0; p < procs; ++p) {
    for (std::uint32_t dest = 0; dest < procs; ++dest) {
      const auto& slots = s.proc[p].send_ghost_slot[dest];
      const auto& offs = s.proc[p].send_dest_offset[dest];
      for (std::size_t j = 0; j < slots.size(); ++j)
        local[dest][offs[j]] += local[p][s.proc[p].owned_size() + slots[j]];
    }
  }
  for (std::uint32_t p = 0; p < procs; ++p)
    for (std::uint32_t e = s.proc[p].owned_begin; e < s.proc[p].owned_end;
         ++e)
      EXPECT_NEAR(local[p][e - s.proc[p].owned_begin], reference[e], 1e-12);
}

TEST(Classic, CommunicationDependsOnLocality) {
  // The motivating contrast to the rotation scheme: with spatially local
  // references the classic scheme ships few values, with scattered
  // references it ships many.
  const std::uint32_t n = 1000, procs = 4;
  std::vector<IterationRefs> local_refs(procs), scattered(procs);
  Xoshiro256 rng(6);
  std::uint32_t g = 0;
  for (std::uint32_t p = 0; p < procs; ++p) {
    local_refs[p].refs.resize(2);
    scattered[p].refs.resize(2);
    const std::uint32_t base = p * (n / procs);
    for (std::uint32_t i = 0; i < 200; ++i) {
      local_refs[p].global_iter.push_back(g);
      scattered[p].global_iter.push_back(g++);
      // Local: both endpoints within the proc's own block.
      local_refs[p].refs[0].push_back(
          base + static_cast<std::uint32_t>(rng.below(n / procs)));
      local_refs[p].refs[1].push_back(
          base + static_cast<std::uint32_t>(rng.below(n / procs)));
      scattered[p].refs[0].push_back(
          static_cast<std::uint32_t>(rng.below(n)));
      scattered[p].refs[1].push_back(
          static_cast<std::uint32_t>(rng.below(n)));
    }
  }
  const auto s_local = build_classic_schedule(n, procs, local_refs);
  const auto s_scattered = build_classic_schedule(n, procs, scattered);
  EXPECT_EQ(s_local.total_values_sent(), 0u);
  EXPECT_GT(s_scattered.total_values_sent(), 500u);
  EXPECT_GT(s_scattered.active_channels(), 6u);
}

TEST(Classic, RejectsBadInput) {
  std::vector<IterationRefs> input(2);
  input[0].global_iter = {0};
  input[0].refs = {{10}, {0}};  // out of range
  input[1].refs.resize(2);
  EXPECT_THROW(build_classic_schedule(10, 2, input), precondition_error);
  EXPECT_THROW(build_classic_schedule(10, 3, input), precondition_error);
}

}  // namespace
}  // namespace earthred::inspector
