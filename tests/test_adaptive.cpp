// Tests for the adaptive-moldyn driver (the paper's future-work extension).
#include <gtest/gtest.h>

#include "kernels/adaptive_moldyn.hpp"
#include "support/check.hpp"

namespace earthred::kernels {
namespace {

AdaptiveOptions tiny_adaptive() {
  AdaptiveOptions a;
  a.dataset = mesh::MoldynParams{4, 1200, 0.04, 5};
  a.epochs = 3;
  a.sweeps_per_epoch = 2;
  a.drift_sigma = 0.05;
  return a;
}

core::RotationOptions rotation_opts(std::uint32_t procs) {
  core::RotationOptions r;
  r.num_procs = procs;
  r.k = 2;
  r.machine.max_events = 50'000'000;
  return r;
}

TEST(Adaptive, IncrementalChargesLessPreprocessing) {
  const AdaptiveOptions a = tiny_adaptive();
  const auto full = run_adaptive_moldyn_rotation(a, rotation_opts(4), false);
  const auto incr = run_adaptive_moldyn_rotation(a, rotation_opts(4), true);
  EXPECT_LT(incr.inspector_cycles, full.inspector_cycles);
  EXPECT_GT(incr.inspector_cycles, 0u);
  // Same drift trajectory: both observe the same changed count.
  EXPECT_EQ(incr.changed_interactions, full.changed_interactions);
  EXPECT_GT(incr.changed_interactions, 0u);
  // Changes are a small fraction of the interaction space (small drift).
  EXPECT_LT(incr.changed_interactions, 3u * 1200u);
}

TEST(Adaptive, MoreEpochsMoreWork) {
  AdaptiveOptions a = tiny_adaptive();
  const auto short_run =
      run_adaptive_moldyn_rotation(a, rotation_opts(2), false);
  a.epochs = 6;
  const auto long_run =
      run_adaptive_moldyn_rotation(a, rotation_opts(2), false);
  EXPECT_GT(long_run.total_cycles, short_run.total_cycles);
  EXPECT_GT(long_run.inspector_cycles, short_run.inspector_cycles);
}

TEST(Adaptive, ClassicPaysInspectorEveryEpoch) {
  const AdaptiveOptions a = tiny_adaptive();
  core::ClassicOptions c;
  c.num_procs = 4;
  c.machine.max_events = 50'000'000;
  const auto classic = run_adaptive_moldyn_classic(a, c);
  EXPECT_GT(classic.inspector_cycles, 0u);
  // Classic repeats its full analysis each epoch; with equal per-ref
  // constants it must charge at least as much preprocessing as the full
  // (non-incremental) light rebuild, which is also full-size but cheaper
  // per reference.
  const auto light = run_adaptive_moldyn_rotation(a, rotation_opts(4), false);
  EXPECT_GT(classic.inspector_cycles, light.inspector_cycles);
}

TEST(Adaptive, SingleEpochNeedsNoRebuild) {
  AdaptiveOptions a = tiny_adaptive();
  a.epochs = 1;
  const auto r = run_adaptive_moldyn_rotation(a, rotation_opts(2), true);
  EXPECT_EQ(r.changed_interactions, 0u);
}

TEST(Adaptive, RejectsZeroEpochs) {
  AdaptiveOptions a = tiny_adaptive();
  a.epochs = 0;
  EXPECT_THROW(run_adaptive_moldyn_rotation(a, rotation_opts(2), false),
               precondition_error);
}


TEST(Adaptive, EulerVariantWorksAndIncrementalIsCheaper) {
  AdaptiveEulerOptions a;
  a.dataset = mesh::GeomMeshParams{300, 1500, 11};
  a.epochs = 3;
  a.sweeps_per_epoch = 2;
  a.drift_sigma = 0.01;
  const auto full = run_adaptive_euler_rotation(a, rotation_opts(4), false);
  const auto incr = run_adaptive_euler_rotation(a, rotation_opts(4), true);
  EXPECT_GT(full.total_cycles, 0u);
  EXPECT_LT(incr.inspector_cycles, full.inspector_cycles);
  EXPECT_GT(incr.changed_interactions, 0u);

  core::ClassicOptions c;
  c.num_procs = 4;
  c.machine.max_events = 50'000'000;
  const auto classic = run_adaptive_euler_classic(a, c);
  EXPECT_GT(classic.inspector_cycles, incr.inspector_cycles);
}

}  // namespace
}  // namespace earthred::kernels
