// Cross-executor equivalence for the batched hot path (PR 3).
//
// The native engine runs each phase either through per-edge virtual
// compute_edge calls (the original executor, kept as fallback) or through
// one batched compute_phase call streaming the flattened indirection
// block. The batch loops perform the same floating-point operations in
// the same order, so the two executors must agree *bit for bit* — these
// tests assert exact equality, not tolerances, across every kernel,
// distribution, and k, and likewise that parallel plan construction
// produces a plan indistinguishable from the serial build.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.hpp"
#include "core/native_engine.hpp"
#include "inspector/light_inspector.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "kernels/spmv_t.hpp"
#include "mesh/generators.hpp"
#include "sparse/nas_cg.hpp"
#include "support/prng.hpp"

namespace earthred::core {
namespace {

struct NamedKernel {
  std::string name;
  std::unique_ptr<const PhasedKernel> kernel;
};

std::vector<NamedKernel> make_kernels() {
  std::vector<NamedKernel> ks;
  ks.push_back({"fig1", std::make_unique<kernels::Fig1Kernel>(
                            kernels::Fig1Kernel::with_integer_values(
                                mesh::make_geometric_mesh({96, 500, 21})))});
  ks.push_back({"euler", std::make_unique<kernels::EulerKernel>(
                             mesh::make_geometric_mesh({160, 700, 8}))});
  ks.push_back({"moldyn", std::make_unique<kernels::MoldynKernel>(
                              mesh::make_moldyn_lattice({3, 300, 0.03, 2}))});
  const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix({120, 3, 0.1, 10.0, 314159265.0});
  Xoshiro256 rng(7);
  std::vector<double> x(A.nrows());
  for (auto& v : x) v = rng.uniform(-1, 1);
  ks.push_back(
      {"spmv_t", std::make_unique<kernels::SpmvTKernel>(A, std::move(x))});
  return ks;
}

void expect_results_identical(const NativeResult& a, const NativeResult& b,
                              const std::string& what) {
  ASSERT_EQ(a.reduction.size(), b.reduction.size()) << what;
  for (std::size_t arr = 0; arr < a.reduction.size(); ++arr)
    for (std::size_t i = 0; i < a.reduction[arr].size(); ++i)
      ASSERT_EQ(a.reduction[arr][i], b.reduction[arr][i])
          << what << " reduction[" << arr << "][" << i << "]";
  ASSERT_EQ(a.node_read.size(), b.node_read.size()) << what;
  for (std::size_t arr = 0; arr < a.node_read.size(); ++arr)
    for (std::size_t i = 0; i < a.node_read[arr].size(); ++i)
      ASSERT_EQ(a.node_read[arr][i], b.node_read[arr][i])
          << what << " node_read[" << arr << "][" << i << "]";
}

TEST(BatchEquivalence, BitIdenticalAcrossKernelsDistributionsAndK) {
  const std::vector<NamedKernel> kernels = make_kernels();
  for (const NamedKernel& nk : kernels) {
    for (const auto dist : {inspector::Distribution::Block,
                            inspector::Distribution::Cyclic,
                            inspector::Distribution::BlockCyclic}) {
      for (const std::uint32_t k : {1u, 2u, 4u}) {
        PlanOptions popt;
        popt.num_procs = 4;
        popt.k = k;
        popt.distribution = dist;
        // This is a bit-identity gate for the *phased* executor; pin the
        // strategy so the CI strategy-matrix env cannot reroute it onto
        // a lowering with a different summation order.
        popt.strategy = StrategyKind::Phased;
        const ExecutionPlan plan = build_execution_plan(*nk.kernel, popt);

        SweepOptions sopt;
        sopt.sweeps = 3;  // multi-sweep: covers the broadcast path too
        sopt.batch = false;
        const NativeResult edge = run_native_plan(*nk.kernel, plan, sopt);
        sopt.batch = true;
        const NativeResult batch = run_native_plan(*nk.kernel, plan, sopt);

        expect_results_identical(
            edge, batch,
            nk.name + " dist=" + std::to_string(static_cast<int>(dist)) +
                " k=" + std::to_string(k));
      }
    }
  }
}

TEST(BatchEquivalence, AllBackendsBitIdenticalToPerEdgeReference) {
  // The acceptance bar for the compute-backend layer: every tier the
  // host can run (scalar always; AVX2/AVX-512 when supported) must
  // reproduce the per-edge reference bit for bit across every kernel,
  // distribution, and k. The SIMD tiers vectorize gathers and arithmetic
  // only — scatter accumulation stays scalar and in order — so exact
  // equality is the contract, not a tolerance.
  std::vector<BackendKind> tiers = {BackendKind::Scalar};
  if (backend_supported(BackendKind::Avx2))
    tiers.push_back(BackendKind::Avx2);
  if (backend_supported(BackendKind::Avx512))
    tiers.push_back(BackendKind::Avx512);

  const std::vector<NamedKernel> kernels = make_kernels();
  for (const NamedKernel& nk : kernels) {
    for (const auto dist : {inspector::Distribution::Block,
                            inspector::Distribution::Cyclic,
                            inspector::Distribution::BlockCyclic}) {
      for (const std::uint32_t k : {1u, 2u, 4u}) {
        PlanOptions popt;
        popt.num_procs = 4;
        popt.k = k;
        popt.distribution = dist;
        popt.strategy = StrategyKind::Phased;  // bit-identity gate: pin
        const ExecutionPlan plan = build_execution_plan(*nk.kernel, popt);

        SweepOptions sopt;
        sopt.sweeps = 3;
        sopt.batch = false;
        const NativeResult edge = run_native_plan(*nk.kernel, plan, sopt);

        sopt.batch = true;
        for (const BackendKind tier : tiers) {
          sopt.backend = tier;
          const NativeResult got = run_native_plan(*nk.kernel, plan, sopt);
          EXPECT_EQ(got.backend, tier);
          expect_results_identical(
              edge, got,
              nk.name + " backend=" + std::string(to_string(tier)) +
                  " dist=" + std::to_string(static_cast<int>(dist)) +
                  " k=" + std::to_string(k));
        }
      }
    }
  }
}

TEST(BatchEquivalence, AffinityKnobsDoNotChangeResults) {
  // Pinning and first-touch move page placement and thread scheduling,
  // never arithmetic: results stay bit-identical with both knobs on.
  const kernels::EulerKernel kernel(mesh::make_geometric_mesh({160, 700, 8}));
  PlanOptions popt;
  popt.num_procs = 4;
  popt.k = 2;
  popt.strategy = StrategyKind::Phased;  // bit-identity gate: pin
  const ExecutionPlan plan = build_execution_plan(kernel, popt);

  SweepOptions sopt;
  sopt.sweeps = 3;
  const NativeResult plain = run_native_plan(kernel, plan, sopt);
  sopt.affinity.pin_threads = true;
  sopt.affinity.first_touch = true;
  const NativeResult pinned = run_native_plan(kernel, plan, sopt);
  expect_results_identical(plain, pinned, "affinity on vs off");

  sopt.batch = false;  // and the per-edge executor under first-touch
  const NativeResult pinned_edge = run_native_plan(kernel, plan, sopt);
  expect_results_identical(plain, pinned_edge, "affinity + per-edge");
}

void expect_plans_identical(const ExecutionPlan& a, const ExecutionPlan& b) {
  ASSERT_EQ(a.insp.size(), b.insp.size());
  for (std::size_t p = 0; p < a.insp.size(); ++p) {
    const inspector::InspectorResult& ia = a.insp[p];
    const inspector::InspectorResult& ib = b.insp[p];
    EXPECT_EQ(ia.num_buffer_slots, ib.num_buffer_slots) << "proc " << p;
    EXPECT_EQ(ia.local_array_size, ib.local_array_size) << "proc " << p;
    EXPECT_EQ(ia.assigned_phase, ib.assigned_phase) << "proc " << p;
    EXPECT_EQ(ia.slot_elem, ib.slot_elem) << "proc " << p;
    EXPECT_EQ(ia.free_slots, ib.free_slots) << "proc " << p;
    ASSERT_EQ(ia.phases.size(), ib.phases.size()) << "proc " << p;
    for (std::size_t ph = 0; ph < ia.phases.size(); ++ph) {
      const inspector::PhaseSchedule& pa = ia.phases[ph];
      const inspector::PhaseSchedule& pb = ib.phases[ph];
      EXPECT_EQ(pa.iter_global, pb.iter_global) << p << "/" << ph;
      EXPECT_EQ(pa.iter_local, pb.iter_local) << p << "/" << ph;
      EXPECT_EQ(pa.indir, pb.indir) << p << "/" << ph;
      EXPECT_EQ(pa.indir_flat, pb.indir_flat) << p << "/" << ph;
      EXPECT_EQ(pa.copy_dst, pb.copy_dst) << p << "/" << ph;
      EXPECT_EQ(pa.copy_src, pb.copy_src) << p << "/" << ph;
    }
  }
}

TEST(BatchEquivalence, ParallelPlanBuildMatchesSerialExactly) {
  // build_threads must never leak into the plan: each processor's
  // inspector run is independent, so the task-pool build is byte-for-byte
  // the serial build (this is what justifies keeping build_threads out of
  // the PlanCache key).
  const kernels::EulerKernel kernel(mesh::make_geometric_mesh({200, 900, 3}));
  for (const std::uint32_t P : {1u, 3u, 8u}) {
    PlanOptions popt;
    popt.num_procs = P;
    popt.k = 2;
    popt.build_threads = 1;
    const ExecutionPlan serial = build_execution_plan(kernel, popt);
    for (const std::uint32_t threads : {0u, 2u, 4u, 16u}) {
      popt.build_threads = threads;
      const ExecutionPlan parallel = build_execution_plan(kernel, popt);
      expect_plans_identical(serial, parallel);
    }
  }
}

TEST(BatchEquivalence, ByteSizeCountsPhaseData) {
  // byte_size drives PlanCache eviction, so it must track everything the
  // plan owns: a mesh with more edges (more phase iterations, more
  // flattened indirection) must report a strictly larger footprint, and
  // the footprint must at least cover the flattened blocks it carries.
  const kernels::EulerKernel small_k(mesh::make_geometric_mesh({96, 400, 5}));
  const kernels::EulerKernel big_k(mesh::make_geometric_mesh({96, 1600, 5}));
  PlanOptions popt;
  popt.num_procs = 4;
  popt.k = 2;
  const ExecutionPlan small_plan = build_execution_plan(small_k, popt);
  const ExecutionPlan big_plan = build_execution_plan(big_k, popt);
  EXPECT_GT(big_plan.byte_size(), small_plan.byte_size());

  std::uint64_t flat_bytes = 0;
  for (const inspector::InspectorResult& insp : small_plan.insp)
    for (const inspector::PhaseSchedule& ph : insp.phases)
      flat_bytes += ph.indir_flat.size() * sizeof(std::uint32_t);
  EXPECT_GT(flat_bytes, 0u);
  EXPECT_GE(small_plan.byte_size(), flat_bytes);
}

TEST(BatchEquivalence, StrategySweepKeepsExecutorContracts) {
  // The strategy sweep of the original equivalence gate: for every
  // deterministic strategy (atomic is excluded from bit-identity gates by
  // contract), the batched executor must reproduce that strategy's
  // per-edge run bit for bit, and report the strategy it ran.
  const std::vector<NamedKernel> kernels = make_kernels();
  for (const NamedKernel& nk : kernels) {
    for (const auto dist : {inspector::Distribution::Block,
                            inspector::Distribution::Cyclic,
                            inspector::Distribution::BlockCyclic}) {
      for (const std::uint32_t k : {1u, 2u, 4u}) {
        for (const StrategyKind s :
             {StrategyKind::Phased, StrategyKind::Privatized}) {
          PlanOptions popt;
          popt.num_procs = 4;
          popt.k = k;
          popt.distribution = dist;
          popt.strategy = s;
          const ExecutionPlan plan = build_execution_plan(*nk.kernel, popt);

          SweepOptions sopt;
          sopt.sweeps = 3;
          sopt.batch = false;
          const NativeResult edge = run_native_plan(*nk.kernel, plan, sopt);
          EXPECT_EQ(edge.strategy, s);
          sopt.batch = true;
          const NativeResult batch = run_native_plan(*nk.kernel, plan, sopt);
          EXPECT_EQ(batch.strategy, s);

          expect_results_identical(
              edge, batch,
              nk.name + " strategy=" + std::string(to_string(s)) +
                  " dist=" + std::to_string(static_cast<int>(dist)) +
                  " k=" + std::to_string(k));
        }
      }
    }
  }
}

TEST(BatchEquivalence, LayoutPassIsBitIdenticalToLayoutNone) {
  // The layout pass's acceptance bar: RCM renumbering + target-stable
  // edge reorder + cache tiles form a pure plan isomorphism — the same
  // floating-point operations at relabeled addresses, per-target
  // accumulation order preserved by the stable sort, results un-permuted
  // at read-out. Every layout plan must therefore reproduce the
  // layout=none *per-edge reference* bit for bit, through both
  // executors, across kernels x distributions x k.
  const std::vector<NamedKernel> kernels = make_kernels();
  for (const NamedKernel& nk : kernels) {
    for (const auto dist : {inspector::Distribution::Block,
                            inspector::Distribution::Cyclic,
                            inspector::Distribution::BlockCyclic}) {
      for (const std::uint32_t k : {1u, 2u}) {
        PlanOptions popt;
        popt.num_procs = 4;
        popt.k = k;
        popt.distribution = dist;
        popt.strategy = StrategyKind::Phased;  // bit-identity gate: pin
        const ExecutionPlan none = build_execution_plan(*nk.kernel, popt);

        SweepOptions sopt;
        sopt.sweeps = 3;
        sopt.batch = false;
        const NativeResult ref = run_native_plan(*nk.kernel, none, sopt);

        for (const LayoutKind layout : {LayoutKind::Rcm, LayoutKind::Auto}) {
          popt.layout = layout;
          const ExecutionPlan plan = build_execution_plan(*nk.kernel, popt);
          // All four built-in kernels can renumber, so both rcm and auto
          // must actually apply the pass (and size its tiles).
          EXPECT_EQ(plan.applied_layout, LayoutKind::Rcm);
          EXPECT_GT(plan.tile_iters, 0u);

          sopt.batch = false;
          const NativeResult edge = run_native_plan(*nk.kernel, plan, sopt);
          sopt.batch = true;
          const NativeResult batch = run_native_plan(*nk.kernel, plan, sopt);

          const std::string what =
              nk.name + " layout=" + std::string(to_string(layout)) +
              " dist=" + std::to_string(static_cast<int>(dist)) +
              " k=" + std::to_string(k);
          expect_results_identical(ref, edge, what + " (per-edge)");
          expect_results_identical(ref, batch, what + " (batched)");
        }
      }
    }
  }
}

TEST(BatchEquivalence, InspectorFlattensIndirConsistently) {
  // indir_flat is the batch executor's input: after both the full run and
  // an incremental update it must be the exact ref-major flattening of
  // the indir rows.
  using namespace inspector;
  const RotationSchedule sched(64, 4, 2);
  Xoshiro256 rng(11);
  IterationRefs iters;
  iters.refs.resize(2);
  for (std::uint32_t i = 0; i < 200; ++i) {
    iters.global_iter.push_back(i);
    iters.refs[0].push_back(static_cast<std::uint32_t>(rng.below(64)));
    iters.refs[1].push_back(static_cast<std::uint32_t>(rng.below(64)));
  }
  const auto check_flat = [](const InspectorResult& r) {
    for (const PhaseSchedule& ph : r.phases) {
      const std::size_t n = ph.iter_global.size();
      ASSERT_EQ(ph.indir_flat.size(), ph.indir.size() * n);
      for (std::size_t rr = 0; rr < ph.indir.size(); ++rr)
        for (std::size_t j = 0; j < n; ++j)
          ASSERT_EQ(ph.indir_flat[rr * n + j], ph.indir[rr][j]);
    }
  };
  const InspectorResult base = run_light_inspector(sched, 1, iters);
  check_flat(base);

  std::vector<std::uint32_t> changed;
  for (std::uint32_t i = 0; i < 200; i += 7) {
    iters.refs[0][i] = static_cast<std::uint32_t>(rng.below(64));
    changed.push_back(i);
  }
  const InspectorResult incr =
      update_light_inspector(sched, 1, iters, base, changed);
  check_flat(incr);
}

}  // namespace
}  // namespace earthred::core
