// Tests for the compiler optimization passes: constant folding, identity
// simplification, constant propagation, dead-scalar elimination — and
// semantic preservation through the full pipeline.
#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/compiler.hpp"
#include "compiler/optimize.hpp"
#include "compiler/parser.hpp"
#include "support/prng.hpp"

namespace earthred::compiler {
namespace {

Program parse_ok(const char* src) {
  DiagnosticSink sink;
  Program p = parse(src, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.summary();
  return p;
}

const Stmt& only_accumulate(const Loop& loop) {
  const Stmt* found = nullptr;
  for (const Stmt& s : loop.body)
    if (s.kind == StmtKind::Accumulate) {
      EXPECT_EQ(found, nullptr);
      found = &s;
    }
  EXPECT_NE(found, nullptr);
  return *found;
}

TEST(Optimize, FoldsConstantArithmetic) {
  Program p = parse_ok(
      "param n, m; array real X[n]; array int IA[m];"
      "forall (i : 0 .. m) { X[IA[i]] += 2.0 * 3.0 + 4.0 / 2.0; }");
  const OptimizeStats stats = optimize(p);
  EXPECT_GE(stats.folded, 2u);
  const Stmt& s = only_accumulate(p.loops[0]);
  ASSERT_EQ(s.value->kind, ExprKind::Number);
  EXPECT_DOUBLE_EQ(s.value->number, 8.0);
}

TEST(Optimize, FoldsUnaryMinus) {
  Program p = parse_ok(
      "param n, m; array real X[n]; array int IA[m];"
      "forall (i : 0 .. m) { X[IA[i]] += -(2.0 + 1.0); }");
  optimize(p);
  const Stmt& s = only_accumulate(p.loops[0]);
  ASSERT_EQ(s.value->kind, ExprKind::Number);
  EXPECT_DOUBLE_EQ(s.value->number, -3.0);
}

TEST(Optimize, AppliesAlgebraicIdentities) {
  Program p = parse_ok(
      "param n, m; array real X[n]; array int IA[m]; array real Y[m];"
      "forall (i : 0 .. m) { X[IA[i]] += (Y[i] * 1.0 + 0.0) / 1.0; }");
  const OptimizeStats stats = optimize(p);
  EXPECT_GE(stats.folded, 3u);
  const Stmt& s = only_accumulate(p.loops[0]);
  // Reduced to the bare array read.
  EXPECT_EQ(s.value->kind, ExprKind::ArrayRef);
  EXPECT_EQ(s.value->name, "Y");
}

TEST(Optimize, DoesNotFoldZeroTimesVariable) {
  Program p = parse_ok(
      "param n, m; array real X[n]; array int IA[m]; array real Y[m];"
      "forall (i : 0 .. m) { X[IA[i]] += 0.0 * Y[i]; }");
  optimize(p);
  const Stmt& s = only_accumulate(p.loops[0]);
  // 0*Y must stay: Y could be inf/NaN.
  EXPECT_EQ(s.value->kind, ExprKind::Binary);
}

TEST(Optimize, PropagatesConstantScalars) {
  Program p = parse_ok(
      "param n, m; array real X[n]; array int IA[m]; array real Y[m];"
      "forall (i : 0 .. m) { c = 2.0 * 2.0; X[IA[i]] += Y[i] * c; }");
  const OptimizeStats stats = optimize(p);
  EXPECT_GE(stats.propagated, 1u);
  EXPECT_GE(stats.dead_removed, 1u);  // c is dead after propagation
  ASSERT_EQ(p.loops[0].body.size(), 1u);
  const Stmt& s = only_accumulate(p.loops[0]);
  // Y[i] * 4.0 remains.
  ASSERT_EQ(s.value->kind, ExprKind::Binary);
  EXPECT_DOUBLE_EQ(s.value->rhs->number, 4.0);
}

TEST(Optimize, RemovesDeadScalars) {
  Program p = parse_ok(
      "param n, m; array real X[n]; array int IA[m]; array real Y[m];"
      "forall (i : 0 .. m) { unused = Y[i] * 3.0; X[IA[i]] += Y[i]; }");
  const OptimizeStats stats = optimize(p);
  EXPECT_EQ(stats.dead_removed, 1u);
  EXPECT_EQ(p.loops[0].body.size(), 1u);
}

TEST(Optimize, KeepsLiveScalarChains) {
  Program p = parse_ok(
      "param n, m; array real X[n]; array int IA[m]; array real Y[m];"
      "forall (i : 0 .. m) { a = Y[i]; b = a * a; X[IA[i]] += b; }");
  optimize(p);
  EXPECT_EQ(p.loops[0].body.size(), 3u);
}

TEST(Optimize, EndToEndResultsUnchanged) {
  const char* src = R"(
    param n, m;
    array real X[n];
    array int IA1[m]; array int IA2[m];
    array real Y[m];
    forall (i : 0 .. m) {
      c = 1.0 * 2.0 + 0.0;
      t = Y[i] * c / 1.0;
      dead = t * 99.0;
      X[IA1[i]] += t + 0.0;
      X[IA2[i]] -= t * 1.0;
    }
  )";
  DataEnv env;
  env.params["n"] = 40;
  env.params["m"] = 150;
  Xoshiro256 rng(3);
  std::vector<std::uint32_t> ia1, ia2;
  std::vector<double> y;
  for (int i = 0; i < 150; ++i) {
    ia1.push_back(static_cast<std::uint32_t>(rng.below(40)));
    ia2.push_back(static_cast<std::uint32_t>(rng.below(40)));
    y.push_back(static_cast<double>(rng.range(-5, 5)));
  }
  env.int_arrays["IA1"] = std::move(ia1);
  env.int_arrays["IA2"] = std::move(ia2);
  env.real_arrays["Y"] = std::move(y);

  const CompileResult plain = compile(src);
  const CompileResult opt = compile(src, {.optimize = true});
  EXPECT_GT(opt.optimize_stats.total(), 0u);

  const auto kplain = bind(plain, 0, env);
  const auto kopt = bind(opt, 0, env);
  const auto a = kplain->interpret_reference();
  const auto b = kopt->interpret_reference();
  for (const auto& [name, ref] : a) {
    const auto& got = b.at(name);
    for (std::size_t i = 0; i < ref.size(); ++i)
      ASSERT_EQ(got[i], ref[i]) << name << " elem " << i;
  }
  // The optimized kernel executes fewer bytecode ops (dead scalar gone).
  std::size_t plain_stmts = 0, opt_stmts = 0;
  for (const auto& s : plain.analysis.fissioned[0].loop.body)
    plain_stmts += 1 + (s.value ? 1 : 0);
  for (const auto& s : opt.analysis.fissioned[0].loop.body)
    opt_stmts += 1 + (s.value ? 1 : 0);
  EXPECT_LT(opt_stmts, plain_stmts);
}

TEST(Optimize, IdempotentSecondPass) {
  Program p = parse_ok(
      "param n, m; array real X[n]; array int IA[m]; array real Y[m];"
      "forall (i : 0 .. m) { c = 4.0; X[IA[i]] += Y[i] * c; }");
  optimize(p);
  const OptimizeStats again = optimize(p);
  EXPECT_EQ(again.total(), 0u);
}

}  // namespace
}  // namespace earthred::compiler
