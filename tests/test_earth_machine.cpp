// Unit and property tests for the discrete-event EARTH machine simulator:
// cache model, sync-slot semantics, split-phase operations, network
// timing, determinism, and communication/computation overlap.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "earth/cache.hpp"
#include "earth/machine.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::earth {
namespace {

MachineConfig tiny_config(std::uint32_t nodes) {
  MachineConfig cfg;
  cfg.num_nodes = nodes;
  cfg.max_events = 10'000'000;
  return cfg;
}

// ---------------------------------------------------------------- cache

TEST(CacheModel, SequentialAccessHitsWithinLine) {
  CacheConfig cc;
  cc.size_bytes = 1024;
  cc.line_bytes = 32;
  cc.ways = 2;
  CacheModel c(cc);
  // 8-byte elements: miss on first of each 4, hit on next 3.
  for (std::uint64_t i = 0; i < 64; ++i) c.access(i * 8);
  EXPECT_EQ(c.misses(), 16u);
  EXPECT_EQ(c.hits(), 48u);
}

TEST(CacheModel, RepeatedAccessHits) {
  CacheConfig cc;
  CacheModel c(cc);
  c.access(0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(c.access(0));
  EXPECT_EQ(c.misses(), 1u);
}

TEST(CacheModel, CapacityEviction) {
  CacheConfig cc;
  cc.size_bytes = 256;  // 8 lines of 32B
  cc.line_bytes = 32;
  cc.ways = 2;          // 4 sets
  CacheModel c(cc);
  // Touch 16 distinct lines (twice capacity), then re-touch the first:
  // it must have been evicted.
  for (std::uint64_t i = 0; i < 16; ++i) c.access(i * 32);
  EXPECT_FALSE(c.access(0));
}

TEST(CacheModel, LruKeepsHotLine) {
  CacheConfig cc;
  cc.size_bytes = 64;  // one set of 2 ways, 32B lines
  cc.line_bytes = 32;
  cc.ways = 2;
  CacheModel c(cc);
  c.access(0);         // line A
  c.access(32 * 4);    // line B (same set: only one set exists)
  c.access(0);         // A now MRU
  c.access(32 * 8);    // line C evicts LRU = B
  EXPECT_TRUE(c.access(0));
  EXPECT_FALSE(c.access(32 * 4));
}

TEST(CacheModel, DisabledAlwaysHits) {
  CacheConfig cc;
  cc.enabled = false;
  CacheModel c(cc);
  for (std::uint64_t i = 0; i < 100; ++i)
    EXPECT_TRUE(c.access(i * 4096));
  EXPECT_EQ(c.misses(), 0u);
}

TEST(CacheModel, RejectsNonPowerOfTwoGeometry) {
  CacheConfig cc;
  cc.size_bytes = 96;
  cc.line_bytes = 32;
  cc.ways = 1;  // 3 sets: invalid
  EXPECT_THROW(CacheModel c(cc), precondition_error);
}

TEST(CacheModel, DistinctTagsDoNotAlias) {
  // mem_addr places arrays 2^28 bytes apart; different tags with the same
  // index land on different lines (possibly same set, but distinct tags).
  ArrayTag a{1}, b{2};
  EXPECT_NE(mem_addr(a, 0, 8), mem_addr(b, 0, 8));
  EXPECT_EQ(mem_addr(a, 3, 8) - mem_addr(a, 0, 8), 24u);
}

// -------------------------------------------------------------- machine

TEST(Machine, SingleFiberRunsOnce) {
  EarthMachine m(tiny_config(1));
  int runs = 0;
  auto f = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ++runs;
    ctx.charge(100);
  });
  m.credit(f);
  const Cycles t = m.run();
  EXPECT_EQ(runs, 1);
  // switch overhead + 100 cycles of work.
  EXPECT_EQ(t, m.config().cost.fiber_switch + 100);
  EXPECT_EQ(m.node_stats(0).fibers_run, 1u);
}

TEST(Machine, FiberWaitsForAllSyncSignals) {
  EarthMachine m(tiny_config(1));
  std::vector<int> order;
  FiberId sink = m.add_fiber(0, 2, [&](FiberContext&) { order.push_back(2); });
  FiberId a = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    order.push_back(0);
    ctx.sync(sink);
  });
  FiberId b = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    order.push_back(1);
    ctx.sync(sink);
  });
  m.credit(a);
  m.credit(b);
  m.run();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[2], 2);  // sink last, after both signals
}

TEST(Machine, SlotRearmsForRepeatedActivations) {
  EarthMachine m(tiny_config(1));
  int fires = 0;
  FiberId sink{};
  sink = m.add_fiber(0, 1, [&](FiberContext&) { ++fires; });
  FiberId src = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    // Signal the sink three times; each signal is a full activation
    // because the sink's sync count is 1.
    ctx.sync(sink);
    ctx.sync(sink);
    ctx.sync(sink);
  });
  m.credit(src);
  m.run();
  EXPECT_EQ(fires, 3);
}

TEST(Machine, ActivationIndexIncrements) {
  EarthMachine m(tiny_config(1));
  std::vector<std::uint64_t> seen;
  FiberId f = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    seen.push_back(ctx.activation());
  });
  m.credit(f);
  m.credit(f);
  m.credit(f);
  m.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 0u);
  EXPECT_EQ(seen[1], 1u);
  EXPECT_EQ(seen[2], 2u);
  EXPECT_EQ(m.fiber_activations(f), 3u);
}

TEST(Machine, RemoteSendDeliversDataBeforeConsumerRuns) {
  EarthMachine m(tiny_config(2));
  int mailbox = 0;
  int observed = -1;
  FiberId consumer = m.add_fiber(1, 1, [&](FiberContext&) {
    observed = mailbox;
  });
  FiberId producer = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.charge(50);
    ctx.send(consumer, 1024, [&] { mailbox = 42; });
  });
  m.credit(producer);
  m.run();
  EXPECT_EQ(observed, 42);
}

TEST(Machine, RemoteDeliveryIncursNetworkLatency) {
  MachineConfig cfg = tiny_config(2);
  cfg.net.latency = 1000;
  cfg.net.bytes_per_cycle = 1.0;
  cfg.net.inject_overhead = 10;
  EarthMachine m(cfg);
  Cycles consumer_start = 0;
  FiberId consumer = m.add_fiber(1, 1, [&](FiberContext& ctx) {
    consumer_start = ctx.now();
  });
  FiberId producer = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.send(consumer, 500, {});
  });
  m.credit(producer);
  m.run();
  // Issue >= switch+op_issue; + inject 10 + transfer 500 + latency 1000.
  EXPECT_GE(consumer_start, Cycles{1510});
}

TEST(Machine, LocalSyncSkipsNetwork) {
  EarthMachine m(tiny_config(1));
  FiberId consumer = m.add_fiber(0, 1, [](FiberContext&) {});
  FiberId producer = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.sync(consumer);
  });
  m.credit(producer);
  m.run();
  EXPECT_EQ(m.node_stats(0).msgs_sent, 0u);
  EXPECT_GE(m.node_stats(0).su_events, 1u);
}

TEST(Machine, SenderPortSerializesMessages) {
  MachineConfig cfg = tiny_config(3);
  cfg.net.latency = 100;
  cfg.net.bytes_per_cycle = 1.0;
  cfg.net.inject_overhead = 0;
  EarthMachine m(cfg);
  Cycles t1 = 0, t2 = 0;
  FiberId c1 = m.add_fiber(1, 1, [&](FiberContext& ctx) { t1 = ctx.now(); });
  FiberId c2 = m.add_fiber(2, 1, [&](FiberContext& ctx) { t2 = ctx.now(); });
  FiberId producer = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.send(c1, 10000, {});
    ctx.send(c2, 10000, {});
  });
  m.credit(producer);
  m.run();
  // Second message must wait for the first transfer (10000 cycles) on the
  // sender's port, so its consumer starts >= 10000 cycles later.
  EXPECT_GE(t2, t1 + 10000);
}

TEST(Machine, CommunicationOverlapsComputation) {
  // Node 0 sends to node 1, then immediately continues a long computation.
  // The message (latency 5000) should be fully hidden behind the 20000-
  // cycle computation: makespan ~ computation + consumer, not + latency.
  MachineConfig cfg = tiny_config(2);
  cfg.net.latency = 5000;
  EarthMachine m(cfg);
  FiberId consumer = m.add_fiber(1, 1, [](FiberContext& ctx) {
    ctx.charge(10);
  });
  FiberId worker = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.send(consumer, 100, {});
    ctx.charge(20000);
  });
  m.credit(worker);
  const Cycles t = m.run();
  EXPECT_LT(t, 21000u);  // latency hidden
  // Sanity: without overlap it would be >= 25000.
}

TEST(Machine, DeterministicAcrossRuns) {
  auto build_and_run = [] {
    // A 4-node ring: each hop forwards to the next node, 12 hops total.
    EarthMachine m(tiny_config(4));
    int hops = 0;
    std::vector<FiberId> ring;
    ring.reserve(4);
    for (std::uint32_t n = 0; n < 4; ++n) {
      ring.push_back(m.add_fiber(n, 1, [&, n](FiberContext& ctx) {
        ctx.charge(17 * (n + 1));
        if (++hops < 12) ctx.sync(ring[(n + 1) % 4]);
      }));
    }
    m.credit(ring[0]);
    return m.run();
  };
  EXPECT_EQ(build_and_run(), build_and_run());
}

TEST(Machine, StatsAccounting) {
  EarthMachine m(tiny_config(2));
  FiberId consumer = m.add_fiber(1, 1, [](FiberContext&) {});
  FiberId producer = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.charge_flops(100);
    ctx.send(consumer, 2048, {});
  });
  m.credit(producer);
  m.run();
  EXPECT_EQ(m.stats().total_msgs(), 1u);
  EXPECT_EQ(m.stats().total_bytes(), 2048u);
  EXPECT_GT(m.node_stats(0).eu_busy, 100u);
  EXPECT_EQ(m.node_stats(1).fibers_run, 1u);
  EXPECT_GT(m.stats().eu_utilization(), 0.0);
}

TEST(Machine, MemoryAccessChargesCacheLatency) {
  MachineConfig cfg = tiny_config(1);
  cfg.cost.cache_hit = 1;
  cfg.cost.cache_miss = 50;
  EarthMachine m(cfg);
  ArrayTag x{1};
  FiberId f = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.load(x, 0);   // miss
    ctx.load(x, 1);   // hit (same 32B line)
    ctx.load(x, 0);   // hit
  });
  m.credit(f);
  m.run();
  EXPECT_EQ(m.node_stats(0).cache_misses, 1u);
  EXPECT_EQ(m.node_stats(0).cache_hits, 2u);
  EXPECT_EQ(m.node_stats(0).eu_busy,
            m.config().cost.fiber_switch + 50 + 1 + 1);
}

TEST(Machine, PerNodeCachesAreIndependent) {
  EarthMachine m(tiny_config(2));
  ArrayTag x{1};
  FiberId f1 = m.add_fiber(1, 1, [&](FiberContext& ctx) { ctx.load(x, 0); });
  FiberId f0 = m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.load(x, 0);
    ctx.sync(f1);
  });
  m.credit(f0);
  m.run();
  // Both nodes miss on their own first touch: caches are private.
  EXPECT_EQ(m.node_stats(0).cache_misses, 1u);
  EXPECT_EQ(m.node_stats(1).cache_misses, 1u);
}

TEST(Machine, CreditOnZeroCountFiberActivatesDirectly) {
  EarthMachine m(tiny_config(1));
  int runs = 0;
  FiberId f = m.add_fiber(0, 0, [&](FiberContext&) { ++runs; });
  m.credit(f, 2);
  m.run();
  EXPECT_EQ(runs, 2);
}

TEST(Machine, SignalToCreditOnlyFiberIsInternalError) {
  EarthMachine m(tiny_config(1));
  FiberId sink = m.add_fiber(0, 0, [](FiberContext&) {});
  FiberId src = m.add_fiber(0, 1, [&](FiberContext& ctx) { ctx.sync(sink); });
  m.credit(src);
  EXPECT_THROW(m.run(), internal_error);
}

TEST(Machine, InvalidNodeRejected) {
  EarthMachine m(tiny_config(2));
  EXPECT_THROW(m.add_fiber(2, 1, [](FiberContext&) {}), precondition_error);
}

TEST(Machine, MaxEventsGuardsLivelock) {
  MachineConfig cfg = tiny_config(1);
  cfg.max_events = 100;
  EarthMachine m(cfg);
  std::vector<FiberId> fs;
  fs.push_back(m.add_fiber(0, 1, [&](FiberContext& ctx) {
    ctx.sync(fs[0]);  // self-perpetuating
  }));
  m.credit(fs[0]);
  EXPECT_THROW(m.run(), check_error);
}

TEST(Machine, RunContinuesMonotonicallyAcrossCalls) {
  EarthMachine m(tiny_config(1));
  FiberId f = m.add_fiber(0, 1, [](FiberContext& ctx) { ctx.charge(10); });
  m.credit(f);
  const Cycles t1 = m.run();
  m.credit(f);
  const Cycles t2 = m.run();
  EXPECT_GT(t2, t1);
}

// Property test: a random fiber DAG on a random machine always drains, the
// makespan is at least the critical-path lower bound of any single node's
// serial work / num_nodes, and every fiber fires exactly once.
TEST(Machine, PropertyRandomDagDrainsAndFiresEachFiberOnce) {
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const auto nodes = static_cast<std::uint32_t>(rng.range(1, 6));
    const auto nfibers = static_cast<std::size_t>(rng.range(2, 40));
    MachineConfig cfg = tiny_config(nodes);
    EarthMachine m(cfg);
    std::vector<int> fire_count(nfibers, 0);
    std::vector<FiberId> ids(nfibers);
    std::vector<std::vector<std::size_t>> succ(nfibers);
    std::vector<std::uint32_t> indegree(nfibers, 0);
    // Edges only from lower to higher index: a DAG by construction.
    for (std::size_t j = 1; j < nfibers; ++j) {
      const auto npred =
          static_cast<std::size_t>(rng.range(1, std::min<std::int64_t>(3, static_cast<std::int64_t>(j))));
      std::set<std::size_t> preds;
      while (preds.size() < npred)
        preds.insert(static_cast<std::size_t>(rng.below(j)));
      for (auto p : preds) {
        succ[p].push_back(j);
        ++indegree[j];
      }
    }
    for (std::size_t j = 0; j < nfibers; ++j) {
      const auto node = static_cast<NodeId>(rng.below(nodes));
      const auto work = static_cast<Cycles>(rng.range(1, 500));
      ids[j] = m.add_fiber(node, std::max(1u, indegree[j]),
                           [&, j, work](FiberContext& ctx) {
                             ++fire_count[j];
                             ctx.charge(work);
                             for (auto s : succ[j]) ctx.sync(ids[s]);
                           });
    }
    for (std::size_t j = 0; j < nfibers; ++j)
      if (indegree[j] == 0) m.credit(ids[j]);
    const Cycles t = m.run();
    EXPECT_GT(t, 0u);
    for (std::size_t j = 0; j < nfibers; ++j)
      EXPECT_EQ(fire_count[j], 1) << "fiber " << j << " in trial " << trial;
  }
}

}  // namespace
}  // namespace earthred::earth
