// The data-layout optimization pass (core/layout.hpp + the layout steps
// inside build_execution_plan): knob parsing and env resolution, the
// tile-size heuristic, the portion-preserving RCM permutation's
// invariants, clone_renumbered semantics per kernel, the unsupported /
// fallback paths, and the PlanCache's counted layout-patch fallback.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "core/layout.hpp"
#include "core/native_engine.hpp"
#include "core/plan_io.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "kernels/spmv_t.hpp"
#include "mesh/generators.hpp"
#include "service/plan_cache.hpp"
#include "sparse/nas_cg.hpp"
#include "support/check.hpp"
#include "support/cpu_features.hpp"
#include "support/prng.hpp"

namespace earthred::core {
namespace {

TEST(Layout, ParseAndToStringRoundTrip) {
  EXPECT_EQ(parse_layout("none"), LayoutKind::None);
  EXPECT_EQ(parse_layout("rcm"), LayoutKind::Rcm);
  EXPECT_EQ(parse_layout("auto"), LayoutKind::Auto);
  for (const LayoutKind l :
       {LayoutKind::None, LayoutKind::Rcm, LayoutKind::Auto})
    EXPECT_EQ(parse_layout(std::string(to_string(l))), l);
  try {
    parse_layout("fancy");
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("E-LAYOUT-NAME"),
              std::string::npos)
        << e.what();
  }
}

TEST(Layout, EnvOverrideAppliesOnlyToDefaultRequests) {
  ::unsetenv("EARTHRED_FORCE_LAYOUT");
  EXPECT_EQ(effective_layout(LayoutKind::None), LayoutKind::None);
  EXPECT_EQ(effective_layout(LayoutKind::Rcm), LayoutKind::Rcm);

  ::setenv("EARTHRED_FORCE_LAYOUT", "rcm", 1);
  // The override rewrites only the *default* request — an explicit knob
  // always wins, mirroring EARTHRED_FORCE_STRATEGY.
  EXPECT_EQ(effective_layout(LayoutKind::None), LayoutKind::Rcm);
  EXPECT_EQ(effective_layout(LayoutKind::Auto), LayoutKind::Auto);
  ::unsetenv("EARTHRED_FORCE_LAYOUT");
}

TEST(Layout, TileHeuristicFollowsCacheAndOverride) {
  // An explicit override always wins.
  EXPECT_EQ(layout_tile_iters(100, 777), 777u);

  // Heuristic: half the detected L1d, clamped to [256, 1<<20].
  support::CacheInfo ci;
  ci.l1d_bytes = 32 * 1024;
  support::set_cache_info_for_test(&ci);
  EXPECT_EQ(layout_tile_iters(32, 0), (32u * 1024 / 2) / 32);
  // Tiny budget or huge iteration footprint clamps low...
  EXPECT_EQ(layout_tile_iters(1 << 20, 0), 256u);
  // ...and an unknown cache falls back to the 32 KiB default.
  ci.l1d_bytes = 0;
  support::set_cache_info_for_test(&ci);
  EXPECT_EQ(layout_tile_iters(32, 0), (32u * 1024 / 2) / 32);
  support::set_cache_info_for_test(nullptr);
}

TEST(Layout, PermutationIsAPortionPreservingBijection) {
  // The bit-identity argument rests on this invariant: the permutation
  // reorders elements *within* each rotation portion only, so phase
  // assignment, slot numbering, and fold structure are untouched and the
  // plan is a pure isomorphism of the layout=none plan.
  const kernels::EulerKernel kernel(mesh::make_geometric_mesh({400, 2200, 5}));
  PlanOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.layout = LayoutKind::Rcm;
  const ExecutionPlan plan = build_execution_plan(kernel, opt);
  ASSERT_EQ(plan.applied_layout, LayoutKind::Rcm);
  ASSERT_EQ(plan.perm.size(), plan.shape.num_nodes);
  ASSERT_EQ(plan.perm_inv.size(), plan.shape.num_nodes);

  std::vector<bool> hit(plan.perm.size(), false);
  for (std::uint32_t v = 0; v < plan.perm.size(); ++v) {
    const std::uint32_t pv = plan.perm[v];
    ASSERT_LT(pv, plan.perm.size());
    EXPECT_FALSE(hit[pv]) << "duplicate target " << pv;
    hit[pv] = true;
    EXPECT_EQ(plan.perm_inv[pv], v);
    EXPECT_EQ(plan.sched.portion_of(pv), plan.sched.portion_of(v))
        << "node " << v << " left its portion";
  }
}

TEST(Layout, CloneRenumberedRelabelsReferences) {
  // mesh::renumber preserves edge order, so for every mesh kernel the
  // clone's reference r of edge e must be perm[original ref(r, e)] — the
  // exact property build_execution_plan relies on when it gathers refs
  // through the permutation instead of cloning during the build.
  struct Named {
    std::string name;
    std::unique_ptr<const PhasedKernel> kernel;
  };
  std::vector<Named> ks;
  ks.push_back({"fig1", std::make_unique<kernels::Fig1Kernel>(
                            kernels::Fig1Kernel::with_integer_values(
                                mesh::make_geometric_mesh({96, 500, 21})))});
  ks.push_back({"euler", std::make_unique<kernels::EulerKernel>(
                             mesh::make_geometric_mesh({160, 700, 8}))});
  ks.push_back({"moldyn", std::make_unique<kernels::MoldynKernel>(
                              mesh::make_moldyn_lattice({3, 300, 0.03, 2}))});
  const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix({120, 3, 0.1, 10.0, 314159265.0});
  Xoshiro256 rng(7);
  std::vector<double> x(A.nrows());
  for (auto& v : x) v = rng.uniform(-1, 1);
  ks.push_back(
      {"spmv_t", std::make_unique<kernels::SpmvTKernel>(A, std::move(x))});

  for (const Named& nk : ks) {
    const KernelShape shape = nk.kernel->shape();
    // A deterministic nontrivial permutation: rotate each half.
    std::vector<std::uint32_t> perm(shape.num_nodes);
    std::iota(perm.begin(), perm.end(), 0u);
    const std::uint32_t half = shape.num_nodes / 2;
    std::rotate(perm.begin(), perm.begin() + 1,
                perm.begin() + half);
    std::rotate(perm.begin() + half, perm.begin() + half + 1, perm.end());

    const std::unique_ptr<PhasedKernel> clone =
        nk.kernel->clone_renumbered(perm);
    ASSERT_NE(clone, nullptr) << nk.name;
    const KernelShape cs = clone->shape();
    EXPECT_EQ(cs.num_nodes, shape.num_nodes) << nk.name;
    EXPECT_EQ(cs.num_edges, shape.num_edges) << nk.name;
    EXPECT_EQ(cs.num_refs, shape.num_refs) << nk.name;
    for (std::uint32_t r = 0; r < shape.num_refs; ++r)
      for (std::uint64_t e = 0; e < shape.num_edges; ++e)
        ASSERT_EQ(clone->ref(r, e), perm[nk.kernel->ref(r, e)])
            << nk.name << " ref " << r << " edge " << e;
  }
}

/// A kernel that cannot renumber — it inherits PhasedKernel's default
/// clone_renumbered (nullptr), which is what any not-yet-ported kernel,
/// e.g. a compiler-synthesized one, looks like to the layout pass. A
/// forwarding wrapper because Fig1Kernel itself is final.
class NoRenumberKernel final : public PhasedKernel {
 public:
  explicit NoRenumberKernel(mesh::Mesh m)
      : inner_(kernels::Fig1Kernel::with_integer_values(std::move(m))) {}
  KernelShape shape() const override { return inner_.shape(); }
  std::uint32_t ref(std::uint32_t r, std::uint64_t edge) const override {
    return inner_.ref(r, edge);
  }
  void init_node_arrays(
      std::vector<std::vector<double>>& arrays) const override {
    inner_.init_node_arrays(arrays);
  }
  void compute_edge(earth::FiberContext& ctx, const CostTags& tags,
                    std::uint64_t edge_global, std::uint64_t edge_slot,
                    std::span<const std::uint32_t> redirected,
                    ProcArrays& arrays) const override {
    inner_.compute_edge(ctx, tags, edge_global, edge_slot, redirected,
                        arrays);
  }
  void update_nodes(earth::FiberContext& ctx, const CostTags& tags,
                    std::uint32_t begin, std::uint32_t end,
                    std::uint32_t base, ProcArrays& arrays) const override {
    inner_.update_nodes(ctx, tags, begin, end, base, arrays);
  }

 private:
  kernels::Fig1Kernel inner_;
};

TEST(Layout, AutoFallsBackAndRcmRefusesOnNonRenumberableKernels) {
  const NoRenumberKernel kernel(mesh::make_geometric_mesh({96, 500, 21}));
  PlanOptions opt;
  opt.num_procs = 4;
  opt.k = 2;

  opt.layout = LayoutKind::Auto;
  const ExecutionPlan plan = build_execution_plan(kernel, opt);
  EXPECT_EQ(plan.applied_layout, LayoutKind::None);
  EXPECT_TRUE(plan.perm.empty());
  EXPECT_EQ(plan.tile_iters, 0u);  // fallback leaves the hot path untouched

  opt.layout = LayoutKind::Rcm;
  try {
    build_execution_plan(kernel, opt);
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("E-LAYOUT-UNSUPPORTED"),
              std::string::npos)
        << e.what();
  }
}

TEST(Layout, PatchOnLayoutBaseRebuildsBitIdentically) {
  // patch_execution_plan cannot patch through a renumbering (the mutation
  // changes the reference graph the permutation was computed from), so on
  // a layout base it transparently rebuilds — and deterministic builds
  // make that bit-identical to patching-then-rebuilding by hand.
  kernels::Fig1Kernel base(kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({250, 1500, 21})));
  PlanOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.layout = LayoutKind::Rcm;
  const ExecutionPlan base_plan = build_execution_plan(base, opt);
  ASSERT_EQ(base_plan.applied_layout, LayoutKind::Rcm);

  // Mutate a few edges, then patch against the layout base.
  mesh::Mesh mutated_mesh = mesh::make_geometric_mesh({250, 1500, 21});
  std::vector<std::uint32_t> changed;
  for (std::uint32_t e = 0; e < 40; e += 4) {
    mutated_mesh.edges[e].b =
        (mutated_mesh.edges[e].b + 7) % mutated_mesh.num_nodes;
    if (mutated_mesh.edges[e].a == mutated_mesh.edges[e].b)
      mutated_mesh.edges[e].b =
          (mutated_mesh.edges[e].b + 1) % mutated_mesh.num_nodes;
    changed.push_back(e);
  }
  const kernels::Fig1Kernel mutated(
      kernels::Fig1Kernel::with_integer_values(std::move(mutated_mesh)));

  const ExecutionPlan patched =
      patch_execution_plan(mutated, base_plan, changed);
  const ExecutionPlan rebuilt = build_execution_plan(mutated, opt);
  EXPECT_TRUE(plans_bit_identical(patched, rebuilt));
}

TEST(Layout, PlanCacheCountsLayoutPatchFallbacks) {
  // The service path: patch_or_build on a layout base must not attempt
  // an in-place patch — it routes to a full build and counts the event,
  // and the client sees a working plan either way.
  kernels::Fig1Kernel base(kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({250, 1500, 21})));
  PlanOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.layout = LayoutKind::Auto;

  service::PlanCache cache;
  const service::PlanPtr base_plan = cache.lookup_or_build(base, opt);
  ASSERT_NE(base_plan, nullptr);
  ASSERT_EQ(base_plan->applied_layout, LayoutKind::Rcm);
  const std::uint64_t base_fp = service::kernel_fingerprint(base);

  mesh::Mesh mutated_mesh = mesh::make_geometric_mesh({250, 1500, 21});
  mutated_mesh.edges[3].b = (mutated_mesh.edges[3].b + 11) % 250;
  if (mutated_mesh.edges[3].a == mutated_mesh.edges[3].b)
    mutated_mesh.edges[3].b = (mutated_mesh.edges[3].b + 1) % 250;
  const kernels::Fig1Kernel mutated(
      kernels::Fig1Kernel::with_integer_values(std::move(mutated_mesh)));

  const std::vector<std::uint32_t> changed{3u};
  service::PlanCache::Outcome how{};
  const service::PlanPtr patched =
      cache.patch_or_build(mutated, opt, base_fp, changed, {}, &how);
  ASSERT_NE(patched, nullptr);
  EXPECT_EQ(how, service::PlanCache::Outcome::Built);
  EXPECT_EQ(cache.counters().layout_patch_fallbacks, 1u);
  EXPECT_EQ(cache.counters().patched, 0u);
  EXPECT_EQ(cache.counters().patch_fallbacks, 0u);
}

TEST(Layout, PlanKeyResolvesEnvForcedLayout) {
  // make_plan_key must key what build_execution_plan will actually build,
  // or a forced env could serve a layout plan under a none key.
  const kernels::Fig1Kernel kernel(kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({96, 500, 21})));
  PlanOptions opt;
  opt.num_procs = 4;
  opt.k = 2;

  ::setenv("EARTHRED_FORCE_LAYOUT", "rcm", 1);
  const service::PlanKey forced = service::make_plan_key(kernel, opt);
  EXPECT_EQ(forced.layout, LayoutKind::Rcm);
  ::unsetenv("EARTHRED_FORCE_LAYOUT");
  const service::PlanKey plain = service::make_plan_key(kernel, opt);
  EXPECT_EQ(plain.layout, LayoutKind::None);
  EXPECT_NE(forced, plain);
}

}  // namespace
}  // namespace earthred::core
