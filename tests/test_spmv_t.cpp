// Tests for the A^T x kernel — the single-indirection-reference case of
// Sec. 3 (no remote buffer, no second loop).
#include <gtest/gtest.h>

#include <cmath>

#include "core/native_engine.hpp"
#include "core/reduction_engine.hpp"
#include "kernels/spmv_t.hpp"
#include "sparse/nas_cg.hpp"
#include "support/prng.hpp"

namespace earthred::kernels {
namespace {

SpmvTKernel make_kernel(std::uint32_t n, std::uint64_t seed) {
  const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix({n, 3, 0.1, 10.0, 314159265.0});
  Xoshiro256 rng(seed);
  std::vector<double> x(A.nrows());
  for (auto& v : x) v = rng.uniform(-1, 1);
  return SpmvTKernel(A, std::move(x));
}

TEST(SpmvT, ReferenceMatchesTransposeSpmv) {
  const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix({120, 3, 0.1, 10.0, 314159265.0});
  std::vector<double> x(A.nrows(), 0.0);
  Xoshiro256 rng(4);
  for (auto& v : x) v = rng.uniform(-1, 1);
  const SpmvTKernel kernel(A, x);
  const auto got = kernel.reference();
  std::vector<double> want(A.ncols());
  A.transpose().spmv(x, want);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_NEAR(got[i], want[i], 1e-12);
}

TEST(SpmvT, RotationEngineMatchesReferenceAndNeedsNoBuffers) {
  const SpmvTKernel kernel = make_kernel(160, 5);
  const auto want = kernel.reference();
  for (const std::uint32_t P : {1u, 2u, 4u, 8u}) {
    core::RotationOptions opt;
    opt.num_procs = P;
    opt.k = 2;
    opt.machine.max_events = 50'000'000;
    const core::RunResult r = core::run_rotation_engine(kernel, opt);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_NEAR(r.reduction[0][i], want[i],
                  1e-9 * (1.0 + std::abs(want[i])))
          << "P=" << P;
  }
}

TEST(SpmvT, SingleReferenceProducesNoDeferrals) {
  // Inspect the LightInspector output directly: one reference slot means
  // every iteration is assigned to the phase owning its element.
  const SpmvTKernel kernel = make_kernel(96, 6);
  const inspector::RotationSchedule sched(kernel.shape().num_nodes, 4, 2);
  inspector::IterationRefs refs;
  refs.refs.resize(1);
  for (std::uint64_t e = 0; e < kernel.shape().num_edges; e += 4) {
    refs.global_iter.push_back(static_cast<std::uint32_t>(e));
    refs.refs[0].push_back(kernel.ref(0, e));
  }
  const auto res = inspector::run_light_inspector(sched, 1, refs);
  EXPECT_EQ(res.num_buffer_slots, 0u);
  EXPECT_EQ(res.total_deferred(), 0u);
}

TEST(SpmvT, NativeEngineMatches) {
  const SpmvTKernel kernel = make_kernel(128, 7);
  const auto want = kernel.reference();
  core::NativeOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  const core::NativeResult r = core::run_native_engine(kernel, opt);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_NEAR(r.reduction[0][i], want[i],
                1e-9 * (1.0 + std::abs(want[i])));
}

}  // namespace
}  // namespace earthred::kernels
