// Timing-model property tests: directional invariants that must hold for
// any sane machine model — these catch sign errors and unit confusions in
// the cost accounting that functional tests cannot see.
#include <gtest/gtest.h>

#include <tuple>

#include "core/reduction_engine.hpp"
#include "kernels/euler.hpp"
#include "mesh/generators.hpp"

namespace earthred {
namespace {

earth::Cycles run_with(const core::PhasedKernel& kernel,
                       earth::MachineConfig machine, std::uint32_t P,
                       std::uint32_t k) {
  core::RotationOptions opt;
  opt.num_procs = P;
  opt.k = k;
  opt.sweeps = 3;
  opt.machine = machine;
  opt.machine.max_events = 100'000'000;
  opt.collect_results = false;
  return core::run_rotation_engine(kernel, opt).total_cycles;
}

class TimingMonotonicity
    : public ::testing::TestWithParam<std::tuple<std::uint32_t /*P*/,
                                                 std::uint32_t /*k*/>> {
 protected:
  static const kernels::EulerKernel& kernel() {
    static const kernels::EulerKernel k(
        mesh::make_geometric_mesh({400, 2000, 77}));
    return k;
  }
};

TEST_P(TimingMonotonicity, HigherLatencyNeverFaster) {
  const auto [P, k] = GetParam();
  earth::MachineConfig cfg;
  cfg.net.latency = 50;
  const auto fast = run_with(kernel(), cfg, P, k);
  cfg.net.latency = 5000;
  const auto slow = run_with(kernel(), cfg, P, k);
  EXPECT_LE(fast, slow);
}

TEST_P(TimingMonotonicity, LowerBandwidthNeverFaster) {
  const auto [P, k] = GetParam();
  earth::MachineConfig cfg;
  cfg.net.bytes_per_cycle = 4.0;
  const auto fast = run_with(kernel(), cfg, P, k);
  cfg.net.bytes_per_cycle = 0.25;
  const auto slow = run_with(kernel(), cfg, P, k);
  EXPECT_LE(fast, slow);
}

TEST_P(TimingMonotonicity, HigherMissCostNeverFaster) {
  const auto [P, k] = GetParam();
  earth::MachineConfig cfg;
  cfg.cost.cache_miss = 2;
  const auto fast = run_with(kernel(), cfg, P, k);
  cfg.cost.cache_miss = 60;
  const auto slow = run_with(kernel(), cfg, P, k);
  EXPECT_LT(fast, slow);
}

TEST_P(TimingMonotonicity, HigherSwitchCostNeverFaster) {
  const auto [P, k] = GetParam();
  earth::MachineConfig cfg;
  cfg.cost.fiber_switch = 5;
  const auto fast = run_with(kernel(), cfg, P, k);
  cfg.cost.fiber_switch = 500;
  const auto slow = run_with(kernel(), cfg, P, k);
  EXPECT_LT(fast, slow);
}

TEST_P(TimingMonotonicity, MoreSweepsCostMore) {
  const auto [P, k] = GetParam();
  core::RotationOptions opt;
  opt.num_procs = P;
  opt.k = k;
  opt.machine.max_events = 100'000'000;
  opt.collect_results = false;
  opt.sweeps = 2;
  const auto two = core::run_rotation_engine(kernel(), opt).total_cycles;
  opt.sweeps = 6;
  const auto six = core::run_rotation_engine(kernel(), opt).total_cycles;
  // Sweeps pipeline, so 6 sweeps cost less than 3x two sweeps but more
  // than two sweeps alone.
  EXPECT_GT(six, two);
  EXPECT_LT(six, 3 * two);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TimingMonotonicity,
    ::testing::Combine(::testing::Values(2u, 4u, 8u),
                       ::testing::Values(1u, 2u)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::uint32_t, std::uint32_t>>& info) {
      return "P" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace earthred
