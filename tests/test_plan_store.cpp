// The persistent plan store: round-trip fidelity, zero-copy adoption,
// the untrusted-input validation chain (every corruption class must come
// back as a coded, non-throwing rejection), and the PlanCache's
// transparent fallback — a bad file costs a rebuild, never a client
// error. Also validates the committed corruption corpus under
// examples/plans/bad/.
#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/native_engine.hpp"
#include "core/plan_io.hpp"
#include "kernels/fig1.hpp"
#include "mesh/generators.hpp"
#include "service/plan_cache.hpp"
#include "service/plan_store.hpp"

namespace earthred::service {
namespace {

namespace fs = std::filesystem;

kernels::Fig1Kernel make_kernel(std::uint64_t seed = 21) {
  return kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({250, 1500, seed}));
}

core::PlanOptions plan_opts(std::uint32_t P = 4, std::uint32_t k = 2) {
  core::PlanOptions opt;
  opt.num_procs = P;
  opt.k = k;
  return opt;
}

/// Scratch store directory, removed on destruction.
struct ScratchStore {
  std::string dir;
  ScratchStore()
      : dir((fs::temp_directory_path() / "earthred-test-planstore").string()) {
    fs::remove_all(dir);
  }
  ~ScratchStore() { fs::remove_all(dir); }
};

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  const auto* p = reinterpret_cast<const std::byte*>(raw.data());
  return {p, p + raw.size()};
}

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(PlanStore, RoundTripIsZeroCopyAndBitIdentical) {
  const auto kernel = make_kernel();
  const core::PlanOptions opt = plan_opts();
  const core::ExecutionPlan plan = core::build_execution_plan(kernel, opt);

  ScratchStore scratch;
  const PlanStore store(scratch.dir);
  const PlanKey key = make_plan_key(kernel, opt);
  std::string error;
  ASSERT_TRUE(store.save(key, plan, &error)) << error;

  const core::PlanLoadResult r = store.load(key);
  ASSERT_TRUE(r.ok()) << r.error_code << ": " << r.detail;
  EXPECT_TRUE(r.zero_copy);
  EXPECT_TRUE(core::plans_bit_identical(*r.plan, plan));
  // Loaded plans must be patchable bases: canonical free list.
  for (const auto& insp : r.plan->insp)
    EXPECT_TRUE(insp.free_slots.empty());

  // The header alone round-trips the plan's identity.
  std::string code, detail;
  const auto header = core::read_plan_header(store.path_for(key), &code,
                                             &detail);
  ASSERT_TRUE(header.has_value()) << code << ": " << detail;
  EXPECT_EQ(header->content_hash, key.content_hash);
  EXPECT_EQ(header->num_procs, key.num_procs);
  EXPECT_EQ(header->k, key.k);

  // And `ls` surfaces it.
  const auto entries = store.list();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].error_code.empty());
  EXPECT_EQ(entries[0].header.content_hash, key.content_hash);
}

TEST(PlanStore, LayoutPlanRoundTripsPermutationArrays) {
  // Format v2: a layout plan's permutation and inverse ride the payload
  // right after build_seconds; the header carries the layout kinds and
  // tile size. The round trip must preserve all of it bit for bit, and
  // the layout key must fork the file path so a layout=none plan can
  // never alias it.
  const auto kernel = make_kernel();
  core::PlanOptions opt = plan_opts();
  opt.layout = core::LayoutKind::Rcm;
  const core::ExecutionPlan plan = core::build_execution_plan(kernel, opt);
  ASSERT_FALSE(plan.perm.empty());
  ASSERT_EQ(plan.perm.size(), plan.perm_inv.size());
  ASSERT_EQ(plan.applied_layout, core::LayoutKind::Rcm);
  ASSERT_GT(plan.tile_iters, 0u);

  ScratchStore scratch;
  const PlanStore store(scratch.dir);
  const PlanKey key = make_plan_key(kernel, opt);
  EXPECT_EQ(key.layout, core::LayoutKind::Rcm);
  EXPECT_NE(store.path_for(key).find("-rcm"), std::string::npos)
      << store.path_for(key);
  PlanKey none_key = key;
  none_key.layout = core::LayoutKind::None;
  EXPECT_NE(store.path_for(key), store.path_for(none_key));

  std::string error;
  ASSERT_TRUE(store.save(key, plan, &error)) << error;
  const core::PlanLoadResult r = store.load(key);
  ASSERT_TRUE(r.ok()) << r.error_code << ": " << r.detail;
  EXPECT_TRUE(core::plans_bit_identical(*r.plan, plan));
  EXPECT_TRUE(r.plan->perm == plan.perm);
  EXPECT_TRUE(r.plan->perm_inv == plan.perm_inv);
  EXPECT_EQ(r.plan->applied_layout, plan.applied_layout);
  EXPECT_EQ(r.plan->tile_iters, plan.tile_iters);
  EXPECT_EQ(r.plan->options.layout, core::LayoutKind::Rcm);

  // And the header alone reports the layout identity.
  std::string code, detail;
  const auto header =
      core::read_plan_header(store.path_for(key), &code, &detail);
  ASSERT_TRUE(header.has_value()) << code << ": " << detail;
  EXPECT_EQ(header->layout,
            static_cast<std::uint32_t>(core::LayoutKind::Rcm));
  EXPECT_EQ(header->applied_layout,
            static_cast<std::uint32_t>(core::LayoutKind::Rcm));
  EXPECT_EQ(header->tile_iters, plan.tile_iters);
}

TEST(PlanStore, BrokenPermutationIsPermError) {
  // A perm defect inserted *before* serialization leaves the checksum
  // valid, so only the structural validation can catch it — and it must
  // answer with the dedicated E-STORE-PERM code, never a crash.
  const auto kernel = make_kernel();
  core::PlanOptions opt = plan_opts();
  opt.layout = core::LayoutKind::Rcm;
  ScratchStore scratch;
  const PlanStore store(scratch.dir);
  const PlanKey key = make_plan_key(kernel, opt);

  const auto expect_perm_error = [&](core::ExecutionPlan&& bad) {
    ASSERT_TRUE(store.save(key, bad));
    const core::PlanLoadResult r = store.load(key);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error_code, "E-STORE-PERM") << r.detail;
    EXPECT_EQ(r.plan, nullptr);
  };

  {  // not a bijection: two nodes map to one slot
    core::ExecutionPlan bad = core::build_execution_plan(kernel, opt);
    ASSERT_FALSE(bad.perm.empty());
    std::vector<std::uint32_t> p(bad.perm.data(),
                                 bad.perm.data() + bad.perm.size());
    p.at(0) = p.at(1);
    bad.perm = inspector::U32Buf(std::move(p));
    expect_perm_error(std::move(bad));
  }
  {  // truncated: perm shorter than the node count
    core::ExecutionPlan bad = core::build_execution_plan(kernel, opt);
    std::vector<std::uint32_t> p(bad.perm.data(),
                                 bad.perm.data() + bad.perm.size() - 1);
    bad.perm = inspector::U32Buf(std::move(p));
    expect_perm_error(std::move(bad));
  }
}

TEST(PlanStore, MissingKeyIsOpenError) {
  ScratchStore scratch;
  const PlanStore store(scratch.dir);
  const auto kernel = make_kernel();
  const core::PlanLoadResult r =
      store.load(make_plan_key(kernel, plan_opts()));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error_code, "E-STORE-OPEN");
}

// Every corruption class must be a distinct coded rejection — never an
// exception, never a plan.
TEST(PlanStore, CorruptionClassesAreCodedRejections) {
  const auto kernel = make_kernel();
  const core::PlanOptions opt = plan_opts();
  const core::ExecutionPlan plan = core::build_execution_plan(kernel, opt);
  ScratchStore scratch;
  const PlanStore store(scratch.dir);
  const PlanKey key = make_plan_key(kernel, opt);
  ASSERT_TRUE(store.save(key, plan));
  const std::string path = store.path_for(key);
  const std::vector<std::byte> good = read_file(path);
  ASSERT_GE(good.size(), core::kPlanHeaderBytes);

  const auto expect_code = [&](const std::string& code) {
    const core::PlanLoadResult r = store.load(key);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.error_code, code) << r.detail;
    EXPECT_EQ(r.plan, nullptr);
    write_file(path, good);  // restore for the next case
  };

  // Truncated mid-payload.
  write_file(path, std::span(good).first(good.size() / 2));
  expect_code("E-STORE-TRUNC");

  // Truncated inside the header.
  write_file(path, std::span(good).first(32));
  expect_code("E-STORE-TRUNC");

  // Bad magic.
  {
    auto bad = good;
    bad[0] ^= std::byte{0xff};
    write_file(path, bad);
    expect_code("E-STORE-MAGIC");
  }

  // Unknown format version (offset 8: u32 format_version).
  {
    auto bad = good;
    bad[8] = std::byte{0x7f};
    write_file(path, bad);
    expect_code("E-STORE-VERSION");
  }

  // Foreign endianness (offset 12: u32 endian_tag). A little-endian
  // producer writes 04 03 02 01; a big-endian one writes the reverse.
  {
    auto bad = good;
    bad[12] = std::byte{0x01};
    bad[13] = std::byte{0x02};
    bad[14] = std::byte{0x03};
    bad[15] = std::byte{0x04};
    write_file(path, bad);
    expect_code("E-STORE-ENDIAN");
  }

  // Different verifier fingerprint (offset 16: u64).
  {
    auto bad = good;
    bad[16] ^= std::byte{0x01};
    write_file(path, bad);
    expect_code("E-STORE-VERIFIER");
  }

  // Payload bit-flip -> checksum mismatch (regardless of whether the
  // flipped bit would still parse or verify).
  {
    auto bad = good;
    bad[core::kPlanHeaderBytes + bad.size() / 3] ^= std::byte{0x10};
    write_file(path, bad);
    expect_code("E-STORE-CHECKSUM");
  }

  // Wrong identity: a valid file for a *different* kernel placed at this
  // key's path must be rejected before its payload is even parsed.
  {
    const auto other = make_kernel(99);
    const core::ExecutionPlan other_plan =
        core::build_execution_plan(other, opt);
    const PlanKey other_key = make_plan_key(other, opt);
    ASSERT_NE(other_key.content_hash, key.content_hash);
    write_file(path,
               core::serialize_plan(other_plan, other_key.content_hash));
    expect_code("E-STORE-KEY");
  }

  // After every restoration the original still loads.
  const core::PlanLoadResult ok = store.load(key);
  ASSERT_TRUE(ok.ok()) << ok.error_code;
  EXPECT_TRUE(core::plans_bit_identical(*ok.plan, plan));
}

// The committed corpus: every file under examples/plans/bad/ must be
// rejected with exactly the code its name declares (<code>-*.plan ->
// E-STORE-<CODE>), proving the corpus stays in sync with the decoder.
TEST(PlanStore, CommittedCorruptionCorpusIsRejected) {
  const fs::path dir =
      fs::path(EARTHRED_SOURCE_DIR) / "examples" / "plans" / "bad";
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::size_t seen = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".plan") continue;
    ++seen;
    const std::string stem = entry.path().stem().string();
    std::string code = stem.substr(0, stem.find('-'));
    for (char& c : code) c = static_cast<char>(std::toupper(c));
    const std::string expected = "E-STORE-" + code;
    const core::PlanLoadResult r =
        core::load_plan_file(entry.path().string());
    EXPECT_FALSE(r.ok()) << entry.path();
    EXPECT_EQ(r.error_code, expected) << entry.path() << ": " << r.detail;
    EXPECT_EQ(r.plan, nullptr) << entry.path();
  }
  EXPECT_GE(seen, 5u) << "corpus went missing from " << dir;
}

// The corpus's identity-mismatch case needs the store's key check: the
// keystore/ subdirectory holds a structurally valid plan filed under the
// all-zero content hash it does not have.
TEST(PlanStore, CommittedKeyMismatchCorpusIsRejected) {
  const std::string dir = (fs::path(EARTHRED_SOURCE_DIR) / "examples" /
                           "plans" / "bad" / "keystore")
                              .string();
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  const PlanStore store(dir);
  PlanKey key;
  key.content_hash = 0;
  key.num_procs = 4;
  key.k = 2;
  key.distribution = inspector::Distribution::Cyclic;
  key.block_cyclic_size = 16;
  ASSERT_TRUE(fs::exists(store.path_for(key))) << store.path_for(key);
  const core::PlanLoadResult r = store.load(key);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error_code, "E-STORE-KEY") << r.detail;
}

TEST(PlanCacheStore, WarmProcessServesFromDiskAndFallsBackOnCorruption) {
  const auto kernel = make_kernel();
  const core::PlanOptions opt = plan_opts();
  ScratchStore scratch;

  PlanKey key;
  // Process 1: cold build, persisted on the way out.
  {
    PlanCache::Config cfg;
    cfg.store = std::make_shared<PlanStore>(scratch.dir);
    PlanCache cache(cfg);
    PlanCache::Outcome how{};
    const PlanPtr p = cache.lookup_or_build(kernel, opt, {}, &how);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(how, PlanCache::Outcome::Built);
    EXPECT_EQ(cache.counters().persisted, 1u);
    key = make_plan_key(kernel, opt);
    EXPECT_TRUE(fs::exists(cfg.store->path_for(key)));
  }

  // Process 2 (fresh cache, same store): served by a zero-copy load.
  {
    PlanCache::Config cfg;
    cfg.store = std::make_shared<PlanStore>(scratch.dir);
    PlanCache cache(cfg);
    PlanCache::Outcome how{};
    const PlanPtr p = cache.lookup_or_build(kernel, opt, {}, &how);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(how, PlanCache::Outcome::DiskLoaded);
    EXPECT_EQ(cache.counters().disk_hits, 1u);
    EXPECT_EQ(cache.counters().disk_fallbacks, 0u);
    // Second request hits memory, not disk.
    const PlanPtr p2 = cache.lookup_or_build(kernel, opt, {}, &how);
    EXPECT_EQ(p2.get(), p.get());
    EXPECT_EQ(how, PlanCache::Outcome::Hit);
  }

  // Process 3: the stored file is corrupt -> counted fallback to a
  // rebuild; the client still gets a working plan and no error.
  {
    const PlanStore store(scratch.dir);
    const std::string path = store.path_for(key);
    auto bytes = read_file(path);
    bytes[core::kPlanHeaderBytes + 17] ^= std::byte{0x04};
    write_file(path, bytes);

    PlanCache::Config cfg;
    cfg.store = std::make_shared<PlanStore>(scratch.dir);
    PlanCache cache(cfg);
    PlanCache::Outcome how{};
    const PlanPtr p = cache.lookup_or_build(kernel, opt, {}, &how);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(how, PlanCache::Outcome::Built);
    EXPECT_EQ(cache.counters().disk_fallbacks, 1u);
    EXPECT_NE(cache.last_fallback_reason().find("E-STORE-"),
              std::string::npos)
        << cache.last_fallback_reason();
  }
}

}  // namespace
}  // namespace earthred::service
