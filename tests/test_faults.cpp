// Fault-injection and reliability tests: the seeded fault layer of the
// EARTH machine, the ReliableChannel ack/retransmit protocol, the
// quiescence watchdog, and end-to-end bit-exactness of the rotation
// engine under drops, corruption, duplication and delays.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "earth/machine.hpp"
#include "earth/reliable.hpp"
#include "kernels/fig1.hpp"
#include "mesh/generators.hpp"
#include "support/check.hpp"

namespace earthred {
namespace {

using earth::Cycles;
using earth::EarthMachine;
using earth::FiberContext;
using earth::FiberId;
using earth::MachineConfig;
using earth::MsgKind;

MachineConfig two_nodes() {
  MachineConfig cfg;
  cfg.num_nodes = 2;
  cfg.max_events = 10'000'000;
  return cfg;
}

// ------------------------------------------------------ fault primitives

TEST(FaultInjection, DropLosesRemoteSend) {
  MachineConfig cfg = two_nodes();
  cfg.fault.enabled = true;
  cfg.fault.drop = 1.0;
  EarthMachine m(cfg);
  const FiberId target = m.add_fiber(1, 1, [](FiberContext&) {}, "t");
  const FiberId sender = m.add_fiber(
      0, 0, [&](FiberContext& ctx) { ctx.send(target, 64); }, "s");
  m.credit(sender);
  m.run();
  EXPECT_EQ(m.fiber_activations(target), 0u);
  EXPECT_EQ(m.stats().faults.dropped, 1u);
}

TEST(FaultInjection, LocalMessagesAreNeverFaulted) {
  MachineConfig cfg = two_nodes();
  cfg.fault.enabled = true;
  cfg.fault.drop = 1.0;
  cfg.fault.corrupt = 1.0;
  EarthMachine m(cfg);
  const FiberId target = m.add_fiber(0, 1, [](FiberContext&) {}, "t");
  const FiberId sender = m.add_fiber(
      0, 0, [&](FiberContext& ctx) { ctx.send(target, 64); }, "s");
  m.credit(sender);
  m.run();
  EXPECT_EQ(m.fiber_activations(target), 1u);
  EXPECT_EQ(m.stats().faults.injected(), 0u);
}

TEST(FaultInjection, FilterRestrictsBySource) {
  MachineConfig cfg = two_nodes();
  cfg.fault.enabled = true;
  cfg.fault.drop = 1.0;
  cfg.fault.filter.src = 1;  // only messages leaving node 1 are eligible
  EarthMachine m(cfg);
  const FiberId target = m.add_fiber(1, 1, [](FiberContext&) {}, "t");
  const FiberId sender = m.add_fiber(
      0, 0, [&](FiberContext& ctx) { ctx.send(target, 64); }, "s");
  m.credit(sender);
  m.run();
  EXPECT_EQ(m.fiber_activations(target), 1u);
  EXPECT_EQ(m.stats().faults.injected(), 0u);
}

TEST(FaultInjection, DuplicateDeliversTwice) {
  MachineConfig cfg = two_nodes();
  cfg.fault.enabled = true;
  cfg.fault.duplicate = 1.0;
  EarthMachine m(cfg);
  int delivers = 0;
  const FiberId target = m.add_fiber(1, 1, [](FiberContext&) {}, "t");
  const FiberId sender = m.add_fiber(
      0, 0,
      [&](FiberContext& ctx) {
        ctx.send(target, 64, [&] { ++delivers; });
      },
      "s");
  m.credit(sender);
  m.run();
  EXPECT_EQ(delivers, 2);
  EXPECT_EQ(m.fiber_activations(target), 2u);
  EXPECT_EQ(m.stats().faults.duplicated, 1u);
}

TEST(FaultInjection, DelayAddsConfiguredLatency) {
  MachineConfig cfg = two_nodes();
  EarthMachine clean(cfg);
  cfg.fault.enabled = true;
  cfg.fault.delay = 1.0;
  cfg.fault.delay_cycles = 50'000;
  EarthMachine m(cfg);
  for (EarthMachine* mm : {&clean, &m}) {
    const FiberId target = mm->add_fiber(1, 1, [](FiberContext&) {}, "t");
    const FiberId sender = mm->add_fiber(
        0, 0, [&, target](FiberContext& ctx) { ctx.send(target, 64); },
        "s");
    mm->credit(sender);
  }
  const Cycles base = clean.run();
  const Cycles delayed = m.run();
  EXPECT_GE(delayed, base + 50'000);
  EXPECT_EQ(m.stats().faults.delayed, 1u);
}

TEST(FaultInjection, CorruptionFlagVisibleDuringDelivery) {
  MachineConfig cfg = two_nodes();
  cfg.fault.enabled = true;
  cfg.fault.corrupt = 1.0;
  EarthMachine m(cfg);
  bool saw_corrupt = false;
  const FiberId target = m.add_fiber(1, 1, [](FiberContext&) {}, "t");
  const FiberId sender = m.add_fiber(
      0, 0,
      [&](FiberContext& ctx) {
        ctx.send(target, 64, [&] { saw_corrupt = m.delivery_corrupted(); });
      },
      "s");
  m.credit(sender);
  m.run();
  EXPECT_TRUE(saw_corrupt);
  EXPECT_FALSE(m.delivery_corrupted());  // cleared outside deliveries
  EXPECT_EQ(m.fiber_activations(target), 1u);  // data still signals
  EXPECT_EQ(m.stats().faults.corrupted, 1u);
}

TEST(FaultInjection, DeadLinkSwallowsEverything) {
  MachineConfig cfg = two_nodes();
  cfg.fault.enabled = true;
  cfg.fault.dead_links.push_back({0, 1});
  EarthMachine m(cfg);
  const FiberId fwd = m.add_fiber(1, 1, [](FiberContext&) {}, "fwd");
  const FiberId rev = m.add_fiber(0, 1, [](FiberContext&) {}, "rev");
  const FiberId s0 = m.add_fiber(
      0, 0, [&](FiberContext& ctx) { ctx.send(fwd, 64); }, "s0");
  const FiberId s1 = m.add_fiber(
      1, 0, [&](FiberContext& ctx) { ctx.send(rev, 64); }, "s1");
  m.credit(s0);
  m.credit(s1);
  m.run();
  EXPECT_EQ(m.fiber_activations(fwd), 0u);  // 0->1 is dead
  EXPECT_EQ(m.fiber_activations(rev), 1u);  // 1->0 is fine
}

TEST(FaultInjection, SameSeedSameSchedule) {
  auto run_one = [](std::uint64_t seed) {
    MachineConfig cfg = two_nodes();
    cfg.fault.enabled = true;
    cfg.fault.seed = seed;
    cfg.fault.drop = 0.3;
    cfg.fault.duplicate = 0.3;
    cfg.fault.delay = 0.3;
    EarthMachine m(cfg);
    const FiberId target = m.add_fiber(1, 1, [](FiberContext&) {}, "t");
    const FiberId sender = m.add_fiber(
        0, 0,
        [&](FiberContext& ctx) {
          for (int i = 0; i < 50; ++i) ctx.send(target, 64);
        },
        "s");
    m.credit(sender);
    const Cycles mk = m.run();
    return std::tuple{mk, m.stats().faults.dropped,
                      m.stats().faults.duplicated,
                      m.stats().faults.delayed,
                      m.fiber_activations(target)};
  };
  EXPECT_EQ(run_one(7), run_one(7));
  EXPECT_NE(run_one(7), run_one(8));  // schedule is a function of the seed
}

// ------------------------------------------------------------- watchdog

TEST(Watchdog, LostMessageNamesTheStarvedFiber) {
  MachineConfig cfg = two_nodes();
  cfg.fault.enabled = true;
  cfg.fault.drop = 1.0;
  EarthMachine m(cfg);
  const FiberId target = m.add_fiber(1, 1, [](FiberContext&) {}, "starved");
  const FiberId sender = m.add_fiber(
      0, 0, [&](FiberContext& ctx) { ctx.send(target, 64); }, "s");
  m.credit(sender);
  m.expect_activations(target, 1);
  try {
    m.run();
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("starved"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("unsatisfied sync"),
              std::string::npos);
  }
}

TEST(Watchdog, SatisfiedExpectationsStaySilent) {
  MachineConfig cfg = two_nodes();
  EarthMachine m(cfg);
  const FiberId target = m.add_fiber(1, 1, [](FiberContext&) {}, "t");
  const FiberId sender = m.add_fiber(
      0, 0, [&](FiberContext& ctx) { ctx.send(target, 64); }, "s");
  m.credit(sender);
  m.expect_activations(target, 1);
  m.expect_activations(sender, 1);
  EXPECT_NO_THROW(m.run());
}

// ---------------------------------------------------------------- timers

TEST(Timer, FiresAfterDelay) {
  MachineConfig cfg;
  cfg.num_nodes = 1;
  EarthMachine m(cfg);
  const FiberId target = m.add_fiber(0, 1, [](FiberContext&) {}, "t");
  const FiberId starter = m.add_fiber(
      0, 0, [&](FiberContext& ctx) { ctx.timer(target, 100'000); }, "s");
  m.credit(starter);
  const Cycles mk = m.run();
  EXPECT_EQ(m.fiber_activations(target), 1u);
  EXPECT_GE(mk, 100'000u);
}

TEST(Timer, CancelledTimerLeavesNoTrace) {
  MachineConfig cfg;
  cfg.num_nodes = 1;
  EarthMachine m(cfg);
  auto gen = std::make_shared<std::uint64_t>(0);
  const FiberId target = m.add_fiber(0, 1, [](FiberContext&) {}, "t");
  const FiberId starter = m.add_fiber(
      0, 0,
      [&](FiberContext& ctx) {
        ctx.timer(target, 1'000'000, gen);
        ++*gen;  // cancel before it can fire
      },
      "s");
  m.credit(starter);
  const Cycles mk = m.run();
  EXPECT_EQ(m.fiber_activations(target), 0u);
  // The cancelled expiry must not drag the makespan out to the deadline.
  EXPECT_LT(mk, 1'000'000u);
}

TEST(Timer, RemoteTargetIsRejected) {
  MachineConfig cfg = two_nodes();
  EarthMachine m(cfg);
  const FiberId remote = m.add_fiber(1, 1, [](FiberContext&) {}, "r");
  const FiberId starter = m.add_fiber(
      0, 0, [&](FiberContext& ctx) { ctx.timer(remote, 10); }, "s");
  m.credit(starter);
  EXPECT_THROW(m.run(), precondition_error);
}

// ------------------------------------------------------ reliable channel

TEST(ReliableChannel, LossyLinkDeliversEverythingInOrder) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    MachineConfig cfg = two_nodes();
    cfg.fault.enabled = true;
    cfg.fault.seed = seed;
    cfg.fault.drop = 0.25;
    cfg.fault.corrupt = 0.15;
    cfg.fault.duplicate = 0.2;
    cfg.fault.delay = 0.3;
    EarthMachine m(cfg);
    std::vector<double> received;
    const FiberId sink =
        m.add_fiber(1, 1, [](FiberContext&) {}, "sink");
    // At these rates a full round trip succeeds well under half the time,
    // so the default 12-retry dead-link budget can legitimately exhaust;
    // a persistent-noise stress test needs a deeper budget.
    earth::ReliableOptions ropt;
    ropt.max_retries = 40;
    earth::ReliableChannel ch(
        m, 0, 1, sink,
        [&](const std::vector<double>& pl) {
          ASSERT_EQ(pl.size(), 3u);
          received.push_back(pl[0]);
        },
        "test-ch", ropt);
    constexpr int kMsgs = 25;
    const FiberId sender = m.add_fiber(
        0, 0,
        [&](FiberContext& ctx) {
          for (int i = 0; i < kMsgs; ++i) {
            const std::vector<double> payload{double(i), -double(i), 0.5};
            ch.send(ctx, payload.data(), payload.size());
          }
        },
        "sender");
    m.credit(sender);
    m.expect_activations(sink, kMsgs);
    m.run();
    ASSERT_EQ(received.size(), static_cast<std::size_t>(kMsgs));
    for (int i = 0; i < kMsgs; ++i) EXPECT_EQ(received[i], double(i));
    EXPECT_EQ(ch.stats().sent, static_cast<std::uint64_t>(kMsgs));
    // With these rates some recovery machinery must have engaged.
    EXPECT_GT(m.stats().faults.injected(), 0u);
  }
}

TEST(ReliableChannel, CorruptionIsDetectedNotAccepted) {
  MachineConfig cfg = two_nodes();
  cfg.fault.enabled = true;
  cfg.fault.corrupt = 0.5;
  EarthMachine m(cfg);
  std::vector<double> received;
  const FiberId sink = m.add_fiber(1, 1, [](FiberContext&) {}, "sink");
  // Corruption hits acks too; at 50% noise a round trip succeeds only a
  // quarter of the time, so give recovery a deep retry budget.
  earth::ReliableOptions ropt;
  ropt.max_retries = 40;
  earth::ReliableChannel ch(
      m, 0, 1, sink,
      [&](const std::vector<double>& pl) {
        received.insert(received.end(), pl.begin(), pl.end());
      },
      "cor-ch", ropt);
  const FiberId sender = m.add_fiber(
      0, 0,
      [&](FiberContext& ctx) {
        for (int i = 0; i < 20; ++i) {
          const double v = 1.0 + i;
          ch.send(ctx, &v, 1);
        }
      },
      "sender");
  m.credit(sender);
  m.expect_activations(sink, 20);
  m.run();
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[i], 1.0 + i);
  EXPECT_GT(ch.stats().rejected_corrupt, 0u);  // damage was caught, never
                                               // silently applied
}

TEST(ReliableChannel, DeadLinkRaisesCheckErrorNamingTheChannel) {
  MachineConfig cfg = two_nodes();
  cfg.fault.enabled = true;
  cfg.fault.dead_links.push_back({0, 1});
  EarthMachine m(cfg);
  const FiberId sink = m.add_fiber(1, 1, [](FiberContext&) {}, "sink");
  earth::ReliableOptions ropt;
  ropt.ack_timeout = 1'000;  // tight, so the test finishes in microseconds
  ropt.max_retries = 3;
  earth::ReliableChannel tight(
      m, 0, 1, sink, [](const std::vector<double>&) {}, "doomed-tight",
      ropt);
  const FiberId sender = m.add_fiber(
      0, 0,
      [&](FiberContext& ctx) {
        const double v = 42.0;
        tight.send(ctx, &v, 1);
      },
      "sender");
  m.credit(sender);
  try {
    m.run();
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("doomed-tight"), std::string::npos) << what;
    EXPECT_NE(what.find("dead link"), std::string::npos) << what;
  }
}

// ----------------------------------------------- engine under injection

core::RotationOptions faulty_rotation(std::uint32_t procs, std::uint32_t k,
                                      std::uint64_t seed) {
  core::RotationOptions opt;
  opt.num_procs = procs;
  opt.k = k;
  opt.sweeps = 4;
  opt.machine.max_events = 50'000'000;
  opt.machine.fault.enabled = true;
  opt.machine.fault.seed = seed;
  opt.machine.fault.drop = 0.05;
  opt.machine.fault.corrupt = 0.03;
  opt.machine.fault.duplicate = 0.05;
  opt.machine.fault.delay = 0.1;
  opt.reliable = true;
  return opt;
}

TEST(RotationUnderFaults, BitExactAcrossSeedsAndShapes) {
  // Integer-valued Y keeps the reduction order-independent in floating
  // point, so recovery must reproduce the sequential result *bitwise*
  // whatever the fault schedule reorders or retransmits.
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({96, 400, 5}));
  core::SequentialOptions sopt;
  sopt.sweeps = 4;
  const core::RunResult seq = core::run_sequential_kernel(kernel, sopt);

  for (const std::uint32_t procs : {2u, 4u}) {
    for (const std::uint32_t k : {1u, 2u}) {
      for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
        const core::RunResult par = core::run_rotation_engine(
            kernel, faulty_rotation(procs, k, seed));
        EXPECT_GT(par.machine.faults.injected(), 0u)
            << "P=" << procs << " k=" << k << " seed=" << seed;
        ASSERT_EQ(par.reduction.size(), seq.reduction.size());
        for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
          ASSERT_EQ(par.reduction[0][i], seq.reduction[0][i])
              << "P=" << procs << " k=" << k << " seed=" << seed
              << " element " << i;
      }
    }
  }
}

TEST(RotationUnderFaults, SameSeedIsFullyDeterministic) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({64, 256, 9}));
  auto opt = faulty_rotation(3, 2, 77);
  opt.machine.trace = true;
  const core::RunResult a = core::run_rotation_engine(kernel, opt);
  const core::RunResult b = core::run_rotation_engine(kernel, opt);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.machine.faults.dropped, b.machine.faults.dropped);
  EXPECT_EQ(a.machine.faults.corrupted, b.machine.faults.corrupted);
  EXPECT_EQ(a.machine.faults.duplicated, b.machine.faults.duplicated);
  EXPECT_EQ(a.machine.faults.delayed, b.machine.faults.delayed);
  EXPECT_EQ(a.reliable.retransmits, b.reliable.retransmits);
  EXPECT_EQ(a.reliable.acks_sent, b.reliable.acks_sent);
  EXPECT_EQ(a.gantt, b.gantt);  // identical schedule, event for event
  EXPECT_EQ(a.reduction, b.reduction);
}

TEST(RotationUnderFaults, UnprotectedDropTripsTheWatchdog) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({64, 256, 9}));
  auto opt = faulty_rotation(4, 2, 5);
  opt.machine.fault.drop = 0.3;
  opt.reliable = false;  // raw sends: losses must be *diagnosed*
  try {
    core::run_rotation_engine(kernel, opt);
    FAIL() << "expected check_error from the quiescence watchdog";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("compute["), std::string::npos)
        << e.what();
  }
}

TEST(RotationUnderFaults, ReliableAtZeroFaultRateStaysCorrect) {
  // The protocol must be a pure overlay: no faults, same bits.
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({96, 400, 5}));
  core::SequentialOptions sopt;
  sopt.sweeps = 3;
  const core::RunResult seq = core::run_sequential_kernel(kernel, sopt);
  core::RotationOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 3;
  opt.machine.max_events = 50'000'000;
  opt.reliable = true;
  const core::RunResult par = core::run_rotation_engine(kernel, opt);
  EXPECT_EQ(par.reliable.retransmits, 0u);
  EXPECT_GT(par.reliable.sent, 0u);
  for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
    ASSERT_EQ(par.reduction[0][i], seq.reduction[0][i]);
}

}  // namespace
}  // namespace earthred
