// The lowering-strategy layer end to end: the explainable cost model and
// its golden picks, the forced-strategy executor contracts (phased and
// privatized are deterministic and bit-identical to their per-edge
// reference; atomic is tolerance-reproducible and excluded from every
// bit-identity gate), service admission (E-STRATEGY-UNSUPPORTED, the
// privatized replica-byte budget, per-strategy served counters), the
// plan-cache/store key fork, and the compiler's static strategy pass
// (E-STRATEGY-EXTENT-MIX, W-STRATEGY-DUP-SCATTER, W-STRATEGY-ATOMIC-FP,
// I-STRATEGY-* explain notes).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "compiler/strategy.hpp"
#include "core/native_engine.hpp"
#include "core/plan_io.hpp"
#include "core/sequential.hpp"
#include "core/strategy.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "mesh/mesh.hpp"
#include "service/job_builder.hpp"
#include "service/job_scheduler.hpp"
#include "service/plan_cache.hpp"
#include "service/plan_store.hpp"
#include "support/check.hpp"

namespace earthred {
namespace {

using core::StrategyCost;
using core::StrategyInputs;
using core::StrategyKind;

/// Clears EARTHRED_FORCE_STRATEGY for the test's lifetime and restores it
/// after, so tests of the *unforced* resolution path stay correct when
/// CI's strategy-matrix job exports the variable around the whole suite.
struct EnvGuard {
  std::optional<std::string> saved;
  EnvGuard() {
    if (const char* v = std::getenv("EARTHRED_FORCE_STRATEGY")) saved = v;
    unsetenv("EARTHRED_FORCE_STRATEGY");
  }
  ~EnvGuard() {
    if (saved)
      setenv("EARTHRED_FORCE_STRATEGY", saved->c_str(), 1);
    else
      unsetenv("EARTHRED_FORCE_STRATEGY");
  }
};

// ---- the cost model ----------------------------------------------------

TEST(StrategyModel, ParseAndToStringRoundTrip) {
  for (const StrategyKind k :
       {StrategyKind::Auto, StrategyKind::Phased, StrategyKind::Privatized,
        StrategyKind::Atomic})
    EXPECT_EQ(core::parse_strategy(core::to_string(k)), k);
  EXPECT_EQ(core::parse_strategy("rotation"), StrategyKind::Phased);
  EXPECT_EQ(core::parse_strategy("private"), StrategyKind::Privatized);
  try {
    core::parse_strategy("bogus");
    FAIL() << "expected E-STRATEGY-NAME";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("E-STRATEGY-NAME"),
              std::string::npos)
        << e.what();
  }
}

TEST(StrategyModel, ScoresComeInFixedOrderWithRationales) {
  StrategyInputs in;
  in.num_nodes = 1000;
  in.num_edges = 5000;
  in.num_refs = 2;
  in.num_procs = 4;
  in.k = 2;
  const std::vector<StrategyCost> scores = core::score_strategies(in);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_EQ(scores[0].strategy, StrategyKind::Phased);
  EXPECT_EQ(scores[1].strategy, StrategyKind::Privatized);
  EXPECT_EQ(scores[2].strategy, StrategyKind::Atomic);
  for (const StrategyCost& c : scores) {
    EXPECT_GT(c.cost_per_edge, 0.0);
    EXPECT_FALSE(c.rationale.empty());
  }
  // Atomic is opt-in only for real accumulators...
  EXPECT_FALSE(scores[2].auto_eligible);
  // ...but eligible for integer ones (exact sums commute).
  in.fp_accumulators = false;
  EXPECT_TRUE(core::score_strategies(in)[2].auto_eligible);
}

TEST(StrategyModel, AutoNeverPicksAtomicForFpAccumulators) {
  // A shape where the CAS scatter is numerically the cheapest: tiny edge
  // count against a huge element space makes rotation and merge traffic
  // dominate both alternatives.
  StrategyInputs in;
  in.num_nodes = 100000;
  in.num_edges = 1000;
  in.num_refs = 1;
  in.num_procs = 8;
  in.k = 2;
  const std::vector<StrategyCost> scores = core::score_strategies(in);
  EXPECT_LT(scores[2].cost_per_edge, scores[0].cost_per_edge);
  EXPECT_LT(scores[2].cost_per_edge, scores[1].cost_per_edge);
  EXPECT_NE(core::choose_strategy(in), StrategyKind::Atomic);
  if (core::strategy_supported(StrategyKind::Atomic)) {
    in.fp_accumulators = false;
    EXPECT_EQ(core::choose_strategy(in), StrategyKind::Atomic);
  }
}

TEST(StrategyModel, GoldenPicksAcrossShapes) {
  // The golden table the docs cite: small meshes are sync-dominated
  // (privatized's 3 barriers beat the rotation's 2*k*P^2 handoffs), large
  // meshes amortize the rotation and the phased engine wins.
  const auto pick = [](std::uint64_t nodes, std::uint64_t edges,
                       std::uint32_t procs, std::uint32_t k) {
    StrategyInputs in;
    in.num_nodes = nodes;
    in.num_edges = edges;
    in.num_refs = 2;
    in.num_procs = procs;
    in.k = k;
    return core::choose_strategy(in);
  };
  EXPECT_EQ(pick(100, 600, 4, 2), StrategyKind::Privatized);
  EXPECT_EQ(pick(1000, 5000, 4, 2), StrategyKind::Phased);
  EXPECT_EQ(pick(400000, 2400000, 8, 2), StrategyKind::Phased);
}

TEST(StrategyModel, ContentionSkewOnlyPenalizesAtomic) {
  StrategyInputs in;
  in.num_nodes = 1000;
  in.num_edges = 5000;
  in.num_refs = 2;
  in.num_procs = 4;
  in.k = 2;
  const std::vector<StrategyCost> flat = core::score_strategies(in);
  in.fanin_cv = 3.0;  // hot elements
  const std::vector<StrategyCost> skewed = core::score_strategies(in);
  EXPECT_EQ(flat[0].cost_per_edge, skewed[0].cost_per_edge);
  EXPECT_EQ(flat[1].cost_per_edge, skewed[1].cost_per_edge);
  EXPECT_GT(skewed[2].cost_per_edge, flat[2].cost_per_edge);
}

TEST(StrategyModel, EnvOverrideAppliesOnlyToAuto) {
  EnvGuard guard;
  EXPECT_EQ(core::effective_strategy(StrategyKind::Auto),
            StrategyKind::Auto);
  setenv("EARTHRED_FORCE_STRATEGY", "privatized", 1);
  EXPECT_EQ(core::effective_strategy(StrategyKind::Auto),
            StrategyKind::Privatized);
  // An explicit request always wins over the environment.
  EXPECT_EQ(core::effective_strategy(StrategyKind::Phased),
            StrategyKind::Phased);
  unsetenv("EARTHRED_FORCE_STRATEGY");
}

TEST(StrategyModel, ReplicaBytesBudgetFormula) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({96, 500, 21}));
  const core::KernelShape shape = kernel.shape();
  EXPECT_EQ(core::privatized_replica_bytes(shape, 4),
            4ull * shape.num_nodes * shape.num_reduction_arrays *
                sizeof(double));
}

// ---- the executors -----------------------------------------------------

struct NamedKernel {
  std::string name;
  bool exact;  ///< integer-valued: FP sums commute without rounding
  std::unique_ptr<const core::PhasedKernel> kernel;
};

std::vector<NamedKernel> make_kernels() {
  std::vector<NamedKernel> ks;
  ks.push_back({"fig1", true,
                std::make_unique<kernels::Fig1Kernel>(
                    kernels::Fig1Kernel::with_integer_values(
                        mesh::make_geometric_mesh({96, 500, 21})))});
  ks.push_back({"euler", false,
                std::make_unique<kernels::EulerKernel>(
                    mesh::make_geometric_mesh({160, 700, 8}))});
  ks.push_back({"moldyn", false,
                std::make_unique<kernels::MoldynKernel>(
                    mesh::make_moldyn_lattice({3, 300, 0.03, 2}))});
  return ks;
}

void expect_identical(const core::NativeResult& a,
                      const core::NativeResult& b, const std::string& what) {
  ASSERT_EQ(a.reduction.size(), b.reduction.size()) << what;
  for (std::size_t arr = 0; arr < a.reduction.size(); ++arr)
    for (std::size_t i = 0; i < a.reduction[arr].size(); ++i)
      ASSERT_EQ(a.reduction[arr][i], b.reduction[arr][i])
          << what << " reduction[" << arr << "][" << i << "]";
  for (std::size_t arr = 0; arr < a.node_read.size(); ++arr)
    for (std::size_t i = 0; i < a.node_read[arr].size(); ++i)
      ASSERT_EQ(a.node_read[arr][i], b.node_read[arr][i])
          << what << " node_read[" << arr << "][" << i << "]";
}

void expect_near(const core::NativeResult& a, const core::NativeResult& b,
                 double tol, const std::string& what) {
  ASSERT_EQ(a.reduction.size(), b.reduction.size()) << what;
  for (std::size_t arr = 0; arr < a.reduction.size(); ++arr)
    for (std::size_t i = 0; i < a.reduction[arr].size(); ++i)
      ASSERT_NEAR(a.reduction[arr][i], b.reduction[arr][i], tol)
          << what << " reduction[" << arr << "][" << i << "]";
}

TEST(StrategyExec, ForcedStrategiesBitIdenticalToPerEdgeReference) {
  // The acceptance gate: a forced phased or privatized run — batched or
  // per-edge — is bit-identical to that strategy's per-edge reference
  // across kernels x distributions x k. On the integer-exact kernel the
  // two strategies additionally agree with *each other* bit for bit
  // (summation order cannot round); on real-valued kernels the privatized
  // fold legally reassociates the sums, so cross-strategy agreement is
  // checked to tolerance instead.
  for (const NamedKernel& nk : make_kernels()) {
    for (const auto dist : {inspector::Distribution::Block,
                            inspector::Distribution::Cyclic,
                            inspector::Distribution::BlockCyclic}) {
      for (const std::uint32_t k : {1u, 2u}) {
        const std::string where =
            nk.name + " dist=" + std::to_string(static_cast<int>(dist)) +
            " k=" + std::to_string(k);
        std::vector<core::NativeResult> per_edge;
        for (const StrategyKind s :
             {StrategyKind::Phased, StrategyKind::Privatized}) {
          core::PlanOptions popt;
          popt.num_procs = 4;
          popt.k = k;
          popt.distribution = dist;
          popt.strategy = s;
          const core::ExecutionPlan plan =
              core::build_execution_plan(*nk.kernel, popt);

          core::SweepOptions sopt;
          sopt.sweeps = 3;
          sopt.batch = false;
          const core::NativeResult edge =
              core::run_native_plan(*nk.kernel, plan, sopt);
          EXPECT_EQ(edge.strategy, s) << where;
          sopt.batch = true;
          const core::NativeResult batch =
              core::run_native_plan(*nk.kernel, plan, sopt);
          EXPECT_EQ(batch.strategy, s) << where;
          expect_identical(
              edge, batch,
              where + " " + std::string(core::to_string(s)) +
                  " batch vs per-edge");
          per_edge.push_back(edge);
        }
        if (nk.exact)
          expect_identical(per_edge[0], per_edge[1],
                           where + " phased vs privatized");
        else
          expect_near(per_edge[0], per_edge[1], 1e-9,
                      where + " phased vs privatized");
      }
    }
  }
}

TEST(StrategyExec, PrivatizedRepeatedRunsAreDeterministic) {
  // The fixed worker-ascending fold makes privatized results independent
  // of thread timing even for real accumulators.
  const kernels::EulerKernel kernel(mesh::make_geometric_mesh({160, 700, 8}));
  core::PlanOptions popt;
  popt.num_procs = 4;
  popt.k = 2;
  popt.strategy = StrategyKind::Privatized;
  const core::ExecutionPlan plan = core::build_execution_plan(kernel, popt);
  core::SweepOptions sopt;
  sopt.sweeps = 4;
  const core::NativeResult a = core::run_native_plan(kernel, plan, sopt);
  const core::NativeResult b = core::run_native_plan(kernel, plan, sopt);
  expect_identical(a, b, "privatized repeat");
}

TEST(StrategyExec, AtomicIsToleranceReproducible) {
  if (!core::strategy_supported(StrategyKind::Atomic))
    GTEST_SKIP() << "atomic_ref<double> not lock-free on this host";
  for (const NamedKernel& nk : make_kernels()) {
    core::PlanOptions popt;
    popt.num_procs = 4;
    popt.k = 2;
    popt.strategy = StrategyKind::Atomic;
    const core::ExecutionPlan plan =
        core::build_execution_plan(*nk.kernel, popt);
    core::SweepOptions sopt;
    sopt.sweeps = 3;
    const core::NativeResult r =
        core::run_native_plan(*nk.kernel, plan, sopt);
    EXPECT_EQ(r.strategy, StrategyKind::Atomic);
    // The batched phase loops are unavailable on the atomic path, so the
    // backend must report Scalar regardless of the batch flag.
    EXPECT_EQ(r.backend, core::BackendKind::Scalar);

    core::SequentialOptions seq_opt;
    seq_opt.sweeps = 3;
    const core::RunResult seq =
        core::run_sequential_kernel(*nk.kernel, seq_opt);
    for (std::size_t arr = 0; arr < seq.reduction.size(); ++arr)
      for (std::size_t i = 0; i < seq.reduction[arr].size(); ++i) {
        if (nk.exact)  // integer sums commute exactly even under CAS
          ASSERT_EQ(r.reduction[arr][i], seq.reduction[arr][i]) << nk.name;
        else
          ASSERT_NEAR(r.reduction[arr][i], seq.reduction[arr][i], 1e-9)
              << nk.name;
      }
  }
}

TEST(StrategyExec, AutoResolvesToConcreteStrategy) {
  EnvGuard guard;
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      mesh::make_geometric_mesh({96, 500, 21}));
  core::NativeOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 2;
  const core::NativeResult r = core::run_native_engine(kernel, opt);
  EXPECT_NE(r.strategy, StrategyKind::Auto);
  EXPECT_EQ(r.strategy,
            core::resolve_strategy(
                StrategyKind::Auto,
                core::strategy_inputs(kernel.shape(), 4, 2)));
}

// ---- service admission and counters ------------------------------------

std::shared_ptr<kernels::Fig1Kernel> small_kernel() {
  return std::make_shared<kernels::Fig1Kernel>(
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({100, 600, 11})));
}

core::PlanOptions plan_opts(std::uint32_t P, std::uint32_t k) {
  core::PlanOptions opt;
  opt.num_procs = P;
  opt.k = k;
  return opt;
}

TEST(StrategyService, ForcedPrivatizedOverBudgetIsRejected) {
  // The follow-up auto job must resolve through the cost model (never
  // rejected); clear the CI matrix env so it cannot become an
  // effectively-forced privatized request against the tiny budget.
  const EnvGuard guard;
  service::JobScheduler::Config cfg;
  cfg.workers = 1;
  cfg.max_replica_bytes = 16;  // nothing real fits
  service::JobScheduler sched(cfg);

  service::JobRequest req;
  req.kernel = small_kernel();
  req.name = "over-budget";
  req.plan = plan_opts(4, 2);
  req.plan.strategy = StrategyKind::Privatized;
  const service::JobHandle h = sched.submit(std::move(req));
  const service::JobOutcome& o = h.wait();
  EXPECT_EQ(o.state, service::JobState::Rejected);
  EXPECT_NE(o.error.find("E-STRATEGY-UNSUPPORTED"), std::string::npos)
      << o.error;
  EXPECT_EQ(sched.stats().rejected_strategy, 1u);

  // Auto never rejects: the cost model steers around the budget.
  service::JobRequest ok;
  ok.kernel = small_kernel();
  ok.plan = plan_opts(4, 2);
  const service::JobHandle h2 = sched.submit(std::move(ok));
  const service::JobOutcome& o2 = h2.wait();
  EXPECT_EQ(o2.state, service::JobState::Done) << o2.error;
}

TEST(StrategyService, ServedCountersTallyPerStrategy) {
  service::JobScheduler sched;
  std::vector<StrategyKind> kinds = {StrategyKind::Phased,
                                     StrategyKind::Privatized};
  if (core::strategy_supported(StrategyKind::Atomic))
    kinds.push_back(StrategyKind::Atomic);
  for (const StrategyKind s : kinds) {
    service::JobRequest req;
    req.kernel = small_kernel();
    req.name = std::string(core::to_string(s));
    req.plan = plan_opts(4, 2);
    req.plan.strategy = s;
    const service::JobHandle h = sched.submit(std::move(req));
  const service::JobOutcome& o = h.wait();
    ASSERT_EQ(o.state, service::JobState::Done) << o.error;
    EXPECT_EQ(o.strategy, s);
  }
  const service::ServiceStats s = sched.stats();
  EXPECT_EQ(s.served_phased, 1u);
  EXPECT_EQ(s.served_privatized, 1u);
  if (core::strategy_supported(StrategyKind::Atomic))
    EXPECT_EQ(s.served_atomic, 1u);
  EXPECT_EQ(s.rejected_strategy, 0u);
}

TEST(StrategyService, BuilderParsesStrategyJobKey) {
  service::JobBuilder builder;
  const service::JobBuild b = builder.build(
      "kernel=fig1 nodes=100 edges=500 procs=4 k=2 strategy=privatized");
  ASSERT_TRUE(b.ok()) << b.code << ": " << b.detail;
  ASSERT_EQ(b.requests.size(), 1u);
  EXPECT_EQ(b.requests[0].plan.strategy, StrategyKind::Privatized);

  const service::JobBuild bad = builder.build(
      "kernel=fig1 nodes=100 edges=500 strategy=bogus");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code, "E-JOB-VALUE") << bad.detail;
}

// ---- plan cache / store identity ---------------------------------------

TEST(StrategyPlans, KeyAndStoreForkOnForcedStrategy) {
  const auto kernel = *small_kernel();
  core::PlanOptions auto_opt = plan_opts(4, 2);
  core::PlanOptions forced_opt = plan_opts(4, 2);
  forced_opt.strategy = StrategyKind::Privatized;

  const service::PlanKey auto_key = service::make_plan_key(kernel, auto_opt);
  const service::PlanKey forced_key =
      service::make_plan_key(kernel, forced_opt);
  EXPECT_NE(auto_key, forced_key);
  EXPECT_EQ(auto_key.content_hash, forced_key.content_hash);

  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "earthred-test-strategy-store").string();
  fs::remove_all(dir);
  const service::PlanStore store(dir);
  // Forked paths: the two keys can never clobber each other on disk.
  EXPECT_NE(store.path_for(auto_key), store.path_for(forced_key));

  const core::ExecutionPlan plan =
      core::build_execution_plan(kernel, forced_opt);
  std::string error;
  ASSERT_TRUE(store.save(forced_key, plan, &error)) << error;
  const core::PlanLoadResult r = store.load(forced_key);
  ASSERT_TRUE(r.ok()) << r.error_code << ": " << r.detail;
  EXPECT_EQ(r.plan->options.strategy, StrategyKind::Privatized);

  // The header persists the request so identity checks can reject a
  // strategy-mismatched file.
  std::string code, detail;
  const auto header =
      core::read_plan_header(store.path_for(forced_key), &code, &detail);
  ASSERT_TRUE(header.has_value()) << code << ": " << detail;
  EXPECT_EQ(header->strategy,
            static_cast<std::uint32_t>(StrategyKind::Privatized));
  fs::remove_all(dir);
}

// ---- the compiler pass -------------------------------------------------

constexpr const char* kFig1Source = R"(
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA1[num_edges];
array int  IA2[num_edges];
array real Y[num_edges];

forall (i : 0 .. num_edges) {
  X[IA1[i]] += Y[i] * 2.0;
  X[IA2[i]] += Y[i] * 2.0;
}
)";

TEST(StrategyPass, ExtentMixIsAnError) {
  const compiler::CheckReport report = compiler::check_source(R"(
param num_nodes, num_cells, num_edges;
array real X[num_nodes];
array real C[num_cells];
array int  IA[num_edges];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  X[IA[e]] += Y[e];
  C[IA[e]] += Y[e];
}
)");
  ASSERT_TRUE(report.has_errors());
  EXPECT_NE(report.first_error().find("E-STRATEGY-EXTENT-MIX"),
            std::string::npos)
      << report.first_error();
}

TEST(StrategyPass, DuplicateScatterWarns) {
  const compiler::CheckReport report = compiler::check_source(R"(
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA[num_edges];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  X[IA[e]] += Y[e];
  X[IA[e]] += Y[e] * 0.5;
}
)");
  EXPECT_FALSE(report.has_errors());
  ASSERT_EQ(report.warning_count(), 1u);
  bool found = false;
  for (const Diagnostic& d : report.diagnostics)
    found = found || d.code == "W-STRATEGY-DUP-SCATTER";
  EXPECT_TRUE(found);
}

TEST(StrategyPass, ForcedAtomicOnFpChainsWarns) {
  compiler::StrategyContext ctx;
  ctx.forced = StrategyKind::Atomic;
  const compiler::StrategyReport sr =
      compiler::check_source_with_strategies(kFig1Source, ctx);
  EXPECT_FALSE(sr.check.has_errors());
  bool warned = false;
  for (const Diagnostic& d : sr.check.diagnostics)
    warned = warned || d.code == "W-STRATEGY-ATOMIC-FP";
  EXPECT_TRUE(warned);
  ASSERT_EQ(sr.lowering.loops.size(), 1u);
  EXPECT_EQ(sr.lowering.loops[0].chosen, StrategyKind::Atomic);
  EXPECT_NE(sr.lowering.loops[0].rationale.find("forced"),
            std::string::npos);
}

TEST(StrategyPass, ExplainNotesAreOptIn) {
  compiler::StrategyContext quiet;
  const compiler::StrategyReport silent =
      compiler::check_source_with_strategies(kFig1Source, quiet);
  EXPECT_TRUE(silent.check.diagnostics.empty())
      << silent.check.render();  // the golden-corpus contract

  compiler::StrategyContext ctx;
  ctx.explain = true;
  const compiler::StrategyReport sr =
      compiler::check_source_with_strategies(kFig1Source, ctx);
  std::size_t chain = 0, cost = 0, choice = 0;
  for (const Diagnostic& d : sr.check.diagnostics) {
    chain += d.code == "I-STRATEGY-CHAIN";
    cost += d.code == "I-STRATEGY-COST";
    choice += d.code == "I-STRATEGY-CHOICE";
  }
  EXPECT_EQ(chain, 1u);   // one classified chain: X via {IA1,IA2}
  EXPECT_EQ(cost, 3u);    // all three strategies scored
  EXPECT_EQ(choice, 1u);  // one decision per loop

  ASSERT_EQ(sr.lowering.loops.size(), 1u);
  const compiler::LoopStrategy& ls = sr.lowering.loops[0];
  EXPECT_TRUE(ls.legal);
  ASSERT_EQ(ls.chains.size(), 1u);
  EXPECT_EQ(ls.chains[0].array, "X");
  EXPECT_EQ(ls.chains[0].updates_per_iteration, 2u);
  EXPECT_EQ(ls.chains[0].elem, compiler::ElemType::Real);
  ASSERT_EQ(ls.scores.size(), 3u);
  EXPECT_FALSE(ls.rationale.empty());
  EXPECT_NE(sr.lowering.render().find("strategy="), std::string::npos);
}

TEST(StrategyPass, IllegalLoopsAreNotScored) {
  const compiler::StrategyReport sr =
      compiler::check_source_with_strategies(R"(
param num_nodes, num_edges;
array real X[num_nodes];
array int  IA[num_edges];
array real Y[num_edges];

forall (e : 0 .. num_edges) {
  X[IA[e]] += Y[e] + X[IA[e]];
}
)",
                                             compiler::StrategyContext{});
  EXPECT_TRUE(sr.check.has_errors());
  ASSERT_EQ(sr.lowering.loops.size(), 1u);
  EXPECT_FALSE(sr.lowering.loops[0].legal);
  EXPECT_TRUE(sr.lowering.loops[0].scores.empty());
  EXPECT_NE(sr.lowering.loops[0].rationale.find("not scored"),
            std::string::npos);
}

TEST(StrategyPass, MeshStatsFeedTheContentionTerm) {
  const mesh::Mesh m = mesh::make_geometric_mesh({96, 500, 21});
  const compiler::MeshStats stats = compiler::mesh_stats_from_degrees(
      mesh::node_degrees(m), m.num_edges());
  EXPECT_TRUE(stats.bound());
  EXPECT_EQ(stats.num_nodes, 96u);
  EXPECT_EQ(stats.num_edges, 500u);
  EXPECT_GT(stats.mean_degree, 0.0);
  EXPECT_GE(stats.degree_cv, 0.0);

  // Uniform degrees have zero skew; one hot node does not.
  const compiler::MeshStats uniform =
      compiler::mesh_stats_from_degrees({4, 4, 4, 4}, 8);
  EXPECT_EQ(uniform.degree_cv, 0.0);
  const compiler::MeshStats hot =
      compiler::mesh_stats_from_degrees({13, 1, 1, 1}, 8);
  EXPECT_GT(hot.degree_cv, 1.0);
}

}  // namespace
}  // namespace earthred
