// Randomized end-to-end property tests: random DSL programs are compiled,
// fissioned, bound to random data, executed through every engine on random
// machine shapes, and checked against direct interpretation. This
// exercises the full pipeline the way a fuzzer would, with a fixed seed
// for reproducibility.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "core/classic_engine.hpp"
#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "support/prng.hpp"
#include "support/str.hpp"

namespace earthred {
namespace {

struct RandomProgram {
  std::string source;
  compiler::DataEnv env;
};

/// Generates a random but always-valid DSL program: 1-3 reduction arrays,
/// 1-3 indirection arrays, 0-2 gather arrays, 0-2 edge arrays, 1-2 scalar
/// temps, 2-6 accumulate statements. Values are small integers so all
/// reductions are exact in floating point.
RandomProgram make_random_program(Xoshiro256& rng) {
  const auto n_red = static_cast<int>(rng.range(1, 3));
  const auto n_ind = static_cast<int>(rng.range(1, 3));
  const auto n_gather = static_cast<int>(rng.range(0, 2));
  const auto n_edge = static_cast<int>(rng.range(0, 2));
  const auto n_scalar = static_cast<int>(rng.range(0, 2));
  const auto n_stmt = static_cast<int>(rng.range(2, 6));
  const auto nodes = static_cast<std::uint32_t>(rng.range(16, 80));
  const auto edges = static_cast<std::uint32_t>(rng.range(20, 300));

  std::string src = "param N, M;\n";
  RandomProgram out;
  out.env.params["N"] = nodes;
  out.env.params["M"] = edges;

  for (int i = 0; i < n_red; ++i)
    src += "array real R" + std::to_string(i) + "[N];\n";
  for (int i = 0; i < n_gather; ++i) {
    src += "array real G" + std::to_string(i) + "[N];\n";
    std::vector<double> g;
    for (std::uint32_t v = 0; v < nodes; ++v)
      g.push_back(static_cast<double>(rng.range(-4, 4)));
    out.env.real_arrays["G" + std::to_string(i)] = std::move(g);
  }
  for (int i = 0; i < n_ind; ++i) {
    src += "array int I" + std::to_string(i) + "[M];\n";
    std::vector<std::uint32_t> ia;
    for (std::uint32_t e = 0; e < edges; ++e)
      ia.push_back(static_cast<std::uint32_t>(rng.below(nodes)));
    out.env.int_arrays["I" + std::to_string(i)] = std::move(ia);
  }
  for (int i = 0; i < n_edge; ++i) {
    src += "array real E" + std::to_string(i) + "[M];\n";
    std::vector<double> ev;
    for (std::uint32_t e = 0; e < edges; ++e)
      ev.push_back(static_cast<double>(rng.range(-3, 3)));
    out.env.real_arrays["E" + std::to_string(i)] = std::move(ev);
  }

  // Random small-integer expression over the available operands.
  const auto rand_expr = [&](int allow_scalars) {
    std::vector<std::string> atoms;
    atoms.push_back(std::to_string(rng.range(1, 5)) + ".0");
    for (int i = 0; i < n_edge; ++i)
      atoms.push_back("E" + std::to_string(i) + "[i]");
    for (int g = 0; g < n_gather; ++g)
      atoms.push_back("G" + std::to_string(g) + "[I" +
                      std::to_string(rng.below(static_cast<std::uint64_t>(n_ind))) + "[i]]");
    for (int s = 0; s < allow_scalars; ++s)
      atoms.push_back("t" + std::to_string(s));
    std::string e = atoms[rng.below(atoms.size())];
    const auto n_terms = static_cast<int>(rng.range(0, 2));
    for (int t = 0; t < n_terms; ++t) {
      const char* ops[] = {" + ", " - ", " * "};
      e += ops[rng.below(3)];
      e += atoms[rng.below(atoms.size())];
    }
    return e;
  };

  src += "forall (i : 0 .. M) {\n";
  for (int s = 0; s < n_scalar; ++s)
    src += "  t" + std::to_string(s) + " = " + rand_expr(s) + ";\n";
  for (int s = 0; s < n_stmt; ++s) {
    const auto red = rng.below(static_cast<std::uint64_t>(n_red));
    const auto ind = rng.below(static_cast<std::uint64_t>(n_ind));
    src += "  R" + std::to_string(red) + "[I" + std::to_string(ind) +
           "[i]] " + (rng.chance(0.3) ? "-=" : "+=") + " " +
           rand_expr(n_scalar) + ";\n";
  }
  src += "}\n";
  out.source = std::move(src);
  return out;
}

TEST(Integration, RandomProgramsAllEnginesMatchInterpreter) {
  Xoshiro256 rng(20020401);
  int compiled_count = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const RandomProgram rp = make_random_program(rng);
    SCOPED_TRACE("trial " + std::to_string(trial) + "\n" + rp.source);
    compiler::CompileResult result = compiler::compile(rp.source);
    ++compiled_count;

    for (std::size_t li = 0; li < result.analysis.fissioned.size(); ++li) {
      const auto kernel = compiler::bind(result, li, rp.env);
      const auto want = kernel->interpret_reference();

      const auto procs = static_cast<std::uint32_t>(rng.range(1, 5));
      const auto k = static_cast<std::uint32_t>(rng.range(1, 3));
      if (kernel->shape().num_nodes < procs * k) continue;

      core::RotationOptions ropt;
      ropt.num_procs = procs;
      ropt.k = k;
      ropt.sweeps = 2;
      ropt.distribution = rng.chance(0.5) ? inspector::Distribution::Block
                                          : inspector::Distribution::Cyclic;
      ropt.inspector.dedup_buffers = rng.chance(0.5);
      ropt.machine.max_events = 50'000'000;
      const core::RunResult rot = core::run_rotation_engine(*kernel, ropt);

      core::ClassicOptions copt;
      copt.num_procs = procs;
      copt.sweeps = 2;
      copt.machine.max_events = 50'000'000;
      const core::RunResult cls = core::run_classic_engine(*kernel, copt);

      for (std::size_t a = 0; a < kernel->reduction_names().size(); ++a) {
        const auto& ref = want.at(kernel->reduction_names()[a]);
        for (std::size_t v = 0; v < ref.size(); ++v) {
          // Integer-valued data: results must be exactly equal.
          ASSERT_EQ(rot.reduction[a][v], ref[v])
              << "rotation, loop " << li << " array " << a << " elem " << v;
          ASSERT_EQ(cls.reduction[a][v], ref[v])
              << "classic, loop " << li << " array " << a << " elem " << v;
        }
      }
    }
  }
  EXPECT_EQ(compiled_count, 20);
}

TEST(Integration, RotationCyclesScaleDownWithProcessors) {
  // Speedup property: on a fixed workload with enough work per phase,
  // more processors should not make the simulation slower.
  Xoshiro256 rng(55);
  const RandomProgram rp = [&] {
    RandomProgram out;
    out.source = R"(
      param N, M;
      array real R0[N];
      array int I0[M]; array int I1[M];
      array real E0[M];
      forall (i : 0 .. M) {
        R0[I0[i]] += E0[i] * 2.0;
        R0[I1[i]] -= E0[i];
      }
    )";
    out.env.params["N"] = 512;
    out.env.params["M"] = 8192;
    std::vector<std::uint32_t> i0, i1;
    std::vector<double> e0;
    for (int e = 0; e < 8192; ++e) {
      i0.push_back(static_cast<std::uint32_t>(rng.below(512)));
      i1.push_back(static_cast<std::uint32_t>(rng.below(512)));
      e0.push_back(static_cast<double>(rng.range(-3, 3)));
    }
    out.env.int_arrays["I0"] = std::move(i0);
    out.env.int_arrays["I1"] = std::move(i1);
    out.env.real_arrays["E0"] = std::move(e0);
    return out;
  }();
  const auto result = compiler::compile(rp.source);
  const auto kernel = compiler::bind(result, 0, rp.env);

  earth::Cycles prev = ~0ULL;
  for (const std::uint32_t procs : {1u, 2u, 4u, 8u}) {
    core::RotationOptions ropt;
    ropt.num_procs = procs;
    ropt.k = 2;
    ropt.sweeps = 3;
    ropt.machine.max_events = 50'000'000;
    ropt.collect_results = false;
    const core::RunResult r = core::run_rotation_engine(*kernel, ropt);
    EXPECT_LT(r.total_cycles, prev) << "P=" << procs;
    prev = r.total_cycles;
  }
}

}  // namespace
}  // namespace earthred
