// Unit tests for the support library: checks, PRNGs, stats, strings,
// tables, and option parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/check.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace earthred {
namespace {

TEST(Check, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(ER_EXPECTS(1 == 2), precondition_error);
  EXPECT_NO_THROW(ER_EXPECTS(1 == 1));
}

TEST(Check, EnsuresThrowsInternalError) {
  EXPECT_THROW(ER_ENSURES(false), internal_error);
}

TEST(Check, CheckThrowsCheckErrorWithMessage) {
  try {
    ER_CHECK_MSG(false, "bad mesh");
    FAIL() << "should have thrown";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("bad mesh"), std::string::npos);
  }
}

TEST(Xoshiro, DeterministicForSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 g(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = g.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Xoshiro, BelowIsInRangeAndRoughlyUniform) {
  Xoshiro256 g(9);
  constexpr std::uint64_t n = 10;
  std::vector<int> counts(n, 0);
  constexpr int draws = 100000;
  for (int i = 0; i < draws; ++i) {
    const auto v = g.below(n);
    ASSERT_LT(v, n);
    ++counts[v];
  }
  for (auto c : counts) {
    EXPECT_GT(c, draws / static_cast<int>(n) / 2);
    EXPECT_LT(c, draws * 2 / static_cast<int>(n));
  }
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256 g(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = g.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Xoshiro, JumpProducesDecorrelatedStream) {
  Xoshiro256 a(5);
  Xoshiro256 b(5);
  b.jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(NasRandlc, MatchesNpbReferenceFirstValues) {
  // The NPB reference: x0 = 314159265, a = 5^13; first output is
  // a*x0 mod 2^46 scaled by 2^-46. Computed independently with exact
  // integer arithmetic: 1220703125 * 314159265 = 383495196533203125;
  // mod 2^46 (= 70368744177664) that is 55909509111989.
  NasRandlc r;
  const double first = r.next();
  EXPECT_NEAR(first, 55909509111989.0 / 70368744177664.0, 1e-15);
  EXPECT_DOUBLE_EQ(r.state(), 55909509111989.0);
}

TEST(NasRandlc, StaysInUnitIntervalAndVaries) {
  NasRandlc r;
  double prev = -1.0;
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next();
    ASSERT_GT(v, 0.0);
    ASSERT_LT(v, 1.0);
    ASSERT_NE(v, prev);
    prev = v;
  }
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesBulk) {
  Xoshiro256 g(3);
  RunningStats a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = g.uniform(-10, 10);
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Stats, SummarizeOrderStatistics) {
  std::vector<double> xs{5, 1, 4, 2, 3};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, ImbalanceFactor) {
  std::vector<std::uint64_t> balanced{10, 10, 10, 10};
  std::vector<std::uint64_t> skewed{40, 0, 0, 0};
  EXPECT_DOUBLE_EQ(imbalance_factor(balanced), 1.0);
  EXPECT_DOUBLE_EQ(imbalance_factor(skewed), 4.0);
  EXPECT_DOUBLE_EQ(imbalance_factor({}), 0.0);
}

TEST(Stats, CoefficientOfVariation) {
  std::vector<std::uint64_t> balanced{10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(balanced), 0.0);
  std::vector<std::uint64_t> skewed{0, 20};
  EXPECT_GT(coefficient_of_variation(skewed), 1.0);
}

TEST(Str, FormatHelpers) {
  EXPECT_EQ(fmt_f(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_f(2.0, 0), "2");
  EXPECT_EQ(fmt_group(0), "0");
  EXPECT_EQ(fmt_group(999), "999");
  EXPECT_EQ(fmt_group(1000), "1,000");
  EXPECT_EQ(fmt_group(1853104), "1,853,104");
  EXPECT_EQ(fmt_group(-75000), "-75,000");
}

TEST(Str, SplitTrimStartsWith) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  x y \t"), "x y");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("--procs", "--"));
  EXPECT_FALSE(starts_with("-p", "--"));
}

TEST(Str, Padding) {
  EXPECT_EQ(pad_left("7", 3), "  7");
  EXPECT_EQ(pad_right("ab", 4), "ab  ");
  EXPECT_EQ(pad_left("long", 2), "long");
}

TEST(Table, RendersAlignedRows) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), precondition_error);
}

TEST(Options, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--procs=32", "--k=2", "--verbose",
                        "input.txt"};
  Options o(5, argv);
  EXPECT_EQ(o.get_int("procs", 0), 32);
  EXPECT_EQ(o.get_int("k", 0), 2);
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_FALSE(o.get_bool("quiet", false));
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "input.txt");
  EXPECT_EQ(o.get_int("missing", 7), 7);
}

TEST(Options, IntListAndErrors) {
  const char* argv[] = {"prog", "--procs=1,2,4,8", "--bad=xy"};
  Options o(3, argv);
  const auto list = o.get_int_list("procs", {});
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[3], 8);
  EXPECT_THROW(o.get_int("bad", 0), check_error);
  const auto fallback = o.get_int_list("absent", {5});
  ASSERT_EQ(fallback.size(), 1u);
  EXPECT_EQ(fallback[0], 5);
}

}  // namespace
}  // namespace earthred
