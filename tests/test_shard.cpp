// The shard-router fleet: ShardMap parsing, rendezvous-hash stability
// (golden assignment table + the ≤1/N movement bound on shard removal),
// content-key canonicalization, router end-to-end digest parity against
// in-process execution, coded-reject propagation, cross-shard drain
// ordering, and the chaos gate — a shard killed mid-stream under byte
// faults leaves every submitted job terminated in a Result or a coded
// Reject, with rerouted results bit-identical to in-process runs.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/stream.hpp"
#include "net/wire.hpp"
#include "service/job_builder.hpp"
#include "service/job_scheduler.hpp"
#include "service/serve_loop.hpp"
#include "shard/endpoint_pool.hpp"
#include "shard/shard_map.hpp"
#include "shard/shard_router.hpp"

namespace earthred {
namespace {

using service::JobBuild;
using service::JobBuilder;
using service::JobLimits;
using service::JobOutcome;
using service::JobScheduler;
using service::JobState;
using service::ServeConfig;
using service::ServeLoop;
using shard::EndpointPool;
using shard::RouterConfig;
using shard::RouterStats;
using shard::ShardEndpoint;
using shard::ShardMap;
using shard::ShardRouter;
using shard::ShardSnapshot;

JobScheduler::Config sched_config(std::uint32_t workers = 2) {
  JobScheduler::Config cfg;
  cfg.workers = workers;
  cfg.queue_capacity = 64;
  cfg.default_deadline = 30.0;
  return cfg;
}

/// One backend shard wired the way `earthred serve --listen` wires it.
struct TestShard {
  JobScheduler sched;
  std::shared_ptr<JobBuilder> builder;
  std::unique_ptr<ServeLoop> loop;

  explicit TestShard(ServeConfig scfg = {})
      : sched(sched_config()) {
    JobLimits limits;
    limits.allow_file_io = false;
    builder = std::make_shared<JobBuilder>(limits);
    loop = std::make_unique<ServeLoop>(
        sched,
        [b = builder](std::string_view line) { return b->build(line, 0); },
        scfg);
  }
  bool start() {
    std::string error;
    const bool ok = loop->start(&error);
    EXPECT_TRUE(ok) << error;
    return ok;
  }
  std::uint16_t port() const { return loop->port(); }
  void stop() {
    loop->request_abort();
    loop->wait();
    sched.drain();
  }
};

/// A fleet of N in-process shards plus a router in front of them.
struct TestFleet {
  std::vector<std::unique_ptr<TestShard>> shards;
  std::unique_ptr<ShardRouter> router;

  explicit TestFleet(std::size_t n, RouterConfig rcfg = {}) {
    std::vector<ShardEndpoint> eps;
    for (std::size_t i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<TestShard>());
      EXPECT_TRUE(shards.back()->start());
      eps.push_back({"s" + std::to_string(i), "127.0.0.1",
                     shards.back()->port()});
    }
    if (rcfg.pool.client.max_attempts == 4) {  // defaults: fast tests
      rcfg.pool.client.max_attempts = 3;
      rcfg.pool.client.backoff_base_ms = 2;
      rcfg.pool.client.backoff_cap_ms = 20;
      rcfg.pool.client.connect_timeout_ms = 2000;
      rcfg.pool.client.request_timeout_ms = 30000;
    }
    router = std::make_unique<ShardRouter>(ShardMap(eps), rcfg);
    std::string error;
    EXPECT_TRUE(router->start(&error)) << error;
  }
  ~TestFleet() {
    if (router->running()) {
      router->request_abort();
      router->wait();
    }
    for (auto& s : shards) s->stop();
  }
  net::ClientConfig client_config() const {
    net::ClientConfig cfg;
    cfg.port = router->port();
    cfg.request_timeout_ms = 30000;
    cfg.max_attempts = 3;
    cfg.backoff_base_ms = 2;
    cfg.backoff_cap_ms = 20;
    return cfg;
  }
};

/// Runs one job line in-process and returns its result digest — the
/// reference every remote/rerouted execution must match bit-for-bit.
std::uint64_t inprocess_digest(const std::string& line) {
  JobScheduler sched(sched_config());
  JobBuilder builder;
  JobBuild b = builder.build(line, 0);
  EXPECT_TRUE(b.ok()) << b.code << ": " << b.detail;
  if (!b.ok() || b.requests.size() != 1) return 0;
  service::JobHandle h = sched.submit(std::move(b.requests[0]));
  const JobOutcome& o = h.wait();
  EXPECT_EQ(o.state, JobState::Done) << o.error;
  sched.drain();
  return service::result_digest(o.native);
}

// ---- ShardMap parsing ---------------------------------------------------

TEST(ShardMapParse, ConfigFileFormatAndErrors) {
  std::string error;
  const ShardMap map = ShardMap::parse(
      "# fleet config\n"
      "alpha 127.0.0.1:7001\n"
      "\n"
      "beta  127.0.0.1:7002\n"
      "127.0.0.1:7003\n",
      &error);
  ASSERT_EQ(map.size(), 3u) << error;
  EXPECT_EQ(map.at(0).name, "alpha");
  EXPECT_EQ(map.at(1).port, 7002);
  // A nameless line names itself after its endpoint.
  EXPECT_EQ(map.at(2).name, "127.0.0.1:7003");

  EXPECT_TRUE(ShardMap::parse("alpha 127.0.0.1:0\n", &error).empty());
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(ShardMap::parse("alpha 127.0.0.1:x\n", &error).empty());
  EXPECT_TRUE(ShardMap::parse("a 127.0.0.1:1\na 127.0.0.1:2\n", &error)
                  .empty());
  EXPECT_NE(error.find("duplicate"), std::string::npos);

  const ShardMap spec =
      ShardMap::from_spec("127.0.0.1:7001, 127.0.0.1:7002", &error);
  ASSERT_EQ(spec.size(), 2u) << error;
  EXPECT_TRUE(ShardMap::from_spec("127.0.0.1:badport", &error).empty());
}

// ---- rendezvous hashing -------------------------------------------------

TEST(Rendezvous, GoldenAssignmentTable) {
  // Pinned against the committed routing function: if either the
  // content-key canonicalization or the HRW weight changes, every warm
  // fleet cache is invalidated on upgrade — this table makes that an
  // explicit, reviewed decision rather than an accident.
  std::vector<ShardEndpoint> eps;
  for (const char* n : {"alpha", "beta", "gamma", "delta"})
    eps.push_back({n, "127.0.0.1", 1});
  const ShardMap map{eps};
  struct Golden {
    const char* line;
    std::uint64_t key;
    std::uint32_t owner;
  };
  const Golden golden[] = {
      {"kernel=fig1 nodes=80 edges=400 procs=4 k=2 sweeps=2 name=wire",
       0xfcdb494a9d3d16c4ull, 1},
      {"kernel=fig1 nodes=81 edges=400 procs=4 k=2",
       0x596dc4b2599e792bull, 1},
      {"kernel=fig1 nodes=82 edges=400 procs=4 k=2",
       0xbc54c83e3cdb1d71ull, 3},
      {"kernel=euler nodes=200 edges=900 procs=4 k=2",
       0x83ba0f582c4c9306ull, 2},
      {"kernel=euler nodes=200 edges=900 procs=8 k=2",
       0x56a51ef7a6f95a5full, 3},
      {"kernel=euler nodes=200 edges=900 procs=4 k=3",
       0x69045197ab51ea5eull, 1},
      {"kernel=moldyn nodes=150 edges=600 procs=4 k=2 dist=block",
       0x9ef0474d6a6807ceull, 1},
      {"kernel=moldyn nodes=150 edges=600 procs=4 k=2 dist=bc bc=32",
       0x20d675680c707c16ull, 1},
      {"kernel=euler preset=euler-small procs=4 k=2",
       0x52ab65193e54647cull, 2},
      {"kernel=euler nodes=1000 edges=5000 seed=7 procs=4 k=2",
       0x9fbe9363fd30800eull, 2},
      {"kernel=fig1 nodes=64 edges=256 procs=2 k=2 dedup",
       0xdd9f4667d3da2dd9ull, 1},
      {"kernel=euler nodes=500 edges=2500 procs=6 k=2 seed=9",
       0xbf2ac70638df62ffull, 1},
  };
  for (const Golden& g : golden) {
    const std::uint64_t key = shard::content_key(g.line);
    EXPECT_EQ(key, g.key) << g.line;
    EXPECT_EQ(map.owner(key), g.owner) << g.line;
    // rank() and owner() agree, and rank is a permutation.
    const std::vector<std::uint32_t> order = map.rank(key);
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], g.owner);
    EXPECT_EQ(std::set<std::uint32_t>(order.begin(), order.end()).size(),
              4u);
  }
}

TEST(Rendezvous, RemovingAShardMovesOnlyItsOwnKeys) {
  std::vector<ShardEndpoint> eps;
  for (const char* n : {"alpha", "beta", "gamma", "delta"})
    eps.push_back({n, "127.0.0.1", 1});
  const ShardMap four{eps};
  // Remove "delta": the HRW property says every key delta did not own
  // keeps its owner (only ~1/N of the keyspace moves — the whole point
  // of rendezvous over modulo hashing for warm plan caches).
  eps.pop_back();
  const ShardMap three{eps};

  const std::size_t kKeys = 1000;
  std::size_t owned_by_removed = 0, moved = 0;
  for (std::size_t i = 0; i < kKeys; ++i) {
    const std::uint64_t key = 0x9e3779b97f4a7c15ull * (i + 1);
    const std::uint32_t before = four.owner(key);
    const std::uint32_t after = three.owner(key);
    if (before == 3) {
      ++owned_by_removed;
      continue;  // had to move somewhere
    }
    // Survivor keys never move; names keep their index here.
    EXPECT_EQ(after, before) << "key " << i;
    if (after != before) ++moved;
  }
  EXPECT_EQ(moved, 0u);
  // The removed shard owned about a quarter of the keyspace.
  EXPECT_GT(owned_by_removed, kKeys / 8);
  EXPECT_LT(owned_by_removed, kKeys * 3 / 8);
}

// ---- content-key canonicalization ---------------------------------------

TEST(ContentKey, DefaultsOrderAndNonRoutingKeysAreCanonicalized) {
  const std::uint64_t base =
      shard::content_key("kernel=fig1 nodes=80 edges=400 procs=4 k=2");
  // Defaults spelled out == omitted.
  EXPECT_EQ(shard::content_key("kernel=fig1 nodes=80 edges=400 procs=4 "
                               "k=2 seed=42 dist=cyclic bc=16"),
            base);
  // Token order is irrelevant.
  EXPECT_EQ(shard::content_key("k=2 procs=4 edges=400 nodes=80 "
                               "kernel=fig1"),
            base);
  // Numeric canonicalization.
  EXPECT_EQ(shard::content_key("kernel=fig1 nodes=080 edges=400 procs=4 "
                               "k=2"),
            base);
  // Non-routing keys never affect placement: sweeps/name vary per run,
  // and mutate= must route to the shard holding the *base* plan.
  EXPECT_EQ(shard::content_key("kernel=fig1 nodes=80 edges=400 procs=4 "
                               "k=2 sweeps=9 name=zzz"),
            base);
  EXPECT_EQ(shard::content_key("kernel=fig1 nodes=80 edges=400 procs=4 "
                               "k=2 mutate=16 mutate-seed=3"),
            base);
  // The compute backend is a run knob, never a plan knob: all backends
  // are bit-identical by contract, so backend= must not fork routing (a
  // warm plan on the owning shard serves every tier).
  EXPECT_EQ(shard::content_key("kernel=fig1 nodes=80 edges=400 procs=4 "
                               "k=2 backend=avx512"),
            base);
  EXPECT_EQ(shard::content_key("kernel=fig1 nodes=80 edges=400 procs=4 "
                               "k=2 backend=scalar"),
            base);
  // Routing keys do.
  EXPECT_NE(shard::content_key("kernel=fig1 nodes=81 edges=400 procs=4 "
                               "k=2"),
            base);
  EXPECT_NE(shard::content_key("kernel=fig1 nodes=80 edges=400 procs=4 "
                               "k=2 dedup"),
            base);
  // Unknown tokens perturb deterministically (distinct garbage lines
  // must not collide onto one key).
  EXPECT_NE(shard::content_key("kernel=fig1 nodes=80 edges=400 procs=4 "
                               "k=2 bogus=1"),
            base);
  EXPECT_EQ(shard::content_key("bogus=1"), shard::content_key("bogus=1"));
}

// ---- router end-to-end --------------------------------------------------

TEST(Router, RoutesToOwnerWithDigestParityAndWarmCache) {
  TestFleet fleet(2);
  net::Client client(fleet.client_config());

  const std::vector<std::string> lines = {
      "kernel=fig1 nodes=80 edges=400 procs=4 k=2 sweeps=2 name=a",
      "kernel=euler nodes=200 edges=900 procs=4 k=2 sweeps=2 name=b",
  };
  std::map<std::string, std::uint64_t> expected;
  for (const std::string& l : lines) expected[l] = inprocess_digest(l);

  // Two passes: the second must hit the warm PlanCache of the same shard
  // the first pass landed on (content-key affinity), with identical
  // digests both times.
  for (int pass = 0; pass < 2; ++pass) {
    for (const std::string& l : lines) {
      const net::Client::Reply r = client.submit(l);
      ASSERT_TRUE(r.ok()) << r.code << ": " << r.detail;
      EXPECT_EQ(static_cast<JobState>(r.result.state), JobState::Done);
      EXPECT_EQ(r.result.digest, expected[l]) << l;
      EXPECT_EQ(r.result.flags & net::kResultFlagRerouted, 0u);
      if (pass == 1) EXPECT_EQ(r.result.cache_hit, 1u) << l;
    }
  }
  // Quiesce before reading stats: results_sent lands after the reply is
  // written, so a client can observe its last result a beat before the
  // conn thread's counter bump (the identity is a quiesce guarantee).
  fleet.router->request_drain();
  fleet.router->wait();
  const RouterStats rs = fleet.router->stats();
  EXPECT_EQ(rs.submits, 4u);
  EXPECT_EQ(rs.results_sent, 4u);
  EXPECT_EQ(rs.submit_rejects, 0u);
  EXPECT_EQ(rs.reroutes, 0u);
  // Every forward went to the key's owner shard.
  std::uint64_t done = 0;
  for (const ShardSnapshot& s : fleet.router->pool().snapshot()) {
    done += s.done;
    EXPECT_EQ(s.rerouted_in, 0u);
    EXPECT_EQ(s.failovers, 0u);
  }
  EXPECT_EQ(done, 4u);
}

TEST(Router, JobCodesPropagateWithoutFailover) {
  TestFleet fleet(2);
  net::Client client(fleet.client_config());
  const net::Client::Reply r = client.submit("kernel=nope nodes=10");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code.rfind("E-JOB", 0), 0u) << r.code;
  const RouterStats rs = fleet.router->stats();
  EXPECT_EQ(rs.submits, 1u);
  EXPECT_EQ(rs.submit_rejects, 1u);
  // A deterministic refusal was not retried on the other shard.
  std::uint64_t forwards = 0;
  for (const ShardSnapshot& s : fleet.router->pool().snapshot())
    forwards += s.forwards;
  EXPECT_EQ(forwards, 1u);
}

TEST(Router, PingReportsRouterHealth) {
  TestFleet fleet(2);
  net::Client client(fleet.client_config());
  const net::Client::PingReply r = client.ping();
  ASSERT_TRUE(r.ok()) << r.code;
  EXPECT_EQ(r.pong.draining, 0u);
  EXPECT_EQ(r.pong.version, net::kVersion);
}

TEST(Router, FleetDrainShardsFirstRouterLastThenQuiesce) {
  TestFleet fleet(2);
  {
    net::Client client(fleet.client_config());
    const net::Client::Reply warm = client.submit(
        "kernel=fig1 nodes=80 edges=400 procs=4 k=2 sweeps=1 name=w");
    ASSERT_TRUE(warm.ok()) << warm.code;

    // One Drain frame to the router drains the whole fleet.
    const net::Client::PingReply ack = client.drain();
    ASSERT_TRUE(ack.ok()) << ack.code << ": " << ack.detail;
    EXPECT_EQ(ack.pong.draining, 1u);
  }
  EXPECT_TRUE(fleet.router->draining());
  for (auto& s : fleet.shards) EXPECT_TRUE(s->loop->draining());

  // New work is refused with the drain code, never silently dropped.
  net::ClientConfig ccfg = fleet.client_config();
  ccfg.max_attempts = 1;
  net::Client late(ccfg);
  const net::Client::Reply r = late.submit(
      "kernel=fig1 nodes=80 edges=400 procs=4 k=2 sweeps=1 name=late");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.code, "E-NET-DRAINING") << r.detail;

  // Quiesce order: shards exit, then the router itself.
  for (auto& s : fleet.shards) {
    s->loop->wait();
    EXPECT_FALSE(s->loop->running());
  }
  fleet.router->wait();
  EXPECT_FALSE(fleet.router->running());
  const RouterStats rs = fleet.router->stats();
  EXPECT_EQ(rs.drain_frames, 1u);
  EXPECT_EQ(rs.submits, rs.results_sent + rs.submit_rejects);
}

// ---- the chaos gate -----------------------------------------------------

// With 3 shards, seeded byte faults on every router->shard connection,
// and one shard killed mid-stream: every submitted job terminates in a
// Result or a coded Reject (submits == results_sent + submit_rejects —
// no hangs, no silent drops), jobs owned by the dead shard are rerouted,
// and every returned digest is bit-identical to in-process execution.
TEST(Chaos, KilledShardMidStreamNeverHangsOrDropsJobs) {
  RouterConfig rcfg;
  rcfg.pool.client.max_attempts = 3;
  rcfg.pool.client.backoff_base_ms = 2;
  rcfg.pool.client.backoff_cap_ms = 20;
  rcfg.pool.client.connect_timeout_ms = 1000;
  rcfg.pool.client.request_timeout_ms = 30000;
  rcfg.pool.client.breaker_threshold = 3;
  rcfg.pool.client.breaker_cooldown_ms = 100;
  rcfg.pool.wrap_stream = [](std::unique_ptr<net::Stream> inner,
                             std::uint32_t index) {
    net::ByteFaultConfig fc;
    fc.seed = 0xc4a05 + index;
    fc.corrupt = 0.005;     // client retries recover checksum damage
    fc.short_read = 0.05;   // reassembly exercised on every path
    return std::unique_ptr<net::Stream>(
        std::make_unique<net::FaultyStream>(std::move(inner), fc));
  };
  TestFleet fleet(3, rcfg);

  std::vector<std::string> lines;
  for (int i = 0; i < 6; ++i)
    lines.push_back("kernel=fig1 nodes=" + std::to_string(80 + i) +
                    " edges=400 procs=4 k=2 sweeps=2");
  std::map<std::string, std::uint64_t> expected;
  for (const std::string& l : lines) expected[l] = inprocess_digest(l);

  // The victim is the shard owning the first line, so at least one job
  // is guaranteed to need a failover after the kill.
  const std::uint32_t victim =
      fleet.router->map().owner(shard::content_key(lines[0]));

  constexpr int kThreads = 3;
  constexpr int kJobsPerThread = 10;
  std::atomic<std::uint64_t> ok_replies{0}, coded_rejects{0},
      digest_mismatches{0}, rerouted_seen{0};
  std::vector<std::thread> workers;
  std::atomic<int> submitted_before_kill{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      net::ClientConfig ccfg = fleet.client_config();
      ccfg.max_attempts = 4;
      ccfg.jitter_seed = 0xbeef + t;
      net::Client client(ccfg);
      for (int j = 0; j < kJobsPerThread; ++j) {
        const std::string& line = lines[(t + j) % lines.size()];
        const net::Client::Reply r = client.submit(line);
        if (r.ok()) {
          ok_replies.fetch_add(1);
          if (r.result.digest != expected[line])
            digest_mismatches.fetch_add(1);
          if (r.result.flags & net::kResultFlagRerouted)
            rerouted_seen.fetch_add(1);
        } else {
          // Every failure must carry a code — that *is* the contract.
          EXPECT_FALSE(r.code.empty());
          coded_rejects.fetch_add(1);
        }
        submitted_before_kill.fetch_add(1);
      }
    });
  }
  // Kill the victim once the stream is flowing.
  while (submitted_before_kill.load() < kThreads * kJobsPerThread / 3)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  fleet.shards[victim]->stop();
  for (std::thread& w : workers) w.join();
  // The accounting identity is guaranteed at quiesce (a client can read
  // its reply a beat before the conn thread's counter bump lands).
  fleet.router->request_drain();
  fleet.router->wait();

  // The gate: nothing hung (we got here), nothing was dropped silently.
  EXPECT_EQ(ok_replies.load() + coded_rejects.load(),
            static_cast<std::uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(digest_mismatches.load(), 0u);
  EXPECT_GE(rerouted_seen.load(), 1u);
  const RouterStats rs = fleet.router->stats();
  EXPECT_EQ(rs.submits, rs.results_sent + rs.submit_rejects)
      << "router accounting leaked a job";
  EXPECT_GE(rs.reroutes, 1u);
}

// ---- endpoint pool back-pressure ----------------------------------------

TEST(EndpointPool, SheddingAtTheInflightBoundIsCodedBusy) {
  // A map pointing at a port nobody listens on, with a zero in-flight
  // budget: submission must shed with E-NET-BUSY before any connect.
  shard::EndpointPoolConfig cfg;
  cfg.max_inflight_per_shard = 0;
  EndpointPool pool(ShardMap({{"solo", "127.0.0.1", 1}}), cfg);
  const EndpointPool::Forward f = pool.submit(1, "kernel=fig1");
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.code, "E-NET-BUSY");
  EXPECT_EQ(pool.snapshot()[0].busy_shed, 1u);

  EndpointPool empty{ShardMap{}, {}};
  EXPECT_EQ(empty.submit(1, "kernel=fig1").code, "E-NET-CONN");
}

}  // namespace
}  // namespace earthred
