// End-to-end correctness of the execution engines: the rotation engine
// (the paper's strategy), the mvm gather-rotation engine, the classic
// inspector/executor baseline, and the sequential references — all
// executing real arithmetic on the simulated machine.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/classic_engine.hpp"
#include "core/mvm_engine.hpp"
#include "core/mvm_pull_engine.hpp"
#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "sparse/nas_cg.hpp"
#include "support/check.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"

namespace earthred {
namespace {

using core::ClassicOptions;
using core::MvmOptions;
using core::RotationOptions;
using core::RunResult;
using core::SequentialOptions;

mesh::Mesh small_mesh(std::uint32_t nodes = 64, std::uint64_t edges = 256,
                      std::uint64_t seed = 11) {
  return mesh::make_geometric_mesh({nodes, edges, seed});
}

earth::MachineConfig fast_machine() {
  earth::MachineConfig cfg;
  cfg.max_events = 50'000'000;
  return cfg;
}

void expect_close(const std::vector<std::vector<double>>& got,
                  const std::vector<std::vector<double>>& want,
                  double tol) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t a = 0; a < want.size(); ++a) {
    ASSERT_EQ(got[a].size(), want[a].size());
    for (std::size_t i = 0; i < want[a].size(); ++i) {
      const double scale = std::max(1.0, std::abs(want[a][i]));
      ASSERT_NEAR(got[a][i], want[a][i], tol * scale)
          << "array " << a << " element " << i;
    }
  }
}

// ----------------------------------------------------------- rotation

TEST(RotationEngine, Fig1ExactMatchAcrossConfigs) {
  // Integer-valued Y makes the reduction order-independent in floating
  // point: the parallel result must equal the sequential one bitwise.
  const auto kernel = kernels::Fig1Kernel::with_integer_values(small_mesh());
  SequentialOptions sopt;
  sopt.machine = fast_machine();
  sopt.sweeps = 3;
  const RunResult seq = core::run_sequential_kernel(kernel, sopt);

  for (const std::uint32_t procs : {1u, 2u, 3u, 4u, 8u}) {
    for (const std::uint32_t k : {1u, 2u, 4u}) {
      for (const auto dist :
           {inspector::Distribution::Block, inspector::Distribution::Cyclic}) {
        RotationOptions opt;
        opt.num_procs = procs;
        opt.k = k;
        opt.distribution = dist;
        opt.sweeps = 3;
        opt.machine = fast_machine();
        const RunResult par = core::run_rotation_engine(kernel, opt);
        ASSERT_EQ(par.reduction.size(), 1u);
        for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
          ASSERT_EQ(par.reduction[0][i], seq.reduction[0][i])
              << "P=" << procs << " k=" << k << " elem " << i;
      }
    }
  }
}

TEST(RotationEngine, EulerMatchesSequential) {
  const kernels::EulerKernel kernel(small_mesh(96, 400, 5));
  SequentialOptions sopt;
  sopt.machine = fast_machine();
  sopt.sweeps = 4;
  const RunResult seq = core::run_sequential_kernel(kernel, sopt);

  RotationOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 4;
  opt.machine = fast_machine();
  const RunResult par = core::run_rotation_engine(kernel, opt);
  // Node state after 4 sweeps: summation order differs, so tolerance.
  expect_close(par.node_read, seq.node_read, 1e-9);
  expect_close(par.reduction, seq.reduction, 1e-9);
}

TEST(RotationEngine, MoldynMatchesSequential) {
  const kernels::MoldynKernel kernel(
      mesh::make_moldyn_lattice({3, 400, 0.03, 9}));
  SequentialOptions sopt;
  sopt.machine = fast_machine();
  sopt.sweeps = 3;
  const RunResult seq = core::run_sequential_kernel(kernel, sopt);

  for (const std::uint32_t procs : {2u, 5u}) {
    RotationOptions opt;
    opt.num_procs = procs;
    opt.k = 2;
    opt.sweeps = 3;
    opt.machine = fast_machine();
    const RunResult par = core::run_rotation_engine(kernel, opt);
    expect_close(par.node_read, seq.node_read, 1e-9);
  }
}

TEST(RotationEngine, DedupBuffersPreservesResults) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(small_mesh());
  RotationOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 2;
  opt.machine = fast_machine();
  const RunResult plain = core::run_rotation_engine(kernel, opt);
  opt.inspector.dedup_buffers = true;
  const RunResult dedup = core::run_rotation_engine(kernel, opt);
  for (std::size_t i = 0; i < plain.reduction[0].size(); ++i)
    ASSERT_EQ(plain.reduction[0][i], dedup.reduction[0][i]);
}

TEST(RotationEngine, PhaseIterationCountsCoverAllEdges) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      small_mesh(80, 300, 2));
  RotationOptions opt;
  opt.num_procs = 3;
  opt.k = 2;
  opt.machine = fast_machine();
  const RunResult r = core::run_rotation_engine(kernel, opt);
  EXPECT_EQ(r.phases_per_proc, 6u);
  ASSERT_EQ(r.phase_iterations.size(), 18u);
  std::uint64_t total = 0;
  for (auto c : r.phase_iterations) total += c;
  EXPECT_EQ(total, 300u);
}

TEST(RotationEngine, InspectorTimeReportedAndSmall) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      small_mesh(128, 1000, 3));
  RotationOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.sweeps = 5;
  opt.machine = fast_machine();
  const RunResult r = core::run_rotation_engine(kernel, opt);
  EXPECT_GT(r.inspector_cycles, 0u);
  EXPECT_LT(r.inspector_cycles, r.total_cycles / 2);
}

TEST(RotationEngine, CommunicationVolumeIndependentOfIndirection) {
  // The paper's core claim: same mesh size, different connectivity =>
  // identical message counts and bytes.
  const std::uint32_t nodes = 90;
  const std::uint64_t edges = 420;
  const auto k1 =
      kernels::Fig1Kernel::with_integer_values(small_mesh(nodes, edges, 1));
  const auto k2 =
      kernels::Fig1Kernel::with_integer_values(small_mesh(nodes, edges, 2));
  RotationOptions opt;
  opt.num_procs = 3;
  opt.k = 2;
  opt.sweeps = 4;
  opt.machine = fast_machine();
  const RunResult a = core::run_rotation_engine(k1, opt);
  const RunResult b = core::run_rotation_engine(k2, opt);
  EXPECT_EQ(a.machine.total_msgs(), b.machine.total_msgs());
  EXPECT_EQ(a.machine.total_bytes(), b.machine.total_bytes());
}

TEST(RotationEngine, OverlapBeatsNoOverlapUnderLatency) {
  // With substantial network latency, k=2 must beat k=1 (the Fig. 4/6
  // shape): k=1 leaves no slack to hide the portion transfer.
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      small_mesh(512, 4096, 4));
  RotationOptions opt;
  opt.num_procs = 4;
  opt.sweeps = 6;
  opt.machine = fast_machine();
  opt.machine.net.latency = 4000;
  opt.k = 1;
  const RunResult k1 = core::run_rotation_engine(kernel, opt);
  opt.k = 2;
  const RunResult k2 = core::run_rotation_engine(kernel, opt);
  EXPECT_LT(k2.total_cycles, k1.total_cycles);
}

TEST(RotationEngine, RejectsDegenerateShapes) {
  const auto kernel =
      kernels::Fig1Kernel::with_integer_values(small_mesh(8, 20, 6));
  RotationOptions opt;
  opt.num_procs = 8;
  opt.k = 2;  // 16 portions > 8 nodes
  EXPECT_THROW(core::run_rotation_engine(kernel, opt), precondition_error);
}

// ----------------------------------------------------------------- mvm

TEST(MvmEngine, MatchesCsrReferenceAcrossConfigs) {
  const sparse::CsrMatrix A = sparse::make_nas_cg_matrix({200, 4, 0.1, 10.0,
                                                          314159265.0});
  Xoshiro256 rng(8);
  std::vector<double> x(A.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> want(A.nrows());
  A.spmv(x, want);

  for (const std::uint32_t procs : {1u, 2u, 4u, 8u}) {
    for (const std::uint32_t k : {1u, 2u, 4u}) {
      MvmOptions opt;
      opt.num_procs = procs;
      opt.k = k;
      opt.sweeps = 2;
      opt.machine = fast_machine();
      const RunResult r = core::run_mvm_engine(A, x, opt);
      ASSERT_EQ(r.reduction[0].size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i)
        ASSERT_NEAR(r.reduction[0][i], want[i],
                    1e-9 * std::max(1.0, std::abs(want[i])))
            << "P=" << procs << " k=" << k;
    }
  }
}

TEST(MvmEngine, SequentialMvmMatchesReference) {
  const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix({150, 3, 0.1, 10.0, 314159265.0});
  std::vector<double> x(A.ncols(), 1.0);
  std::vector<double> want(A.nrows());
  A.spmv(x, want);
  SequentialOptions opt;
  opt.machine = fast_machine();
  const RunResult r = core::run_sequential_mvm(A, x, opt);
  for (std::size_t i = 0; i < want.size(); ++i)
    ASSERT_DOUBLE_EQ(r.reduction[0][i], want[i]);
}

TEST(MvmEngine, PhaseCountsCoverAllNonzeros) {
  const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix({120, 3, 0.1, 10.0, 314159265.0});
  std::vector<double> x(A.ncols(), 0.5);
  MvmOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  opt.machine = fast_machine();
  const RunResult r = core::run_mvm_engine(A, x, opt);
  std::uint64_t total = 0;
  for (auto c : r.phase_iterations) total += c;
  EXPECT_EQ(total, A.nnz());
}

TEST(MvmEngine, DeterministicCycles) {
  const sparse::CsrMatrix A =
      sparse::make_nas_cg_matrix({100, 3, 0.1, 10.0, 314159265.0});
  std::vector<double> x(A.ncols(), 1.0);
  MvmOptions opt;
  opt.num_procs = 3;
  opt.k = 2;
  opt.sweeps = 3;
  opt.machine = fast_machine();
  const RunResult a = core::run_mvm_engine(A, x, opt);
  const RunResult b = core::run_mvm_engine(A, x, opt);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
}

// ------------------------------------------------------------- classic

TEST(ClassicEngine, Fig1ExactMatch) {
  const auto kernel = kernels::Fig1Kernel::with_integer_values(small_mesh());
  SequentialOptions sopt;
  sopt.machine = fast_machine();
  sopt.sweeps = 3;
  const RunResult seq = core::run_sequential_kernel(kernel, sopt);
  for (const std::uint32_t procs : {1u, 2u, 4u, 6u}) {
    ClassicOptions opt;
    opt.num_procs = procs;
    opt.sweeps = 3;
    opt.machine = fast_machine();
    const RunResult par = core::run_classic_engine(kernel, opt);
    for (std::size_t i = 0; i < seq.reduction[0].size(); ++i)
      ASSERT_EQ(par.reduction[0][i], seq.reduction[0][i]) << "P=" << procs;
  }
}

TEST(ClassicEngine, EulerMatchesSequential) {
  const kernels::EulerKernel kernel(small_mesh(96, 400, 5));
  SequentialOptions sopt;
  sopt.machine = fast_machine();
  sopt.sweeps = 4;
  const RunResult seq = core::run_sequential_kernel(kernel, sopt);
  ClassicOptions opt;
  opt.num_procs = 4;
  opt.sweeps = 4;
  opt.machine = fast_machine();
  const RunResult par = core::run_classic_engine(kernel, opt);
  expect_close(par.node_read, seq.node_read, 1e-9);
}

TEST(ClassicEngine, CommunicationDependsOnIndirection) {
  // Unlike the rotation engine, the classic executor's traffic grows with
  // scattered connectivity: compare a bandwidth-local mesh against a
  // scrambled renumbering of the same mesh.
  mesh::Mesh local_mesh = small_mesh(1200, 5000, 12);
  Xoshiro256 rng(13);
  std::vector<std::uint32_t> perm(local_mesh.num_nodes);
  for (std::uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
  for (std::uint32_t i = local_mesh.num_nodes - 1; i > 0; --i)
    std::swap(perm[i], perm[rng.below(i + 1)]);
  mesh::Mesh scrambled = mesh::renumber(local_mesh, perm);

  ClassicOptions opt;
  opt.num_procs = 4;
  opt.sweeps = 2;
  opt.machine = fast_machine();
  const RunResult a = core::run_classic_engine(
      kernels::Fig1Kernel::with_integer_values(std::move(local_mesh)), opt);
  const RunResult b = core::run_classic_engine(
      kernels::Fig1Kernel::with_integer_values(std::move(scrambled)), opt);
  EXPECT_LT(a.machine.total_bytes(), b.machine.total_bytes());
}

TEST(ClassicEngine, InspectorUsesCommunication) {
  // The translation-table exchange shows up as messages during the
  // inspector stage — the cost the LightInspector avoids.
  const auto kernel = kernels::Fig1Kernel::with_integer_values(
      small_mesh(128, 512, 14));
  ClassicOptions opt;
  opt.num_procs = 4;
  opt.sweeps = 1;
  opt.machine = fast_machine();
  const RunResult r = core::run_classic_engine(kernel, opt);
  EXPECT_GT(r.inspector_cycles, 0u);
  EXPECT_GT(r.machine.total_msgs(), 0u);
}


TEST(MvmPullEngine, MatchesCsrReference) {
  const sparse::CsrMatrix A = sparse::make_nas_cg_matrix({200, 4, 0.1, 10.0,
                                                          314159265.0});
  Xoshiro256 rng(8);
  std::vector<double> x(A.ncols());
  for (auto& v : x) v = rng.uniform(-1, 1);
  std::vector<double> want(A.nrows());
  A.spmv(x, want);

  for (const std::uint32_t procs : {1u, 2u, 4u, 8u}) {
    core::MvmPullOptions opt;
    opt.num_procs = procs;
    opt.sweeps = 2;
    opt.machine = fast_machine();
    const RunResult r = core::run_mvm_pull_engine(A, x, opt);
    for (std::size_t i = 0; i < want.size(); ++i)
      ASSERT_NEAR(r.reduction[0][i], want[i],
                  1e-9 * std::max(1.0, std::abs(want[i])))
          << "P=" << procs;
  }
}

TEST(MvmPullEngine, MessageCountScalesWithGhosts) {
  const sparse::CsrMatrix A = sparse::make_nas_cg_matrix({300, 4, 0.1, 10.0,
                                                          314159265.0});
  std::vector<double> x(A.ncols(), 1.0);
  core::MvmPullOptions opt;
  opt.num_procs = 4;
  opt.machine = fast_machine();
  const RunResult r = core::run_mvm_pull_engine(A, x, opt);
  // Request + response per distinct remote element: far more messages
  // than the rotation engine's per-phase portions.
  core::MvmOptions ropt;
  ropt.num_procs = 4;
  ropt.k = 2;
  ropt.machine = fast_machine();
  const RunResult rot = core::run_mvm_engine(A, x, ropt);
  EXPECT_GT(r.machine.total_msgs(), 10 * rot.machine.total_msgs());
}


TEST(RotationEngine, BlockDistributionSkewsPhaseSizes) {
  // Sec. 5.4.3: "A block distribution resulted in a significant load
  // imbalance, whereas a cyclic distribution did not." Pin it: on a
  // spatially numbered mesh the per-phase iteration counts under block
  // must have several times the coefficient of variation of cyclic.
  const kernels::MoldynKernel kernel(
      mesh::make_moldyn_lattice({6, 5000, 0.04, 3}));
  auto cov_for = [&](inspector::Distribution d) {
    RotationOptions opt;
    opt.num_procs = 16;
    opt.k = 2;
    opt.distribution = d;
    opt.machine = fast_machine();
    opt.collect_results = false;
    const RunResult r = core::run_rotation_engine(kernel, opt);
    return coefficient_of_variation(r.phase_iterations);
  };
  const double block = cov_for(inspector::Distribution::Block);
  const double cyclic = cov_for(inspector::Distribution::Cyclic);
  EXPECT_GT(block, 2.0 * cyclic);
}

}  // namespace
}  // namespace earthred
