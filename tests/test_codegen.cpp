// Tests for the expression/statement printers and the Threaded-C-style
// emitter's structural content.
#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "compiler/compiler.hpp"
#include "compiler/parser.hpp"

namespace earthred::compiler {
namespace {

const Loop& parse_loop(const char* src, Program& storage) {
  DiagnosticSink sink;
  storage = parse(src, sink);
  EXPECT_FALSE(sink.has_errors()) << sink.summary();
  EXPECT_FALSE(storage.loops.empty());
  return storage.loops[0];
}

TEST(Codegen, ExprToStringRoundTripsStructure) {
  Program p;
  const Loop& loop = parse_loop(
      "param n, m; array real X[n]; array int IA[m]; array real Y[m];"
      "forall (i : 0 .. m) { t = -(Y[i] + 2.0) * 3.0 / 4.0;"
      " X[IA[i]] += t; }",
      p);
  const std::string t = expr_to_string(*loop.body[0].value);
  // Parenthesized, fully explicit rendering.
  EXPECT_EQ(t, "(((-(Y[i] + 2)) * 3) / 4)");
}

TEST(Codegen, StmtToStringBothKinds) {
  Program p;
  const Loop& loop = parse_loop(
      "param n, m; array real X[n]; array int IA[m]; array real Y[m];"
      "forall (i : 0 .. m) { s = Y[i]; X[IA[i]] -= s; }",
      p);
  EXPECT_EQ(stmt_to_string(loop.body[0]), "s = Y[i];");
  EXPECT_EQ(stmt_to_string(loop.body[1]), "X[IA[i]] -= s;");
}

TEST(Codegen, ThreadedCListsEveryGroupArray) {
  const CompileResult r = compile(
      "param n, m; array real A[n]; array real B[n];"
      "array int I1[m]; array int I2[m]; array real Y[m];"
      "forall (i : 0 .. m) { A[I1[i]] += Y[i]; B[I1[i]] += Y[i];"
      " A[I2[i]] -= Y[i]; }");
  // A via {I1, I2}; B via {I1} -> two fissioned loops.
  ASSERT_EQ(r.threaded_c.size(), 2u);
  bool saw_a = false, saw_b = false;
  for (const std::string& code : r.threaded_c) {
    if (code.find("updating { A }") != std::string::npos) saw_a = true;
    if (code.find("updating { B }") != std::string::npos) saw_b = true;
    // Every emission has the phase skeleton.
    EXPECT_NE(code.find("for (phase = 0; phase < KP; phase++)"),
              std::string::npos);
    EXPECT_NE(code.find("SYNC(SLOT_ADR"), std::string::npos);
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);
}

TEST(Codegen, EmissionIsDeterministic) {
  const char* src =
      "param n, m; array real X[n]; array int IA[m]; array real Y[m];"
      "forall (i : 0 .. m) { X[IA[i]] += Y[i]; }";
  const CompileResult a = compile(src);
  const CompileResult b = compile(src);
  ASSERT_EQ(a.threaded_c.size(), b.threaded_c.size());
  EXPECT_EQ(a.threaded_c[0], b.threaded_c[0]);
}

}  // namespace
}  // namespace earthred::compiler
