file(REMOVE_RECURSE
  "libearthred_support.a"
)
