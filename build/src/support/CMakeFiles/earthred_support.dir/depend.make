# Empty dependencies file for earthred_support.
# This may be replaced when dependencies are built.
