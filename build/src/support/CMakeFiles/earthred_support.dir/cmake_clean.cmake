file(REMOVE_RECURSE
  "CMakeFiles/earthred_support.dir/check.cpp.o"
  "CMakeFiles/earthred_support.dir/check.cpp.o.d"
  "CMakeFiles/earthred_support.dir/log.cpp.o"
  "CMakeFiles/earthred_support.dir/log.cpp.o.d"
  "CMakeFiles/earthred_support.dir/options.cpp.o"
  "CMakeFiles/earthred_support.dir/options.cpp.o.d"
  "CMakeFiles/earthred_support.dir/prng.cpp.o"
  "CMakeFiles/earthred_support.dir/prng.cpp.o.d"
  "CMakeFiles/earthred_support.dir/stats.cpp.o"
  "CMakeFiles/earthred_support.dir/stats.cpp.o.d"
  "CMakeFiles/earthred_support.dir/str.cpp.o"
  "CMakeFiles/earthred_support.dir/str.cpp.o.d"
  "CMakeFiles/earthred_support.dir/table.cpp.o"
  "CMakeFiles/earthred_support.dir/table.cpp.o.d"
  "libearthred_support.a"
  "libearthred_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthred_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
