# Empty dependencies file for earthred_inspector.
# This may be replaced when dependencies are built.
