
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inspector/classic_inspector.cpp" "src/inspector/CMakeFiles/earthred_inspector.dir/classic_inspector.cpp.o" "gcc" "src/inspector/CMakeFiles/earthred_inspector.dir/classic_inspector.cpp.o.d"
  "/root/repo/src/inspector/distribution.cpp" "src/inspector/CMakeFiles/earthred_inspector.dir/distribution.cpp.o" "gcc" "src/inspector/CMakeFiles/earthred_inspector.dir/distribution.cpp.o.d"
  "/root/repo/src/inspector/light_inspector.cpp" "src/inspector/CMakeFiles/earthred_inspector.dir/light_inspector.cpp.o" "gcc" "src/inspector/CMakeFiles/earthred_inspector.dir/light_inspector.cpp.o.d"
  "/root/repo/src/inspector/rotation.cpp" "src/inspector/CMakeFiles/earthred_inspector.dir/rotation.cpp.o" "gcc" "src/inspector/CMakeFiles/earthred_inspector.dir/rotation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/earthred_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
