file(REMOVE_RECURSE
  "CMakeFiles/earthred_inspector.dir/classic_inspector.cpp.o"
  "CMakeFiles/earthred_inspector.dir/classic_inspector.cpp.o.d"
  "CMakeFiles/earthred_inspector.dir/distribution.cpp.o"
  "CMakeFiles/earthred_inspector.dir/distribution.cpp.o.d"
  "CMakeFiles/earthred_inspector.dir/light_inspector.cpp.o"
  "CMakeFiles/earthred_inspector.dir/light_inspector.cpp.o.d"
  "CMakeFiles/earthred_inspector.dir/rotation.cpp.o"
  "CMakeFiles/earthred_inspector.dir/rotation.cpp.o.d"
  "libearthred_inspector.a"
  "libearthred_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthred_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
