file(REMOVE_RECURSE
  "libearthred_inspector.a"
)
