file(REMOVE_RECURSE
  "CMakeFiles/earthred_earth.dir/cache.cpp.o"
  "CMakeFiles/earthred_earth.dir/cache.cpp.o.d"
  "CMakeFiles/earthred_earth.dir/machine.cpp.o"
  "CMakeFiles/earthred_earth.dir/machine.cpp.o.d"
  "CMakeFiles/earthred_earth.dir/trace.cpp.o"
  "CMakeFiles/earthred_earth.dir/trace.cpp.o.d"
  "libearthred_earth.a"
  "libearthred_earth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthred_earth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
