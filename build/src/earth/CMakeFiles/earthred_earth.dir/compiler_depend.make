# Empty compiler generated dependencies file for earthred_earth.
# This may be replaced when dependencies are built.
