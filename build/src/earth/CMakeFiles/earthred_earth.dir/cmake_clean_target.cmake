file(REMOVE_RECURSE
  "libearthred_earth.a"
)
