file(REMOVE_RECURSE
  "CMakeFiles/earthred_mesh.dir/generators.cpp.o"
  "CMakeFiles/earthred_mesh.dir/generators.cpp.o.d"
  "CMakeFiles/earthred_mesh.dir/io.cpp.o"
  "CMakeFiles/earthred_mesh.dir/io.cpp.o.d"
  "CMakeFiles/earthred_mesh.dir/mesh.cpp.o"
  "CMakeFiles/earthred_mesh.dir/mesh.cpp.o.d"
  "CMakeFiles/earthred_mesh.dir/partition.cpp.o"
  "CMakeFiles/earthred_mesh.dir/partition.cpp.o.d"
  "libearthred_mesh.a"
  "libearthred_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthred_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
