# Empty dependencies file for earthred_mesh.
# This may be replaced when dependencies are built.
