file(REMOVE_RECURSE
  "libearthred_mesh.a"
)
