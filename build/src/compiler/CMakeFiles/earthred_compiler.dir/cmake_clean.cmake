file(REMOVE_RECURSE
  "CMakeFiles/earthred_compiler.dir/analysis.cpp.o"
  "CMakeFiles/earthred_compiler.dir/analysis.cpp.o.d"
  "CMakeFiles/earthred_compiler.dir/bytecode.cpp.o"
  "CMakeFiles/earthred_compiler.dir/bytecode.cpp.o.d"
  "CMakeFiles/earthred_compiler.dir/codegen.cpp.o"
  "CMakeFiles/earthred_compiler.dir/codegen.cpp.o.d"
  "CMakeFiles/earthred_compiler.dir/compiled_kernel.cpp.o"
  "CMakeFiles/earthred_compiler.dir/compiled_kernel.cpp.o.d"
  "CMakeFiles/earthred_compiler.dir/compiler.cpp.o"
  "CMakeFiles/earthred_compiler.dir/compiler.cpp.o.d"
  "CMakeFiles/earthred_compiler.dir/lexer.cpp.o"
  "CMakeFiles/earthred_compiler.dir/lexer.cpp.o.d"
  "CMakeFiles/earthred_compiler.dir/optimize.cpp.o"
  "CMakeFiles/earthred_compiler.dir/optimize.cpp.o.d"
  "CMakeFiles/earthred_compiler.dir/parser.cpp.o"
  "CMakeFiles/earthred_compiler.dir/parser.cpp.o.d"
  "libearthred_compiler.a"
  "libearthred_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthred_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
