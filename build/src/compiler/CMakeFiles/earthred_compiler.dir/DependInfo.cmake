
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/analysis.cpp" "src/compiler/CMakeFiles/earthred_compiler.dir/analysis.cpp.o" "gcc" "src/compiler/CMakeFiles/earthred_compiler.dir/analysis.cpp.o.d"
  "/root/repo/src/compiler/bytecode.cpp" "src/compiler/CMakeFiles/earthred_compiler.dir/bytecode.cpp.o" "gcc" "src/compiler/CMakeFiles/earthred_compiler.dir/bytecode.cpp.o.d"
  "/root/repo/src/compiler/codegen.cpp" "src/compiler/CMakeFiles/earthred_compiler.dir/codegen.cpp.o" "gcc" "src/compiler/CMakeFiles/earthred_compiler.dir/codegen.cpp.o.d"
  "/root/repo/src/compiler/compiled_kernel.cpp" "src/compiler/CMakeFiles/earthred_compiler.dir/compiled_kernel.cpp.o" "gcc" "src/compiler/CMakeFiles/earthred_compiler.dir/compiled_kernel.cpp.o.d"
  "/root/repo/src/compiler/compiler.cpp" "src/compiler/CMakeFiles/earthred_compiler.dir/compiler.cpp.o" "gcc" "src/compiler/CMakeFiles/earthred_compiler.dir/compiler.cpp.o.d"
  "/root/repo/src/compiler/lexer.cpp" "src/compiler/CMakeFiles/earthred_compiler.dir/lexer.cpp.o" "gcc" "src/compiler/CMakeFiles/earthred_compiler.dir/lexer.cpp.o.d"
  "/root/repo/src/compiler/optimize.cpp" "src/compiler/CMakeFiles/earthred_compiler.dir/optimize.cpp.o" "gcc" "src/compiler/CMakeFiles/earthred_compiler.dir/optimize.cpp.o.d"
  "/root/repo/src/compiler/parser.cpp" "src/compiler/CMakeFiles/earthred_compiler.dir/parser.cpp.o" "gcc" "src/compiler/CMakeFiles/earthred_compiler.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/earthred_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/earthred_core.dir/DependInfo.cmake"
  "/root/repo/build/src/earth/CMakeFiles/earthred_earth.dir/DependInfo.cmake"
  "/root/repo/build/src/inspector/CMakeFiles/earthred_inspector.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/earthred_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
