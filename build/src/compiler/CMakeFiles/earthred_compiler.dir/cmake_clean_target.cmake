file(REMOVE_RECURSE
  "libearthred_compiler.a"
)
