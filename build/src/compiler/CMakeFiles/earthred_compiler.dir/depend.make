# Empty dependencies file for earthred_compiler.
# This may be replaced when dependencies are built.
