
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/adaptive_moldyn.cpp" "src/kernels/CMakeFiles/earthred_kernels.dir/adaptive_moldyn.cpp.o" "gcc" "src/kernels/CMakeFiles/earthred_kernels.dir/adaptive_moldyn.cpp.o.d"
  "/root/repo/src/kernels/euler.cpp" "src/kernels/CMakeFiles/earthred_kernels.dir/euler.cpp.o" "gcc" "src/kernels/CMakeFiles/earthred_kernels.dir/euler.cpp.o.d"
  "/root/repo/src/kernels/fig1.cpp" "src/kernels/CMakeFiles/earthred_kernels.dir/fig1.cpp.o" "gcc" "src/kernels/CMakeFiles/earthred_kernels.dir/fig1.cpp.o.d"
  "/root/repo/src/kernels/moldyn.cpp" "src/kernels/CMakeFiles/earthred_kernels.dir/moldyn.cpp.o" "gcc" "src/kernels/CMakeFiles/earthred_kernels.dir/moldyn.cpp.o.d"
  "/root/repo/src/kernels/spmv_t.cpp" "src/kernels/CMakeFiles/earthred_kernels.dir/spmv_t.cpp.o" "gcc" "src/kernels/CMakeFiles/earthred_kernels.dir/spmv_t.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/earthred_support.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/earthred_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/earthred_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/earth/CMakeFiles/earthred_earth.dir/DependInfo.cmake"
  "/root/repo/build/src/inspector/CMakeFiles/earthred_inspector.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/earthred_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
