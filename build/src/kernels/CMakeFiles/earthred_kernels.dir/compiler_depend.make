# Empty compiler generated dependencies file for earthred_kernels.
# This may be replaced when dependencies are built.
