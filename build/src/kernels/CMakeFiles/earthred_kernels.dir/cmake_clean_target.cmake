file(REMOVE_RECURSE
  "libearthred_kernels.a"
)
