file(REMOVE_RECURSE
  "CMakeFiles/earthred_kernels.dir/adaptive_moldyn.cpp.o"
  "CMakeFiles/earthred_kernels.dir/adaptive_moldyn.cpp.o.d"
  "CMakeFiles/earthred_kernels.dir/euler.cpp.o"
  "CMakeFiles/earthred_kernels.dir/euler.cpp.o.d"
  "CMakeFiles/earthred_kernels.dir/fig1.cpp.o"
  "CMakeFiles/earthred_kernels.dir/fig1.cpp.o.d"
  "CMakeFiles/earthred_kernels.dir/moldyn.cpp.o"
  "CMakeFiles/earthred_kernels.dir/moldyn.cpp.o.d"
  "CMakeFiles/earthred_kernels.dir/spmv_t.cpp.o"
  "CMakeFiles/earthred_kernels.dir/spmv_t.cpp.o.d"
  "libearthred_kernels.a"
  "libearthred_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthred_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
