
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cg.cpp" "src/core/CMakeFiles/earthred_core.dir/cg.cpp.o" "gcc" "src/core/CMakeFiles/earthred_core.dir/cg.cpp.o.d"
  "/root/repo/src/core/classic_engine.cpp" "src/core/CMakeFiles/earthred_core.dir/classic_engine.cpp.o" "gcc" "src/core/CMakeFiles/earthred_core.dir/classic_engine.cpp.o.d"
  "/root/repo/src/core/collectives.cpp" "src/core/CMakeFiles/earthred_core.dir/collectives.cpp.o" "gcc" "src/core/CMakeFiles/earthred_core.dir/collectives.cpp.o.d"
  "/root/repo/src/core/mvm_engine.cpp" "src/core/CMakeFiles/earthred_core.dir/mvm_engine.cpp.o" "gcc" "src/core/CMakeFiles/earthred_core.dir/mvm_engine.cpp.o.d"
  "/root/repo/src/core/mvm_pull_engine.cpp" "src/core/CMakeFiles/earthred_core.dir/mvm_pull_engine.cpp.o" "gcc" "src/core/CMakeFiles/earthred_core.dir/mvm_pull_engine.cpp.o.d"
  "/root/repo/src/core/native_engine.cpp" "src/core/CMakeFiles/earthred_core.dir/native_engine.cpp.o" "gcc" "src/core/CMakeFiles/earthred_core.dir/native_engine.cpp.o.d"
  "/root/repo/src/core/reduction_engine.cpp" "src/core/CMakeFiles/earthred_core.dir/reduction_engine.cpp.o" "gcc" "src/core/CMakeFiles/earthred_core.dir/reduction_engine.cpp.o.d"
  "/root/repo/src/core/sequential.cpp" "src/core/CMakeFiles/earthred_core.dir/sequential.cpp.o" "gcc" "src/core/CMakeFiles/earthred_core.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/earthred_support.dir/DependInfo.cmake"
  "/root/repo/build/src/earth/CMakeFiles/earthred_earth.dir/DependInfo.cmake"
  "/root/repo/build/src/inspector/CMakeFiles/earthred_inspector.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/earthred_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
