# Empty dependencies file for earthred_core.
# This may be replaced when dependencies are built.
