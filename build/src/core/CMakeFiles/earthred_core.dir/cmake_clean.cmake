file(REMOVE_RECURSE
  "CMakeFiles/earthred_core.dir/cg.cpp.o"
  "CMakeFiles/earthred_core.dir/cg.cpp.o.d"
  "CMakeFiles/earthred_core.dir/classic_engine.cpp.o"
  "CMakeFiles/earthred_core.dir/classic_engine.cpp.o.d"
  "CMakeFiles/earthred_core.dir/collectives.cpp.o"
  "CMakeFiles/earthred_core.dir/collectives.cpp.o.d"
  "CMakeFiles/earthred_core.dir/mvm_engine.cpp.o"
  "CMakeFiles/earthred_core.dir/mvm_engine.cpp.o.d"
  "CMakeFiles/earthred_core.dir/mvm_pull_engine.cpp.o"
  "CMakeFiles/earthred_core.dir/mvm_pull_engine.cpp.o.d"
  "CMakeFiles/earthred_core.dir/native_engine.cpp.o"
  "CMakeFiles/earthred_core.dir/native_engine.cpp.o.d"
  "CMakeFiles/earthred_core.dir/reduction_engine.cpp.o"
  "CMakeFiles/earthred_core.dir/reduction_engine.cpp.o.d"
  "CMakeFiles/earthred_core.dir/sequential.cpp.o"
  "CMakeFiles/earthred_core.dir/sequential.cpp.o.d"
  "libearthred_core.a"
  "libearthred_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthred_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
