file(REMOVE_RECURSE
  "libearthred_core.a"
)
