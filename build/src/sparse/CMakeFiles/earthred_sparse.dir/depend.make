# Empty dependencies file for earthred_sparse.
# This may be replaced when dependencies are built.
