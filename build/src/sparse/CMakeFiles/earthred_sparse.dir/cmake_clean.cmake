file(REMOVE_RECURSE
  "CMakeFiles/earthred_sparse.dir/csr.cpp.o"
  "CMakeFiles/earthred_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/earthred_sparse.dir/io.cpp.o"
  "CMakeFiles/earthred_sparse.dir/io.cpp.o.d"
  "CMakeFiles/earthred_sparse.dir/nas_cg.cpp.o"
  "CMakeFiles/earthred_sparse.dir/nas_cg.cpp.o.d"
  "libearthred_sparse.a"
  "libearthred_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthred_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
