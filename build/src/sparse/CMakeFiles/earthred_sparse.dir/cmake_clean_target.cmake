file(REMOVE_RECURSE
  "libearthred_sparse.a"
)
