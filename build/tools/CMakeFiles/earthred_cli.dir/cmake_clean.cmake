file(REMOVE_RECURSE
  "CMakeFiles/earthred_cli.dir/earthred_cli.cpp.o"
  "CMakeFiles/earthred_cli.dir/earthred_cli.cpp.o.d"
  "earthred"
  "earthred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthred_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
