# Empty compiler generated dependencies file for earthred_cli.
# This may be replaced when dependencies are built.
