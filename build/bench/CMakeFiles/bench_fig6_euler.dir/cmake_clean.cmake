file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_euler.dir/bench_fig6_euler.cpp.o"
  "CMakeFiles/bench_fig6_euler.dir/bench_fig6_euler.cpp.o.d"
  "bench_fig6_euler"
  "bench_fig6_euler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_euler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
