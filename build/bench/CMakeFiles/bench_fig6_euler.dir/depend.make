# Empty dependencies file for bench_fig6_euler.
# This may be replaced when dependencies are built.
