# Empty dependencies file for bench_fig5_mvm_b.
# This may be replaced when dependencies are built.
