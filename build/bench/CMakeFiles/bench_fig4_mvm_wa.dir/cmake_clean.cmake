file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_mvm_wa.dir/bench_fig4_mvm_wa.cpp.o"
  "CMakeFiles/bench_fig4_mvm_wa.dir/bench_fig4_mvm_wa.cpp.o.d"
  "bench_fig4_mvm_wa"
  "bench_fig4_mvm_wa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_mvm_wa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
