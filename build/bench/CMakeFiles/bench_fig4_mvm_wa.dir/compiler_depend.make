# Empty compiler generated dependencies file for bench_fig4_mvm_wa.
# This may be replaced when dependencies are built.
