file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pull.dir/bench_ablation_pull.cpp.o"
  "CMakeFiles/bench_ablation_pull.dir/bench_ablation_pull.cpp.o.d"
  "bench_ablation_pull"
  "bench_ablation_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
