file(REMOVE_RECURSE
  "CMakeFiles/bench_classic_vs_light.dir/bench_classic_vs_light.cpp.o"
  "CMakeFiles/bench_classic_vs_light.dir/bench_classic_vs_light.cpp.o.d"
  "bench_classic_vs_light"
  "bench_classic_vs_light.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classic_vs_light.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
