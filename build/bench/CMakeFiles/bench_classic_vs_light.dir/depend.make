# Empty dependencies file for bench_classic_vs_light.
# This may be replaced when dependencies are built.
