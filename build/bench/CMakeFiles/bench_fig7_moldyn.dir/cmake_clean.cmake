file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_moldyn.dir/bench_fig7_moldyn.cpp.o"
  "CMakeFiles/bench_fig7_moldyn.dir/bench_fig7_moldyn.cpp.o.d"
  "bench_fig7_moldyn"
  "bench_fig7_moldyn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_moldyn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
