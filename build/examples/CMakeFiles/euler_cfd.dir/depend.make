# Empty dependencies file for euler_cfd.
# This may be replaced when dependencies are built.
