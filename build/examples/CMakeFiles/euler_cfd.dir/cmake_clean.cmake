file(REMOVE_RECURSE
  "CMakeFiles/euler_cfd.dir/euler_cfd.cpp.o"
  "CMakeFiles/euler_cfd.dir/euler_cfd.cpp.o.d"
  "euler_cfd"
  "euler_cfd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/euler_cfd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
