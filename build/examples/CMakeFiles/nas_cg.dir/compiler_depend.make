# Empty compiler generated dependencies file for nas_cg.
# This may be replaced when dependencies are built.
