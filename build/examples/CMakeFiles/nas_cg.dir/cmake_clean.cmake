file(REMOVE_RECURSE
  "CMakeFiles/nas_cg.dir/nas_cg.cpp.o"
  "CMakeFiles/nas_cg.dir/nas_cg.cpp.o.d"
  "nas_cg"
  "nas_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nas_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
