file(REMOVE_RECURSE
  "CMakeFiles/moldyn_md.dir/moldyn_md.cpp.o"
  "CMakeFiles/moldyn_md.dir/moldyn_md.cpp.o.d"
  "moldyn_md"
  "moldyn_md.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moldyn_md.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
