# Empty dependencies file for moldyn_md.
# This may be replaced when dependencies are built.
