
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_mesh.cpp" "tests/CMakeFiles/test_mesh.dir/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/test_mesh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/earthred_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/earthred_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/earthred_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/earthred_core.dir/DependInfo.cmake"
  "/root/repo/build/src/earth/CMakeFiles/earthred_earth.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/earthred_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/inspector/CMakeFiles/earthred_inspector.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/earthred_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
