file(REMOVE_RECURSE
  "CMakeFiles/test_classic_inspector.dir/test_classic_inspector.cpp.o"
  "CMakeFiles/test_classic_inspector.dir/test_classic_inspector.cpp.o.d"
  "test_classic_inspector"
  "test_classic_inspector.pdb"
  "test_classic_inspector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classic_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
