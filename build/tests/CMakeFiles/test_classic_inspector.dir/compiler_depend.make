# Empty compiler generated dependencies file for test_classic_inspector.
# This may be replaced when dependencies are built.
