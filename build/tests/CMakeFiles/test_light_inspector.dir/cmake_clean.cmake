file(REMOVE_RECURSE
  "CMakeFiles/test_light_inspector.dir/test_light_inspector.cpp.o"
  "CMakeFiles/test_light_inspector.dir/test_light_inspector.cpp.o.d"
  "test_light_inspector"
  "test_light_inspector.pdb"
  "test_light_inspector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_light_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
