# Empty dependencies file for test_light_inspector.
# This may be replaced when dependencies are built.
