file(REMOVE_RECURSE
  "CMakeFiles/test_machine_fuzz.dir/test_machine_fuzz.cpp.o"
  "CMakeFiles/test_machine_fuzz.dir/test_machine_fuzz.cpp.o.d"
  "test_machine_fuzz"
  "test_machine_fuzz.pdb"
  "test_machine_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
