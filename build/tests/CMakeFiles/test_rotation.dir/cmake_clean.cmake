file(REMOVE_RECURSE
  "CMakeFiles/test_rotation.dir/test_rotation.cpp.o"
  "CMakeFiles/test_rotation.dir/test_rotation.cpp.o.d"
  "test_rotation"
  "test_rotation.pdb"
  "test_rotation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
