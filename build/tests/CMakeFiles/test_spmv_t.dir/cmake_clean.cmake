file(REMOVE_RECURSE
  "CMakeFiles/test_spmv_t.dir/test_spmv_t.cpp.o"
  "CMakeFiles/test_spmv_t.dir/test_spmv_t.cpp.o.d"
  "test_spmv_t"
  "test_spmv_t.pdb"
  "test_spmv_t[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spmv_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
