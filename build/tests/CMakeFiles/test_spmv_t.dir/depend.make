# Empty dependencies file for test_spmv_t.
# This may be replaced when dependencies are built.
