# Empty compiler generated dependencies file for test_cg.
# This may be replaced when dependencies are built.
