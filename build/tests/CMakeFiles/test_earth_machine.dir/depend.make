# Empty dependencies file for test_earth_machine.
# This may be replaced when dependencies are built.
