file(REMOVE_RECURSE
  "CMakeFiles/test_earth_machine.dir/test_earth_machine.cpp.o"
  "CMakeFiles/test_earth_machine.dir/test_earth_machine.cpp.o.d"
  "test_earth_machine"
  "test_earth_machine.pdb"
  "test_earth_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_earth_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
