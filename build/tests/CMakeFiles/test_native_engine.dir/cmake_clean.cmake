file(REMOVE_RECURSE
  "CMakeFiles/test_native_engine.dir/test_native_engine.cpp.o"
  "CMakeFiles/test_native_engine.dir/test_native_engine.cpp.o.d"
  "test_native_engine"
  "test_native_engine.pdb"
  "test_native_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_native_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
