# Empty compiler generated dependencies file for test_pathological.
# This may be replaced when dependencies are built.
