file(REMOVE_RECURSE
  "CMakeFiles/test_pathological.dir/test_pathological.cpp.o"
  "CMakeFiles/test_pathological.dir/test_pathological.cpp.o.d"
  "test_pathological"
  "test_pathological.pdb"
  "test_pathological[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pathological.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
