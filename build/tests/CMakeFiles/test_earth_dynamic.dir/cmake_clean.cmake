file(REMOVE_RECURSE
  "CMakeFiles/test_earth_dynamic.dir/test_earth_dynamic.cpp.o"
  "CMakeFiles/test_earth_dynamic.dir/test_earth_dynamic.cpp.o.d"
  "test_earth_dynamic"
  "test_earth_dynamic.pdb"
  "test_earth_dynamic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_earth_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
