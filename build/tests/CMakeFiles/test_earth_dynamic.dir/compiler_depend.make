# Empty compiler generated dependencies file for test_earth_dynamic.
# This may be replaced when dependencies are built.
