# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_earth_machine[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_rotation[1]_include.cmake")
include("/root/repo/build/tests/test_light_inspector[1]_include.cmake")
include("/root/repo/build/tests/test_classic_inspector[1]_include.cmake")
include("/root/repo/build/tests/test_engines[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_native_engine[1]_include.cmake")
include("/root/repo/build/tests/test_param_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_earth_dynamic[1]_include.cmake")
include("/root/repo/build/tests/test_cg[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_spmv_t[1]_include.cmake")
include("/root/repo/build/tests/test_pathological[1]_include.cmake")
include("/root/repo/build/tests/test_timing_properties[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_optimize[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
include("/root/repo/build/tests/test_machine_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
