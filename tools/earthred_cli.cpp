// earthred — command-line front end to the library.
//
//   earthred gen-mesh   --preset=euler-small|euler-large|moldyn-small|
//                        moldyn-large | --nodes=N --edges=E [--seed=S]
//                        --out=mesh.txt
//   earthred gen-matrix --class=s|w|a|b --out=matrix.mtx
//   earthred info       --mesh=mesh.txt
//   earthred run        --kernel=euler|moldyn|fig1 [--mesh=mesh.txt]
//                        [--procs=P] [--k=K] [--dist=block|cyclic|bc]
//                        [--sweeps=N] [--engine=rotation|classic|native]
//                        [--gantt]
//                        native engine only:
//                        [--batch|--no-batch] (batched compute_phase hot
//                        path, default on) [--pin] (worker pinning +
//                        first-touch) [--parallel-build[=T]] (plan build
//                        task pool; T omitted = all cores)
//                        [--backend=auto|scalar|avx2|avx512] (compute
//                        backend for the batched loops; auto picks the
//                        widest tier the host supports, an explicit tier
//                        the host lacks fails with E-BACKEND-UNSUPPORTED;
//                        all tiers are bit-identical)
//                        [--strategy=auto|phased|privatized|atomic]
//                        (lowering strategy: phased rotation engine,
//                        per-worker privatized replicas with a fixed
//                        worker-ascending fold, or opt-in atomic CAS
//                        scatter; auto scores all three with the cost
//                        model in src/core/strategy.cpp and never picks
//                        atomic for floating-point accumulators)
//                        [--layout=none|rcm|auto] (data-layout pass at
//                        plan build: RCM renumbering of the reduction
//                        arrays + target-stable edge reorder + cache
//                        tiles with software prefetch; results are
//                        bit-identical to layout=none by construction.
//                        rcm fails on kernels that cannot renumber,
//                        auto falls back to none there)
//                        fault injection (engine=rotation only):
//                        [--fault-drop=p] [--fault-corrupt=p]
//                        [--fault-dup=p] [--fault-delay=p]
//                        [--fault-delay-cycles=C] [--fault-seed=S]
//                        [--fault-dead-link=src:dst] [--reliable]
//   earthred compile    --file=loop.dsl [--emit]
//   earthred check      <loop.dsl> | --file=loop.dsl
//                        [--explain] [--json] [--Werror]
//                        [--strategy=auto|phased|privatized|atomic]
//                        [--procs=P] [--k=K]
//                        (reduction-legality analysis + per-loop lowering
//                        strategy selection: prints every diagnostic with
//                        source snippets; --explain adds I-STRATEGY-*
//                        notes and the rendered lowering plan; --strategy
//                        forces one lowering and reports what auto would
//                        have picked; --procs/--k parameterize the cost
//                        model; --json emits one machine-readable object
//                        (diagnostics + per-loop strategy scores) on
//                        stdout. Exit 1 on errors, 2 with --Werror when
//                        warnings remain, else 0.)
//   earthred batch      --jobs=jobs.txt [--workers=W] [--queue=N]
//                        [--backend=...] (default compute backend for
//                        jobs that don't carry their own backend= key)
//                        [--strategy=...] (default lowering strategy for
//                        jobs without their own strategy= key)
//                        [--layout=...] (default data-layout pass for
//                        jobs without their own layout= key)
//                        [--cache-mb=M] [--no-cache] [--deadline=S]
//                        [--plan-store=DIR] (persistent plan tier: plans
//                        load zero-copy from DIR and new builds persist)
//                        [--json=out.jsonl] [--quiet]
//   earthred serve      (batch mode reading the job list from stdin)
//   earthred serve      --listen=PORT [--host=H] [--max-conns=N]
//                        [--max-inflight=N] [--drain-grace=S] plus the
//                        batch scheduler flags: networked front end
//                        speaking the framed binary protocol of
//                        src/net/wire.hpp; file-referencing jobs
//                        (mesh=/dsl=) are refused (E-JOB-FILEIO) since
//                        remote peers must not name server-side paths
//   earthred submit     --connect=HOST:PORT --job="..." | --jobs=FILE
//                        [--retries=N] [--timeout-ms=T]: submits job
//                        lines to a remote server with jittered
//                        exponential-backoff retries and a circuit
//                        breaker (src/net/client.hpp); prints each
//                        outcome with its result digest
//   earthred ping       --connect=HOST:PORT: health probe (queue depth,
//                        in-flight, drain state)
//   earthred route      --shards=HOST:PORT,... | --shard-file=FILE
//                        [--listen=PORT] [--host=H] [--max-conns=N]
//                        [--shard-inflight=N] [--retries=N]
//                        [--timeout-ms=T] [--drain-grace=S] [--json=F]:
//                        shard-router front end — speaks the same wire
//                        protocol as serve on both faces and forwards
//                        each Submit to the shard owning its plan
//                        content key (rendezvous hashing, so identical
//                        jobs always hit the same warm PlanCache); a
//                        dead or breaker-open shard fails over along the
//                        HRW rank order and the Result is flagged
//                        X-rerouted. Prints `LISTENING <port>` on
//                        stdout once bound. First signal drains the
//                        whole fleet (shards first, router last).
//   earthred fleet      status|drain --connect=HOST:PORT |
//                        --shards=HOST:PORT,... | --shard-file=FILE:
//                        fleet orchestration. `status` pings every
//                        endpoint and tables queue depth, drain state
//                        and the advertised plan-cache identity (entry
//                        count + content-key digest). `drain` sends the
//                        Drain control frame — pointed at a router it
//                        quiesces the whole fleet router-last.
//   earthred version    (also --version): build info, compiled compute
//                        backends, detected CPU features (CPUID/xgetbv),
//                        the backend `auto` resolves to on this host, and
//                        the detected cache sizes (L1d/L2/LLC + line
//                        width) that size the layout pass's tiles
//   earthred plan       save|load|ls --store=DIR
//                        save/load take the same kernel/mesh keys as run
//                        (--kernel --preset/--mesh/--nodes --edges --seed)
//                        plus --procs --k --dist [--bc=N] [--dedup]:
//                        `save` builds + verifies + persists the plan,
//                        `load` round-trips it through the full validation
//                        chain (exit 1 with the E-STORE-* code on any
//                        rejection), `ls` tables every *.plan file.
//
// `run` additionally accepts --check: build the execution plan, prove the
// rotation invariants AND cross-check every scheduled reference against
// the kernel's indirection (core::verify_execution_plan) before any sweep
// runs; violations print to stderr and exit 1.
//
// Job list format (batch/serve): one job per line, `key=value` tokens
// separated by whitespace; blank lines and lines starting with '#' are
// skipped. Keys: kernel=euler|moldyn|fig1, mesh=<file> or
// preset=<name> or nodes=N edges=E [seed=S], procs=P, k=K,
// dist=block|cyclic|bc [bc=CHUNK], sweeps=N, [dedup], [deadline=S],
// [engine=native|sim], [name=LABEL], [no-batch], [pin],
// [parallel-build[=T]], [verify=on|off] (plan verification before the
// sweeps; defaults to the build type's PlanOptions::verify),
// [backend=auto|scalar|avx2|avx512] (compute backend; an unsupported
// tier is rejected at admission with E-BACKEND-UNSUPPORTED, auto never
// rejects), [strategy=auto|phased|privatized|atomic] (lowering strategy;
// a forced strategy the host cannot honor — or forced privatized replicas
// over the admission byte budget — is rejected with
// E-STRATEGY-UNSUPPORTED, auto never rejects), [layout=none|rcm|auto]
// (data-layout pass; forks the plan key and shard routing when
// non-default, bit-identical results either way). Jobs on the same mesh
// share one cached execution plan (see src/service/plan_cache.hpp) — the
// backend never forks the plan key, since every backend is bit-identical
// by contract, but a concrete strategy= DOES fork it, since strategies
// may legally differ in floating-point summation order.
//
// Adaptive jobs: mutate=N [mutate-seed=S] rewires N random interactions
// of the job's mesh and submits the mutated kernel with the *base* mesh's
// fingerprint as its patch base — the service patches the cached base
// plan incrementally (PlanCache::patch_or_build) instead of rebuilding,
// falling back transparently if no base plan is resident.
//
// DSL jobs: dsl=<loop.dsl> replaces kernel=/mesh= — the program is
// admission-checked by the service (illegal loops are Rejected with the
// first diagnostic and counted in the stats), and a legal program is
// compiled, bound to a synthesized environment (nodes=N edges=E seed=S
// keys size it), and submitted as one job per fissioned loop.
//
// Exit status: 0 on success, 1 on usage/data errors (message on stderr);
// batch/serve exit 1 if any job failed or was rejected (malformed job
// lines are reported as coded rows, they do not abort the batch).
//
// Graceful drain: batch/serve install SIGINT/SIGTERM handlers. The first
// signal stops admission and drains — in-flight jobs finish, queued jobs
// past their deadline are rejected with the deadline reason — and the
// second signal aborts everything still queued. A run ended by the
// second signal exits 3, so scripts can tell a forced shutdown from a
// clean (even if partly failed) drain.
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "compiler/check.hpp"
#include "compiler/codegen.hpp"
#include "compiler/compiler.hpp"
#include "compiler/strategy.hpp"
#include "core/strategy.hpp"
#include "core/classic_engine.hpp"
#include "core/native_engine.hpp"
#include "core/reduction_engine.hpp"
#include "core/sequential.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "mesh/mesh.hpp"
#include "net/client.hpp"
#include "service/job_builder.hpp"
#include "service/job_scheduler.hpp"
#include "service/plan_store.hpp"
#include "service/serve_loop.hpp"
#include "service/signals.hpp"
#include "shard/shard_map.hpp"
#include "shard/shard_router.hpp"
#include "sparse/io.hpp"
#include "sparse/nas_cg.hpp"
#include "support/check.hpp"
#include "support/cpu_features.hpp"
#include "support/json.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"
#include "support/table.hpp"

namespace earthred {
namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: earthred "
      "<gen-mesh|gen-matrix|info|run|compile|check|batch|serve|submit|"
      "ping|route|fleet|plan|version> "
      "[--flags]\n(see the header of tools/earthred_cli.cpp)\n");
  return 1;
}

std::unique_ptr<core::PhasedKernel> make_kernel(const std::string& kname,
                                                mesh::Mesh m) {
  if (kname == "euler")
    return std::make_unique<kernels::EulerKernel>(std::move(m));
  if (kname == "moldyn")
    return std::make_unique<kernels::MoldynKernel>(std::move(m));
  if (kname == "fig1")
    return std::make_unique<kernels::Fig1Kernel>(
        kernels::Fig1Kernel::with_integer_values(std::move(m)));
  throw check_error("unknown kernel '" + kname + "' (euler|moldyn|fig1)");
}

mesh::Mesh mesh_from_options(const Options& opt) {
  const std::string preset = opt.get("preset");
  if (preset == "euler-small") return mesh::euler_mesh_small();
  if (preset == "euler-large") return mesh::euler_mesh_large();
  if (preset == "moldyn-small") return mesh::moldyn_small();
  if (preset == "moldyn-large") return mesh::moldyn_large();
  if (!preset.empty())
    throw check_error("unknown preset '" + preset + "'");
  if (opt.has("mesh")) return mesh::load_mesh(opt.get("mesh"));
  const auto nodes = static_cast<std::uint32_t>(opt.get_int("nodes", 1000));
  const auto edges =
      static_cast<std::uint64_t>(opt.get_int("edges", 5000));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));
  return mesh::make_geometric_mesh({nodes, edges, seed});
}

int cmd_gen_mesh(const Options& opt) {
  const mesh::Mesh m = mesh_from_options(opt);
  const std::string out = opt.get("out");
  if (out.empty()) {
    mesh::write_mesh(std::cout, m);
  } else {
    mesh::save_mesh(out, m);
    std::printf("wrote %u nodes, %llu edges to %s\n", m.num_nodes,
                static_cast<unsigned long long>(m.num_edges()),
                out.c_str());
  }
  return 0;
}

int cmd_gen_matrix(const Options& opt) {
  const std::string cls = opt.get("class", "s");
  sparse::NasCgParams params;
  if (cls == "s") params = sparse::nas_class_s();
  else if (cls == "w") params = sparse::nas_class_w();
  else if (cls == "a") params = sparse::nas_class_a();
  else if (cls == "b") params = sparse::nas_class_b();
  else throw check_error("unknown class '" + cls + "' (s|w|a|b)");
  const sparse::CsrMatrix m = sparse::make_nas_cg_matrix(params);
  const std::string out = opt.get("out");
  if (out.empty()) {
    sparse::write_matrix_market(std::cout, m);
  } else {
    sparse::save_matrix_market(out, m);
    std::printf("wrote %s rows, %s nonzeros to %s\n",
                fmt_group(m.nrows()).c_str(),
                fmt_group(static_cast<long long>(m.nnz())).c_str(),
                out.c_str());
  }
  return 0;
}

int cmd_info(const Options& opt) {
  const mesh::Mesh m = mesh_from_options(opt);
  const auto deg = mesh::node_degrees(m);
  std::vector<double> degd(deg.begin(), deg.end());
  const Summary s = summarize(degd);
  Table t("mesh info");
  t.set_header({"property", "value"});
  t.add_row({"nodes", fmt_group(m.num_nodes)});
  t.add_row({"edges", fmt_group(static_cast<long long>(m.num_edges()))});
  t.add_row({"degree mean", fmt_f(s.mean, 2)});
  t.add_row({"degree max", fmt_f(s.max, 0)});
  t.add_row({"bandwidth",
             fmt_group(static_cast<long long>(mesh::mesh_bandwidth(m)))});
  t.add_row({"has coords", m.coords.empty() ? "no" : "yes"});
  t.print(std::cout);
  return 0;
}

/// Shared parsing of the native-engine hot-path knobs (`run` flags and
/// batch/serve job-line keys): --batch/--no-batch, --pin,
/// --parallel-build[=T] (T omitted = one build thread per core).
void hotpath_from_options(const Options& opt, bool& batch,
                          core::AffinityOptions& affinity,
                          std::uint32_t& build_threads,
                          core::BackendKind& backend) {
  batch = opt.has("no-batch") ? false : opt.get_bool("batch", true);
  backend = core::parse_backend(opt.get("backend", "auto"));
  if (opt.get_bool("pin", false)) {
    affinity.pin_threads = true;
    affinity.first_touch = true;
  }
  if (opt.has("parallel-build"))
    build_threads =
        static_cast<std::uint32_t>(opt.get_int("parallel-build", 0));
}

earth::FaultConfig fault_from_options(const Options& opt) {
  earth::FaultConfig fc;
  fc.drop = opt.get_double("fault-drop", 0.0);
  fc.corrupt = opt.get_double("fault-corrupt", 0.0);
  fc.duplicate = opt.get_double("fault-dup", 0.0);
  fc.delay = opt.get_double("fault-delay", 0.0);
  fc.delay_cycles =
      static_cast<earth::Cycles>(opt.get_int("fault-delay-cycles", 400));
  fc.seed = static_cast<std::uint64_t>(opt.get_int("fault-seed", 0x5eed));
  const std::string link = opt.get("fault-dead-link");
  if (!link.empty()) {
    const auto colon = link.find(':');
    const auto numeric = [](const std::string& s) {
      return !s.empty() && s.find_first_not_of("0123456789") ==
                               std::string::npos;
    };
    ER_CHECK_MSG(colon != std::string::npos &&
                     numeric(link.substr(0, colon)) &&
                     numeric(link.substr(colon + 1)),
                 "--fault-dead-link expects src:dst (numeric node ids), "
                 "got '" + link + "'");
    fc.dead_links.emplace_back(
        static_cast<earth::NodeId>(std::stoul(link.substr(0, colon))),
        static_cast<earth::NodeId>(std::stoul(link.substr(colon + 1))));
  }
  fc.enabled = fc.drop > 0.0 || fc.corrupt > 0.0 || fc.duplicate > 0.0 ||
               fc.delay > 0.0 || !fc.dead_links.empty();
  return fc;
}

/// Reads a whole text file (DSL sources for check/compile and `dsl=` job
/// keys).
std::string read_file(const std::string& path) {
  std::ifstream is(path);
  ER_CHECK_MSG(is.good(), "cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

int cmd_run(const Options& opt) {
  const std::string kname = opt.get("kernel", "euler");
  const std::unique_ptr<core::PhasedKernel> kernel =
      make_kernel(kname, mesh_from_options(opt));

  const auto procs = static_cast<std::uint32_t>(opt.get_int("procs", 8));
  const auto k = static_cast<std::uint32_t>(opt.get_int("k", 2));
  const auto sweeps = static_cast<std::uint32_t>(opt.get_int("sweeps", 10));
  const auto dist = inspector::parse_distribution(opt.get("dist", "cyclic"));
  const std::string engine = opt.get("engine", "rotation");

  // --backend is a native-engine knob. Validate the spelling up front so
  // a typo fails loudly on every engine, and refuse a concrete tier on
  // the simulated engines, which would otherwise silently ignore it.
  if (opt.has("backend")) {
    const core::BackendKind requested =
        core::parse_backend(opt.get("backend"));
    if (engine != "native" && requested != core::BackendKind::Auto)
      throw check_error("--backend=" + opt.get("backend") +
                        " only applies to --engine=native (the '" + engine +
                        "' engine simulates per-edge execution)");
  }
  // --strategy likewise picks a native lowering (phased rotation,
  // privatized replicas, or atomic scatter); the simulated engines only
  // model the phased rotation, so a concrete strategy is refused there.
  if (opt.has("strategy")) {
    const core::StrategyKind requested =
        core::parse_strategy(opt.get("strategy"));
    if (engine != "native" && requested != core::StrategyKind::Auto)
      throw check_error("--strategy=" + opt.get("strategy") +
                        " only applies to --engine=native (the '" + engine +
                        "' engine simulates the phased rotation only)");
  }
  // --layout is a plan-build knob of the native engine (the renumbering
  // is applied and un-applied inside run_native_plan); the simulated
  // engines never see it, so a concrete value is refused there.
  if (opt.has("layout")) {
    const core::LayoutKind requested = core::parse_layout(opt.get("layout"));
    if (engine != "native" && requested != core::LayoutKind::None)
      throw check_error("--layout=" + opt.get("layout") +
                        " only applies to --engine=native");
  }

  if (opt.get_bool("check", false)) {
    // Prove the plan before running anything: full structural invariants
    // plus the kernel indirection cross-check. Engine-independent — the
    // same rotation schedule underlies native and simulated execution.
    core::PlanOptions popt;
    popt.num_procs = procs;
    popt.k = k;
    popt.distribution = dist;
    popt.layout = core::parse_layout(opt.get("layout", "none"));
    popt.verify = false;  // the explicit full check below supersedes it
    const core::ExecutionPlan plan =
        core::build_execution_plan(*kernel, popt);
    const inspector::PlanVerifyReport vr =
        core::verify_execution_plan(plan, kernel.get());
    if (!vr.ok()) {
      std::fprintf(stderr, "%splan verification failed: %llu violation(s)\n",
                   vr.render().c_str(),
                   static_cast<unsigned long long>(vr.violations));
      return 1;
    }
    std::printf("plan verified: %s iterations, %s references, %s fold-backs "
                "— all rotation invariants hold\n",
                fmt_group(static_cast<long long>(vr.checked_iterations))
                    .c_str(),
                fmt_group(static_cast<long long>(vr.checked_refs)).c_str(),
                fmt_group(static_cast<long long>(vr.checked_folds)).c_str());
  }

  core::SequentialOptions sopt;
  sopt.sweeps = sweeps;
  sopt.collect_results = false;
  const core::RunResult seq = core::run_sequential_kernel(*kernel, sopt);

  Table t("run: " + kname + " P=" + std::to_string(procs) +
          " k=" + std::to_string(k) + " " + to_string(dist));
  t.set_header({"metric", "value"});
  if (engine == "native") {
    core::NativeOptions nopt;
    nopt.num_procs = procs;
    nopt.k = k;
    nopt.distribution = dist;
    nopt.sweeps = sweeps;
    hotpath_from_options(opt, nopt.batch, nopt.affinity,
                         nopt.build_threads, nopt.backend);
    nopt.strategy = core::parse_strategy(opt.get("strategy", "auto"));
    nopt.layout = core::parse_layout(opt.get("layout", "none"));
    const core::ExecutionPlan plan =
        core::build_execution_plan(*kernel, nopt.plan());
    const core::NativeResult r =
        core::run_native_plan(*kernel, plan, nopt.sweep());
    t.add_row({"plan build seconds", fmt_f(plan.build_seconds, 4)});
    t.add_row({"wall seconds (host threads)", fmt_f(r.wall_seconds, 4)});
    t.add_row({"executor", nopt.batch ? "batched" : "per-edge"});
    t.add_row({"backend", std::string(core::to_string(r.backend))});
    t.add_row({"strategy", std::string(core::to_string(r.strategy))});
    t.add_row({"layout", std::string(core::to_string(plan.applied_layout)) +
                             (plan.tile_iters
                                  ? " (tile " +
                                        std::to_string(plan.tile_iters) +
                                        " iters)"
                                  : "")});
  } else {
    core::RunResult r;
    if (engine == "classic") {
      core::ClassicOptions copt;
      copt.num_procs = procs;
      copt.distribution = dist;
      copt.sweeps = sweeps;
      copt.collect_results = false;
      r = core::run_classic_engine(*kernel, copt);
    } else if (engine == "rotation") {
      core::RotationOptions ropt;
      ropt.num_procs = procs;
      ropt.k = k;
      ropt.distribution = dist;
      ropt.sweeps = sweeps;
      ropt.collect_results = false;
      ropt.machine.trace = opt.get_bool("gantt", false);
      // Faults without --reliable are allowed: a lost message then
      // surfaces as the machine's quiescence check_error, which is the
      // watchdog demonstration, not a usage error.
      ropt.machine.fault = fault_from_options(opt);
      ropt.reliable = opt.get_bool("reliable", false);
      r = core::run_rotation_engine(*kernel, ropt);
    } else {
      throw check_error("unknown engine '" + engine +
                        "' (rotation|classic|native)");
    }
    t.add_row({"cycles", fmt_group(static_cast<long long>(r.total_cycles))});
    t.add_row({"inspector cycles",
               fmt_group(static_cast<long long>(r.inspector_cycles))});
    t.add_row({"speedup vs sequential",
               fmt_f(static_cast<double>(seq.total_cycles) /
                         static_cast<double>(r.total_cycles),
                     2)});
    t.add_row({"messages",
               fmt_group(static_cast<long long>(r.machine.total_msgs()))});
    t.add_row({"bytes",
               fmt_group(static_cast<long long>(r.machine.total_bytes()))});
    t.add_row({"cache miss rate", fmt_f(r.machine.cache_miss_rate(), 3)});
    t.add_row({"EU utilization", fmt_f(r.machine.eu_utilization(), 2)});
    t.add_row({"phase imbalance (CoV)",
               fmt_f(coefficient_of_variation(r.phase_iterations), 3)});
    if (r.machine.faults.injected() != 0 || r.reliable.sent != 0) {
      t.add_row({"faults injected",
                 fmt_group(static_cast<long long>(
                     r.machine.faults.injected())) +
                     " (drop " + std::to_string(r.machine.faults.dropped) +
                     ", corrupt " +
                     std::to_string(r.machine.faults.corrupted) + ", dup " +
                     std::to_string(r.machine.faults.duplicated) +
                     ", delay " +
                     std::to_string(r.machine.faults.delayed) + ")"});
      t.add_row({"reliable payloads",
                 fmt_group(static_cast<long long>(r.reliable.sent))});
      t.add_row({"retransmits",
                 fmt_group(static_cast<long long>(r.reliable.retransmits))});
      t.add_row({"acks sent",
                 fmt_group(static_cast<long long>(r.reliable.acks_sent))});
      t.add_row(
          {"frames rejected",
           std::to_string(r.reliable.rejected_stale) + " stale, " +
               std::to_string(r.reliable.rejected_corrupt) + " corrupt"});
    }
    t.print(std::cout);
    if (!r.gantt.empty()) std::printf("\n%s", r.gantt.c_str());
    return 0;
  }
  t.print(std::cout);
  return 0;
}

int cmd_compile(const Options& opt) {
  const std::string path = opt.get("file");
  if (path.empty()) throw check_error("compile needs --file=loop.dsl");

  compiler::CompileOptions copt;
  copt.optimize = opt.get_bool("optimize", false);
  const compiler::CompileResult result =
      compiler::compile(read_file(path), copt);
  if (copt.optimize)
    std::printf("optimizer: %zu folds, %zu propagations, %zu dead scalars "
                "removed\n",
                result.optimize_stats.folded,
                result.optimize_stats.propagated,
                result.optimize_stats.dead_removed);
  for (std::size_t li = 0; li < result.analysis.loops.size(); ++li) {
    const auto& la = result.analysis.loops[li];
    std::printf("loop %zu: %zu reduction section(s), %zu indirection "
                "section(s), %zu reference group(s)%s\n",
                li, la.reduction_sections.size(),
                la.indirection_sections.size(), la.groups.size(),
                la.needs_fission() ? " -> loop fission" : "");
    for (const auto& sec : la.reduction_sections)
      std::printf("  reduction   %s\n", sec.triplet().c_str());
    for (const auto& sec : la.indirection_sections)
      std::printf("  indirection %s\n", sec.triplet().c_str());
  }
  if (opt.get_bool("emit", false)) {
    for (std::size_t i = 0; i < result.threaded_c.size(); ++i)
      std::printf("\n// ---- fissioned loop %zu ----\n%s", i,
                  result.threaded_c[i].c_str());
  }
  return 0;
}

/// Serializes a StrategyReport's lowering plan as a JSON array of loops.
std::string lowering_plan_json(const compiler::LoweringPlan& plan) {
  std::vector<std::string> loops;
  for (const compiler::LoopStrategy& ls : plan.loops) {
    std::vector<std::string> chains;
    for (const compiler::ChainInfo& c : ls.chains) {
      std::vector<std::string> vias;
      for (const std::string& v : c.indirections)
        vias.push_back("\"" + json_escape(v) + "\"");
      JsonWriter cw;
      cw.field("array", c.array)
          .raw_field("indirections", json_array(vias))
          .field("elem",
                 c.elem == compiler::ElemType::Real ? "real" : "int")
          .field("updates_per_iteration",
                 static_cast<std::uint64_t>(c.updates_per_iteration))
          .field("has_subtract", c.has_subtract)
          .field("fanin", c.fanin);
      chains.push_back(cw.str());
    }
    std::vector<std::string> scores;
    for (const core::StrategyCost& s : ls.scores) {
      JsonWriter sw;
      sw.field("strategy", std::string(core::to_string(s.strategy)))
          .field("cost_per_edge", s.cost_per_edge)
          .field("auto_eligible", s.auto_eligible)
          .field("rationale", s.rationale);
      scores.push_back(sw.str());
    }
    JsonWriter lw;
    lw.field("line", ls.line)
        .field("legal", ls.legal)
        .field("strategy", std::string(core::to_string(ls.chosen)))
        .field("rationale", ls.rationale)
        .field("est_line_reuse", ls.est_line_reuse)
        .raw_field("chains", json_array(chains))
        .raw_field("scores", json_array(scores));
    loops.push_back(lw.str());
  }
  return json_array(loops);
}

int cmd_check(const Options& opt) {
  std::string path = opt.get("file");
  if (path.empty() && !opt.positional().empty())
    path = opt.positional().front();
  if (path.empty())
    throw check_error("check needs a DSL file: earthred check loop.dsl");
  const std::string source = read_file(path);

  compiler::StrategyContext ctx;
  ctx.explain = opt.get_bool("explain", false);
  ctx.forced = core::parse_strategy(opt.get("strategy", "auto"));
  ctx.num_procs = static_cast<std::uint32_t>(opt.get_int("procs", 4));
  ctx.k = static_cast<std::uint32_t>(opt.get_int("k", 2));
  const compiler::StrategyReport sr =
      compiler::check_source_with_strategies(source, ctx);
  const compiler::CheckReport& report = sr.check;

  const bool werror = opt.get_bool("Werror", false);
  const int exit_code = report.has_errors() ? 1
                        : werror && report.warning_count() > 0 ? 2
                                                               : 0;

  if (opt.get_bool("json", false)) {
    // One machine-readable object on stdout: what CI's lint gate and
    // editor integrations consume instead of scraping the text form.
    std::vector<std::string> diags;
    for (const Diagnostic& d : report.diagnostics) {
      JsonWriter dw;
      dw.field("line", d.line)
          .field("col", d.column)
          .field("severity", earthred::to_string(d.severity))
          .field("code", d.code)
          .field("message", d.message);
      diags.push_back(dw.str());
    }
    JsonWriter w;
    w.field("file", path)
        .field("errors", static_cast<std::uint64_t>(report.error_count()))
        .field("warnings",
               static_cast<std::uint64_t>(report.warning_count()))
        .field("werror", werror)
        .field("exit", static_cast<std::int64_t>(exit_code))
        .raw_field("diagnostics", json_array(diags))
        .raw_field("loops", lowering_plan_json(sr.lowering));
    std::printf("%s\n", w.str().c_str());
    return exit_code;
  }

  for (const Diagnostic& d : report.diagnostics)
    std::printf("%s:%s\n", path.c_str(), d.to_string().c_str());
  if (report.has_errors()) {
    std::printf("%s: %zu error(s), %zu warning(s) — not a legal irregular "
                "reduction\n",
                path.c_str(), report.error_count(), report.warning_count());
    return 1;
  }
  if (ctx.explain) std::printf("%s", sr.lowering.render().c_str());
  std::size_t reductions = 0;
  for (const compiler::LoopLegality& l : report.loops)
    reductions += l.reduction_writes;
  std::printf("%s: ok — %zu loop(s), %zu reduction statement(s), %zu "
              "warning(s)%s\n",
              path.c_str(), report.loops.size(), reductions,
              report.warning_count(),
              exit_code == 2 ? " [--Werror: warnings are fatal]" : "");
  return exit_code;
}

// ---- batch/serve: drive the reduction service from a job list ----------
// Job-line parsing lives in service::JobBuilder (shared with the
// networked ServeLoop and tests); the CLI only schedules, waits, and
// reports.

const char* to_string(service::JobState s) {
  switch (s) {
    case service::JobState::Pending: return "pending";
    case service::JobState::Rejected: return "rejected";
    case service::JobState::Done: return "done";
    case service::JobState::Failed: return "failed";
  }
  return "?";
}

const char* to_string(service::PlanCache::Outcome o) {
  switch (o) {
    case service::PlanCache::Outcome::Hit: return "cached";
    case service::PlanCache::Outcome::Coalesced: return "coalesced";
    case service::PlanCache::Outcome::Built: return "built";
    case service::PlanCache::Outcome::DiskLoaded: return "disk";
    case service::PlanCache::Outcome::Patched: return "patched";
  }
  return "?";
}

/// Scheduler configuration shared by batch, stdin serve, and the
/// networked `serve --listen`.
service::JobScheduler::Config scheduler_config(const Options& opt) {
  service::JobScheduler::Config cfg;
  cfg.workers = static_cast<std::uint32_t>(opt.get_int("workers", 4));
  cfg.queue_capacity =
      static_cast<std::size_t>(opt.get_int("queue", 256));
  cfg.default_deadline = opt.get_double("deadline", 30.0);
  cfg.cache.byte_budget =
      opt.get_bool("no-cache", false)
          ? 0
          : static_cast<std::uint64_t>(opt.get_int("cache-mb", 256)) << 20;
  if (opt.has("plan-store"))
    cfg.cache.store =
        std::make_shared<service::PlanStore>(opt.get("plan-store"));
  return cfg;
}

int run_service(std::istream& jobs_in, const Options& opt) {
  service::JobScheduler sched(scheduler_config(opt));
  service::JobBuilder builder;  // local front end: file IO allowed
  // Service-wide default compute backend: jobs whose line doesn't pick a
  // concrete backend= run on this (auto = widest supported tier).
  const core::BackendKind default_backend =
      core::parse_backend(opt.get("backend", "auto"));
  // Same shape for the lowering strategy; auto defers to the per-shape
  // cost model at execution time.
  const core::StrategyKind default_strategy =
      core::parse_strategy(opt.get("strategy", "auto"));
  // And for the data-layout pass: jobs without their own layout= key get
  // the service default.
  const core::LayoutKind default_layout =
      core::parse_layout(opt.get("layout", "none"));

  service::install_shutdown_signals();

  struct ParseReject {
    std::string name, code, detail;
  };
  std::vector<ParseReject> parse_rejects;
  std::vector<service::JobHandle> handles;
  std::string line;
  std::size_t lineno = 0;
  while (service::shutdown_signal_count() == 0 &&
         std::getline(jobs_in, line)) {
    ++lineno;
    service::JobBuild b = builder.build(line, lineno);
    if (!b.ok()) {
      // Malformed lines become coded rows in the report, not a batch
      // abort; blank/comment lines are simply not jobs.
      if (b.code != "E-JOB-EMPTY")
        parse_rejects.push_back(
            {"line " + std::to_string(lineno), b.code, b.detail});
      continue;
    }
    for (service::JobRequest& req : b.requests) {
      if (req.backend == core::BackendKind::Auto)
        req.backend = default_backend;
      if (req.plan.strategy == core::StrategyKind::Auto)
        req.plan.strategy = default_strategy;
      if (req.plan.layout == core::LayoutKind::None)
        req.plan.layout = default_layout;
      handles.push_back(sched.submit(std::move(req)));
    }
  }

  // Signal-aware wait: poll readiness instead of blocking, so the first
  // signal can start a drain (in-flight jobs finish, expired queued jobs
  // reject at pickup) and a second can abort what is still queued.
  bool forced = false;
  int signals_seen = 0;
  std::size_t unresolved = handles.size();
  std::vector<bool> resolved(handles.size(), false);
  while (unresolved > 0) {
    const int sigs = service::shutdown_signal_count();
    if (sigs != signals_seen) {
      if (signals_seen == 0 && sigs >= 1) {
        std::fprintf(stderr,
                     "earthred: draining (signal again to force)\n");
        sched.begin_drain();
      }
      if (sigs >= 2 && !forced) {
        forced = true;
        std::fprintf(stderr,
                     "earthred: forced shutdown, aborting queued jobs\n");
        sched.abort_queued("shutdown forced by second signal");
      }
      signals_seen = sigs;
    }
    bool progressed = false;
    for (std::size_t i = 0; i < handles.size(); ++i) {
      if (resolved[i] || !handles[i].ready()) continue;
      resolved[i] = true;
      --unresolved;
      progressed = true;
    }
    if (unresolved > 0 && !progressed)
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Every handle resolves — rejected jobs report their reason here rather
  // than disappearing.
  Table t("service jobs");
  t.set_header({"job", "state", "plan", "queue ms", "setup ms", "exec s",
                "detail"});
  std::uint64_t bad = 0;
  for (const ParseReject& r : parse_rejects) {
    ++bad;
    t.add_row({r.name, "rejected", "-", "-", "-", "-",
               r.code + ": " + r.detail});
    if (opt.has("json")) {
      JsonWriter w;
      w.field("job", r.name)
          .field("state", "rejected")
          .field("error", r.code + ": " + r.detail);
      append_json_line(opt.get("json"), w.str());
    }
  }
  for (const service::JobHandle& h : handles) {
    const service::JobOutcome& o = h.wait();
    if (o.state != service::JobState::Done) ++bad;
    std::string detail = o.error;
    if (o.state == service::JobState::Done && o.simulated_run.total_cycles)
      detail = fmt_group(static_cast<long long>(
                   o.simulated_run.total_cycles)) + " cycles";
    else if (o.state == service::JobState::Done && !o.simulated)
      detail = "backend=" + std::string(core::to_string(o.backend)) +
               " strategy=" + std::string(core::to_string(o.strategy));
    t.add_row({o.name, to_string(o.state),
               o.state == service::JobState::Rejected
                   ? "-"
                   : (o.simulated ? "sim" : to_string(o.plan_source)),
               fmt_f(o.queue_seconds * 1e3, 2),
               fmt_f(o.setup_seconds * 1e3, 3), fmt_f(o.exec_seconds, 4),
               detail});
    if (opt.has("json")) {
      JsonWriter w;
      w.field("job", o.name)
          .field("state", to_string(o.state))
          .field("cache_hit", o.cache_hit)
          .field("plan_source", o.simulated ? "sim" : to_string(o.plan_source))
          .field("queue_seconds", o.queue_seconds)
          .field("setup_seconds", o.setup_seconds)
          .field("plan_build_seconds", o.plan_build_seconds)
          .field("exec_seconds", o.exec_seconds)
          .field("total_seconds", o.total_seconds);
      if (o.state == service::JobState::Done && !o.simulated)
        w.field("backend", std::string(core::to_string(o.backend)))
            .field("strategy", std::string(core::to_string(o.strategy)))
            .field("digest",
                strformat("%016llx",
                          static_cast<unsigned long long>(
                              service::result_digest(o.native))));
      if (!o.error.empty()) w.field("error", o.error);
      append_json_line(opt.get("json"), w.str());
    }
  }
  const service::ServiceStats stats = sched.stats();
  if (opt.has("json")) {
    // Summary record after the per-job lines: the service-level latency
    // percentiles and cache/store tallies a client can't derive from the
    // individual outcomes.
    JsonWriter w;
    w.field("record", "service_stats")
        .field("submitted", stats.submitted)
        .field("completed", stats.completed)
        .field("failed", stats.failed)
        .field("rejected", stats.rejected)
        .field("rejected_backend", stats.rejected_backend)
        .field("rejected_strategy", stats.rejected_strategy)
        .field("served_scalar", stats.served_scalar)
        .field("served_avx2", stats.served_avx2)
        .field("served_avx512", stats.served_avx512)
        .field("served_phased", stats.served_phased)
        .field("served_privatized", stats.served_privatized)
        .field("served_atomic", stats.served_atomic)
        .field("p50_latency_s", stats.p50_latency)
        .field("p95_latency_s", stats.p95_latency)
        .field("p99_latency_s", stats.p99_latency)
        .field("cache_hit_rate", stats.cache.hit_rate())
        .field("disk_hits", stats.cache.disk_hits)
        .field("disk_misses", stats.cache.disk_misses)
        .field("disk_fallbacks", stats.cache.disk_fallbacks)
        .field("plans_persisted", stats.cache.persisted)
        .field("plans_patched", stats.cache.patched)
        .field("patch_fallbacks", stats.cache.patch_fallbacks);
    append_json_line(opt.get("json"), w.str());
  }
  if (!opt.get_bool("quiet", false)) {
    t.print(std::cout);
    stats.print(std::cout);
  }
  if (forced) return 3;
  return bad == 0 ? 0 : 1;
}

// ---- plan: operate on the persistent plan store directly ---------------

/// Builds the (kernel, options, key) triple the save/load subcommands
/// share, from the same flags `run` uses.
struct PlanVerbContext {
  std::unique_ptr<core::PhasedKernel> kernel;
  core::PlanOptions popt;
  service::PlanKey key;
};

PlanVerbContext plan_verb_context(const Options& opt) {
  PlanVerbContext ctx;
  ctx.kernel = make_kernel(opt.get("kernel", "euler"), mesh_from_options(opt));
  ctx.popt.num_procs = static_cast<std::uint32_t>(opt.get_int("procs", 8));
  ctx.popt.k = static_cast<std::uint32_t>(opt.get_int("k", 2));
  ctx.popt.distribution =
      inspector::parse_distribution(opt.get("dist", "cyclic"));
  ctx.popt.block_cyclic_size =
      static_cast<std::uint32_t>(opt.get_int("bc", 16));
  ctx.popt.inspector.dedup_buffers = opt.get_bool("dedup", false);
  ctx.popt.layout = core::parse_layout(opt.get("layout", "none"));
  ctx.key = service::make_plan_key(*ctx.kernel, ctx.popt);
  return ctx;
}

int cmd_plan(const Options& opt) {
  const std::string sub =
      opt.positional().empty() ? "" : opt.positional().front();
  if (sub != "save" && sub != "load" && sub != "ls")
    throw check_error("plan needs a subcommand: save|load|ls");
  const service::PlanStore store(opt.get("store", "plans"));

  if (sub == "ls") {
    Table t("plan store: " + store.directory());
    t.set_header({"file", "bytes", "procs", "k", "mesh", "status"});
    for (const service::PlanStore::ListEntry& e : store.list()) {
      if (e.error_code.empty()) {
        t.add_row({e.filename,
                   fmt_group(static_cast<long long>(e.file_bytes)),
                   std::to_string(e.header.num_procs),
                   std::to_string(e.header.k),
                   fmt_group(e.header.num_nodes) + " nodes / " +
                       fmt_group(static_cast<long long>(
                           e.header.num_edges)) +
                       " edges",
                   "ok"});
      } else {
        t.add_row({e.filename,
                   fmt_group(static_cast<long long>(e.file_bytes)), "-",
                   "-", "-", e.error_code});
      }
    }
    t.print(std::cout);
    return 0;
  }

  const PlanVerbContext ctx = plan_verb_context(opt);
  if (sub == "save") {
    core::PlanOptions build_opt = ctx.popt;
    build_opt.verify = true;  // never persist an unproven plan
    const core::ExecutionPlan plan =
        core::build_execution_plan(*ctx.kernel, build_opt);
    std::string error;
    if (!store.save(ctx.key, plan, &error))
      throw check_error("plan save failed: " + error);
    std::printf("saved %s (built in %.4f s)\n",
                store.path_for(ctx.key).c_str(), plan.build_seconds);
    return 0;
  }

  // load: the full untrusted-input validation chain, surfaced verbatim.
  const core::PlanLoadResult r = store.load(ctx.key);
  if (!r.ok()) {
    std::fprintf(stderr, "plan load rejected [%s]: %s\n",
                 r.error_code.c_str(), r.detail.c_str());
    return 1;
  }
  std::printf("loaded %s: %s phases x %u procs, %s bytes resident, "
              "%szero-copy, verifier clean\n",
              store.path_for(ctx.key).c_str(),
              fmt_group(static_cast<long long>(
                  r.plan->insp.empty() ? 0 : r.plan->insp[0].phases.size()))
                  .c_str(),
              r.plan->options.num_procs,
              fmt_group(static_cast<long long>(r.plan->byte_size())).c_str(),
              r.zero_copy ? "" : "NOT ");
  return 0;
}

int cmd_batch(const Options& opt) {
  const std::string path = opt.get("jobs");
  if (path.empty()) throw check_error("batch needs --jobs=<file>");
  std::ifstream is(path);
  ER_CHECK_MSG(is.good(), "cannot open '" + path + "'");
  return run_service(is, opt);
}

// ---- serve --listen / submit / ping: the networked front end -----------

int run_netserve(const Options& opt) {
  service::JobScheduler sched(scheduler_config(opt));
  // Remote peers must not name server-side files.
  service::JobLimits limits;
  limits.allow_file_io = false;
  auto builder = std::make_shared<service::JobBuilder>(limits);
  auto lineno = std::make_shared<std::size_t>(0);
  // Same default-backend rule as the stdin/batch front end: a job line
  // without a concrete backend= key runs on the server's --backend=.
  const core::BackendKind default_backend =
      core::parse_backend(opt.get("backend", "auto"));
  const core::StrategyKind default_strategy =
      core::parse_strategy(opt.get("strategy", "auto"));
  const core::LayoutKind default_layout =
      core::parse_layout(opt.get("layout", "none"));

  service::ServeConfig scfg;
  scfg.host = opt.get("host", "127.0.0.1");
  scfg.port = static_cast<std::uint16_t>(opt.get_int("listen", 0));
  scfg.max_connections =
      static_cast<std::uint32_t>(opt.get_int("max-conns", 64));
  scfg.max_inflight =
      static_cast<std::uint32_t>(opt.get_int("max-inflight", 128));
  scfg.drain_grace_seconds = opt.get_double("drain-grace", 30.0);

  service::ServeLoop loop(
      sched,
      [builder, lineno, default_backend, default_strategy,
       default_layout](std::string_view job_line) {
        service::JobBuild b = builder->build(job_line, ++*lineno);
        for (service::JobRequest& req : b.requests) {
          if (req.backend == core::BackendKind::Auto)
            req.backend = default_backend;
          if (req.plan.strategy == core::StrategyKind::Auto)
            req.plan.strategy = default_strategy;
          if (req.plan.layout == core::LayoutKind::None)
            req.plan.layout = default_layout;
        }
        return b;
      },
      scfg);
  std::string error;
  if (!loop.start(&error)) {
    std::fprintf(stderr, "earthred serve: %s\n", error.c_str());
    return 1;
  }
  // Machine-readable first line: launchers (CI, fleet scripts) that bind
  // port 0 parse the actual port from here.
  std::printf("LISTENING %u\n", loop.port());
  std::printf("earthred: serving on %s:%u (signal once to drain, twice "
              "to force)\n",
              scfg.host.c_str(), loop.port());
  std::printf("earthred: cpu features: %s; backend auto -> %s\n",
              support::to_string(support::host_cpu_features()).c_str(),
              std::string(core::to_string(
                              core::resolve_backend(
                                  core::BackendKind::Auto)))
                  .c_str());
  std::fflush(stdout);

  service::install_shutdown_signals();
  bool forced = false;
  int signals_seen = 0;
  while (loop.running()) {
    const int sigs = service::shutdown_signal_count();
    if (sigs != signals_seen) {
      if (signals_seen == 0 && sigs >= 1) {
        std::fprintf(stderr,
                     "earthred: draining (signal again to force)\n");
        loop.request_drain();
      }
      if (sigs >= 2 && !forced) {
        forced = true;
        std::fprintf(stderr, "earthred: forced shutdown\n");
        loop.request_abort();
      }
      signals_seen = sigs;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  loop.wait();
  sched.drain();

  const service::ServeStats ns = loop.stats();
  Table t("serve transport");
  t.set_header({"counter", "value"});
  const auto row = [&t](const char* name, std::uint64_t v) {
    t.add_row({name, fmt_group(static_cast<long long>(v))});
  };
  row("connections accepted", ns.accepted);
  row("frames in", ns.frames_in);
  row("frames out", ns.frames_out);
  row("submits", ns.submits);
  row("results sent", ns.results_sent);
  row("rejects sent", ns.rejects_sent);
  row("bad frames", ns.bad_frames);
  row("shed (max-conns)", ns.shed_maxconn);
  row("shed (busy)", ns.shed_busy);
  row("shed (draining)", ns.shed_draining);
  row("parse rejects", ns.parse_rejects);
  row("timeouts (read/write)", ns.read_timeouts + ns.write_timeouts);
  row("orphaned results", ns.orphaned_results);
  t.print(std::cout);
  sched.stats().print(std::cout);
  return forced ? 3 : 0;
}

net::ClientConfig client_config(const Options& opt) {
  const std::string ep = opt.get("connect");
  if (ep.empty()) throw check_error("need --connect=host:port");
  const std::size_t colon = ep.rfind(':');
  ER_CHECK_MSG(colon != std::string::npos && colon + 1 < ep.size(),
               "--connect expects host:port, got '" + ep + "'");
  net::ClientConfig cfg;
  cfg.host = ep.substr(0, colon);
  unsigned long port = 0;
  try {
    port = std::stoul(ep.substr(colon + 1));
  } catch (const std::exception&) {
    port = 0;
  }
  ER_CHECK_MSG(port > 0 && port <= 65535,
               "--connect port must be 1..65535, got '" +
                   ep.substr(colon + 1) + "'");
  cfg.port = static_cast<std::uint16_t>(port);
  cfg.request_timeout_ms =
      static_cast<int>(opt.get_int("timeout-ms", 10000));
  cfg.max_attempts =
      static_cast<std::uint32_t>(opt.get_int("retries", 3)) + 1;
  return cfg;
}

int cmd_submit(const Options& opt) {
  net::Client client(client_config(opt));
  std::vector<std::string> lines;
  if (opt.has("job")) {
    lines.push_back(opt.get("job"));
  } else if (opt.has("jobs")) {
    std::ifstream is(opt.get("jobs"));
    ER_CHECK_MSG(is.good(), "cannot open '" + opt.get("jobs") + "'");
    std::string l;
    while (std::getline(is, l)) {
      const std::string_view s = trim(l);
      if (!s.empty() && s.front() != '#') lines.push_back(l);
    }
  } else {
    throw check_error("submit needs --job=\"...\" or --jobs=<file>");
  }

  Table t("submitted jobs");
  t.set_header({"job", "state", "plan", "exec s", "digest", "tries",
                "detail"});
  std::uint64_t bad = 0;
  for (const std::string& l : lines) {
    const net::Client::Reply r = client.submit(l);
    if (!r.ok()) {
      ++bad;
      t.add_row({l.size() > 32 ? l.substr(0, 29) + "..." : l, "error",
                 "-", "-", "-", std::to_string(r.attempts),
                 r.code + ": " + r.detail});
      continue;
    }
    const auto state = static_cast<service::JobState>(r.result.state);
    if (state != service::JobState::Done) ++bad;
    t.add_row(
        {r.result.name, to_string(state),
         state == service::JobState::Rejected
             ? "-"
             : to_string(static_cast<service::PlanCache::Outcome>(
                   r.result.plan_source)),
         fmt_f(r.result.exec_seconds, 4),
         r.result.digest
             ? strformat("%016llx", static_cast<unsigned long long>(
                                        r.result.digest))
             : "-",
         std::to_string(r.attempts), r.result.error});
  }
  t.print(std::cout);
  const net::ClientStats& cs = client.stats();
  std::printf("client: %llu call(s), %llu attempt(s), %llu retries, "
              "%llu reconnect(s), breaker %s\n",
              static_cast<unsigned long long>(cs.calls),
              static_cast<unsigned long long>(cs.attempts),
              static_cast<unsigned long long>(cs.retries),
              static_cast<unsigned long long>(cs.reconnects),
              net::to_string(client.breaker_state()));
  return bad == 0 ? 0 : 1;
}

int cmd_ping(const Options& opt) {
  net::Client client(client_config(opt));
  const net::Client::PingReply r = client.ping();
  if (!r.ok()) {
    std::fprintf(stderr, "ping failed [%s]: %s (after %u attempt(s))\n",
                 r.code.c_str(), r.detail.c_str(), r.attempts);
    return 1;
  }
  std::printf("pong (protocol v%u): queue %llu, in-flight %llu, "
              "completed %llu, rejected %llu%s\n",
              r.pong.version,
              static_cast<unsigned long long>(r.pong.queue_depth),
              static_cast<unsigned long long>(r.pong.in_flight),
              static_cast<unsigned long long>(r.pong.completed),
              static_cast<unsigned long long>(r.pong.rejected),
              r.pong.draining ? ", DRAINING" : "");
  return 0;
}

int cmd_serve(const Options& opt) {
  if (opt.has("listen")) return run_netserve(opt);
  return run_service(std::cin, opt);
}

// ---- route / fleet: the shard-router fleet front end --------------------

shard::ShardMap shard_map_from_options(const Options& opt) {
  std::string error;
  shard::ShardMap map;
  if (opt.has("shard-file"))
    map = shard::ShardMap::load(opt.get("shard-file"), &error);
  else if (opt.has("shards"))
    map = shard::ShardMap::from_spec(opt.get("shards"), &error);
  else
    throw check_error(
        "need --shards=host:port,... or --shard-file=<file>");
  ER_CHECK_MSG(!map.empty(),
               error.empty() ? "shard map is empty" : error);
  return map;
}

int cmd_route(const Options& opt) {
  shard::RouterConfig rcfg;
  rcfg.host = opt.get("host", "127.0.0.1");
  rcfg.port = static_cast<std::uint16_t>(opt.get_int("listen", 0));
  rcfg.max_connections =
      static_cast<std::uint32_t>(opt.get_int("max-conns", 64));
  rcfg.drain_grace_seconds = opt.get_double("drain-grace", 30.0);
  rcfg.pool.max_inflight_per_shard =
      static_cast<std::uint32_t>(opt.get_int("shard-inflight", 32));
  rcfg.pool.client.request_timeout_ms =
      static_cast<int>(opt.get_int("timeout-ms", 10000));
  rcfg.pool.client.max_attempts =
      static_cast<std::uint32_t>(opt.get_int("retries", 3)) + 1;

  shard::ShardRouter router(shard_map_from_options(opt), rcfg);
  std::string error;
  if (!router.start(&error)) {
    std::fprintf(stderr, "earthred route: %s\n", error.c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", router.port());
  std::printf("earthred: routing on %s:%u across %zu shard(s) (signal "
              "once to drain the fleet, twice to force)\n",
              rcfg.host.c_str(), router.port(), router.map().size());
  std::fflush(stdout);

  service::install_shutdown_signals();
  bool forced = false;
  int signals_seen = 0;
  while (router.running()) {
    const int sigs = service::shutdown_signal_count();
    if (sigs != signals_seen) {
      if (signals_seen == 0 && sigs >= 1) {
        std::fprintf(stderr,
                     "earthred: draining fleet, shards first (signal "
                     "again to force)\n");
        router.drain_fleet();
      }
      if (sigs >= 2 && !forced) {
        forced = true;
        std::fprintf(stderr, "earthred: forced shutdown\n");
        router.request_abort();
      }
      signals_seen = sigs;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  router.wait();

  const std::vector<shard::ShardSnapshot> shards = router.pool().snapshot();
  Table st("shard stats");
  st.set_header({"shard", "forwards", "done", "rejected", "rerouted",
                 "failovers", "busy", "brk-skip", "breaker", "p50 ms",
                 "p95 ms", "p99 ms"});
  for (const shard::ShardSnapshot& s : shards) {
    st.add_row({s.name, fmt_group(static_cast<long long>(s.forwards)),
                fmt_group(static_cast<long long>(s.done)),
                fmt_group(static_cast<long long>(s.rejected)),
                fmt_group(static_cast<long long>(s.rerouted_in)),
                fmt_group(static_cast<long long>(s.failovers)),
                fmt_group(static_cast<long long>(s.busy_shed)),
                fmt_group(static_cast<long long>(s.breaker_skips)),
                net::to_string(s.breaker), fmt_f(s.p50_ms, 2),
                fmt_f(s.p95_ms, 2), fmt_f(s.p99_ms, 2)});
  }
  st.print(std::cout);

  const shard::RouterStats rs = router.stats();
  Table t("router transport");
  t.set_header({"counter", "value"});
  const auto row = [&t](const char* name, std::uint64_t v) {
    t.add_row({name, fmt_group(static_cast<long long>(v))});
  };
  row("connections accepted", rs.accepted);
  row("frames in", rs.frames_in);
  row("frames out", rs.frames_out);
  row("submits", rs.submits);
  row("results sent", rs.results_sent);
  row("submit rejects", rs.submit_rejects);
  row("rejects sent (all)", rs.rejects_sent);
  row("reroutes", rs.reroutes);
  row("bad frames", rs.bad_frames);
  row("shed (max-conns)", rs.shed_maxconn);
  row("shed (draining)", rs.shed_draining);
  row("drain frames", rs.drain_frames);
  t.print(std::cout);

  if (opt.has("json")) {
    for (const shard::ShardSnapshot& s : shards) {
      JsonWriter w;
      w.field("record", "shard_stats")
          .field("shard", s.name)
          .field("endpoint", s.endpoint)
          .field("forwards", s.forwards)
          .field("done", s.done)
          .field("rejected", s.rejected)
          .field("rerouted_in", s.rerouted_in)
          .field("failovers", s.failovers)
          .field("busy_shed", s.busy_shed)
          .field("breaker_skips", s.breaker_skips)
          .field("breaker", net::to_string(s.breaker))
          .field("breaker_opens", s.client.breaker_trips)
          .field("breaker_closes", s.client.breaker_closes)
          .field("reconnects", s.client.reconnects)
          .field("transport_failures", s.client.transport_failures)
          .field("backoff_sleeps", s.client.backoff_sleeps)
          .field("backoff_ms_total", s.client.backoff_ms_total)
          .field("latency_samples", s.latency_samples)
          .field("p50_ms", s.p50_ms)
          .field("p95_ms", s.p95_ms)
          .field("p99_ms", s.p99_ms);
      append_json_line(opt.get("json"), w.str());
    }
    JsonWriter w;
    w.field("record", "router_stats")
        .field("accepted", rs.accepted)
        .field("submits", rs.submits)
        .field("results_sent", rs.results_sent)
        .field("submit_rejects", rs.submit_rejects)
        .field("rejects_sent", rs.rejects_sent)
        .field("reroutes", rs.reroutes)
        .field("bad_frames", rs.bad_frames)
        .field("shed_maxconn", rs.shed_maxconn)
        .field("shed_draining", rs.shed_draining)
        .field("drain_frames", rs.drain_frames);
    append_json_line(opt.get("json"), w.str());
  }
  return forced ? 3 : 0;
}

int cmd_fleet(const Options& opt) {
  const std::string sub =
      opt.positional().empty() ? "" : opt.positional().front();
  if (sub != "status" && sub != "drain")
    throw check_error("fleet needs a subcommand: status|drain");

  // Target list: one router (--connect) or the shard endpoints directly.
  std::vector<shard::ShardEndpoint> targets;
  if (opt.has("connect")) {
    const net::ClientConfig cfg = client_config(opt);
    targets.push_back({cfg.host + ":" + std::to_string(cfg.port),
                       cfg.host, cfg.port});
  } else {
    const shard::ShardMap map = shard_map_from_options(opt);
    targets = map.shards();
  }

  Table t("fleet " + sub);
  t.set_header({"endpoint", "state", "queue", "in-flight", "completed",
                "rejected", "cache", "cache digest", "cache hits"});
  int bad = 0;
  for (const shard::ShardEndpoint& ep : targets) {
    net::ClientConfig cfg;
    cfg.host = ep.host;
    cfg.port = ep.port;
    cfg.request_timeout_ms =
        static_cast<int>(opt.get_int("timeout-ms", 10000));
    cfg.max_attempts =
        static_cast<std::uint32_t>(opt.get_int("retries", 1)) + 1;
    net::Client client(cfg);
    const net::Client::PingReply r =
        sub == "drain" ? client.drain() : client.ping();
    if (!r.ok()) {
      ++bad;
      t.add_row({ep.name, r.code + ": " + r.detail, "-", "-", "-", "-",
                 "-", "-", "-"});
      continue;
    }
    t.add_row(
        {ep.name, r.pong.draining ? "draining" : "up",
         fmt_group(static_cast<long long>(r.pong.queue_depth)),
         fmt_group(static_cast<long long>(r.pong.in_flight)),
         fmt_group(static_cast<long long>(r.pong.completed)),
         fmt_group(static_cast<long long>(r.pong.rejected)),
         fmt_group(static_cast<long long>(r.pong.cache_entries)),
         r.pong.cache_key_digest
             ? strformat("%016llx", static_cast<unsigned long long>(
                                        r.pong.cache_key_digest))
             : "-",
         fmt_group(static_cast<long long>(r.pong.cache_hits))});
  }
  t.print(std::cout);
  return bad == 0 ? 0 : 1;
}

int cmd_version() {
  const support::CpuFeatures& f = support::host_cpu_features();
  std::printf("earthred (irregular-reduction service)\n");
  std::string compiled;
  for (const core::BackendKind k : core::compiled_backends()) {
    if (!compiled.empty()) compiled += ' ';
    compiled += std::string(core::to_string(k));
  }
  std::printf("compiled backends: %s\n", compiled.c_str());
  std::printf("cpu features: %s (osxsave=%d ymm=%d zmm=%d)\n",
              support::to_string(f).c_str(), f.osxsave ? 1 : 0,
              f.os_ymm ? 1 : 0, f.os_zmm ? 1 : 0);
  std::printf(
      "backend auto -> %s\n",
      std::string(core::to_string(
                      core::resolve_backend(core::BackendKind::Auto)))
          .c_str());
  std::printf("hardware threads: %u\n", support::hardware_threads());
  // Detected cache geometry — the inputs the layout pass's tile-size
  // heuristic works from (core::layout_tile_iters).
  std::printf("caches: %s\n",
              support::to_string(support::host_cache_info()).c_str());
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "version" || cmd == "--version") return cmd_version();
  const Options opt(argc - 1, argv + 1);
  if (cmd == "gen-mesh") return cmd_gen_mesh(opt);
  if (cmd == "gen-matrix") return cmd_gen_matrix(opt);
  if (cmd == "info") return cmd_info(opt);
  if (cmd == "run") return cmd_run(opt);
  if (cmd == "compile") return cmd_compile(opt);
  if (cmd == "check") return cmd_check(opt);
  if (cmd == "batch") return cmd_batch(opt);
  if (cmd == "serve") return cmd_serve(opt);
  if (cmd == "submit") return cmd_submit(opt);
  if (cmd == "ping") return cmd_ping(opt);
  if (cmd == "route") return cmd_route(opt);
  if (cmd == "fleet") return cmd_fleet(opt);
  if (cmd == "plan") return cmd_plan(opt);
  return usage();
}

}  // namespace
}  // namespace earthred

int main(int argc, char** argv) {
  try {
    return earthred::dispatch(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "earthred: %s\n", e.what());
    return 1;
  }
}
