// plan_corpus_gen — regenerates the committed corruption corpus under
// examples/plans/bad/ (see its README.md).
//
//   plan_corpus_gen <corpus-dir>
//
// Every output derives deterministically from one small fig1 plan
// (80 nodes / 400 edges, P=4, k=2, cyclic; mesh seed 7), so the corpus
// can be re-emitted byte-for-byte whenever the plan format version
// changes. Each file carries exactly one deliberate defect and must be
// rejected by the loader with the E-STORE-* code its filename declares
// (tests/test_plan_store.cpp walks the directory and enforces that).
//
// The corpus is *committed*, not generated at test time: run this tool
// and check in the results after a format bump, so a checksum or decoder
// regression can never silently regenerate itself into passing.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/native_engine.hpp"
#include "core/plan_io.hpp"
#include "inspector/u32buf.hpp"
#include "kernels/fig1.hpp"
#include "mesh/generators.hpp"
#include "service/plan_cache.hpp"

namespace fs = std::filesystem;
using namespace earthred;

namespace {

void write_file(const fs::path& path, const std::vector<std::byte>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    std::exit(1);
  }
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(), bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: plan_corpus_gen <corpus-dir>\n");
    return 2;
  }
  const fs::path dir = argv[1];
  fs::create_directories(dir / "keystore");

  const kernels::Fig1Kernel kernel =
      kernels::Fig1Kernel::with_integer_values(
          mesh::make_geometric_mesh({80, 400, 7}));
  core::PlanOptions opt;
  opt.num_procs = 4;
  opt.k = 2;
  const std::uint64_t hash = service::kernel_fingerprint(kernel);
  const core::ExecutionPlan plan = core::build_execution_plan(kernel, opt);
  const std::vector<std::byte> good = core::serialize_plan(plan, hash);

  // One defect per file; offsets follow the header layout documented in
  // src/core/plan_io.hpp.
  {
    std::vector<std::byte> b(good.begin(), good.begin() + 32);
    write_file(dir / "trunc-header.plan", b);
  }
  {
    std::vector<std::byte> b(good.begin(),
                             good.begin() +
                                 static_cast<std::ptrdiff_t>(good.size() / 2));
    write_file(dir / "trunc-midpayload.plan", b);
  }
  {
    auto b = good;
    b[0] ^= std::byte{0xff};
    write_file(dir / "magic-not-a-plan.plan", b);
  }
  {
    auto b = good;
    b[8] = std::byte{0x7f};  // u32 format_version
    write_file(dir / "version-future.plan", b);
  }
  {
    auto b = good;  // u32 endian_tag as a big-endian producer writes it
    b[12] = std::byte{0x01};
    b[13] = std::byte{0x02};
    b[14] = std::byte{0x03};
    b[15] = std::byte{0x04};
    write_file(dir / "endian-foreign.plan", b);
  }
  {
    auto b = good;
    b[16] ^= std::byte{0x01};  // u64 verifier_fingerprint
    write_file(dir / "verifier-mismatch.plan", b);
  }
  {
    auto b = good;
    b[core::kPlanHeaderBytes + b.size() / 3] ^= std::byte{0x10};
    write_file(dir / "checksum-payload-bitflip.plan", b);
  }

  // E-STORE-PERM: a layout plan whose permutation is not a bijection.
  // The defect is inserted *before* serialization so the payload
  // checksum is valid — only the structural perm validation can reject
  // it, which is exactly the path the corpus entry pins.
  {
    core::PlanOptions lopt = opt;
    lopt.layout = core::LayoutKind::Rcm;
    core::ExecutionPlan lplan = core::build_execution_plan(kernel, lopt);
    if (lplan.perm.empty()) {
      std::fprintf(stderr, "rcm corpus plan unexpectedly has no perm\n");
      return 1;
    }
    std::vector<std::uint32_t> p(lplan.perm.data(),
                                 lplan.perm.data() + lplan.perm.size());
    p.at(0) = p.at(1);  // two nodes map to one slot: not a bijection
    lplan.perm = inspector::U32Buf(std::move(p));
    write_file(dir / "perm-not-a-bijection.plan",
               core::serialize_plan(lplan, hash));
  }

  // E-STORE-KEY: a fully valid file (it would load fine by path) filed
  // under the all-zero content hash it does not carry; only
  // PlanStore::load's header-vs-key identity check can reject it.
  write_file(dir / "keystore" / "p0000000000000000-P4-k2-cyclic.plan",
             good);
  return 0;
}
