#include "mesh/partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/check.hpp"

namespace earthred::mesh {

namespace {

/// Recursively bisects `ids` (a subrange of node indices) into `parts`
/// partitions, writing labels starting at `first_label`.
void rcb_recurse(const Mesh& m, std::vector<std::uint32_t>& ids,
                 std::size_t lo, std::size_t hi, std::uint32_t parts,
                 std::uint32_t first_label,
                 std::vector<std::uint32_t>& out) {
  if (parts == 1) {
    for (std::size_t i = lo; i < hi; ++i) out[ids[i]] = first_label;
    return;
  }
  // Split proportionally: left gets floor(parts/2) of the parts and the
  // matching share of nodes.
  const std::uint32_t left_parts = parts / 2;
  const std::uint32_t right_parts = parts - left_parts;
  const std::size_t count = hi - lo;
  const std::size_t left_count =
      count * left_parts / parts;

  // Widest axis of the bounding box.
  double mins[3] = {1e300, 1e300, 1e300};
  double maxs[3] = {-1e300, -1e300, -1e300};
  for (std::size_t i = lo; i < hi; ++i) {
    for (int d = 0; d < 3; ++d) {
      mins[d] = std::min(mins[d], m.coords[ids[i]][d]);
      maxs[d] = std::max(maxs[d], m.coords[ids[i]][d]);
    }
  }
  int axis = 0;
  for (int d = 1; d < 3; ++d)
    if (maxs[d] - mins[d] > maxs[axis] - mins[axis]) axis = d;

  std::nth_element(ids.begin() + static_cast<std::ptrdiff_t>(lo),
                   ids.begin() + static_cast<std::ptrdiff_t>(lo + left_count),
                   ids.begin() + static_cast<std::ptrdiff_t>(hi),
                   [&](std::uint32_t a, std::uint32_t b) {
                     if (m.coords[a][axis] != m.coords[b][axis])
                       return m.coords[a][axis] < m.coords[b][axis];
                     return a < b;
                   });
  rcb_recurse(m, ids, lo, lo + left_count, left_parts, first_label, out);
  rcb_recurse(m, ids, lo + left_count, hi, right_parts,
              first_label + left_parts, out);
}

}  // namespace

std::vector<std::uint32_t> rcb_partition(const Mesh& m,
                                         std::uint32_t parts) {
  ER_EXPECTS(parts >= 1);
  ER_EXPECTS_MSG(!m.coords.empty(), "RCB needs node coordinates");
  ER_EXPECTS(m.num_nodes >= parts);
  std::vector<std::uint32_t> ids(m.num_nodes);
  std::iota(ids.begin(), ids.end(), 0u);
  std::vector<std::uint32_t> out(m.num_nodes, 0);
  rcb_recurse(m, ids, 0, m.num_nodes, parts, 0, out);
  return out;
}

std::uint64_t edge_cut(const Mesh& m, std::span<const std::uint32_t> part) {
  ER_EXPECTS(part.size() == m.num_nodes);
  std::uint64_t cut = 0;
  for (const Edge& e : m.edges) cut += (part[e.a] != part[e.b]);
  return cut;
}

std::vector<std::uint32_t> partition_order(
    std::span<const std::uint32_t> part, std::uint32_t parts) {
  // Counting sort by partition label, stable in original order.
  std::vector<std::uint64_t> offsets(parts + 1, 0);
  for (const std::uint32_t p : part) {
    ER_EXPECTS(p < parts);
    ++offsets[p + 1];
  }
  std::partial_sum(offsets.begin(), offsets.end(), offsets.begin());
  std::vector<std::uint32_t> perm(part.size());
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::uint32_t v = 0; v < part.size(); ++v)
    perm[v] = static_cast<std::uint32_t>(cursor[part[v]]++);
  return perm;
}

}  // namespace earthred::mesh
