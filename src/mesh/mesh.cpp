#include "mesh/mesh.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "support/check.hpp"

namespace earthred::mesh {

void Mesh::validate() const {
  for (const Edge& e : edges) {
    ER_CHECK_MSG(e.a < num_nodes && e.b < num_nodes,
                 "edge endpoint out of range");
    ER_CHECK_MSG(e.a != e.b, "self-loop edge");
  }
  ER_CHECK_MSG(coords.empty() || coords.size() == num_nodes,
               "coords must be empty or one per node");
}

std::vector<std::uint32_t> node_degrees(const Mesh& m) {
  std::vector<std::uint32_t> deg(m.num_nodes, 0);
  for (const Edge& e : m.edges) {
    ++deg[e.a];
    ++deg[e.b];
  }
  return deg;
}

std::uint64_t mesh_bandwidth(const Mesh& m) {
  std::uint64_t bw = 0;
  for (const Edge& e : m.edges) {
    const std::uint64_t d = e.a > e.b ? e.a - e.b : e.b - e.a;
    bw = std::max(bw, d);
  }
  return bw;
}

Adjacency build_adjacency(const Mesh& m) {
  Adjacency adj;
  adj.offsets.assign(m.num_nodes + 1, 0);
  for (const Edge& e : m.edges) {
    ++adj.offsets[e.a + 1];
    ++adj.offsets[e.b + 1];
  }
  std::partial_sum(adj.offsets.begin(), adj.offsets.end(),
                   adj.offsets.begin());
  adj.neighbors.resize(adj.offsets.back());
  std::vector<std::uint64_t> cursor(adj.offsets.begin(),
                                    adj.offsets.end() - 1);
  for (const Edge& e : m.edges) {
    adj.neighbors[cursor[e.a]++] = e.b;
    adj.neighbors[cursor[e.b]++] = e.a;
  }
  // Sort each neighbor list for deterministic traversal order.
  for (std::uint32_t v = 0; v < m.num_nodes; ++v) {
    std::sort(adj.neighbors.begin() + static_cast<std::ptrdiff_t>(adj.offsets[v]),
              adj.neighbors.begin() + static_cast<std::ptrdiff_t>(adj.offsets[v + 1]));
  }
  return adj;
}

std::vector<std::uint32_t> rcm_permutation(const Mesh& m) {
  const Adjacency adj = build_adjacency(m);
  const std::vector<std::uint32_t> deg = node_degrees(m);

  std::vector<std::uint32_t> order;  // order[i] = old id visited i-th
  order.reserve(m.num_nodes);
  std::vector<bool> visited(m.num_nodes, false);

  // Process every connected component, starting each BFS from a
  // minimum-degree unvisited node (the usual RCM pseudo-peripheral pick,
  // simplified). Walking a degree-sorted node list with a cursor makes
  // that pick O(1) amortized per component — a mesh with many isolated
  // nodes (every one its own component) would otherwise rescan all nodes
  // per component — and guarantees every component is eventually seeded,
  // which a forward-only scan does not when the min-degree node lies in
  // a different component than the scan position.
  std::vector<std::uint32_t> by_degree(m.num_nodes);
  std::iota(by_degree.begin(), by_degree.end(), 0u);
  std::sort(by_degree.begin(), by_degree.end(),
            [&](std::uint32_t x, std::uint32_t y) {
              return deg[x] != deg[y] ? deg[x] < deg[y] : x < y;
            });
  std::size_t cursor = 0;
  while (order.size() < m.num_nodes) {
    while (visited[by_degree[cursor]]) ++cursor;
    const std::uint32_t start = by_degree[cursor];

    std::deque<std::uint32_t> queue{start};
    visited[start] = true;
    while (!queue.empty()) {
      const std::uint32_t v = queue.front();
      queue.pop_front();
      order.push_back(v);
      // Neighbors in increasing-degree order.
      std::vector<std::uint32_t> nbrs(
          adj.neighbors.begin() + static_cast<std::ptrdiff_t>(adj.offsets[v]),
          adj.neighbors.begin() + static_cast<std::ptrdiff_t>(adj.offsets[v + 1]));
      std::sort(nbrs.begin(), nbrs.end(),
                [&](std::uint32_t x, std::uint32_t y) {
                  return deg[x] != deg[y] ? deg[x] < deg[y] : x < y;
                });
      for (std::uint32_t w : nbrs) {
        if (!visited[w]) {
          visited[w] = true;
          queue.push_back(w);
        }
      }
    }
  }
  ER_ENSURES(order.size() == m.num_nodes);

  // Reverse the Cuthill-McKee order, then convert to perm[old] = new.
  std::reverse(order.begin(), order.end());
  std::vector<std::uint32_t> perm(m.num_nodes);
  for (std::uint32_t newid = 0; newid < m.num_nodes; ++newid)
    perm[order[newid]] = newid;
  return perm;
}

Mesh renumber(const Mesh& m, std::span<const std::uint32_t> perm) {
  ER_EXPECTS(perm.size() == m.num_nodes);
  Mesh out;
  out.num_nodes = m.num_nodes;
  out.edges.reserve(m.edges.size());
  for (const Edge& e : m.edges)
    out.edges.push_back(Edge{perm[e.a], perm[e.b]});
  if (!m.coords.empty()) {
    out.coords.resize(m.num_nodes);
    for (std::uint32_t v = 0; v < m.num_nodes; ++v)
      out.coords[perm[v]] = m.coords[v];
  }
  out.validate();
  return out;
}

}  // namespace earthred::mesh
