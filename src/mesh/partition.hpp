// Geometric mesh partitioning (coordinate recursive bisection).
//
// The paper's central claim is that the rotation strategy needs *no*
// partitioning: its communication is independent of the mesh numbering.
// The conventional schemes it compares against (Agrawal-Saltz et al.)
// depend on a good partition. This module supplies one — recursive
// coordinate bisection, the standard geometric partitioner — so the
// classic baseline can be evaluated "with partitioning" and the
// independence claim demonstrated (see bench_ablation_partition).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mesh/mesh.hpp"

namespace earthred::mesh {

/// Assigns each node to one of `parts` partitions by recursive coordinate
/// bisection. Parts are balanced to within one node. Requires
/// coordinates. Works for any `parts` >= 1 (not just powers of two).
std::vector<std::uint32_t> rcb_partition(const Mesh& m, std::uint32_t parts);

/// Number of edges whose endpoints lie in different partitions.
std::uint64_t edge_cut(const Mesh& m, std::span<const std::uint32_t> part);

/// Permutation (perm[old] = new) that renumbers nodes so each partition's
/// nodes are contiguous (partition-major, original order within a
/// partition). Applying it with renumber() aligns block ownership with
/// the partition.
std::vector<std::uint32_t> partition_order(
    std::span<const std::uint32_t> part, std::uint32_t parts);

}  // namespace earthred::mesh
