#include "mesh/io.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace earthred::mesh {

void write_mesh(std::ostream& os, const Mesh& m) {
  m.validate();
  os << "mesh " << m.num_nodes << ' ' << m.num_edges() << ' '
     << (m.coords.empty() ? 0 : 1) << '\n';
  for (const Edge& e : m.edges) os << "e " << e.a << ' ' << e.b << '\n';
  if (!m.coords.empty()) {
    os.precision(17);
    for (const auto& c : m.coords)
      os << "c " << c[0] << ' ' << c[1] << ' ' << c[2] << '\n';
  }
}

void save_mesh(const std::string& path, const Mesh& m) {
  std::ofstream os(path);
  ER_CHECK_MSG(os.good(), "cannot open '" + path + "' for writing");
  write_mesh(os, m);
  ER_CHECK_MSG(os.good(), "write to '" + path + "' failed");
}

Mesh read_mesh(std::istream& is) {
  // Counts and indices are parsed as signed 64-bit and range-checked
  // before any cast: stream extraction into an unsigned type silently
  // wraps a negative literal ("-5" becomes ~2^64), which would otherwise
  // turn a malformed header into a multi-terabyte reserve or an
  // out-of-range endpoint into a valid-looking one.
  std::string tag;
  Mesh m;
  std::int64_t num_nodes = -1, num_edges = -1, has_coords = -1;
  is >> tag >> num_nodes >> num_edges >> has_coords;
  ER_CHECK_MSG(!is.fail() && tag == "mesh",
               "not an earthred mesh file (missing 'mesh' header)");
  ER_CHECK_MSG(num_nodes >= 0 && num_nodes <= 0xFFFFFFFFll,
               "mesh header: node count out of range");
  ER_CHECK_MSG(num_edges >= 0, "mesh header: negative edge count");
  ER_CHECK_MSG(has_coords == 0 || has_coords == 1,
               "malformed has_coords flag");
  m.num_nodes = static_cast<std::uint32_t>(num_nodes);
  // Cap the up-front reservation: the header's edge count is untrusted
  // until that many well-formed edge lines actually materialize.
  constexpr std::uint64_t kMaxReserve = 1u << 20;
  m.edges.reserve(
      std::min(static_cast<std::uint64_t>(num_edges), kMaxReserve));
  for (std::int64_t i = 0; i < num_edges; ++i) {
    std::int64_t a = -1, b = -1;
    is >> tag >> a >> b;
    ER_CHECK_MSG(!is.fail() && tag == "e",
                 "malformed or truncated edge line " + std::to_string(i));
    ER_CHECK_MSG(a >= 0 && a < num_nodes && b >= 0 && b < num_nodes,
                 "edge " + std::to_string(i) + " endpoint out of range");
    m.edges.push_back(Edge{static_cast<std::uint32_t>(a),
                           static_cast<std::uint32_t>(b)});
  }
  if (has_coords) {
    m.coords.reserve(std::min<std::uint64_t>(m.num_nodes, kMaxReserve));
    for (std::uint32_t v = 0; v < m.num_nodes; ++v) {
      std::array<double, 3> c{};
      is >> tag >> c[0] >> c[1] >> c[2];
      ER_CHECK_MSG(!is.fail() && tag == "c",
                   "malformed or truncated coordinate line " +
                       std::to_string(v));
      m.coords.push_back(c);
    }
  }
  m.validate();
  return m;
}

Mesh load_mesh(const std::string& path) {
  std::ifstream is(path);
  ER_CHECK_MSG(is.good(), "cannot open '" + path + "'");
  return read_mesh(is);
}

}  // namespace earthred::mesh
