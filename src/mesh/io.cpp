#include "mesh/io.hpp"

#include <fstream>
#include <sstream>

#include "support/check.hpp"

namespace earthred::mesh {

void write_mesh(std::ostream& os, const Mesh& m) {
  m.validate();
  os << "mesh " << m.num_nodes << ' ' << m.num_edges() << ' '
     << (m.coords.empty() ? 0 : 1) << '\n';
  for (const Edge& e : m.edges) os << "e " << e.a << ' ' << e.b << '\n';
  if (!m.coords.empty()) {
    os.precision(17);
    for (const auto& c : m.coords)
      os << "c " << c[0] << ' ' << c[1] << ' ' << c[2] << '\n';
  }
}

void save_mesh(const std::string& path, const Mesh& m) {
  std::ofstream os(path);
  ER_CHECK_MSG(os.good(), "cannot open '" + path + "' for writing");
  write_mesh(os, m);
  ER_CHECK_MSG(os.good(), "write to '" + path + "' failed");
}

Mesh read_mesh(std::istream& is) {
  std::string tag;
  Mesh m;
  std::uint64_t num_edges = 0;
  int has_coords = 0;
  is >> tag >> m.num_nodes >> num_edges >> has_coords;
  ER_CHECK_MSG(is.good() && tag == "mesh",
               "not an earthred mesh file (missing 'mesh' header)");
  ER_CHECK_MSG(has_coords == 0 || has_coords == 1,
               "malformed has_coords flag");
  m.edges.reserve(num_edges);
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    Edge e;
    is >> tag >> e.a >> e.b;
    ER_CHECK_MSG(is.good() && tag == "e", "malformed edge line");
    m.edges.push_back(e);
  }
  if (has_coords) {
    m.coords.resize(m.num_nodes);
    for (std::uint32_t v = 0; v < m.num_nodes; ++v) {
      is >> tag >> m.coords[v][0] >> m.coords[v][1] >> m.coords[v][2];
      ER_CHECK_MSG(!is.fail() && tag == "c", "malformed coordinate line");
    }
  }
  m.validate();
  return m;
}

Mesh load_mesh(const std::string& path) {
  std::ifstream is(path);
  ER_CHECK_MSG(is.good(), "cannot open '" + path + "'");
  return read_mesh(is);
}

}  // namespace earthred::mesh
