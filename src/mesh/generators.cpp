#include "mesh/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <utility>

#include "support/check.hpp"

namespace earthred::mesh {

namespace {

struct Candidate {
  double dist2;
  std::uint32_t a, b;
};

/// Enumerates all pairs within `radius` using a uniform cell grid over the
/// coordinate bounding box, then returns the `target` shortest (ties broken
/// by index pair, so the result is deterministic).
std::vector<Edge> k_shortest_pairs(
    const std::vector<std::array<double, 3>>& pts, std::uint64_t target) {
  const std::uint32_t n = static_cast<std::uint32_t>(pts.size());
  ER_CHECK_MSG(target <= static_cast<std::uint64_t>(n) * (n - 1) / 2,
               "more edges requested than node pairs exist");

  std::array<double, 3> lo{1e300, 1e300, 1e300}, hi{-1e300, -1e300, -1e300};
  for (const auto& p : pts) {
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  const double volume = std::max({hi[0] - lo[0], 1e-12}) *
                        std::max({hi[1] - lo[1], 1e-12}) *
                        std::max({hi[2] - lo[2], 1e-12});
  // Start from the radius at which the expected number of in-range pairs
  // (n^2 * sphere/volume / 2) is ~1.5x the target, then grow until enough
  // candidates are found.
  const bool planar = (hi[2] - lo[2]) < 1e-9;
  double radius;
  if (planar) {
    const double area = std::max(hi[0] - lo[0], 1e-12) *
                        std::max(hi[1] - lo[1], 1e-12);
    radius = std::sqrt(3.0 * static_cast<double>(target) * area /
                       (3.14159265358979 * static_cast<double>(n) *
                        static_cast<double>(n)));
  } else {
    radius = std::cbrt(4.5 * static_cast<double>(target) * volume /
                       (4.18879 * static_cast<double>(n) *
                        static_cast<double>(n)));
  }

  std::vector<Candidate> cands;
  for (int attempt = 0; attempt < 24; ++attempt) {
    cands.clear();
    const double r2 = radius * radius;
    const double cell = radius;
    auto cell_of = [&](const std::array<double, 3>& p, int d) {
      return static_cast<std::int64_t>(std::floor((p[d] - lo[d]) / cell));
    };
    const std::int64_t nx = cell_of(hi, 0) + 1;
    const std::int64_t ny = cell_of(hi, 1) + 1;
    const std::int64_t nz = cell_of(hi, 2) + 1;
    auto key = [&](std::int64_t cx, std::int64_t cy, std::int64_t cz) {
      return (cx * ny + cy) * nz + cz;
    };
    // Bucket points by cell (counting sort into a CSR layout).
    const auto ncells = static_cast<std::size_t>(nx * ny * nz);
    std::vector<std::uint32_t> count(ncells + 1, 0);
    std::vector<std::size_t> pkey(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      pkey[i] = static_cast<std::size_t>(
          key(cell_of(pts[i], 0), cell_of(pts[i], 1), cell_of(pts[i], 2)));
      ++count[pkey[i] + 1];
    }
    for (std::size_t c = 1; c <= ncells; ++c) count[c] += count[c - 1];
    std::vector<std::uint32_t> bucket(n);
    {
      std::vector<std::uint32_t> cur(count.begin(), count.end() - 1);
      for (std::uint32_t i = 0; i < n; ++i) bucket[cur[pkey[i]]++] = i;
    }
    // For each point, scan the 27 neighbouring cells; count each pair once.
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::int64_t cx = cell_of(pts[i], 0);
      const std::int64_t cy = cell_of(pts[i], 1);
      const std::int64_t cz = cell_of(pts[i], 2);
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
          for (std::int64_t dz = -1; dz <= 1; ++dz) {
            const std::int64_t ox = cx + dx, oy = cy + dy, oz = cz + dz;
            if (ox < 0 || oy < 0 || oz < 0 || ox >= nx || oy >= ny ||
                oz >= nz)
              continue;
            const auto c = static_cast<std::size_t>(key(ox, oy, oz));
            for (std::uint32_t s = count[c]; s < count[c + 1]; ++s) {
              const std::uint32_t j = bucket[s];
              if (j <= i) continue;
              const double ddx = pts[i][0] - pts[j][0];
              const double ddy = pts[i][1] - pts[j][1];
              const double ddz = pts[i][2] - pts[j][2];
              const double d2 = ddx * ddx + ddy * ddy + ddz * ddz;
              if (d2 <= r2) cands.push_back(Candidate{d2, i, j});
            }
          }
        }
      }
    }
    if (cands.size() >= target) break;
    radius *= 1.35;
  }
  ER_CHECK_MSG(cands.size() >= target,
               "could not find enough candidate pairs");

  std::sort(cands.begin(), cands.end(),
            [](const Candidate& x, const Candidate& y) {
              return std::tie(x.dist2, x.a, x.b) <
                     std::tie(y.dist2, y.a, y.b);
            });
  std::vector<Edge> edges;
  edges.reserve(target);
  for (std::uint64_t e = 0; e < target; ++e)
    edges.push_back(Edge{std::min(cands[e].a, cands[e].b),
                         std::max(cands[e].a, cands[e].b)});
  // Order edges by endpoint, the way mesh generators and neighbour-list
  // builders emit them: iteration order then correlates with node
  // numbering, which is what makes a *block* distribution of iterations
  // spatially coherent (and the paper's block-vs-cyclic contrast real).
  std::sort(edges.begin(), edges.end(), [](Edge x, Edge y) {
    return std::tie(x.a, x.b) < std::tie(y.a, y.b);
  });
  return edges;
}

}  // namespace

Mesh make_geometric_mesh(const GeomMeshParams& p) {
  ER_EXPECTS(p.num_nodes >= 2);
  Xoshiro256 rng(p.seed);
  // 3D points: the paper's euler dataset has the edge density of a
  // tetrahedral (3D) mesh, and 3D numbering locality (bandwidth ~ n^(2/3))
  // is what a real unstructured CFD mesh exhibits.
  std::vector<std::array<double, 3>> pts(p.num_nodes);
  for (auto& pt : pts) pt = {rng.uniform(), rng.uniform(), rng.uniform()};

  // Spatially coherent numbering: sort points into slab-major cells, the
  // way mesh generators emit nodes.
  const auto grid = static_cast<std::uint32_t>(std::max(
      1.0, std::floor(std::cbrt(static_cast<double>(p.num_nodes) / 8.0))));
  std::sort(pts.begin(), pts.end(),
            [&](const std::array<double, 3>& a, const std::array<double, 3>& b) {
              const auto za = static_cast<std::uint32_t>(a[2] * grid);
              const auto zb = static_cast<std::uint32_t>(b[2] * grid);
              if (za != zb) return za < zb;
              const auto ya = static_cast<std::uint32_t>(a[1] * grid);
              const auto yb = static_cast<std::uint32_t>(b[1] * grid);
              if (ya != yb) return ya < yb;
              return a[0] < b[0];
            });

  Mesh m;
  m.num_nodes = p.num_nodes;
  m.coords = std::move(pts);
  m.edges = k_shortest_pairs(m.coords, p.num_edges);
  m.validate();
  return m;
}

Mesh euler_mesh_small() {
  return make_geometric_mesh(GeomMeshParams{2800, 17377, 20020415});
}

Mesh euler_mesh_large() {
  return make_geometric_mesh(GeomMeshParams{9428, 59863, 20020416});
}

Mesh make_moldyn_lattice(const MoldynParams& p) {
  ER_EXPECTS(p.cells_per_side >= 2);
  Xoshiro256 rng(p.seed);
  // FCC basis within a unit cell.
  static constexpr std::array<std::array<double, 3>, 4> kBasis{{
      {0.0, 0.0, 0.0},
      {0.5, 0.5, 0.0},
      {0.5, 0.0, 0.5},
      {0.0, 0.5, 0.5},
  }};
  Mesh m;
  const std::uint32_t c = p.cells_per_side;
  m.num_nodes = 4u * c * c * c;
  m.coords.reserve(m.num_nodes);
  for (std::uint32_t x = 0; x < c; ++x)
    for (std::uint32_t y = 0; y < c; ++y)
      for (std::uint32_t z = 0; z < c; ++z)
        for (const auto& b : kBasis)
          m.coords.push_back({static_cast<double>(x) + b[0] +
                                  rng.uniform(-p.jitter, p.jitter),
                              static_cast<double>(y) + b[1] +
                                  rng.uniform(-p.jitter, p.jitter),
                              static_cast<double>(z) + b[2] +
                                  rng.uniform(-p.jitter, p.jitter)});
  m.edges = k_shortest_pairs(m.coords, p.num_interactions);
  m.validate();
  return m;
}

Mesh moldyn_small() {
  return make_moldyn_lattice(MoldynParams{9, 26244, 0.05, 19941122});
}

Mesh moldyn_large() {
  return make_moldyn_lattice(MoldynParams{14, 65856, 0.05, 19941123});
}

void jitter_coords(Mesh& m, double sigma, Xoshiro256& rng) {
  ER_EXPECTS(!m.coords.empty());
  for (auto& p : m.coords) {
    // Box-Muller pairs; the third component reuses a fresh pair's first.
    for (int d = 0; d < 3; ++d) {
      const double u1 = std::max(rng.uniform(), 1e-300);
      const double u2 = rng.uniform();
      p[d] += sigma * std::sqrt(-2.0 * std::log(u1)) *
              std::cos(2.0 * 3.14159265358979 * u2);
    }
  }
}

void rebuild_interactions(Mesh& m, std::uint64_t num_edges) {
  ER_EXPECTS(!m.coords.empty());
  std::vector<Edge> fresh = k_shortest_pairs(m.coords, num_edges);
  if (m.edges.size() != num_edges) {
    m.edges = std::move(fresh);
    m.validate();
    return;
  }
  // Incremental neighbour-list maintenance: pairs that survive the rebuild
  // keep their old slot; dropped pairs' slots are refilled with the new
  // pairs. This keeps the iteration->pair mapping stable so downstream
  // incremental preprocessing (update_light_inspector) touches only the
  // interactions that actually changed.
  std::set<std::pair<std::uint32_t, std::uint32_t>> fresh_set;
  for (const Edge& e : fresh) fresh_set.emplace(e.a, e.b);
  std::vector<std::size_t> vacated;
  for (std::size_t i = 0; i < m.edges.size(); ++i) {
    const auto key = std::make_pair(m.edges[i].a, m.edges[i].b);
    if (!fresh_set.erase(key)) vacated.push_back(i);
  }
  ER_ENSURES(vacated.size() == fresh_set.size());
  auto it = fresh_set.begin();
  for (const std::size_t slot : vacated) {
    m.edges[slot] = Edge{it->first, it->second};
    ++it;
  }
  m.validate();
}

std::vector<std::uint32_t> rewire_edges(Mesh& m, std::uint64_t count,
                                        std::uint64_t seed) {
  ER_EXPECTS_MSG(count <= m.edges.size(),
                 "cannot rewire more edges than the mesh has");
  ER_EXPECTS_MSG(m.num_nodes >= 2, "rewiring needs at least two nodes");
  Xoshiro256 rng(seed);

  // Sample `count` distinct slots (Floyd's algorithm: uniform without
  // needing a full permutation of the edge list).
  std::set<std::uint32_t> slots;
  const std::uint64_t n = m.edges.size();
  for (std::uint64_t j = n - count; j < n; ++j) {
    const std::uint32_t t = static_cast<std::uint32_t>(rng.below(j + 1));
    if (!slots.insert(t).second)
      slots.insert(static_cast<std::uint32_t>(j));
  }

  for (const std::uint32_t slot : slots) {
    const Edge old = m.edges[slot];
    Edge fresh;
    do {
      fresh.a = static_cast<std::uint32_t>(rng.below(m.num_nodes));
      fresh.b = static_cast<std::uint32_t>(rng.below(m.num_nodes));
      if (fresh.a > fresh.b) std::swap(fresh.a, fresh.b);
    } while (fresh.a == fresh.b || fresh == old);
    m.edges[slot] = fresh;
  }
  m.validate();
  return std::vector<std::uint32_t>(slots.begin(), slots.end());
}

}  // namespace earthred::mesh
