// Unstructured mesh / interaction-list types.
//
// The irregular-reduction kernels iterate over *edges* (mesh edges for
// euler, pair interactions for moldyn) and update values at their two end
// *nodes* — exactly the Figure 1 pattern of the paper. The `Mesh` type
// carries the edge list (the indirection arrays IA(*,1) and IA(*,2)),
// optional node coordinates (used by generators and locality analyses),
// and validation of the structural invariants.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace earthred::mesh {

/// One edge / pair interaction between two distinct nodes.
struct Edge {
  std::uint32_t a = 0;
  std::uint32_t b = 0;

  friend constexpr bool operator==(Edge, Edge) = default;
};

/// An unstructured mesh: `num_nodes` nodes and an edge list. Coordinates
/// are optional (empty or one entry per node).
struct Mesh {
  std::uint32_t num_nodes = 0;
  std::vector<Edge> edges;
  std::vector<std::array<double, 3>> coords;

  std::uint64_t num_edges() const noexcept { return edges.size(); }

  /// Throws check_error on out-of-range endpoints, self-loops, or a
  /// coordinate array of the wrong length.
  void validate() const;
};

/// Degree (edges incident) of every node.
std::vector<std::uint32_t> node_degrees(const Mesh& m);

/// Graph bandwidth: max |a - b| over edges (0 for an edgeless mesh).
/// Lower bandwidth = more locality-friendly numbering.
std::uint64_t mesh_bandwidth(const Mesh& m);

/// Adjacency in CSR form: offsets (size num_nodes+1) and neighbor lists,
/// each undirected edge appearing in both endpoints' lists.
struct Adjacency {
  std::vector<std::uint64_t> offsets;
  std::vector<std::uint32_t> neighbors;
};
Adjacency build_adjacency(const Mesh& m);

/// Reverse Cuthill-McKee renumbering. Returns `perm` with
/// perm[old_id] == new_id; apply with renumber().
std::vector<std::uint32_t> rcm_permutation(const Mesh& m);

/// Applies a node permutation (perm[old] = new) to edges and coordinates.
Mesh renumber(const Mesh& m, std::span<const std::uint32_t> perm);

}  // namespace earthred::mesh
