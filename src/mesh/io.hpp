// Mesh serialization: a small line-oriented text format plus Chaco/METIS-
// style edge-list export, so users can run the engines on their own
// meshes and inspect generated ones.
//
// Format ("earthred mesh v1"):
//   mesh <num_nodes> <num_edges> <has_coords:0|1>
//   e <a> <b>            (num_edges lines)
//   c <x> <y> <z>        (num_nodes lines, if has_coords)
#pragma once

#include <iosfwd>
#include <string>

#include "mesh/mesh.hpp"

namespace earthred::mesh {

/// Writes `m` in the earthred mesh v1 format.
void write_mesh(std::ostream& os, const Mesh& m);
void save_mesh(const std::string& path, const Mesh& m);

/// Reads a mesh; throws check_error on malformed input.
Mesh read_mesh(std::istream& is);
Mesh load_mesh(const std::string& path);

}  // namespace earthred::mesh
