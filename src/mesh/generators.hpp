// Dataset generators reproducing the paper's euler and moldyn inputs.
//
// The paper's exact meshes are not distributed; these generators build
// synthetic equivalents with the same node/edge counts (see DESIGN.md §2):
//
//   euler : random points in the unit square connected to near neighbours
//           (an unstructured-CFD-like graph). 2,800 nodes / 17,377 edges
//           and 9,428 nodes / 59,863 edges.
//   moldyn: FCC lattice of molecules with cutoff-radius pair interactions
//           (the construction of the original moldyn benchmark).
//           2,916 molecules / 26,244 interactions and
//           10,976 molecules / 65,856 interactions.
//
// Both generators connect the exact requested number of edges by keeping
// the `num_edges` geometrically shortest candidate pairs, so every run of
// a bench sees the paper's exact problem sizes. Node numbering is
// spatially coherent (cells in row-major order / lattice order) — this is
// what makes a *block* distribution of iterations concentrate each
// processor's updates in few portions and produce the phase load imbalance
// the paper observes (Sec. 5.4.2).
#pragma once

#include <cstdint>

#include "mesh/mesh.hpp"
#include "support/prng.hpp"

namespace earthred::mesh {

/// Parameters for the random-geometric euler-style mesh.
struct GeomMeshParams {
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t seed = 20020415;  ///< workload RNG seed
};

/// Builds a random geometric mesh with exactly the requested edge count.
/// Throws check_error if the request is denser than a complete graph.
Mesh make_geometric_mesh(const GeomMeshParams& params);

/// The paper's euler datasets.
Mesh euler_mesh_small();  ///< 2,800 nodes, 17,377 edges ("2K mesh")
Mesh euler_mesh_large();  ///< 9,428 nodes, 59,863 edges ("10K mesh")

/// Parameters for the moldyn FCC lattice.
struct MoldynParams {
  std::uint32_t cells_per_side = 0;   ///< FCC unit cells per dimension
  std::uint64_t num_interactions = 0; ///< pair-interaction count to keep
  double jitter = 0.05;               ///< positional noise (lattice units)
  std::uint64_t seed = 19941122;
};

/// Builds an FCC lattice with 4*cells^3 molecules and the
/// `num_interactions` shortest pair interactions.
Mesh make_moldyn_lattice(const MoldynParams& params);

/// The paper's moldyn datasets.
Mesh moldyn_small();  ///< 2,916 molecules, 26,244 interactions
Mesh moldyn_large();  ///< 10,976 molecules, 65,856 interactions

/// Randomly displaces every coordinate by N(0, sigma) per axis — the
/// "molecules moved" step of an adaptive run.
void jitter_coords(Mesh& m, double sigma, Xoshiro256& rng);

/// Recomputes the interaction list from current coordinates, keeping the
/// `num_edges` shortest pairs (a neighbour-list rebuild). The edge list is
/// replaced; node count and coordinates are untouched.
void rebuild_interactions(Mesh& m, std::uint64_t num_edges);

/// Rewires `count` randomly chosen distinct edge slots to fresh random
/// endpoint pairs (no self-loops, each new pair differs from the slot's
/// old pair). Edge count, node count, and every other slot are untouched —
/// the count-preserving mesh mutation that drives incremental re-planning
/// (PlanCache::patch_or_build). Returns the mutated slot ids, sorted
/// ascending. Requires count <= num_edges and num_nodes >= 2.
std::vector<std::uint32_t> rewire_edges(Mesh& m, std::uint64_t count,
                                        std::uint64_t seed);

}  // namespace earthred::mesh
