#include "shard/shard_router.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <utility>

#include "net/stream.hpp"
#include "support/binio.hpp"
#include "support/str.hpp"

namespace earthred::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// Granularity of the idle-wait loop: how often a blocked connection
/// thread rechecks the drain/abort flags.
constexpr int kIdlePollMs = 100;

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

/// Best-effort seq-0 refusal on a socket we are about to close (the
/// accept-shed path; mirrors ServeLoop's E-NET-MAXCONN send).
void send_refusal(int fd, const char* code, std::string detail) {
  net::RejectBody rb;
  rb.code = code;
  rb.detail = std::move(detail);
  const std::vector<std::byte> frame =
      net::encode_frame(net::FrameType::Reject, 0, net::encode_reject(rb));
  (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
}

}  // namespace

ShardRouter::ShardRouter(ShardMap map, RouterConfig cfg)
    : pool_(std::move(map), cfg.pool), cfg_(std::move(cfg)) {}

ShardRouter::~ShardRouter() {
  if (running_.load()) {
    request_abort();
    wait();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

bool ShardRouter::start(std::string* error) {
  listen_fd_ = net::tcp_listen(cfg_.host, cfg_.port, 64, error);
  if (listen_fd_ < 0) return false;
  port_ = net::tcp_local_port(listen_fd_);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  return true;
}

void ShardRouter::request_drain() {
  bool expected = false;
  if (drain_requested_.compare_exchange_strong(expected, true)) {
    const std::lock_guard<std::mutex> lock(drain_mutex_);
    drain_started_ = Clock::now();
  }
}

std::size_t ShardRouter::drain_fleet() {
  // Shards first: each stops admitting and finishes its in-flight work
  // while the router can still relay the tail of results. Router last.
  std::size_t acked = 0;
  for (std::size_t i = 0; i < pool_.map().size(); ++i) {
    const net::Client::PingReply r = pool_.drain(i);
    if (r.ok() && r.pong.draining) ++acked;
  }
  request_drain();
  return acked;
}

void ShardRouter::request_abort() {
  abort_requested_.store(true);
  request_drain();
}

void ShardRouter::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
}

RouterStats ShardRouter::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

bool ShardRouter::grace_expired() const {
  if (!drain_requested_.load()) return false;
  const std::lock_guard<std::mutex> lock(drain_mutex_);
  return seconds_since(drain_started_) > cfg_.drain_grace_seconds;
}

std::size_t ShardRouter::reap_conns(bool join_all) {
  const std::lock_guard<std::mutex> lock(conns_mutex_);
  std::size_t live = 0;
  for (auto it = conns_.begin(); it != conns_.end();) {
    ConnSlot& slot = **it;
    if (slot.done.load() || join_all) {
      if (slot.thread.joinable()) slot.thread.join();
      it = conns_.erase(it);
    } else {
      ++live;
      ++it;
    }
  }
  return live;
}

void ShardRouter::accept_loop() {
  while (true) {
    const bool draining = drain_requested_.load();
    const bool aborting = abort_requested_.load() || grace_expired();
    if (aborting) {
      // Cut every connection: shutdown(2) unblocks threads parked in
      // read_some, and their loops observe the abort flag.
      abort_requested_.store(true);
      const std::lock_guard<std::mutex> lock(conns_mutex_);
      for (auto& slot : conns_)
        if (slot->fd >= 0) ::shutdown(slot->fd, SHUT_RDWR);
    }
    const std::size_t live = reap_conns(aborting);
    if ((draining || aborting) && live == 0) break;

    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    const int n = ::poll(&pfd, 1, kIdlePollMs);
    if (n <= 0 || !(pfd.revents & POLLIN)) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    if (drain_requested_.load()) {
      send_refusal(fd, "E-NET-DRAINING",
                   "router is draining and accepts no new connections");
      ::close(fd);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed_draining;
      ++stats_.rejects_sent;
      ++stats_.frames_out;
      continue;
    }
    if (live >= cfg_.max_connections) {
      send_refusal(fd, "E-NET-MAXCONN",
                   strformat("router at its %u-connection limit",
                             cfg_.max_connections));
      ::close(fd);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed_maxconn;
      ++stats_.rejects_sent;
      ++stats_.frames_out;
      continue;
    }

    auto slot = std::make_unique<ConnSlot>();
    ConnSlot* raw = slot.get();
    raw->fd = fd;
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.accepted;
    }
    raw->thread = std::thread([this, raw] { conn_loop(raw); });
    const std::lock_guard<std::mutex> lock(conns_mutex_);
    conns_.push_back(std::move(slot));
  }
  running_.store(false);
}

void ShardRouter::conn_loop(ConnSlot* slot) {
  net::TcpStream stream(slot->fd);
  auto bump = [this](std::uint64_t RouterStats::* field) {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++(stats_.*field);
  };
  auto write_reply = [&](net::FrameType type, std::uint64_t seq,
                         std::span<const std::byte> payload) {
    const std::string code = net::write_frame(stream, type, seq, payload,
                                              cfg_.frame_timeout_ms);
    if (code.empty()) bump(&RouterStats::frames_out);
    return code.empty();
  };
  auto reject = [&](std::uint64_t seq, std::string code,
                    std::string detail) {
    net::RejectBody rb;
    rb.code = std::move(code);
    rb.detail = std::move(detail);
    const bool sent = write_reply(net::FrameType::Reject, seq,
                                  net::encode_reject(rb));
    if (sent) bump(&RouterStats::rejects_sent);
    return sent;
  };
  auto router_pong = [&] {
    net::PongBody pong;
    pong.in_flight = active_forwards_.load();
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    pong.completed = stats_.results_sent;
    pong.rejected = stats_.rejects_sent;
    pong.draining = drain_requested_.load() ? 1 : 0;
    return pong;
  };

  const auto started_draining = [this] { return drain_requested_.load(); };
  auto idle_since = Clock::now();
  bool idle_closed = false;
  while (true) {
    if (abort_requested_.load() || grace_expired()) break;

    // Wait for the first header byte, waking regularly so the drain and
    // abort flags stay live even on a silent connection. Once draining,
    // this connection winds down: any buffered frame is still answered
    // (a Submit with E-NET-DRAINING), then EOF or idleness ends it.
    std::array<std::byte, net::kHeaderBytes> hdr;
    const net::IoResult first = stream.read_some(hdr.data(), 1, kIdlePollMs);
    if (first.status == net::IoResult::Status::Timeout) {
      if (started_draining()) break;  // quiesce: nothing in flight here
      if (cfg_.idle_timeout_ms > 0 &&
          seconds_since(idle_since) * 1000.0 > cfg_.idle_timeout_ms) {
        idle_closed = true;
        break;
      }
      continue;
    }
    if (!first.ok()) break;  // EOF or error: peer is gone
    idle_since = Clock::now();

    // The frame has begun: complete it under the frame timeout.
    const net::IoResult rest = net::read_exact(
        stream, hdr.data() + 1, net::kHeaderBytes - 1, cfg_.frame_timeout_ms);
    if (!rest.ok()) {
      bump(&RouterStats::bad_frames);
      reject(0, rest.code(), "frame header incomplete");
      break;
    }
    net::HeaderParse h = net::parse_header(hdr, cfg_.max_frame_bytes);
    if (!h.ok()) {
      // Framing can no longer be trusted; answer coded and drop.
      bump(&RouterStats::bad_frames);
      reject(h.seq, h.code, h.detail);
      break;
    }
    std::vector<std::byte> payload(h.payload_len);
    if (h.payload_len > 0) {
      const net::IoResult pr = net::read_exact(
          stream, payload.data(), payload.size(), cfg_.frame_timeout_ms);
      if (!pr.ok()) {
        bump(&RouterStats::bad_frames);
        reject(h.seq, pr.code(), "frame payload incomplete");
        break;
      }
    }
    if (!net::payload_checksum_ok(h, payload)) {
      bump(&RouterStats::bad_frames);
      reject(h.seq, "E-NET-CHECKSUM", "payload checksum mismatch");
      break;
    }
    bump(&RouterStats::frames_in);

    if (h.type == net::FrameType::Ping) {
      if (!write_reply(net::FrameType::Pong, h.seq,
                       net::encode_pong(router_pong())))
        break;
      continue;
    }
    if (h.type == net::FrameType::Drain) {
      bump(&RouterStats::drain_frames);
      drain_fleet();
      net::PongBody pong = router_pong();
      pong.draining = 1;
      write_reply(net::FrameType::Pong, h.seq, net::encode_pong(pong));
      continue;  // the drain flag winds this loop down
    }
    if (h.type != net::FrameType::Submit) {
      // Pong/Result/Reject are responses; a peer sending them is confused
      // enough to disconnect.
      reject(h.seq, "E-NET-PROTO",
             strformat("unexpected %s frame from client",
                       net::to_string(h.type)));
      break;
    }

    // ---- Submit: route by content key, forward, relay the outcome ----
    bump(&RouterStats::submits);
    if (started_draining()) {
      if (reject(h.seq, "E-NET-DRAINING",
                 "router is draining and accepts no new work")) {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.submit_rejects;
        ++stats_.shed_draining;
      } else {
        bump(&RouterStats::submit_rejects);
      }
      continue;
    }
    support::ByteReader r(payload);
    const std::string line = net::get_string(r, cfg_.max_frame_bytes);
    if (r.fail()) {
      bump(&RouterStats::submit_rejects);
      reject(h.seq, "E-NET-PROTO", "undecodable submit payload");
      continue;
    }
    active_forwards_.fetch_add(1);
    EndpointPool::Forward fw = pool_.submit(content_key(line), line);
    active_forwards_.fetch_sub(1);
    if (fw.ok()) {
      net::ResultBody body = fw.result;
      if (fw.rerouted) {
        body.flags |= net::kResultFlagRerouted;
        bump(&RouterStats::reroutes);
      }
      const bool sent = write_reply(net::FrameType::Result, h.seq,
                                    net::encode_result(body));
      bump(&RouterStats::results_sent);  // terminated even if peer vanished
      if (!sent) break;
    } else {
      bump(&RouterStats::submit_rejects);
      if (!reject(h.seq, fw.code, fw.detail)) break;
    }
  }

  stream.close();
  slot->fd = -1;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.closed;
    if (idle_closed) ++stats_.idle_closes;
  }
  slot->done.store(true);
}

}  // namespace earthred::shard
