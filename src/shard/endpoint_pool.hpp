// EndpointPool: one fault-isolated net::Client per shard, plus the
// failover policy that turns a ShardMap rank order into a terminated
// outcome.
//
// Every shard gets exactly one persistent Client (its per-endpoint
// circuit breaker is the unit of fault isolation), guarded by a mutex —
// the wire protocol is synchronous request/response, so fleet
// parallelism comes from many router connections, not from multiplexing
// one. A per-shard in-flight bound counts callers queued on that mutex:
// when the owner shard is saturated the pool sheds with E-NET-BUSY
// (back-pressure propagates to the submitting client, which retries with
// backoff) instead of piling unbounded waiters onto a slow member — the
// async-BSP lesson of never barriering the fleet on one laggard.
//
// Failover walks the HRW rank order: a shard whose breaker is Open is
// skipped without a connection attempt, and a transport-level failure
// (dead shard, timeout, draining member) moves to the next-ranked shard.
// Deterministic refusals (E-JOB-*, version/oversize) propagate
// immediately — every shard would say the same. Any job served by a
// non-primary shard is marked rerouted so its digest stays attributable.
//
// Thread safety: submit/ping/drain/snapshot are safe from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "shard/shard_map.hpp"

namespace earthred::shard {

struct EndpointPoolConfig {
  /// Template for every shard's client; host/port come from the
  /// ShardMap and the jitter seed is decorrelated per shard.
  net::ClientConfig client;
  /// Submissions in flight (executing or queued) per shard beyond which
  /// the pool sheds with E-NET-BUSY.
  std::uint32_t max_inflight_per_shard = 32;
  /// Chaos seam: wraps each fresh connection of shard `index` (e.g. in a
  /// FaultyStream), mirroring net::ClientConfig::wrap_stream.
  std::function<std::unique_ptr<net::Stream>(std::unique_ptr<net::Stream>,
                                             std::uint32_t index)>
      wrap_stream;
};

/// Point-in-time per-shard accounting (ShardStats row).
struct ShardSnapshot {
  std::string name;
  std::string endpoint;
  std::uint64_t forwards = 0;      ///< submits attempted on this shard
  std::uint64_t done = 0;          ///< results returned by this shard
  std::uint64_t rejected = 0;      ///< refusals propagated from it
  std::uint64_t rerouted_in = 0;   ///< served here on a failover leg
  std::uint64_t failovers = 0;     ///< failures that moved to next rank
  std::uint64_t busy_shed = 0;     ///< shed at the in-flight bound
  std::uint64_t breaker_skips = 0; ///< ranked here, breaker open
  net::ClientStats client;
  net::BreakerState breaker = net::BreakerState::Closed;
  std::uint64_t latency_samples = 0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

class EndpointPool {
 public:
  EndpointPool(ShardMap map, EndpointPoolConfig cfg);
  EndpointPool(const EndpointPool&) = delete;
  EndpointPool& operator=(const EndpointPool&) = delete;

  /// Terminal outcome of routing one submission.
  struct Forward {
    std::string code;    ///< empty = `result` is valid
    std::string detail;
    net::ResultBody result;
    bool rerouted = false;       ///< not served by the owner shard
    std::uint32_t shard = 0;     ///< shard that answered (or last tried)
    std::uint32_t shards_tried = 0;
    bool ok() const { return code.empty(); }
  };

  /// Forwards one job line along the HRW rank order of `key`; always
  /// terminates with a result or a coded refusal.
  Forward submit(std::uint64_t key, const std::string& job_line);

  net::Client::PingReply ping(std::size_t shard);
  /// Sends the Drain control frame to one shard.
  net::Client::PingReply drain(std::size_t shard);

  const ShardMap& map() const { return map_; }
  std::vector<ShardSnapshot> snapshot() const;

 private:
  struct Shard {
    mutable std::mutex mutex;  ///< serializes the Client (ext. sync'd)
    std::unique_ptr<net::Client> client;
    std::atomic<std::uint32_t> inflight{0};
    mutable std::mutex stats_mutex;
    std::uint64_t forwards = 0, done = 0, rejected = 0, rerouted_in = 0,
                  failovers = 0, busy_shed = 0, breaker_skips = 0;
    std::vector<double> latency_ms;  ///< bounded reservoir of successes
  };

  ShardMap map_;
  EndpointPoolConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace earthred::shard
