// ShardMap: the static fleet topology and its deterministic routing
// function.
//
// The fleet is a set of named shard endpoints (serve processes, each with
// its own PlanCache/PlanStore). A job is routed by rendezvous (HRW)
// hashing of its *plan content key*: every shard gets a weight
// fast_hash64(shard name, seed = key) and the job goes to the
// highest-weight shard. Two properties make this the right partitioner
// for compile-once/run-many plans:
//
//   * identical jobs always land on the same shard, so its PlanCache
//     stays warm for them — the fleet-level analog of the paper's
//     inspector reuse;
//   * removing one shard moves only the keys that shard owned (in
//     expectation 1/N of the keyspace); every surviving key keeps its
//     owner, so a shard failure does not cold-start the whole fleet.
//
// The content key itself is derived from the job line *without building
// the kernel*: only the keys that enter the plan identity (mesh synthesis
// + PlanOptions) are folded, with the JobBuilder defaults applied, so
// `procs=4` spelled out and omitted route identically. Sweep counts,
// names, deadlines and engine flags never affect placement. `mutate=` is
// deliberately excluded too: an adaptive job routes to the shard holding
// its *base* plan, which is what patch_or_build needs to be resident.
//
// Everything here is pure computation — deterministic, unit-testable,
// pinned by a golden assignment table in tests/test_shard.cpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace earthred::shard {

struct ShardEndpoint {
  std::string name;  ///< stable identity the HRW weight hashes (unique)
  std::string host;
  std::uint16_t port = 0;
};

class ShardMap {
 public:
  ShardMap() = default;
  explicit ShardMap(std::vector<ShardEndpoint> shards);

  /// Parses config text: one shard per line, `host:port` or
  /// `name host:port`; blank lines and '#' comments are skipped. Returns
  /// an empty map (with `error` set) on any malformed line or duplicate
  /// name.
  static ShardMap parse(std::string_view text, std::string* error);
  /// parse() over the contents of `path`.
  static ShardMap load(const std::string& path, std::string* error);
  /// Parses a `host:port,host:port,...` flag value (--shards=).
  static ShardMap from_spec(const std::string& spec, std::string* error);

  std::size_t size() const { return shards_.size(); }
  bool empty() const { return shards_.empty(); }
  const ShardEndpoint& at(std::size_t i) const { return shards_[i]; }
  const std::vector<ShardEndpoint>& shards() const { return shards_; }

  /// The HRW weight of shard `i` for `key`.
  std::uint64_t weight(std::size_t i, std::uint64_t key) const;
  /// Shard indices ranked by descending weight for `key` (ties broken by
  /// index, so the order is total and deterministic). rank(key)[0] is the
  /// owner; the tail is the failover order.
  std::vector<std::uint32_t> rank(std::uint64_t key) const;
  /// rank(key)[0] without materializing the whole order.
  std::uint32_t owner(std::uint64_t key) const;

 private:
  std::vector<ShardEndpoint> shards_;
};

/// The routing content key of one job line: a hash over the
/// plan-identity keys only (kernel/preset/mesh/dsl/nodes/edges/seed/
/// procs/k/dist/bc/dedup), canonicalized with the JobBuilder defaults.
/// Unparseable or unknown tokens are folded verbatim (the shard will
/// reject the line; the router only needs determinism).
std::uint64_t content_key(std::string_view job_line);

}  // namespace earthred::shard
