// ShardRouter: the fleet front-end process.
//
// Speaks the net/wire.hpp protocol on both faces: it *is* a server to
// submitting clients (Submit/Ping/Drain in, Result/Reject/Pong out) and a
// client to every backend shard (one persistent net::Client per shard via
// EndpointPool). A Submit is routed by rendezvous-hashing its plan
// content key (shard/shard_map.hpp), so identical jobs always reach the
// same warm PlanCache; a dead or breaker-open shard fails over along the
// HRW rank order and the served Result carries kResultFlagRerouted.
//
// Unlike ServeLoop's single-thread poll multiplexer, the router is
// thread-per-connection: a forward is a synchronous call on the owning
// shard's client, so each accepted connection gets a thread that blocks
// in that call while other connections proceed — fleet concurrency comes
// from connection count, bounded by `max_connections` and per shard by
// the pool's in-flight cap (beyond it: E-NET-BUSY back-pressure).
//
// The terminating invariant the chaos suite pins: every Submit the router
// accepts ends in exactly one Result or coded Reject —
// `submits == results_sent + submit_rejects` at all times, even with a
// shard killed mid-stream. No hangs (every leg has a timeout), no silent
// drops (every refusal carries a code).
//
// Drain ordering (fleet quiesce is *router-last*): a Drain frame — or
// drain_fleet() from the CLI signal handler — first sends Drain to every
// shard (they stop admitting, finish in-flight work), then marks the
// router itself draining: new connections and new Submits get
// E-NET-DRAINING, in-flight forwards complete and their Results still
// flow back, and the process exits once every connection has wound down
// (or `drain_grace_seconds` expires and the stragglers are cut).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/wire.hpp"
#include "shard/endpoint_pool.hpp"
#include "shard/shard_map.hpp"

namespace earthred::shard {

struct RouterConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the actual one.
  std::uint16_t port = 0;
  std::uint32_t max_connections = 64;
  std::uint32_t max_frame_bytes = 1u << 20;
  /// Timeout for completing a frame once its first byte arrived, and for
  /// writing a response back to the submitting client.
  int frame_timeout_ms = 10000;
  /// Idle connections are closed after this (0 = keep forever).
  int idle_timeout_ms = 120000;
  /// Upper bound on a graceful drain before remaining connections are
  /// torn down anyway.
  double drain_grace_seconds = 30.0;
  /// Per-shard transport/failover policy.
  EndpointPoolConfig pool;
};

/// Lifetime counters of one ShardRouter (monotonic, except gauges).
/// Accounting identity (the chaos gate): at quiesce,
/// submits == results_sent + submit_rejects.
struct RouterStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t submits = 0;         ///< Submit frames admitted for routing
  std::uint64_t results_sent = 0;    ///< Submits answered with a Result
  std::uint64_t submit_rejects = 0;  ///< Submits answered with a Reject
  std::uint64_t rejects_sent = 0;    ///< all Reject frames (any cause)
  std::uint64_t reroutes = 0;        ///< Results served off-owner
  std::uint64_t bad_frames = 0;      ///< malformed (coded Reject + close)
  std::uint64_t shed_maxconn = 0;
  std::uint64_t shed_draining = 0;   ///< submits/accepts refused draining
  std::uint64_t drain_frames = 0;    ///< Drain control frames honored
  std::uint64_t idle_closes = 0;
  std::uint64_t open_connections() const { return accepted - closed; }
};

class ShardRouter {
 public:
  ShardRouter(ShardMap map, RouterConfig cfg);
  /// Forces an abort if still running.
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Binds the listen socket and starts the accept thread. False (with
  /// `error`) if the bind fails.
  bool start(std::string* error);
  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  /// Begins a graceful drain of the router itself (no shard fan-out);
  /// safe from any thread, idempotent.
  void request_drain();
  /// Fleet-wide drain, shards first, router last: sends the Drain frame
  /// to every shard (returns how many acknowledged), then request_drain()
  /// on the router.
  std::size_t drain_fleet();
  /// Forced teardown: every connection is cut now.
  void request_abort();
  /// Blocks until the accept thread and every connection thread exited.
  void wait();
  bool running() const { return running_.load(); }
  bool draining() const { return drain_requested_.load(); }

  RouterStats stats() const;
  EndpointPool& pool() { return pool_; }
  const ShardMap& map() const { return pool_.map(); }

 private:
  struct ConnSlot {
    std::thread thread;
    int fd = -1;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void conn_loop(ConnSlot* slot);
  /// Reaps finished connection threads; returns live count.
  std::size_t reap_conns(bool join_all);
  bool grace_expired() const;

  EndpointPool pool_;
  RouterConfig cfg_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> abort_requested_{false};
  std::atomic<std::uint64_t> active_forwards_{0};
  std::chrono::steady_clock::time_point drain_started_;
  mutable std::mutex drain_mutex_;  ///< guards drain_started_

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<ConnSlot>> conns_;

  mutable std::mutex stats_mutex_;
  RouterStats stats_;
};

}  // namespace earthred::shard
