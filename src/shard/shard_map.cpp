#include "shard/shard_map.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "support/binio.hpp"
#include "support/str.hpp"

namespace earthred::shard {

namespace {

/// Parses `host:port`; false on a malformed port.
bool parse_endpoint(std::string_view spec, std::string* host,
                    std::uint16_t* port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size())
    return false;
  unsigned long p = 0;
  const std::string digits(spec.substr(colon + 1));
  if (digits.find_first_not_of("0123456789") != std::string::npos)
    return false;
  try {
    p = std::stoul(digits);
  } catch (const std::exception&) {
    return false;
  }
  if (p == 0 || p > 65535) return false;
  *host = std::string(spec.substr(0, colon));
  *port = static_cast<std::uint16_t>(p);
  return true;
}

ShardMap build_checked(std::vector<ShardEndpoint> shards,
                       std::string* error) {
  std::set<std::string> names;
  for (const ShardEndpoint& s : shards) {
    if (!names.insert(s.name).second) {
      if (error) *error = "duplicate shard name '" + s.name + "'";
      return {};
    }
  }
  if (error) error->clear();
  return ShardMap(std::move(shards));
}

}  // namespace

ShardMap::ShardMap(std::vector<ShardEndpoint> shards)
    : shards_(std::move(shards)) {}

ShardMap ShardMap::parse(std::string_view text, std::string* error) {
  std::vector<ShardEndpoint> shards;
  std::size_t lineno = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++lineno;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    ShardEndpoint ep;
    const std::size_t space = line.find_first_of(" \t");
    std::string_view spec = line;
    if (space != std::string_view::npos) {
      ep.name = std::string(trim(line.substr(0, space)));
      spec = trim(line.substr(space + 1));
    }
    if (!parse_endpoint(spec, &ep.host, &ep.port)) {
      if (error)
        *error = strformat("shard config line %zu: expected "
                           "[name] host:port, got '%.*s'",
                           lineno, static_cast<int>(line.size()),
                           line.data());
      return {};
    }
    if (ep.name.empty()) ep.name = std::string(spec);
    shards.push_back(std::move(ep));
  }
  return build_checked(std::move(shards), error);
}

ShardMap ShardMap::load(const std::string& path, std::string* error) {
  std::ifstream is(path);
  if (!is.good()) {
    if (error) *error = "cannot open shard config '" + path + "'";
    return {};
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  return parse(buffer.str(), error);
}

ShardMap ShardMap::from_spec(const std::string& spec, std::string* error) {
  std::vector<ShardEndpoint> shards;
  for (const std::string& part : split(spec, ',')) {
    const std::string_view p = trim(part);
    if (p.empty()) continue;
    ShardEndpoint ep;
    if (!parse_endpoint(p, &ep.host, &ep.port)) {
      if (error)
        *error = strformat("--shards: expected host:port, got '%.*s'",
                           static_cast<int>(p.size()), p.data());
      return {};
    }
    ep.name = std::string(p);
    shards.push_back(std::move(ep));
  }
  return build_checked(std::move(shards), error);
}

std::uint64_t ShardMap::weight(std::size_t i, std::uint64_t key) const {
  const std::string& name = shards_[i].name;
  return support::fast_hash64(name.data(), name.size(), key);
}

std::vector<std::uint32_t> ShardMap::rank(std::uint64_t key) const {
  std::vector<std::uint32_t> order(shards_.size());
  for (std::size_t i = 0; i < order.size(); ++i)
    order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const std::uint64_t wa = weight(a, key);
              const std::uint64_t wb = weight(b, key);
              if (wa != wb) return wa > wb;
              return a < b;
            });
  return order;
}

std::uint32_t ShardMap::owner(std::uint64_t key) const {
  std::uint32_t best = 0;
  std::uint64_t best_w = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::uint64_t w = weight(i, key);
    if (i == 0 || w > best_w) {
      best = static_cast<std::uint32_t>(i);
      best_w = w;
    }
  }
  return best;
}

std::uint64_t content_key(std::string_view job_line) {
  // The plan-identity keys, with the JobBuilder defaults. Only these
  // affect where a job routes; sweeps/name/deadline/engine/mutate do not.
  static const std::map<std::string, std::string> kDefaults = {
      {"kernel", "euler"}, {"preset", ""},   {"mesh", ""},
      {"dsl", ""},         {"nodes", "1000"}, {"edges", "5000"},
      {"seed", "42"},      {"procs", "4"},    {"k", "2"},
      {"dist", "cyclic"},  {"bc", "16"},      {"dedup", "0"}};

  std::map<std::string, std::string> values = kDefaults;
  std::string junk;      // unparseable tokens, folded for determinism
  std::string strategy;  // routing only when forced (non-auto)
  std::string layout;    // routing only when non-default (non-none)
  for (const std::string& tok : split(trim(job_line), ' ')) {
    const std::string_view t = trim(tok);
    if (t.empty()) continue;
    const std::size_t eq = t.find('=');
    std::string key(t.substr(0, eq));
    std::string value(eq == std::string_view::npos ? std::string_view("")
                                                   : t.substr(eq + 1));
    if (key == "strategy") {
      // Unlike "backend", a forced strategy IS plan identity (it can
      // change result bits and forks the plan-cache key), so it routes —
      // but the default/explicit "auto" adds nothing, keeping every
      // pre-strategy job line on its original shard.
      if (value != "auto") strategy = std::move(value);
      continue;
    }
    if (key == "layout") {
      // Same rule as strategy: the layout pass forks plan identity, so a
      // non-default value routes, while the default "none" adds nothing
      // and keeps pre-layout job lines on their original shard.
      if (value != "none") layout = std::move(value);
      continue;
    }
    const auto it = values.find(key);
    if (it == values.end()) {
      // Known non-routing keys (sweeps=, name=, ...) are skipped; unknown
      // tokens still perturb the hash so distinct-but-invalid lines
      // cannot be confused.
      // "backend" is deliberately non-routing: compute backends are
      // bit-identical by contract, so plans and shard placement must
      // not fork on them.
      static const std::set<std::string> kNonRouting = {
          "sweeps", "deadline", "engine",  "name",
          "batch",  "no-batch", "pin",     "parallel-build",
          "verify", "mutate",   "mutate-seed", "backend"};
      if (!kNonRouting.count(key)) {
        junk += std::string(t);
        junk += '\n';
      }
      continue;
    }
    if (key == "dedup") {
      // Bare flag or boolean value, normalized the way Options reads it.
      it->second = (value.empty() || value == "true" || value == "1" ||
                    value == "yes")
                       ? "1"
                       : "0";
      continue;
    }
    // Canonicalize numerics (nodes=01000 == nodes=1000); non-numeric
    // values pass through verbatim.
    if (!value.empty() &&
        value.find_first_not_of("0123456789") == std::string::npos) {
      char* end = nullptr;
      const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
      if (end && *end == '\0') value = std::to_string(n);
    }
    it->second = std::move(value);
  }

  std::string canonical;
  for (const auto& [key, value] : values) {
    canonical += key;
    canonical += '=';
    canonical += value;
    canonical += '|';
  }
  if (!strategy.empty()) canonical += "strategy=" + strategy + "|";
  if (!layout.empty()) canonical += "layout=" + layout + "|";
  canonical += junk;
  return support::fast_hash64(canonical.data(), canonical.size());
}

}  // namespace earthred::shard
