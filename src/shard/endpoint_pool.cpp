#include "shard/endpoint_pool.hpp"

#include <algorithm>
#include <chrono>

#include "support/stats.hpp"
#include "support/str.hpp"

namespace earthred::shard {

namespace {

using Clock = std::chrono::steady_clock;

/// Ring-buffer cap on per-shard latency samples: enough for stable
/// percentiles, bounded for a long-lived router.
constexpr std::size_t kMaxLatencySamples = 4096;

/// Codes that mean "this shard, right now" rather than "this job":
/// the next-ranked shard may well succeed. E-NET-BUSY is deliberately
/// absent — the in-flight bound is back-pressure and propagates, so a
/// saturated owner is not silently diluted across the fleet (which would
/// cold-start other caches). Deterministic refusals (E-JOB-*, VERSION,
/// OVERSIZE) are absent because every shard would refuse identically.
bool failover_code(const std::string& code) {
  return code == "E-NET-CIRCUIT" || code == "E-NET-CONN" ||
         code == "E-NET-TIMEOUT" || code == "E-NET-TRUNCATED" ||
         code == "E-NET-MAGIC" || code == "E-NET-CHECKSUM" ||
         code == "E-NET-PROTO" || code == "E-NET-MAXCONN" ||
         code == "E-NET-DRAINING";
}

}  // namespace

EndpointPool::EndpointPool(ShardMap map, EndpointPoolConfig cfg)
    : map_(std::move(map)), cfg_(std::move(cfg)) {
  shards_.reserve(map_.size());
  for (std::size_t i = 0; i < map_.size(); ++i) {
    auto s = std::make_unique<Shard>();
    net::ClientConfig ccfg = cfg_.client;
    ccfg.host = map_.at(i).host;
    ccfg.port = map_.at(i).port;
    // Decorrelate retry jitter across shards.
    ccfg.jitter_seed = cfg_.client.jitter_seed + 0x9e3779b97f4a7c15ull * i;
    if (cfg_.wrap_stream) {
      const auto idx = static_cast<std::uint32_t>(i);
      auto wrap = cfg_.wrap_stream;
      ccfg.wrap_stream = [wrap, idx](std::unique_ptr<net::Stream> inner) {
        return wrap(std::move(inner), idx);
      };
    }
    s->client = std::make_unique<net::Client>(std::move(ccfg));
    shards_.push_back(std::move(s));
  }
}

EndpointPool::Forward EndpointPool::submit(std::uint64_t key,
                                           const std::string& job_line) {
  Forward f;
  if (shards_.empty()) {
    f.code = "E-NET-CONN";
    f.detail = "no shards configured";
    return f;
  }
  const std::vector<std::uint32_t> order = map_.rank(key);
  std::string last_code;
  std::string last_detail;
  bool skipped_any = false;
  for (std::size_t r = 0; r < order.size(); ++r) {
    const std::uint32_t idx = order[r];
    Shard& s = *shards_[idx];
    f.shard = idx;

    // In-flight bound, counting callers already queued on the client
    // mutex: saturation is shed as back-pressure, never as a pile-up.
    if (s.inflight.fetch_add(1) >= cfg_.max_inflight_per_shard) {
      s.inflight.fetch_sub(1);
      f.code = "E-NET-BUSY";
      f.detail = strformat("shard %s at its %u-inflight bound",
                           map_.at(idx).name.c_str(),
                           cfg_.max_inflight_per_shard);
      const std::lock_guard<std::mutex> lk(s.stats_mutex);
      ++s.busy_shed;
      return f;
    }

    net::Client::Reply reply;
    bool breaker_open = false;
    const auto t0 = Clock::now();
    {
      const std::lock_guard<std::mutex> lk(s.mutex);
      if (s.client->breaker_state() == net::BreakerState::Open) {
        // Fail over without a connection attempt — the whole point of
        // the per-endpoint breaker.
        breaker_open = true;
      } else {
        reply = s.client->submit(job_line);
      }
    }
    s.inflight.fetch_sub(1);

    if (breaker_open) {
      skipped_any = true;
      last_code = "E-NET-CIRCUIT";
      last_detail = strformat("shard %s breaker open",
                              map_.at(idx).name.c_str());
      const std::lock_guard<std::mutex> lk(s.stats_mutex);
      ++s.breaker_skips;
      continue;
    }
    ++f.shards_tried;

    if (reply.ok()) {
      const double ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
      f.result = reply.result;
      f.rerouted = r != 0 || skipped_any;
      const std::lock_guard<std::mutex> lk(s.stats_mutex);
      ++s.forwards;
      ++s.done;
      if (f.rerouted) ++s.rerouted_in;
      if (s.latency_ms.size() < kMaxLatencySamples)
        s.latency_ms.push_back(ms);
      else
        s.latency_ms[s.done % kMaxLatencySamples] = ms;
      return f;
    }

    if (failover_code(reply.code)) {
      last_code = reply.code;
      last_detail = strformat("shard %s: %s", map_.at(idx).name.c_str(),
                              reply.detail.c_str());
      skipped_any = true;
      const std::lock_guard<std::mutex> lk(s.stats_mutex);
      ++s.forwards;
      ++s.failovers;
      continue;
    }

    // Deterministic refusal (E-JOB-*, E-NET-BUSY from the shard's own
    // inflight limit, version/oversize): propagate as the outcome.
    f.code = reply.code;
    f.detail = reply.detail;
    const std::lock_guard<std::mutex> lk(s.stats_mutex);
    ++s.forwards;
    ++s.rejected;
    return f;
  }
  // Every ranked shard was skipped or failed at the transport level.
  f.code = last_code.empty() ? "E-NET-CONN" : last_code;
  f.detail = strformat("all %zu ranked shard(s) unavailable; last: %s",
                       order.size(), last_detail.c_str());
  return f;
}

net::Client::PingReply EndpointPool::ping(std::size_t shard) {
  Shard& s = *shards_[shard];
  const std::lock_guard<std::mutex> lk(s.mutex);
  return s.client->ping();
}

net::Client::PingReply EndpointPool::drain(std::size_t shard) {
  Shard& s = *shards_[shard];
  const std::lock_guard<std::mutex> lk(s.mutex);
  return s.client->drain();
}

std::vector<ShardSnapshot> EndpointPool::snapshot() const {
  std::vector<ShardSnapshot> out;
  out.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = *shards_[i];
    ShardSnapshot snap;
    snap.name = map_.at(i).name;
    snap.endpoint = map_.at(i).host + ":" + std::to_string(map_.at(i).port);
    std::vector<double> lat;
    {
      const std::lock_guard<std::mutex> lk(s.stats_mutex);
      snap.forwards = s.forwards;
      snap.done = s.done;
      snap.rejected = s.rejected;
      snap.rerouted_in = s.rerouted_in;
      snap.failovers = s.failovers;
      snap.busy_shed = s.busy_shed;
      snap.breaker_skips = s.breaker_skips;
      lat = s.latency_ms;
    }
    {
      const std::lock_guard<std::mutex> lk(s.mutex);
      snap.client = s.client->stats();
      snap.breaker = s.client->breaker_state();
    }
    snap.latency_samples = lat.size();
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      snap.p50_ms = quantile_sorted(lat, 0.50);
      snap.p95_ms = quantile_sorted(lat, 0.95);
      snap.p99_ms = quantile_sorted(lat, 0.99);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

}  // namespace earthred::shard
