// NAS-CG style sparse matrix generator (`makea` from the NAS Parallel
// Benchmarks). The paper's mvm experiments use the class W, A and B
// matrices (7,000 / 14,000 / 75,000 rows with 508,402 / 1,853,104 /
// 13,708,072 nonzeros); this generator follows the NPB construction —
// random sparse vectors accumulated as scaled outer products with a
// shifted diagonal — using the same 48-bit `randlc` generator, so the
// resulting matrices have the statistical structure the paper ran on.
#pragma once

#include <cstdint>

#include "sparse/csr.hpp"

namespace earthred::sparse {

/// Parameters of the NPB CG matrix construction.
struct NasCgParams {
  std::uint32_t n = 1400;     ///< matrix dimension
  std::uint32_t nonzer = 7;   ///< nonzeros per generated sparse vector
  double rcond = 0.1;         ///< condition-number control
  double shift = 10.0;        ///< diagonal shift (lambda)
  double seed = 314159265.0;  ///< randlc seed
};

/// NPB class S (1,400 rows) — handy for tests.
NasCgParams nas_class_s();
/// NPB class W (7,000 rows) — the paper's first mvm dataset.
NasCgParams nas_class_w();
/// NPB class A (14,000 rows) — the paper's second mvm dataset.
NasCgParams nas_class_a();
/// NPB class B (75,000 rows) — the paper's third mvm dataset.
NasCgParams nas_class_b();

/// A class-B-shaped matrix scaled down by `divisor` in dimension, used
/// when the full 13.7M-nonzero matrix is too slow for a quick bench run.
NasCgParams nas_class_b_scaled(std::uint32_t divisor);

/// Runs the `makea` construction and returns the matrix in CSR form.
/// The result is structurally symmetric with a positive shifted diagonal.
CsrMatrix make_nas_cg_matrix(const NasCgParams& params);

}  // namespace earthred::sparse
