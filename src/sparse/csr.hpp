// Sparse matrix types for the mvm kernel (Sec. 5.3 of the paper: sparse
// matrix-vector multiply extracted from NAS CG).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace earthred::sparse {

/// One coordinate-format entry.
struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

/// Compressed-sparse-row matrix.
///
/// Invariants (checked by validate()):
///   * row_ptr.size() == nrows + 1, row_ptr.front() == 0,
///     row_ptr.back() == col_idx.size() == values.size();
///   * row_ptr nondecreasing;
///   * within each row, column indices strictly increase and are < ncols.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed.
  static CsrMatrix from_triplets(std::uint32_t nrows, std::uint32_t ncols,
                                 std::vector<Triplet> entries);

  std::uint32_t nrows() const noexcept { return nrows_; }
  std::uint32_t ncols() const noexcept { return ncols_; }
  std::uint64_t nnz() const noexcept { return col_idx_.size(); }

  std::span<const std::uint64_t> row_ptr() const noexcept { return row_ptr_; }
  std::span<const std::uint32_t> col_idx() const noexcept { return col_idx_; }
  std::span<const double> values() const noexcept { return values_; }

  /// Number of nonzeros in row r.
  std::uint64_t row_nnz(std::uint32_t r) const;

  /// y = A * x. Sizes must match; the reference implementation for all
  /// parallel-execution validation.
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// Returns the transpose.
  CsrMatrix transpose() const;

  /// True if structurally and numerically symmetric within `tol`.
  bool is_symmetric(double tol = 1e-12) const;

  /// Throws internal_error if any invariant is violated.
  void validate() const;

 private:
  std::uint32_t nrows_ = 0;
  std::uint32_t ncols_ = 0;
  std::vector<std::uint64_t> row_ptr_{0};
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace earthred::sparse
