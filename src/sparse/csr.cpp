#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace earthred::sparse {

CsrMatrix CsrMatrix::from_triplets(std::uint32_t nrows, std::uint32_t ncols,
                                   std::vector<Triplet> entries) {
  for (const Triplet& t : entries) {
    ER_EXPECTS_MSG(t.row < nrows && t.col < ncols,
                   "triplet index out of range");
  }
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.nrows_ = nrows;
  m.ncols_ = ncols;
  m.row_ptr_.assign(nrows + 1, 0);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());

  std::size_t i = 0;
  for (std::uint32_t r = 0; r < nrows; ++r) {
    while (i < entries.size() && entries[i].row == r) {
      const std::uint32_t c = entries[i].col;
      double v = 0.0;
      while (i < entries.size() && entries[i].row == r &&
             entries[i].col == c) {
        v += entries[i].value;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(v);
    }
    m.row_ptr_[r + 1] = m.col_idx_.size();
  }
  return m;
}

std::uint64_t CsrMatrix::row_nnz(std::uint32_t r) const {
  ER_EXPECTS(r < nrows_);
  return row_ptr_[r + 1] - row_ptr_[r];
}

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  ER_EXPECTS(x.size() == ncols_);
  ER_EXPECTS(y.size() == nrows_);
  for (std::uint32_t r = 0; r < nrows_; ++r) {
    double acc = 0.0;
    for (std::uint64_t j = row_ptr_[r]; j < row_ptr_[r + 1]; ++j)
      acc += values_[j] * x[col_idx_[j]];
    y[r] = acc;
  }
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<Triplet> entries;
  entries.reserve(nnz());
  for (std::uint32_t r = 0; r < nrows_; ++r)
    for (std::uint64_t j = row_ptr_[r]; j < row_ptr_[r + 1]; ++j)
      entries.push_back(Triplet{col_idx_[j], r, values_[j]});
  return from_triplets(ncols_, nrows_, std::move(entries));
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (nrows_ != ncols_) return false;
  const CsrMatrix t = transpose();
  if (t.col_idx_ != col_idx_ || t.row_ptr_ != row_ptr_) return false;
  for (std::size_t j = 0; j < values_.size(); ++j)
    if (std::abs(values_[j] - t.values_[j]) > tol) return false;
  return true;
}

void CsrMatrix::validate() const {
  ER_ENSURES(row_ptr_.size() == static_cast<std::size_t>(nrows_) + 1);
  ER_ENSURES(row_ptr_.front() == 0);
  ER_ENSURES(row_ptr_.back() == col_idx_.size());
  ER_ENSURES(col_idx_.size() == values_.size());
  for (std::uint32_t r = 0; r < nrows_; ++r) {
    ER_ENSURES(row_ptr_[r] <= row_ptr_[r + 1]);
    for (std::uint64_t j = row_ptr_[r]; j < row_ptr_[r + 1]; ++j) {
      ER_ENSURES(col_idx_[j] < ncols_);
      if (j + 1 < row_ptr_[r + 1]) ER_ENSURES(col_idx_[j] < col_idx_[j + 1]);
    }
  }
}

}  // namespace earthred::sparse
