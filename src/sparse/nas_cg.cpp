#include "sparse/nas_cg.hpp"

#include <bit>
#include <cmath>
#include <vector>

#include "support/check.hpp"
#include "support/prng.hpp"

namespace earthred::sparse {

NasCgParams nas_class_s() { return {1400, 7, 0.1, 10.0, 314159265.0}; }
NasCgParams nas_class_w() { return {7000, 8, 0.1, 12.0, 314159265.0}; }
NasCgParams nas_class_a() { return {14000, 11, 0.1, 20.0, 314159265.0}; }
NasCgParams nas_class_b() { return {75000, 13, 0.1, 60.0, 314159265.0}; }

NasCgParams nas_class_b_scaled(std::uint32_t divisor) {
  NasCgParams p = nas_class_b();
  ER_EXPECTS(divisor >= 1);
  p.n = p.n / divisor;
  return p;
}

namespace {

/// NPB sprnvc: draws `nz` distinct random positions (0-based here) with
/// random values, rejecting positions >= n and duplicates.
void sprnvc(NasRandlc& rng, std::uint32_t n, std::uint32_t nz,
            std::vector<double>& v, std::vector<std::uint32_t>& iv) {
  v.clear();
  iv.clear();
  const std::uint64_t nn1 = std::bit_ceil(static_cast<std::uint64_t>(n));
  while (iv.size() < nz) {
    const double vecelt = rng.next();
    const double vecloc = rng.next();
    const auto i =
        static_cast<std::uint64_t>(static_cast<double>(nn1) * vecloc);
    if (i >= n) continue;
    bool used = false;
    for (std::uint32_t prev : iv) {
      if (prev == i) {
        used = true;
        break;
      }
    }
    if (used) continue;
    v.push_back(vecelt);
    iv.push_back(static_cast<std::uint32_t>(i));
  }
}

/// NPB vecset: force entry `i` to `val`, appending it if absent.
void vecset(std::vector<double>& v, std::vector<std::uint32_t>& iv,
            std::uint32_t i, double val) {
  for (std::size_t k = 0; k < iv.size(); ++k) {
    if (iv[k] == i) {
      v[k] = val;
      return;
    }
  }
  v.push_back(val);
  iv.push_back(i);
}

}  // namespace

CsrMatrix make_nas_cg_matrix(const NasCgParams& p) {
  ER_EXPECTS(p.n >= 2);
  ER_EXPECTS(p.nonzer >= 1);
  ER_EXPECTS(p.rcond > 0.0 && p.rcond < 1.0);

  NasRandlc rng(p.seed);
  const double ratio =
      std::pow(p.rcond, 1.0 / static_cast<double>(p.n));
  double size = 1.0;

  std::vector<Triplet> entries;
  // Each outer product contributes ~(nonzer+1)^2 entries.
  entries.reserve(static_cast<std::size_t>(p.n) *
                  (p.nonzer + 1) * (p.nonzer + 1));

  std::vector<double> vc;
  std::vector<std::uint32_t> ic;
  for (std::uint32_t iouter = 0; iouter < p.n; ++iouter) {
    sprnvc(rng, p.n, p.nonzer, vc, ic);
    vecset(vc, ic, iouter, 0.5);
    // Scaled outer product v * v^T added into A (NPB `sparse`).
    for (std::size_t a = 0; a < ic.size(); ++a) {
      for (std::size_t b = 0; b < ic.size(); ++b) {
        entries.push_back(
            Triplet{ic[b], ic[a], size * vc[a] * vc[b]});
      }
    }
    size *= ratio;
  }
  // Shifted identity: a(i,i) += rcond - shift.
  for (std::uint32_t i = 0; i < p.n; ++i)
    entries.push_back(Triplet{i, i, p.rcond - p.shift});

  CsrMatrix m = CsrMatrix::from_triplets(p.n, p.n, std::move(entries));
  m.validate();
  return m;
}

}  // namespace earthred::sparse
