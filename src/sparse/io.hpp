// Sparse-matrix serialization in MatrixMarket coordinate format
// (`%%MatrixMarket matrix coordinate real general`), the de-facto exchange
// format for sparse matrices — so users can feed their own matrices to
// the mvm engine and export the NAS-CG generated ones.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace earthred::sparse {

/// Writes `m` as MatrixMarket coordinate/real/general (1-based indices).
void write_matrix_market(std::ostream& os, const CsrMatrix& m);
void save_matrix_market(const std::string& path, const CsrMatrix& m);

/// Reads a MatrixMarket coordinate file. Supports `general` and
/// `symmetric` (the lower triangle is mirrored). Throws check_error on
/// malformed input or unsupported variants (complex/pattern).
CsrMatrix read_matrix_market(std::istream& is);
CsrMatrix load_matrix_market(const std::string& path);

}  // namespace earthred::sparse
