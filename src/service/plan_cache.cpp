#include "service/plan_cache.hpp"

#include <utility>

#include "inspector/plan_verifier.hpp"
#include "service/plan_store.hpp"
#include "support/check.hpp"

namespace earthred::service {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t kernel_fingerprint(const core::PhasedKernel& kernel) {
  const core::KernelShape s = kernel.shape();
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, s.num_nodes);
  fnv_mix(h, s.num_edges);
  fnv_mix(h, s.num_refs);
  fnv_mix(h, s.num_reduction_arrays);
  fnv_mix(h, s.num_node_read_arrays);
  for (std::uint32_t r = 0; r < s.num_refs; ++r)
    for (std::uint64_t e = 0; e < s.num_edges; ++e)
      fnv_mix(h, kernel.ref(r, e));
  return h;
}

PlanKey make_plan_key(const core::PhasedKernel& kernel,
                      const core::PlanOptions& opt,
                      std::optional<std::uint64_t> fingerprint) {
  PlanKey key;
  key.content_hash =
      fingerprint ? *fingerprint : kernel_fingerprint(kernel);
  key.num_procs = opt.num_procs;
  key.k = opt.k;
  key.distribution = opt.distribution;
  key.block_cyclic_size = opt.block_cyclic_size;
  key.dedup_buffers = opt.inspector.dedup_buffers;
  key.strategy = opt.strategy;
  // Resolve the env override here, mirroring build_execution_plan, so a
  // forced layout keys (and stores) exactly what the build will produce.
  key.layout = core::effective_layout(opt.layout);
  return key;
}

PlanPtr PlanCache::acquire(const PlanKey& key, Outcome* outcome,
                           const std::function<PlanPtr(Outcome&)>& produce) {
  const auto report = [&](Outcome o) {
    if (outcome) *outcome = o;
  };

  std::promise<PlanPtr> promise;
  std::shared_future<PlanPtr> inflight;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.ready) {
        ++counters_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        report(Outcome::Hit);
        return it->second.future.get();  // ready: get() cannot block
      }
      // Single-flight join: another thread is producing this key.
      ++counters_.coalesced;
      inflight = it->second.future;
    } else {
      // Miss: install an in-flight entry and produce outside the lock.
      // Disk loads ride the same single flight as builds.
      ++counters_.misses;
      Entry entry;
      entry.future = promise.get_future().share();
      entries_.emplace(key, std::move(entry));
    }
  }
  if (inflight.valid()) {
    report(Outcome::Coalesced);
    return inflight.get();  // blocks; rethrows the producer's exception
  }

  // Produce without holding the lock (other keys proceed concurrently).
  PlanPtr plan;
  Outcome how = Outcome::Built;
  try {
    plan = produce(how);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.build_failures;
      entries_.erase(key);  // let a later request retry
    }
    promise.set_exception(std::current_exception());
    throw;
  }

  // Fulfill the promise *before* flipping the entry to ready: a thread
  // that sees ready=true under the lock calls future.get() while still
  // holding the mutex, so the value must already be there.
  promise.set_value(plan);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.ready = true;
      it->second.bytes = plan->byte_size();
      lru_.push_front(key);
      it->second.lru = lru_.begin();
      counters_.bytes += it->second.bytes;
      ++counters_.entries;
      evict_to_budget();
    }
  }
  report(how);
  return plan;
}

PlanPtr PlanCache::try_store_load(const PlanKey& key, Outcome& how) {
  if (!cfg_.store) return nullptr;
  core::PlanLoadResult loaded = cfg_.store->load(key);
  if (loaded.ok()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.disk_hits;
    how = Outcome::DiskLoaded;
    return std::move(loaded.plan);
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (loaded.error_code == "E-STORE-OPEN") {
    ++counters_.disk_misses;  // simply not stored yet
  } else {
    // Present but rejected (corrupt, stale version, wrong identity,
    // failed verification, ...): count the fallback, remember why, and
    // let the caller rebuild as if the file did not exist.
    ++counters_.disk_fallbacks;
    last_fallback_reason_ = loaded.error_code + ": " + loaded.detail;
  }
  return nullptr;
}

void PlanCache::persist(const PlanKey& key,
                        const core::ExecutionPlan& plan) {
  if (!cfg_.store) return;
  std::string error;
  const bool saved = cfg_.store->save(key, plan, &error);
  const std::lock_guard<std::mutex> lock(mutex_);
  if (saved)
    ++counters_.persisted;
  else
    ++counters_.persist_failures;
}

PlanPtr PlanCache::produce_from_tiers(const PlanKey& key,
                                      const core::PhasedKernel& kernel,
                                      const core::PlanOptions& opt,
                                      Outcome& how) {
  if (PlanPtr loaded = try_store_load(key, how)) return loaded;
  auto plan = std::make_shared<const core::ExecutionPlan>(
      core::build_execution_plan(kernel, opt));
  how = Outcome::Built;
  persist(key, *plan);
  return plan;
}

PlanPtr PlanCache::lookup_or_build(const core::PhasedKernel& kernel,
                                   const core::PlanOptions& opt,
                                   std::optional<std::uint64_t> fingerprint,
                                   Outcome* outcome) {
  const PlanKey key = make_plan_key(kernel, opt, fingerprint);
  return acquire(key, outcome, [&](Outcome& how) {
    return produce_from_tiers(key, kernel, opt, how);
  });
}

PlanPtr PlanCache::peek_ready(const PlanKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return nullptr;
  return it->second.future.get();
}

PlanPtr PlanCache::patch_or_build(
    const core::PhasedKernel& kernel, const core::PlanOptions& opt,
    std::uint64_t base_fingerprint,
    std::span<const std::uint32_t> changed_iterations,
    std::optional<std::uint64_t> fingerprint, Outcome* outcome) {
  const PlanKey key = make_plan_key(kernel, opt, fingerprint);
  PlanKey base_key = key;
  base_key.content_hash = base_fingerprint;

  return acquire(key, outcome, [&](Outcome& how) -> PlanPtr {
    // Tier order matches lookup_or_build: the *target* plan may already
    // be persisted (a repeat of the same mutation), in which case a
    // zero-copy load beats re-patching.
    if (PlanPtr loaded = try_store_load(key, how)) return loaded;

    // Find the base plan: memory first, then the store. Neither lookup
    // counts as a request — this is plumbing for the patch, not a client
    // cache access.
    PlanPtr base = peek_ready(base_key);
    if (!base && cfg_.store) {
      core::PlanLoadResult loaded = cfg_.store->load(base_key);
      if (loaded.ok()) base = std::move(loaded.plan);
    }

    // A base built under a layout pass cannot be patched in place: the
    // mutation may change the reference graph, so the permutation and the
    // target-stable edge order both have to be recomputed. Route straight
    // to the full build (the base stays valid for other requests).
    if (base && (base->applied_layout != core::LayoutKind::None ||
                 base->options.layout != core::LayoutKind::None)) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.layout_patch_fallbacks;
      }
      base = nullptr;
    }

    if (base && !base->options.inspector.dedup_buffers) {
      try {
        core::ExecutionPlan patched =
            core::patch_execution_plan(kernel, *base, changed_iterations);
        // Re-verify in budget mode unconditionally: a patched plan is
        // admitted on proof, not provenance (patch_execution_plan itself
        // verifies only when options.verify is on).
        if (!base->options.verify) {
          inspector::PlanVerifyOptions vopt;
          vopt.exhaustive = false;
          const inspector::PlanVerifyReport report = inspector::verify_plan(
              patched.sched, patched.insp, patched.shape.num_edges,
              patched.shape.num_refs, vopt);
          if (!report.ok())
            throw verify_error("patched plan failed verification: " +
                               report.first_error());
        }
        auto plan =
            std::make_shared<const core::ExecutionPlan>(std::move(patched));
        how = Outcome::Patched;
        persist(key, *plan);
        const std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.patched;
        return plan;
      } catch (const std::exception& e) {
        // Patch or verification failed: the base plan is suspect.
        // Invalidate it, count the fallback, and rebuild from scratch —
        // the client never sees this.
        const std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.patch_fallbacks;
        last_fallback_reason_ = std::string("patch fallback: ") + e.what();
        const auto it = entries_.find(base_key);
        if (it != entries_.end() && it->second.ready) {
          counters_.bytes -= it->second.bytes;
          --counters_.entries;
          lru_.erase(it->second.lru);
          entries_.erase(it);
        }
      }
    }
    // Full rebuild (no base, dedup plan, or failed patch). The store was
    // already consulted for this key above, so build directly.
    auto plan = std::make_shared<const core::ExecutionPlan>(
        core::build_execution_plan(kernel, opt));
    how = Outcome::Built;
    persist(key, *plan);
    return plan;
  });
}

bool PlanCache::contains(const PlanKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it != entries_.end() && it->second.ready;
}

PlanCache::Counters PlanCache::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::uint64_t PlanCache::resident_key_digest(std::uint64_t* entries) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // entries_ is an ordered map, so the fold order is canonical regardless
  // of how the entries arrived.
  std::uint64_t h = kFnvOffset;
  std::uint64_t n = 0;
  for (const auto& [key, entry] : entries_) {
    if (!entry.ready) continue;
    ++n;
    fnv_mix(h, key.content_hash);
    fnv_mix(h, (static_cast<std::uint64_t>(key.num_procs) << 32) | key.k);
    fnv_mix(h, (static_cast<std::uint64_t>(key.distribution) << 32) |
                   key.block_cyclic_size);
    fnv_mix(h, (key.dedup_buffers ? 1ull : 0ull) |
                   (static_cast<std::uint64_t>(key.strategy) << 1) |
                   (static_cast<std::uint64_t>(key.layout) << 8));
  }
  if (entries) *entries = n;
  return h;
}

std::string PlanCache::last_fallback_reason() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_fallback_reason_;
}

void PlanCache::evict_to_budget() {
  while (counters_.bytes > cfg_.byte_budget && !lru_.empty()) {
    const PlanKey victim = lru_.back();
    const auto it = entries_.find(victim);
    lru_.pop_back();
    if (it == entries_.end()) continue;
    counters_.bytes -= it->second.bytes;
    --counters_.entries;
    ++counters_.evictions;
    entries_.erase(it);
  }
}

}  // namespace earthred::service
