#include "service/plan_cache.hpp"

#include <utility>

#include "support/check.hpp"

namespace earthred::service {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t kernel_fingerprint(const core::PhasedKernel& kernel) {
  const core::KernelShape s = kernel.shape();
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, s.num_nodes);
  fnv_mix(h, s.num_edges);
  fnv_mix(h, s.num_refs);
  fnv_mix(h, s.num_reduction_arrays);
  fnv_mix(h, s.num_node_read_arrays);
  for (std::uint32_t r = 0; r < s.num_refs; ++r)
    for (std::uint64_t e = 0; e < s.num_edges; ++e)
      fnv_mix(h, kernel.ref(r, e));
  return h;
}

PlanKey make_plan_key(const core::PhasedKernel& kernel,
                      const core::PlanOptions& opt,
                      std::optional<std::uint64_t> fingerprint) {
  PlanKey key;
  key.content_hash =
      fingerprint ? *fingerprint : kernel_fingerprint(kernel);
  key.num_procs = opt.num_procs;
  key.k = opt.k;
  key.distribution = opt.distribution;
  key.block_cyclic_size = opt.block_cyclic_size;
  key.dedup_buffers = opt.inspector.dedup_buffers;
  return key;
}

PlanPtr PlanCache::lookup_or_build(const core::PhasedKernel& kernel,
                                   const core::PlanOptions& opt,
                                   std::optional<std::uint64_t> fingerprint,
                                   Outcome* outcome) {
  const PlanKey key = make_plan_key(kernel, opt, fingerprint);
  const auto report = [&](Outcome o) {
    if (outcome) *outcome = o;
  };

  std::promise<PlanPtr> promise;
  std::shared_future<PlanPtr> inflight;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (it->second.ready) {
        ++counters_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru);
        report(Outcome::Hit);
        return it->second.future.get();  // ready: get() cannot block
      }
      // Single-flight join: another thread is building this key.
      ++counters_.coalesced;
      inflight = it->second.future;
    } else {
      // Miss: install an in-flight entry and build outside the lock.
      ++counters_.misses;
      Entry entry;
      entry.future = promise.get_future().share();
      entries_.emplace(key, std::move(entry));
    }
  }
  if (inflight.valid()) {
    report(Outcome::Coalesced);
    return inflight.get();  // blocks; rethrows the builder's exception
  }

  // Build without holding the lock (other keys proceed concurrently).
  PlanPtr plan;
  try {
    plan = std::make_shared<const core::ExecutionPlan>(
        core::build_execution_plan(kernel, opt));
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.build_failures;
      entries_.erase(key);  // let a later request retry
    }
    promise.set_exception(std::current_exception());
    throw;
  }

  // Fulfill the promise *before* flipping the entry to ready: a thread
  // that sees ready=true under the lock calls future.get() while still
  // holding the mutex, so the value must already be there.
  promise.set_value(plan);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.ready = true;
      it->second.bytes = plan->byte_size();
      lru_.push_front(key);
      it->second.lru = lru_.begin();
      counters_.bytes += it->second.bytes;
      ++counters_.entries;
      evict_to_budget();
    }
  }
  report(Outcome::Built);
  return plan;
}

bool PlanCache::contains(const PlanKey& key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  return it != entries_.end() && it->second.ready;
}

PlanCache::Counters PlanCache::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

void PlanCache::evict_to_budget() {
  while (counters_.bytes > cfg_.byte_budget && !lru_.empty()) {
    const PlanKey victim = lru_.back();
    const auto it = entries_.find(victim);
    lru_.pop_back();
    if (it == entries_.end()) continue;
    counters_.bytes -= it->second.bytes;
    --counters_.entries;
    ++counters_.evictions;
    entries_.erase(it);
  }
}

}  // namespace earthred::service
