#include "service/plan_store.hpp"

#include <algorithm>
#include <filesystem>

#include "inspector/distribution.hpp"
#include "support/binio.hpp"
#include "support/check.hpp"
#include "support/str.hpp"

namespace earthred::service {

namespace fs = std::filesystem;

PlanStore::PlanStore(std::string directory) : dir_(std::move(directory)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  ER_EXPECTS_MSG(!ec && fs::is_directory(dir_),
                 "plan store path is not a usable directory: " + dir_);
}

std::string PlanStore::path_for(const PlanKey& key) const {
  char hash[17];
  std::snprintf(hash, sizeof hash, "%016llx",
                static_cast<unsigned long long>(key.content_hash));
  std::string name = "p" + std::string(hash) + "-P" +
                     std::to_string(key.num_procs) + "-k" +
                     std::to_string(key.k) + "-" +
                     inspector::to_string(key.distribution);
  if (key.distribution == inspector::Distribution::BlockCyclic)
    name += "-bc" + std::to_string(key.block_cyclic_size);
  if (key.dedup_buffers) name += "-dedup";
  // Auto adds no suffix so files written before strategies existed keep
  // resolving to the same path.
  if (key.strategy != core::StrategyKind::Auto)
    name += "-" + std::string(core::to_string(key.strategy));
  // Likewise layout=none adds no suffix: pre-layout paths stay stable.
  if (key.layout != core::LayoutKind::None)
    name += "-" + std::string(core::to_string(key.layout));
  return dir_ + "/" + name + ".plan";
}

core::PlanLoadResult PlanStore::load(const PlanKey& key) const {
  const std::string path = path_for(key);
  core::PlanLoadResult out;

  // Header-first: the identity check must reject a mismatched file
  // *before* the payload is trusted enough to parse.
  const auto header =
      core::read_plan_header(path, &out.error_code, &out.detail);
  if (!header) return out;
  if (header->content_hash != key.content_hash ||
      header->num_procs != key.num_procs || header->k != key.k ||
      header->distribution !=
          static_cast<std::uint32_t>(key.distribution) ||
      header->block_cyclic_size != key.block_cyclic_size ||
      (header->dedup_buffers != 0) != key.dedup_buffers ||
      header->strategy != static_cast<std::uint32_t>(key.strategy) ||
      header->layout != static_cast<std::uint32_t>(key.layout)) {
    out.error_code = "E-STORE-KEY";
    out.detail = "stored plan identity does not match the requested key "
                 "(renamed or aliased file)";
    return out;
  }
  return core::load_plan_file(path);
}

bool PlanStore::save(const PlanKey& key, const core::ExecutionPlan& plan,
                     std::string* error) const {
  try {
    const std::vector<std::byte> bytes =
        core::serialize_plan(plan, key.content_hash);
    return support::write_file_atomic(path_for(key), bytes, error);
  } catch (const std::exception& e) {
    if (error) *error = e.what();
    return false;
  }
}

std::vector<PlanStore::ListEntry> PlanStore::list() const {
  std::vector<ListEntry> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".plan")
      continue;
    ListEntry e;
    e.filename = entry.path().filename().string();
    std::error_code size_ec;
    e.file_bytes = entry.file_size(size_ec);
    std::string detail;
    const auto header = core::read_plan_header(entry.path().string(),
                                               &e.error_code, &detail);
    if (header) e.header = *header;
    out.push_back(std::move(e));
  }
  std::sort(out.begin(), out.end(),
            [](const ListEntry& a, const ListEntry& b) {
              return a.filename < b.filename;
            });
  return out;
}

}  // namespace earthred::service
