#include "service/service_stats.hpp"

#include <ostream>
#include <string>

#include "support/str.hpp"
#include "support/table.hpp"

namespace earthred::service {

void ServiceStats::print(std::ostream& os, const std::string& title) const {
  Table t(title);
  t.set_header({"metric", "value"});
  t.add_row({"jobs submitted", fmt_group(static_cast<long long>(submitted))});
  t.add_row({"jobs completed", fmt_group(static_cast<long long>(completed))});
  t.add_row({"jobs failed", fmt_group(static_cast<long long>(failed))});
  t.add_row({"jobs rejected", fmt_group(static_cast<long long>(rejected))});
  t.add_row({"  rejected: illegal DSL",
             fmt_group(static_cast<long long>(rejected_dsl))});
  t.add_row({"  rejected: plan verifier",
             fmt_group(static_cast<long long>(rejected_plan))});
  t.add_row({"  rejected: deadline at drain",
             fmt_group(static_cast<long long>(rejected_deadline))});
  t.add_row({"  rejected: unsupported backend",
             fmt_group(static_cast<long long>(rejected_backend))});
  t.add_row({"  rejected: unsupported strategy",
             fmt_group(static_cast<long long>(rejected_strategy))});
  t.add_row({"served by backend (scalar/avx2/avx512)",
             fmt_group(static_cast<long long>(served_scalar)) + " / " +
                 fmt_group(static_cast<long long>(served_avx2)) + " / " +
                 fmt_group(static_cast<long long>(served_avx512))});
  t.add_row({"served by strategy (phased/privatized/atomic)",
             fmt_group(static_cast<long long>(served_phased)) + " / " +
                 fmt_group(static_cast<long long>(served_privatized)) +
                 " / " +
                 fmt_group(static_cast<long long>(served_atomic))});
  t.add_row({"queue depth", fmt_group(static_cast<long long>(queue_depth))});
  t.add_row({"in flight", fmt_group(static_cast<long long>(in_flight))});
  t.add_row({"job latency p50 (s)", fmt_f(p50_latency, 4)});
  t.add_row({"job latency p95 (s)", fmt_f(p95_latency, 4)});
  t.add_row({"job latency p99 (s)", fmt_f(p99_latency, 4)});
  t.add_rule();
  t.add_row({"cold setups (plan built)",
             fmt_group(static_cast<long long>(cold_setups)) + " @ mean " +
                 fmt_f(mean_cold_setup * 1e3, 3) + " ms"});
  t.add_row({"warm setups (cache hit)",
             fmt_group(static_cast<long long>(warm_setups)) + " @ mean " +
                 fmt_f(mean_warm_setup * 1e3, 3) + " ms"});
  t.add_row({"cache hit rate", fmt_f(cache.hit_rate(), 3)});
  t.add_row({"cache hits / coalesced / misses",
             fmt_group(static_cast<long long>(cache.hits)) + " / " +
                 fmt_group(static_cast<long long>(cache.coalesced)) + " / " +
                 fmt_group(static_cast<long long>(cache.misses))});
  t.add_row({"cache entries",
             fmt_group(static_cast<long long>(cache.entries)) + " (" +
                 fmt_group(static_cast<long long>(cache.bytes)) + " bytes)"});
  t.add_row({"cache evictions",
             fmt_group(static_cast<long long>(cache.evictions))});
  t.add_rule();
  t.add_row({"disk hits / misses / fallbacks",
             fmt_group(static_cast<long long>(cache.disk_hits)) + " / " +
                 fmt_group(static_cast<long long>(cache.disk_misses)) +
                 " / " +
                 fmt_group(static_cast<long long>(cache.disk_fallbacks))});
  t.add_row({"plans persisted",
             fmt_group(static_cast<long long>(cache.persisted)) + " (" +
                 fmt_group(static_cast<long long>(cache.persist_failures)) +
                 " failed)"});
  t.add_row({"plans patched",
             fmt_group(static_cast<long long>(cache.patched)) + " (" +
                 fmt_group(static_cast<long long>(cache.patch_fallbacks)) +
                 " fallbacks)"});
  t.print(os);
}

}  // namespace earthred::service
