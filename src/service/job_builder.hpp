// Job-line parsing and JobRequest construction, shared by every front-end
// (CLI batch/serve, the networked ServeLoop, tests, benches).
//
// A job line is `key=value` tokens separated by whitespace (the format
// documented at the top of tools/earthred_cli.cpp). Parsing is hardened
// against adversarial input — the line is untrusted once it can arrive
// over a socket — with explicit limits that reject with a coded
// diagnostic *before* any allocation proportional to the claimed sizes:
//
//   E-JOB-LINELEN   line longer than max_line_bytes
//   E-JOB-KEYCOUNT  more than max_keys tokens
//   E-JOB-KEY       unknown key (typo or junk — never silently ignored)
//   E-JOB-VALUE     malformed value (non-numeric count, bad enum, ...)
//   E-JOB-RANGE     value outside its documented bound (nodes, edges,
//                   procs, k, sweeps, bc, parallel-build, name length)
//   E-JOB-MUTATE    mutate= rewire count above max_mutate
//   E-JOB-FILEIO    mesh=/dsl= file reference where file IO is disabled
//                   (networked submissions must not read server files)
//   E-JOB-EMPTY     no job content (blank/comment line)
//
// A build that passes yields one JobRequest — or several for a DSL
// program that fissions into multiple loops (local mode only, since
// `dsl=` names a file). Kernels are cached per mesh key so repeated jobs
// on the same mesh share one kernel and one plan-cache fingerprint.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "service/job_scheduler.hpp"

namespace earthred::service {

struct JobLimits {
  std::size_t max_line_bytes = 4096;
  std::size_t max_keys = 32;
  std::size_t max_name_bytes = 256;
  std::uint64_t max_mutate = 100000;
  std::uint64_t max_nodes = 20000000;     ///< caps mesh synthesis memory
  std::uint64_t max_edges = 200000000;
  std::uint64_t max_procs = 4096;
  std::uint64_t max_k = 64;
  std::uint64_t max_sweeps = 100000;
  std::uint64_t max_block_cyclic = 1u << 20;
  std::uint64_t max_build_threads = 1024;
  /// False for networked submissions: `mesh=`/`dsl=` file references are
  /// refused (E-JOB-FILEIO) instead of reading server-side paths chosen
  /// by a remote peer.
  bool allow_file_io = true;
};

struct JobBuild {
  std::string code;    ///< empty = ok; else an E-JOB-* diagnostic
  std::string detail;
  std::vector<JobRequest> requests;
  bool ok() const { return code.empty(); }
};

class JobBuilder {
 public:
  explicit JobBuilder(JobLimits limits = {});

  /// Parses and materializes one job line. Never throws; every failure is
  /// a coded JobBuild. `lineno` labels diagnostics and default job names.
  JobBuild build(std::string_view line, std::size_t lineno = 0);

  const JobLimits& limits() const { return limits_; }

 private:
  struct KernelEntry {
    std::shared_ptr<const core::PhasedKernel> kernel;
    std::uint64_t fingerprint = 0;
  };

  JobLimits limits_;
  /// Kernels shared across lines naming the same mesh (same sharing the
  /// CLI always had — repeat jobs hit the plan cache with an O(1) key).
  std::map<std::string, KernelEntry> kernels_;
};

/// Content hash of a native run's output arrays (reduction + node reads,
/// in order): the wire-portable fingerprint a client uses to check that a
/// remote execution is bit-identical to a local one.
std::uint64_t result_digest(const core::NativeResult& r);

}  // namespace earthred::service
