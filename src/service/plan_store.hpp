// PlanStore: the on-disk tier behind the in-memory PlanCache.
//
// A directory of serialized ExecutionPlans (core/plan_io.hpp format), one
// file per PlanKey, named so the key is recoverable from a directory
// listing:
//
//   p<content_hash:016x>-P<procs>-k<k>-<distribution>[-bc<n>][-dedup].plan
//
// The store is deliberately dumb: no index, no locking, no eviction. File
// names are the index; saves go through an atomic temp-file + rename so a
// crashed writer can never leave a half-written plan where a reader finds
// it; concurrent savers of the same key race benignly (last rename wins,
// both files are valid); the PlanCache's single-flight already serializes
// loads per key within a process. Capacity management is the operator's
// `rm` — plans are cache entries, always rebuildable.
//
// Trust model: everything read from disk is untrusted until proven. A
// load re-checks magic/version/endian/verifier fingerprint, the payload
// checksum, structural parse consistency, the budget-mode plan verifier,
// and finally that the file's identity matches the *requested* key
// (E-STORE-KEY — a renamed or hash-colliding file must not serve the
// wrong mesh). Any failure comes back as a coded reason, and the cache
// falls back to a rebuild; a bad file is never an error the client sees.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan_io.hpp"
#include "service/plan_cache.hpp"

namespace earthred::service {

class PlanStore {
 public:
  /// Opens (creating if needed) the store directory. Throws
  /// precondition_error if the path exists but is not a directory or
  /// cannot be created.
  explicit PlanStore(std::string directory);

  const std::string& directory() const noexcept { return dir_; }

  /// File path a key persists to.
  std::string path_for(const PlanKey& key) const;

  /// Loads and fully validates the plan for `key`. On failure the result
  /// carries an E-STORE-* code (E-STORE-OPEN simply means "not stored").
  core::PlanLoadResult load(const PlanKey& key) const;

  /// Serializes and atomically persists `plan` under `key`. Best-effort:
  /// returns false with `error` set instead of throwing — persistence is
  /// an optimization, never a job failure.
  bool save(const PlanKey& key, const core::ExecutionPlan& plan,
            std::string* error = nullptr) const;

  /// One stored plan, as seen by `earthred plan ls`.
  struct ListEntry {
    std::string filename;
    std::uint64_t file_bytes = 0;
    /// Decoded header; valid only when `error_code` is empty.
    core::PlanFileHeader header;
    std::string error_code;  ///< non-empty for unreadable/foreign files
  };

  /// Scans the directory for *.plan files (sorted by name) and decodes
  /// each header. Files that fail the header checks are listed with
  /// their error code rather than skipped — a corrupt store should be
  /// visible, not invisible.
  std::vector<ListEntry> list() const;

 private:
  std::string dir_;
};

}  // namespace earthred::service
