// Minimal async-signal-safe SIGINT/SIGTERM plumbing for the serving CLI.
//
// The handler does only two things a signal handler may legally do: bump
// a `volatile sig_atomic_t` counter and write one byte to a self-pipe.
// Event loops poll the pipe fd (or just the counter) and implement the
// two-stage shutdown themselves:
//
//   first signal   -> graceful drain (stop accepting, finish in-flight)
//   second signal  -> forced abort (reject queued work, tear down now)
//
// Installation is process-global and idempotent; there is no uninstall
// (the CLI verbs that use it run to exit).
#pragma once

namespace earthred::service {

/// Installs the SIGINT/SIGTERM handler (idempotent). Returns a readable
/// non-blocking fd that becomes ready when a signal lands — suitable for
/// a poll set — or -1 if the pipe could not be created (the counter still
/// works).
int install_shutdown_signals();

/// Number of SIGINT/SIGTERM deliveries since installation.
int shutdown_signal_count();

/// Test hook: simulate a signal delivery (same counter + pipe write).
void raise_shutdown_signal();

}  // namespace earthred::service
