#include "service/signals.hpp"

#include <csignal>
#include <fcntl.h>
#include <unistd.h>

namespace earthred::service {

namespace {

volatile std::sig_atomic_t g_count = 0;
int g_pipe_rd = -1;
int g_pipe_wr = -1;

void on_signal(int) {
  g_count = g_count + 1;
  if (g_pipe_wr >= 0) {
    const char b = 's';
    // write(2) is async-signal-safe; a full pipe just drops the nudge
    // (the counter is the ground truth).
    (void)!::write(g_pipe_wr, &b, 1);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

int install_shutdown_signals() {
  static bool installed = false;
  if (!installed) {
    installed = true;
    int fds[2];
    if (::pipe(fds) == 0) {
      set_nonblocking(fds[0]);
      set_nonblocking(fds[1]);
      g_pipe_rd = fds[0];
      g_pipe_wr = fds[1];
    }
    struct sigaction sa = {};
    sa.sa_handler = on_signal;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // no SA_RESTART: blocking waits must wake
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
  }
  return g_pipe_rd;
}

int shutdown_signal_count() { return static_cast<int>(g_count); }

void raise_shutdown_signal() { on_signal(0); }

}  // namespace earthred::service
