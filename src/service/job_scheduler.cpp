#include "service/job_scheduler.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "compiler/check.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"
#include "support/str.hpp"

namespace earthred::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

JobScheduler::JobScheduler(Config cfg)
    : cfg_(cfg), cache_(cfg.cache) {
  ER_EXPECTS(cfg_.workers >= 1);
  ER_EXPECTS(cfg_.queue_capacity >= 1);
  workers_.reserve(cfg_.workers);
  for (std::uint32_t w = 0; w < cfg_.workers; ++w)
    workers_.emplace_back([this] { worker_loop(); });
}

JobScheduler::~JobScheduler() { shutdown(); }

JobHandle JobScheduler::submit(JobRequest req) {
  std::promise<JobOutcome> promise;
  JobHandle handle(promise.get_future().share());

  const auto reject = [&](const std::string& reason,
                          std::uint64_t* bucket = nullptr) {
    JobOutcome out;
    out.state = JobState::Rejected;
    out.name = req.name;
    out.error = reason;
    promise.set_value(std::move(out));
    const std::lock_guard<std::mutex> lock(mutex_);
    ++submitted_;
    ++rejected_;
    if (bucket) ++*bucket;
  };

  if (!req.dsl_source.empty()) {
    // Admission-time legality check (runs before the kernel check so an
    // illegal loop is diagnosed as such even when no kernel could be
    // bound from it): refused before it can occupy a worker, with the
    // checker's first diagnostic as the reason.
    const compiler::CheckReport report =
        compiler::check_source(req.dsl_source);
    if (report.has_errors()) {
      reject("DSL rejected: " + report.first_error(), &rejected_dsl_);
      return handle;
    }
  }
  if (!req.kernel) {
    reject("malformed request: null kernel");
    return handle;
  }
  // Backend admission: a concrete (or EARTHRED_FORCE_BACKEND-forced)
  // compute tier the host cannot run is a coded rejection here, never a
  // fault inside a worker; `auto` always resolves and never rejects.
  try {
    (void)core::resolve_backend(req.backend);
  } catch (const check_error& e) {
    reject(e.what(), &rejected_backend_);
    return handle;
  }
  // Strategy admission, same contract: a forced strategy the host cannot
  // execute — or a forced privatized strategy whose replica memory would
  // bust the budget — rejects here with "E-STRATEGY-UNSUPPORTED";
  // `strategy=auto` always resolves and never rejects.
  if (!req.simulated) {
    try {
      const core::KernelShape shape = req.kernel->shape();
      const core::StrategyKind forced =
          core::effective_strategy(req.plan.strategy);
      (void)core::resolve_strategy(
          req.plan.strategy,
          core::strategy_inputs(shape, req.plan.num_procs, req.plan.k));
      if (forced == core::StrategyKind::Privatized) {
        const std::uint64_t bytes =
            core::privatized_replica_bytes(shape, req.plan.num_procs);
        if (bytes > cfg_.max_replica_bytes)
          throw check_error(strformat(
              "E-STRATEGY-UNSUPPORTED: privatized replicas need %llu "
              "bytes, over the %llu-byte admission budget; use "
              "strategy=auto or fewer procs",
              static_cast<unsigned long long>(bytes),
              static_cast<unsigned long long>(cfg_.max_replica_bytes)));
      }
    } catch (const check_error& e) {
      reject(e.what(), &rejected_strategy_);
      return handle;
    }
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (stopping_) {
      lock.unlock();
      reject("scheduler is shut down");
      return handle;
    }
    if (draining_) {
      lock.unlock();
      reject("scheduler is draining (E-SVC-DRAINING)");
      return handle;
    }
    if (queue_.size() >= cfg_.queue_capacity) {
      lock.unlock();
      reject("queue full (capacity " +
             std::to_string(cfg_.queue_capacity) + ")");
      return handle;
    }
    ++submitted_;
    Queued job;
    job.req = std::move(req);
    job.promise = std::move(promise);
    job.submitted = Clock::now();
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return handle;
}

std::vector<JobHandle> JobScheduler::submit_batch(
    std::vector<JobRequest> reqs) {
  std::vector<JobHandle> handles;
  handles.reserve(reqs.size());
  for (JobRequest& r : reqs) handles.push_back(submit(std::move(r)));
  return handles;
}

void JobScheduler::shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
}

void JobScheduler::begin_drain() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    draining_ = true;
  }
  cv_.notify_all();
}

void JobScheduler::drain() {
  begin_drain();
  // Draining workers exit once the queue is empty; joining them is the
  // wait for every in-flight job.
  shutdown();
}

bool JobScheduler::draining() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

void JobScheduler::abort_queued(const std::string& reason) {
  std::deque<Queued> orphans;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    orphans.swap(queue_);
    rejected_ += orphans.size();
  }
  for (Queued& job : orphans) {
    JobOutcome out;
    out.state = JobState::Rejected;
    out.name = job.req.name;
    out.error = reason;
    out.queue_seconds = seconds_since(job.submitted);
    out.total_seconds = out.queue_seconds;
    job.promise.set_value(std::move(out));
  }
  cv_.notify_all();
}

void JobScheduler::worker_loop() {
  for (;;) {
    Queued job;
    bool expire = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      if (draining_) {
        // Deadline x drain interplay: a queued job whose deadline has
        // already elapsed is rejected with the deadline reason rather
        // than silently completed late.
        const double deadline = job.req.deadline_seconds > 0.0
                                    ? job.req.deadline_seconds
                                    : cfg_.default_deadline;
        if (seconds_since(job.submitted) > deadline) {
          expire = true;
          ++rejected_;
          ++rejected_deadline_;
        }
      }
      if (!expire) ++in_flight_;
    }
    if (expire) {
      JobOutcome out;
      out.state = JobState::Rejected;
      out.name = job.req.name;
      out.queue_seconds = seconds_since(job.submitted);
      out.total_seconds = out.queue_seconds;
      out.error = strformat(
          "deadline exceeded during drain (E-SVC-DEADLINE): queued %.3f s "
          "against a %.3f s deadline",
          out.queue_seconds,
          job.req.deadline_seconds > 0.0 ? job.req.deadline_seconds
                                         : cfg_.default_deadline);
      job.promise.set_value(std::move(out));
      continue;
    }

    JobOutcome out = execute(job);
    out.total_seconds = seconds_since(job.submitted);

    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (out.state == JobState::Done) {
        ++completed_;
        switch (out.backend) {
          case core::BackendKind::Avx512: ++served_avx512_; break;
          case core::BackendKind::Avx2: ++served_avx2_; break;
          default: ++served_scalar_; break;
        }
        switch (out.strategy) {
          case core::StrategyKind::Privatized: ++served_privatized_; break;
          case core::StrategyKind::Atomic: ++served_atomic_; break;
          default: ++served_phased_; break;
        }
      } else if (out.state == JobState::Rejected) {
        // Worker-resolved rejects (plan verification) land in the same
        // lifetime tally as admission rejects, plus their own bucket.
        ++rejected_;
        ++rejected_plan_;
      } else {
        ++failed_;
      }
      latencies_.push_back(out.total_seconds);
      if (!job.req.simulated) {
        if (out.cache_hit) {
          warm_setup_sum_ += out.setup_seconds;
          ++warm_setups_;
        } else {
          cold_setup_sum_ += out.setup_seconds;
          ++cold_setups_;
        }
      }
    }
    job.promise.set_value(std::move(out));
  }
}

JobOutcome JobScheduler::execute(Queued& job) {
  const JobRequest& req = job.req;
  JobOutcome out;
  out.name = req.name;
  out.simulated = req.simulated;
  out.queue_seconds = seconds_since(job.submitted);

  try {
    if (req.simulated) {
      core::RotationOptions ropt;
      ropt.num_procs = req.plan.num_procs;
      ropt.k = req.plan.k;
      ropt.distribution = req.plan.distribution;
      ropt.block_cyclic_size = req.plan.block_cyclic_size;
      ropt.inspector = req.plan.inspector;
      ropt.sweeps = req.sweeps;
      ropt.machine = req.machine;
      const auto t0 = Clock::now();
      out.simulated_run = core::run_rotation_engine(*req.kernel, ropt);
      out.exec_seconds = seconds_since(t0);
    } else {
      const auto t0 = Clock::now();
      PlanCache::Outcome cache_outcome = PlanCache::Outcome::Built;
      const PlanPtr plan =
          req.patch_base
              ? cache_.patch_or_build(*req.kernel, req.plan, *req.patch_base,
                                      req.changed_edges, req.fingerprint,
                                      &cache_outcome)
              : cache_.lookup_or_build(*req.kernel, req.plan,
                                       req.fingerprint, &cache_outcome);
      out.setup_seconds = seconds_since(t0);
      // "Warm" means no inspector ran for this job: a memory hit or a
      // coalesced wait. Disk loads and incremental patches are cheaper
      // than builds but still did per-job plan work, so they tally as
      // cold setups (their own cache counters break them out).
      out.cache_hit = cache_outcome == PlanCache::Outcome::Hit ||
                      cache_outcome == PlanCache::Outcome::Coalesced;
      out.plan_source = cache_outcome;
      out.plan_build_seconds = plan->build_seconds;

      if (req.plan.verify) {
        // Full verification — rotation invariants plus the kernel
        // cross-check — on every acquisition, warm hits included: the
        // cache key ignores `verify`, and a cached plan keyed by content
        // hash could in principle be served to a kernel it doesn't
        // describe. A defective plan is a *rejected* job, not a failed
        // one — the request was fine for some kernel, just not provable
        // for this one.
        const inspector::PlanVerifyReport vr =
            core::verify_execution_plan(*plan, req.kernel.get());
        if (!vr.ok()) {
          out.state = JobState::Rejected;
          out.error = "plan rejected (" + std::to_string(vr.violations) +
                      " violation(s)): " + vr.first_error();
          return out;
        }
      }

      core::SweepOptions sopt;
      sopt.sweeps = req.sweeps;
      sopt.stall_timeout = req.deadline_seconds > 0.0
                               ? req.deadline_seconds
                               : cfg_.default_deadline;
      sopt.lose_forward = req.lose_forward;
      sopt.batch = req.batch;
      sopt.affinity = req.affinity;
      sopt.backend = req.backend;
      const auto t1 = Clock::now();
      out.native = core::run_native_plan(*req.kernel, *plan, sopt);
      out.exec_seconds = seconds_since(t1);
      out.backend = out.native.backend;
      out.strategy = out.native.strategy;
    }
    out.state = JobState::Done;
  } catch (const verify_error& e) {
    // A cold build with plan.verify set runs the structural verifier
    // inside build_execution_plan; its throw means the plan itself is
    // unsound — same disposition as the explicit check above.
    out.state = JobState::Rejected;
    out.error = e.what();
  } catch (const std::exception& e) {
    out.state = JobState::Failed;
    out.error = e.what();
  }
  return out;
}

ServiceStats JobScheduler::stats() const {
  ServiceStats s;
  std::vector<double> latencies;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.rejected_dsl = rejected_dsl_;
    s.rejected_plan = rejected_plan_;
    s.rejected_deadline = rejected_deadline_;
    s.rejected_backend = rejected_backend_;
    s.rejected_strategy = rejected_strategy_;
    s.served_scalar = served_scalar_;
    s.served_avx2 = served_avx2_;
    s.served_avx512 = served_avx512_;
    s.served_phased = served_phased_;
    s.served_privatized = served_privatized_;
    s.served_atomic = served_atomic_;
    s.completed = completed_;
    s.failed = failed_;
    s.queue_depth = queue_.size();
    s.in_flight = in_flight_;
    s.cold_setups = cold_setups_;
    s.warm_setups = warm_setups_;
    s.mean_cold_setup =
        cold_setups_ ? cold_setup_sum_ / static_cast<double>(cold_setups_)
                     : 0.0;
    s.mean_warm_setup =
        warm_setups_ ? warm_setup_sum_ / static_cast<double>(warm_setups_)
                     : 0.0;
    latencies = latencies_;
  }
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    s.p50_latency = quantile_sorted(latencies, 0.50);
    s.p95_latency = quantile_sorted(latencies, 0.95);
    s.p99_latency = quantile_sorted(latencies, 0.99);
  }
  s.cache = cache_.counters();
  return s;
}

}  // namespace earthred::service
