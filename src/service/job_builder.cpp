#include "service/job_builder.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "compiler/check.hpp"
#include "compiler/compiler.hpp"
#include "inspector/distribution.hpp"
#include "kernels/euler.hpp"
#include "kernels/fig1.hpp"
#include "kernels/moldyn.hpp"
#include "mesh/generators.hpp"
#include "mesh/io.hpp"
#include "support/binio.hpp"
#include "support/check.hpp"
#include "support/options.hpp"
#include "support/prng.hpp"
#include "support/str.hpp"

namespace earthred::service {

namespace {

/// Every key a job line may carry; anything else is E-JOB-KEY.
const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys = {
      "kernel",  "mesh",    "preset",      "nodes",   "edges",
      "seed",    "procs",   "k",           "dist",    "bc",
      "dedup",   "sweeps",  "deadline",    "engine",  "name",
      "batch",   "no-batch","pin",         "parallel-build",
      "verify",  "mutate",  "mutate-seed", "dsl",     "backend",
      "strategy", "layout"};
  return keys;
}

std::unique_ptr<core::PhasedKernel> make_kernel(const std::string& kname,
                                                mesh::Mesh m) {
  if (kname == "euler")
    return std::make_unique<kernels::EulerKernel>(std::move(m));
  if (kname == "moldyn")
    return std::make_unique<kernels::MoldynKernel>(std::move(m));
  if (kname == "fig1")
    return std::make_unique<kernels::Fig1Kernel>(
        kernels::Fig1Kernel::with_integer_values(std::move(m)));
  throw check_error("unknown kernel '" + kname + "' (euler|moldyn|fig1)");
}

mesh::Mesh mesh_from_options(const Options& opt) {
  const std::string preset = opt.get("preset");
  if (preset == "euler-small") return mesh::euler_mesh_small();
  if (preset == "euler-large") return mesh::euler_mesh_large();
  if (preset == "moldyn-small") return mesh::moldyn_small();
  if (preset == "moldyn-large") return mesh::moldyn_large();
  if (!preset.empty()) throw check_error("unknown preset '" + preset + "'");
  if (opt.has("mesh")) return mesh::load_mesh(opt.get("mesh"));
  const auto nodes = static_cast<std::uint32_t>(opt.get_int("nodes", 1000));
  const auto edges = static_cast<std::uint64_t>(opt.get_int("edges", 5000));
  const auto seed = static_cast<std::uint64_t>(opt.get_int("seed", 42));
  return mesh::make_geometric_mesh({nodes, edges, seed});
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  ER_CHECK_MSG(is.good(), "cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// Synthesizes a DataEnv for a legality-checked DSL program: loop-extent
/// parameters take the `edges` value, every other parameter `nodes`; int
/// arrays are filled with uniform element indices below `nodes` (they are
/// indirections into node-sized arrays), real arrays with uniform values.
/// Deterministic in `seed`.
compiler::DataEnv synthesize_env(const compiler::Program& program,
                                 std::uint32_t nodes, std::uint64_t edges,
                                 std::uint64_t seed) {
  compiler::DataEnv env;
  std::set<std::string> extents;
  for (const compiler::Loop& l : program.loops)
    if (!l.hi_param.empty()) extents.insert(l.hi_param);
  for (const std::string& p : program.params)
    env.params[p] = extents.count(p) ? edges : nodes;
  Xoshiro256 rng(seed);
  for (const compiler::ArrayDecl& a : program.arrays) {
    const auto it = env.params.find(a.size_param);
    const std::uint64_t size = it == env.params.end() ? nodes : it->second;
    if (a.type == compiler::ElemType::Int) {
      std::vector<std::uint32_t>& v = env.int_arrays[a.name];
      v.reserve(size);
      for (std::uint64_t i = 0; i < size; ++i)
        v.push_back(static_cast<std::uint32_t>(rng.below(nodes)));
    } else {
      std::vector<double>& v = env.real_arrays[a.name];
      v.reserve(size);
      for (std::uint64_t i = 0; i < size; ++i)
        v.push_back(rng.uniform(0.1, 1.0));
    }
  }
  return env;
}

/// Fills the plan/sweep fields of a JobRequest from one job line's keys
/// (shared by kernel jobs and `dsl=` jobs).
void request_from_keys(const Options& jopt, JobRequest& req) {
  req.plan.num_procs = static_cast<std::uint32_t>(jopt.get_int("procs", 4));
  req.plan.k = static_cast<std::uint32_t>(jopt.get_int("k", 2));
  req.plan.distribution =
      inspector::parse_distribution(jopt.get("dist", "cyclic"));
  req.plan.block_cyclic_size =
      static_cast<std::uint32_t>(jopt.get_int("bc", 16));
  req.plan.inspector.dedup_buffers = jopt.get_bool("dedup", false);
  req.sweeps = static_cast<std::uint32_t>(jopt.get_int("sweeps", 1));
  req.deadline_seconds = jopt.get_double("deadline", 0.0);
  req.batch = jopt.has("no-batch") ? false : jopt.get_bool("batch", true);
  if (jopt.get_bool("pin", false)) {
    req.affinity.pin_threads = true;
    req.affinity.first_touch = true;
  }
  if (jopt.has("parallel-build"))
    req.plan.build_threads =
        static_cast<std::uint32_t>(jopt.get_int("parallel-build", 0));
  const std::string verify = jopt.get("verify");
  if (!verify.empty()) {
    ER_CHECK_MSG(verify == "on" || verify == "off",
                 "verify expects on|off, got '" + verify + "'");
    req.plan.verify = verify == "on";
  }
  const std::string engine = jopt.get("engine", "native");
  if (engine == "sim" || engine == "rotation") req.simulated = true;
  else ER_CHECK_MSG(engine == "native",
                    "unknown engine '" + engine + "'");
  // Run knob only: the backend never reaches PlanOptions, so plans,
  // cache entries, and shard routing are shared across backends.
  req.backend = core::parse_backend(jopt.get("backend", "auto"));
  // Plan knob: the strategy can change result bits, so it enters
  // PlanOptions (and with it the cache key, the persisted plan header,
  // and shard routing when forced).
  req.plan.strategy = core::parse_strategy(jopt.get("strategy", "auto"));
  // Plan knob like strategy: the layout pass forks the cache key, the
  // persisted plan path, and shard routing when non-default.
  req.plan.layout = core::parse_layout(jopt.get("layout", "none"));
}

}  // namespace

JobBuilder::JobBuilder(JobLimits limits) : limits_(limits) {}

JobBuild JobBuilder::build(std::string_view line, std::size_t lineno) {
  JobBuild b;
  const auto fail = [&](const char* code, std::string detail) {
    b.code = code;
    b.detail = lineno > 0
                   ? strformat("job line %zu: %s", lineno, detail.c_str())
                   : std::move(detail);
    b.requests.clear();
    return b;
  };

  // ---- structural limits, before anything is parsed or allocated ------
  if (line.size() > limits_.max_line_bytes)
    return fail("E-JOB-LINELEN",
                strformat("line is %zu bytes, limit %zu", line.size(),
                          limits_.max_line_bytes));
  const std::string_view stripped = trim(line);
  if (stripped.empty() || stripped.front() == '#')
    return fail("E-JOB-EMPTY", "no job content");

  std::vector<std::string> store{"job"};
  for (const std::string& tok : split(stripped, ' ')) {
    const std::string_view t = trim(tok);
    if (t.empty()) continue;
    if (store.size() > limits_.max_keys)
      return fail("E-JOB-KEYCOUNT",
                  strformat("more than %zu keys", limits_.max_keys));
    store.push_back("--" + std::string(t));
  }
  std::vector<const char*> argv;
  argv.reserve(store.size());
  for (const std::string& s : store) argv.push_back(s.c_str());
  const Options jopt(static_cast<int>(argv.size()), argv.data());

  for (const auto& [key, value] : jopt.keyed())
    if (!known_keys().count(key))
      return fail("E-JOB-KEY", "unknown key '" + key + "'");

  // ---- per-key value and range validation -----------------------------
  try {
    const auto bounded = [&](const char* key, std::uint64_t fallback,
                             std::uint64_t max) {
      const std::int64_t raw =
          jopt.get_int(key, static_cast<std::int64_t>(fallback));
      if (raw < 0 || static_cast<std::uint64_t>(raw) > max)
        throw check_error(strformat("%s=%lld outside [0, %llu]", key,
                                    static_cast<long long>(raw),
                                    static_cast<unsigned long long>(max)));
      return static_cast<std::uint64_t>(raw);
    };
    const std::uint64_t nodes = bounded("nodes", 1000, limits_.max_nodes);
    const std::uint64_t edges = bounded("edges", 5000, limits_.max_edges);
    bounded("procs", 4, limits_.max_procs);
    bounded("k", 2, limits_.max_k);
    bounded("sweeps", 1, limits_.max_sweeps);
    bounded("bc", 16, limits_.max_block_cyclic);
    if (jopt.has("parallel-build"))
      bounded("parallel-build", 0, limits_.max_build_threads);
    if (nodes == 0 || edges == 0)
      return fail("E-JOB-RANGE", "nodes and edges must be positive");
    if (jopt.get("name").size() > limits_.max_name_bytes)
      return fail("E-JOB-RANGE",
                  strformat("name longer than %zu bytes",
                            limits_.max_name_bytes));
    if (jopt.get_double("deadline", 0.0) < 0.0)
      return fail("E-JOB-RANGE", "deadline must be >= 0");

    const std::uint64_t mutate = bounded("mutate", 0, ~0ull);
    if (mutate > limits_.max_mutate)
      return fail(
          "E-JOB-MUTATE",
          strformat("mutate=%llu exceeds the %llu rewire limit",
                    static_cast<unsigned long long>(mutate),
                    static_cast<unsigned long long>(limits_.max_mutate)));

    if (!limits_.allow_file_io && (jopt.has("mesh") || jopt.has("dsl")))
      return fail("E-JOB-FILEIO",
                  "mesh=/dsl= file references are not accepted from "
                  "remote submissions");

    // ---- DSL jobs -----------------------------------------------------
    if (jopt.has("dsl")) {
      const std::string source = read_file(jopt.get("dsl"));
      const std::string base =
          jopt.get("name", "dsl#" + std::to_string(lineno));
      const compiler::CheckReport report = compiler::check_source(source);
      if (report.has_errors()) {
        // Still submitted (source only) so the scheduler's admission
        // check rejects and counts it with the checker's diagnostic.
        JobRequest req;
        request_from_keys(jopt, req);
        req.name = base;
        req.dsl_source = source;
        b.requests.push_back(std::move(req));
        return b;
      }
      const compiler::CompileResult compiled = compiler::compile(source);
      const compiler::DataEnv env = synthesize_env(
          compiled.program, static_cast<std::uint32_t>(nodes), edges,
          static_cast<std::uint64_t>(jopt.get_int("seed", 42)));
      for (std::size_t i = 0; i < compiled.analysis.fissioned.size(); ++i) {
        JobRequest req;
        request_from_keys(jopt, req);
        req.name = compiled.analysis.fissioned.size() > 1
                       ? base + "/loop" + std::to_string(i)
                       : base;
        req.dsl_source = source;
        req.kernel = std::shared_ptr<const core::PhasedKernel>(
            compiler::bind(compiled, i, env));
        b.requests.push_back(std::move(req));
      }
      return b;
    }

    // ---- kernel jobs --------------------------------------------------
    const std::string kname = jopt.get("kernel", "euler");
    const std::string key = kname + "|" + jopt.get("preset") + "|" +
                            jopt.get("mesh") + "|" +
                            jopt.get("nodes", "1000") + "|" +
                            jopt.get("edges", "5000") + "|" +
                            jopt.get("seed", "42");
    auto it = kernels_.find(key);
    if (it == kernels_.end()) {
      KernelEntry entry;
      entry.kernel = std::shared_ptr<const core::PhasedKernel>(
          make_kernel(kname, mesh_from_options(jopt)));
      entry.fingerprint = kernel_fingerprint(*entry.kernel);
      it = kernels_.emplace(key, std::move(entry)).first;
    }

    JobRequest req;
    req.name = jopt.get("name", kname + "#" + std::to_string(lineno));
    request_from_keys(jopt, req);
    if (mutate > 0) {
      // Adaptive job: rewire `mutate` interactions of the (regenerated)
      // base mesh and ask the service to patch the base plan instead of
      // rebuilding. The base fingerprint stays in the kernels map, so a
      // prior plain job on the same mesh line seeds the base plan.
      mesh::Mesh m = mesh_from_options(jopt);
      req.changed_edges = mesh::rewire_edges(
          m, mutate,
          static_cast<std::uint64_t>(jopt.get_int("mutate-seed", 1)));
      req.kernel = std::shared_ptr<const core::PhasedKernel>(
          make_kernel(kname, std::move(m)));
      req.fingerprint = kernel_fingerprint(*req.kernel);
      req.patch_base = it->second.fingerprint;
    } else {
      req.kernel = it->second.kernel;
      req.fingerprint = it->second.fingerprint;
    }
    b.requests.push_back(std::move(req));
    return b;
  } catch (const check_error& e) {
    return fail("E-JOB-VALUE", e.what());
  } catch (const std::exception& e) {
    return fail("E-JOB-VALUE", e.what());
  }
}

std::uint64_t result_digest(const core::NativeResult& r) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::vector<double>& a : r.reduction)
    h = support::fast_hash64(a.data(), a.size() * sizeof(double), h);
  for (const std::vector<double>& a : r.node_read)
    h = support::fast_hash64(a.data(), a.size() * sizeof(double), h);
  return h;
}

}  // namespace earthred::service
