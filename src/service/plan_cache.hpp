// PlanCache: memoization of ExecutionPlans for the reduction service.
//
// The paper's LightInspector output is cheap to build but *reusable*
// forever: it depends only on the indirection arrays, the processor
// count, k, the iteration distribution, and the buffer policy — never on
// sweep count or input values (Sec. 3). The cache exploits that
// compile-once/run-many shape: the first request for a (mesh, config)
// pair pays the distribution + inspector cost; every later sweep request
// for the same pair starts executing immediately from the shared
// immutable plan.
//
// Keying: a 64-bit FNV-1a content hash of the kernel's indirection arrays
// (IA(*,r) for every reference slot) and shape, combined with the exact
// PlanOptions. Two kernels with identical indirection structure share a
// plan even if their edge *values* differ — precisely the reuse the paper
// allows, since redirection never looks at values.
//
// Concurrency: lookup_or_build is thread-safe with per-key single-flight
// deduplication — when N workers request the same missing key at once,
// exactly one builds while the rest wait on a shared future, so a burst
// of identical jobs costs one inspector run. Eviction is LRU by
// approximate byte footprint; entries being waited on are never evicted
// mid-build, and eviction only drops the cache's reference — callers
// holding the shared_ptr keep their plan alive.
#pragma once

#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "core/native_engine.hpp"

namespace earthred::service {

/// Cache key: content hash of the indirection arrays + the plan options.
/// Ordered (for std::map) and fully compared — a hash collision between
/// different option sets cannot alias.
struct PlanKey {
  std::uint64_t content_hash = 0;
  std::uint32_t num_procs = 0;
  std::uint32_t k = 0;
  inspector::Distribution distribution = inspector::Distribution::Cyclic;
  std::uint32_t block_cyclic_size = 0;
  bool dedup_buffers = false;

  friend auto operator<=>(const PlanKey&, const PlanKey&) = default;
};

/// Builds the key for a kernel/options pair. `fingerprint` short-circuits
/// the content hash when the caller has already computed it (e.g. once
/// per loaded mesh) — passing it makes a warm lookup O(1) instead of
/// O(edges).
PlanKey make_plan_key(const core::PhasedKernel& kernel,
                      const core::PlanOptions& opt,
                      std::optional<std::uint64_t> fingerprint = {});

/// 64-bit FNV-1a over the kernel's shape and indirection arrays.
std::uint64_t kernel_fingerprint(const core::PhasedKernel& kernel);

using PlanPtr = std::shared_ptr<const core::ExecutionPlan>;

class PlanCache {
 public:
  struct Config {
    /// LRU byte budget for *ready* entries. 0 disables retention: every
    /// lookup builds (single-flight still coalesces concurrent twins),
    /// which is how benches measure the cold path with unchanged code.
    std::uint64_t byte_budget = 256ull << 20;
  };

  struct Counters {
    std::uint64_t hits = 0;        ///< served from a ready entry
    std::uint64_t coalesced = 0;   ///< joined an in-flight build
    std::uint64_t misses = 0;      ///< initiated a build
    std::uint64_t evictions = 0;   ///< ready entries dropped by LRU
    std::uint64_t build_failures = 0;
    std::uint64_t bytes = 0;       ///< current retained footprint
    std::uint64_t entries = 0;     ///< current retained entry count
    double hit_rate() const {
      const std::uint64_t total = hits + coalesced + misses;
      return total ? static_cast<double>(hits + coalesced) /
                         static_cast<double>(total)
                   : 0.0;
    }
  };

  PlanCache() : PlanCache(Config{}) {}
  explicit PlanCache(Config cfg) : cfg_(cfg) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// How a lookup_or_build call was satisfied.
  enum class Outcome {
    Hit,        ///< served from a ready entry
    Coalesced,  ///< waited on another thread's in-flight build
    Built       ///< this call ran the build
  };

  /// Returns the cached plan for (kernel, opt), building it at most once
  /// per key across all threads. Propagates the builder's exception to
  /// every waiter and forgets the key so a later request can retry.
  /// `outcome`, when non-null, reports how the call was satisfied.
  PlanPtr lookup_or_build(const core::PhasedKernel& kernel,
                          const core::PlanOptions& opt,
                          std::optional<std::uint64_t> fingerprint = {},
                          Outcome* outcome = nullptr);

  /// True if `key` is resident and ready (does not touch LRU order).
  bool contains(const PlanKey& key) const;

  Counters counters() const;

 private:
  struct Entry {
    std::shared_future<PlanPtr> future;
    bool ready = false;
    std::uint64_t bytes = 0;
    std::list<PlanKey>::iterator lru;  ///< valid only when ready
  };

  /// Drops least-recently-used ready entries until within budget.
  /// Requires mutex_ held.
  void evict_to_budget();

  Config cfg_;
  mutable std::mutex mutex_;
  std::map<PlanKey, Entry> entries_;
  std::list<PlanKey> lru_;  ///< front = most recent
  Counters counters_;
};

}  // namespace earthred::service
