// PlanCache: memoization of ExecutionPlans for the reduction service.
//
// The paper's LightInspector output is cheap to build but *reusable*
// forever: it depends only on the indirection arrays, the processor
// count, k, the iteration distribution, and the buffer policy — never on
// sweep count or input values (Sec. 3). The cache exploits that
// compile-once/run-many shape: the first request for a (mesh, config)
// pair pays the distribution + inspector cost; every later sweep request
// for the same pair starts executing immediately from the shared
// immutable plan.
//
// Keying: a 64-bit FNV-1a content hash of the kernel's indirection arrays
// (IA(*,r) for every reference slot) and shape, combined with the exact
// PlanOptions. Two kernels with identical indirection structure share a
// plan even if their edge *values* differ — precisely the reuse the paper
// allows, since redirection never looks at values.
//
// Concurrency: lookup_or_build is thread-safe with per-key single-flight
// deduplication — when N workers request the same missing key at once,
// exactly one builds while the rest wait on a shared future, so a burst
// of identical jobs costs one inspector run. Eviction is LRU by
// approximate byte footprint; entries being waited on are never evicted
// mid-build, and eviction only drops the cache's reference — callers
// holding the shared_ptr keep their plan alive.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>

#include "core/native_engine.hpp"

namespace earthred::service {

class PlanStore;

/// Cache key: content hash of the indirection arrays + the plan options.
/// Ordered (for std::map) and fully compared — a hash collision between
/// different option sets cannot alias.
struct PlanKey {
  std::uint64_t content_hash = 0;
  std::uint32_t num_procs = 0;
  std::uint32_t k = 0;
  inspector::Distribution distribution = inspector::Distribution::Cyclic;
  std::uint32_t block_cyclic_size = 0;
  bool dedup_buffers = false;
  /// Requested lowering strategy (the plan's schedule is the same either
  /// way, but plan.options.strategy drives run_native_plan's dispatch —
  /// a cached Auto plan must never satisfy a forced request or vice
  /// versa). Auto-resolution is deterministic per shape, so keying the
  /// *request* keeps one self-consistent entry per request kind.
  core::StrategyKind strategy = core::StrategyKind::Auto;
  /// Requested data-layout pass, after env resolution (make_plan_key
  /// stores core::effective_layout(opt.layout) so a force-env override
  /// can never alias a plan built under a different layout).
  core::LayoutKind layout = core::LayoutKind::None;

  friend auto operator<=>(const PlanKey&, const PlanKey&) = default;
};

/// Builds the key for a kernel/options pair. `fingerprint` short-circuits
/// the content hash when the caller has already computed it (e.g. once
/// per loaded mesh) — passing it makes a warm lookup O(1) instead of
/// O(edges).
PlanKey make_plan_key(const core::PhasedKernel& kernel,
                      const core::PlanOptions& opt,
                      std::optional<std::uint64_t> fingerprint = {});

/// 64-bit FNV-1a over the kernel's shape and indirection arrays.
std::uint64_t kernel_fingerprint(const core::PhasedKernel& kernel);

using PlanPtr = std::shared_ptr<const core::ExecutionPlan>;

class PlanCache {
 public:
  struct Config {
    /// LRU byte budget for *ready* entries. 0 disables retention: every
    /// lookup builds (single-flight still coalesces concurrent twins),
    /// which is how benches measure the cold path with unchanged code.
    std::uint64_t byte_budget = 256ull << 20;
    /// Optional on-disk tier. When set, a memory miss first tries a
    /// zero-copy load from the store (single-flighted like a build —
    /// concurrent requests for one key cost one disk load), and every
    /// freshly built or patched plan is persisted back best-effort. A
    /// store file that fails any validation is a counted fallback to a
    /// rebuild, never an error.
    std::shared_ptr<PlanStore> store;
  };

  struct Counters {
    std::uint64_t hits = 0;        ///< served from a ready entry
    std::uint64_t coalesced = 0;   ///< joined an in-flight build
    std::uint64_t misses = 0;      ///< initiated a build or disk load
    std::uint64_t evictions = 0;   ///< ready entries dropped by LRU
    std::uint64_t build_failures = 0;
    std::uint64_t bytes = 0;       ///< current retained footprint
    std::uint64_t entries = 0;     ///< current retained entry count
    // --- disk tier -------------------------------------------------------
    std::uint64_t disk_hits = 0;       ///< served by a store load
    std::uint64_t disk_misses = 0;     ///< key simply not stored
    std::uint64_t disk_fallbacks = 0;  ///< stored but rejected -> rebuilt
    std::uint64_t persisted = 0;       ///< plans written to the store
    std::uint64_t persist_failures = 0;
    // --- incremental re-planning ----------------------------------------
    std::uint64_t patched = 0;          ///< plans produced by a patch
    std::uint64_t patch_fallbacks = 0;  ///< patch failed -> full rebuild
    /// Patch requests whose base plan carried a layout pass: the patch
    /// must re-run the whole layout pipeline (permutation + reorder), so
    /// the cache routes them to a full build and counts it here.
    std::uint64_t layout_patch_fallbacks = 0;
    double hit_rate() const {
      const std::uint64_t total = hits + coalesced + misses;
      return total ? static_cast<double>(hits + coalesced) /
                         static_cast<double>(total)
                   : 0.0;
    }
  };

  PlanCache() : PlanCache(Config{}) {}
  explicit PlanCache(Config cfg) : cfg_(cfg) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// How a lookup_or_build / patch_or_build call was satisfied.
  enum class Outcome {
    Hit,         ///< served from a ready entry
    Coalesced,   ///< waited on another thread's in-flight build
    Built,       ///< this call ran the build
    DiskLoaded,  ///< this call loaded the plan from the store tier
    Patched      ///< this call patched a base plan incrementally
  };

  /// Returns the cached plan for (kernel, opt), building it at most once
  /// per key across all threads. With a store configured, a miss tries
  /// the disk tier before building. Propagates the builder's exception to
  /// every waiter and forgets the key so a later request can retry.
  /// `outcome`, when non-null, reports how the call was satisfied.
  PlanPtr lookup_or_build(const core::PhasedKernel& kernel,
                          const core::PlanOptions& opt,
                          std::optional<std::uint64_t> fingerprint = {},
                          Outcome* outcome = nullptr);

  /// The adaptive path: `kernel` is a mutation of the mesh whose plan is
  /// cached under `base_fingerprint`, with `changed_iterations` naming
  /// the global iterations whose references differ. If the base plan is
  /// resident (memory or store), the new plan is produced by
  /// core::patch_execution_plan and re-verified in budget mode — on any
  /// patch or verification failure the *base* entry is invalidated, the
  /// fallback is a full build, and the client never sees an error. The
  /// result is cached and persisted under its own key exactly like a
  /// built plan. `fingerprint` is the mutated kernel's content hash (so
  /// repeat requests hit normally).
  PlanPtr patch_or_build(const core::PhasedKernel& kernel,
                         const core::PlanOptions& opt,
                         std::uint64_t base_fingerprint,
                         std::span<const std::uint32_t> changed_iterations,
                         std::optional<std::uint64_t> fingerprint = {},
                         Outcome* outcome = nullptr);

  /// True if `key` is resident and ready (does not touch LRU order).
  bool contains(const PlanKey& key) const;

  Counters counters() const;

  /// Digest over the *ready* resident entries' keys (content hash +
  /// options), folded in canonical (sorted) key order so the value is
  /// independent of insertion history. `entries`, when non-null, receives
  /// the ready-entry count. This is the identity a serving process
  /// advertises in its Pong (wire v2) so `earthred fleet status` can show
  /// which warm plans live on which shard.
  std::uint64_t resident_key_digest(std::uint64_t* entries = nullptr) const;

  /// Code of the most recent store-load rejection (e.g. E-STORE-CHECKSUM)
  /// with its detail — the diagnostic surfaced when disk_fallbacks grows.
  std::string last_fallback_reason() const;

  const std::shared_ptr<PlanStore>& store() const noexcept {
    return cfg_.store;
  }

 private:
  struct Entry {
    std::shared_future<PlanPtr> future;
    bool ready = false;
    std::uint64_t bytes = 0;
    std::list<PlanKey>::iterator lru;  ///< valid only when ready
  };

  /// Drops least-recently-used ready entries until within budget.
  /// Requires mutex_ held.
  void evict_to_budget();

  /// The shared single-flight skeleton: hit/coalesce fast paths, then
  /// `produce` (run outside the lock, exactly once per key across all
  /// threads) makes the plan and reports how. Exceptions propagate to
  /// every waiter and the key is forgotten for retry.
  PlanPtr acquire(const PlanKey& key, Outcome* outcome,
                  const std::function<PlanPtr(Outcome&)>& produce);

  /// Builds (or disk-loads) + persists for `key`; the lookup_or_build
  /// produce step.
  PlanPtr produce_from_tiers(const PlanKey& key,
                             const core::PhasedKernel& kernel,
                             const core::PlanOptions& opt, Outcome& how);

  /// Store-tier load for `key`: null on miss (counted disk_miss) or on a
  /// rejected file (counted disk_fallback with the reason recorded).
  PlanPtr try_store_load(const PlanKey& key, Outcome& how);

  /// Best-effort store write, counting persisted / persist_failures.
  void persist(const PlanKey& key, const core::ExecutionPlan& plan);

  /// Ready plan for `key` from memory only (counts nothing, no LRU
  /// touch); null if absent or in flight.
  PlanPtr peek_ready(const PlanKey& key) const;

  Config cfg_;
  mutable std::mutex mutex_;
  std::map<PlanKey, Entry> entries_;
  std::list<PlanKey> lru_;  ///< front = most recent
  Counters counters_;
  std::string last_fallback_reason_;
};

}  // namespace earthred::service
