// JobScheduler: a bounded-queue worker pool executing reduction sweeps.
//
// This is the serving half of the reduction service: callers submit jobs
// (kernel + plan parameters + sweep count) and get a futures-style handle
// back immediately. A fixed pool of workers drains the queue; native jobs
// acquire their ExecutionPlan through the shared PlanCache (so repeated
// or concurrent jobs on the same mesh skip distribution + inspection
// entirely) and run on `run_native_plan`; simulated jobs run the
// discrete-event rotation engine on the EARTH machine model instead.
//
// Admission control is reject-with-reason: when the submission queue is
// at capacity (or the scheduler is shutting down) the returned handle
// resolves *immediately* with JobState::Rejected and a reason string —
// submission never blocks and no job is silently dropped; every handle
// eventually resolves to exactly one of Done / Failed / Rejected.
// Static verification extends the same contract to job *content*: a
// request carrying DSL source is checked for reduction legality at
// admission, and a native job whose PlanOptions::verify is set has its
// (possibly cached) plan re-proved against the rotation invariants and
// cross-checked against its kernel's indirection before any sweep runs —
// both reject with the first diagnostic as the reason and are tallied in
// ServiceStats (rejected_dsl / rejected_plan).
//
// Per-job deadlines reuse the stall-timeout watchdog of the native engine
// (PR 1): `deadline_seconds` bounds every protocol wait of the job, and a
// stalled job surfaces as Failed with the watchdog's diagnostic instead of
// wedging a worker forever.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/native_engine.hpp"
#include "core/reduction_engine.hpp"
#include "service/plan_cache.hpp"
#include "service/service_stats.hpp"

namespace earthred::service {

/// One unit of work: run `sweeps` time steps of `kernel` under the given
/// plan parameters.
struct JobRequest {
  std::shared_ptr<const core::PhasedKernel> kernel;
  /// Free-form label echoed in reports ("euler-small/P8k2", ...).
  std::string name;
  core::PlanOptions plan{};
  std::uint32_t sweeps = 1;
  /// Bound (seconds) on any single protocol wait of this job; 0 uses the
  /// scheduler's default_deadline.
  double deadline_seconds = 0.0;
  /// Run on the simulated EARTH machine (cycle cost model) instead of
  /// host threads. Simulated jobs bypass the PlanCache — the simulator
  /// charges inspector cycles as part of the experiment.
  bool simulated = false;
  /// Machine model for simulated jobs.
  earth::MachineConfig machine{};
  /// Precomputed kernel_fingerprint() — avoids rehashing the indirection
  /// arrays on every submission of an already-known mesh.
  std::optional<std::uint64_t> fingerprint;
  /// Adaptive re-planning: content hash of the *base* mesh this kernel is
  /// a mutation of. When set, a native job acquires its plan through
  /// PlanCache::patch_or_build — the base plan (memory or store) is
  /// patched incrementally for `changed_edges` instead of rebuilt; any
  /// patch failure falls back to a full build transparently.
  std::optional<std::uint64_t> patch_base;
  /// Global iteration (edge) ids whose references differ from the base
  /// mesh. Only consulted when `patch_base` is set.
  std::vector<std::uint32_t> changed_edges;
  /// Test hook forwarded to SweepOptions (exercises the deadline path).
  core::SweepOptions::LostForward lose_forward{};
  /// Execute phases through the batched compute_phase hot path (see
  /// core::SweepOptions::batch); off runs the per-edge fallback.
  bool batch = true;
  /// Worker pinning + first-touch placement for this job's sweep threads.
  core::AffinityOptions affinity{};
  /// Compute backend for the batched phase loops. Auto (the default)
  /// resolves to the widest tier the host supports and never rejects; a
  /// concrete request the host cannot run is refused at admission with
  /// "E-BACKEND-UNSUPPORTED" (ServiceStats::rejected_backend).
  core::BackendKind backend = core::BackendKind::Auto;
  /// DSL source this job claims to implement (the CLI's `dsl=` job key).
  /// When non-empty, submit() runs the reduction-legality checker on it
  /// and rejects the job at admission — first diagnostic as the reason,
  /// counted in ServiceStats::rejected_dsl — before it can occupy a
  /// worker. The kernel is still what executes; the source is the
  /// admission contract.
  std::string dsl_source;
};

enum class JobState {
  Pending,   ///< not yet resolved (only observable through stats)
  Rejected,  ///< refused — at admission (queue full, shutdown, illegal
             ///< DSL) or by the plan verifier; `error` holds the reason
  Done,      ///< completed; `native` or `simulated` holds the results
  Failed     ///< raised during setup/execution; `error` holds the reason
};

/// Final disposition of one job.
struct JobOutcome {
  JobState state = JobState::Pending;
  std::string name;
  std::string error;
  /// Plan came out of the cache without a build (Hit or Coalesced).
  bool cache_hit = false;
  /// How the plan was acquired (meaningful for native jobs only): memory
  /// hit, coalesced wait, disk load, incremental patch, or full build.
  PlanCache::Outcome plan_source = PlanCache::Outcome::Built;
  /// Ran on the simulated EARTH machine (simulated_run holds results).
  bool simulated = false;
  double queue_seconds = 0.0;  ///< admission to worker pickup
  double setup_seconds = 0.0;  ///< plan acquisition (0 for simulated)
  /// Host seconds the plan's build itself took (ExecutionPlan::
  /// build_seconds; repeated for cache hits since the plan is shared) —
  /// lets clients separate build cost from cache-lookup cost.
  double plan_build_seconds = 0.0;
  double exec_seconds = 0.0;   ///< sweep execution wall time
  double total_seconds = 0.0;  ///< admission to resolution
  /// Concrete compute backend that served the job (native jobs; mirrors
  /// NativeResult::backend, Scalar for simulated or per-edge runs).
  core::BackendKind backend = core::BackendKind::Scalar;
  /// Concrete lowering strategy that served the job (native jobs; mirrors
  /// NativeResult::strategy — never Auto. Simulated jobs run the rotation
  /// engine, i.e. Phased).
  core::StrategyKind strategy = core::StrategyKind::Phased;
  core::NativeResult native;       ///< filled for native jobs
  core::RunResult simulated_run;   ///< filled for simulated jobs
};

/// Futures-style handle: copyable, resolves exactly once.
class JobHandle {
 public:
  JobHandle() = default;

  /// Blocks until the job resolves; the outcome reference stays valid for
  /// the life of the handle. Deleted on rvalues: `submit(...).wait()`
  /// would return a reference into the dying temporary.
  const JobOutcome& wait() const& { return future_.get(); }
  const JobOutcome& wait() && = delete;

  /// Non-blocking: true once wait() would return immediately. Lets event
  /// loops (ServeLoop, the signal-aware CLI wait) poll handles without
  /// parking a thread per job.
  bool ready() const {
    return future_.valid() &&
           future_.wait_for(std::chrono::seconds(0)) ==
               std::future_status::ready;
  }

  bool valid() const { return future_.valid(); }

 private:
  friend class JobScheduler;
  explicit JobHandle(std::shared_future<JobOutcome> f)
      : future_(std::move(f)) {}
  std::shared_future<JobOutcome> future_;
};

class JobScheduler {
 public:
  struct Config {
    std::uint32_t workers = 4;
    /// Maximum queued (not yet running) jobs before submissions are
    /// rejected.
    std::size_t queue_capacity = 64;
    /// Default per-wait stall bound for jobs that don't set their own.
    double default_deadline = 30.0;
    PlanCache::Config cache{};
    /// Admission budget for the privatized strategy's replica memory
    /// (P full copies of every reduction array). A job *forcing*
    /// strategy=privatized past this budget is rejected with
    /// "E-STRATEGY-UNSUPPORTED"; auto-resolved jobs are steered away by
    /// the cost model instead of rejected. Appended after `cache` so
    /// positional aggregate initializers written before the field
    /// existed stay valid.
    std::uint64_t max_replica_bytes = 2ull << 30;
  };

  JobScheduler() : JobScheduler(Config{}) {}
  explicit JobScheduler(Config cfg);
  /// Drains queued jobs, waits for in-flight ones, joins the workers.
  ~JobScheduler();
  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Never blocks. The handle resolves to Rejected (with reason) when the
  /// queue is full, the request is malformed, or the scheduler is shut
  /// down; otherwise to Done/Failed once a worker finishes it.
  JobHandle submit(JobRequest req);

  /// Submits each request in order; per-request admission (a full queue
  /// rejects the tail of the batch, each with its own reasoned handle).
  std::vector<JobHandle> submit_batch(std::vector<JobRequest> reqs);

  /// Stops admission, drains the queue, and joins the workers. Idempotent;
  /// also run by the destructor.
  void shutdown();

  /// Graceful-drain admission cutoff: new submissions are rejected with
  /// "E-SVC-DRAINING", queued jobs still run — except those already past
  /// their deadline at pickup, which are rejected with the deadline
  /// reason ("E-SVC-DEADLINE", counted in ServiceStats::
  /// rejected_deadline) instead of completing silently late. Workers keep
  /// running so in-flight work finishes; idempotent.
  void begin_drain();

  /// begin_drain() plus: wait for the queue to empty and every in-flight
  /// job to resolve, then join the workers. After drain() every handle
  /// ever returned has resolved and the stats reconcile
  /// (submitted == completed + failed + rejected).
  void drain();

  /// Forced shutdown path: immediately resolves every *queued* (not yet
  /// running) job as Rejected with `reason`. In-flight jobs cannot be
  /// interrupted and still run to completion.
  void abort_queued(const std::string& reason);

  bool draining() const;

  ServiceStats stats() const;
  PlanCache& cache() { return cache_; }

 private:
  struct Queued {
    JobRequest req;
    std::promise<JobOutcome> promise;
    std::chrono::steady_clock::time_point submitted;
  };

  void worker_loop();
  JobOutcome execute(Queued& job);

  Config cfg_;
  PlanCache cache_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Queued> queue_;
  bool stopping_ = false;
  bool draining_ = false;
  std::vector<std::thread> workers_;

  // Stats (guarded by mutex_).
  std::uint64_t submitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t rejected_dsl_ = 0;   ///< DSL legality errors at admission
  std::uint64_t rejected_plan_ = 0;  ///< plan-verifier rejects
  std::uint64_t rejected_deadline_ = 0;  ///< expired at pickup during drain
  std::uint64_t rejected_backend_ = 0;   ///< unsupported backend requests
  std::uint64_t rejected_strategy_ = 0;  ///< unsupported strategy requests
  std::uint64_t served_scalar_ = 0;      ///< Done jobs by serving backend
  std::uint64_t served_avx2_ = 0;
  std::uint64_t served_avx512_ = 0;
  std::uint64_t served_phased_ = 0;      ///< Done jobs by serving strategy
  std::uint64_t served_privatized_ = 0;
  std::uint64_t served_atomic_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t in_flight_ = 0;
  std::vector<double> latencies_;  ///< total_seconds of resolved jobs
  double cold_setup_sum_ = 0.0;
  double warm_setup_sum_ = 0.0;
  std::uint64_t cold_setups_ = 0;
  std::uint64_t warm_setups_ = 0;
};

}  // namespace earthred::service
