// ServeLoop: the fault-tolerant TCP front-end of the reduction service.
//
// One thread multiplexes a listen socket and every client connection
// under a single poll(2) set, speaking the length-prefixed binary
// protocol of net/wire.hpp. The loop is written so that *no* input can
// make it crash, hang, or leak a connection:
//
//   * per-connection frame-size limit — an oversized length is rejected
//     from the 40-byte header alone, before any payload buffering;
//   * malformed frames (bad magic / version / type / checksum) get a
//     coded Reject frame and the connection is closed: once framing is
//     not trustworthy the only safe continuation is a fresh connection;
//   * read timeout on partially received frames, write timeout on
//     unflushable response buffers, idle timeout on silent connections;
//   * back-pressure *before* the JobScheduler saturates: at
//     `max_connections` new accepts are refused with E-NET-MAXCONN, at
//     `max_inflight` outstanding jobs new submissions are shed with
//     E-NET-BUSY — always a reasoned refusal, never a silent drop (the
//     scheduler's own queue-full / DSL / plan rejections additionally
//     flow back as Result frames with state=Rejected);
//   * graceful drain (request_drain, wired to SIGINT/SIGTERM by the
//     CLI): stop accepting, reject new submissions with E-NET-DRAINING,
//     let in-flight jobs finish or expire (JobScheduler::begin_drain
//     rejects past-deadline queued work with the deadline reason), flush
//     every pending response, then exit; `drain_grace_seconds` bounds
//     how long a slow peer can hold the shutdown hostage;
//   * forced abort (request_abort, second signal): queued jobs are
//     rejected wholesale and every connection is torn down now.
//
// Job lines arriving in Submit frames are materialized by a caller-
// provided handler (canonically service::JobBuilder with
// `allow_file_io = false`), so the wire path shares one hardened parser
// with the local batch path.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/wire.hpp"
#include "service/job_builder.hpp"
#include "service/job_scheduler.hpp"

namespace earthred::service {

struct ServeConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; port() reports the actual one.
  std::uint16_t port = 0;
  std::uint32_t max_connections = 64;
  /// Submitted-but-unresolved jobs across all connections; submissions
  /// beyond it are shed with E-NET-BUSY.
  std::uint32_t max_inflight = 128;
  std::uint32_t max_frame_bytes = 1u << 20;
  /// Timeout for completing a frame once its first byte arrived.
  int read_timeout_ms = 10000;
  /// Timeout for flushing queued response bytes to a non-reading peer.
  int write_timeout_ms = 10000;
  /// Connections with nothing outstanding are closed after this (0 =
  /// keep forever).
  int idle_timeout_ms = 120000;
  /// Poll granularity while jobs are outstanding (result reaping).
  int poll_interval_ms = 10;
  /// Upper bound on a graceful drain before remaining connections are
  /// torn down anyway.
  double drain_grace_seconds = 30.0;
};

/// Lifetime counters of one ServeLoop (monotonic, except open gauges).
struct ServeStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t submits = 0;
  std::uint64_t results_sent = 0;
  std::uint64_t rejects_sent = 0;
  std::uint64_t bad_frames = 0;      ///< malformed (coded Reject + close)
  std::uint64_t shed_maxconn = 0;
  std::uint64_t shed_busy = 0;
  std::uint64_t shed_draining = 0;
  std::uint64_t drain_frames = 0;    ///< Drain control frames honored
  std::uint64_t parse_rejects = 0;   ///< handler refused the job line
  std::uint64_t read_timeouts = 0;
  std::uint64_t write_timeouts = 0;
  std::uint64_t idle_closes = 0;
  /// Jobs whose connection died before the result could be delivered
  /// (the job still ran; the outcome was reaped and discarded).
  std::uint64_t orphaned_results = 0;
  /// Connections open right now.
  std::uint64_t open_connections() const {
    return accepted - closed;
  }
};

class ServeLoop {
 public:
  /// `handler` turns one submitted job line into requests; it runs on
  /// the loop thread (no synchronization needed, may keep state).
  using SubmitHandler = std::function<JobBuild(std::string_view line)>;

  ServeLoop(JobScheduler& sched, SubmitHandler handler, ServeConfig cfg);
  /// Stops (forced) if still running.
  ~ServeLoop();
  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  /// Binds the listen socket and starts the loop thread. False (with
  /// `error`) if the bind fails.
  bool start(std::string* error);
  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  /// Begins a graceful drain; the loop exits once quiesced (or after
  /// drain_grace_seconds). Safe from any thread; idempotent.
  void request_drain();
  /// Forced teardown: queued jobs rejected, connections closed now.
  void request_abort();
  /// Blocks until the loop thread has exited.
  void wait();
  /// True while the loop thread runs.
  bool running() const { return running_.load(); }
  bool draining() const { return drain_requested_.load(); }

  ServeStats stats() const;

 private:
  struct Pending {
    std::uint64_t seq = 0;
    JobHandle handle;
  };
  struct Conn {
    int fd = -1;
    std::vector<std::byte> rbuf;
    std::vector<std::byte> wbuf;
    std::size_t woff = 0;  ///< flushed prefix of wbuf
    std::chrono::steady_clock::time_point last_activity;
    std::chrono::steady_clock::time_point write_stalled_since;
    bool write_stalled = false;
    bool closing = false;  ///< flush wbuf, then close
    std::vector<Pending> pending;
  };

  void run();
  net::PongBody make_pong();
  void accept_ready();
  void read_ready(Conn& c);
  void parse_frames(Conn& c);
  void handle_frame(Conn& c, std::uint32_t type_raw, std::uint64_t seq,
                    std::span<const std::byte> payload);
  void handle_submit(Conn& c, std::uint64_t seq,
                     std::span<const std::byte> payload);
  void reap_results();
  void flush_writes();
  void enforce_timeouts();
  void queue_frame(Conn& c, net::FrameType type, std::uint64_t seq,
                   std::span<const std::byte> payload);
  void queue_reject(Conn& c, std::uint64_t seq, std::string code,
                    std::string detail);
  void close_conn(std::size_t index);
  std::size_t total_pending() const;

  JobScheduler& sched_;
  SubmitHandler handler_;
  ServeConfig cfg_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> abort_requested_{false};
  bool draining_active_ = false;  // loop-thread only
  std::chrono::steady_clock::time_point drain_started_;

  std::vector<Conn> conns_;              // loop-thread only
  std::deque<Pending> orphans_;          // loop-thread only

  mutable std::mutex stats_mutex_;
  ServeStats stats_;
};

}  // namespace earthred::service
