// Point-in-time snapshot of the reduction service's health, rendered
// through support/table for CLI and bench reporting.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "service/plan_cache.hpp"

namespace earthred::service {

struct ServiceStats {
  // Lifetime job counts.
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;   ///< refused: queue full / shutdown / static checks
  /// Breakdown of `rejected` by static analysis (the remainder is
  /// admission pressure: full queue, shutdown, malformed request).
  std::uint64_t rejected_dsl = 0;   ///< DSL failed the legality checker
  std::uint64_t rejected_plan = 0;  ///< plan failed the invariant verifier
  /// Queued jobs already past their deadline when a draining scheduler
  /// picked them up — rejected with the deadline reason, never silently
  /// completed late.
  std::uint64_t rejected_deadline = 0;
  /// Jobs requesting a compute backend this host cannot run
  /// ("E-BACKEND-UNSUPPORTED"); `backend=auto` never trips this.
  std::uint64_t rejected_backend = 0;
  /// Jobs forcing a lowering strategy this host cannot run, or a
  /// privatized strategy whose replica memory exceeds the admission
  /// budget ("E-STRATEGY-UNSUPPORTED"); `strategy=auto` never trips this.
  std::uint64_t rejected_strategy = 0;
  std::uint64_t completed = 0;  ///< finished successfully
  std::uint64_t failed = 0;     ///< raised (deadline stall, bad shapes, ...)

  // Completed native jobs by the compute backend that served them
  // (bit-identical tiers of the batched phase loops; simulated and
  // per-edge jobs count as scalar).
  std::uint64_t served_scalar = 0;
  std::uint64_t served_avx2 = 0;
  std::uint64_t served_avx512 = 0;

  // Completed jobs by the lowering strategy that served them (after auto
  // resolution; simulated jobs run the rotation engine and count as
  // phased).
  std::uint64_t served_phased = 0;
  std::uint64_t served_privatized = 0;
  std::uint64_t served_atomic = 0;

  // Instantaneous occupancy.
  std::uint64_t queue_depth = 0;
  std::uint64_t in_flight = 0;

  // End-to-end latency (submit to completion, seconds) over finished jobs.
  double p50_latency = 0.0;
  double p95_latency = 0.0;
  double p99_latency = 0.0;
  // Setup cost (plan acquisition, seconds) split by cache outcome.
  double mean_cold_setup = 0.0;
  double mean_warm_setup = 0.0;
  std::uint64_t cold_setups = 0;
  std::uint64_t warm_setups = 0;

  PlanCache::Counters cache;

  /// Jobs whose outcome is still pending (queued or running).
  std::uint64_t pending() const {
    return submitted - rejected - completed - failed;
  }

  /// Renders the snapshot as an aligned table titled `title`.
  void print(std::ostream& os, const std::string& title = "service stats") const;
};

}  // namespace earthred::service
