#include "service/serve_loop.hpp"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "net/stream.hpp"
#include "support/str.hpp"

namespace earthred::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

int ms_since(Clock::time_point t0) {
  return static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            t0)
          .count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

ServeLoop::ServeLoop(JobScheduler& sched, SubmitHandler handler,
                     ServeConfig cfg)
    : sched_(sched), handler_(std::move(handler)), cfg_(std::move(cfg)) {}

ServeLoop::~ServeLoop() {
  if (running_.load()) request_abort();
  wait();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

bool ServeLoop::start(std::string* error) {
  listen_fd_ = net::tcp_listen(cfg_.host, cfg_.port, 128, error);
  if (listen_fd_ < 0) return false;
  port_ = net::tcp_local_port(listen_fd_);
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    if (error) *error = strformat("pipe: %s", std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  set_nonblocking(wake_rd_);
  set_nonblocking(wake_wr_);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
  return true;
}

void ServeLoop::request_drain() {
  drain_requested_.store(true);
  if (wake_wr_ >= 0) {
    const char b = 'd';
    (void)!::write(wake_wr_, &b, 1);
  }
}

void ServeLoop::request_abort() {
  abort_requested_.store(true);
  drain_requested_.store(true);
  if (wake_wr_ >= 0) {
    const char b = 'a';
    (void)!::write(wake_wr_, &b, 1);
  }
}

void ServeLoop::wait() {
  if (thread_.joinable()) thread_.join();
}

ServeStats ServeLoop::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::size_t ServeLoop::total_pending() const {
  std::size_t n = orphans_.size();
  for (const Conn& c : conns_) n += c.pending.size();
  return n;
}

void ServeLoop::queue_frame(Conn& c, net::FrameType type, std::uint64_t seq,
                            std::span<const std::byte> payload) {
  const std::vector<std::byte> frame =
      net::encode_frame(type, seq, payload);
  c.wbuf.insert(c.wbuf.end(), frame.begin(), frame.end());
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.frames_out;
}

void ServeLoop::queue_reject(Conn& c, std::uint64_t seq, std::string code,
                             std::string detail) {
  net::RejectBody rb;
  rb.code = std::move(code);
  rb.detail = std::move(detail);
  queue_frame(c, net::FrameType::Reject, seq, net::encode_reject(rb));
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.rejects_sent;
}

void ServeLoop::close_conn(std::size_t index) {
  Conn& c = conns_[index];
  if (c.fd >= 0) ::close(c.fd);
  // Jobs whose connection died keep running; their handles move to the
  // orphan list so the outcomes are still reaped (and counted) instead
  // of leaking promises.
  for (Pending& p : c.pending) orphans_.push_back(std::move(p));
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.closed;
  }
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
}

void ServeLoop::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next round
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (conns_.size() >= cfg_.max_connections) {
      // Shed at the door with a reason: a best-effort Reject frame, then
      // close. The socket is writable right after accept, so this
      // usually reaches the peer.
      net::RejectBody rb;
      rb.code = "E-NET-MAXCONN";
      rb.detail = strformat("server at its %u-connection limit",
                            cfg_.max_connections);
      const std::vector<std::byte> frame = net::encode_frame(
          net::FrameType::Reject, 0, net::encode_reject(rb));
      (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.shed_maxconn;
      continue;
    }
    Conn c;
    c.fd = fd;
    c.last_activity = Clock::now();
    conns_.push_back(std::move(c));
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.accepted;
  }
}

void ServeLoop::read_ready(Conn& c) {
  char buf[16384];
  for (;;) {
    const ssize_t got = ::recv(c.fd, buf, sizeof(buf), 0);
    if (got > 0) {
      c.last_activity = Clock::now();
      const auto* p = reinterpret_cast<const std::byte*>(buf);
      c.rbuf.insert(c.rbuf.end(), p, p + got);
      // A peer that streams unbounded garbage is cut off once the buffer
      // exceeds the largest legal frame (header parsing below rejects
      // sooner for any frame that *claims* to be oversized).
      if (c.rbuf.size() >
          net::kHeaderBytes + static_cast<std::size_t>(
                                  cfg_.max_frame_bytes) * 2) {
        queue_reject(c, 0, "E-NET-OVERSIZE", "unframed input overflow");
        c.closing = true;
        return;
      }
      if (static_cast<std::size_t>(got) < sizeof(buf)) break;
      continue;
    }
    if (got == 0) {  // peer closed
      c.closing = true;
      c.rbuf.clear();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    c.closing = true;  // reset or hard error
    c.rbuf.clear();
    return;
  }
  parse_frames(c);
}

void ServeLoop::parse_frames(Conn& c) {
  while (!c.closing && c.rbuf.size() >= net::kHeaderBytes) {
    const net::HeaderParse h =
        net::parse_header(c.rbuf, cfg_.max_frame_bytes);
    if (!h.ok()) {
      // Framing can no longer be trusted; answer with the code and drop
      // the connection.
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.bad_frames;
      }
      queue_reject(c, h.seq, h.code, h.detail);
      c.closing = true;
      c.rbuf.clear();
      return;
    }
    const std::size_t total = net::kHeaderBytes + h.payload_len;
    if (c.rbuf.size() < total) return;  // incomplete: wait for more bytes
    const std::span<const std::byte> payload{c.rbuf.data() +
                                                 net::kHeaderBytes,
                                             h.payload_len};
    if (!net::payload_checksum_ok(h, payload)) {
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.bad_frames;
      }
      queue_reject(c, h.seq, "E-NET-CHECKSUM",
                   "payload checksum mismatch");
      c.closing = true;
      c.rbuf.clear();
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.frames_in;
    }
    handle_frame(c, static_cast<std::uint32_t>(h.type), h.seq, payload);
    c.rbuf.erase(c.rbuf.begin(),
                 c.rbuf.begin() + static_cast<std::ptrdiff_t>(total));
  }
}

net::PongBody ServeLoop::make_pong() {
  const ServiceStats s = sched_.stats();
  net::PongBody pong;
  pong.queue_depth = s.queue_depth;
  pong.in_flight = s.in_flight;
  pong.completed = s.completed;
  pong.rejected = s.rejected;
  pong.draining = draining_active_ ? 1 : 0;
  // Advertise the warm-plan identity (wire v2): entry count plus the
  // canonical digest over resident content keys, so a fleet operator can
  // see which shard holds which warm state.
  pong.cache_key_digest =
      sched_.cache().resident_key_digest(&pong.cache_entries);
  pong.cache_hits = s.cache.hits + s.cache.coalesced;
  return pong;
}

void ServeLoop::handle_frame(Conn& c, std::uint32_t type_raw,
                             std::uint64_t seq,
                             std::span<const std::byte> payload) {
  switch (static_cast<net::FrameType>(type_raw)) {
    case net::FrameType::Ping: {
      queue_frame(c, net::FrameType::Pong, seq,
                  net::encode_pong(make_pong()));
      return;
    }
    case net::FrameType::Submit:
      handle_submit(c, seq, payload);
      return;
    case net::FrameType::Drain: {
      // Remote graceful drain (fleet orchestration): acknowledge with a
      // snapshot that already shows draining, then begin the drain. The
      // Pong is queued before the transition, and the quiesce condition
      // requires every wbuf flushed, so the ack always reaches the peer.
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.drain_frames;
      }
      net::PongBody pong = make_pong();
      pong.draining = 1;
      queue_frame(c, net::FrameType::Pong, seq, net::encode_pong(pong));
      drain_requested_.store(true);
      return;
    }
    case net::FrameType::Pong:
    case net::FrameType::Result:
    case net::FrameType::Reject:
      // Clients must not send server-role frames; a peer that does is
      // confused enough to disconnect.
      queue_reject(c, seq, "E-NET-PROTO",
                   strformat("unexpected %s frame from client",
                             net::to_string(
                                 static_cast<net::FrameType>(type_raw))));
      c.closing = true;
      return;
  }
}

void ServeLoop::handle_submit(Conn& c, std::uint64_t seq,
                              std::span<const std::byte> payload) {
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submits;
  }
  if (draining_active_) {
    queue_reject(c, seq, "E-NET-DRAINING",
                 "server is draining and accepts no new work");
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.shed_draining;
    return;
  }
  if (total_pending() >= cfg_.max_inflight) {
    // Back-pressure *ahead* of the scheduler queue: shed here so the
    // response path (which scales with inflight count) stays bounded.
    queue_reject(c, seq, "E-NET-BUSY",
                 strformat("server at its %u-inflight-job limit",
                           cfg_.max_inflight));
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.shed_busy;
    return;
  }
  support::ByteReader r(payload);
  const std::string line = net::get_string(r, cfg_.max_frame_bytes);
  if (r.fail()) {
    queue_reject(c, seq, "E-NET-PROTO", "undecodable submit payload");
    return;
  }
  JobBuild b = handler_(line);
  if (!b.ok()) {
    queue_reject(c, seq, std::move(b.code), std::move(b.detail));
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.parse_rejects;
    return;
  }
  if (b.requests.size() != 1) {
    queue_reject(c, seq, "E-JOB-MULTI",
                 strformat("job line expands to %zu jobs; the wire "
                           "protocol carries exactly one per submit",
                           b.requests.size()));
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.parse_rejects;
    return;
  }
  Pending p;
  p.seq = seq;
  p.handle = sched_.submit(std::move(b.requests.front()));
  c.pending.push_back(std::move(p));
}

void ServeLoop::reap_results() {
  for (Conn& c : conns_) {
    for (std::size_t i = 0; i < c.pending.size();) {
      if (!c.pending[i].handle.ready()) {
        ++i;
        continue;
      }
      const JobOutcome& o = c.pending[i].handle.wait();
      net::ResultBody rb;
      rb.state = static_cast<std::uint32_t>(o.state);
      rb.cache_hit = o.cache_hit ? 1 : 0;
      rb.plan_source = static_cast<std::uint32_t>(o.plan_source);
      rb.queue_seconds = o.queue_seconds;
      rb.setup_seconds = o.setup_seconds;
      rb.exec_seconds = o.exec_seconds;
      rb.total_seconds = o.total_seconds;
      rb.name = o.name;
      rb.error = o.error;
      if (o.state == JobState::Done && !o.simulated)
        rb.digest = result_digest(o.native);
      queue_frame(c, net::FrameType::Result, c.pending[i].seq,
                  net::encode_result(rb));
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.results_sent;
      }
      c.pending.erase(c.pending.begin() +
                      static_cast<std::ptrdiff_t>(i));
    }
  }
  while (!orphans_.empty()) {
    if (!orphans_.front().handle.ready()) break;
    orphans_.front().handle.wait();
    orphans_.pop_front();
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.orphaned_results;
  }
}

void ServeLoop::flush_writes() {
  for (Conn& c : conns_) {
    while (c.woff < c.wbuf.size()) {
      const ssize_t put =
          ::send(c.fd, c.wbuf.data() + c.woff, c.wbuf.size() - c.woff,
                 MSG_NOSIGNAL);
      if (put > 0) {
        c.woff += static_cast<std::size_t>(put);
        c.write_stalled = false;
        continue;
      }
      if (put < 0 &&
          (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
        if (!c.write_stalled) {
          c.write_stalled = true;
          c.write_stalled_since = Clock::now();
        }
        break;
      }
      // Reset or hard error: nothing more can be delivered.
      c.closing = true;
      c.woff = 0;
      c.wbuf.clear();
      break;
    }
    if (c.woff >= c.wbuf.size()) {
      c.wbuf.clear();
      c.woff = 0;
      c.write_stalled = false;
    }
  }
}

void ServeLoop::enforce_timeouts() {
  for (Conn& c : conns_) {
    if (c.closing) continue;
    if (!c.rbuf.empty() && ms_since(c.last_activity) > cfg_.read_timeout_ms) {
      // A frame started but never finished arriving.
      queue_reject(c, 0, "E-NET-TIMEOUT",
                   strformat("frame incomplete after %d ms",
                             cfg_.read_timeout_ms));
      c.closing = true;
      c.rbuf.clear();
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.read_timeouts;
      continue;
    }
    if (c.write_stalled &&
        ms_since(c.write_stalled_since) > cfg_.write_timeout_ms) {
      // The peer stopped reading; responses cannot be delivered.
      c.closing = true;
      c.wbuf.clear();
      c.woff = 0;
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.write_timeouts;
      continue;
    }
    if (cfg_.idle_timeout_ms > 0 && c.rbuf.empty() && c.wbuf.empty() &&
        c.pending.empty() &&
        ms_since(c.last_activity) > cfg_.idle_timeout_ms) {
      c.closing = true;
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.idle_closes;
    }
  }
}

void ServeLoop::run() {
  std::vector<pollfd> fds;
  while (true) {
    // ---- drain / abort transitions ----------------------------------
    if (drain_requested_.load() && !draining_active_) {
      draining_active_ = true;
      drain_started_ = Clock::now();
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      sched_.begin_drain();
      // Existing connections stay open until the loop quiesces: clients
      // still collect in-flight results, and a new submission on a live
      // connection gets a reasoned E-NET-DRAINING refusal rather than a
      // surprise reset. The teardown below closes whatever remains.
    }
    if (abort_requested_.load()) {
      sched_.abort_queued("server shutdown forced (E-SVC-ABORT)");
      break;
    }
    if (draining_active_) {
      const bool quiesced = total_pending() == 0 &&
                            std::all_of(conns_.begin(), conns_.end(),
                                        [](const Conn& c) {
                                          return c.wbuf.empty();
                                        });
      if (quiesced ||
          seconds_since(drain_started_) > cfg_.drain_grace_seconds)
        break;
    }

    // ---- poll set ----------------------------------------------------
    fds.clear();
    fds.push_back({wake_rd_, POLLIN, 0});
    if (listen_fd_ >= 0) fds.push_back({listen_fd_, POLLIN, 0});
    const std::size_t conn_base = fds.size();
    for (Conn& c : conns_) {
      short events = POLLIN;
      if (c.woff < c.wbuf.size()) events |= POLLOUT;
      fds.push_back({c.fd, events, 0});
    }
    const bool busy = total_pending() > 0 || draining_active_;
    const int timeout = busy ? cfg_.poll_interval_ms : 100;
    const int rc = ::poll(fds.data(), fds.size(), timeout);
    if (rc < 0 && errno != EINTR) break;  // unrecoverable poll failure

    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {}
    }
    if (listen_fd_ >= 0 && conn_base >= 2 && (fds[1].revents & POLLIN))
      accept_ready();

    // Conns_ may shrink below; walk by index against the snapshot size.
    const std::size_t snapshot = conns_.size();
    for (std::size_t i = 0; i < snapshot && i < conns_.size(); ++i) {
      const short rev = fds[conn_base + i].revents;
      Conn& c = conns_[i];
      if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
        c.closing = true;
        c.rbuf.clear();
        continue;
      }
      if (rev & POLLIN) read_ready(c);
    }

    reap_results();
    flush_writes();
    enforce_timeouts();

    // Close connections that are done (flushed) or condemned.
    for (std::size_t i = conns_.size(); i-- > 0;) {
      const Conn& c = conns_[i];
      if (c.closing && c.woff >= c.wbuf.size()) close_conn(i);
    }
  }

  // ---- teardown ------------------------------------------------------
  flush_writes();  // best effort: push out final rejects/results
  for (std::size_t i = conns_.size(); i-- > 0;) close_conn(i);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Reap whatever is still outstanding so no promise outlives the loop
  // unobserved (in-flight jobs finish on scheduler workers).
  while (!orphans_.empty()) {
    orphans_.front().handle.wait();
    orphans_.pop_front();
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.orphaned_results;
  }
  running_.store(false);
}

}  // namespace earthred::service
