// Abstract syntax tree for the loop DSL.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace earthred::compiler {

enum class ElemType : std::uint8_t { Real, Int };

/// Index of an array access: either the loop variable itself (`A[i]`,
/// depth 0) or a single level of indirection (`A[IA[i]]`, depth 1). The
/// paper's analysis assumes no deeper indirection (Sec. 4).
struct IndexExpr {
  /// Empty for `A[i]`; otherwise the indirection array name of `A[IA[i]]`.
  std::string indirection;
  /// The variable appearing innermost (`i` in both `A[i]` and `A[IA[i]]`);
  /// sema requires it to be the loop variable.
  std::string inner_var;
  std::uint32_t line = 0, column = 0;

  bool is_direct() const noexcept { return indirection.empty(); }
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  Number,      // literal
  ScalarRef,   // loop-local scalar temp
  ArrayRef,    // array[index]
  Unary,       // -x
  Binary,      // a (+|-|*|/) b
};

enum class BinOp : std::uint8_t { Add, Sub, Mul, Div };

struct Expr {
  ExprKind kind = ExprKind::Number;
  std::uint32_t line = 0, column = 0;

  double number = 0.0;          // Number
  std::string name;             // ScalarRef / ArrayRef
  IndexExpr index;              // ArrayRef
  BinOp op = BinOp::Add;        // Binary
  ExprPtr lhs, rhs;             // Binary (lhs also Unary operand)
};

enum class StmtKind : std::uint8_t {
  ScalarAssign,  // t = expr;
  Accumulate,    // A[index] += expr;  or  -=
};

struct Stmt {
  StmtKind kind = StmtKind::ScalarAssign;
  std::uint32_t line = 0, column = 0;

  std::string target;   // scalar name or array name
  IndexExpr index;      // Accumulate only
  bool subtract = false;  // Accumulate: -= instead of +=
  ExprPtr value;
};

/// A `forall (var : lo .. hi)` loop. Bounds are parameter names or integer
/// literals; the analysis only needs the extent symbolically.
struct Loop {
  std::string var;
  std::string lo_param;  // empty if literal
  std::string hi_param;  // empty if literal
  double lo_literal = 0.0;
  double hi_literal = 0.0;
  std::vector<Stmt> body;
  std::uint32_t line = 0, column = 0;
};

struct ArrayDecl {
  std::string name;
  ElemType type = ElemType::Real;
  std::string size_param;
  std::uint32_t line = 0, column = 0;
};

struct Program {
  std::vector<std::string> params;
  std::vector<ArrayDecl> arrays;
  std::vector<Loop> loops;
};

/// Deep copy helpers (used by loop fission, which replicates statements).
ExprPtr clone_expr(const Expr& e);
Stmt clone_stmt(const Stmt& s);

}  // namespace earthred::compiler
