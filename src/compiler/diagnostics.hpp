// Diagnostics for the DSL compiler: errors carry source position, an
// optional stable code, and a severity, and are collected rather than
// thrown, so callers can report several problems per compile. compile()
// throws compile_error only after reporting, and only for errors —
// warnings and notes flow through in CompileResult::diagnostics.
//
// The underlying types live in support/diagnostics.hpp so the inspector's
// plan verifier shares the same diagnostic currency; docs/dsl.md lists
// every code the compiler layers emit.
#pragma once

#include <stdexcept>

#include "support/diagnostics.hpp"

namespace earthred::compiler {

using earthred::Diagnostic;
using earthred::DiagnosticSink;
using earthred::Severity;

/// Thrown by compile() when the source has errors; what() holds the
/// collected diagnostics.
class compile_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace earthred::compiler
