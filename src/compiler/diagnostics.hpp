// Diagnostics for the DSL compiler: errors carry source position and are
// collected rather than thrown, so callers can report several problems per
// compile. compile() throws compile_error only after reporting.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace earthred::compiler {

struct Diagnostic {
  std::uint32_t line = 0;
  std::uint32_t column = 0;
  std::string message;

  std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column) + ": " +
           message;
  }
};

class DiagnosticSink {
 public:
  void error(std::uint32_t line, std::uint32_t column, std::string msg) {
    diags_.push_back({line, column, std::move(msg)});
  }
  bool has_errors() const noexcept { return !diags_.empty(); }
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  std::string summary() const {
    std::string out;
    for (const Diagnostic& d : diags_) {
      out += d.to_string();
      out += '\n';
    }
    return out;
  }

 private:
  std::vector<Diagnostic> diags_;
};

/// Thrown by compile() when the source has errors; what() holds the
/// collected diagnostics.
class compile_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace earthred::compiler
