#include "compiler/bytecode.hpp"

#include "support/str.hpp"

namespace earthred::compiler {

std::string Bytecode::disassemble() const {
  std::string out;
  for (const Instr& in : code) {
    switch (in.op) {
      case Op::PushConst:
        out += strformat("push %g\n", in.c);
        break;
      case Op::LoadScalar:
        out += strformat("lds %u\n", in.a);
        break;
      case Op::LoadEdge:
        out += strformat("lde %u\n", in.a);
        break;
      case Op::LoadNode:
        out += strformat("ldn %u via %u\n", in.a, in.b);
        break;
      case Op::Add: out += "add\n"; break;
      case Op::Sub: out += "sub\n"; break;
      case Op::Mul: out += "mul\n"; break;
      case Op::Div: out += "div\n"; break;
      case Op::Neg: out += "neg\n"; break;
    }
  }
  return out;
}

}  // namespace earthred::compiler
