// Reduction-legality analysis (`earthred check`).
//
// The paper's execution strategy is only sound when the loop really is an
// irregular reduction: every array write is a commutative/associative
// accumulation (`+=` / `-=`), the indirection arrays are loop-invariant,
// and no scalar dependence is carried between iterations other than
// through the reduction accumulators themselves. compile() used to assume
// these properties; this pass *proves* them with a dataflow walk over the
// AST and emits structured diagnostics (severity + stable code) instead of
// silently miscompiling. It also verifies that the reference groups the
// Sec. 4 analysis produced form a legal fission partition — pairwise
// disjoint reduction arrays covering every accumulate statement — which is
// what lets the later transformations (fission, phasing, plan caching) be
// trusted, in the spirit of Polly's reduction-aware legality modelling.
//
// Codes emitted here (catalogued with examples in docs/dsl.md):
//   E-NONRED-WRITE   array written outside the +=-class accumulate form
//   E-INDIR-WRITE    indirection array written inside the loop
//   E-SCALAR-CARRY   scalar read before its (later) definition: a
//                    loop-carried scalar dependence
//   E-FISSION-GROUP  reference-group partition is not fission-legal
//   W-UNUSED-SCALAR  scalar assigned but never read
//   W-SCALAR-REDEF   scalar assigned more than once per iteration
//   W-EMPTY-LOOP     loop contains no reduction statements
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "compiler/analysis.hpp"
#include "compiler/ast.hpp"
#include "compiler/diagnostics.hpp"

namespace earthred::compiler {

/// Per-loop verdict of the legality walk.
struct LoopLegality {
  bool legal = true;             ///< no errors attributed to this loop
  std::size_t reduction_writes = 0;
  std::size_t scalar_assigns = 0;
};

/// Output of check_source(): the parsed program and analysis (possibly
/// partial when the source is ill-formed) plus every diagnostic produced
/// by any stage, in emission order.
struct CheckReport {
  Program program;
  AnalysisResult analysis;
  std::vector<Diagnostic> diagnostics;
  std::vector<LoopLegality> loops;  ///< parallel to program.loops

  bool has_errors() const {
    for (const Diagnostic& d : diagnostics)
      if (d.severity == Severity::Error) return true;
    return false;
  }
  std::size_t error_count() const {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics)
      if (d.severity == Severity::Error) ++n;
    return n;
  }
  std::size_t warning_count() const {
    std::size_t n = 0;
    for (const Diagnostic& d : diagnostics)
      if (d.severity == Severity::Warning) ++n;
    return n;
  }
  /// Full multi-line rendering (with source snippets) of all diagnostics.
  std::string render() const;
  /// First error's one-line header — the reject reason the service uses.
  std::string first_error() const;
};

/// The legality dataflow walk over an already-parsed program. `analysis`
/// is consulted for the reference-group fission check; errors and
/// warnings go to `sink`. Safe to run on ASTs built programmatically (it
/// does not assume parser invariants, which is why E-NONRED-WRITE and
/// E-INDIR-WRITE exist even though the grammar cannot spell them).
std::vector<LoopLegality> check_reduction_legality(
    const Program& program, const AnalysisResult& analysis,
    DiagnosticSink& sink);

/// Full no-throw pipeline: lex + parse + semantic analysis + the legality
/// walk, collecting every diagnostic instead of throwing. This is the
/// engine behind the `earthred check` CLI verb and the service's DSL
/// admission control.
CheckReport check_source(std::string_view source);

}  // namespace earthred::compiler
