#include "compiler/analysis.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace earthred::compiler {

namespace {

struct SymbolTable {
  std::set<std::string> params;
  std::map<std::string, const ArrayDecl*> arrays;
};

/// Collects the scalar names an expression reads.
void collect_scalar_reads(const Expr& e, std::set<std::string>& out) {
  if (e.kind == ExprKind::ScalarRef) out.insert(e.name);
  if (e.lhs) collect_scalar_reads(*e.lhs, out);
  if (e.rhs) collect_scalar_reads(*e.rhs, out);
}

/// Collects the (array, index) references an expression makes.
void collect_array_refs(const Expr& e,
                        std::vector<const Expr*>& out) {
  if (e.kind == ExprKind::ArrayRef) out.push_back(&e);
  if (e.lhs) collect_array_refs(*e.lhs, out);
  if (e.rhs) collect_array_refs(*e.rhs, out);
}

class Analyzer {
 public:
  Analyzer(const Program& program, DiagnosticSink& sink)
      : prog_(program), sink_(sink) {}

  AnalysisResult run() {
    build_symbols();
    AnalysisResult result;
    for (const Loop& loop : prog_.loops) {
      LoopAnalysis la = analyze_loop(loop);
      fission(loop, la, result.fissioned);
      result.loops.push_back(std::move(la));
    }
    return result;
  }

 private:
  void error(std::uint32_t line, std::uint32_t col, const char* code,
             std::string msg) {
    sink_.error(line, col, code, std::move(msg));
  }

  void build_symbols() {
    for (const std::string& p : prog_.params) {
      if (!syms_.params.insert(p).second)
        error(0, 0, "E-DUP-PARAM", "duplicate parameter '" + p + "'");
    }
    for (const ArrayDecl& a : prog_.arrays) {
      if (syms_.params.count(a.name))
        error(a.line, a.column, "E-DUP-DECL",
              "'" + a.name + "' already declared as a parameter");
      if (!syms_.arrays.emplace(a.name, &a).second)
        error(a.line, a.column, "E-DUP-DECL", "duplicate array '" + a.name + "'");
      if (!syms_.params.count(a.size_param))
        error(a.line, a.column, "E-UNDECL-PARAM",
              "array '" + a.name + "' sized by undeclared parameter '" +
                  a.size_param + "'");
    }
  }

  const ArrayDecl* lookup_array(const std::string& name, std::uint32_t line,
                                std::uint32_t col) {
    const auto it = syms_.arrays.find(name);
    if (it == syms_.arrays.end()) {
      error(line, col, "E-UNDECL-ARRAY", "undeclared array '" + name + "'");
      return nullptr;
    }
    return it->second;
  }

  /// Validates one index expression; returns the indirection array decl
  /// (nullptr for direct access). `loop_extent` is the loop's symbolic
  /// extent for section bookkeeping.
  const ArrayDecl* check_index(const Loop& loop, const IndexExpr& idx) {
    if (idx.inner_var != loop.var) {
      error(idx.line, idx.column, "E-NONLOOP-INDEX",
            "index variable '" + idx.inner_var +
                "' is not the loop variable '" + loop.var + "'");
    }
    if (idx.is_direct()) return nullptr;
    const ArrayDecl* ia = lookup_array(idx.indirection, idx.line, idx.column);
    if (ia && ia->type != ElemType::Int)
      error(idx.line, idx.column, "E-INDIR-TYPE",
            "indirection array '" + ia->name + "' must be 'int'");
    return ia;
  }

  LoopAnalysis analyze_loop(const Loop& loop) {
    LoopAnalysis la;
    const std::string extent =
        loop.hi_param.empty() ? std::to_string(static_cast<long long>(
                                    loop.hi_literal))
                              : loop.hi_param;

    // Loop-variable sanity.
    if (syms_.params.count(loop.var) || syms_.arrays.count(loop.var))
      error(loop.line, loop.column, "E-SHADOW",
            "loop variable '" + loop.var + "' shadows a declaration");

    // Reduction targets (arrays written via +=/-=) in this loop.
    std::set<std::string> reduction_targets;
    for (const Stmt& s : loop.body)
      if (s.kind == StmtKind::Accumulate) reduction_targets.insert(s.target);

    std::set<std::string> defined_scalars;
    std::set<std::string> seen_reduction_sections;   // array|via
    std::set<std::string> seen_indirection_sections; // array

    for (const Stmt& s : loop.body) {
      // RHS checks (both statement kinds).
      std::set<std::string> reads;
      if (s.value) collect_scalar_reads(*s.value, reads);
      for (const std::string& r : reads) {
        if (!defined_scalars.count(r))
          error(s.line, s.column, "E-UNDEF-SCALAR",
                "scalar '" + r + "' used before definition");
      }
      std::vector<const Expr*> refs;
      if (s.value) collect_array_refs(*s.value, refs);
      for (const Expr* ref : refs) {
        const ArrayDecl* arr = lookup_array(ref->name, ref->line,
                                            ref->column);
        const ArrayDecl* ia = check_index(loop, ref->index);
        if (!arr) continue;
        if (arr->type == ElemType::Int)
          error(ref->line, ref->column, "E-INT-READ",
                "int array '" + arr->name +
                    "' may only be used as an indirection index");
        if (reduction_targets.count(ref->name)) {
          // Reading a reduction array in the loop that updates it is a
          // loop-carried dependency beyond reduction semantics.
          error(ref->line, ref->column, "E-RED-READ",
                "reduction array '" + ref->name +
                    "' is read in the same loop (loop-carried dependence; "
                    "not an irregular reduction)");
        }
        if (ref->index.is_direct()) {
          // Iteration-aligned read: extent must match the loop extent.
          if (!loop.hi_param.empty() && arr->size_param != loop.hi_param)
            error(ref->line, ref->column, "E-EXTENT",
                  "iteration-aligned array '" + arr->name + "' has extent '" +
                      arr->size_param + "' but the loop iterates over '" +
                      loop.hi_param + "'");
        } else if (ia) {
          if (!loop.hi_param.empty() && ia->size_param != loop.hi_param)
            error(ref->index.line, ref->index.column, "E-EXTENT",
                  "indirection array '" + ia->name + "' has extent '" +
                      ia->size_param + "' but the loop iterates over '" +
                      loop.hi_param + "'");
        }
      }

      if (s.kind == StmtKind::ScalarAssign) {
        if (syms_.arrays.count(s.target) || syms_.params.count(s.target))
          error(s.line, s.column, "E-SHADOW",
                "scalar '" + s.target + "' shadows a declaration");
        defined_scalars.insert(s.target);
        continue;
      }

      // Accumulate statement.
      const ArrayDecl* target = lookup_array(s.target, s.line, s.column);
      const ArrayDecl* ia = check_index(loop, s.index);
      if (target && target->type != ElemType::Real)
        error(s.line, s.column, "E-RED-TYPE",
              "reduction array '" + s.target + "' must be 'real'");
      if (s.index.is_direct()) {
        error(s.line, s.column, "E-DIRECT-UPDATE",
              "accumulation into '" + s.target +
                  "' is not through an indirection array; direct "
                  "iteration-aligned updates are outside the irregular-"
                  "reduction model (see the mvm engine for that case)");
        continue;
      }
      if (ia && !loop.hi_param.empty() && ia->size_param != loop.hi_param)
        error(s.index.line, s.index.column, "E-EXTENT",
              "indirection array '" + ia->name + "' has extent '" +
                  ia->size_param + "' but the loop iterates over '" +
                  loop.hi_param + "'");
      if (target && ia) {
        if (seen_reduction_sections
                .insert(s.target + "|" + ia->name)
                .second) {
          la.reduction_sections.push_back(
              SectionInfo{s.target, target->size_param});
        }
        if (seen_indirection_sections.insert(ia->name).second)
          la.indirection_sections.push_back(
              SectionInfo{ia->name, ia->size_param});
      }
    }
    (void)extent;

    // Reference groups (Definition 1): key = the set of indirection
    // sections through which a reduction array is accessed in this loop.
    std::map<std::string, std::set<std::string>> ind_sets;  // array -> IAs
    for (const Stmt& s : loop.body)
      if (s.kind == StmtKind::Accumulate && !s.index.is_direct())
        ind_sets[s.target].insert(s.index.indirection);

    std::map<std::vector<std::string>, ReferenceGroup> by_key;
    for (const auto& [array, ias] : ind_sets) {
      std::vector<std::string> key(ias.begin(), ias.end());
      ReferenceGroup& g = by_key[key];
      g.indirection_arrays = key;
      g.reduction_arrays.push_back(array);
    }
    for (std::size_t si = 0; si < loop.body.size(); ++si) {
      const Stmt& s = loop.body[si];
      if (s.kind != StmtKind::Accumulate || s.index.is_direct()) continue;
      const auto& ias = ind_sets[s.target];
      std::vector<std::string> key(ias.begin(), ias.end());
      by_key[key].statement_indices.push_back(si);
    }
    for (auto& [key, group] : by_key) {
      std::sort(group.reduction_arrays.begin(),
                group.reduction_arrays.end());
      la.groups.push_back(std::move(group));
    }
    return la;
  }

  /// Splits `loop` into one FissionedLoop per reference group, replicating
  /// the scalar-assignment chains each group's statements depend on.
  void fission(const Loop& loop, const LoopAnalysis& la,
               std::vector<FissionedLoop>& out) {
    if (la.groups.empty()) return;

    // scalar -> statement index defining it (last definition wins; the
    // DSL forbids redefinition only implicitly, fine for analysis).
    std::map<std::string, std::size_t> def_of;
    for (std::size_t si = 0; si < loop.body.size(); ++si)
      if (loop.body[si].kind == StmtKind::ScalarAssign)
        def_of[loop.body[si].target] = si;

    for (const ReferenceGroup& g : la.groups) {
      // Transitive closure of scalar dependencies.
      std::set<std::size_t> needed(g.statement_indices.begin(),
                                   g.statement_indices.end());
      std::vector<std::size_t> work(g.statement_indices.begin(),
                                    g.statement_indices.end());
      while (!work.empty()) {
        const std::size_t si = work.back();
        work.pop_back();
        std::set<std::string> reads;
        if (loop.body[si].value)
          collect_scalar_reads(*loop.body[si].value, reads);
        for (const std::string& r : reads) {
          const auto it = def_of.find(r);
          if (it != def_of.end() && needed.insert(it->second).second)
            work.push_back(it->second);
        }
      }

      FissionedLoop f;
      f.loop.var = loop.var;
      f.loop.lo_param = loop.lo_param;
      f.loop.hi_param = loop.hi_param;
      f.loop.lo_literal = loop.lo_literal;
      f.loop.hi_literal = loop.hi_literal;
      f.loop.line = loop.line;
      f.loop.column = loop.column;
      f.group = g;
      std::set<std::string> gathers, edges;
      for (std::size_t si = 0; si < loop.body.size(); ++si) {
        if (!needed.count(si)) continue;
        f.loop.body.push_back(clone_stmt(loop.body[si]));
        std::vector<const Expr*> refs;
        if (loop.body[si].value)
          collect_array_refs(*loop.body[si].value, refs);
        for (const Expr* ref : refs) {
          if (ref->index.is_direct()) {
            edges.insert(ref->name);
          } else {
            gathers.insert(ref->name);
          }
        }
      }
      f.gather_arrays.assign(gathers.begin(), gathers.end());
      f.edge_arrays.assign(edges.begin(), edges.end());
      out.push_back(std::move(f));
    }
  }

  const Program& prog_;
  DiagnosticSink& sink_;
  SymbolTable syms_;
};

}  // namespace

AnalysisResult analyze(const Program& program, DiagnosticSink& sink) {
  Analyzer a(program, sink);
  return a.run();
}

}  // namespace earthred::compiler
