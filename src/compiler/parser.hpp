// Recursive-descent parser for the loop DSL (grammar in token.hpp's
// header comment). Syntax errors are reported to the sink; the parser
// recovers at statement boundaries so several errors surface per run.
#pragma once

#include <string_view>

#include "compiler/ast.hpp"
#include "compiler/diagnostics.hpp"

namespace earthred::compiler {

/// Parses `source` into a Program. On errors, the returned Program may be
/// partial; check sink.has_errors().
Program parse(std::string_view source, DiagnosticSink& sink);

}  // namespace earthred::compiler
