// Reduction-aware lowering-strategy analysis (`earthred check --explain`).
//
// Runs after check_reduction_legality and, per legal loop:
//
//   (a) classifies every reduction chain — the (array, indirections)
//       pairs the Sec. 4 reference-group analysis produced — by operator
//       class (the DSL's `+=`/`-=` are both the additive class:
//       associative and commutative up to FP rounding), accumulator
//       element type, and estimated target fan-in (updates per element,
//       from the reference groups plus mesh connectivity stats when a
//       mesh is bound);
//   (b) scores the three lowering strategies through the same explainable
//       cost model the runtime uses (core/strategy.hpp), so static
//       advice and run_native_plan's auto dispatch agree; and
//   (c) emits a LoweringPlan plus diagnostics explaining every choice.
//
// Codes emitted here (catalogued in docs/dsl.md):
//   E-STRATEGY-EXTENT-MIX  reduction arrays reached through one
//                          indirection set declare different extents —
//                          no strategy can partition two element spaces
//                          with one ownership map
//   W-STRATEGY-DUP-SCATTER the same (array, indirection) pair is
//                          scattered to by several statements in one
//                          iteration; fusing them would halve the
//                          scatter traffic every strategy pays for
//   W-STRATEGY-ATOMIC-FP   a *forced* atomic strategy applies to
//                          real-typed accumulators: thread interleaving
//                          reorders the sums, so results are
//                          tolerance-reproducible only
//   I-STRATEGY-CHAIN       (explain) one note per classified chain
//   I-STRATEGY-COST        (explain) one note per scored strategy
//   I-STRATEGY-CHOICE      (explain) the chosen strategy + rationale
//   I-STRATEGY-LAYOUT      (explain) estimated reduction-array cache-line
//                          reuse the --layout pass would unlock per loop
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/analysis.hpp"
#include "compiler/ast.hpp"
#include "compiler/check.hpp"
#include "compiler/diagnostics.hpp"
#include "core/strategy.hpp"

namespace earthred::compiler {

/// Connectivity statistics of a bound mesh. When absent (plain
/// `earthred check` on a DSL file has no data), fan-in estimates fall
/// back to the service's default shape (1000 nodes / 5000 edges) so the
/// symbolic scores stay comparable with runtime defaults.
struct MeshStats {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  double mean_degree = 0.0;  ///< mean edges incident per node
  double degree_cv = 0.0;    ///< coefficient of variation of degree
  bool bound() const { return num_nodes > 0 && num_edges > 0; }
};

/// Computes MeshStats (mean/CV of the node-degree distribution) from a
/// degree histogram, e.g. mesh::node_degrees().
MeshStats mesh_stats_from_degrees(const std::vector<std::uint32_t>& degrees,
                                  std::uint64_t num_edges);

/// What the pass knows about the execution environment.
struct StrategyContext {
  std::uint32_t num_procs = 4;
  std::uint32_t k = 2;
  /// Forced strategy (--strategy= / strategy= job key); Auto scores and
  /// picks, a concrete value is honored and explained (and warned about
  /// when it has correctness caveats, e.g. atomic on FP chains).
  core::StrategyKind forced = core::StrategyKind::Auto;
  /// Emit I-STRATEGY-* notes for every classification, score and choice.
  /// Off by default so clean sources stay diagnostic-free (the golden
  /// corpus contract); W/E codes are emitted regardless.
  bool explain = false;
  MeshStats mesh;
};

/// One classified reduction chain: a reduction array and the indirection
/// set it is scattered through.
struct ChainInfo {
  std::string array;
  std::vector<std::string> indirections;
  ElemType elem = ElemType::Real;
  /// Accumulate statements targeting the array per iteration.
  std::size_t updates_per_iteration = 0;
  bool has_subtract = false;
  /// Estimated updates per target element per sweep.
  double fanin = 0.0;
  std::uint32_t line = 0;
  std::uint32_t column = 0;
};

/// Per-loop decision.
struct LoopStrategy {
  std::uint32_t line = 0;  ///< source line of the loop header
  bool legal = false;      ///< illegal loops are not scored
  std::vector<ChainInfo> chains;
  /// Phased, Privatized, Atomic — in that fixed order (core scorer).
  std::vector<core::StrategyCost> scores;
  core::StrategyKind chosen = core::StrategyKind::Phased;
  std::string rationale;
  /// Estimated scattered updates served per reduction-array cache-line
  /// fetch once the layout pass localizes the targets (mean fan-in x
  /// accumulator elements per line). The layout=none baseline on a
  /// DRAM-resident array is ~1 update per fetch; 0 when not scored.
  double est_line_reuse = 0.0;
};

/// The pass result: one LoopStrategy per program loop (parallel to
/// Program::loops, like CheckReport::loops).
struct LoweringPlan {
  std::vector<LoopStrategy> loops;

  /// Human-readable multi-line rendering (what --explain prints).
  std::string render() const;
};

/// The analysis pass. `legality` is check_reduction_legality's verdict
/// (loops it marked illegal are classified but not scored). Emits the
/// W/E codes above always and the I-STRATEGY-* notes when ctx.explain.
LoweringPlan select_strategies(const Program& program,
                               const AnalysisResult& analysis,
                               const std::vector<LoopLegality>& legality,
                               const StrategyContext& ctx,
                               DiagnosticSink& sink);

/// CheckReport plus the lowering plan — what `earthred check --explain`
/// and its --json form render.
struct StrategyReport {
  CheckReport check;
  LoweringPlan lowering;
};

/// check_source + select_strategies in one call, sharing one sink so
/// diagnostics interleave in emission order.
StrategyReport check_source_with_strategies(std::string_view source,
                                            const StrategyContext& ctx);

}  // namespace earthred::compiler
