// Hand-written lexer for the loop DSL. Supports '//' line comments and
// '/* */' block comments; reports malformed input through the sink.
#pragma once

#include <string_view>
#include <vector>

#include "compiler/diagnostics.hpp"
#include "compiler/token.hpp"

namespace earthred::compiler {

/// Tokenizes `source`; always ends with an EndOfFile token. Lexical errors
/// are reported to `sink` and the offending character skipped.
std::vector<Token> lex(std::string_view source, DiagnosticSink& sink);

}  // namespace earthred::compiler
