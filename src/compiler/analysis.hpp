// Semantic checking and the paper's compiler analysis (Sec. 4):
//
//   1. extract *reduction array sections* (regular sections updated
//      through indirection with associative/commutative += / -=) and
//      *indirection array sections* (sections used to perform those
//      accesses), in the paper's triplet notation;
//   2. verify the loop really is an irregular reduction: single level of
//      indirection, no loop-carried dependencies except on reduction
//      arrays (in particular, a reduction array must not be read in the
//      same loop);
//   3. partition the reduction sections into *reference groups*
//      (Definition 1: same set of indirection sections);
//   4. apply *loop fission* so each resulting loop updates a single
//      reference group, replicating the scalar computations each fragment
//      needs (the paper notes temporaries may be introduced; since DSL
//      scalars are iteration-local, recomputation is always legal);
//   5. attach the runtime-preprocessing call: each fissioned loop carries
//      the indirection set that parameterizes its LightInspector.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/ast.hpp"
#include "compiler/diagnostics.hpp"

namespace earthred::compiler {

/// An array section in the paper's triplet notation, e.g.
/// "X(1, num_edges, 1) via IA(1, num_edges, 1, 1)".
struct SectionInfo {
  std::string array;
  std::string extent_param;  ///< symbolic extent of the section
  std::string triplet() const {
    return array + "(0:" + extent_param + ":1)";
  }
};

/// One reference group (Definition 1) of a loop: the reduction arrays it
/// updates and the indirection sections they are all accessed through.
struct ReferenceGroup {
  std::vector<std::string> reduction_arrays;   // sorted, unique
  std::vector<std::string> indirection_arrays; // sorted, unique (the key)
  /// Indices into the original loop body of the Accumulate statements
  /// belonging to this group.
  std::vector<std::size_t> statement_indices;
};

/// Analysis result for one source loop.
struct LoopAnalysis {
  std::vector<SectionInfo> reduction_sections;
  std::vector<SectionInfo> indirection_sections;
  std::vector<ReferenceGroup> groups;
  bool needs_fission() const noexcept { return groups.size() > 1; }
};

/// A loop produced by fission: single reference group, ready for code
/// generation. `body` contains the replicated scalar assignments followed
/// by the group's accumulate statements.
struct FissionedLoop {
  Loop loop;                    ///< the rewritten loop body
  ReferenceGroup group;         ///< its single reference group
  std::vector<std::string> gather_arrays;  ///< RHS node arrays (replicated)
  std::vector<std::string> edge_arrays;    ///< RHS iteration-aligned arrays
};

/// Full per-program analysis output.
struct AnalysisResult {
  std::vector<LoopAnalysis> loops;           ///< one per source loop
  std::vector<FissionedLoop> fissioned;      ///< all loops after fission
};

/// Runs semantic checks and the Sec. 4 analysis. Errors go to `sink`;
/// on error the result may be partial.
AnalysisResult analyze(const Program& program, DiagnosticSink& sink);

}  // namespace earthred::compiler
