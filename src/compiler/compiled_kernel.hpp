// Code generation target: a fissioned DSL loop bound to data, runnable on
// every engine through the core::PhasedKernel interface.
//
// Binding model: the host supplies a DataEnv naming parameter values and
// array contents; CompiledKernel validates shapes against the
// declarations, then serves the engine callbacks by interpreting the
// statement bytecodes. Indirection data (the IA arrays) lives here too —
// the engines query it through ref() exactly as they do for hand-written
// kernels, and the LightInspector call the compiler inserted is realized
// by the engine invoking the inspector with this kernel's references.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "compiler/analysis.hpp"
#include "compiler/bytecode.hpp"
#include "core/kernel.hpp"

namespace earthred::compiler {

/// Named data bound to a compiled program.
struct DataEnv {
  std::map<std::string, std::uint64_t> params;
  std::map<std::string, std::vector<double>> real_arrays;
  std::map<std::string, std::vector<std::uint32_t>> int_arrays;
};

/// One accumulate statement after code generation.
struct CompiledStatement {
  std::uint32_t reduction_id = 0;  ///< index into reduction arrays
  std::uint32_t ref_slot = 0;      ///< index into LHS indirection set
  bool subtract = false;
  Bytecode rhs;
};

/// One scalar assignment after code generation.
struct CompiledScalarAssign {
  std::uint32_t slot = 0;
  Bytecode rhs;
};

class CompiledKernel final : public core::PhasedKernel {
 public:
  /// Compiles `loop` (a fission product) against the program's
  /// declarations and binds `env`. Throws compile_error on codegen
  /// problems and check_error on binding mismatches.
  CompiledKernel(const Program& program, const FissionedLoop& loop,
                 DataEnv env);

  // --- PhasedKernel ---------------------------------------------------
  core::KernelShape shape() const override;
  std::uint32_t ref(std::uint32_t r, std::uint64_t edge) const override;
  void init_node_arrays(
      std::vector<std::vector<double>>& arrays) const override;
  void compute_edge(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint64_t edge_global, std::uint64_t edge_slot,
                    std::span<const std::uint32_t> redirected,
                    core::ProcArrays& arrays) const override;
  void update_nodes(earth::FiberContext& ctx, const core::CostTags& tags,
                    std::uint32_t begin, std::uint32_t end,
                    std::uint32_t base,
                    core::ProcArrays& arrays) const override;

  // --- introspection ----------------------------------------------------
  const std::vector<std::string>& reduction_names() const {
    return reduction_names_;
  }
  const std::vector<std::string>& indirection_names() const {
    return lhs_indirections_;
  }
  const std::vector<std::string>& node_read_names() const {
    return gather_names_;
  }

  /// Runs the loop directly (sequential interpretation, no machine) and
  /// returns the reduction arrays — ground truth for tests.
  std::map<std::string, std::vector<double>> interpret_reference() const;

 private:
  double eval(earth::FiberContext* ctx, const core::CostTags* tags,
              const Bytecode& bc, std::uint64_t edge,
              std::uint64_t cost_slot,
              std::vector<double>& stack, std::vector<double>& scalars,
              const std::vector<std::vector<double>>* node_read) const;
  Bytecode compile_expr(const Expr& e) const;

  std::uint32_t num_nodes_ = 0;
  std::uint64_t num_edges_ = 0;

  std::vector<std::string> lhs_indirections_;  ///< ref slots
  std::vector<std::string> all_indirections_;  ///< ref slots + gather-only
  std::vector<std::string> reduction_names_;
  std::vector<std::string> gather_names_;      ///< node_read arrays
  std::vector<std::string> edge_names_;

  std::map<std::string, std::uint32_t> scalar_slot_;
  std::map<std::string, std::uint32_t> edge_id_;
  std::map<std::string, std::uint32_t> gather_id_;
  std::map<std::string, std::uint32_t> indirection_id_;
  std::map<std::string, std::uint32_t> reduction_id_;

  std::vector<CompiledScalarAssign> scalar_assigns_;
  std::vector<CompiledStatement> statements_;

  /// Bound data (indirections and iteration-aligned inputs are owned
  /// here; node arrays are copied into engine storage at init).
  std::vector<std::vector<std::uint32_t>> indirection_data_;
  std::vector<std::vector<double>> edge_data_;
  std::vector<std::vector<double>> gather_init_;
};

}  // namespace earthred::compiler
