// Classic scalar optimizations over the loop AST.
//
// The EARTH-C compiler performed conventional optimizations (loop
// invariant code motion, common subexpression elimination, ...) before
// thread generation [22]. This module provides the subset that pays off
// for reduction loops — constant folding, algebraic identity
// simplification, per-iteration constant propagation, and dead-scalar
// elimination — applied before the Sec. 4 analysis so fissioned loops
// replicate less work.
#pragma once

#include <cstddef>

#include "compiler/ast.hpp"

namespace earthred::compiler {

struct OptimizeStats {
  std::size_t folded = 0;        ///< constant/identity rewrites
  std::size_t propagated = 0;    ///< constant scalar uses replaced
  std::size_t dead_removed = 0;  ///< unused scalar assignments dropped

  std::size_t total() const noexcept {
    return folded + propagated + dead_removed;
  }
};

/// Folds constant subexpressions and algebraic identities in place:
/// c1 (op) c2, -c, x*1, 1*x, x/1, x+0, 0+x, x-0. (0*x is NOT folded: it
/// would change semantics for non-finite x.) Returns rewrite count.
std::size_t fold_constants(Expr& e);

/// Runs folding, constant propagation (scalars assigned a literal are
/// substituted into later uses within the same body), and dead-scalar
/// elimination to a fixed point over every loop of the program.
OptimizeStats optimize(Program& program);

}  // namespace earthred::compiler
