#include "compiler/parser.hpp"

#include <utility>

#include "compiler/lexer.hpp"

namespace earthred::compiler {

ExprPtr clone_expr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->line = e.line;
  out->column = e.column;
  out->number = e.number;
  out->name = e.name;
  out->index = e.index;
  out->op = e.op;
  if (e.lhs) out->lhs = clone_expr(*e.lhs);
  if (e.rhs) out->rhs = clone_expr(*e.rhs);
  return out;
}

Stmt clone_stmt(const Stmt& s) {
  Stmt out;
  out.kind = s.kind;
  out.line = s.line;
  out.column = s.column;
  out.target = s.target;
  out.index = s.index;
  out.subtract = s.subtract;
  if (s.value) out.value = clone_expr(*s.value);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticSink& sink)
      : tokens_(std::move(tokens)), sink_(sink) {}

  Program run() {
    Program prog;
    while (!at(TokenKind::EndOfFile)) {
      if (at(TokenKind::KwParam)) {
        parse_param(prog);
      } else if (at(TokenKind::KwArray)) {
        parse_array(prog);
      } else if (at(TokenKind::KwForall)) {
        parse_loop(prog);
      } else {
        error("expected 'param', 'array', or 'forall'");
        advance();
      }
    }
    return prog;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  bool at(TokenKind k) const { return cur().kind == k; }
  void advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  void error(const std::string& msg) {
    sink_.error(cur().line, cur().column, "E-PARSE",
                msg + " (found " + token_kind_name(cur().kind) + ")");
  }
  bool expect(TokenKind k) {
    if (at(k)) {
      advance();
      return true;
    }
    error(std::string("expected ") + token_kind_name(k));
    return false;
  }
  /// Skips to just past the next `sync` token (error recovery).
  void recover_past(TokenKind sync) {
    while (!at(TokenKind::EndOfFile) && !at(sync)) advance();
    if (at(sync)) advance();
  }

  void parse_param(Program& prog) {
    advance();  // 'param'
    do {
      if (!at(TokenKind::Identifier)) {
        error("expected parameter name");
        recover_past(TokenKind::Semicolon);
        return;
      }
      prog.params.push_back(cur().text);
      advance();
    } while (at(TokenKind::Comma) && (advance(), true));
    expect(TokenKind::Semicolon);
  }

  void parse_array(Program& prog) {
    ArrayDecl decl;
    decl.line = cur().line;
    decl.column = cur().column;
    advance();  // 'array'
    if (at(TokenKind::KwReal)) {
      decl.type = ElemType::Real;
      advance();
    } else if (at(TokenKind::KwInt)) {
      decl.type = ElemType::Int;
      advance();
    } else {
      error("expected 'real' or 'int'");
      recover_past(TokenKind::Semicolon);
      return;
    }
    if (!at(TokenKind::Identifier)) {
      error("expected array name");
      recover_past(TokenKind::Semicolon);
      return;
    }
    decl.name = cur().text;
    advance();
    if (!expect(TokenKind::LBracket)) {
      recover_past(TokenKind::Semicolon);
      return;
    }
    if (!at(TokenKind::Identifier)) {
      error("expected size parameter name");
      recover_past(TokenKind::Semicolon);
      return;
    }
    decl.size_param = cur().text;
    advance();
    expect(TokenKind::RBracket);
    expect(TokenKind::Semicolon);
    prog.arrays.push_back(std::move(decl));
  }

  void parse_loop(Program& prog) {
    Loop loop;
    loop.line = cur().line;
    loop.column = cur().column;
    advance();  // 'forall'
    expect(TokenKind::LParen);
    if (!at(TokenKind::Identifier)) {
      error("expected loop variable");
      recover_past(TokenKind::RBrace);
      return;
    }
    loop.var = cur().text;
    advance();
    expect(TokenKind::Colon);
    parse_bound(loop.lo_param, loop.lo_literal);
    expect(TokenKind::DotDot);
    parse_bound(loop.hi_param, loop.hi_literal);
    expect(TokenKind::RParen);
    expect(TokenKind::LBrace);
    while (!at(TokenKind::RBrace) && !at(TokenKind::EndOfFile))
      parse_stmt(loop);
    expect(TokenKind::RBrace);
    prog.loops.push_back(std::move(loop));
  }

  void parse_bound(std::string& param, double& literal) {
    if (at(TokenKind::Identifier)) {
      param = cur().text;
      advance();
    } else if (at(TokenKind::IntLiteral)) {
      literal = cur().number;
      advance();
    } else {
      error("expected loop bound (parameter or integer)");
    }
  }

  void parse_stmt(Loop& loop) {
    Stmt stmt;
    stmt.line = cur().line;
    stmt.column = cur().column;
    if (!at(TokenKind::Identifier)) {
      error("expected statement");
      recover_past(TokenKind::Semicolon);
      return;
    }
    stmt.target = cur().text;
    advance();

    if (at(TokenKind::LBracket)) {
      stmt.kind = StmtKind::Accumulate;
      stmt.index = parse_index();
      if (at(TokenKind::PlusAssign)) {
        stmt.subtract = false;
        advance();
      } else if (at(TokenKind::MinusAssign)) {
        stmt.subtract = true;
        advance();
      } else {
        error("expected '+=' or '-=' on array statement (plain '=' to "
              "arrays is not an irregular reduction)");
        recover_past(TokenKind::Semicolon);
        return;
      }
    } else {
      stmt.kind = StmtKind::ScalarAssign;
      if (!expect(TokenKind::Assign)) {
        recover_past(TokenKind::Semicolon);
        return;
      }
    }
    stmt.value = parse_expr();
    expect(TokenKind::Semicolon);
    loop.body.push_back(std::move(stmt));
  }

  /// index := '[' IDENT ']'                (direct, must be loop var)
  ///        | '[' IDENT '[' IDENT ']' ']'  (one level of indirection)
  IndexExpr parse_index() {
    IndexExpr idx;
    idx.line = cur().line;
    idx.column = cur().column;
    expect(TokenKind::LBracket);
    if (!at(TokenKind::Identifier)) {
      error("expected index expression");
      recover_past(TokenKind::RBracket);
      return idx;
    }
    const std::string first = cur().text;
    advance();
    if (at(TokenKind::LBracket)) {
      idx.indirection = first;
      advance();
      if (at(TokenKind::Identifier)) {
        // Inner index must be the loop variable; checked in sema.
        idx.inner_var = cur().text;
        advance();
      } else {
        error("expected loop variable inside indirection");
      }
      expect(TokenKind::RBracket);
      if (at(TokenKind::LBracket)) {
        error("more than one level of indirection is not supported "
              "(apply the source-to-source splitting of [6] first)");
        recover_past(TokenKind::RBracket);
      }
    } else {
      idx.inner_var = first;
    }
    expect(TokenKind::RBracket);
    return idx;
  }

  ExprPtr parse_expr() { return parse_additive(); }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (at(TokenKind::Plus) || at(TokenKind::Minus)) {
      const BinOp op = at(TokenKind::Plus) ? BinOp::Add : BinOp::Sub;
      const auto line = cur().line, column = cur().column;
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Binary;
      node->op = op;
      node->line = line;
      node->column = column;
      node->lhs = std::move(lhs);
      node->rhs = parse_multiplicative();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (at(TokenKind::Star) || at(TokenKind::Slash)) {
      const BinOp op = at(TokenKind::Star) ? BinOp::Mul : BinOp::Div;
      const auto line = cur().line, column = cur().column;
      advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Binary;
      node->op = op;
      node->line = line;
      node->column = column;
      node->lhs = std::move(lhs);
      node->rhs = parse_unary();
      lhs = std::move(node);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::Minus)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Unary;
      node->line = cur().line;
      node->column = cur().column;
      advance();
      node->lhs = parse_unary();
      return node;
    }
    return parse_primary();
  }

  ExprPtr parse_primary() {
    auto node = std::make_unique<Expr>();
    node->line = cur().line;
    node->column = cur().column;
    if (at(TokenKind::IntLiteral) || at(TokenKind::RealLiteral)) {
      node->kind = ExprKind::Number;
      node->number = cur().number;
      advance();
      return node;
    }
    if (at(TokenKind::LParen)) {
      advance();
      node = parse_expr();
      expect(TokenKind::RParen);
      return node;
    }
    if (at(TokenKind::Identifier)) {
      node->name = cur().text;
      advance();
      if (at(TokenKind::LBracket)) {
        node->kind = ExprKind::ArrayRef;
        node->index = parse_index();
      } else {
        node->kind = ExprKind::ScalarRef;
      }
      return node;
    }
    error("expected expression");
    node->kind = ExprKind::Number;
    node->number = 0.0;
    advance();
    return node;
  }

  std::vector<Token> tokens_;
  DiagnosticSink& sink_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source, DiagnosticSink& sink) {
  Parser p(lex(source, sink), sink);
  return p.run();
}

}  // namespace earthred::compiler
