#include "compiler/optimize.hpp"

#include <map>
#include <set>
#include <utility>

#include "compiler/parser.hpp"  // clone_expr

namespace earthred::compiler {

namespace {

bool is_number(const Expr& e, double v) {
  return e.kind == ExprKind::Number && e.number == v;
}

/// Replaces `e` with its (cloned) child `child`.
void hoist(Expr& e, ExprPtr child) {
  Expr moved = std::move(*child);
  e = std::move(moved);
}

void collect_scalar_reads(const Expr& e, std::set<std::string>& out) {
  if (e.kind == ExprKind::ScalarRef) out.insert(e.name);
  if (e.lhs) collect_scalar_reads(*e.lhs, out);
  if (e.rhs) collect_scalar_reads(*e.rhs, out);
}

std::size_t propagate(Expr& e,
                      const std::map<std::string, double>& constants) {
  std::size_t n = 0;
  if (e.kind == ExprKind::ScalarRef) {
    const auto it = constants.find(e.name);
    if (it != constants.end()) {
      e.kind = ExprKind::Number;
      e.number = it->second;
      e.name.clear();
      return 1;
    }
    return 0;
  }
  if (e.lhs) n += propagate(*e.lhs, constants);
  if (e.rhs) n += propagate(*e.rhs, constants);
  return n;
}

}  // namespace

std::size_t fold_constants(Expr& e) {
  std::size_t n = 0;
  if (e.lhs) n += fold_constants(*e.lhs);
  if (e.rhs) n += fold_constants(*e.rhs);

  switch (e.kind) {
    case ExprKind::Unary:
      if (e.lhs->kind == ExprKind::Number) {
        e.kind = ExprKind::Number;
        e.number = -e.lhs->number;
        e.lhs.reset();
        ++n;
      }
      break;
    case ExprKind::Binary: {
      const bool lnum = e.lhs->kind == ExprKind::Number;
      const bool rnum = e.rhs->kind == ExprKind::Number;
      if (lnum && rnum) {
        double v = 0;
        switch (e.op) {
          case BinOp::Add: v = e.lhs->number + e.rhs->number; break;
          case BinOp::Sub: v = e.lhs->number - e.rhs->number; break;
          case BinOp::Mul: v = e.lhs->number * e.rhs->number; break;
          case BinOp::Div: v = e.lhs->number / e.rhs->number; break;
        }
        e.kind = ExprKind::Number;
        e.number = v;
        e.lhs.reset();
        e.rhs.reset();
        ++n;
        break;
      }
      // Algebraic identities that are exact in IEEE arithmetic for the
      // finite case and leave the variable operand untouched.
      if (e.op == BinOp::Mul && is_number(*e.rhs, 1.0)) {
        hoist(e, std::move(e.lhs));
        ++n;
      } else if (e.op == BinOp::Mul && is_number(*e.lhs, 1.0)) {
        hoist(e, std::move(e.rhs));
        ++n;
      } else if (e.op == BinOp::Div && is_number(*e.rhs, 1.0)) {
        hoist(e, std::move(e.lhs));
        ++n;
      } else if (e.op == BinOp::Add && is_number(*e.rhs, 0.0)) {
        hoist(e, std::move(e.lhs));
        ++n;
      } else if (e.op == BinOp::Add && is_number(*e.lhs, 0.0)) {
        hoist(e, std::move(e.rhs));
        ++n;
      } else if (e.op == BinOp::Sub && is_number(*e.rhs, 0.0)) {
        hoist(e, std::move(e.lhs));
        ++n;
      }
      break;
    }
    default:
      break;
  }
  return n;
}

OptimizeStats optimize(Program& program) {
  OptimizeStats stats;
  for (Loop& loop : program.loops) {
    bool changed = true;
    while (changed) {
      changed = false;

      // Fold everywhere.
      std::map<std::string, double> constants;
      for (Stmt& s : loop.body) {
        if (s.value) {
          const std::size_t n = fold_constants(*s.value);
          stats.folded += n;
          changed |= n > 0;
        }
        // Track scalars that are (now) literal constants. A redefinition
        // with a non-constant value invalidates the binding.
        if (s.kind == StmtKind::ScalarAssign) {
          if (s.value && s.value->kind == ExprKind::Number) {
            constants[s.target] = s.value->number;
          } else {
            constants.erase(s.target);
          }
        } else if (s.value) {
          const std::size_t n = propagate(*s.value, constants);
          stats.propagated += n;
          changed |= n > 0;
        }
      }
      // Propagate into later scalar definitions too (ordered pass above
      // already handled accumulate statements; redo scalar RHS uses).
      constants.clear();
      for (Stmt& s : loop.body) {
        if (s.kind != StmtKind::ScalarAssign) continue;
        if (s.value) {
          const std::size_t n = propagate(*s.value, constants);
          stats.propagated += n;
          changed |= n > 0;
          stats.folded += fold_constants(*s.value);
        }
        if (s.value && s.value->kind == ExprKind::Number) {
          constants[s.target] = s.value->number;
        } else {
          constants.erase(s.target);
        }
      }

      // Dead-scalar elimination: drop assignments never read afterwards.
      std::set<std::string> live;
      std::vector<bool> keep(loop.body.size(), true);
      for (std::size_t i = loop.body.size(); i-- > 0;) {
        const Stmt& s = loop.body[i];
        if (s.kind == StmtKind::ScalarAssign && !live.count(s.target)) {
          keep[i] = false;
          continue;
        }
        if (s.kind == StmtKind::ScalarAssign) live.erase(s.target);
        if (s.value) collect_scalar_reads(*s.value, live);
      }
      std::vector<Stmt> kept;
      kept.reserve(loop.body.size());
      for (std::size_t i = 0; i < loop.body.size(); ++i) {
        if (keep[i]) {
          kept.push_back(std::move(loop.body[i]));
        } else {
          ++stats.dead_removed;
          changed = true;
        }
      }
      loop.body = std::move(kept);
    }
  }
  return stats;
}

}  // namespace earthred::compiler
