#include "compiler/codegen.hpp"

#include <sstream>

namespace earthred::compiler {

std::string expr_to_string(const Expr& e) {
  switch (e.kind) {
    case ExprKind::Number: {
      std::ostringstream os;
      os << e.number;
      return os.str();
    }
    case ExprKind::ScalarRef:
      return e.name;
    case ExprKind::ArrayRef:
      if (e.index.is_direct()) return e.name + "[" + e.index.inner_var + "]";
      return e.name + "[" + e.index.indirection + "[" + e.index.inner_var +
             "]]";
    case ExprKind::Unary:
      return "(-" + expr_to_string(*e.lhs) + ")";
    case ExprKind::Binary: {
      const char* op = "+";
      switch (e.op) {
        case BinOp::Add: op = "+"; break;
        case BinOp::Sub: op = "-"; break;
        case BinOp::Mul: op = "*"; break;
        case BinOp::Div: op = "/"; break;
      }
      return "(" + expr_to_string(*e.lhs) + " " + op + " " +
             expr_to_string(*e.rhs) + ")";
    }
  }
  return "?";
}

std::string stmt_to_string(const Stmt& s) {
  if (s.kind == StmtKind::ScalarAssign)
    return s.target + " = " + expr_to_string(*s.value) + ";";
  std::string idx = s.index.is_direct()
                        ? s.index.inner_var
                        : s.index.indirection + "[" + s.index.inner_var + "]";
  return s.target + "[" + idx + "] " + (s.subtract ? "-=" : "+=") + " " +
         expr_to_string(*s.value) + ";";
}

std::string emit_threaded_c(const Program&, const FissionedLoop& f) {
  std::ostringstream os;
  const std::string extent =
      f.loop.hi_param.empty()
          ? std::to_string(static_cast<long long>(f.loop.hi_literal))
          : f.loop.hi_param;

  os << "/* phased execution of reference group {";
  for (std::size_t i = 0; i < f.group.indirection_arrays.size(); ++i)
    os << (i ? ", " : " ") << f.group.indirection_arrays[i];
  os << " } updating {";
  for (std::size_t i = 0; i < f.group.reduction_arrays.size(); ++i)
    os << (i ? ", " : " ") << f.group.reduction_arrays[i];
  os << " } */\n";

  os << "THREADED loop_proc(int proc_id, SPTR done)\n{\n";
  os << "  SLOT SYNC_SLOTS[KP + 1];   /* one per phase fiber + done */\n";
  os << "  /* runtime preprocessing: local, no communication */\n";
  os << "  LIGHTINSPECTOR(";
  for (std::size_t i = 0; i < f.group.indirection_arrays.size(); ++i)
    os << f.group.indirection_arrays[i] << "_local, ";
  os << "0, " << extent << "/NUM_PROCS, 1,\n"
     << "                 ";
  for (std::size_t i = 0; i < f.group.indirection_arrays.size(); ++i)
    os << f.group.indirection_arrays[i] << "_out, ";
  os << "iters_out, copy_out);\n\n";

  os << "  for (phase = 0; phase < KP; phase++) {   /* one fiber each */\n";
  os << "    FIBER compute_phase:  /* sync: prev phase + portion arrival"
        " */\n";
  os << "      for (j = phase_begin[phase]; j < phase_end[phase]; j++) {\n";
  for (const Stmt& s : f.loop.body) {
    if (s.kind == StmtKind::ScalarAssign) {
      os << "        " << stmt_to_string(s) << "\n";
    } else {
      os << "        " << s.target << "[" << s.index.indirection
         << "_out[j]] " << (s.subtract ? "-=" : "+=") << " "
         << expr_to_string(*s.value) << ";\n";
    }
  }
  os << "      }\n";
  os << "      /* second loop: fold buffered contributions */\n";
  os << "      for (j = copy_begin[phase]; j < copy_end[phase]; j++) {\n";
  for (const std::string& red : f.group.reduction_arrays) {
    os << "        " << red << "[copy_dst[j]] += " << red
       << "[copy_src[j]];  " << red << "[copy_src[j]] = 0.0;\n";
  }
  os << "      }\n";
  os << "      /* forward the owned portion; overlapped for k > 1 */\n";
  os << "      BLKMOV_SYNC(portion_of(";
  for (std::size_t i = 0; i < f.group.reduction_arrays.size(); ++i)
    os << (i ? ", " : "") << f.group.reduction_arrays[i];
  os << "), NODE(proc_id + NUM_PROCS - 1),\n"
     << "                  SLOT_ADR(SYNC_SLOTS[(phase + K) % KP]));\n";
  os << "      SYNC(SLOT_ADR(SYNC_SLOTS[phase + 1]));\n";
  os << "  }\n";
  os << "  END_FIBER;\n";
  os << "}\n";
  return os.str();
}

}  // namespace earthred::compiler
