// Threaded-C-style code emission.
//
// EARTH-C compiles to Threaded-C, a C dialect with explicit fibers,
// sync slots, and split-phase operations (Sec. 5.1). This emitter renders
// each fissioned loop as the phased Threaded-C-like pseudocode our
// execution strategy generates — the LIGHTINSPECTOR call, the per-phase
// main and second loops, the portion forwarding, and the sync-slot
// declarations — primarily for inspection, documentation and tests.
#pragma once

#include <string>

#include "compiler/analysis.hpp"

namespace earthred::compiler {

/// Renders one fissioned loop as phased Threaded-C-like pseudocode.
std::string emit_threaded_c(const Program& program,
                            const FissionedLoop& loop);

/// Renders an expression back to DSL syntax (used by the emitter and in
/// diagnostics).
std::string expr_to_string(const Expr& e);

/// Renders a statement back to DSL syntax.
std::string stmt_to_string(const Stmt& s);

}  // namespace earthred::compiler
