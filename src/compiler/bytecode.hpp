// Stack-machine bytecode for DSL expressions.
//
// Compiled loops execute on the simulated machine: each iteration runs the
// statement bytecodes, reading kernel-bound data and charging simulated
// cycles, so a DSL program is measured exactly like a hand-written kernel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace earthred::compiler {

enum class Op : std::uint8_t {
  PushConst,   ///< push c
  LoadScalar,  ///< push scalar slot a
  LoadEdge,    ///< push edge array a at the current iteration
  LoadNode,    ///< push node array a at element IA_b[iteration]
  Add,
  Sub,
  Mul,
  Div,
  Neg,
};

struct Instr {
  Op op = Op::PushConst;
  std::uint32_t a = 0;  ///< array / scalar slot id
  std::uint32_t b = 0;  ///< indirection id (LoadNode)
  double c = 0.0;       ///< constant (PushConst)
};

/// A compiled expression. Execution is performed by CompiledKernel (which
/// owns the bound data); max_stack is precomputed for allocation-free
/// evaluation.
struct Bytecode {
  std::vector<Instr> code;
  std::uint32_t max_stack = 0;

  std::string disassemble() const;
};

}  // namespace earthred::compiler
