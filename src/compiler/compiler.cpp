#include "compiler/compiler.hpp"

#include "compiler/check.hpp"
#include "compiler/codegen.hpp"
#include "compiler/parser.hpp"
#include "support/check.hpp"

namespace earthred::compiler {

CompileResult compile(std::string_view source,
                      const CompileOptions& options) {
  DiagnosticSink sink;
  sink.attach_source(source);
  CompileResult result;
  result.program = parse(source, sink);
  if (!sink.has_errors() && options.optimize)
    result.optimize_stats = optimize(result.program);
  if (!sink.has_errors()) {
    result.analysis = analyze(result.program, sink);
  }
  // The reduction-legality walk (check.cpp) runs once sema is clean; its
  // errors fail the compile like any other, while warnings flow through
  // in CompileResult::diagnostics without throwing.
  if (!sink.has_errors())
    check_reduction_legality(result.program, result.analysis, sink);
  result.diagnostics = sink.diagnostics();
  if (sink.has_errors()) throw compile_error(sink.summary());

  result.threaded_c.reserve(result.analysis.fissioned.size());
  for (const FissionedLoop& f : result.analysis.fissioned)
    result.threaded_c.push_back(emit_threaded_c(result.program, f));
  return result;
}

std::unique_ptr<CompiledKernel> bind(const CompileResult& compiled,
                                     std::size_t index, DataEnv env) {
  ER_EXPECTS(index < compiled.analysis.fissioned.size());
  return std::make_unique<CompiledKernel>(
      compiled.program, compiled.analysis.fissioned[index], std::move(env));
}

ProgramRunResult run_program(const CompileResult& compiled,
                             const DataEnv& env,
                             const core::RotationOptions& options) {
  ProgramRunResult out;
  for (std::size_t i = 0; i < compiled.analysis.fissioned.size(); ++i) {
    const auto kernel = bind(compiled, i, env);
    core::RotationOptions opts = options;
    opts.collect_results = true;
    const core::RunResult r = core::run_rotation_engine(*kernel, opts);
    out.total_cycles += r.total_cycles;
    out.inspector_cycles += r.inspector_cycles;
    for (std::size_t a = 0; a < kernel->reduction_names().size(); ++a)
      out.reduction[kernel->reduction_names()[a]] = r.reduction[a];
  }
  return out;
}

}  // namespace earthred::compiler
