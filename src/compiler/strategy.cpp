#include "compiler/strategy.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "compiler/parser.hpp"
#include "support/cpu_features.hpp"
#include "support/str.hpp"

namespace earthred::compiler {

namespace {

/// The service's default mesh shape — the symbolic fallback when no mesh
/// is bound, chosen so a plain `earthred check --explain` scores the same
/// inputs a default `earthred run` would execute.
constexpr std::uint64_t kDefaultNodes = 1000;
constexpr std::uint64_t kDefaultEdges = 5000;

std::string join(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ",";
    out += n;
  }
  return out;
}

const ArrayDecl* find_decl(const Program& program, const std::string& name) {
  for (const ArrayDecl& a : program.arrays)
    if (a.name == name) return &a;
  return nullptr;
}

/// Classifies the reduction chains of one loop from its reference groups:
/// one chain per (reduction array, indirection set) with its statement
/// count, operator flavor and element type read back off the AST.
std::vector<ChainInfo> classify_chains(const Program& program,
                                       const Loop& loop,
                                       const LoopAnalysis& la,
                                       const MeshStats& mesh) {
  const double nodes = static_cast<double>(
      mesh.bound() ? mesh.num_nodes : kDefaultNodes);
  const double edges = static_cast<double>(
      mesh.bound() ? mesh.num_edges : kDefaultEdges);

  std::vector<ChainInfo> chains;
  for (const ReferenceGroup& group : la.groups) {
    for (const std::string& array : group.reduction_arrays) {
      ChainInfo chain;
      chain.array = array;
      chain.indirections = group.indirection_arrays;
      if (const ArrayDecl* decl = find_decl(program, array))
        chain.elem = decl->type;
      for (const std::size_t si : group.statement_indices) {
        const Stmt& s = loop.body[si];
        if (s.kind != StmtKind::Accumulate || s.target != array) continue;
        if (chain.updates_per_iteration == 0) {
          chain.line = s.line;
          chain.column = s.column;
        }
        ++chain.updates_per_iteration;
        chain.has_subtract = chain.has_subtract || s.subtract;
      }
      chain.fanin = static_cast<double>(chain.updates_per_iteration) *
                    edges / nodes;
      chains.push_back(std::move(chain));
    }
  }
  return chains;
}

/// E-STRATEGY-EXTENT-MIX: every reduction array inside one reference
/// group must declare the same extent — the group is lowered with a
/// single element-ownership partition (one LightInspector per group),
/// and a partition of 0..num_nodes cannot also own 0..num_cells.
/// Returns true when the loop has a mixed group (it is then not scored:
/// no strategy can lower it until the source is fissioned by hand).
bool check_extent_mix(const Program& program, const Loop& loop,
                      const LoopAnalysis& la, DiagnosticSink& sink) {
  bool mixed = false;
  for (const ReferenceGroup& group : la.groups) {
    std::set<std::string> extents;
    for (const std::string& array : group.reduction_arrays)
      if (const ArrayDecl* decl = find_decl(program, array))
        extents.insert(decl->size_param);
    if (extents.size() > 1) {
      mixed = true;
      sink.error(loop.line, loop.column, "E-STRATEGY-EXTENT-MIX",
                 strformat("reference group {%s} via {%s} mixes reduction "
                           "extents {%s}; one element-ownership partition "
                           "cannot cover two element spaces — split the "
                           "accumulates into separate loops",
                           join(group.reduction_arrays).c_str(),
                           join(group.indirection_arrays).c_str(),
                           join(std::vector<std::string>(
                                    extents.begin(), extents.end()))
                               .c_str()));
    }
  }
  return mixed;
}

/// W-STRATEGY-DUP-SCATTER: several statements scattering into the same
/// (array, indirection) pair in one iteration each pay the full gather +
/// scatter price; fused into one accumulate they would pay it once.
void check_dup_scatter(const Loop& loop, DiagnosticSink& sink) {
  std::map<std::pair<std::string, std::string>, std::size_t> seen;
  for (const Stmt& s : loop.body) {
    if (s.kind != StmtKind::Accumulate || s.index.is_direct()) continue;
    const std::size_t count = ++seen[{s.target, s.index.indirection}];
    if (count == 2)  // warn once, at the first duplicate
      sink.warning(s.line, s.column, "W-STRATEGY-DUP-SCATTER",
                   strformat("'%s' is scattered through '%s' more than "
                             "once per iteration; fusing the accumulates "
                             "into one statement halves the scatter "
                             "traffic every strategy pays",
                             s.target.c_str(),
                             s.index.indirection.c_str()));
  }
}

/// Aggregates a loop's chains into the cost-model inputs. Multi-group
/// loops are scored as a whole (the fissioned fragments run back to back,
/// so the per-edge blend is what the sweep actually costs).
core::StrategyInputs loop_inputs(const std::vector<ChainInfo>& chains,
                                 const StrategyContext& ctx) {
  core::StrategyInputs in;
  in.num_nodes = ctx.mesh.bound() ? ctx.mesh.num_nodes : kDefaultNodes;
  in.num_edges = ctx.mesh.bound() ? ctx.mesh.num_edges : kDefaultEdges;
  in.num_procs = ctx.num_procs == 0 ? 1 : ctx.num_procs;
  in.k = ctx.k == 0 ? 1 : ctx.k;
  in.fanin_cv = ctx.mesh.degree_cv;

  std::set<std::string> refs;
  std::set<std::string> arrays;
  double fanin_sum = 0.0;
  bool fp = false;
  for (const ChainInfo& c : chains) {
    refs.insert(c.indirections.begin(), c.indirections.end());
    arrays.insert(c.array);
    fanin_sum += c.fanin;
    fp = fp || c.elem == ElemType::Real;
  }
  in.num_refs = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(refs.size()));
  in.num_reduction_arrays = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(arrays.size()));
  in.fanin_mean = chains.empty()
                      ? 0.0
                      : fanin_sum / static_cast<double>(chains.size());
  in.fp_accumulators = fp;
  return in;
}

std::string chain_note(const ChainInfo& c) {
  return strformat("chain %s via {%s}: %s, %zu update%s/iteration%s, "
                   "est. fan-in %.2f/element",
                   c.array.c_str(), join(c.indirections).c_str(),
                   c.elem == ElemType::Real ? "real" : "int",
                   c.updates_per_iteration,
                   c.updates_per_iteration == 1 ? "" : "s",
                   c.has_subtract ? " (uses -=)" : "", c.fanin);
}

}  // namespace

MeshStats mesh_stats_from_degrees(const std::vector<std::uint32_t>& degrees,
                                  std::uint64_t num_edges) {
  MeshStats stats;
  stats.num_nodes = degrees.size();
  stats.num_edges = num_edges;
  if (degrees.empty()) return stats;
  double sum = 0.0;
  for (const std::uint32_t d : degrees) sum += d;
  stats.mean_degree = sum / static_cast<double>(degrees.size());
  double var = 0.0;
  for (const std::uint32_t d : degrees) {
    const double delta = d - stats.mean_degree;
    var += delta * delta;
  }
  var /= static_cast<double>(degrees.size());
  stats.degree_cv =
      stats.mean_degree > 0.0 ? std::sqrt(var) / stats.mean_degree : 0.0;
  return stats;
}

LoweringPlan select_strategies(const Program& program,
                               const AnalysisResult& analysis,
                               const std::vector<LoopLegality>& legality,
                               const StrategyContext& ctx,
                               DiagnosticSink& sink) {
  LoweringPlan plan;
  plan.loops.reserve(program.loops.size());

  // A forced strategy the host cannot execute is one error for the whole
  // program (it is an environment fact, not a per-loop one).
  bool forced_usable = true;
  if (ctx.forced != core::StrategyKind::Auto &&
      !core::strategy_supported(ctx.forced)) {
    forced_usable = false;
    const std::uint32_t line =
        program.loops.empty() ? 1 : program.loops.front().line;
    sink.error(line, 1, "E-STRATEGY-UNSUPPORTED",
               strformat("strategy '%s' cannot execute on this host; "
                         "falling back to auto selection for analysis",
                         std::string(core::to_string(ctx.forced)).c_str()));
  }
  const core::StrategyKind forced =
      forced_usable ? ctx.forced : core::StrategyKind::Auto;

  for (std::size_t i = 0; i < program.loops.size(); ++i) {
    const Loop& loop = program.loops[i];
    LoopStrategy out;
    out.line = loop.line;
    out.legal = i < legality.size() && legality[i].legal;

    check_dup_scatter(loop, sink);

    const bool analyzed = i < analysis.loops.size();
    if (analyzed)
      out.chains = classify_chains(program, loop, analysis.loops[i],
                                   ctx.mesh);
    const bool extent_mix =
        analyzed && check_extent_mix(program, loop, analysis.loops[i], sink);

    if (!out.legal || extent_mix || out.chains.empty()) {
      out.legal = out.legal && !extent_mix;
      out.rationale = !analyzed || out.chains.empty()
                          ? "not scored: no reduction chains"
                          : extent_mix
                                ? "not scored: mixed reduction extents "
                                  "(E-STRATEGY-EXTENT-MIX)"
                                : "not scored: loop is not a legal "
                                  "irregular reduction";
      plan.loops.push_back(std::move(out));
      continue;
    }

    const core::StrategyInputs in = loop_inputs(out.chains, ctx);
    out.scores = core::score_strategies(in);

    // Cache-line reuse the layout pass would unlock: once targets are
    // renumbered contiguous and the edge order is sorted by target, the
    // fan-in of a whole line of accumulators is served by one fetch.
    // Element width follows the chains (real = 8 B, int = 4 B).
    {
      const std::uint32_t line_bytes =
          support::host_cache_info().line_bytes
              ? support::host_cache_info().line_bytes
              : 64;
      bool fp = false;
      for (const ChainInfo& c : out.chains)
        fp = fp || c.elem == ElemType::Real;
      const double line_elems =
          static_cast<double>(line_bytes) / (fp ? 8.0 : 4.0);
      out.est_line_reuse = in.fanin_mean * line_elems;
    }

    // The auto pick: cheapest eligible + supported score.
    const core::StrategyCost* best = nullptr;
    for (const core::StrategyCost& c : out.scores) {
      if (!c.auto_eligible || !core::strategy_supported(c.strategy))
        continue;
      if (best == nullptr || c.cost_per_edge < best->cost_per_edge)
        best = &c;
    }
    const core::StrategyKind chosen_auto =
        best ? best->strategy : core::StrategyKind::Phased;

    if (forced != core::StrategyKind::Auto) {
      out.chosen = forced;
      const core::StrategyCost& fc =
          out.scores[static_cast<std::size_t>(forced) - 1];
      out.rationale = strformat(
          "forced --strategy=%s (%.2f/edge; auto would pick %s at "
          "%.2f/edge)",
          std::string(core::to_string(forced)).c_str(), fc.cost_per_edge,
          std::string(core::to_string(chosen_auto)).c_str(),
          best ? best->cost_per_edge : 0.0);
      if (forced == core::StrategyKind::Atomic && in.fp_accumulators)
        sink.warning(loop.line, loop.column, "W-STRATEGY-ATOMIC-FP",
                     "forced atomic strategy reorders real-typed "
                     "accumulations across threads; results are "
                     "tolerance-reproducible only and excluded from "
                     "bit-identity gates");
    } else {
      out.chosen = chosen_auto;
      // Name the runner-up so the choice is a comparison, not a verdict.
      const core::StrategyCost* next = nullptr;
      for (const core::StrategyCost& c : out.scores) {
        if (c.strategy == out.chosen || !c.auto_eligible ||
            !core::strategy_supported(c.strategy))
          continue;
        if (next == nullptr || c.cost_per_edge < next->cost_per_edge)
          next = &c;
      }
      if (best && next)
        out.rationale = strformat(
            "auto: %s wins at %.2f/edge vs %s at %.2f/edge",
            std::string(core::to_string(out.chosen)).c_str(),
            best->cost_per_edge,
            std::string(core::to_string(next->strategy)).c_str(),
            next->cost_per_edge);
      else
        out.rationale = strformat(
            "auto: %s is the only eligible strategy",
            std::string(core::to_string(out.chosen)).c_str());
    }

    if (ctx.explain) {
      for (const ChainInfo& c : out.chains)
        sink.note(c.line, c.column, "I-STRATEGY-CHAIN",
                  chain_note(c));
      for (const core::StrategyCost& c : out.scores)
        sink.note(loop.line, loop.column, "I-STRATEGY-COST",
                  strformat("%s %.2f/edge: %s%s",
                            std::string(core::to_string(c.strategy)).c_str(),
                            c.cost_per_edge, c.rationale.c_str(),
                            c.auto_eligible ? "" : " [opt-in]"));
      sink.note(loop.line, loop.column, "I-STRATEGY-CHOICE",
                strformat("lowering as %s: %s",
                          std::string(core::to_string(out.chosen)).c_str(),
                          out.rationale.c_str()));
      sink.note(loop.line, loop.column, "I-STRATEGY-LAYOUT",
                strformat("est. reduction cache-line reuse with "
                          "--layout=rcm: %.1f updates/line fetch (~1 at "
                          "layout=none on a DRAM-resident array)",
                          out.est_line_reuse));
    }
    plan.loops.push_back(std::move(out));
  }
  return plan;
}

std::string LoweringPlan::render() const {
  std::string out;
  for (std::size_t i = 0; i < loops.size(); ++i) {
    const LoopStrategy& ls = loops[i];
    out += strformat("loop #%zu (line %u): ", i, ls.line);
    if (ls.scores.empty()) {
      out += ls.rationale + "\n";
      continue;
    }
    out += strformat("strategy=%s — %s\n",
                     std::string(core::to_string(ls.chosen)).c_str(),
                     ls.rationale.c_str());
    out += strformat("  est. line reuse with --layout=rcm: %.1f "
                     "updates/fetch (~1 at layout=none)\n",
                     ls.est_line_reuse);
    for (const ChainInfo& c : ls.chains)
      out += "  " + chain_note(c) + "\n";
    for (const core::StrategyCost& c : ls.scores)
      out += strformat("  %-10s %8.2f/edge  %s%s\n",
                       std::string(core::to_string(c.strategy)).c_str(),
                       c.cost_per_edge, c.rationale.c_str(),
                       c.auto_eligible ? "" : "  [opt-in]");
  }
  return out;
}

StrategyReport check_source_with_strategies(std::string_view source,
                                            const StrategyContext& ctx) {
  DiagnosticSink sink;
  sink.attach_source(source);
  StrategyReport out;
  out.check.program = parse(source, sink);
  if (!sink.has_errors()) {
    out.check.analysis = analyze(out.check.program, sink);
    out.check.loops = check_reduction_legality(out.check.program,
                                               out.check.analysis, sink);
    // LoopLegality only records the legality pass's own errors; analysis
    // errors (E-RED-READ, E-EXTENT, ...) also disqualify a loop from
    // strategy scoring — a lowering recommendation for a loop that does
    // not compile would be noise.
    std::vector<LoopLegality> scorable = out.check.loops;
    if (sink.has_errors())
      for (LoopLegality& l : scorable) l.legal = false;
    out.lowering = select_strategies(out.check.program, out.check.analysis,
                                     scorable, ctx, sink);
  }
  out.check.diagnostics = sink.diagnostics();
  return out;
}

}  // namespace earthred::compiler
