// Token stream for the irregular-reduction loop DSL.
//
// The DSL is a small EARTH-C-like language covering exactly the loops the
// paper's compiler analysis (Sec. 4) handles:
//
//   param num_nodes, num_edges;
//   array real X[num_nodes];
//   array int  IA1[num_edges];
//   array real Y[num_edges];
//   forall (i : 0 .. num_edges) {
//     t = Y[i] * 2.0;
//     X[IA1[i]] += t;
//     X[IA2[i]] += t;
//   }
#pragma once

#include <cstdint>
#include <string>

namespace earthred::compiler {

enum class TokenKind : std::uint8_t {
  // literals & identifiers
  Identifier,
  IntLiteral,
  RealLiteral,
  // keywords
  KwParam,
  KwArray,
  KwReal,
  KwInt,
  KwForall,
  // punctuation
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semicolon,
  Colon,
  DotDot,
  // operators
  Plus,
  Minus,
  Star,
  Slash,
  Assign,     // =
  PlusAssign, // +=
  MinusAssign,// -=
  EndOfFile,
};

const char* token_kind_name(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::EndOfFile;
  std::string text;    ///< identifier spelling or literal text
  double number = 0.0; ///< value for literals
  std::uint32_t line = 1;
  std::uint32_t column = 1;
};

}  // namespace earthred::compiler
