#include "compiler/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace earthred::compiler {

const char* token_kind_name(TokenKind k) {
  switch (k) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::RealLiteral: return "real literal";
    case TokenKind::KwParam: return "'param'";
    case TokenKind::KwArray: return "'array'";
    case TokenKind::KwReal: return "'real'";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwForall: return "'forall'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Colon: return "':'";
    case TokenKind::DotDot: return "'..'";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Assign: return "'='";
    case TokenKind::PlusAssign: return "'+='";
    case TokenKind::MinusAssign: return "'-='";
    case TokenKind::EndOfFile: return "end of file";
  }
  return "?";
}

namespace {
const std::unordered_map<std::string_view, TokenKind> kKeywords = {
    {"param", TokenKind::KwParam}, {"array", TokenKind::KwArray},
    {"real", TokenKind::KwReal},   {"int", TokenKind::KwInt},
    {"forall", TokenKind::KwForall},
};
}  // namespace

std::vector<Token> lex(std::string_view src, DiagnosticSink& sink) {
  std::vector<Token> out;
  std::size_t i = 0;
  std::uint32_t line = 1, col = 1;

  const auto advance = [&](std::size_t n = 1) {
    for (std::size_t j = 0; j < n && i < src.size(); ++j) {
      if (src[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
      ++i;
    }
  };
  const auto peek = [&](std::size_t off = 0) -> char {
    return i + off < src.size() ? src[i + off] : '\0';
  };
  const auto push = [&](TokenKind k, std::string text, double num = 0.0) {
    Token t;
    t.kind = k;
    t.text = std::move(text);
    t.number = num;
    t.line = line;
    t.column = col;
    out.push_back(std::move(t));
  };

  while (i < src.size()) {
    const char c = peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (i < src.size() && peek() != '\n') advance();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const std::uint32_t sl = line, sc = col;
      advance(2);
      while (i < src.size() && !(peek() == '*' && peek(1) == '/')) advance();
      if (i >= src.size()) {
        sink.error(sl, sc, "E-LEX", "unterminated block comment");
        break;
      }
      advance(2);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::uint32_t sl = line, sc = col;
      std::string word;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) ||
              peek() == '_')) {
        word.push_back(peek());
        advance();
      }
      Token t;
      const auto kw = kKeywords.find(word);
      t.kind = kw == kKeywords.end() ? TokenKind::Identifier : kw->second;
      t.text = std::move(word);
      t.line = sl;
      t.column = sc;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      const std::uint32_t sl = line, sc = col;
      std::string num;
      bool real = false;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(peek())) ||
              (peek() == '.' && peek(1) != '.') || peek() == 'e' ||
              peek() == 'E' ||
              ((peek() == '+' || peek() == '-') && !num.empty() &&
               (num.back() == 'e' || num.back() == 'E')))) {
        if (peek() == '.' || peek() == 'e' || peek() == 'E') real = true;
        num.push_back(peek());
        advance();
      }
      Token t;
      t.kind = real ? TokenKind::RealLiteral : TokenKind::IntLiteral;
      t.number = std::strtod(num.c_str(), nullptr);
      t.text = std::move(num);
      t.line = sl;
      t.column = sc;
      out.push_back(std::move(t));
      continue;
    }

    const std::uint32_t sl = line, sc = col;
    auto push_at = [&](TokenKind k, std::string text) {
      Token t;
      t.kind = k;
      t.text = std::move(text);
      t.line = sl;
      t.column = sc;
      out.push_back(std::move(t));
    };
    switch (c) {
      case '(': push_at(TokenKind::LParen, "("); advance(); break;
      case ')': push_at(TokenKind::RParen, ")"); advance(); break;
      case '{': push_at(TokenKind::LBrace, "{"); advance(); break;
      case '}': push_at(TokenKind::RBrace, "}"); advance(); break;
      case '[': push_at(TokenKind::LBracket, "["); advance(); break;
      case ']': push_at(TokenKind::RBracket, "]"); advance(); break;
      case ',': push_at(TokenKind::Comma, ","); advance(); break;
      case ';': push_at(TokenKind::Semicolon, ";"); advance(); break;
      case ':': push_at(TokenKind::Colon, ":"); advance(); break;
      case '*': push_at(TokenKind::Star, "*"); advance(); break;
      case '/': push_at(TokenKind::Slash, "/"); advance(); break;
      case '.':
        if (peek(1) == '.') {
          push_at(TokenKind::DotDot, "..");
          advance(2);
        } else {
          sink.error(sl, sc, "E-LEX", "stray '.'");
          advance();
        }
        break;
      case '+':
        if (peek(1) == '=') {
          push_at(TokenKind::PlusAssign, "+=");
          advance(2);
        } else {
          push_at(TokenKind::Plus, "+");
          advance();
        }
        break;
      case '-':
        if (peek(1) == '=') {
          push_at(TokenKind::MinusAssign, "-=");
          advance(2);
        } else {
          push_at(TokenKind::Minus, "-");
          advance();
        }
        break;
      case '=':
        push_at(TokenKind::Assign, "=");
        advance();
        break;
      default:
        sink.error(sl, sc, "E-LEX",
                   std::string("unexpected character '") + c + "'");
        advance();
        break;
    }
  }
  push(TokenKind::EndOfFile, "");
  return out;
}

}  // namespace earthred::compiler
