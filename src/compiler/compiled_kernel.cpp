#include "compiler/compiled_kernel.hpp"

#include <algorithm>
#include <functional>

#include "support/check.hpp"

namespace earthred::compiler {

namespace {

const ArrayDecl* find_decl(const Program& program, const std::string& name) {
  for (const ArrayDecl& a : program.arrays)
    if (a.name == name) return &a;
  return nullptr;
}

std::uint64_t param_value(const DataEnv& env, const std::string& name) {
  const auto it = env.params.find(name);
  ER_CHECK_MSG(it != env.params.end(),
               "parameter '" + name + "' not bound in DataEnv");
  return it->second;
}

void collect_refs(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind == ExprKind::ArrayRef) out.push_back(&e);
  if (e.lhs) collect_refs(*e.lhs, out);
  if (e.rhs) collect_refs(*e.rhs, out);
}

}  // namespace

CompiledKernel::CompiledKernel(const Program& program,
                               const FissionedLoop& loop, DataEnv env) {
  // ---- extents ---------------------------------------------------------
  num_edges_ = loop.loop.hi_param.empty()
                   ? static_cast<std::uint64_t>(loop.loop.hi_literal)
                   : param_value(env, loop.loop.hi_param);

  reduction_names_ = loop.group.reduction_arrays;
  lhs_indirections_ = loop.group.indirection_arrays;
  gather_names_ = loop.gather_arrays;
  edge_names_ = loop.edge_arrays;

  std::string node_param;
  for (const std::string& rn : reduction_names_) {
    const ArrayDecl* d = find_decl(program, rn);
    ER_CHECK_MSG(d != nullptr, "missing declaration for '" + rn + "'");
    if (node_param.empty()) node_param = d->size_param;
    ER_CHECK_MSG(d->size_param == node_param,
                 "reduction arrays of one loop must share an extent");
  }
  for (const std::string& gn : gather_names_) {
    const ArrayDecl* d = find_decl(program, gn);
    ER_CHECK_MSG(d != nullptr, "missing declaration for '" + gn + "'");
    ER_CHECK_MSG(d->size_param == node_param,
                 "gather array '" + gn + "' must span the node space");
  }
  num_nodes_ = static_cast<std::uint32_t>(param_value(env, node_param));

  // ---- id maps ----------------------------------------------------------
  all_indirections_ = lhs_indirections_;
  for (const Stmt& s : loop.loop.body) {
    std::vector<const Expr*> refs;
    if (s.value) collect_refs(*s.value, refs);
    for (const Expr* r : refs)
      if (!r->index.is_direct() &&
          std::find(all_indirections_.begin(), all_indirections_.end(),
                    r->index.indirection) == all_indirections_.end())
        all_indirections_.push_back(r->index.indirection);
  }
  for (std::uint32_t i = 0; i < all_indirections_.size(); ++i)
    indirection_id_[all_indirections_[i]] = i;
  for (std::uint32_t i = 0; i < reduction_names_.size(); ++i)
    reduction_id_[reduction_names_[i]] = i;
  for (std::uint32_t i = 0; i < gather_names_.size(); ++i)
    gather_id_[gather_names_[i]] = i;
  for (std::uint32_t i = 0; i < edge_names_.size(); ++i)
    edge_id_[edge_names_[i]] = i;

  // ---- bind data ---------------------------------------------------------
  indirection_data_.resize(all_indirections_.size());
  for (std::uint32_t i = 0; i < all_indirections_.size(); ++i) {
    const auto it = env.int_arrays.find(all_indirections_[i]);
    ER_CHECK_MSG(it != env.int_arrays.end(),
                 "int array '" + all_indirections_[i] + "' not bound");
    ER_CHECK_MSG(it->second.size() == num_edges_,
                 "indirection '" + all_indirections_[i] +
                     "' has the wrong length");
    for (const std::uint32_t v : it->second)
      ER_CHECK_MSG(v < num_nodes_, "indirection value out of range in '" +
                                       all_indirections_[i] + "'");
    indirection_data_[i] = it->second;
  }
  edge_data_.resize(edge_names_.size());
  for (std::uint32_t i = 0; i < edge_names_.size(); ++i) {
    const auto it = env.real_arrays.find(edge_names_[i]);
    ER_CHECK_MSG(it != env.real_arrays.end(),
                 "real array '" + edge_names_[i] + "' not bound");
    ER_CHECK_MSG(it->second.size() == num_edges_,
                 "edge array '" + edge_names_[i] + "' has the wrong length");
    edge_data_[i] = it->second;
  }
  gather_init_.resize(gather_names_.size());
  for (std::uint32_t i = 0; i < gather_names_.size(); ++i) {
    const auto it = env.real_arrays.find(gather_names_[i]);
    ER_CHECK_MSG(it != env.real_arrays.end(),
                 "real array '" + gather_names_[i] + "' not bound");
    ER_CHECK_MSG(it->second.size() == num_nodes_,
                 "node array '" + gather_names_[i] +
                     "' has the wrong length");
    gather_init_[i] = it->second;
  }

  // ---- code generation ----------------------------------------------------
  for (const Stmt& s : loop.loop.body) {
    if (s.kind == StmtKind::ScalarAssign) {
      const auto slot = static_cast<std::uint32_t>(scalar_slot_.size());
      // Fission may replicate a definition chain; keep first slot.
      const auto [it, inserted] = scalar_slot_.emplace(s.target, slot);
      CompiledScalarAssign ca;
      ca.slot = it->second;
      ca.rhs = compile_expr(*s.value);
      scalar_assigns_.push_back(std::move(ca));
    } else {
      CompiledStatement cs;
      cs.reduction_id = reduction_id_.at(s.target);
      const auto slot_it =
          std::find(lhs_indirections_.begin(), lhs_indirections_.end(),
                    s.index.indirection);
      ER_CHECK_MSG(slot_it != lhs_indirections_.end(),
                   "statement uses an indirection outside its group");
      cs.ref_slot = static_cast<std::uint32_t>(
          slot_it - lhs_indirections_.begin());
      cs.subtract = s.subtract;
      cs.rhs = compile_expr(*s.value);
      statements_.push_back(std::move(cs));
    }
  }
}

Bytecode CompiledKernel::compile_expr(const Expr& e) const {
  Bytecode bc;
  std::uint32_t depth = 0, maxd = 0;
  const auto emit = [&](Instr in, std::int32_t delta) {
    bc.code.push_back(in);
    depth = static_cast<std::uint32_t>(static_cast<std::int32_t>(depth) +
                                       delta);
    maxd = std::max(maxd, depth);
  };
  // Post-order walk emitting operands before operators.
  const std::function<void(const Expr&)> walk = [&](const Expr& n) {
    switch (n.kind) {
      case ExprKind::Number:
        emit({Op::PushConst, 0, 0, n.number}, +1);
        break;
      case ExprKind::ScalarRef: {
        const auto it = scalar_slot_.find(n.name);
        ER_CHECK_MSG(it != scalar_slot_.end(),
                     "scalar '" + n.name + "' has no slot");
        emit({Op::LoadScalar, it->second, 0, 0.0}, +1);
        break;
      }
      case ExprKind::ArrayRef: {
        if (n.index.is_direct()) {
          const auto it = edge_id_.find(n.name);
          ER_CHECK_MSG(it != edge_id_.end(),
                       "edge array '" + n.name + "' has no id");
          emit({Op::LoadEdge, it->second, 0, 0.0}, +1);
        } else {
          const auto git = gather_id_.find(n.name);
          ER_CHECK_MSG(git != gather_id_.end(),
                       "gather array '" + n.name + "' has no id");
          emit({Op::LoadNode, git->second,
                indirection_id_.at(n.index.indirection), 0.0},
               +1);
        }
        break;
      }
      case ExprKind::Unary:
        walk(*n.lhs);
        emit({Op::Neg, 0, 0, 0.0}, 0);
        break;
      case ExprKind::Binary:
        walk(*n.lhs);
        walk(*n.rhs);
        switch (n.op) {
          case BinOp::Add: emit({Op::Add, 0, 0, 0.0}, -1); break;
          case BinOp::Sub: emit({Op::Sub, 0, 0, 0.0}, -1); break;
          case BinOp::Mul: emit({Op::Mul, 0, 0, 0.0}, -1); break;
          case BinOp::Div: emit({Op::Div, 0, 0, 0.0}, -1); break;
        }
        break;
    }
  };
  walk(e);
  bc.max_stack = maxd;
  return bc;
}

core::KernelShape CompiledKernel::shape() const {
  return core::KernelShape{
      .num_nodes = num_nodes_,
      .num_edges = num_edges_,
      .num_refs = static_cast<std::uint32_t>(lhs_indirections_.size()),
      .num_reduction_arrays =
          static_cast<std::uint32_t>(reduction_names_.size()),
      .num_node_read_arrays =
          static_cast<std::uint32_t>(gather_names_.size()),
  };
}

std::uint32_t CompiledKernel::ref(std::uint32_t r,
                                  std::uint64_t edge) const {
  ER_EXPECTS(r < lhs_indirections_.size());
  ER_EXPECTS(edge < num_edges_);
  // LHS indirections occupy the first slots of all_indirections_ in order.
  return indirection_data_[r][edge];
}

void CompiledKernel::init_node_arrays(
    std::vector<std::vector<double>>& arrays) const {
  for (std::size_t i = 0; i < gather_init_.size(); ++i)
    arrays[i] = gather_init_[i];
}

double CompiledKernel::eval(earth::FiberContext* ctx,
                            const core::CostTags* tags, const Bytecode& bc,
                            std::uint64_t edge, std::uint64_t cost_slot,
                            std::vector<double>& stack,
                            std::vector<double>& scalars,
                            const std::vector<std::vector<double>>*
                                node_read) const {
  stack.clear();
  for (const Instr& in : bc.code) {
    switch (in.op) {
      case Op::PushConst:
        stack.push_back(in.c);
        break;
      case Op::LoadScalar:
        if (ctx) ctx->charge_intops(1);
        stack.push_back(scalars[in.a]);
        break;
      case Op::LoadEdge:
        if (ctx)
          ctx->load(tags->edge_data,
                    cost_slot * edge_data_.size() + in.a, 8);
        stack.push_back(edge_data_[in.a][edge]);
        break;
      case Op::LoadNode: {
        const std::uint32_t node = indirection_data_[in.b][edge];
        if (ctx) ctx->load(tags->node_read[in.a], node, 8);
        stack.push_back(
            node_read ? (*node_read)[in.a][node] : gather_init_[in.a][node]);
        break;
      }
      case Op::Add: {
        const double r = stack.back();
        stack.pop_back();
        stack.back() += r;
        if (ctx) ctx->charge_flops(1);
        break;
      }
      case Op::Sub: {
        const double r = stack.back();
        stack.pop_back();
        stack.back() -= r;
        if (ctx) ctx->charge_flops(1);
        break;
      }
      case Op::Mul: {
        const double r = stack.back();
        stack.pop_back();
        stack.back() *= r;
        if (ctx) ctx->charge_flops(1);
        break;
      }
      case Op::Div: {
        const double r = stack.back();
        stack.pop_back();
        stack.back() /= r;
        if (ctx) ctx->charge_flops(8);  // divides are expensive
        break;
      }
      case Op::Neg:
        stack.back() = -stack.back();
        if (ctx) ctx->charge_flops(1);
        break;
    }
  }
  ER_ENSURES(stack.size() == 1);
  return stack.back();
}

void CompiledKernel::compute_edge(earth::FiberContext& ctx,
                                  const core::CostTags& tags,
                                  std::uint64_t edge_global,
                                  std::uint64_t edge_slot,
                                  std::span<const std::uint32_t> redirected,
                                  core::ProcArrays& arrays) const {
  // The machine is single-threaded, so shared scratch is safe.
  thread_local std::vector<double> stack;
  thread_local std::vector<double> scalars;
  scalars.assign(scalar_slot_.size(), 0.0);

  for (const CompiledScalarAssign& ca : scalar_assigns_) {
    scalars[ca.slot] = eval(&ctx, &tags, ca.rhs, edge_global, edge_slot,
                            stack, scalars, &arrays.node_read);
  }
  for (const CompiledStatement& cs : statements_) {
    const double v = eval(&ctx, &tags, cs.rhs, edge_global, edge_slot,
                          stack, scalars, &arrays.node_read);
    const std::uint32_t where = redirected[cs.ref_slot];
    ctx.load(tags.reduction[cs.reduction_id], where);
    ctx.charge_flops(1);
    ctx.store(tags.reduction[cs.reduction_id], where);
    if (cs.subtract) {
      arrays.reduction[cs.reduction_id][where] -= v;
    } else {
      arrays.reduction[cs.reduction_id][where] += v;
    }
  }
}

void CompiledKernel::update_nodes(earth::FiberContext&,
                                  const core::CostTags&, std::uint32_t,
                                  std::uint32_t, std::uint32_t,
                                  core::ProcArrays&) const {
  // The DSL models the reduction sweep only; there is no node update.
}

std::map<std::string, std::vector<double>>
CompiledKernel::interpret_reference() const {
  std::map<std::string, std::vector<double>> result;
  std::vector<std::vector<double>> red(reduction_names_.size(),
                                       std::vector<double>(num_nodes_, 0.0));
  std::vector<double> stack, scalars;
  for (std::uint64_t e = 0; e < num_edges_; ++e) {
    scalars.assign(scalar_slot_.size(), 0.0);
    for (const CompiledScalarAssign& ca : scalar_assigns_)
      scalars[ca.slot] =
          eval(nullptr, nullptr, ca.rhs, e, e, stack, scalars, nullptr);
    for (const CompiledStatement& cs : statements_) {
      const double v =
          eval(nullptr, nullptr, cs.rhs, e, e, stack, scalars, nullptr);
      const std::uint32_t node = indirection_data_[cs.ref_slot][e];
      if (cs.subtract) {
        red[cs.reduction_id][node] -= v;
      } else {
        red[cs.reduction_id][node] += v;
      }
    }
  }
  for (std::size_t i = 0; i < reduction_names_.size(); ++i)
    result[reduction_names_[i]] = std::move(red[i]);
  return result;
}

}  // namespace earthred::compiler
