// Compiler driver: source -> parse -> analyze -> fission -> code.
//
// The public entry points mirror how the EARTH-C pipeline is described in
// the paper: compile() performs the Sec. 4 analysis and returns the
// fissioned loops plus Threaded-C-style renderings; bind() attaches data
// to one fissioned loop, producing a CompiledKernel that any engine in
// core/ can execute on the simulated machine.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/analysis.hpp"
#include "compiler/compiled_kernel.hpp"
#include "compiler/diagnostics.hpp"
#include "compiler/optimize.hpp"
#include "core/reduction_engine.hpp"

namespace earthred::compiler {

struct CompileOptions {
  /// Run the optimize.hpp passes (constant folding/propagation, dead
  /// scalar elimination) before analysis.
  bool optimize = false;
};

struct CompileResult {
  Program program;
  AnalysisResult analysis;
  /// Threaded-C-style pseudocode, one entry per fissioned loop.
  std::vector<std::string> threaded_c;
  /// All diagnostics produced (empty on success).
  std::vector<Diagnostic> diagnostics;
  /// Rewrite counts when CompileOptions::optimize was set.
  OptimizeStats optimize_stats;
};

/// Compiles DSL `source`. Throws compile_error (carrying the rendered
/// diagnostics) if the source is invalid.
CompileResult compile(std::string_view source,
                      const CompileOptions& options = {});

/// Binds `env` to fissioned loop `index` of a compile result.
std::unique_ptr<CompiledKernel> bind(const CompileResult& compiled,
                                     std::size_t index, DataEnv env);

/// Result of executing a whole compiled program.
struct ProgramRunResult {
  earth::Cycles total_cycles = 0;
  earth::Cycles inspector_cycles = 0;
  /// Final reduction arrays by name, accumulated across all loops.
  std::map<std::string, std::vector<double>> reduction;
};

/// Runs every fissioned loop of a compiled program under the rotation
/// strategy (loops execute in sequence; each is one engine run, as the
/// fission transformation prescribes), summing simulated time.
ProgramRunResult run_program(const CompileResult& compiled,
                             const DataEnv& env,
                             const core::RotationOptions& options);

}  // namespace earthred::compiler
