#include "compiler/check.hpp"

#include <map>
#include <set>

#include "compiler/parser.hpp"
#include "compiler/strategy.hpp"

namespace earthred::compiler {

namespace {

/// Collects scalar reads of an expression in evaluation order.
void scalar_reads(const Expr& e, std::vector<const Expr*>& out) {
  if (e.kind == ExprKind::ScalarRef) out.push_back(&e);
  if (e.lhs) scalar_reads(*e.lhs, out);
  if (e.rhs) scalar_reads(*e.rhs, out);
}

class LegalityWalk {
 public:
  LegalityWalk(const Program& program, const AnalysisResult& analysis,
               DiagnosticSink& sink)
      : prog_(program), analysis_(analysis), sink_(sink) {
    for (const ArrayDecl& a : prog_.arrays) arrays_.insert(a.name);
  }

  std::vector<LoopLegality> run() {
    std::vector<LoopLegality> verdicts;
    verdicts.reserve(prog_.loops.size());
    for (std::size_t li = 0; li < prog_.loops.size(); ++li)
      verdicts.push_back(check_loop(
          prog_.loops[li],
          li < analysis_.loops.size() ? &analysis_.loops[li] : nullptr));
    return verdicts;
  }

 private:
  LoopLegality check_loop(const Loop& loop, const LoopAnalysis* la) {
    LoopLegality verdict;
    const std::size_t before = sink_.error_count();

    // Pass 1: classify the names this loop writes and indexes through.
    std::set<std::string> written;       // all write targets (any form)
    std::set<std::string> indirections;  // arrays used as an index map
    const auto note_index = [&](const IndexExpr& idx) {
      if (!idx.is_direct()) indirections.insert(idx.indirection);
    };
    for (const Stmt& s : loop.body) {
      written.insert(s.target);
      if (s.kind == StmtKind::Accumulate) {
        ++verdict.reduction_writes;
        note_index(s.index);
      } else {
        ++verdict.scalar_assigns;
      }
      if (s.value) collect(*s.value, note_index);
    }

    // E-NONRED-WRITE: a ScalarAssign whose target is a declared array is
    // an array write outside the +=-class accumulate form — the grammar
    // cannot spell it, but programmatically built ASTs (and future
    // transformations) can, and it would miscompile silently.
    for (const Stmt& s : loop.body) {
      if (s.kind == StmtKind::ScalarAssign && arrays_.count(s.target))
        sink_.error(s.line, s.column, "E-NONRED-WRITE",
                    "array '" + s.target +
                        "' is written with '=' inside the loop; only "
                        "associative/commutative '+='/'-=' accumulations "
                        "through an indirection are reduction-legal");
    }

    // E-INDIR-WRITE: the LightInspector precomputes the phase schedule
    // from the indirection arrays, so they must be loop-invariant.
    for (const Stmt& s : loop.body) {
      if (indirections.count(s.target))
        sink_.error(s.line, s.column, "E-INDIR-WRITE",
                    "indirection array '" + s.target +
                        "' is written inside the loop; indirection must be "
                        "loop-invariant for the inspector's schedule to "
                        "stay valid");
    }

    // Scalar dataflow: reads-before-writes with a later definition are
    // loop-carried dependences; definitions never read are dead.
    std::map<std::string, const Stmt*> first_def;
    std::map<std::string, std::size_t> def_count;
    for (const Stmt& s : loop.body) {
      if (s.kind != StmtKind::ScalarAssign || arrays_.count(s.target))
        continue;
      if (!first_def.count(s.target)) first_def[s.target] = &s;
      ++def_count[s.target];
    }
    std::set<std::string> defined, read;
    for (const Stmt& s : loop.body) {
      std::vector<const Expr*> reads;
      if (s.value) scalar_reads(*s.value, reads);
      for (const Expr* r : reads) {
        read.insert(r->name);
        if (!defined.count(r->name) && first_def.count(r->name)) {
          sink_.error(r->line, r->column, "E-SCALAR-CARRY",
                      "scalar '" + r->name +
                          "' is read before its definition in the same "
                          "iteration — a loop-carried scalar dependence, "
                          "which is outside the irregular-reduction model");
          const Stmt* def = first_def[r->name];
          sink_.note(def->line, def->column, "E-SCALAR-CARRY",
                     "'" + r->name + "' is defined here");
        }
      }
      if (s.kind == StmtKind::ScalarAssign && !arrays_.count(s.target))
        defined.insert(s.target);
    }
    for (const auto& [name, def] : first_def) {
      if (!read.count(name))
        sink_.warning(def->line, def->column, "W-UNUSED-SCALAR",
                      "scalar '" + name +
                          "' is assigned but never read in this loop");
      if (def_count[name] > 1)
        sink_.warning(def->line, def->column, "W-SCALAR-REDEF",
                      "scalar '" + name + "' is assigned " +
                          std::to_string(def_count[name]) +
                          " times per iteration; loop fission replicates "
                          "the last definition reaching each use");
    }

    if (verdict.reduction_writes == 0)
      sink_.warning(loop.line, loop.column, "W-EMPTY-LOOP",
                    "loop performs no reduction; it compiles to nothing");

    // Reference groups (Definition 1) must be a legal fission partition:
    // pairwise-disjoint reduction arrays, every accumulate statement in
    // exactly one group. A violation means fission would either duplicate
    // or drop updates.
    if (la) check_groups(loop, *la);

    verdict.legal = sink_.error_count() == before;
    return verdict;
  }

  void check_groups(const Loop& loop, const LoopAnalysis& la) {
    std::map<std::string, std::size_t> owner;  // reduction array -> group
    std::map<std::size_t, std::size_t> stmt_cover;
    for (std::size_t gi = 0; gi < la.groups.size(); ++gi) {
      for (const std::string& arr : la.groups[gi].reduction_arrays) {
        const auto [it, fresh] = owner.emplace(arr, gi);
        if (!fresh)
          sink_.error(loop.line, loop.column, "E-FISSION-GROUP",
                      "reduction array '" + arr + "' belongs to groups " +
                          std::to_string(it->second) + " and " +
                          std::to_string(gi) +
                          "; fission would duplicate its updates");
      }
      for (const std::size_t si : la.groups[gi].statement_indices)
        ++stmt_cover[si];
    }
    for (std::size_t si = 0; si < loop.body.size(); ++si) {
      const Stmt& s = loop.body[si];
      if (s.kind != StmtKind::Accumulate || s.index.is_direct()) continue;
      const std::size_t n = stmt_cover.count(si) ? stmt_cover[si] : 0;
      if (n != 1)
        sink_.error(s.line, s.column, "E-FISSION-GROUP",
                    "accumulate statement is covered by " +
                        std::to_string(n) +
                        " reference group(s); fission requires exactly one");
    }
  }

  /// Walks an expression, invoking `f` on every array index.
  template <typename F>
  void collect(const Expr& e, F&& f) {
    if (e.kind == ExprKind::ArrayRef) f(e.index);
    if (e.lhs) collect(*e.lhs, f);
    if (e.rhs) collect(*e.rhs, f);
  }

  const Program& prog_;
  const AnalysisResult& analysis_;
  DiagnosticSink& sink_;
  std::set<std::string> arrays_;
};

}  // namespace

std::string CheckReport::render() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.to_string();
    out += '\n';
  }
  return out;
}

std::string CheckReport::first_error() const {
  for (const Diagnostic& d : diagnostics)
    if (d.severity == Severity::Error) return d.header();
  return {};
}

std::vector<LoopLegality> check_reduction_legality(
    const Program& program, const AnalysisResult& analysis,
    DiagnosticSink& sink) {
  LegalityWalk walk(program, analysis, sink);
  return walk.run();
}

CheckReport check_source(std::string_view source) {
  // The default check is the strategy-aware one with notes off: the
  // W/E-STRATEGY-* codes flow to every caller (CLI, service admission,
  // the golden corpus) while clean sources stay diagnostic-free.
  return check_source_with_strategies(source, StrategyContext{}).check;
}

}  // namespace earthred::compiler
