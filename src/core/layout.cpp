#include "core/layout.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/check.hpp"
#include "support/cpu_features.hpp"
#include "support/str.hpp"

namespace earthred::core {

std::string_view to_string(LayoutKind kind) {
  switch (kind) {
    case LayoutKind::None: return "none";
    case LayoutKind::Rcm: return "rcm";
    case LayoutKind::Auto: return "auto";
  }
  return "?";
}

LayoutKind parse_layout(std::string_view name) {
  if (name == "none") return LayoutKind::None;
  if (name == "rcm") return LayoutKind::Rcm;
  if (name == "auto") return LayoutKind::Auto;
  throw check_error(strformat(
      "E-LAYOUT-NAME: unknown layout '%.*s' (expected none|rcm|auto)",
      static_cast<int>(name.size()), name.data()));
}

LayoutKind effective_layout(LayoutKind requested) {
  if (requested != LayoutKind::None) return requested;
  const char* forced = std::getenv("EARTHRED_FORCE_LAYOUT");
  if (forced == nullptr || *forced == '\0') return requested;
  return parse_layout(forced);
}

std::uint32_t layout_tile_iters(std::uint32_t bytes_per_iter,
                                std::uint32_t override_iters) {
  if (override_iters != 0) return override_iters;
  if (bytes_per_iter == 0) return 0;
  const support::CacheInfo& cache = support::host_cache_info();
  // Half the L1d for the tile's gather stream; 32 KiB when undetected.
  const std::uint64_t budget =
      (cache.l1d_bytes != 0 ? cache.l1d_bytes : 32 * 1024) / 2;
  const std::uint64_t iters = budget / bytes_per_iter;
  // Floor of 256 keeps the per-tile dispatch overhead negligible even for
  // fat iterations; cap guards against a bogus huge sysconf value.
  return static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(iters, 256, 1u << 20));
}

}  // namespace earthred::core
