#include "core/plan_io.hpp"

#include <cstring>
#include <fstream>
#include <thread>
#include <utility>

#include "support/binio.hpp"
#include "support/str.hpp"

namespace earthred::core {

namespace {

using support::ByteReader;
using support::ByteWriter;

/// Reusable header validation over an in-memory byte range. Returns true
/// and fills `out` for a trustworthy header; false with code/detail for
/// any identity mismatch.
bool decode_header(std::span<const std::byte> bytes, PlanFileHeader* out,
                   std::string* code, std::string* detail) {
  const auto fail = [&](const char* c, std::string d) {
    if (code) *code = c;
    if (detail) *detail = std::move(d);
    return false;
  };
  if (bytes.size() < kPlanHeaderBytes)
    return fail("E-STORE-TRUNC",
                strformat("file holds %zu bytes, the header alone is %zu",
                          bytes.size(), kPlanHeaderBytes));
  ByteReader r(bytes);
  const std::uint64_t magic = r.u64();
  if (magic != kPlanMagic)
    return fail("E-STORE-MAGIC", "not a plan file (bad magic)");
  const std::uint32_t version = r.u32();
  const std::uint32_t endian = r.u32();
  if (endian != kPlanEndianTag)
    return fail("E-STORE-ENDIAN",
                "written by a foreign-endian producer; integers would read "
                "back byte-reversed");
  if (version != kPlanFormatVersion)
    return fail("E-STORE-VERSION",
                strformat("format version %u, this build reads only %u "
                          "(plans are rebuilt, never migrated)",
                          version, kPlanFormatVersion));
  PlanFileHeader h;
  h.format_version = version;
  h.verifier_fingerprint = r.u64();
  if (h.verifier_fingerprint != inspector::kPlanVerifierFingerprint)
    return fail("E-STORE-VERIFIER",
                strformat("persisted under verifier %016llx, this build "
                          "proves %016llx",
                          static_cast<unsigned long long>(
                              h.verifier_fingerprint),
                          static_cast<unsigned long long>(
                              inspector::kPlanVerifierFingerprint)));
  h.content_hash = r.u64();
  h.num_procs = r.u32();
  h.k = r.u32();
  h.distribution = r.u32();
  h.block_cyclic_size = r.u32();
  h.dedup_buffers = r.u32();
  h.num_nodes = r.u32();
  h.num_edges = r.u64();
  h.num_refs = r.u32();
  h.num_reduction_arrays = r.u32();
  h.num_node_read_arrays = r.u32();
  // The (formerly reserved) strategy field. Values above the known
  // range are rejected like any other structural inconsistency; files
  // from before strategies existed wrote 0 == Auto.
  h.strategy = r.u32();
  if (h.strategy > static_cast<std::uint32_t>(StrategyKind::Atomic))
    return fail("E-STORE-PARSE",
                strformat("unknown lowering strategy %u in header",
                          h.strategy));
  h.payload_bytes = r.u64();
  h.payload_checksum = r.u64();
  // v2: layout kinds + tile size.
  h.layout = r.u32();
  h.applied_layout = r.u32();
  h.tile_iters = r.u32();
  r.u32();  // pad
  if (r.fail())
    return fail("E-STORE-TRUNC",
                strformat("file holds %zu bytes, the header alone is %zu",
                          bytes.size(), kPlanHeaderBytes));
  if (h.layout > 2 || h.applied_layout > 2)
    return fail("E-STORE-PARSE",
                strformat("unknown layout kind %u/%u in header", h.layout,
                          h.applied_layout));
  if (out) *out = h;
  return true;
}

/// Bounds-checked structural parse of the payload into `plan`. Arrays are
/// adopted as views into `payload` (which must be the long-lived mapping,
/// not a transient buffer). Returns false with `detail` on any
/// inconsistency with the header counts; never reads out of bounds (the
/// ByteReader's sticky fail flag covers overrun, the explicit checks
/// cover semantic mismatches).
bool parse_payload(const PlanFileHeader& h,
                   std::span<const std::byte> payload, ExecutionPlan* plan,
                   std::string* code, std::string* detail) {
  const auto fail = [&](std::string d) {
    if (detail) *detail = std::move(d);
    return false;
  };
  ByteReader r(payload);
  plan->build_seconds = r.f64();

  // v2: the layout permutation (and inverse) ride ahead of the inspector
  // records. Either both empty (no renumbering) or both num_nodes long
  // and mutually inverse bijections — anything else is E-STORE-PERM, a
  // coded rejection, never a crash at execution time.
  plan->perm.adopt(r.u32_array());
  plan->perm_inv.adopt(r.u32_array());
  if (r.fail()) return fail("payload ends inside the layout permutation");
  const std::size_t np = plan->perm.size();
  if (np != plan->perm_inv.size() || (np != 0 && np != h.num_nodes)) {
    if (code) *code = "E-STORE-PERM";
    return fail(strformat("layout permutation arrays hold %zu/%zu entries "
                          "for %u nodes",
                          np, plan->perm_inv.size(), h.num_nodes));
  }
  for (std::size_t v = 0; v < np; ++v) {
    const std::uint32_t pv = plan->perm[v];
    if (pv >= np || plan->perm_inv[pv] != v) {
      if (code) *code = "E-STORE-PERM";
      return fail(strformat("layout permutation is not a bijection at "
                            "element %zu",
                            v));
    }
  }

  const std::uint64_t phases_per_proc =
      static_cast<std::uint64_t>(h.k) * h.num_procs;
  plan->insp.clear();
  plan->insp.reserve(h.num_procs);
  for (std::uint32_t p = 0; p < h.num_procs; ++p) {
    inspector::InspectorResult insp;
    insp.num_buffer_slots = r.u32();
    r.u32();  // pad
    insp.local_array_size = r.u64();
    const std::uint64_t num_phases = r.u64();
    if (r.fail() || num_phases != phases_per_proc)
      return fail(strformat("processor %u claims %llu phases, the "
                            "schedule has %llu",
                            p, static_cast<unsigned long long>(num_phases),
                            static_cast<unsigned long long>(
                                phases_per_proc)));
    insp.phases.resize(static_cast<std::size_t>(num_phases));
    for (inspector::PhaseSchedule& ph : insp.phases) {
      ph.iter_global.adopt(r.u32_array());
      ph.iter_local.adopt(r.u32_array());
      const std::span<const std::uint32_t> flat = r.u32_array();
      ph.indir_flat.adopt(flat);
      ph.copy_dst.adopt(r.u32_array());
      ph.copy_src.adopt(r.u32_array());
      if (r.fail()) return fail("payload ends inside a phase record");
      const std::size_t n = ph.iter_global.size();
      if (ph.iter_local.size() != n ||
          flat.size() != static_cast<std::size_t>(h.num_refs) * n ||
          ph.copy_dst.size() != ph.copy_src.size())
        return fail(strformat("processor %u: phase array lengths "
                              "disagree with each other or with "
                              "num_refs=%u",
                              p, h.num_refs));
      // Reconstruct the indir rows as subspans of the flattened block —
      // the stored form carries no independent row data, and the shared
      // pointers are what lets the verifier prove the flatten invariant
      // by identity.
      ph.indir.resize(h.num_refs);
      for (std::uint32_t ref = 0; ref < h.num_refs; ++ref)
        ph.indir[ref].adopt(flat.subspan(static_cast<std::size_t>(ref) * n,
                                         n));
    }
    insp.assigned_phase.adopt(r.u32_array());
    insp.slot_elem.adopt(r.u32_array());
    insp.free_slots.adopt(r.u32_array());
    if (r.fail()) return fail("payload ends inside a processor record");
    if (insp.slot_elem.size() != insp.num_buffer_slots)
      return fail(strformat("processor %u: %zu slot_elem entries for %u "
                            "buffer slots",
                            p, insp.slot_elem.size(),
                            insp.num_buffer_slots));
    if (!insp.free_slots.empty())
      return fail(strformat("processor %u is not canonical (%zu free "
                            "slots); stored plans must be patchable "
                            "bases",
                            p, insp.free_slots.size()));
    plan->insp.push_back(std::move(insp));
  }
  if (r.remaining() != 0)
    return fail(strformat("%zu trailing bytes after the last processor",
                          r.remaining()));
  return true;
}

PlanLoadResult rejected(std::string code, std::string detail) {
  PlanLoadResult out;
  out.error_code = std::move(code);
  out.detail = std::move(detail);
  return out;
}

}  // namespace

std::vector<std::byte> serialize_plan(const ExecutionPlan& plan,
                                      std::uint64_t content_hash) {
  ByteWriter payload;
  payload.f64(plan.build_seconds);
  payload.u32_array(plan.perm);
  payload.u32_array(plan.perm_inv);
  for (const inspector::InspectorResult& insp : plan.insp) {
    payload.u32(insp.num_buffer_slots);
    payload.u32(0);  // pad
    payload.u64(insp.local_array_size);
    payload.u64(insp.phases.size());
    for (const inspector::PhaseSchedule& ph : insp.phases) {
      payload.u32_array(ph.iter_global);
      payload.u32_array(ph.iter_local);
      // The indir rows are derivable from the flattened block (the
      // E-PLAN-FLAT invariant) and are deliberately not stored.
      payload.u32_array(ph.indir_flat);
      payload.u32_array(ph.copy_dst);
      payload.u32_array(ph.copy_src);
    }
    payload.u32_array(insp.assigned_phase);
    payload.u32_array(insp.slot_elem);
    payload.u32_array(insp.free_slots);
  }

  ByteWriter file;
  file.u64(kPlanMagic);
  file.u32(kPlanFormatVersion);
  file.u32(kPlanEndianTag);
  file.u64(inspector::kPlanVerifierFingerprint);
  file.u64(content_hash);
  file.u32(plan.options.num_procs);
  file.u32(plan.options.k);
  file.u32(static_cast<std::uint32_t>(plan.options.distribution));
  file.u32(plan.options.block_cyclic_size);
  file.u32(plan.options.inspector.dedup_buffers ? 1u : 0u);
  file.u32(plan.shape.num_nodes);
  file.u64(plan.shape.num_edges);
  file.u32(plan.shape.num_refs);
  file.u32(plan.shape.num_reduction_arrays);
  file.u32(plan.shape.num_node_read_arrays);
  file.u32(static_cast<std::uint32_t>(plan.options.strategy));
  file.u64(payload.size());
  file.u64(support::fast_hash64(payload.bytes().data(), payload.size()));
  file.u32(static_cast<std::uint32_t>(plan.options.layout));
  file.u32(static_cast<std::uint32_t>(plan.applied_layout));
  file.u32(plan.tile_iters);
  file.u32(0);  // pad to the 112-byte header

  std::vector<std::byte> out;
  out.reserve(kPlanHeaderBytes + payload.size());
  out.insert(out.end(), file.bytes().begin(), file.bytes().end());
  out.insert(out.end(), payload.bytes().begin(), payload.bytes().end());
  return out;
}

std::optional<PlanFileHeader> read_plan_header(const std::string& path,
                                               std::string* code,
                                               std::string* detail) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    if (code) *code = "E-STORE-OPEN";
    if (detail) *detail = "cannot open " + path;
    return std::nullopt;
  }
  std::byte header[kPlanHeaderBytes];
  in.read(reinterpret_cast<char*>(header), sizeof(header));
  const std::span<const std::byte> got{
      header, static_cast<std::size_t>(in.gcount() > 0 ? in.gcount() : 0)};
  PlanFileHeader h;
  if (!decode_header(got, &h, code, detail)) return std::nullopt;
  return h;
}

PlanLoadResult load_plan_file(const std::string& path) {
  std::string error;
  const std::shared_ptr<support::MappedFile> file =
      support::MappedFile::open(path, &error);
  if (!file) return rejected("E-STORE-OPEN", error);
  const std::span<const std::byte> bytes = file->bytes();

  PlanFileHeader h;
  std::string code, detail;
  if (!decode_header(bytes, &h, &code, &detail))
    return rejected(std::move(code), std::move(detail));

  const std::size_t present = bytes.size() - kPlanHeaderBytes;
  if (present < h.payload_bytes)
    return rejected(
        "E-STORE-TRUNC",
        strformat("header promises %llu payload bytes, %zu present",
                  static_cast<unsigned long long>(h.payload_bytes),
                  present));
  if (present > h.payload_bytes)
    return rejected("E-STORE-PARSE",
                    strformat("%zu bytes beyond the declared payload",
                              present - h.payload_bytes));
  const std::span<const std::byte> payload =
      bytes.subspan(kPlanHeaderBytes,
                    static_cast<std::size_t>(h.payload_bytes));

  // The checksum walk and the structural parse both sweep the payload;
  // overlap them (the parse only builds bounds-checked views, so running
  // it on not-yet-proven bytes is memory-safe — its *result* is not
  // trusted until the checksum lands).
  std::uint64_t checksum = 0;
  std::thread checksum_thread([&] {
    checksum = support::fast_hash64(payload.data(), payload.size());
  });

  if (h.distribution > 2 || h.num_procs == 0 || h.k == 0) {
    checksum_thread.join();
    if (checksum != h.payload_checksum)
      return rejected("E-STORE-CHECKSUM", "payload hash mismatch");
    return rejected("E-STORE-PARSE",
                    "header parameters out of range (distribution, procs, "
                    "or k)");
  }

  ExecutionPlan plan{
      KernelShape{h.num_nodes, h.num_edges, h.num_refs,
                  h.num_reduction_arrays, h.num_node_read_arrays},
      PlanOptions{},
      inspector::RotationSchedule(h.num_nodes, h.num_procs, h.k),
      {},
      0.0,
      file};
  plan.options.num_procs = h.num_procs;
  plan.options.k = h.k;
  plan.options.distribution =
      static_cast<inspector::Distribution>(h.distribution);
  plan.options.block_cyclic_size = h.block_cyclic_size;
  plan.options.inspector.dedup_buffers = h.dedup_buffers != 0;
  plan.options.strategy = static_cast<StrategyKind>(h.strategy);
  plan.options.layout = static_cast<LayoutKind>(h.layout);
  plan.applied_layout = static_cast<LayoutKind>(h.applied_layout);
  plan.tile_iters = h.tile_iters;
  // The load itself is the proof; re-verification on use is the
  // admission paths' call, not an obligation baked into the plan.
  plan.options.verify = false;

  std::string parse_code = "E-STORE-PARSE";
  std::string parse_detail;
  const bool parsed =
      parse_payload(h, payload, &plan, &parse_code, &parse_detail);

  checksum_thread.join();
  // Corruption names its root cause: a flipped bit usually breaks the
  // parse too, but E-STORE-CHECKSUM is the diagnosis.
  if (checksum != h.payload_checksum)
    return rejected("E-STORE-CHECKSUM", "payload hash mismatch");
  if (!parsed)
    return rejected(std::move(parse_code), std::move(parse_detail));

  // Budget-mode verification: the same invariant set the producer's
  // fingerprint promises, proven against *these* bytes.
  inspector::PlanVerifyOptions vopt;
  vopt.exhaustive = false;
  const inspector::PlanVerifyReport report = inspector::verify_plan(
      plan.sched, plan.insp, plan.shape.num_edges, plan.shape.num_refs,
      vopt);
  if (!report.ok())
    return rejected("E-STORE-VERIFY",
                    strformat("%llu invariant violation(s): ",
                              static_cast<unsigned long long>(
                                  report.violations)) +
                        report.first_error());

  PlanLoadResult out;
  out.zero_copy = file->mapped();
  out.plan = std::make_shared<const ExecutionPlan>(std::move(plan));
  return out;
}

bool plans_bit_identical(const ExecutionPlan& a, const ExecutionPlan& b) {
  const auto same_shape = [](const KernelShape& x, const KernelShape& y) {
    return x.num_nodes == y.num_nodes && x.num_edges == y.num_edges &&
           x.num_refs == y.num_refs &&
           x.num_reduction_arrays == y.num_reduction_arrays &&
           x.num_node_read_arrays == y.num_node_read_arrays;
  };
  if (!same_shape(a.shape, b.shape)) return false;
  if (a.options.num_procs != b.options.num_procs ||
      a.options.k != b.options.k ||
      a.options.distribution != b.options.distribution ||
      a.options.inspector.dedup_buffers !=
          b.options.inspector.dedup_buffers ||
      a.options.strategy != b.options.strategy ||
      a.options.layout != b.options.layout ||
      a.applied_layout != b.applied_layout ||
      a.tile_iters != b.tile_iters || !(a.perm == b.perm) ||
      !(a.perm_inv == b.perm_inv))
    return false;
  if (a.options.distribution == inspector::Distribution::BlockCyclic &&
      a.options.block_cyclic_size != b.options.block_cyclic_size)
    return false;
  if (a.insp.size() != b.insp.size()) return false;
  for (std::size_t p = 0; p < a.insp.size(); ++p) {
    const inspector::InspectorResult& x = a.insp[p];
    const inspector::InspectorResult& y = b.insp[p];
    if (x.num_buffer_slots != y.num_buffer_slots ||
        x.local_array_size != y.local_array_size ||
        x.phases.size() != y.phases.size() ||
        !(x.assigned_phase == y.assigned_phase) ||
        !(x.slot_elem == y.slot_elem) || !(x.free_slots == y.free_slots))
      return false;
    for (std::size_t ph = 0; ph < x.phases.size(); ++ph) {
      const inspector::PhaseSchedule& u = x.phases[ph];
      const inspector::PhaseSchedule& v = y.phases[ph];
      if (!(u.iter_global == v.iter_global) ||
          !(u.iter_local == v.iter_local) ||
          !(u.indir_flat == v.indir_flat) || !(u.copy_dst == v.copy_dst) ||
          !(u.copy_src == v.copy_src) || u.indir.size() != v.indir.size())
        return false;
      for (std::size_t ref = 0; ref < u.indir.size(); ++ref)
        if (!(u.indir[ref] == v.indir[ref])) return false;
    }
  }
  return true;
}

}  // namespace earthred::core
