#include "core/cg.hpp"

#include <cmath>

#include "core/collectives.hpp"
#include "core/mvm_engine.hpp"
#include "support/check.hpp"

namespace earthred::core {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

CgResult reference_cg(const sparse::CsrMatrix& A, std::span<const double> x,
                      double shift, std::uint32_t cg_iterations) {
  ER_EXPECTS(A.nrows() == A.ncols());
  ER_EXPECTS(x.size() == A.nrows());
  const std::size_t n = x.size();

  CgResult res;
  res.z.assign(n, 0.0);
  std::vector<double> r(x.begin(), x.end());
  std::vector<double> p = r;
  std::vector<double> q(n, 0.0);
  double rho = dot(r, r);

  for (std::uint32_t it = 0; it < cg_iterations; ++it) {
    A.spmv(p, q);
    const double alpha = rho / dot(p, q);
    for (std::size_t i = 0; i < n; ++i) {
      res.z[i] += alpha * p[i];
      r[i] -= alpha * q[i];
    }
    const double rho0 = rho;
    rho = dot(r, r);
    const double beta = rho / rho0;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
  }
  res.rnorm = std::sqrt(rho);
  res.zeta = shift + 1.0 / dot(x, res.z);
  return res;
}

CgResult run_cg(const sparse::CsrMatrix& A, std::span<const double> x,
                double shift, const CgOptions& opt) {
  ER_EXPECTS(A.nrows() == A.ncols());
  ER_EXPECTS(x.size() == A.nrows());
  ER_EXPECTS(opt.cg_iterations >= 1);
  const std::size_t n = x.size();
  const std::uint32_t P = opt.num_procs;

  CgResult res;
  res.z.assign(n, 0.0);
  std::vector<double> r(x.begin(), x.end());
  std::vector<double> p = r;

  // Every vector operation runs as a real fiber graph on the simulated
  // machine (core/collectives.hpp): local work + ring reduce/broadcast.
  CollectiveOptions copt;
  copt.num_procs = P;
  copt.machine = opt.machine;

  double rho = 0.0;
  res.vector_cycles += simulate_dot(r, r, &rho, copt);

  MvmOptions mopt;
  mopt.num_procs = P;
  mopt.k = opt.k;
  mopt.sweeps = 1;
  mopt.machine = opt.machine;
  mopt.collect_results = true;

  for (std::uint32_t it = 0; it < opt.cg_iterations; ++it) {
    // q = A p on the simulated machine (rotation strategy). The column
    // bucketing depends only on A's structure, so its cost is charged
    // once, on the first iteration.
    const RunResult mv = run_mvm_engine(A, p, mopt);
    res.mvm_cycles += mv.total_cycles -
                      (it == 0 ? 0 : mv.inspector_cycles);
    const std::vector<double>& q = mv.reduction[0];

    double pq = 0.0;
    res.vector_cycles += simulate_dot(p, q, &pq, copt);
    const double alpha = rho / pq;
    res.vector_cycles += simulate_axpy(alpha, p, res.z, copt);
    res.vector_cycles += simulate_axpy(-alpha, q, r, copt);

    const double rho0 = rho;
    res.vector_cycles += simulate_dot(r, r, &rho, copt);
    const double beta = rho / rho0;
    res.vector_cycles += simulate_axpy(1.0, r, p, copt, beta);  // p=r+beta*p
  }
  res.rnorm = std::sqrt(rho);
  double xz = 0.0;
  res.vector_cycles += simulate_dot(x, res.z, &xz, copt);
  res.zeta = shift + 1.0 / xz;
  res.total_cycles = res.mvm_cycles + res.vector_cycles;
  return res;
}

}  // namespace earthred::core
