// Native execution of the rotation strategy on host threads.
//
// The discrete-event simulator (reduction_engine.cpp) is the measurement
// vehicle; this engine runs the *same* phased schedule as real
// `std::thread`s — one per simulated processor — with bounded-buffer
// message staging standing in for the EARTH network. It exists to
// demonstrate (and test) that the execution strategy is a correct
// parallel algorithm under genuine asynchrony, as the reproduction plan
// prescribes ("emulate fine-grained threads with tasks").
//
// Synchronization structure (mirrors the fiber graph):
//   * portion rotation: a staging buffer per (receiver, phase) guarded by
//     full/free semaphores — the sender copies the portion in and posts
//     `full`; the receiver drains it at the start of the owning phase and
//     posts `free` (so a fast sender can run at most one sweep ahead);
//   * node-read replication: a staging buffer per (receiver, portion)
//     with the same protocol, drained at each sweep boundary.
#pragma once

#include <cstdint>

#include "core/kernel.hpp"
#include "inspector/distribution.hpp"
#include "inspector/light_inspector.hpp"

namespace earthred::core {

struct NativeOptions {
  std::uint32_t num_procs = 2;
  std::uint32_t k = 2;
  inspector::Distribution distribution = inspector::Distribution::Cyclic;
  /// Chunk size when distribution == BlockCyclic.
  std::uint32_t block_cyclic_size = 16;
  std::uint32_t sweeps = 1;
  inspector::LightInspectorOptions inspector{};
  /// Wall-clock seconds any single staging-buffer wait may block before
  /// the whole run is declared stalled and aborted with a check_error
  /// naming the waiting processor and protocol step — a deadlocked
  /// protocol surfaces as a diagnostic instead of a hung process. 0 waits
  /// forever (the pre-watchdog behavior).
  double stall_timeout = 30.0;
  /// Test hook: silently skip one ring forward, simulating a lost
  /// message, so the stall watchdog can be exercised deterministically.
  struct LostForward {
    bool enabled = false;
    std::uint32_t proc = 0;
    std::uint32_t phase = 0;
    std::uint32_t sweep = 0;
  } lose_forward;
};

struct NativeResult {
  /// Wall-clock seconds of the threaded execution (excludes inspector).
  double wall_seconds = 0.0;
  /// Final reduction arrays ([array][element], global indexing).
  std::vector<std::vector<double>> reduction;
  /// Final node read arrays.
  std::vector<std::vector<double>> node_read;
};

/// Runs `kernel` with real threads. Throws on invalid shapes and raises
/// check_error when a staging-buffer wait exceeds stall_timeout (lost
/// message / protocol deadlock); a protocol violation that still
/// completes surfaces as a wrong result, which the caller should check
/// against run_sequential_kernel.
NativeResult run_native_engine(const PhasedKernel& kernel,
                               const NativeOptions& opt);

}  // namespace earthred::core
