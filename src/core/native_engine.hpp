// Native execution of the rotation strategy on host threads.
//
// The discrete-event simulator (reduction_engine.cpp) is the measurement
// vehicle; this engine runs the *same* phased schedule as real
// `std::thread`s — one per simulated processor — with bounded-buffer
// message staging standing in for the EARTH network. It exists to
// demonstrate (and test) that the execution strategy is a correct
// parallel algorithm under genuine asynchrony, as the reproduction plan
// prescribes ("emulate fine-grained threads with tasks").
//
// The expensive preprocessing products — iteration distribution, rotation
// schedule, and LightInspector output — are factored into an immutable
// `ExecutionPlan` that executors take by `const&`. A plan depends only on
// the kernel's indirection arrays and the `PlanOptions`, never on sweep
// count or timeouts, so one plan can be built once and shared by any
// number of concurrent or repeated runs (the compile-once/run-many shape
// the service layer's PlanCache exploits; see src/service/).
//
// Synchronization structure (mirrors the fiber graph):
//   * portion rotation: a staging buffer per (receiver, phase) guarded by
//     full/free semaphores — the sender copies the portion in and posts
//     `full`; the receiver drains it at the start of the owning phase and
//     posts `free` (so a fast sender can run at most one sweep ahead);
//   * node-read replication: a staging buffer per (receiver, portion)
//     with the same protocol, drained at each sweep boundary.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "core/kernel.hpp"
#include "core/layout.hpp"
#include "core/strategy.hpp"
#include "inspector/distribution.hpp"
#include "inspector/light_inspector.hpp"
#include "inspector/plan_verifier.hpp"
#include "inspector/rotation.hpp"

namespace earthred::core {

/// The parameters preprocessing depends on — everything that goes into an
/// ExecutionPlan (and therefore into the PlanCache key). Per-run knobs
/// (sweeps, timeouts) live in SweepOptions instead.
struct PlanOptions {
  std::uint32_t num_procs = 2;
  std::uint32_t k = 2;
  inspector::Distribution distribution = inspector::Distribution::Cyclic;
  /// Chunk size when distribution == BlockCyclic.
  std::uint32_t block_cyclic_size = 16;
  inspector::LightInspectorOptions inspector{};
  /// Host threads used by build_execution_plan to run the per-processor
  /// reference gather + LightInspector: 1 = serial (the pre-batching
  /// behavior), 0 = one per hardware core, N = exactly N. The plan
  /// produced is byte-identical regardless — each processor's inspector
  /// run is independent and deterministic — so this knob deliberately
  /// does NOT enter the PlanCache key.
  std::uint32_t build_threads = 1;
  /// Run the structural plan verifier (inspector/plan_verifier.hpp) on
  /// the freshly built plan and throw verify_error if any rotation
  /// invariant fails. Defaults on in Debug builds (and CI, which builds
  /// Debug); off in Release, where the inspector is trusted and the
  /// <5%-of-cold-build budget matters. Like build_threads, this does not
  /// change the plan produced, so it is NOT part of the PlanCache key.
#ifdef NDEBUG
  bool verify = false;
#else
  bool verify = true;
#endif
  /// Lowering strategy (core/strategy.hpp): Auto resolves through the
  /// cost model each time the plan runs; a concrete value forces that
  /// executor. Strategies can change result bits, so — unlike backend or
  /// verify — this IS part of the PlanCache key and the persisted plan
  /// header. Appended last so positional aggregate initializers written
  /// before the field existed stay valid.
  StrategyKind strategy = StrategyKind::Auto;
  /// Locality layout (core/layout.hpp): None reproduces the paper's plan
  /// exactly; Rcm/Auto run the three-step layout pass inside
  /// build_execution_plan. Results are bit-identical across layouts by
  /// construction, but the plan *bytes* differ, so — like strategy — this
  /// is part of the PlanCache key, the plan-store path, the persisted
  /// header, and the shard content key. Appended after `strategy` for the
  /// same positional-initializer reason.
  LayoutKind layout = LayoutKind::None;
  /// Override for the cache-blocked tile size (iterations per tile) the
  /// layout pass computes from the detected cache geometry; 0 = derive
  /// via core::layout_tile_iters. Ignored when the effective layout is
  /// None. Part of the plan (and thus the key) because it changes
  /// ExecutionPlan::tile_iters.
  std::uint32_t layout_tile_iters = 0;
};

/// The reusable preprocessing product: rotation schedule plus one
/// LightInspector result per processor. Immutable after build —
/// `run_native_plan` only reads it, so a single instance may back many
/// concurrent executions.
struct ExecutionPlan {
  KernelShape shape;
  PlanOptions options;
  inspector::RotationSchedule sched;
  /// Per-processor inspector output (phases, redirected indirection,
  /// second-loop copy lists).
  std::vector<inspector::InspectorResult> insp;
  /// Host seconds spent building this plan (distribution + inspector).
  double build_seconds = 0.0;
  /// Backing storage for zero-copy loads: a plan deserialized from the
  /// persistent plan store adopts its large arrays as views into the
  /// store file's memory mapping, and this handle keeps that mapping
  /// alive for the plan's lifetime (type-erased so core does not depend
  /// on the io layer). Built plans leave it null. A plan *patched* from a
  /// loaded base inherits the handle, because untouched phases still view
  /// the base's mapping.
  std::shared_ptr<const void> storage;

  // ---- layout products (core/layout.hpp) ------------------------------
  /// Node renumbering applied by the layout pass: perm[old] = new,
  /// perm_inv[new] = old. Empty = identity (no renumbering — either the
  /// layout is None, or the pass degenerated to the identity). When
  /// non-empty, the plan's redirected references live in the *relabeled*
  /// element space: run_native_plan executes a renumbered clone of the
  /// kernel (PhasedKernel::clone_renumbered) and un-permutes the result
  /// arrays at read-out. U32Buf so loaded plans adopt zero-copy views.
  inspector::U32Buf perm;
  inspector::U32Buf perm_inv;
  /// What the layout pass actually did: Rcm when the three-step pass ran,
  /// None when options.layout was None or Auto fell back (kernel cannot
  /// renumber). Never Auto.
  LayoutKind applied_layout = LayoutKind::None;
  /// Cache-blocking tile size for the batched phase loops (0 = untiled;
  /// always 0 when applied_layout is None, preserving the pre-layout hot
  /// path exactly).
  std::uint32_t tile_iters = 0;

  /// Approximate heap footprint in bytes (drives PlanCache LRU budgets).
  std::uint64_t byte_size() const;
};

/// Runs distribution + LightInspector for every processor and returns the
/// immutable plan. Throws on invalid shapes (e.g. more portions than
/// elements), and — when opt.verify is set — verify_error if the built
/// plan violates a rotation invariant (structural verification only; the
/// kernel cross-check below is reserved for admission paths).
ExecutionPlan build_execution_plan(const PhasedKernel& kernel,
                                   const PlanOptions& opt);

/// Full plan verification: the structural invariant pass of
/// inspector::verify_plan plus — when `kernel` is non-null — a cross-check
/// that every scheduled reference resolves to the element the kernel's
/// indirection actually names (direct entries must equal ref(r, iter);
/// redirected entries must buffer that element), reported as
/// E-PLAN-REF-MISMATCH. The cross-check costs one virtual ref() call per
/// scheduled reference, which is why build_execution_plan doesn't do it;
/// the service's admission control, the CLI's --check, and the seeded-
/// defect tests do. Never throws on plan defects.
inspector::PlanVerifyReport verify_execution_plan(
    const ExecutionPlan& plan, const PhasedKernel* kernel = nullptr,
    const inspector::PlanVerifyOptions& vopt = {});

/// Incremental re-plan (the adaptive path): produces the plan
/// build_execution_plan would build for `kernel`, but by patching
/// `previous` through inspector::update_light_inspector instead of
/// rebuilding from scratch. `changed_iterations` lists the global
/// iteration ids whose indirection references differ from the kernel the
/// previous plan was built for; `kernel` carries the *new* references.
/// The result is bit-identical to a fresh build (property-tested in
/// tests/test_plan_patch.cpp) at a cost proportional to the touched
/// iterations per processor. Requires an identical shape and identical
/// PlanOptions (same distribution, procs, k) and a non-dedup plan —
/// violations throw precondition_error; when opt.verify is set the
/// patched plan is re-verified in the same mode as a cold build and a
/// violation throws verify_error. Callers wanting transparent fallback
/// (the PlanCache) catch and rebuild.
ExecutionPlan patch_execution_plan(
    const PhasedKernel& kernel, const ExecutionPlan& previous,
    std::span<const std::uint32_t> changed_iterations);

/// NUMA/affinity knobs for the native engine's worker threads (the
/// ROADMAP's pin + first-touch open item). Both default off; pinning is a
/// best-effort no-op on platforms without pthread CPU affinity.
struct AffinityOptions {
  /// Pin worker thread p to CPU (p mod hardware_concurrency) via
  /// pthread_setaffinity_np where available.
  bool pin_threads = false;
  /// Allocate and zero each processor's reduction/node-read arrays and
  /// its *receiving* staging buffers on the worker thread that will use
  /// them (first-touch page placement on NUMA hosts) instead of on the
  /// caller's thread. Results are unaffected — only page placement moves.
  bool first_touch = false;
};

/// Per-run execution knobs — do not affect the plan.
struct SweepOptions {
  std::uint32_t sweeps = 1;
  /// Wall-clock seconds any single staging-buffer wait may block before
  /// the whole run is declared stalled and aborted with a check_error
  /// naming the waiting processor and protocol step — a deadlocked
  /// protocol surfaces as a diagnostic instead of a hung process. 0 waits
  /// forever (the pre-watchdog behavior).
  double stall_timeout = 30.0;
  /// Test hook: silently skip one ring forward, simulating a lost
  /// message, so the stall watchdog can be exercised deterministically.
  struct LostForward {
    bool enabled = false;
    std::uint32_t proc = 0;
    std::uint32_t phase = 0;
    std::uint32_t sweep = 0;
  } lose_forward;
  /// Execute each phase through PhasedKernel::compute_phase — one batched
  /// call streaming the flattened indirection block — instead of a
  /// per-edge virtual compute_edge call with a heap-backed `redirected`
  /// scatter copy. Results are bit-identical either way (the batch loops
  /// perform the same floating-point operations in the same order;
  /// tests/test_batch_equivalence.cpp proves it); off reproduces the
  /// per-edge executor.
  bool batch = true;
  AffinityOptions affinity{};
  /// Compute backend for the batched phase loops (see core/backend.hpp).
  /// Auto resolves to the widest tier the host supports; a concrete
  /// request that the host cannot run raises "E-BACKEND-UNSUPPORTED".
  /// Backends are bit-identical by contract, so this is a run knob only
  /// — it never forks plans, caches, or shard routing.
  BackendKind backend = BackendKind::Auto;
};

/// One-shot options: plan parameters plus run parameters (the original
/// pre-service interface, kept for callers that don't reuse plans).
struct NativeOptions {
  std::uint32_t num_procs = 2;
  std::uint32_t k = 2;
  inspector::Distribution distribution = inspector::Distribution::Cyclic;
  /// Chunk size when distribution == BlockCyclic.
  std::uint32_t block_cyclic_size = 16;
  std::uint32_t sweeps = 1;
  inspector::LightInspectorOptions inspector{};
  double stall_timeout = 30.0;
  SweepOptions::LostForward lose_forward{};
  std::uint32_t build_threads = 1;
  bool batch = true;
  AffinityOptions affinity{};
  BackendKind backend = BackendKind::Auto;
  StrategyKind strategy = StrategyKind::Auto;
  LayoutKind layout = LayoutKind::None;

  PlanOptions plan() const {
    PlanOptions p{num_procs,         k,         distribution,
                  block_cyclic_size, inspector, build_threads};
    p.strategy = strategy;
    p.layout = layout;
    return p;
  }
  SweepOptions sweep() const {
    return {sweeps, stall_timeout, lose_forward, batch, affinity, backend};
  }
};

struct NativeResult {
  /// Wall-clock seconds of the threaded execution (excludes inspector).
  double wall_seconds = 0.0;
  /// Final reduction arrays ([array][element], global indexing).
  std::vector<std::vector<double>> reduction;
  /// Final node read arrays.
  std::vector<std::vector<double>> node_read;
  /// Concrete compute backend the batched loops ran on (Scalar when the
  /// per-edge executor was used or no SIMD tier was available).
  BackendKind backend = BackendKind::Scalar;
  /// Concrete lowering strategy that executed (never Auto; the executor
  /// resolves the plan's request through core/strategy.hpp).
  StrategyKind strategy = StrategyKind::Phased;
};

/// Executes `sweeps` time steps of `kernel` under a prebuilt plan. The
/// plan is read-only and may be shared by concurrent callers; `kernel`
/// must be the kernel (or an identically-shaped twin) the plan was built
/// from. Raises check_error when a staging-buffer wait exceeds
/// stall_timeout (lost message / protocol deadlock).
NativeResult run_native_plan(const PhasedKernel& kernel,
                             const ExecutionPlan& plan,
                             const SweepOptions& opt);

/// Builds a plan and runs it once (convenience; see run_native_plan). A
/// protocol violation that still completes surfaces as a wrong result,
/// which the caller should check against run_sequential_kernel.
NativeResult run_native_engine(const PhasedKernel& kernel,
                               const NativeOptions& opt);

}  // namespace earthred::core
