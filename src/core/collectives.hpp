// Collective operations built from fibers on the simulated EARTH machine.
//
// The paper's predecessor work (Theobald et al. [23]) hand-coded sparse
// MVM and the NAS CG solver on EARTH; CG needs global dot products and
// vector updates besides the matrix-vector product. These engines run
// those collectives as real fiber graphs — a ring reduce-then-broadcast
// for scalars, a pipelined ring all-gather for vectors — so the CG driver
// (core/cg.hpp) can charge measured, not modeled, cycles.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "earth/types.hpp"

namespace earthred::core {

struct CollectiveOptions {
  std::uint32_t num_procs = 2;
  earth::MachineConfig machine{};
};

/// Simulates a distributed dot product of two `n`-element vectors (block
/// distribution): local partial sums on every node, then a ring reduce and
/// ring broadcast of the scalar. Returns the makespan. The numeric result
/// equals the host dot product and is written to *out when non-null.
earth::Cycles simulate_dot(std::span<const double> a,
                           std::span<const double> b, double* out,
                           const CollectiveOptions& opt);

/// Simulates y = alpha*x + beta*y over block-distributed vectors (pure
/// local work; the makespan is the slowest node). Mutates `y` host-side.
earth::Cycles simulate_axpy(double alpha, std::span<const double> x,
                            std::span<double> y,
                            const CollectiveOptions& opt,
                            double beta = 1.0);

/// Simulates a ring all-gather of a block-distributed `n`-element vector
/// (each node starts with its block, ends with the whole vector): P-1
/// pipelined ring steps. Returns the makespan.
earth::Cycles simulate_allgather(std::uint64_t n,
                                 const CollectiveOptions& opt);

}  // namespace earthred::core
