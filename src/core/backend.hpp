#pragma once

// Compute-backend selection for the batched phase hot path.
//
// A "backend" is an implementation tier of the per-kernel batch loops
// (src/kernels/ops_simd.cpp): plain scalar, AVX2, or AVX-512. All tiers are
// bit-identical by contract — they perform the same floating-point
// operations in the same order as the per-edge reference path, which is
// enforced by test_batch_equivalence. Because results cannot differ, the
// backend is a *run* knob (SweepOptions), never a *plan* knob: it is
// excluded from PlanOptions, the PlanCache key, and shard content_key().

#include <string>
#include <string_view>
#include <vector>

// Whether the SIMD tiers are compiled in at all. Per-function
// __attribute__((target(...))) with <immintrin.h> needs an x86-64
// GCC/Clang toolchain; elsewhere only the scalar tier exists.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define EARTHRED_HAS_X86_BACKENDS 1
#else
#define EARTHRED_HAS_X86_BACKENDS 0
#endif

namespace earthred::core {

enum class BackendKind {
  Auto,     ///< Pick the widest tier the host supports.
  Scalar,   ///< Portable reference loops (always available).
  Avx2,     ///< 4-wide double lanes, VEX gathers.
  Avx512,   ///< 8-wide double lanes (AVX-512F).
};

/// "auto", "scalar", "avx2", "avx512".
std::string_view to_string(BackendKind kind);

/// Parses a backend name; throws `check_error` ("E-BACKEND-NAME") on an
/// unknown spelling.
BackendKind parse_backend(std::string_view name);

/// True when `kind` can execute on this host (compiled in + CPU/OS
/// support). `Auto` and `Scalar` are always supported.
bool backend_supported(BackendKind kind);

/// Applies the `EARTHRED_FORCE_BACKEND` environment override: when
/// `requested` is Auto and the variable names a concrete tier, that tier
/// becomes the effective request (it must still pass `backend_supported`,
/// so forcing an absent tier yields the same coded rejection as
/// `--backend=`). An explicit request always wins over the environment.
BackendKind effective_backend(BackendKind requested);

/// Resolves a request to the concrete tier that will run: Auto picks the
/// widest supported tier; a concrete request is validated. Throws
/// `check_error` with "E-BACKEND-UNSUPPORTED" when the requested tier is
/// not available on this host.
BackendKind resolve_backend(BackendKind requested);

/// Concrete tiers compiled into this binary, widest last.
const std::vector<BackendKind>& compiled_backends();

}  // namespace earthred::core
