// Rotation engine for sparse matrix-vector multiply (Sec. 5.3).
//
// mvm is the case where the *reduction* array (y) is not accessed through
// indirection — each row's result is local to the processor owning the
// row — while the *gathered* array (x) is. The execution strategy still
// applies: x is split into k*P portions that rotate around the ring; each
// processor processes, during phase ph, exactly the nonzeros of its rows
// whose column falls in the portion resident that phase. The
// LightInspector is not required (Sec. 5.3): a single local bucketing
// pass over the nonzeros replaces it, and there is no remote buffer or
// second loop.
#pragma once

#include <cstdint>
#include <span>

#include "core/result.hpp"
#include "earth/types.hpp"
#include "sparse/csr.hpp"

namespace earthred::core {

struct MvmOptions {
  std::uint32_t num_procs = 2;
  std::uint32_t k = 2;
  std::uint32_t sweeps = 1;  ///< repeated y = A*x multiplies
  earth::MachineConfig machine{};
  /// Cycles charged per nonzero by the local bucketing pass.
  earth::Cycles bucketing_cycles_per_nnz = 6;
  bool collect_results = true;
};

/// Runs repeated y = A*x under the rotation strategy. On return,
/// result.reduction[0] holds the final y (when collect_results).
RunResult run_mvm_engine(const sparse::CsrMatrix& A,
                         std::span<const double> x, const MvmOptions& opt);

}  // namespace earthred::core
