#include "core/collectives.hpp"

#include <algorithm>

#include "earth/machine.hpp"
#include "support/check.hpp"

namespace earthred::core {

using earth::Cycles;
using earth::EarthMachine;
using earth::FiberContext;
using earth::FiberId;

namespace {

std::uint64_t block_begin(std::uint64_t n, std::uint32_t P, std::uint32_t p) {
  const std::uint64_t q = n / P, r = n % P;
  return p * q + std::min<std::uint64_t>(p, r);
}

}  // namespace

earth::Cycles simulate_dot(std::span<const double> a,
                           std::span<const double> b, double* out,
                           const CollectiveOptions& opt) {
  ER_EXPECTS(a.size() == b.size());
  ER_EXPECTS(opt.num_procs >= 1);
  const std::uint32_t P = opt.num_procs;
  const std::uint64_t n = a.size();

  earth::MachineConfig mcfg = opt.machine;
  mcfg.num_nodes = P;
  EarthMachine m(mcfg);
  earth::ArrayTagAllocator alloc;
  const earth::ArrayTag ta = alloc.next();
  const earth::ArrayTag tb = alloc.next();

  std::vector<double> partial(P, 0.0);
  std::vector<FiberId> reduce_hop(P), bcast_hop(P);
  double total = 0.0;

  // Ring reduce: node p adds its partial and forwards to p+1; node P-1
  // completes the sum and starts the broadcast ring.
  for (std::uint32_t p = 0; p < P; ++p) {
    reduce_hop[p] = m.add_fiber(
        p, p == 0 ? 1 : 2,  // local partial (self-sync) +, for p>0, ring
        [&, p](FiberContext& ctx) {
          ctx.charge_flops(1);
          total += partial[p];
          if (p + 1 < P) {
            ctx.send(reduce_hop[p + 1], 8, {});
          } else if (P > 1) {
            ctx.send(bcast_hop[0], 8, {});
          }
        },
        "reduce[" + std::to_string(p) + "]");
  }
  for (std::uint32_t p = 0; p < P; ++p) {
    bcast_hop[p] = m.add_fiber(
        p, 1,
        [&, p](FiberContext& ctx) {
          if (p + 1 < P) ctx.send(bcast_hop[p + 1], 8, {});
        },
        "bcast[" + std::to_string(p) + "]");
  }

  // Local partial-sum fibers.
  for (std::uint32_t p = 0; p < P; ++p) {
    const std::uint64_t lo = block_begin(n, P, p);
    const std::uint64_t hi = block_begin(n, P, p + 1);
    const FiberId f = m.add_fiber(
        p, 0,
        [&, p, lo, hi](FiberContext& ctx) {
          double s = 0.0;
          for (std::uint64_t i = lo; i < hi; ++i) {
            ctx.load(ta, i);
            ctx.load(tb, i);
            ctx.charge_flops(2);
            s += a[i] * b[i];
          }
          partial[p] = s;
          ctx.sync(reduce_hop[p]);
        },
        "partial[" + std::to_string(p) + "]");
    m.credit(f);
  }
  // Node 0's reduce hop needs only its own partial (sync count 1); the
  // partial fiber's ctx.sync supplies it, so no extra credits here.
  const Cycles t = m.run();
  if (out) *out = total;
  return t;
}

earth::Cycles simulate_axpy(double alpha, std::span<const double> x,
                            std::span<double> y,
                            const CollectiveOptions& opt, double beta) {
  ER_EXPECTS(x.size() == y.size());
  const std::uint32_t P = opt.num_procs;
  const std::uint64_t n = x.size();

  earth::MachineConfig mcfg = opt.machine;
  mcfg.num_nodes = P;
  EarthMachine m(mcfg);
  earth::ArrayTagAllocator alloc;
  const earth::ArrayTag tx = alloc.next();
  const earth::ArrayTag ty = alloc.next();

  for (std::uint32_t p = 0; p < P; ++p) {
    const std::uint64_t lo = block_begin(n, P, p);
    const std::uint64_t hi = block_begin(n, P, p + 1);
    const FiberId f = m.add_fiber(
        p, 0,
        [&, lo, hi, alpha, beta](FiberContext& ctx) {
          for (std::uint64_t i = lo; i < hi; ++i) {
            ctx.load(tx, i);
            ctx.load(ty, i);
            ctx.charge_flops(beta == 1.0 ? 2 : 3);
            ctx.store(ty, i);
            y[i] = alpha * x[i] + beta * y[i];
          }
        },
        "axpy[" + std::to_string(p) + "]");
    m.credit(f);
  }
  return m.run();
}

earth::Cycles simulate_allgather(std::uint64_t n,
                                 const CollectiveOptions& opt) {
  const std::uint32_t P = opt.num_procs;
  ER_EXPECTS(P >= 1);
  if (P == 1) return 0;

  earth::MachineConfig mcfg = opt.machine;
  mcfg.num_nodes = P;
  EarthMachine m(mcfg);

  // Pipelined ring: in each of P-1 steps every node forwards the block it
  // received in the previous step to its successor. step[p][s] fires when
  // (a) node p reached step s locally and (b) the block from p-1 arrived.
  std::vector<std::vector<FiberId>> step(P,
                                         std::vector<FiberId>(P - 1));
  for (std::uint32_t p = 0; p < P; ++p) {
    for (std::uint32_t s = 0; s < P - 1; ++s) {
      step[p][s] = m.add_fiber(
          p, s == 0 ? 1 : 2,
          [&, p, s](FiberContext& ctx) {
            const std::uint64_t block = (n + P - 1) / P;
            const std::uint32_t succ = (p + 1) % P;
            if (s + 1 < P - 1) {
              ctx.send(step[succ][s + 1], block * 8, {});
              ctx.sync(step[p][s + 1]);
            } else {
              // Last step: final block arrives, nothing to forward.
              ctx.charge_intops(1);
            }
          },
          "ag[" + std::to_string(p) + "][" + std::to_string(s) + "]");
    }
  }
  for (std::uint32_t p = 0; p < P; ++p) {
    // Step 0: every node sends its own block.
    const FiberId kick = m.add_fiber(
        p, 0,
        [&, p](FiberContext& ctx) {
          const std::uint64_t block = (n + P - 1) / P;
          ctx.send(step[(p + 1) % P][0], block * 8, {});
        },
        "ag-kick[" + std::to_string(p) + "]");
    m.credit(kick);
  }
  return m.run();
}

}  // namespace earthred::core
