// Kernel abstraction for LHS-indirect irregular reductions.
//
// A kernel describes one time-step sweep of a Figure-1-style loop:
//
//   for each edge e:                       (iterations, distributed)
//     for each reference r:                (IA(e,1), IA(e,2), ...)
//       X_a[IA(e,r)] += f_a(edge data, node read data)   for each array a
//   for each node v:                       (once per sweep, when complete)
//     node read arrays[v] = g(reduction arrays[v], ...)
//
// The kernel performs the *real* floating-point computation (so engines
// can validate against the sequential reference) while charging simulated
// cycles through the FiberContext. Engines own the storage: per-processor
// reduction arrays (extended with the LightInspector's remote buffer) and
// per-processor replicated copies of the node read arrays.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/backend.hpp"
#include "earth/cost.hpp"
#include "earth/fiber.hpp"

namespace earthred::core {

/// Sizes describing a kernel's data.
struct KernelShape {
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t num_refs = 0;             ///< indirection refs per edge
  std::uint32_t num_reduction_arrays = 0; ///< arrays updated through refs
  std::uint32_t num_node_read_arrays = 0; ///< node arrays read per edge
};

/// Per-processor storage manipulated by a kernel.
struct ProcArrays {
  /// reduction[a][i]: element i of reduction array a. Length is
  /// num_nodes + buffer slots (rotation engine) or owned + ghosts
  /// (classic engine).
  std::vector<std::vector<double>> reduction;
  /// node_read[a][v]: replicated node-indexed read-only arrays.
  std::vector<std::vector<double>> node_read;
};

/// Synthetic-address tags for the cost model (see earth/cost.hpp).
struct CostTags {
  std::vector<earth::ArrayTag> reduction;
  std::vector<earth::ArrayTag> node_read;
  earth::ArrayTag edge_data{};  ///< iteration-aligned values (Y of Fig. 1)
  earth::ArrayTag indir{};      ///< redirected indirection arrays
};

/// Read-only view of one executor phase in the flattened
/// structure-of-arrays layout the LightInspector emits: the redirected
/// indirection of all reference slots lives in a single contiguous block,
/// ref-major, so batch executors stream it without touching `num_refs`
/// separate heap vectors.
struct PhaseView {
  /// Global iteration ids in execution order.
  std::span<const std::uint32_t> iter_global;
  /// Local iteration indices (contiguous post-inspection slots).
  std::span<const std::uint32_t> iter_local;
  /// Flattened redirected indirection: reference slot r of iteration j is
  /// `indir[r * num_iters + j]`.
  std::span<const std::uint32_t> indir;
  std::size_t num_iters = 0;
  std::uint32_t num_refs = 0;
  /// Resolved compute backend for this phase's batch loop (never Auto;
  /// the executor resolves once per run). Scalar is always a safe value.
  BackendKind backend = BackendKind::Scalar;
  /// Cache-blocking tile size in iterations from the plan's layout pass
  /// (ExecutionPlan::tile_iters). 0 = untiled: batch loops run the whole
  /// phase in one span. Tiling only changes issue distance (the next
  /// tile's gather lines are software-prefetched), never evaluation
  /// order, so it is bit-safe under every backend.
  std::uint32_t tile_iters = 0;

  /// Contiguous redirected indices for reference slot `r`.
  const std::uint32_t* indir_row(std::uint32_t r) const noexcept {
    return indir.data() + static_cast<std::size_t>(r) * num_iters;
  }
};

/// Interface implemented by euler, moldyn, and the synthetic test kernels.
///
/// Thread-compatibility: kernels are immutable after construction and
/// shared by all simulated processors; all mutable state lives in the
/// engine-owned ProcArrays.
class PhasedKernel {
 public:
  virtual ~PhasedKernel() = default;

  virtual KernelShape shape() const = 0;

  /// IA(edge, r): the element updated by `edge` through reference slot r.
  virtual std::uint32_t ref(std::uint32_t r, std::uint64_t edge) const = 0;

  /// Fills initial node read array values (identical on every processor).
  /// `arrays` arrives sized [num_node_read_arrays][num_nodes], zeroed.
  virtual void init_node_arrays(
      std::vector<std::vector<double>>& arrays) const = 0;

  /// Executes edge `edge_global`: reads kernel-owned edge data and
  /// `arrays.node_read`, accumulates into `arrays.reduction` at
  /// `redirected[r]` (which the engine derived from the inspector — it may
  /// be a buffer slot rather than the plain element).
  ///
  /// Cost charging: use `edge_slot` (the contiguous post-inspection slot
  /// of this iteration) as the address index for edge-aligned loads so the
  /// cache model sees the gathered streaming layout; use `redirected[r]`
  /// for reduction accesses and ref(r, edge_global) for node reads.
  virtual void compute_edge(earth::FiberContext& ctx, const CostTags& tags,
                            std::uint64_t edge_global,
                            std::uint64_t edge_slot,
                            std::span<const std::uint32_t> redirected,
                            ProcArrays& arrays) const = 0;

  /// Sweep-final node update for elements [begin, end): the reduction
  /// values of that range are complete. `base` is the offset of element
  /// `begin` within arrays.reduction (0 for the rotation engine; the
  /// owned-block offset for the classic engine).
  virtual void update_nodes(earth::FiberContext& ctx, const CostTags& tags,
                            std::uint32_t begin, std::uint32_t end,
                            std::uint32_t base, ProcArrays& arrays) const = 0;

  /// Batch entry point: executes every iteration of `phase` in order,
  /// producing results bit-identical to the equivalent sequence of
  /// compute_edge calls (same floating-point operations, same order).
  /// Concrete kernels override this with a tight loop over the flattened
  /// indirection block — no per-edge virtual dispatch, no per-access cost
  /// charging — which is the native engine's hot path. The default
  /// implementation falls back to per-edge compute_edge, so kernels that
  /// don't override it (e.g. compiler-produced ones) stay correct, and
  /// simulated-machine engines keep calling compute_edge directly for
  /// cycle-accurate charging.
  virtual void compute_phase(earth::FiberContext& ctx, const CostTags& tags,
                             const PhaseView& phase,
                             ProcArrays& arrays) const {
    std::vector<std::uint32_t> redirected(phase.num_refs);
    for (std::size_t j = 0; j < phase.num_iters; ++j) {
      for (std::uint32_t r = 0; r < phase.num_refs; ++r)
        redirected[r] = phase.indir_row(r)[j];
      compute_edge(ctx, tags, phase.iter_global[j], phase.iter_local[j],
                   redirected, arrays);
    }
  }

  /// Layout support: returns a deep copy of this kernel with every node id
  /// relabeled through `perm` (perm[old] = new) — mesh endpoints, node-
  /// indexed coefficient tables, and ref() targets all move together, so
  /// running the clone against a plan whose references were gathered
  /// through the same `perm` performs the identical floating-point
  /// operations at relabeled addresses. Kernels that cannot relabel
  /// (e.g. compiler-synthesized environments) return nullptr and the
  /// layout pass falls back to LayoutKind::None for them.
  virtual std::unique_ptr<PhasedKernel> clone_renumbered(
      std::span<const std::uint32_t> perm) const {
    (void)perm;
    return nullptr;
  }
};

}  // namespace earthred::core
