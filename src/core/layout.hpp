#pragma once

// Locality-optimizing plan layout for irregular reductions.
//
// The phased kernels are gather/scatter-bound (docs/architecture.md §14:
// wider SIMD buys ~nothing, the memory system is the wall), so the lever
// left is *where* the gathers and scatters land. The layout pass inside
// build_execution_plan attacks that in three bit-safe steps:
//
//   1. portion-preserving RCM node renumbering — a reverse Cuthill-McKee
//      order is computed over the kernel's reference graph, then applied
//      *within each rotation portion only*: every element stays in the
//      portion (and thus the phase/ownership window) it had before, so
//      the plan is a pure relabeling and the floating-point accumulation
//      structure is untouched. The forward/inverse permutations ride in
//      the ExecutionPlan; run_native_plan executes a renumbered clone of
//      the kernel (PhasedKernel::clone_renumbered) and un-permutes the
//      result arrays at read-out, so callers never see the relabeling.
//   2. target-stable edge reordering — within each phase, iterations are
//      reordered so scatter targets ascend (sequential stores instead of
//      a random walk over the owned portion), but the *relative* order of
//      any two iterations contributing to the same target is preserved
//      via precedence-respecting list scheduling. Per-target FP
//      accumulation order is therefore unchanged by construction, which
//      is what keeps layout plans bit-identical to the per-edge
//      reference (gated in test_batch_equivalence).
//   3. cache-blocked phase tiles — each phase's iteration list is cut
//      into tiles sized from the detected cache geometry
//      (support::host_cache_info, overridable via PlanOptions), and the
//      batched loops software-prefetch the next tile's gather lines.
//      Tiling never changes evaluation order, only issue distance.
//
// Like the lowering strategy (core/strategy.hpp) — and unlike compute
// backends — the layout changes the *plan*, so it is a plan knob: it
// lives in PlanOptions, forks the PlanCache key, the plan-store path, the
// persistent plan header, and the shard content key when non-default.
// Results stay bit-identical across layouts by construction; what forks
// is the plan bytes, never the answer.

#include <cstdint>
#include <string_view>

namespace earthred::core {

/// Stable on-disk encoding (plan_io writes the numeric value into the
/// plan header): None must stay 0 so pre-layout plan files — which wrote
/// a zero reserved field — load as "no layout requested".
enum class LayoutKind : std::uint8_t {
  None = 0,  ///< Paper-faithful plan: canonical iteration order, no perm.
  Rcm = 1,   ///< RCM renumber + target-stable reorder + tiles.
  Auto = 2,  ///< Rcm when the kernel supports renumbering, else None.
};

/// "none", "rcm", "auto".
std::string_view to_string(LayoutKind kind);

/// Parses a layout name; throws `check_error` ("E-LAYOUT-NAME") on an
/// unknown spelling.
LayoutKind parse_layout(std::string_view name);

/// Applies the `EARTHRED_FORCE_LAYOUT` environment override: when
/// `requested` is None (the default) and the variable names a layout,
/// that layout becomes the effective request. An explicit non-default
/// request always wins over the environment. This is how CI's
/// layout-matrix job pushes every default-layout plan through rcm without
/// touching each test — legal only because layouts are bit-identical.
LayoutKind effective_layout(LayoutKind requested);

/// Tile size (iterations per tile) for the cache-blocked batched loops.
/// Sized so one tile's gather working set — `bytes_per_iter` of edge data
/// plus the prefetched lines of the next tile — fits comfortably in half
/// the L1d (the other half is left to the scatter stream and stack), with
/// the detected geometry from support::host_cache_info(). `override_iters`
/// (PlanOptions::layout_tile_iters) wins when non-zero. Returns 0 (no
/// tiling) only when `bytes_per_iter` is 0.
std::uint32_t layout_tile_iters(std::uint32_t bytes_per_iter,
                                std::uint32_t override_iters = 0);

}  // namespace earthred::core
