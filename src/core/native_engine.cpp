#include "core/native_engine.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <numeric>
#include <queue>
#include <semaphore>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "inspector/plan_walk.hpp"
#include "inspector/rotation.hpp"
#include "mesh/mesh.hpp"
#include "support/check.hpp"
#include "support/cpu_features.hpp"

#if defined(__linux__) && defined(_GNU_SOURCE)
#include <pthread.h>
#include <sched.h>
#define EARTHRED_HAS_CPU_AFFINITY 1
#else
#define EARTHRED_HAS_CPU_AFFINITY 0
#endif

namespace earthred::core {

using inspector::InspectorResult;
using inspector::RotationSchedule;

namespace {

/// One-slot bounded buffer: sender waits `free`, writes, posts `full`;
/// receiver waits `full`, reads, posts `free`.
struct StagedSlot {
  std::vector<double> data;
  std::binary_semaphore full{0};
  std::binary_semaphore free{1};
};

/// Best-effort pin of the calling thread to one CPU (no-op where pthread
/// CPU affinity is unavailable; failure is ignored — pinning is a
/// performance hint, never a correctness requirement).
void pin_current_thread(std::uint32_t worker) {
#if EARTHRED_HAS_CPU_AFFINITY
  const std::uint32_t ncpu =
      std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(worker % ncpu, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)worker;
#endif
}

/// Below this many edges a parallel plan build loses to serial: thread
/// spawn/join plus cold per-worker caches outweigh the inspector work, so
/// run_per_proc quietly degrades to the serial loop (bench_hotpath Part 2
/// gates build_threads never losing to serial).
constexpr std::uint64_t kParallelBuildMinEdges = 1u << 18;

/// Runs fn(p) for every processor 0..P-1 on `build_threads` workers
/// (1 = serial, 0 = one per affinity-visible core), rethrowing the first
/// worker exception. Shared by the cold build and the incremental patch.
/// `work_items` is the total edge count the workers will chew through;
/// small builds run serial regardless of build_threads (see above).
template <typename Fn>
void run_per_proc(std::uint32_t P, std::uint32_t build_threads,
                  std::uint64_t work_items, const Fn& fn) {
  std::uint32_t workers =
      build_threads == 0 ? support::hardware_threads() : build_threads;
  workers = std::min(workers, P);
  if (work_items < kParallelBuildMinEdges) workers = 1;
  if (workers <= 1) {
    for (std::uint32_t p = 0; p < P; ++p) fn(p);
    return;
  }
  std::atomic<std::uint32_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::uint32_t p = next.fetch_add(1, std::memory_order_relaxed);
        if (p >= P) return;
        try {
          fn(p);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Budget-mode structural verification shared by the cold build and the
/// incremental patch: no kernel.ref() cross-check and no per-entry
/// coverage walk unless a defect is detected, so the cost stays a small
/// fraction of the inspector run itself (bench_hotpath reports the
/// overhead; the budget is <5%). Admission and `earthred check` run the
/// exhaustive pass.
constexpr std::uint32_t kNoIter = 0xffffffffu;

/// Step 1 of the layout pass: the portion-preserving RCM permutation.
/// A global RCM rank is computed over the kernel's reference graph (one
/// pseudo-edge per distinct pair of reference targets of each iteration),
/// then elements are reordered by that rank *within each rotation portion
/// only* — every element keeps its portion, so phase assignment, buffer
/// allocation, and fold structure are untouched and the relabeled plan is
/// a pure isomorphism of the canonical one. Returns an empty vector when
/// the graph gives no signal (single-reference kernels).
std::vector<std::uint32_t> portion_preserving_perm(
    const PhasedKernel& kernel, const RotationSchedule& sched,
    const KernelShape& shape) {
  mesh::Mesh graph;
  graph.num_nodes = shape.num_nodes;
  if (shape.num_refs >= 2) {
    graph.edges.reserve(static_cast<std::size_t>(shape.num_edges));
    for (std::uint64_t e = 0; e < shape.num_edges; ++e) {
      const std::uint32_t a = kernel.ref(0, e);
      for (std::uint32_t r = 1; r < shape.num_refs; ++r) {
        const std::uint32_t b = kernel.ref(r, e);
        if (a != b) graph.edges.push_back(mesh::Edge{a, b});
      }
    }
  }
  if (graph.edges.empty()) return {};

  const std::vector<std::uint32_t> rank = mesh::rcm_permutation(graph);
  std::vector<std::uint32_t> perm(shape.num_nodes);
  std::vector<std::uint32_t> elems;
  for (std::uint32_t pid = 0; pid < sched.num_portions(); ++pid) {
    const std::uint32_t begin = sched.portion_begin(pid);
    const std::uint32_t end = sched.portion_end(pid);
    elems.resize(end - begin);
    std::iota(elems.begin(), elems.end(), begin);
    std::sort(elems.begin(), elems.end(),
              [&](std::uint32_t x, std::uint32_t y) {
                return rank[x] != rank[y] ? rank[x] < rank[y] : x < y;
              });
    for (std::uint32_t i = 0; i < elems.size(); ++i)
      perm[elems[i]] = begin + i;
  }
  if (std::is_sorted(perm.begin(), perm.end())) return {};  // identity
  return perm;
}

/// Step 2 of the layout pass: target-stable reordering of one phase.
/// Iterations are rescheduled so scatter targets ascend (sequential
/// stores instead of a random walk over the owned portion) under the
/// constraint that any two iterations touching the same *element* keep
/// their relative order — precedence-respecting list scheduling, so
/// per-element FP accumulation order (and thus the result bits) is
/// unchanged by construction. The chains are keyed on true (renumbered)
/// element ids, not the redirected slots: the phased executor would stay
/// bit-identical either way (one writer per buffer slot, folded in slot
/// order), but the privatized and atomic executors accumulate straight
/// into element arrays in edge order, and two iterations can share an
/// element while holding distinct buffer slots. `last_iter`/`last_ref`
/// are caller-owned scratch sized num_nodes and filled with kNoIter;
/// they are restored before returning so phases can share them.
void reorder_phase_target_stable(const PhasedKernel& kernel,
                                 std::span<const std::uint32_t> perm,
                                 inspector::PhaseSchedule& ph,
                                 std::uint32_t num_refs,
                                 std::vector<std::uint32_t>& last_iter,
                                 std::vector<std::uint32_t>& last_ref) {
  const std::size_t n = ph.iter_global.size();
  const std::uint32_t R = num_refs;
  if (n < 2 || R == 0) return;

  // Per-element FIFO chains as successor links: succ[j*R + r] is the next
  // iteration touching the element that iteration j touches through its
  // reference slot r (kNoIter when j is the chain tail or slot r repeats
  // an earlier slot's element within j).
  std::vector<std::uint32_t> succ(n * R, kNoIter);
  std::vector<std::uint32_t> indegree(n, 0);
  std::vector<std::uint32_t> key(n);
  std::vector<std::uint32_t> touched;
  std::vector<std::uint32_t> truej(R);
  for (std::size_t j = 0; j < n; ++j) {
    std::uint32_t k = ph.indir[0][j];
    for (std::uint32_t r = 1; r < R; ++r)
      k = std::min(k, ph.indir[r][j]);
    key[j] = k;
    const std::uint32_t e = ph.iter_global[j];
    for (std::uint32_t r = 0; r < R; ++r) {
      const std::uint32_t raw = kernel.ref(r, e);
      truej[r] = perm.empty() ? raw : perm[raw];
    }
    for (std::uint32_t r = 0; r < R; ++r) {
      const std::uint32_t t = truej[r];
      bool dup = false;
      for (std::uint32_t r2 = 0; r2 < r; ++r2)
        if (truej[r2] == t) {
          dup = true;
          break;
        }
      if (dup) continue;
      if (last_iter[t] != kNoIter) {
        succ[static_cast<std::size_t>(last_iter[t]) * R + last_ref[t]] =
            static_cast<std::uint32_t>(j);
        ++indegree[j];
      } else {
        touched.push_back(t);
      }
      last_iter[t] = static_cast<std::uint32_t>(j);
      last_ref[t] = r;
    }
  }
  for (const std::uint32_t t : touched) last_iter[t] = kNoIter;

  // Kahn's algorithm with a min-heap on (scatter key, original index):
  // always emit the ready iteration with the lowest target, ties by
  // original position — fully deterministic.
  using Entry = std::pair<std::uint32_t, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> ready;
  for (std::size_t j = 0; j < n; ++j)
    if (indegree[j] == 0)
      ready.emplace(key[j], static_cast<std::uint32_t>(j));
  std::vector<std::uint32_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::uint32_t j = ready.top().second;
    ready.pop();
    order.push_back(j);
    for (std::uint32_t r = 0; r < R; ++r) {
      const std::uint32_t s = succ[static_cast<std::size_t>(j) * R + r];
      if (s != kNoIter && --indegree[s] == 0) ready.emplace(key[s], s);
    }
  }
  ER_ENSURES(order.size() == n);  // chains are acyclic by construction

  const auto permute = [&](inspector::U32Buf& buf) {
    std::vector<std::uint32_t> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = buf[order[i]];
    buf = inspector::U32Buf(std::move(out));
  };
  permute(ph.iter_global);
  permute(ph.iter_local);
  for (std::uint32_t r = 0; r < R; ++r) permute(ph.indir[r]);
  ph.flatten_indir();
}

/// Rough bytes streamed per iteration by the batched loops (indices plus
/// edge data plus one gathered double per reference) — only the scale
/// matters, the tile size is clamped anyway.
std::uint32_t layout_bytes_per_iter(std::uint32_t num_refs) {
  return 4u * (num_refs + 1) + 8u * num_refs + 24u;
}

void verify_or_throw(const ExecutionPlan& plan, const char* what) {
  inspector::PlanVerifyOptions vopt;
  vopt.exhaustive = false;
  const inspector::PlanVerifyReport report = inspector::verify_plan(
      plan.sched, plan.insp, plan.shape.num_edges, plan.shape.num_refs,
      vopt);
  if (!report.ok())
    throw verify_error(std::string(what) + " failed verification (" +
                       std::to_string(report.violations) +
                       " violation(s)): " + report.first_error());
}

}  // namespace

std::uint64_t ExecutionPlan::byte_size() const {
  // Every plan-owned buffer, including container-of-container headers:
  // the LRU budget of the PlanCache is only honest if growth anywhere in
  // the phase data is visible here (test_batch_equivalence asserts it).
  // The per-processor traversal is the shared plan walk, so this stays in
  // lockstep with the verifier's and the benches' accounting.
  std::uint64_t bytes = sizeof(ExecutionPlan);
  bytes += insp.capacity() * sizeof(InspectorResult);
  for (const InspectorResult& r : insp)
    bytes += inspector::inspector_byte_size(r);
  bytes += perm.footprint_bytes() + perm_inv.footprint_bytes();
  return bytes;
}

ExecutionPlan build_execution_plan(const PhasedKernel& kernel,
                                   const PlanOptions& opt) {
  const KernelShape shape = kernel.shape();
  ER_EXPECTS(opt.num_procs >= 1);
  ER_EXPECTS(opt.k >= 1);
  // Fail a forced strategy the host cannot run at build time (the same
  // E-STRATEGY-UNSUPPORTED the service's admission control reports)
  // instead of on the first run of the cached plan.
  (void)resolve_strategy(opt.strategy,
                         strategy_inputs(shape, opt.num_procs, opt.k));

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t P = opt.num_procs;
  ExecutionPlan plan{shape, opt,
                     RotationSchedule(shape.num_nodes, P, opt.k),
                     {}, 0.0, nullptr, {}, {}, LayoutKind::None, 0};

  // ---- layout pass, step 1 (core/layout.hpp) --------------------------
  // Resolve the request (environment override included) and compute the
  // portion-preserving permutation. The effective kind is written back
  // into plan.options so the plan and its cache/store key can never
  // disagree about what was built.
  const LayoutKind requested = effective_layout(opt.layout);
  plan.options.layout = requested;
  std::vector<std::uint32_t> perm;
  if (requested != LayoutKind::None) {
    perm = portion_preserving_perm(kernel, plan.sched, shape);
    bool renumberable = true;
    if (!perm.empty()) renumberable = kernel.clone_renumbered(perm) != nullptr;
    if (renumberable) {
      plan.applied_layout = LayoutKind::Rcm;
    } else if (requested == LayoutKind::Auto) {
      perm.clear();  // fall back: paper-faithful plan
    } else {
      throw check_error(
          "E-LAYOUT-UNSUPPORTED: layout=rcm requires a kernel that "
          "implements clone_renumbered");
    }
  }

  auto owned_iters = inspector::distribute_iterations(
      shape.num_edges, P, opt.distribution, opt.block_cyclic_size);
  plan.insp.resize(P);

  // Each processor's reference gather + inspector run is independent and
  // deterministic, so any worker may build any p and the plan comes out
  // byte-identical to a serial build (test_batch_equivalence asserts it).
  // Under a layout the references are gathered *through the permutation*
  // — the plan is exactly what a fresh build against the renumbered
  // kernel clone would produce — and each finished phase is reordered
  // target-stable (step 2).
  const auto build_one = [&](std::uint32_t p) {
    inspector::IterationRefs refs;
    refs.global_iter = std::move(owned_iters[p]);
    refs.refs.resize(shape.num_refs);
    for (std::uint32_t r = 0; r < shape.num_refs; ++r) {
      refs.refs[r].reserve(refs.global_iter.size());
      if (perm.empty()) {
        for (std::uint32_t e : refs.global_iter)
          refs.refs[r].push_back(kernel.ref(r, e));
      } else {
        for (std::uint32_t e : refs.global_iter)
          refs.refs[r].push_back(perm[kernel.ref(r, e)]);
      }
    }
    plan.insp[p] =
        inspector::run_light_inspector(plan.sched, p, refs, opt.inspector);
    if (plan.applied_layout != LayoutKind::None) {
      std::vector<std::uint32_t> last_iter(shape.num_nodes, kNoIter);
      std::vector<std::uint32_t> last_ref(last_iter.size(), 0);
      for (inspector::PhaseSchedule& ph : plan.insp[p].phases)
        reorder_phase_target_stable(kernel, perm, ph, shape.num_refs,
                                    last_iter, last_ref);
    }
  };

  run_per_proc(P, opt.build_threads, shape.num_edges, build_one);

  // Step 3: cache-blocked tile size for the batched loops; 0 (untiled)
  // whenever the layout is None so the default hot path is untouched.
  if (plan.applied_layout != LayoutKind::None) {
    plan.tile_iters = layout_tile_iters(
        layout_bytes_per_iter(shape.num_refs), opt.layout_tile_iters);
    if (!perm.empty()) {
      std::vector<std::uint32_t> inv(perm.size());
      for (std::uint32_t v = 0; v < perm.size(); ++v) inv[perm[v]] = v;
      plan.perm = inspector::U32Buf(std::move(perm));
      plan.perm_inv = inspector::U32Buf(std::move(inv));
    }
  }

  plan.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (opt.verify) verify_or_throw(plan, "execution plan");
  return plan;
}

ExecutionPlan patch_execution_plan(
    const PhasedKernel& kernel, const ExecutionPlan& previous,
    std::span<const std::uint32_t> changed_iterations) {
  const KernelShape shape = kernel.shape();
  const PlanOptions& opt = previous.options;
  ER_EXPECTS_MSG(shape.num_nodes == previous.shape.num_nodes &&
                     shape.num_edges == previous.shape.num_edges &&
                     shape.num_refs == previous.shape.num_refs &&
                     shape.num_reduction_arrays ==
                         previous.shape.num_reduction_arrays &&
                     shape.num_node_read_arrays ==
                         previous.shape.num_node_read_arrays,
                 "incremental re-plan requires an identically-shaped kernel");
  // Layout bases interleave the inspector's canonical iteration order
  // with the target-stable reorder, which the sparse updater cannot patch
  // through. Builds are deterministic, so rebuilding under the base's
  // options is bit-identical to a fresh build — the patch contract — just
  // not incremental; the PlanCache counts this fallback separately.
  if (previous.applied_layout != LayoutKind::None ||
      previous.options.layout != LayoutKind::None)
    return build_execution_plan(kernel, previous.options);
  ER_EXPECTS_MSG(!opt.inspector.dedup_buffers,
                 "incremental re-plan supports the paper's one-slot-per-"
                 "reference scheme only");

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t P = opt.num_procs;
  // The patched plan keeps the base's schedule and storage handle:
  // untouched phases may still be zero-copy views into a plan-store
  // mapping owned by `previous`.
  ExecutionPlan plan{shape, opt, previous.sched, {}, 0.0, previous.storage,
                     {},    {},  LayoutKind::None, 0};
  plan.insp.resize(P);

  // The iteration distribution depends only on (num_edges, P,
  // distribution) — all unchanged — so each processor owns the same
  // iterations as in the base plan, and the handful of changed ids map to
  // their (processor, local index) homes in O(changes) through the
  // distribution inverse instead of an O(num_edges) re-distribution.
  // Only the changed columns of the reference table are re-gathered.
  std::vector<std::uint32_t> changed_sorted(changed_iterations.begin(),
                                            changed_iterations.end());
  std::sort(changed_sorted.begin(), changed_sorted.end());
  changed_sorted.erase(
      std::unique(changed_sorted.begin(), changed_sorted.end()),
      changed_sorted.end());
  std::vector<std::vector<inspector::ChangedIteration>> per_proc(P);
  for (std::uint32_t g : changed_sorted) {
    ER_EXPECTS_MSG(g < shape.num_edges, "changed iteration id out of range");
    const inspector::IterationHome home = inspector::locate_iteration(
        shape.num_edges, P, opt.distribution, opt.block_cyclic_size, g);
    inspector::ChangedIteration ch;
    ch.local = home.local;
    ch.global = g;
    ch.refs.reserve(shape.num_refs);
    for (std::uint32_t r = 0; r < shape.num_refs; ++r)
      ch.refs.push_back(kernel.ref(r, g));
    per_proc[home.proc].push_back(std::move(ch));
  }
  // Global ids ascending + a monotone local order per processor means
  // each per_proc list is already sorted by local index, as the sparse
  // update requires... except for block-cyclic, where locals of different
  // chunks interleave. Sort to be safe; the lists are tiny.
  for (auto& changes : per_proc)
    std::sort(changes.begin(), changes.end(),
              [](const auto& a, const auto& b) { return a.local < b.local; });

  const auto patch_one = [&](std::uint32_t p) {
    if (per_proc[p].empty()) {
      // No owned iteration changed: the base result is still exact.
      // U32Buf copies share adopted views, so this is cheap for loaded
      // bases and one linear copy for built ones.
      plan.insp[p] = previous.insp[p];
      return;
    }
    plan.insp[p] = inspector::update_light_inspector(
        plan.sched, p, previous.insp[p], per_proc[p], opt.inspector);
  };
  run_per_proc(P, opt.build_threads, changed_sorted.size(), patch_one);

  plan.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (opt.verify) verify_or_throw(plan, "patched execution plan");
  return plan;
}

inspector::PlanVerifyReport verify_execution_plan(
    const ExecutionPlan& plan, const PhasedKernel* kernel,
    const inspector::PlanVerifyOptions& vopt) {
  inspector::PlanVerifyReport report = inspector::verify_plan(
      plan.sched, plan.insp, plan.shape.num_edges, plan.shape.num_refs,
      vopt);
  if (kernel == nullptr) return report;

  const auto fail = [&](std::string msg) {
    ++report.violations;
    if (report.diagnostics.size() >= vopt.max_diagnostics) return;
    Diagnostic d;
    d.severity = Severity::Error;
    d.code = "E-PLAN-REF-MISMATCH";
    d.message = std::move(msg);
    report.diagnostics.push_back(std::move(d));
  };

  // Cross-check: every scheduled reference must resolve — directly or
  // through its buffer slot — to the element the kernel's indirection
  // names for that (ref, iteration). This catches plans that satisfy
  // every rotation invariant but belong to a *different* kernel (stale
  // or aliased cache entries). A layout plan's references live in the
  // relabeled element space, so the expectation is mapped through the
  // plan's permutation.
  const inspector::U32Buf& perm = plan.perm;
  const std::uint32_t n_elems = plan.sched.num_elements();
  for (std::uint32_t p = 0; p < plan.insp.size(); ++p) {
    const InspectorResult& insp = plan.insp[p];
    for (const inspector::PhaseSchedule& phase : insp.phases) {
      const std::size_t n = phase.iter_global.size();
      for (std::size_t r = 0; r < phase.indir.size(); ++r) {
        if (phase.indir[r].size() != n) continue;  // already E-PLAN-SHAPE
        for (std::size_t j = 0; j < n; ++j) {
          const std::uint64_t g = phase.iter_global[j];
          if (g >= plan.shape.num_edges) continue;  // already E-PLAN-OOB
          std::uint32_t expected =
              kernel->ref(static_cast<std::uint32_t>(r), g);
          if (!perm.empty() && expected < perm.size())
            expected = perm[expected];
          const std::uint32_t v = phase.indir[r][j];
          std::uint32_t actual = v;
          if (v >= n_elems) {
            const std::uint64_t slot =
                static_cast<std::uint64_t>(v) - n_elems;
            if (slot >= insp.slot_elem.size()) continue;  // E-PLAN-SLOT-RANGE
            actual = insp.slot_elem[slot];
          }
          if (actual != expected)
            fail("proc " + std::to_string(p) + " ref " + std::to_string(r) +
                 " iteration " + std::to_string(g) +
                 ": plan resolves to element " + std::to_string(actual) +
                 " but the kernel's indirection names " +
                 std::to_string(expected));
        }
      }
    }
  }
  return report;
}

namespace {

/// Synthetic-address cost tags sized for the kernel (detached contexts
/// ignore the charges, but kernels index the vectors).
CostTags make_cost_tags(std::uint32_t RA, std::uint32_t NA) {
  CostTags tags;
  earth::ArrayTagAllocator alloc;
  for (std::uint32_t a = 0; a < RA; ++a)
    tags.reduction.push_back(alloc.next());
  for (std::uint32_t a = 0; a < NA; ++a)
    tags.node_read.push_back(alloc.next());
  tags.edge_data = alloc.next();
  tags.indir = alloc.next();
  return tags;
}

/// The paper's executor: portions of the reduction arrays rotate through
/// the processors over k*P phases with bounded-buffer staging (see the
/// header comment). Deterministic; bit-identical between the batched and
/// per-edge paths.
NativeResult run_phased(const PhasedKernel& kernel,
                        const ExecutionPlan& plan, const SweepOptions& opt,
                        BackendKind backend) {
  const KernelShape shape = kernel.shape();
  const RotationSchedule& sched = plan.sched;
  const std::uint32_t P = plan.options.num_procs;
  const std::uint32_t k = plan.options.k;
  const std::uint32_t kp = P * k;
  const std::uint32_t RA = shape.num_reduction_arrays;
  const std::uint32_t NA = shape.num_node_read_arrays;
  const bool first_touch = opt.affinity.first_touch;

  // ---- per-run mutable state (the plan itself stays untouched) ----------
  // The StagedSlot objects (semaphores) are always created here so the
  // staging topology exists before any worker starts; the *data* vectors
  // are sized either here or — under first-touch — on the worker that owns
  // them, so their pages land on that worker's NUMA node.
  std::vector<ProcArrays> arrays(P);
  // rotation[q][ph]: the portion arriving for q's phase ph.
  std::vector<std::vector<std::unique_ptr<StagedSlot>>> rotation(P);
  // bcast[q][pid]: the refreshed node-read portion pid for receiver q.
  std::vector<std::vector<std::unique_ptr<StagedSlot>>> bcast(P);
  for (std::uint32_t q = 0; q < P; ++q) {
    rotation[q].resize(kp);
    for (std::uint32_t ph = 0; ph < kp; ++ph)
      rotation[q][ph] = std::make_unique<StagedSlot>();
    bcast[q].resize(sched.num_portions());
    for (std::uint32_t pid = 0; pid < sched.num_portions(); ++pid) {
      if (sched.final_owner(pid) == q) continue;  // local, no staging
      bcast[q][pid] = std::make_unique<StagedSlot>();
    }
  }

  /// Sizes processor p's arrays and *receiving* staging buffers. Run on
  /// the main thread normally, or on worker p itself under first-touch.
  const auto init_proc_state = [&](std::uint32_t p) {
    arrays[p].reduction.assign(
        RA, std::vector<double>(plan.insp[p].local_array_size, 0.0));
    arrays[p].node_read.assign(NA,
                               std::vector<double>(shape.num_nodes, 0.0));
    kernel.init_node_arrays(arrays[p].node_read);
    for (std::uint32_t ph = 0; ph < kp; ++ph) {
      const std::uint32_t pid = sched.owned_portion(p, ph);
      rotation[p][ph]->data.assign(
          static_cast<std::size_t>(sched.portion_size(pid)) * RA, 0.0);
    }
    for (std::uint32_t pid = 0; pid < sched.num_portions(); ++pid) {
      if (!bcast[p][pid]) continue;
      bcast[p][pid]->data.assign(
          static_cast<std::size_t>(sched.portion_size(pid)) *
              std::max<std::uint32_t>(NA, 1),
          0.0);
    }
  };
  if (!first_touch)
    for (std::uint32_t p = 0; p < P; ++p) init_proc_state(p);

  const CostTags tags = make_cost_tags(RA, NA);

  NativeResult result;
  result.reduction.assign(RA, std::vector<double>(shape.num_nodes, 0.0));
  result.node_read.assign(NA, std::vector<double>(shape.num_nodes, 0.0));

  const std::uint32_t sweeps = opt.sweeps;
  const auto t0 = std::chrono::steady_clock::now();

  // Stall watchdog: every semaphore wait is bounded by opt.stall_timeout
  // (0 = unbounded). The first wait to time out records a description and
  // raises `stalled`; every other wait polls the flag and bails, so all
  // threads unwind, join() returns, and the failure surfaces as a
  // check_error instead of a hang. `describe` is a callable producing the
  // diagnostic: the fast path (semaphore available, or no timeout) never
  // materializes the string, so waiting costs zero allocations.
  std::atomic<bool> stalled{false};
  std::mutex stall_mutex;
  std::string stall_what;
  const auto wait_or_stall = [&](std::binary_semaphore& sem,
                                 auto&& describe) -> bool {
    if (opt.stall_timeout <= 0.0) {
      sem.acquire();
      return true;
    }
    if (sem.try_acquire()) return true;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opt.stall_timeout));
    while (!sem.try_acquire_for(std::chrono::milliseconds(10))) {
      if (stalled.load(std::memory_order_relaxed)) return false;
      if (std::chrono::steady_clock::now() >= deadline) {
        if (!stalled.exchange(true)) {
          const std::lock_guard<std::mutex> lock(stall_mutex);
          stall_what = describe();
        }
        return false;
      }
    }
    return true;
  };

  // Under first-touch, every worker sizes its own state before any worker
  // may start touching a neighbor's staging buffers.
  std::barrier init_barrier(static_cast<std::ptrdiff_t>(P));

  std::vector<std::thread> threads;
  threads.reserve(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    threads.emplace_back([&, p] {
      if (opt.affinity.pin_threads) pin_current_thread(p);
      if (first_touch) {
        init_proc_state(p);
        init_barrier.arrive_and_wait();
      }
      earth::FiberContext ctx = earth::FiberContext::detached(p);
      const InspectorResult& insp = plan.insp[p];
      ProcArrays& ps = arrays[p];
      std::vector<std::uint32_t> redirected(shape.num_refs);

      for (std::uint32_t sweep = 0; sweep < sweeps; ++sweep) {
        for (std::uint32_t ph = 0; ph < kp; ++ph) {
          const std::uint32_t pid = sched.owned_portion(p, ph);
          const std::uint32_t begin = sched.portion_begin(pid);
          const std::uint32_t end = sched.portion_end(pid);
          const std::uint32_t psize = end - begin;

          // Sweep boundary: apply the staged node-read refreshes.
          if (ph == 0 && sweep > 0 && NA > 0) {
            for (std::uint32_t opid = 0; opid < sched.num_portions();
                 ++opid) {
              StagedSlot* slot = bcast[p][opid].get();
              if (!slot) continue;  // finalized locally
              if (!wait_or_stall(slot->full, [&] {
                    return "proc " + std::to_string(p) +
                           " stuck waiting for the node-read broadcast "
                           "of portion " +
                           std::to_string(opid) + " at sweep " +
                           std::to_string(sweep);
                  }))
                return;
              const std::uint32_t ob = sched.portion_begin(opid);
              const std::uint32_t osz = sched.portion_size(opid);
              for (std::uint32_t a = 0; a < NA; ++a)
                std::copy(slot->data.begin() + a * osz,
                          slot->data.begin() + (a + 1) * osz,
                          ps.node_read[a].begin() + ob);
              slot->free.release();
            }
          }

          // Portion arrival (the first k phases of sweep 0 start local).
          if (!(sweep == 0 && ph < k)) {
            StagedSlot* slot = rotation[p][ph].get();
            if (!wait_or_stall(slot->full, [&] {
                  return "proc " + std::to_string(p) +
                         " stuck waiting for portion " +
                         std::to_string(pid) + " to arrive for phase " +
                         std::to_string(ph) + " at sweep " +
                         std::to_string(sweep) + " (lost forward?)";
                }))
              return;
            for (std::uint32_t a = 0; a < RA; ++a)
              std::copy(slot->data.begin() + a * psize,
                        slot->data.begin() + (a + 1) * psize,
                        ps.reduction[a].begin() + begin);
            slot->free.release();
          }

          // Main loop: one batched compute_phase call streaming the
          // flattened indirection block, or the per-edge fallback (a
          // virtual call plus a `redirected` scatter copy per edge).
          const inspector::PhaseSchedule& phase = insp.phases[ph];
          const std::size_t iters = phase.iter_global.size();
          if (opt.batch &&
              phase.indir_flat.size() == iters * shape.num_refs) {
            PhaseView view;
            view.iter_global = phase.iter_global;
            view.iter_local = phase.iter_local;
            view.indir = phase.indir_flat;
            view.num_iters = iters;
            view.num_refs = shape.num_refs;
            view.backend = backend;
            view.tile_iters = plan.tile_iters;
            kernel.compute_phase(ctx, tags, view, ps);
          } else {
            for (std::size_t j = 0; j < iters; ++j) {
              for (std::uint32_t r = 0; r < shape.num_refs; ++r)
                redirected[r] = phase.indir[r][j];
              kernel.compute_edge(ctx, tags, phase.iter_global[j],
                                  phase.iter_local[j], redirected, ps);
            }
          }
          // Second loop.
          for (std::size_t j = 0; j < phase.copy_dst.size(); ++j) {
            for (std::uint32_t a = 0; a < RA; ++a) {
              ps.reduction[a][phase.copy_dst[j]] +=
                  ps.reduction[a][phase.copy_src[j]];
              ps.reduction[a][phase.copy_src[j]] = 0.0;
            }
          }

          // Portion complete: node update, result capture, zero, bcast.
          if (sched.last_owning_phase(pid) == ph) {
            kernel.update_nodes(ctx, tags, begin, end, begin, ps);
            if (sweep + 1 == sweeps) {
              for (std::uint32_t a = 0; a < RA; ++a)
                std::copy(ps.reduction[a].begin() + begin,
                          ps.reduction[a].begin() + end,
                          result.reduction[a].begin() + begin);
              for (std::uint32_t a = 0; a < NA; ++a)
                std::copy(ps.node_read[a].begin() + begin,
                          ps.node_read[a].begin() + end,
                          result.node_read[a].begin() + begin);
            }
            for (std::uint32_t a = 0; a < RA; ++a)
              std::fill(ps.reduction[a].begin() + begin,
                        ps.reduction[a].begin() + end, 0.0);
            if (NA > 0 && sweep + 1 < sweeps) {
              for (std::uint32_t q = 0; q < P; ++q) {
                if (q == p) continue;
                StagedSlot* slot = bcast[q][pid].get();
                if (!wait_or_stall(slot->free, [&] {
                      return "proc " + std::to_string(p) +
                             " stuck broadcasting portion " +
                             std::to_string(pid) + " to proc " +
                             std::to_string(q) + " at sweep " +
                             std::to_string(sweep);
                    }))
                  return;
                for (std::uint32_t a = 0; a < NA; ++a)
                  std::copy(ps.node_read[a].begin() + begin,
                            ps.node_read[a].begin() + end,
                            slot->data.begin() + a * psize);
                slot->full.release();
              }
            }
          }

          // Forward the portion around the ring.
          std::uint32_t tph = ph + k;
          std::uint32_t tsweep = sweep + (tph >= kp ? 1 : 0);
          tph %= kp;
          if (tsweep < sweeps) {
            if (opt.lose_forward.enabled && opt.lose_forward.proc == p &&
                opt.lose_forward.phase == ph &&
                opt.lose_forward.sweep == sweep)
              continue;  // fault hook: this forward silently vanishes
            const std::uint32_t q = sched.next_owner(p);
            StagedSlot* slot = rotation[q][tph].get();
            if (!wait_or_stall(slot->free, [&] {
                  return "proc " + std::to_string(p) +
                         " stuck forwarding portion " +
                         std::to_string(pid) + " to proc " +
                         std::to_string(q) + " phase " +
                         std::to_string(tph) + " at sweep " +
                         std::to_string(sweep);
                }))
              return;
            for (std::uint32_t a = 0; a < RA; ++a)
              std::copy(ps.reduction[a].begin() + begin,
                        ps.reduction[a].begin() + end,
                        slot->data.begin() + a * psize);
            slot->full.release();
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (stalled.load()) {
    const std::lock_guard<std::mutex> lock(stall_mutex);
    throw check_error("native engine stalled after " +
                      std::to_string(opt.stall_timeout) + "s: " +
                      stall_what);
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.backend = opt.batch ? backend : BackendKind::Scalar;
  return result;
}

/// Privatized executor: every worker accumulates into a full private
/// replica of the reduction arrays using the *direct* element ids (the
/// plan's redirection undone via kernel.ref), then the replicas are
/// folded into a shared result in fixed worker-ascending order over
/// disjoint node ranges. The fixed fold order is the strategy's
/// bit-identity contract: the batched and per-edge paths perform the
/// same FP ops in the same order (the phased contract, inherited), and
/// the merge adds replica 0, 1, ..., P-1 per element regardless of
/// thread timing, so results never depend on interleaving.
NativeResult run_privatized(const PhasedKernel& kernel,
                            const ExecutionPlan& plan,
                            const SweepOptions& opt, BackendKind backend) {
  const KernelShape shape = kernel.shape();
  const std::uint32_t P = plan.options.num_procs;
  const std::uint32_t kp = P * plan.options.k;
  const std::uint32_t RA = shape.num_reduction_arrays;
  const std::uint32_t NA = shape.num_node_read_arrays;
  const std::uint32_t N = shape.num_nodes;
  const std::uint32_t R = shape.num_refs;
  const bool first_touch = opt.affinity.first_touch;

  // The shared arrays the fold writes and update_nodes reads/writes.
  ProcArrays merged;
  merged.reduction.assign(RA, std::vector<double>(N, 0.0));
  merged.node_read.assign(NA, std::vector<double>(N, 0.0));
  kernel.init_node_arrays(merged.node_read);

  std::vector<ProcArrays> priv(P);
  // direct[p][ph]: the worker's schedule with redirection undone — a
  // flattened ref-major block of true element ids, same layout as the
  // plan's indir_flat, so the kernels' batched phase loops run unchanged
  // against the full-size replica.
  std::vector<std::vector<std::vector<std::uint32_t>>> direct(P);

  const auto init_proc_state = [&](std::uint32_t p) {
    priv[p].reduction.assign(RA, std::vector<double>(N, 0.0));
    priv[p].node_read.assign(NA, std::vector<double>(N, 0.0));
    kernel.init_node_arrays(priv[p].node_read);
    direct[p].resize(kp);
    for (std::uint32_t ph = 0; ph < kp; ++ph) {
      const inspector::PhaseSchedule& phase = plan.insp[p].phases[ph];
      const std::size_t iters = phase.iter_global.size();
      std::vector<std::uint32_t>& flat = direct[p][ph];
      flat.resize(iters * R);
      for (std::uint32_t r = 0; r < R; ++r)
        for (std::size_t j = 0; j < iters; ++j)
          flat[static_cast<std::size_t>(r) * iters + j] =
              kernel.ref(r, phase.iter_global[j]);
    }
  };
  if (!first_touch)
    for (std::uint32_t p = 0; p < P; ++p) init_proc_state(p);

  const CostTags tags = make_cost_tags(RA, NA);
  NativeResult result;
  const std::uint32_t sweeps = opt.sweeps;
  std::barrier sync(static_cast<std::ptrdiff_t>(P));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    threads.emplace_back([&, p] {
      if (opt.affinity.pin_threads) pin_current_thread(p);
      if (first_touch) {
        init_proc_state(p);
        sync.arrive_and_wait();
      }
      earth::FiberContext ctx = earth::FiberContext::detached(p);
      ProcArrays& ps = priv[p];
      std::vector<std::uint32_t> redirected(R);
      // This worker's node range: it folds, updates and publishes
      // exactly these elements.
      const std::uint32_t lo = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(N) * p / P);
      const std::uint32_t hi = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(N) * (p + 1) / P);

      for (std::uint32_t sweep = 0; sweep < sweeps; ++sweep) {
        for (std::uint32_t ph = 0; ph < kp; ++ph) {
          const inspector::PhaseSchedule& phase = plan.insp[p].phases[ph];
          const std::size_t iters = phase.iter_global.size();
          const std::vector<std::uint32_t>& flat = direct[p][ph];
          if (opt.batch) {
            PhaseView view;
            view.iter_global = phase.iter_global;
            view.iter_local = phase.iter_local;
            view.indir = flat;
            view.num_iters = iters;
            view.num_refs = R;
            view.backend = backend;
            view.tile_iters = plan.tile_iters;
            kernel.compute_phase(ctx, tags, view, ps);
          } else {
            for (std::size_t j = 0; j < iters; ++j) {
              for (std::uint32_t r = 0; r < R; ++r)
                redirected[r] = flat[static_cast<std::size_t>(r) * iters + j];
              kernel.compute_edge(ctx, tags, phase.iter_global[j],
                                  phase.iter_local[j], redirected, ps);
            }
          }
        }

        // All replicas complete before anyone folds.
        sync.arrive_and_wait();

        // Fixed-order fold over this worker's node range: replica 0
        // first, then ascending — the deterministic-merge contract.
        for (std::uint32_t a = 0; a < RA; ++a) {
          for (std::uint32_t v = lo; v < hi; ++v) {
            double sum = priv[0].reduction[a][v];
            for (std::uint32_t q = 1; q < P; ++q)
              sum += priv[q].reduction[a][v];
            merged.reduction[a][v] = sum;
          }
        }
        kernel.update_nodes(ctx, tags, lo, hi, lo, merged);

        // Publish before anyone reads another range or zeroes a replica
        // someone may still be folding from.
        sync.arrive_and_wait();

        if (sweep + 1 < sweeps) {
          for (std::uint32_t a = 0; a < RA; ++a)
            std::fill(ps.reduction[a].begin(), ps.reduction[a].end(), 0.0);
          for (std::uint32_t a = 0; a < NA; ++a)
            std::copy(merged.node_read[a].begin(),
                      merged.node_read[a].end(), ps.node_read[a].begin());
          sync.arrive_and_wait();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.reduction = std::move(merged.reduction);
  result.node_read = std::move(merged.node_read);
  result.backend = opt.batch ? backend : BackendKind::Scalar;
  return result;
}

/// Atomic executor: workers capture each edge's contributions in a tiny
/// per-worker scratch block (reduction arrays sized num_refs, identity
/// redirection), then fetch_add them into the shared arrays. No
/// replicas, no rotation — but the accumulation order depends on thread
/// interleaving, so results are tolerance-reproducible only (the
/// strategy is excluded from every bit-identity gate) and the batched
/// phase loops cannot be used (contributions must be intercepted before
/// they hit shared memory). The compute backend is therefore always
/// reported as Scalar.
NativeResult run_atomic(const PhasedKernel& kernel,
                        const ExecutionPlan& plan,
                        const SweepOptions& opt) {
  const KernelShape shape = kernel.shape();
  const std::uint32_t P = plan.options.num_procs;
  const std::uint32_t kp = P * plan.options.k;
  const std::uint32_t RA = shape.num_reduction_arrays;
  const std::uint32_t NA = shape.num_node_read_arrays;
  const std::uint32_t N = shape.num_nodes;
  const std::uint32_t R = shape.num_refs;

  ProcArrays global;
  global.reduction.assign(RA, std::vector<double>(N, 0.0));
  global.node_read.assign(NA, std::vector<double>(N, 0.0));
  kernel.init_node_arrays(global.node_read);

  // scratch[p]: reduction rows sized num_refs (slot r holds the edge's
  // contribution through reference r); node_read is the worker's replica.
  std::vector<ProcArrays> scratch(P);
  const auto init_proc_state = [&](std::uint32_t p) {
    scratch[p].reduction.assign(RA, std::vector<double>(R, 0.0));
    scratch[p].node_read.assign(NA, std::vector<double>(N, 0.0));
    kernel.init_node_arrays(scratch[p].node_read);
  };
  if (!opt.affinity.first_touch)
    for (std::uint32_t p = 0; p < P; ++p) init_proc_state(p);

  const CostTags tags = make_cost_tags(RA, NA);
  NativeResult result;
  const std::uint32_t sweeps = opt.sweeps;
  std::barrier sync(static_cast<std::ptrdiff_t>(P));

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    threads.emplace_back([&, p] {
      if (opt.affinity.pin_threads) pin_current_thread(p);
      if (opt.affinity.first_touch) {
        init_proc_state(p);
        sync.arrive_and_wait();
      }
      earth::FiberContext ctx = earth::FiberContext::detached(p);
      ProcArrays& ps = scratch[p];
      std::vector<std::uint32_t> identity(R);
      for (std::uint32_t r = 0; r < R; ++r) identity[r] = r;
      const std::uint32_t lo = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(N) * p / P);
      const std::uint32_t hi = static_cast<std::uint32_t>(
          static_cast<std::uint64_t>(N) * (p + 1) / P);

      for (std::uint32_t sweep = 0; sweep < sweeps; ++sweep) {
        for (std::uint32_t ph = 0; ph < kp; ++ph) {
          const inspector::PhaseSchedule& phase = plan.insp[p].phases[ph];
          const std::size_t iters = phase.iter_global.size();
          for (std::size_t j = 0; j < iters; ++j) {
            const std::uint64_t g = phase.iter_global[j];
            for (std::uint32_t a = 0; a < RA; ++a)
              std::fill(ps.reduction[a].begin(), ps.reduction[a].end(),
                        0.0);
            kernel.compute_edge(ctx, tags, g, phase.iter_local[j],
                                identity, ps);
            for (std::uint32_t a = 0; a < RA; ++a) {
              for (std::uint32_t r = 0; r < R; ++r) {
                std::atomic_ref<double> cell(
                    global.reduction[a][kernel.ref(r, g)]);
                cell.fetch_add(ps.reduction[a][r],
                               std::memory_order_relaxed);
              }
            }
          }
        }

        // All scatters land before the node update reads them.
        sync.arrive_and_wait();
        kernel.update_nodes(ctx, tags, lo, hi, lo, global);
        sync.arrive_and_wait();

        if (sweep + 1 < sweeps) {
          for (std::uint32_t a = 0; a < RA; ++a)
            std::fill(global.reduction[a].begin() + lo,
                      global.reduction[a].begin() + hi, 0.0);
          for (std::uint32_t a = 0; a < NA; ++a)
            std::copy(global.node_read[a].begin(),
                      global.node_read[a].end(), ps.node_read[a].begin());
          sync.arrive_and_wait();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.reduction = std::move(global.reduction);
  result.node_read = std::move(global.node_read);
  result.backend = BackendKind::Scalar;
  return result;
}

}  // namespace

NativeResult run_native_plan(const PhasedKernel& kernel,
                             const ExecutionPlan& plan,
                             const SweepOptions& opt) {
  const KernelShape shape = kernel.shape();
  ER_EXPECTS(opt.sweeps >= 1);
  ER_CHECK_MSG(shape.num_nodes == plan.shape.num_nodes &&
                   shape.num_edges == plan.shape.num_edges &&
                   shape.num_refs == plan.shape.num_refs &&
                   shape.num_reduction_arrays ==
                       plan.shape.num_reduction_arrays &&
                   shape.num_node_read_arrays ==
                       plan.shape.num_node_read_arrays,
               "execution plan was built for a differently-shaped kernel");

  // Resolve the compute backend and the lowering strategy once, before
  // any worker spawns: Auto picks via host support / the cost model, and
  // an unsupported explicit request raises its E-* code here rather than
  // faulting in a worker. The per-edge executors ignore the backend but
  // still validate it.
  const BackendKind backend = resolve_backend(opt.backend);
  const StrategyKind strategy = resolve_strategy(
      plan.options.strategy,
      strategy_inputs(shape, plan.options.num_procs, plan.options.k));

  // Layout plans address the relabeled element space: every executor runs
  // against a renumbered clone of the kernel and the result arrays are
  // un-permuted at read-out, so callers never see the relabeling.
  std::unique_ptr<PhasedKernel> renumbered;
  const PhasedKernel* exec = &kernel;
  if (!plan.perm.empty()) {
    ER_CHECK_MSG(plan.perm.size() == shape.num_nodes,
                 "layout permutation does not match the kernel's node count");
    renumbered = kernel.clone_renumbered(plan.perm);
    ER_CHECK_MSG(renumbered != nullptr,
                 "E-LAYOUT-UNSUPPORTED: plan carries a layout permutation "
                 "but the kernel cannot renumber");
    exec = renumbered.get();
  }

  NativeResult result;
  switch (strategy) {
    case StrategyKind::Privatized:
      result = run_privatized(*exec, plan, opt, backend);
      break;
    case StrategyKind::Atomic:
      result = run_atomic(*exec, plan, opt);
      break;
    case StrategyKind::Auto:  // unreachable after resolution
    case StrategyKind::Phased:
      result = run_phased(*exec, plan, opt, backend);
      break;
  }
  result.strategy = strategy;

  if (!plan.perm.empty()) {
    // res_old[a][v] = res_new[a][perm[v]] — one gather per array.
    std::vector<double> tmp;
    const auto unpermute = [&](std::vector<std::vector<double>>& arrs) {
      for (std::vector<double>& a : arrs) {
        tmp.resize(a.size());
        for (std::uint32_t v = 0; v < shape.num_nodes; ++v)
          tmp[v] = a[plan.perm[v]];
        a.swap(tmp);
      }
    };
    unpermute(result.reduction);
    unpermute(result.node_read);
  }
  return result;
}

NativeResult run_native_engine(const PhasedKernel& kernel,
                               const NativeOptions& opt) {
  const ExecutionPlan plan = build_execution_plan(kernel, opt.plan());
  return run_native_plan(kernel, plan, opt.sweep());
}

}  // namespace earthred::core
