#include "core/native_engine.hpp"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "inspector/rotation.hpp"
#include "support/check.hpp"

namespace earthred::core {

using inspector::InspectorResult;
using inspector::RotationSchedule;

namespace {

/// One-slot bounded buffer: sender waits `free`, writes, posts `full`;
/// receiver waits `full`, reads, posts `free`.
struct StagedSlot {
  std::vector<double> data;
  std::binary_semaphore full{0};
  std::binary_semaphore free{1};
};

std::uint64_t vec_bytes(const std::vector<std::uint32_t>& v) {
  return v.capacity() * sizeof(std::uint32_t);
}

}  // namespace

std::uint64_t ExecutionPlan::byte_size() const {
  std::uint64_t bytes = sizeof(ExecutionPlan);
  for (const InspectorResult& r : insp) {
    bytes += vec_bytes(r.assigned_phase) + vec_bytes(r.slot_elem) +
             vec_bytes(r.free_slots);
    for (const inspector::PhaseSchedule& ph : r.phases) {
      bytes += vec_bytes(ph.iter_global) + vec_bytes(ph.iter_local) +
               vec_bytes(ph.copy_dst) + vec_bytes(ph.copy_src);
      for (const auto& row : ph.indir) bytes += vec_bytes(row);
    }
  }
  return bytes;
}

ExecutionPlan build_execution_plan(const PhasedKernel& kernel,
                                   const PlanOptions& opt) {
  const KernelShape shape = kernel.shape();
  ER_EXPECTS(opt.num_procs >= 1);
  ER_EXPECTS(opt.k >= 1);

  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t P = opt.num_procs;
  ExecutionPlan plan{shape, opt,
                     RotationSchedule(shape.num_nodes, P, opt.k),
                     {}, 0.0};

  const auto owned_iters = inspector::distribute_iterations(
      shape.num_edges, P, opt.distribution, opt.block_cyclic_size);
  plan.insp.reserve(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    inspector::IterationRefs refs;
    refs.global_iter = owned_iters[p];
    refs.refs.resize(shape.num_refs);
    for (std::uint32_t r = 0; r < shape.num_refs; ++r)
      for (std::uint32_t e : refs.global_iter)
        refs.refs[r].push_back(kernel.ref(r, e));
    plan.insp.push_back(
        inspector::run_light_inspector(plan.sched, p, refs, opt.inspector));
  }
  plan.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return plan;
}

NativeResult run_native_plan(const PhasedKernel& kernel,
                             const ExecutionPlan& plan,
                             const SweepOptions& opt) {
  const KernelShape shape = kernel.shape();
  ER_EXPECTS(opt.sweeps >= 1);
  ER_CHECK_MSG(shape.num_nodes == plan.shape.num_nodes &&
                   shape.num_edges == plan.shape.num_edges &&
                   shape.num_refs == plan.shape.num_refs &&
                   shape.num_reduction_arrays ==
                       plan.shape.num_reduction_arrays &&
                   shape.num_node_read_arrays ==
                       plan.shape.num_node_read_arrays,
               "execution plan was built for a differently-shaped kernel");

  const RotationSchedule& sched = plan.sched;
  const std::uint32_t P = plan.options.num_procs;
  const std::uint32_t k = plan.options.k;
  const std::uint32_t kp = P * k;
  const std::uint32_t RA = shape.num_reduction_arrays;
  const std::uint32_t NA = shape.num_node_read_arrays;

  // ---- per-run mutable state (the plan itself stays untouched) ----------
  std::vector<ProcArrays> arrays(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    arrays[p].reduction.assign(
        RA, std::vector<double>(plan.insp[p].local_array_size, 0.0));
    arrays[p].node_read.assign(NA,
                               std::vector<double>(shape.num_nodes, 0.0));
    kernel.init_node_arrays(arrays[p].node_read);
  }

  // ---- staging buffers ---------------------------------------------------
  // rotation[q][ph]: the portion arriving for q's phase ph.
  std::vector<std::vector<std::unique_ptr<StagedSlot>>> rotation(P);
  // bcast[q][pid]: the refreshed node-read portion pid for receiver q.
  std::vector<std::vector<std::unique_ptr<StagedSlot>>> bcast(P);
  for (std::uint32_t q = 0; q < P; ++q) {
    rotation[q].resize(kp);
    for (std::uint32_t ph = 0; ph < kp; ++ph) {
      rotation[q][ph] = std::make_unique<StagedSlot>();
      const std::uint32_t pid = sched.owned_portion(q, ph);
      rotation[q][ph]->data.assign(
          static_cast<std::size_t>(sched.portion_size(pid)) * RA, 0.0);
    }
    bcast[q].resize(sched.num_portions());
    for (std::uint32_t pid = 0; pid < sched.num_portions(); ++pid) {
      if (sched.final_owner(pid) == q) continue;  // local, no staging
      bcast[q][pid] = std::make_unique<StagedSlot>();
      bcast[q][pid]->data.assign(
          static_cast<std::size_t>(sched.portion_size(pid)) *
              std::max<std::uint32_t>(NA, 1),
          0.0);
    }
  }

  // Kernels index into the tag vectors even though detached contexts
  // ignore the charges, so size them properly.
  CostTags tags;
  {
    earth::ArrayTagAllocator alloc;
    for (std::uint32_t a = 0; a < RA; ++a)
      tags.reduction.push_back(alloc.next());
    for (std::uint32_t a = 0; a < NA; ++a)
      tags.node_read.push_back(alloc.next());
    tags.edge_data = alloc.next();
    tags.indir = alloc.next();
  }

  NativeResult result;
  result.reduction.assign(RA, std::vector<double>(shape.num_nodes, 0.0));
  result.node_read.assign(NA, std::vector<double>(shape.num_nodes, 0.0));

  const std::uint32_t sweeps = opt.sweeps;
  const auto t0 = std::chrono::steady_clock::now();

  // Stall watchdog: every semaphore wait is bounded by opt.stall_timeout
  // (0 = unbounded). The first wait to time out records a description and
  // raises `stalled`; every other wait polls the flag and bails, so all
  // threads unwind, join() returns, and the failure surfaces as a
  // check_error instead of a hang.
  std::atomic<bool> stalled{false};
  std::mutex stall_mutex;
  std::string stall_what;
  const auto wait_or_stall = [&](std::binary_semaphore& sem,
                                 const std::string& what) -> bool {
    if (opt.stall_timeout <= 0.0) {
      sem.acquire();
      return true;
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opt.stall_timeout));
    while (!sem.try_acquire_for(std::chrono::milliseconds(10))) {
      if (stalled.load(std::memory_order_relaxed)) return false;
      if (std::chrono::steady_clock::now() >= deadline) {
        if (!stalled.exchange(true)) {
          const std::lock_guard<std::mutex> lock(stall_mutex);
          stall_what = what;
        }
        return false;
      }
    }
    return true;
  };

  std::vector<std::thread> threads;
  threads.reserve(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    threads.emplace_back([&, p] {
      earth::FiberContext ctx = earth::FiberContext::detached(p);
      const InspectorResult& insp = plan.insp[p];
      ProcArrays& ps = arrays[p];
      std::vector<std::uint32_t> redirected(shape.num_refs);

      for (std::uint32_t sweep = 0; sweep < sweeps; ++sweep) {
        for (std::uint32_t ph = 0; ph < kp; ++ph) {
          const std::uint32_t pid = sched.owned_portion(p, ph);
          const std::uint32_t begin = sched.portion_begin(pid);
          const std::uint32_t end = sched.portion_end(pid);
          const std::uint32_t psize = end - begin;

          // Sweep boundary: apply the staged node-read refreshes.
          if (ph == 0 && sweep > 0 && NA > 0) {
            for (std::uint32_t opid = 0; opid < sched.num_portions();
                 ++opid) {
              StagedSlot* slot = bcast[p][opid].get();
              if (!slot) continue;  // finalized locally
              if (!wait_or_stall(
                      slot->full,
                      "proc " + std::to_string(p) +
                          " stuck waiting for the node-read broadcast of "
                          "portion " +
                          std::to_string(opid) + " at sweep " +
                          std::to_string(sweep)))
                return;
              const std::uint32_t ob = sched.portion_begin(opid);
              const std::uint32_t osz = sched.portion_size(opid);
              for (std::uint32_t a = 0; a < NA; ++a)
                std::copy(slot->data.begin() + a * osz,
                          slot->data.begin() + (a + 1) * osz,
                          ps.node_read[a].begin() + ob);
              slot->free.release();
            }
          }

          // Portion arrival (the first k phases of sweep 0 start local).
          if (!(sweep == 0 && ph < k)) {
            StagedSlot* slot = rotation[p][ph].get();
            if (!wait_or_stall(
                    slot->full,
                    "proc " + std::to_string(p) +
                        " stuck waiting for portion " +
                        std::to_string(pid) + " to arrive for phase " +
                        std::to_string(ph) + " at sweep " +
                        std::to_string(sweep) + " (lost forward?)"))
              return;
            for (std::uint32_t a = 0; a < RA; ++a)
              std::copy(slot->data.begin() + a * psize,
                        slot->data.begin() + (a + 1) * psize,
                        ps.reduction[a].begin() + begin);
            slot->free.release();
          }

          // Main loop.
          const inspector::PhaseSchedule& phase = insp.phases[ph];
          for (std::size_t j = 0; j < phase.iter_global.size(); ++j) {
            for (std::uint32_t r = 0; r < shape.num_refs; ++r)
              redirected[r] = phase.indir[r][j];
            kernel.compute_edge(ctx, tags, phase.iter_global[j],
                                phase.iter_local[j], redirected, ps);
          }
          // Second loop.
          for (std::size_t j = 0; j < phase.copy_dst.size(); ++j) {
            for (std::uint32_t a = 0; a < RA; ++a) {
              ps.reduction[a][phase.copy_dst[j]] +=
                  ps.reduction[a][phase.copy_src[j]];
              ps.reduction[a][phase.copy_src[j]] = 0.0;
            }
          }

          // Portion complete: node update, result capture, zero, bcast.
          if (sched.last_owning_phase(pid) == ph) {
            kernel.update_nodes(ctx, tags, begin, end, begin, ps);
            if (sweep + 1 == sweeps) {
              for (std::uint32_t a = 0; a < RA; ++a)
                std::copy(ps.reduction[a].begin() + begin,
                          ps.reduction[a].begin() + end,
                          result.reduction[a].begin() + begin);
              for (std::uint32_t a = 0; a < NA; ++a)
                std::copy(ps.node_read[a].begin() + begin,
                          ps.node_read[a].begin() + end,
                          result.node_read[a].begin() + begin);
            }
            for (std::uint32_t a = 0; a < RA; ++a)
              std::fill(ps.reduction[a].begin() + begin,
                        ps.reduction[a].begin() + end, 0.0);
            if (NA > 0 && sweep + 1 < sweeps) {
              for (std::uint32_t q = 0; q < P; ++q) {
                if (q == p) continue;
                StagedSlot* slot = bcast[q][pid].get();
                if (!wait_or_stall(
                        slot->free,
                        "proc " + std::to_string(p) +
                            " stuck broadcasting portion " +
                            std::to_string(pid) + " to proc " +
                            std::to_string(q) + " at sweep " +
                            std::to_string(sweep)))
                  return;
                for (std::uint32_t a = 0; a < NA; ++a)
                  std::copy(ps.node_read[a].begin() + begin,
                            ps.node_read[a].begin() + end,
                            slot->data.begin() + a * psize);
                slot->full.release();
              }
            }
          }

          // Forward the portion around the ring.
          std::uint32_t tph = ph + k;
          std::uint32_t tsweep = sweep + (tph >= kp ? 1 : 0);
          tph %= kp;
          if (tsweep < sweeps) {
            if (opt.lose_forward.enabled && opt.lose_forward.proc == p &&
                opt.lose_forward.phase == ph &&
                opt.lose_forward.sweep == sweep)
              continue;  // fault hook: this forward silently vanishes
            const std::uint32_t q = sched.next_owner(p);
            StagedSlot* slot = rotation[q][tph].get();
            if (!wait_or_stall(
                    slot->free,
                    "proc " + std::to_string(p) +
                        " stuck forwarding portion " + std::to_string(pid) +
                        " to proc " + std::to_string(q) + " phase " +
                        std::to_string(tph) + " at sweep " +
                        std::to_string(sweep)))
              return;
            for (std::uint32_t a = 0; a < RA; ++a)
              std::copy(ps.reduction[a].begin() + begin,
                        ps.reduction[a].begin() + end,
                        slot->data.begin() + a * psize);
            slot->full.release();
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (stalled.load()) {
    const std::lock_guard<std::mutex> lock(stall_mutex);
    throw check_error("native engine stalled after " +
                      std::to_string(opt.stall_timeout) + "s: " +
                      stall_what);
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return result;
}

NativeResult run_native_engine(const PhasedKernel& kernel,
                               const NativeOptions& opt) {
  const ExecutionPlan plan = build_execution_plan(kernel, opt.plan());
  return run_native_plan(kernel, plan, opt.sweep());
}

}  // namespace earthred::core
