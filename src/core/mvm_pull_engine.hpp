// Pull-based mvm: the fine-grained alternative to portion rotation.
//
// EARTH's split-phase GET_SYNC invites a different design than the
// paper's bulk rotation: keep x block-distributed and *pull* each distinct
// off-node element with an individual remote read, overlapping all the
// outstanding gets (this is how fine-grained multithreading is usually
// pitched). The contrast with run_mvm_engine is the point:
//
//   * pull volume and message count depend on the sparsity pattern
//     (one request+response per distinct remote column), while rotation's
//     traffic is fixed;
//   * pull pays per-message overheads on thousands of small messages;
//     rotation amortizes them over portion-sized transfers;
//   * pull needs no phase structure at all — maximum simplicity.
//
// bench_ablation_pull quantifies where each wins.
#pragma once

#include <cstdint>
#include <span>

#include "core/result.hpp"
#include "sparse/csr.hpp"

namespace earthred::core {

struct MvmPullOptions {
  std::uint32_t num_procs = 2;
  std::uint32_t sweeps = 1;
  earth::MachineConfig machine{};
  bool collect_results = true;
};

/// Runs repeated y = A*x with block-distributed rows and x, pulling
/// remote x elements via GET_SYNC each sweep. result.reduction[0] = y.
RunResult run_mvm_pull_engine(const sparse::CsrMatrix& A,
                              std::span<const double> x,
                              const MvmPullOptions& opt);

}  // namespace earthred::core
