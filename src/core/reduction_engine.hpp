// The paper's execution strategy (Sec. 2.2) for LHS-indirect irregular
// reductions, realized as a fiber graph on the simulated EARTH machine.
//
// Per processor p and phase ph (0 <= ph < k*P), a persistent compute fiber
// fires once per sweep when (a) the previous phase on p finished, (b) the
// rotating reduction portion for ph arrived, and — for phase 0 — (c) all
// node-read replication broadcasts of the previous sweep landed. Its body:
//
//   1. main loop: the iterations the LightInspector assigned to ph, with
//      redirected references (direct into the owned portion, or into the
//      remote buffer appended past the array);
//   2. second loop: fold buffered contributions into elements owned this
//      phase (copy1_out/copy2_out of Figure 3), zeroing the slots;
//   3. if ph is the portion's last owning phase (always within the final
//      k phases of the sweep): run the kernel's node update for the
//      now-complete portion, broadcast the refreshed node-read portion to
//      the other processors, and zero the reduction portion for the next
//      sweep;
//   4. forward the reduction portion to next_owner(p) = p-1 mod P (owned
//      there k phases later — the overlap window) and signal the next
//      local phase.
//
// Communication per phase is one portion-sized message regardless of the
// indirection arrays' contents — the paper's central property.
#pragma once

#include <cstdint>
#include <memory>

#include "core/kernel.hpp"
#include "core/result.hpp"
#include "earth/reliable.hpp"
#include "earth/types.hpp"
#include "inspector/distribution.hpp"
#include "inspector/light_inspector.hpp"

namespace earthred::core {

struct RotationOptions {
  std::uint32_t num_procs = 2;
  std::uint32_t k = 2;  ///< the paper's overlap parameter
  inspector::Distribution distribution = inspector::Distribution::Cyclic;
  /// Chunk size when distribution == BlockCyclic.
  std::uint32_t block_cyclic_size = 16;
  std::uint32_t sweeps = 1;  ///< time-step iterations (paper: 100)
  earth::MachineConfig machine{};
  inspector::LightInspectorOptions inspector{};
  /// Cycles charged per (iteration x reference) of LightInspector work.
  earth::Cycles inspector_cycles_per_ref = 12;
  /// Optional per-processor override of the iteration count the inspector
  /// stage charges for (used by the adaptive driver to model the
  /// *incremental* LightInspector, which only touches changed iterations).
  /// Empty = charge for every local iteration (a full run).
  std::vector<std::uint64_t> inspector_work_items;
  /// Assemble final arrays into RunResult (costs host time only).
  bool collect_results = true;
  /// Route ring forwards and replication broadcasts through
  /// ReliableChannels (sequence numbers, payload checksums, cumulative
  /// acks, timeout retransmit) instead of raw sends. Required for correct
  /// results when machine.fault is active; adds protocol fibers, header
  /// and ack traffic otherwise quantified by bench_ablation_faults.
  bool reliable = false;
  /// Tuning for the reliable channels when `reliable` is set.
  earth::ReliableOptions reliable_opt{};
};

/// Runs `kernel` under the rotation strategy and returns timing, machine
/// stats, per-phase iteration counts, and (optionally) the final arrays.
RunResult run_rotation_engine(const PhasedKernel& kernel,
                              const RotationOptions& opt);

}  // namespace earthred::core
