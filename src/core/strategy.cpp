#include "core/strategy.hpp"

#include <atomic>
#include <cstdlib>

#include "core/kernel.hpp"
#include "support/check.hpp"
#include "support/cpu_features.hpp"
#include "support/str.hpp"

namespace earthred::core {

std::string_view to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::Auto: return "auto";
    case StrategyKind::Phased: return "phased";
    case StrategyKind::Privatized: return "privatized";
    case StrategyKind::Atomic: return "atomic";
  }
  return "phased";
}

StrategyKind parse_strategy(std::string_view name) {
  if (name == "auto") return StrategyKind::Auto;
  if (name == "phased" || name == "rotation") return StrategyKind::Phased;
  if (name == "privatized" || name == "private")
    return StrategyKind::Privatized;
  if (name == "atomic") return StrategyKind::Atomic;
  throw check_error(strformat(
      "E-STRATEGY-NAME: unknown strategy '%.*s' "
      "(expected auto|phased|privatized|atomic)",
      static_cast<int>(name.size()), name.data()));
}

bool strategy_supported(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::Auto:
    case StrategyKind::Phased:
    case StrategyKind::Privatized:
      return true;
    case StrategyKind::Atomic:
      // The CAS scatter needs genuinely lock-free double fetch_add; on a
      // host where atomic_ref<double> takes a lock the strategy would be
      // both slow and deadlock-prone inside signal contexts, so it is
      // rejected at admission instead.
      return std::atomic_ref<double>::is_always_lock_free;
  }
  return false;
}

StrategyKind effective_strategy(StrategyKind requested) {
  if (requested != StrategyKind::Auto) return requested;
  const char* forced = std::getenv("EARTHRED_FORCE_STRATEGY");
  if (forced == nullptr || *forced == '\0') return requested;
  return parse_strategy(forced);
}

StrategyInputs strategy_inputs(const KernelShape& shape,
                               std::uint32_t num_procs, std::uint32_t k) {
  StrategyInputs in;
  in.num_nodes = shape.num_nodes == 0 ? 1 : shape.num_nodes;
  in.num_edges = shape.num_edges == 0 ? 1 : shape.num_edges;
  in.num_refs = shape.num_refs == 0 ? 1 : shape.num_refs;
  in.num_reduction_arrays =
      shape.num_reduction_arrays == 0 ? 1 : shape.num_reduction_arrays;
  in.num_procs = num_procs == 0 ? 1 : num_procs;
  in.k = k == 0 ? 1 : k;
  in.hw_threads = support::hardware_threads();
  return in;
}

namespace {

// Cost-model constants, in units of one fused gather-accumulate (the
// per-reference compute work every strategy pays identically). They are
// coarse on purpose: the model only has to rank strategies correctly on
// real shapes (bench_hotpath's strategy section gates the auto pick at
// >= 0.9x the best measured strategy), not predict absolute time.
constexpr double kCopyCost = 0.45;    ///< one double copied, per double
constexpr double kSyncCost = 5.0;     ///< one semaphore/barrier handoff
constexpr double kCasCost = 5.0;      ///< CAS-loop fetch_add vs plain add
constexpr double kEdgeCallCost = 2.0; ///< per-edge virtual call + scratch
                                      ///< zero (the atomic path cannot
                                      ///< use the batched phase loops)
constexpr double kOversubFactor = 100.0;  ///< a handoff between procs
                                          ///< sharing a hardware thread is
                                          ///< a scheduler round trip
                                          ///< (~10us), not a cache-line
                                          ///< ping (~100ns)

double derived_fanin(const StrategyInputs& in) {
  if (in.fanin_mean > 0.0) return in.fanin_mean;
  return static_cast<double>(in.num_edges) * in.num_refs /
         static_cast<double>(in.num_nodes);
}

}  // namespace

std::vector<StrategyCost> score_strategies(const StrategyInputs& in) {
  const double N = static_cast<double>(in.num_nodes);
  const double E = static_cast<double>(in.num_edges);
  const double P = in.num_procs;
  const double K = in.k;
  const double R = in.num_refs;
  const double RA = in.num_reduction_arrays;
  const double fanin = derived_fanin(in);

  // When the plan runs more procs than the host has hardware threads,
  // every handoff parks a thread through the OS scheduler; price sync at
  // the context-switch rate. hw_threads == 0 (the compiler's static
  // pass) models a dedicated host and keeps the base rate.
  const bool oversub = in.hw_threads != 0 && in.num_procs > in.hw_threads;
  const double sync_unit = oversub ? kSyncCost * kOversubFactor : kSyncCost;
  const char* sync_note = oversub ? ", oversubscribed host" : "";

  std::vector<StrategyCost> scores;
  scores.reserve(3);

  // Phased: every portion (N/(k*P) elements x RA arrays) is copied
  // through the staging slot of each of the k*P phases once per sweep —
  // P * N * RA doubles of rotation traffic — plus two semaphore handoffs
  // per (proc, phase).
  {
    const double rotate = kCopyCost * P * N * RA / E;
    const double sync = sync_unit * 2.0 * K * P * P / E;
    StrategyCost c;
    c.strategy = StrategyKind::Phased;
    c.cost_per_edge = R + rotate + sync;
    c.rationale = strformat(
        "compute %.2f + rotate %.2f (%.2g portion-doubles/edge) + "
        "sync %.2f (%u phases x %u procs%s)",
        R, rotate, P * N * RA / E, sync,
        static_cast<unsigned>(in.k * in.num_procs),
        static_cast<unsigned>(in.num_procs), sync_note);
    scores.push_back(std::move(c));
  }

  // Privatized: replicas are zeroed and folded every sweep — P reads +
  // 1 write of N * RA doubles — with three barriers per sweep. Replica
  // memory beyond the last-level cache makes the merge bandwidth-bound,
  // modeled as a flat multiplier per doubling.
  {
    const double replica_bytes = P * N * RA * 8.0;
    constexpr double kLlcBytes = 32.0 * 1024 * 1024;
    double mem_penalty = 1.0;
    for (double b = replica_bytes; b > kLlcBytes && mem_penalty < 4.0;
         b /= 2.0)
      mem_penalty += 0.25;
    const double merge = kCopyCost * (P + 1.0) * N * RA / E * mem_penalty;
    const double sync = sync_unit * 3.0 * P / E;
    StrategyCost c;
    c.strategy = StrategyKind::Privatized;
    c.cost_per_edge = R + merge + sync;
    c.rationale = strformat(
        "compute %.2f + merge %.2f (%u replicas of %.2g doubles, "
        "mem penalty %.2fx) + sync %.2f (3 barriers%s)",
        R, merge, static_cast<unsigned>(in.num_procs), N * RA,
        mem_penalty, sync, sync_note);
    scores.push_back(std::move(c));
  }

  // Atomic: no rotation and no merge, but every scatter is a CAS loop,
  // the batched phase loops are unavailable (contributions must be
  // captured per edge before the atomic adds), and fan-in skew means hot
  // elements serialize on their cache line.
  {
    const double contention = 2.0 * in.fanin_cv;
    StrategyCost c;
    c.strategy = StrategyKind::Atomic;
    c.cost_per_edge = R * (1.0 + kCasCost + contention) + kEdgeCallCost;
    c.auto_eligible = !in.fp_accumulators;
    c.rationale = strformat(
        "compute %.2f x (1 + cas %.1f + contention %.2f) + per-edge "
        "call %.1f; fan-in %.1f%s",
        R, kCasCost, contention, kEdgeCallCost, fanin,
        in.fp_accumulators
            ? "; order-sensitive for real accumulators: opt-in only"
            : "");
    scores.push_back(std::move(c));
  }
  return scores;
}

StrategyKind choose_strategy(const StrategyInputs& in) {
  const std::vector<StrategyCost> scores = score_strategies(in);
  const StrategyCost* best = nullptr;
  for (const StrategyCost& c : scores) {
    if (!c.auto_eligible || !strategy_supported(c.strategy)) continue;
    if (best == nullptr || c.cost_per_edge < best->cost_per_edge) best = &c;
  }
  return best == nullptr ? StrategyKind::Phased : best->strategy;
}

StrategyKind resolve_strategy(StrategyKind requested,
                              const StrategyInputs& in) {
  const StrategyKind effective = effective_strategy(requested);
  if (effective == StrategyKind::Auto) return choose_strategy(in);
  if (!strategy_supported(effective)) {
    throw check_error(strformat(
        "E-STRATEGY-UNSUPPORTED: strategy '%.*s' is not available on this "
        "host; use --strategy=auto for graceful fallback",
        static_cast<int>(to_string(effective).size()),
        to_string(effective).data()));
  }
  return effective;
}

std::uint64_t privatized_replica_bytes(const KernelShape& shape,
                                       std::uint32_t num_procs) {
  return static_cast<std::uint64_t>(num_procs) * shape.num_nodes *
         shape.num_reduction_arrays * sizeof(double);
}

}  // namespace earthred::core
