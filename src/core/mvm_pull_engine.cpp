#include "core/mvm_pull_engine.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "earth/machine.hpp"
#include "support/check.hpp"

namespace earthred::core {

using earth::Cycles;
using earth::EarthMachine;
using earth::FiberContext;
using earth::FiberId;

namespace {
std::uint32_t block_begin(std::uint32_t n, std::uint32_t P, std::uint32_t p) {
  const std::uint32_t q = n / P, r = n % P;
  return p * q + std::min(p, r);
}

std::uint32_t block_owner(std::uint32_t n, std::uint32_t P,
                          std::uint32_t e) {
  const std::uint32_t q = n / P, r = n % P;
  const std::uint32_t split = r * (q + 1);
  return e < split ? e / (q + 1) : r + (e - split) / q;
}
}  // namespace

RunResult run_mvm_pull_engine(const sparse::CsrMatrix& A,
                              std::span<const double> x,
                              const MvmPullOptions& opt) {
  ER_EXPECTS(x.size() == A.ncols());
  ER_EXPECTS(opt.num_procs >= 1 && opt.sweeps >= 1);
  const std::uint32_t P = opt.num_procs;
  ER_EXPECTS(A.ncols() >= P && A.nrows() >= P);

  earth::ArrayTagAllocator alloc;
  const earth::ArrayTag tag_x = alloc.next();
  const earth::ArrayTag tag_y = alloc.next();
  const earth::ArrayTag tag_acol = alloc.next();
  const earth::ArrayTag tag_aval = alloc.next();
  const earth::ArrayTag tag_ghost = alloc.next();

  struct ProcState {
    std::uint32_t row_begin = 0, row_end = 0;
    /// Distinct off-node columns this processor reads, and their owners.
    std::vector<std::uint32_t> ghost_col;
    std::vector<std::uint32_t> ghost_owner;
    std::unordered_map<std::uint32_t, std::uint32_t> ghost_of;
    std::vector<double> ghost_val;  // filled by gets each sweep
    std::vector<double> y_local;
  };
  std::vector<ProcState> procs(P);
  const auto row_ptr = A.row_ptr();
  const auto col_idx = A.col_idx();
  const auto values = A.values();
  for (std::uint32_t p = 0; p < P; ++p) {
    ProcState& ps = procs[p];
    ps.row_begin = block_begin(A.nrows(), P, p);
    ps.row_end = block_begin(A.nrows(), P, p + 1);
    const std::uint32_t xb = block_begin(A.ncols(), P, p);
    const std::uint32_t xe = block_begin(A.ncols(), P, p + 1);
    for (std::uint32_t r = ps.row_begin; r < ps.row_end; ++r) {
      for (std::uint64_t j = row_ptr[r]; j < row_ptr[r + 1]; ++j) {
        const std::uint32_t c = col_idx[j];
        if (c >= xb && c < xe) continue;  // local x element
        if (ps.ghost_of.emplace(c, ps.ghost_col.size()).second) {
          ps.ghost_col.push_back(c);
          ps.ghost_owner.push_back(block_owner(A.ncols(), P, c));
        }
      }
    }
    ps.ghost_val.assign(ps.ghost_col.size(), 0.0);
    ps.y_local.assign(ps.row_end - ps.row_begin, 0.0);
  }

  earth::MachineConfig mcfg = opt.machine;
  mcfg.num_nodes = P;
  EarthMachine m(mcfg);

  RunResult result;
  const bool collect = opt.collect_results;
  if (collect)
    result.reduction.assign(1, std::vector<double>(A.nrows(), 0.0));
  const std::uint32_t sweeps = opt.sweeps;

  std::vector<FiberId> issue(P), compute(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    const auto nghosts =
        static_cast<std::uint32_t>(procs[p].ghost_col.size());
    compute[p] = m.add_fiber(
        p, nghosts == 0 ? 1 : nghosts,
        [&, p](FiberContext& ctx) {
          ProcState& ps = procs[p];
          const std::uint64_t sweep = ctx.activation();
          const std::uint32_t xb = block_begin(A.ncols(), P, p);
          const std::uint32_t xe = block_begin(A.ncols(), P, p + 1);
          ctx.charge_intops(4 + (ps.row_end - ps.row_begin));
          for (std::uint32_t r = ps.row_begin; r < ps.row_end; ++r) {
            double acc = 0.0;
            for (std::uint64_t j = row_ptr[r]; j < row_ptr[r + 1]; ++j) {
              const std::uint32_t c = col_idx[j];
              ctx.load(tag_acol, j, 4);
              ctx.load(tag_aval, j, 8);
              double xv;
              if (c >= xb && c < xe) {
                ctx.load(tag_x, c, 8);
                xv = x[c];
              } else {
                const std::uint32_t g = ps.ghost_of.at(c);
                ctx.load(tag_ghost, g, 8);
                xv = ps.ghost_val[g];
              }
              ctx.charge_flops(2);
              acc += values[j] * xv;
            }
            ctx.store(tag_y, r - ps.row_begin, 8);
            ps.y_local[r - ps.row_begin] = acc;
          }
          if (collect && sweep + 1 == sweeps)
            std::copy(ps.y_local.begin(), ps.y_local.end(),
                      result.reduction[0].begin() + ps.row_begin);
          if (sweep + 1 < sweeps) ctx.sync(issue[p]);
        },
        "pull-compute[" + std::to_string(p) + "]");
  }
  for (std::uint32_t p = 0; p < P; ++p) {
    issue[p] = m.add_fiber(
        p, 1,
        [&, p](FiberContext& ctx) {
          ProcState& ps = procs[p];
          if (ps.ghost_col.empty()) {
            ctx.sync(compute[p]);
            return;
          }
          // One split-phase GET_SYNC per distinct remote element; all
          // outstanding simultaneously — latency hiding by volume.
          for (std::uint32_t g = 0; g < ps.ghost_col.size(); ++g) {
            const std::uint32_t c = ps.ghost_col[g];
            ctx.get(ps.ghost_owner[g], 8,
                    [&ps, &x, g, c] {
                      const double v = x[c];
                      return [&ps, g, v] { ps.ghost_val[g] = v; };
                    },
                    compute[p]);
          }
        },
        "pull-issue[" + std::to_string(p) + "]");
    m.credit(issue[p]);
  }

  result.total_cycles = m.run();
  result.machine = m.stats();
  result.phases_per_proc = 1;
  for (std::uint32_t p = 0; p < P; ++p)
    result.phase_iterations.push_back(
        A.row_ptr()[procs[p].row_end] - A.row_ptr()[procs[p].row_begin]);

  for (std::uint32_t p = 0; p < P; ++p)
    ER_ENSURES(m.fiber_activations(compute[p]) == sweeps);
  return result;
}

}  // namespace earthred::core
