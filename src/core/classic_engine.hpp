// Classic (CHAOS-style) inspector/executor engine — the conventional
// distributed-memory scheme the paper contrasts with (Sec. 5.4.3, 6).
//
// Owner-computes with block-owned reduction arrays: each sweep, every
// processor accumulates all its iterations locally (owned elements into
// its block, off-processor elements into ghost slots), then ships one
// aggregated message per destination owner, which folds the values and
// runs the node update for its block. Node-read arrays are replicated and
// refreshed by one broadcast per processor per sweep.
//
// Differences from the rotation engine that the benches surface:
//   * the inspector requires communication (translation-table exchange),
//     paid again at every adaptive rebuild;
//   * per-sweep communication volume depends on the indirection contents
//     and the partition quality (see bench_classic_vs_light).
#pragma once

#include <cstdint>

#include "core/kernel.hpp"
#include "core/result.hpp"
#include "inspector/distribution.hpp"

namespace earthred::core {

struct ClassicOptions {
  std::uint32_t num_procs = 2;
  inspector::Distribution distribution = inspector::Distribution::Block;
  /// Chunk size when distribution == BlockCyclic.
  std::uint32_t block_cyclic_size = 16;
  std::uint32_t sweeps = 1;
  earth::MachineConfig machine{};
  /// Cycles per (iteration x reference) of inspector analysis.
  earth::Cycles inspector_cycles_per_ref = 20;
  bool collect_results = true;
};

/// Runs `kernel` under the classic inspector/executor scheme.
RunResult run_classic_engine(const PhasedKernel& kernel,
                             const ClassicOptions& opt);

}  // namespace earthred::core
