#include "core/sequential.hpp"

#include <algorithm>
#include <vector>

#include "earth/machine.hpp"
#include "support/check.hpp"

namespace earthred::core {

using earth::EarthMachine;
using earth::FiberContext;
using earth::FiberId;

namespace {
CostTags make_tags(const KernelShape& shape) {
  earth::ArrayTagAllocator alloc;
  CostTags tags;
  for (std::uint32_t a = 0; a < shape.num_reduction_arrays; ++a)
    tags.reduction.push_back(alloc.next());
  for (std::uint32_t a = 0; a < shape.num_node_read_arrays; ++a)
    tags.node_read.push_back(alloc.next());
  tags.edge_data = alloc.next();
  tags.indir = alloc.next();
  return tags;
}
}  // namespace

RunResult run_sequential_kernel(const PhasedKernel& kernel,
                                const SequentialOptions& opt) {
  const KernelShape shape = kernel.shape();
  ER_EXPECTS(opt.sweeps >= 1);
  const CostTags tags = make_tags(shape);

  ProcArrays arrays;
  arrays.reduction.assign(shape.num_reduction_arrays,
                          std::vector<double>(shape.num_nodes, 0.0));
  arrays.node_read.assign(shape.num_node_read_arrays,
                          std::vector<double>(shape.num_nodes, 0.0));
  kernel.init_node_arrays(arrays.node_read);

  earth::MachineConfig mcfg = opt.machine;
  mcfg.num_nodes = 1;
  EarthMachine m(mcfg);

  std::vector<FiberId> self(1);
  const std::uint32_t sweeps = opt.sweeps;
  self[0] = m.add_fiber(
      0, 1,
      [&](FiberContext& ctx) {
        std::vector<std::uint32_t> redirected(shape.num_refs);
        ctx.charge_intops(4 + shape.num_edges);
        for (std::uint64_t e = 0; e < shape.num_edges; ++e) {
          for (std::uint32_t r = 0; r < shape.num_refs; ++r) {
            redirected[r] = kernel.ref(r, e);
            ctx.load(tags.indir, e * shape.num_refs + r, 4);
          }
          kernel.compute_edge(ctx, tags, e, e, redirected, arrays);
        }
        kernel.update_nodes(ctx, tags, 0, shape.num_nodes, 0, arrays);
        if (ctx.activation() + 1 < sweeps) {
          // Re-zero reduction arrays for the next sweep.
          for (std::uint32_t a = 0; a < shape.num_reduction_arrays; ++a) {
            std::fill(arrays.reduction[a].begin(),
                      arrays.reduction[a].end(), 0.0);
            for (std::uint32_t v = 0; v < shape.num_nodes; ++v)
              ctx.store(tags.reduction[a], v);
          }
          ctx.sync(self[0]);
        }
      },
      "sequential");
  m.credit(self[0]);

  RunResult result;
  result.total_cycles = m.run();
  result.inspector_cycles = 0;
  result.machine = m.stats();
  result.phases_per_proc = 1;
  result.phase_iterations = {shape.num_edges};
  if (opt.collect_results) {
    result.reduction = arrays.reduction;
    result.node_read = arrays.node_read;
  }
  return result;
}

RunResult run_sequential_mvm(const sparse::CsrMatrix& A,
                             std::span<const double> x,
                             const SequentialOptions& opt) {
  ER_EXPECTS(x.size() == A.ncols());
  ER_EXPECTS(opt.sweeps >= 1);

  earth::ArrayTagAllocator alloc;
  const earth::ArrayTag tag_x = alloc.next();
  const earth::ArrayTag tag_y = alloc.next();
  const earth::ArrayTag tag_acol = alloc.next();
  const earth::ArrayTag tag_aval = alloc.next();
  const earth::ArrayTag tag_rptr = alloc.next();

  std::vector<double> y(A.nrows(), 0.0);

  earth::MachineConfig mcfg = opt.machine;
  mcfg.num_nodes = 1;
  EarthMachine m(mcfg);

  std::vector<FiberId> self(1);
  const std::uint32_t sweeps = opt.sweeps;
  self[0] = m.add_fiber(
      0, 1,
      [&](FiberContext& ctx) {
        const auto row_ptr = A.row_ptr();
        const auto col_idx = A.col_idx();
        const auto values = A.values();
        ctx.charge_intops(4 + A.nrows());
        for (std::uint32_t r = 0; r < A.nrows(); ++r) {
          double acc = 0.0;
          ctx.load(tag_rptr, r, 8);
          for (std::uint64_t j = row_ptr[r]; j < row_ptr[r + 1]; ++j) {
            ctx.load(tag_acol, j, 4);
            ctx.load(tag_aval, j, 8);
            ctx.load(tag_x, col_idx[j], 8);
            ctx.charge_flops(2);
            acc += values[j] * x[col_idx[j]];
          }
          ctx.store(tag_y, r, 8);
          y[r] = acc;
        }
        if (ctx.activation() + 1 < sweeps) ctx.sync(self[0]);
      },
      "sequential-mvm");
  m.credit(self[0]);

  RunResult result;
  result.total_cycles = m.run();
  result.machine = m.stats();
  result.phases_per_proc = 1;
  result.phase_iterations = {A.nnz()};
  if (opt.collect_results) result.reduction.assign(1, y);
  return result;
}

}  // namespace earthred::core
