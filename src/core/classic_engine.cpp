#include "core/classic_engine.hpp"

#include <algorithm>
#include <vector>

#include "earth/machine.hpp"
#include "inspector/classic_inspector.hpp"
#include "support/check.hpp"

namespace earthred::core {

using earth::Cycles;
using earth::EarthMachine;
using earth::FiberContext;
using earth::FiberId;

namespace {
CostTags make_tags(const KernelShape& shape) {
  earth::ArrayTagAllocator alloc;
  CostTags tags;
  for (std::uint32_t a = 0; a < shape.num_reduction_arrays; ++a)
    tags.reduction.push_back(alloc.next());
  for (std::uint32_t a = 0; a < shape.num_node_read_arrays; ++a)
    tags.node_read.push_back(alloc.next());
  tags.edge_data = alloc.next();
  tags.indir = alloc.next();
  return tags;
}
}  // namespace

RunResult run_classic_engine(const PhasedKernel& kernel,
                             const ClassicOptions& opt) {
  const KernelShape shape = kernel.shape();
  ER_EXPECTS(opt.num_procs >= 1);
  ER_EXPECTS(opt.sweeps >= 1);
  ER_EXPECTS(shape.num_nodes >= opt.num_procs);

  const std::uint32_t P = opt.num_procs;
  const CostTags tags = make_tags(shape);

  // ---- inspector (host side; charged on-machine below) -----------------
  const auto owned_iters = inspector::distribute_iterations(
      shape.num_edges, P, opt.distribution, opt.block_cyclic_size);
  std::vector<inspector::IterationRefs> per_proc(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    per_proc[p].global_iter = owned_iters[p];
    per_proc[p].refs.resize(shape.num_refs);
    for (std::uint32_t r = 0; r < shape.num_refs; ++r) {
      per_proc[p].refs[r].reserve(owned_iters[p].size());
      for (std::uint32_t e : owned_iters[p])
        per_proc[p].refs[r].push_back(kernel.ref(r, e));
    }
  }
  const inspector::ClassicSchedule sched =
      inspector::build_classic_schedule(shape.num_nodes, P, per_proc);

  struct ProcState {
    ProcArrays arrays;
    /// mailbox[src]: values received from processor src this sweep.
    std::vector<std::vector<double>> mailbox;
    std::uint32_t num_senders = 0;
  };
  std::vector<ProcState> procs(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    procs[p].arrays.reduction.assign(
        shape.num_reduction_arrays,
        std::vector<double>(sched.proc[p].local_array_size() *
                            1, 0.0));
    procs[p].arrays.node_read.assign(
        shape.num_node_read_arrays,
        std::vector<double>(shape.num_nodes, 0.0));
    kernel.init_node_arrays(procs[p].arrays.node_read);
    procs[p].mailbox.resize(P);
  }
  // Mailboxes carry all reduction arrays interleaved per value:
  // [value0_array0, value0_array1, ..., value1_array0, ...].
  for (std::uint32_t src = 0; src < P; ++src)
    for (std::uint32_t dst = 0; dst < P; ++dst)
      if (!sched.proc[src].send_ghost_slot[dst].empty()) {
        procs[dst].mailbox[src].assign(
            sched.proc[src].send_ghost_slot[dst].size() *
                shape.num_reduction_arrays,
            0.0);
        ++procs[dst].num_senders;
      }

  earth::MachineConfig mcfg = opt.machine;
  mcfg.num_nodes = P;
  EarthMachine m(mcfg);

  // ---- stage 1: inspector, including translation-table exchange --------
  std::vector<FiberId> insp_ack(P);
  for (std::uint32_t p = 0; p < P; ++p) {
    if (procs[p].num_senders > 0) {
      insp_ack[p] = m.add_fiber(p, procs[p].num_senders,
                                [](FiberContext&) {},
                                "insp-ack[" + std::to_string(p) + "]");
    }
  }
  for (std::uint32_t p = 0; p < P; ++p) {
    const std::uint64_t work = owned_iters[p].size() * shape.num_refs *
                               opt.inspector_cycles_per_ref;
    const FiberId f = m.add_fiber(
        p, 0,
        [&, p, work](FiberContext& ctx) {
          ctx.charge(work);
          // Ship the per-destination ghost lists (the translation table):
          // this is the communication the LightInspector avoids.
          for (std::uint32_t dst = 0; dst < P; ++dst) {
            const auto& slots = sched.proc[p].send_ghost_slot[dst];
            if (slots.empty()) continue;
            ctx.send(insp_ack[dst],
                     static_cast<std::uint64_t>(slots.size()) * 4, {});
          }
        },
        "inspector[" + std::to_string(p) + "]");
    m.credit(f);
  }
  const Cycles t_inspector = m.run();

  // ---- stage 2: executor sweeps -----------------------------------------
  RunResult result;
  const bool collect = opt.collect_results;
  if (collect)
    result.reduction.assign(shape.num_reduction_arrays,
                            std::vector<double>(shape.num_nodes, 0.0));

  std::vector<FiberId> compute(P), fold(P);
  std::vector<std::vector<FiberId>> gate(P, std::vector<FiberId>(P));
  const std::uint32_t sweeps = opt.sweeps;

  for (std::uint32_t p = 0; p < P; ++p) {
    // compute[p]: previous fold done (1) + P-1 node-read broadcasts.
    compute[p] = m.add_fiber(
        p, P,
        [&, p](FiberContext& ctx) {
          ProcState& ps = procs[p];
          const auto& cs = sched.proc[p];

          // Zero the local accumulation array (owned block + ghosts).
          for (std::uint32_t a = 0; a < shape.num_reduction_arrays; ++a) {
            std::fill(ps.arrays.reduction[a].begin(),
                      ps.arrays.reduction[a].end(), 0.0);
            for (std::uint64_t i = 0; i < cs.local_array_size(); ++i)
              ctx.store(tags.reduction[a], i);
          }

          // All local iterations in one loop (no phases).
          ctx.charge_intops(4 + cs.iter_global.size());
          std::vector<std::uint32_t> redirected(shape.num_refs);
          for (std::size_t j = 0; j < cs.iter_global.size(); ++j) {
            for (std::uint32_t r = 0; r < shape.num_refs; ++r) {
              redirected[r] = cs.indir[r][j];
              ctx.load(tags.indir, j * shape.num_refs + r, 4);
            }
            kernel.compute_edge(ctx, tags, cs.iter_global[j], j, redirected,
                                ps.arrays);
          }

          // Ship aggregated ghost contributions to the owners.
          for (std::uint32_t dst = 0; dst < P; ++dst) {
            const auto& slots = cs.send_ghost_slot[dst];
            if (slots.empty()) continue;
            // Pack (charged as loads of the ghost region).
            for (std::size_t j = 0; j < slots.size(); ++j)
              for (std::uint32_t a = 0; a < shape.num_reduction_arrays; ++a)
                ctx.load(tags.reduction[a], cs.owned_size() + slots[j]);
            const std::uint64_t bytes =
                static_cast<std::uint64_t>(slots.size()) * 8 *
                shape.num_reduction_arrays;
            ctx.send(fold[dst], bytes, [&procs, &sched, &shape, p, dst] {
              const auto& slots2 = sched.proc[p].send_ghost_slot[dst];
              auto& box = procs[dst].mailbox[p];
              const std::uint32_t owned = sched.proc[p].owned_size();
              for (std::size_t j = 0; j < slots2.size(); ++j)
                for (std::uint32_t a = 0; a < shape.num_reduction_arrays;
                     ++a)
                  box[j * shape.num_reduction_arrays + a] =
                      procs[p]
                          .arrays.reduction[a][owned + slots2[j]];
            });
          }
          ctx.sync(fold[p]);
        },
        "classic-compute[" + std::to_string(p) + "]");
  }

  for (std::uint32_t p = 0; p < P; ++p) {
    fold[p] = m.add_fiber(
        p, 1 + procs[p].num_senders,
        [&, p](FiberContext& ctx) {
          ProcState& ps = procs[p];
          const auto& cs = sched.proc[p];
          const std::uint64_t sweep = ctx.activation();

          // Fold received ghost contributions into the owned block.
          for (std::uint32_t src = 0; src < P; ++src) {
            const auto& box = ps.mailbox[src];
            if (box.empty()) continue;
            const auto& offs = sched.proc[src].send_dest_offset[p];
            for (std::size_t j = 0; j < offs.size(); ++j) {
              for (std::uint32_t a = 0; a < shape.num_reduction_arrays;
                   ++a) {
                ctx.load(tags.reduction[a], offs[j]);
                ctx.charge_flops(1);
                ctx.store(tags.reduction[a], offs[j]);
                ps.arrays.reduction[a][offs[j]] +=
                    box[j * shape.num_reduction_arrays + a];
              }
            }
          }

          // Node update for the owned block; reduction offset 0.
          kernel.update_nodes(ctx, tags, cs.owned_begin, cs.owned_end, 0,
                              ps.arrays);

          if (collect && sweep + 1 == sweeps) {
            for (std::uint32_t a = 0; a < shape.num_reduction_arrays; ++a)
              std::copy(ps.arrays.reduction[a].begin(),
                        ps.arrays.reduction[a].begin() + cs.owned_size(),
                        result.reduction[a].begin() + cs.owned_begin);
          }

          // Replicate the refreshed node-read block.
          const std::uint64_t bbytes =
              static_cast<std::uint64_t>(cs.owned_size()) * 8 *
              std::max<std::uint32_t>(shape.num_node_read_arrays, 1);
          for (std::uint32_t q = 0; q < P; ++q) {
            if (q == p) continue;
            ctx.send(gate[q][p], bbytes, [&procs, &sched, &shape, p, q] {
              const auto& cs2 = sched.proc[p];
              for (std::uint32_t a = 0; a < shape.num_node_read_arrays; ++a)
                std::copy(procs[p].arrays.node_read[a].begin() +
                              cs2.owned_begin,
                          procs[p].arrays.node_read[a].begin() +
                              cs2.owned_end,
                          procs[q].arrays.node_read[a].begin() +
                              cs2.owned_begin);
            });
          }
          if (sweep + 1 < sweeps) ctx.sync(compute[p]);
        },
        "classic-fold[" + std::to_string(p) + "]");
  }

  if (P > 1) {
    for (std::uint32_t p = 0; p < P; ++p)
      for (std::uint32_t q = 0; q < P; ++q) {
        if (q == p) continue;
        gate[p][q] = m.add_fiber(
            p, 1, [&, p](FiberContext& ctx) { ctx.sync(compute[p]); },
            "classic-gate[" + std::to_string(p) + "<-" + std::to_string(q) +
                "]");
      }
  }

  for (std::uint32_t p = 0; p < P; ++p) m.credit(compute[p], P);

  result.total_cycles = m.run();
  result.inspector_cycles = t_inspector;
  result.machine = m.stats();
  result.phases_per_proc = 1;
  for (std::uint32_t p = 0; p < P; ++p)
    result.phase_iterations.push_back(owned_iters[p].size());

  if (collect) {
    result.node_read = procs[0].arrays.node_read;
    for (std::uint32_t p = 1; p < P; ++p)
      for (std::uint32_t a = 0; a < shape.num_node_read_arrays; ++a)
        ER_ENSURES_MSG(procs[p].arrays.node_read[a] ==
                           procs[0].arrays.node_read[a],
                       "node-read replicas diverged (classic)");
  }
  for (std::uint32_t p = 0; p < P; ++p) {
    ER_ENSURES(m.fiber_activations(compute[p]) == sweeps);
    ER_ENSURES(m.fiber_activations(fold[p]) == sweeps);
  }
  return result;
}

}  // namespace earthred::core
