// Result of one simulated execution, shared by all engines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "earth/reliable.hpp"
#include "earth/stats.hpp"
#include "earth/types.hpp"

namespace earthred::core {

struct RunResult {
  /// Total simulated time including runtime preprocessing.
  earth::Cycles total_cycles = 0;
  /// Portion spent in the inspector stage (0 when none is needed).
  earth::Cycles inspector_cycles = 0;
  /// Machine counters at drain.
  earth::MachineStats machine;
  /// Reliable-protocol counters summed over all channels (all zero unless
  /// the engine ran with RotationOptions::reliable).
  earth::ReliableStats reliable;

  /// Final reduction arrays assembled to global indexing
  /// ([array][element]); filled when the engine runs with validation
  /// output enabled.
  std::vector<std::vector<double>> reduction;
  /// Final node read arrays ([array][element]).
  std::vector<std::vector<double>> node_read;

  /// Iterations executed per (proc, phase), flattened proc-major; feeds
  /// the load-balance analysis of Sec. 5.4.3.
  std::vector<std::uint64_t> phase_iterations;
  std::uint32_t phases_per_proc = 0;

  /// Text Gantt chart of the run (filled when machine.trace was set).
  std::string gantt;
};

}  // namespace earthred::core
