// NAS-CG conjugate-gradient driver on the simulated machine.
//
// The paper's mvm kernel is "extracted from the NAS Conjugate Gradient
// benchmark" (Sec. 5.3). This driver puts it back: the NPB CG power-
// iteration step — 25 unpreconditioned CG iterations on A z = x followed
// by the eigenvalue estimate zeta = shift + 1 / (x . z) — with every
// operation executed on the simulated EARTH machine:
//
//   * q = A p        : the rotation mvm engine (k-phase overlap);
//   * dot products   : local partial sums + a ring all-reduce;
//   * axpy updates   : local block updates.
//
// Timing composes the per-operation simulations sequentially (CG's data
// dependencies leave little cross-operation overlap to model). Numerical
// results are real and validated against a host-side reference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/result.hpp"
#include "earth/types.hpp"
#include "sparse/csr.hpp"

namespace earthred::core {

struct CgOptions {
  std::uint32_t num_procs = 2;
  std::uint32_t k = 2;              ///< mvm overlap parameter
  std::uint32_t cg_iterations = 25; ///< NPB uses 25 inner iterations
  earth::MachineConfig machine{};
};

struct CgResult {
  earth::Cycles total_cycles = 0;
  earth::Cycles mvm_cycles = 0;      ///< spent in A*p
  earth::Cycles vector_cycles = 0;   ///< dots, axpys, allreduce
  std::vector<double> z;             ///< solution estimate
  double rnorm = 0.0;                ///< ||r|| after the last iteration
  double zeta = 0.0;                 ///< shift + 1 / (x . z)
};

/// Runs one NPB-style CG solve of A z = x on the simulated machine.
/// `shift` only affects the reported zeta.
CgResult run_cg(const sparse::CsrMatrix& A, std::span<const double> x,
                double shift, const CgOptions& opt);

/// Host-side reference CG (same algorithm, no simulation); ground truth
/// for tests.
CgResult reference_cg(const sparse::CsrMatrix& A, std::span<const double> x,
                      double shift, std::uint32_t cg_iterations);

}  // namespace earthred::core
