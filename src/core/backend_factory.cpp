#include "core/backend.hpp"

#include <cstdlib>

#include "support/check.hpp"
#include "support/cpu_features.hpp"
#include "support/str.hpp"

namespace earthred::core {

std::string_view to_string(BackendKind kind) {
  switch (kind) {
    case BackendKind::Auto: return "auto";
    case BackendKind::Scalar: return "scalar";
    case BackendKind::Avx2: return "avx2";
    case BackendKind::Avx512: return "avx512";
  }
  return "scalar";
}

BackendKind parse_backend(std::string_view name) {
  if (name == "auto") return BackendKind::Auto;
  if (name == "scalar") return BackendKind::Scalar;
  if (name == "avx2") return BackendKind::Avx2;
  if (name == "avx512" || name == "avx512f") return BackendKind::Avx512;
  throw check_error(strformat(
      "E-BACKEND-NAME: unknown backend '%.*s' "
      "(expected auto|scalar|avx2|avx512)",
      static_cast<int>(name.size()), name.data()));
}

bool backend_supported(BackendKind kind) {
  switch (kind) {
    case BackendKind::Auto:
    case BackendKind::Scalar:
      return true;
    case BackendKind::Avx2:
      return EARTHRED_HAS_X86_BACKENDS &&
             support::host_cpu_features().avx2;
    case BackendKind::Avx512:
      return EARTHRED_HAS_X86_BACKENDS &&
             support::host_cpu_features().avx512f;
  }
  return false;
}

BackendKind effective_backend(BackendKind requested) {
  if (requested != BackendKind::Auto) return requested;
  const char* forced = std::getenv("EARTHRED_FORCE_BACKEND");
  if (forced == nullptr || *forced == '\0') return requested;
  return parse_backend(forced);
}

BackendKind resolve_backend(BackendKind requested) {
  const BackendKind effective = effective_backend(requested);
  if (effective == BackendKind::Auto) {
    if (backend_supported(BackendKind::Avx512)) return BackendKind::Avx512;
    if (backend_supported(BackendKind::Avx2)) return BackendKind::Avx2;
    return BackendKind::Scalar;
  }
  if (!backend_supported(effective)) {
    throw check_error(strformat(
        "E-BACKEND-UNSUPPORTED: backend '%.*s' is not available on this "
        "host (cpu: %s); use --backend=auto for graceful fallback",
        static_cast<int>(to_string(effective).size()),
        to_string(effective).data(),
        support::to_string(support::host_cpu_features()).c_str()));
  }
  return effective;
}

const std::vector<BackendKind>& compiled_backends() {
  static const std::vector<BackendKind> kinds = [] {
    std::vector<BackendKind> v{BackendKind::Scalar};
#if EARTHRED_HAS_X86_BACKENDS
    v.push_back(BackendKind::Avx2);
    v.push_back(BackendKind::Avx512);
#endif
    return v;
  }();
  return kinds;
}

}  // namespace earthred::core
