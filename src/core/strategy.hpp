#pragma once

// Lowering-strategy selection for irregular reductions.
//
// A "strategy" is the parallel algorithm run_native_plan uses to make the
// scatter side of `X[IA(e,r)] += f(...)` safe under concurrency:
//
//   * Phased     — the paper's rotation engine: the element space is cut
//                  into k*P portions that rotate through the processors,
//                  so every processor only ever accumulates into the
//                  portion it currently owns. Deterministic; the default.
//   * Privatized — every worker accumulates into a full private replica of
//                  the reduction arrays; replicas are folded into the
//                  shared result in fixed worker-ascending order, so the
//                  result is deterministic (bit-identical across runs and
//                  across the batch/per-edge executors, like Phased).
//                  Costs P x num_nodes x num_arrays of replica memory.
//   * Atomic     — workers scatter straight into shared arrays with
//                  std::atomic_ref<double>::fetch_add (a CAS loop).
//                  No replicas and no rotation, but the floating-point
//                  accumulation order depends on thread interleaving, so
//                  results are only reproducible to a tolerance. Opt-in
//                  (never chosen by Auto for real-typed accumulators) and
//                  excluded from every bit-identity gate.
//
// Unlike compute backends (core/backend.hpp), strategies CAN change result
// bits, so the strategy is a *plan* knob: it lives in PlanOptions, enters
// the PlanCache key and the persistent plan header, and forks shard
// routing when forced (shard_map.cpp).
//
// The cost model here is deliberately small and explainable — every score
// carries the formula it came from, so `earthred check --explain` and the
// service can show *why* a loop was lowered the way it was. The compiler's
// static pass (src/compiler/strategy.cpp) calls the same scorer with
// symbolic shape estimates, so static advice and runtime dispatch share
// one model; they diverge only on hosts the plan oversubscribes, where
// runtime inputs carry hw_threads and the static pass deliberately does
// not (advice describes the algorithm, dispatch the machine).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace earthred::core {

struct KernelShape;

/// Stable on-disk encoding (plan_io writes the numeric value into the
/// plan header): Auto must stay 0 so pre-strategy plan files — which
/// wrote a zero reserved field — load as "no forced strategy".
enum class StrategyKind : std::uint8_t {
  Auto = 0,        ///< Resolve via the cost model at plan/run time.
  Phased = 1,      ///< Rotation engine (the paper's executor).
  Privatized = 2,  ///< Per-worker replicas, fixed-order merge.
  Atomic = 3,      ///< CAS scatter into shared arrays (order-sensitive).
};

/// "auto", "phased", "privatized", "atomic".
std::string_view to_string(StrategyKind kind);

/// Parses a strategy name; throws `check_error` ("E-STRATEGY-NAME") on an
/// unknown spelling.
StrategyKind parse_strategy(std::string_view name);

/// True when `kind` can execute on this host. Auto, Phased and Privatized
/// always can; Atomic requires lock-free std::atomic_ref<double>.
bool strategy_supported(StrategyKind kind);

/// Applies the `EARTHRED_FORCE_STRATEGY` environment override: when
/// `requested` is Auto and the variable names a concrete strategy, that
/// strategy becomes the effective request (it must still pass
/// `strategy_supported`). An explicit request always wins over the
/// environment. This is how CI's strategy-matrix job forces every
/// strategy through the whole test suite without touching each test.
StrategyKind effective_strategy(StrategyKind requested);

/// What the cost model sees. Either filled from a concrete KernelShape
/// (runtime) or from symbolic estimates (the compiler pass, which may
/// only know ratios).
struct StrategyInputs {
  std::uint64_t num_nodes = 1;
  std::uint64_t num_edges = 1;
  std::uint32_t num_refs = 1;             ///< scatter targets per edge
  std::uint32_t num_reduction_arrays = 1;
  std::uint32_t num_procs = 1;
  std::uint32_t k = 1;
  /// Mean scatter fan-in (updates per target element). 0 = derive from
  /// num_edges * num_refs / num_nodes.
  double fanin_mean = 0.0;
  /// Coefficient of variation of the per-element fan-in distribution
  /// (mesh connectivity skew); 0 when unknown. High skew means hot
  /// elements, which penalizes the atomic strategy (CAS contention).
  double fanin_cv = 0.0;
  /// Real-typed accumulators: the atomic strategy reorders their sums,
  /// so Auto never picks it and pickers must treat it as opt-in only.
  bool fp_accumulators = true;
  /// Hardware threads backing the run. 0 = unknown / not modeled — the
  /// compiler's static pass scores for a dedicated P-thread host. When
  /// the plan oversubscribes the host (num_procs > hw_threads), a
  /// semaphore/barrier handoff is a scheduler round trip rather than a
  /// cache-line ping, and the sync terms are priced accordingly; the
  /// phased rotation pays 2*k*P^2 handoffs per sweep against the
  /// privatized merge's 3*P barriers, so oversubscription shifts the
  /// pick toward privatized on small-core hosts.
  std::uint32_t hw_threads = 0;
};

/// Fills StrategyInputs from a kernel shape plus the plan's (P, k).
/// Also fills hw_threads from the host, so runtime Auto resolution knows
/// when the plan oversubscribes the machine (the compiler's static pass
/// builds its inputs directly and leaves hw_threads at 0 — static advice
/// describes the algorithm on a dedicated host, runtime dispatch the
/// host it actually has).
StrategyInputs strategy_inputs(const KernelShape& shape,
                               std::uint32_t num_procs, std::uint32_t k);

/// One scored strategy. `cost_per_edge` is in normalized units where 1.0
/// is a single fused gather-accumulate; lower is better. `auto_eligible`
/// is false for strategies Auto may not pick (atomic on FP chains) even
/// if their score wins.
struct StrategyCost {
  StrategyKind strategy = StrategyKind::Phased;
  double cost_per_edge = 0.0;
  bool auto_eligible = true;
  /// The formula, with numbers plugged in — what --explain prints.
  std::string rationale;
};

/// Scores Phased, Privatized and Atomic (in that fixed order).
std::vector<StrategyCost> score_strategies(const StrategyInputs& in);

/// Auto resolution: the cheapest auto-eligible scored strategy.
StrategyKind choose_strategy(const StrategyInputs& in);

/// Resolves a request to the concrete strategy that will run: Auto (after
/// the environment override) picks via choose_strategy; a concrete
/// request is validated. Throws `check_error` with
/// "E-STRATEGY-UNSUPPORTED" when the requested strategy cannot run on
/// this host.
StrategyKind resolve_strategy(StrategyKind requested,
                              const StrategyInputs& in);

/// Bytes of replica memory the privatized strategy would allocate for
/// this shape (P full copies of every reduction array) — what the
/// service's admission control budgets against.
std::uint64_t privatized_replica_bytes(const KernelShape& shape,
                                       std::uint32_t num_procs);

}  // namespace earthred::core
